// Package transfusion is the public API of the TransFusion framework — a
// reproduction of "TransFusion: End-to-End Transformer Acceleration via
// Graph Fusion and Pipelining" (MICRO 2025).
//
// TransFusion models end-to-end Transformer inference on spatial
// accelerators (a 2D PE array for matrix work, a 1D PE array for streaming
// work, a shared on-chip buffer, and off-chip DRAM). It expresses every
// sub-layer — QKV projection, 1-pass streaming multi-head attention,
// Add & LayerNorm, and the FFN — as Cascades of Extended Einsums, schedules
// them with DPipe (a DAG-bipartition + dynamic-programming pipelining
// scheduler), and chooses outer tiles with TileSeek (an MCTS search under
// closed-form buffer constraints).
//
// # Quick start
//
//	res, err := transfusion.Run(transfusion.RunSpec{
//		Arch:   "cloud",
//		Model:  "llama3",
//		SeqLen: 65536,
//		System: "transfusion",
//	})
//	if err != nil { ... }
//	fmt.Printf("latency: %.3f ms, 2D util %.0f%%\n",
//		res.Seconds*1e3, res.Utilization2D*100)
//
// Compare evaluates all five modelled systems (Unfused, FLAT, FuseMax,
// FuseMax+LayerFuse, TransFusion) on one workload; RunExperiment
// regenerates any table or figure from the paper's evaluation section.
//
// The functional layer (the Einsum interpreter and the cascade executor)
// can be exercised with VerifyCascades, which runs the streaming attention
// cascade numerically against a naive reference.
package transfusion
