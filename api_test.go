package transfusion

import (
	"math"
	"os"
	"strings"
	"testing"
	"time"
)

func TestNameLists(t *testing.T) {
	archs := ArchNames()
	if len(archs) != 4 {
		t.Fatalf("ArchNames = %v", archs)
	}
	models := ModelNames()
	if len(models) != 5 || models[len(models)-1] != "llama3" {
		t.Fatalf("ModelNames = %v", models)
	}
	systems := SystemNames()
	if len(systems) != 5 || systems[0] != "unfused" || systems[4] != "transfusion" {
		t.Fatalf("SystemNames = %v", systems)
	}
}

func TestRunBasic(t *testing.T) {
	res, err := Run(RunSpec{Arch: "cloud", Model: "t5", SeqLen: 4096, System: "fusemax"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.Seconds <= 0 {
		t.Fatalf("bad result %+v", res)
	}
	if res.Arch != "cloud" || res.Model != "t5" || res.System != "fusemax" || res.Batch != 64 {
		t.Fatalf("identity fields wrong: %+v", res)
	}
	if res.EnergyPJ.Total() <= 0 {
		t.Fatal("zero energy")
	}
	if len(res.LayerCycles) != 4 {
		t.Fatalf("LayerCycles = %v", res.LayerCycles)
	}
	sum := 0.0
	for _, c := range res.LayerCycles {
		sum += c
	}
	if math.Abs(sum-res.Cycles)/res.Cycles > 1e-6 {
		t.Fatalf("layer cycles %v do not sum to total %v", sum, res.Cycles)
	}
	if !strings.HasPrefix(res.Tile, "tile{") {
		t.Fatalf("Tile = %q", res.Tile)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []RunSpec{
		{Arch: "gpu", Model: "t5", SeqLen: 4096, System: "fusemax"},
		{Arch: "cloud", Model: "gpt", SeqLen: 4096, System: "fusemax"},
		{Arch: "cloud", Model: "t5", SeqLen: 4096, System: "magic"},
		{Arch: "cloud", Model: "t5", SeqLen: 0, System: "fusemax"},
	}
	for _, c := range cases {
		if _, err := Run(c); err == nil {
			t.Errorf("Run(%+v) succeeded", c)
		}
	}
}

func TestCompareOrderingAndSpeedups(t *testing.T) {
	results, err := Compare("cloud", "t5", 16384)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("Compare returned %d results", len(results))
	}
	if results[0].System != "unfused" || results[4].System != "transfusion" {
		t.Fatalf("order: %v, %v", results[0].System, results[4].System)
	}
	// TransFusion must be the fastest of the five.
	for _, r := range results[:4] {
		if results[4].Cycles > r.Cycles*1.001 {
			t.Errorf("transfusion (%v) slower than %s (%v)", results[4].Cycles, r.System, r.Cycles)
		}
	}
}

func TestRunSearchBudgetRecorded(t *testing.T) {
	res, err := Run(RunSpec{Arch: "edge", Model: "bert", SeqLen: 4096, System: "transfusion", SearchBudget: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.TileSearchEvals < 1 {
		t.Fatalf("TileSearchEvals = %d", res.TileSearchEvals)
	}
}

func TestVerifyCascades(t *testing.T) {
	dev, err := VerifyCascades(7)
	if err != nil {
		t.Fatal(err)
	}
	if dev > 1e-9 {
		t.Fatalf("functional deviation %v too large", dev)
	}
}

func TestStreamingAttentionAPI(t *testing.T) {
	q, err := RandTensor(1, "h", 2, "e", 4, "p", 3)
	if err != nil {
		t.Fatal(err)
	}
	k, _ := RandTensor(2, "h", 2, "e", 4, "m", 6)
	v, _ := RandTensor(3, "h", 2, "f", 4, "m", 6)
	got, err := RunStreamingAttention(q, k, v, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := ReferenceAttention(q, k, v)
	if d := MaxAbsDiff(got, want); d > 1e-9 {
		t.Fatalf("streaming deviates by %v", d)
	}
	// Bad inner tile.
	if _, err := RunStreamingAttention(q, k, v, 5); err == nil {
		t.Fatal("non-dividing m0 accepted")
	}
}

func TestRandTensorErrors(t *testing.T) {
	if _, err := RandTensor(1, "h"); err == nil {
		t.Fatal("odd arg count accepted")
	}
	if _, err := RandTensor(1, 2, 3); err == nil {
		t.Fatal("non-string name accepted")
	}
	if _, err := RandTensor(1, "h", "x"); err == nil {
		t.Fatal("non-int size accepted")
	}
}

func TestExperimentsAPI(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 16 {
		t.Fatalf("ExperimentIDs = %v", ids)
	}
	desc, err := ExperimentDescription("fig8a")
	if err != nil || !strings.Contains(desc, "Llama3") {
		t.Fatalf("description = %q, %v", desc, err)
	}
	if _, err := ExperimentDescription("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	out, err := RunExperiment("table3", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "256x256") {
		t.Fatalf("table3 output missing cloud spec:\n%s", out)
	}
	if _, err := RunExperiment("nope", 0); err == nil {
		t.Fatal("unknown experiment ran")
	}
}

// The causal extension: masked attention must cost roughly half the
// bidirectional MHA cycles at long sequences (each query sees ~N/2 keys on
// average), and never more.
func TestCausalHalvesAttentionWork(t *testing.T) {
	bi, err := Run(RunSpec{Arch: "cloud", Model: "bert", SeqLen: 65536, System: "fusemax"})
	if err != nil {
		t.Fatal(err)
	}
	causal, err := Run(RunSpec{Arch: "cloud", Model: "bert", SeqLen: 65536, System: "fusemax", Causal: true})
	if err != nil {
		t.Fatal(err)
	}
	// The visible-KV halving cuts epochs ~2x, but the mask-add Einsum
	// lengthens the 1D softmax chain that bounds FuseMax's static pipeline
	// (3 -> 4 streaming ops), so the net ratio lands near 0.5 * 4/3 ~ 0.67.
	ratio := causal.LayerCycles["MHA"] / bi.LayerCycles["MHA"]
	if ratio > 0.72 || ratio < 0.4 {
		t.Fatalf("causal MHA ratio = %v, want 0.4-0.72", ratio)
	}
	if causal.Cycles > bi.Cycles {
		t.Fatalf("causal (%v) slower than bidirectional (%v)", causal.Cycles, bi.Cycles)
	}
	// Non-attention layers are unaffected.
	for _, k := range []string{"QKV", "FFN"} {
		rel := causal.LayerCycles[k] / bi.LayerCycles[k]
		if rel < 0.95 || rel > 1.05 {
			t.Fatalf("%s changed under causal masking: ratio %v", k, rel)
		}
	}
}

func TestRunExperimentCSV(t *testing.T) {
	out, err := RunExperimentCSV("table3", 0)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // header + 4 presets
		t.Fatalf("csv lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Name,") {
		t.Fatalf("csv header = %q", lines[0])
	}
}

func TestScheduleTrace(t *testing.T) {
	out, err := ScheduleTrace("edge", "bert", 4096, "mha", 4, 80)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"2D |", "1D |", "candidate schedules"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}
	if _, err := ScheduleTrace("edge", "bert", 4096, "nonsense", 4, 80); err == nil {
		t.Fatal("unknown sub-layer accepted")
	}
	if _, err := ScheduleTrace("nope", "bert", 4096, "mha", 4, 80); err == nil {
		t.Fatal("unknown arch accepted")
	}
}

func TestCausalAttentionAPI(t *testing.T) {
	q, _ := RandTensor(4, "h", 2, "e", 4, "p", 3)
	k, _ := RandTensor(5, "h", 2, "e", 4, "m", 8)
	v, _ := RandTensor(6, "h", 2, "f", 4, "m", 8)
	got, err := RunCausalAttention(q, k, v, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := ReferenceCausalAttention(q, k, v, 3)
	if d := MaxAbsDiff(got, want); d > 1e-9 {
		t.Fatalf("causal API deviates by %v", d)
	}
	if _, err := RunCausalAttention(q, k, v, 3, 0); err == nil {
		t.Fatal("non-dividing m0 accepted")
	}
	if _, err := RunCausalAttention(q, k, v, 2, -1); err == nil {
		t.Fatal("negative qStart accepted")
	}
}

func TestRunEncoderDecoder(t *testing.T) {
	res, err := RunEncoderDecoder(StackSpec{
		Arch: "cloud", Model: "t5", System: "fusemax", EncSeq: 4096, DecSeq: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Encoder.Cycles + res.DecoderSelf.Cycles + res.DecoderCross.Cycles
	if math.Abs(sum-res.Cycles)/res.Cycles > 1e-9 {
		t.Fatalf("stack parts %v != total %v", sum, res.Cycles)
	}
	if res.EnergyPJ.Total() <= 0 || res.Seconds <= 0 {
		t.Fatalf("bad stack aggregates: %+v", res)
	}
	if _, err := RunEncoderDecoder(StackSpec{Arch: "x", Model: "t5", System: "fusemax", EncSeq: 1024, DecSeq: 512}); err == nil {
		t.Fatal("bad arch accepted")
	}
}

func TestExplain(t *testing.T) {
	out, err := Explain(RunSpec{Arch: "cloud", Model: "bert", SeqLen: 4096, System: "unfused"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Phase", "kvproj", "mha", "Bound", "total"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Explain missing %q:\n%s", want, out)
		}
	}
	if _, err := Explain(RunSpec{Arch: "bad", Model: "bert", SeqLen: 4096, System: "unfused"}); err == nil {
		t.Fatal("bad spec accepted")
	}
}

func TestRunWithArchFileAndCustomModel(t *testing.T) {
	path := t.TempDir() + "/arch.json"
	content := `{"name":"widepu","pe2dRows":32,"pe2dCols":32,"pe1dLanes":256,"bufferBytes":4194304,"dramBandwidthGBs":60,"clockGHz":1.0}`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := Run(RunSpec{
		ArchFile: path,
		SeqLen:   4096,
		System:   "fusemax",
		CustomModel: &CustomModel{
			Name: "mini", Heads: 8, HeadDim: 64, FFNHidden: 2048, Layers: 4, Activation: "relu",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Arch != "widepu" || res.Model != "mini" {
		t.Fatalf("identity fields: %+v", res)
	}
	if res.Cycles <= 0 {
		t.Fatal("degenerate result")
	}
	// Bad file and bad custom model.
	if _, err := Run(RunSpec{ArchFile: path + ".nope", SeqLen: 4096, System: "fusemax", Model: "t5"}); err == nil {
		t.Fatal("missing arch file accepted")
	}
	if _, err := Run(RunSpec{Arch: "cloud", SeqLen: 4096, System: "fusemax",
		CustomModel: &CustomModel{Name: "bad"}}); err == nil {
		t.Fatal("invalid custom model accepted")
	}
}

func TestCanonicalKeyNormalisesDefaults(t *testing.T) {
	base := RunSpec{Arch: "edge", Model: "bert", SeqLen: 4096, System: "transfusion"}
	explicit := base
	explicit.Batch = 64         // model.EvalBatch, the default
	explicit.SearchBudget = 128 // pipeline.DefaultOptions().TileSeekIterations
	if base.CanonicalKey() != explicit.CanonicalKey() {
		t.Fatalf("defaulted and explicit-default specs key differently:\n%s\n%s",
			base.CanonicalKey(), explicit.CanonicalKey())
	}

	// Execution knobs that cannot change the result are excluded from the key.
	tuned := base
	tuned.Parallelism = 4
	tuned.Progress = func(ProgressEvent) {}
	if base.CanonicalKey() != tuned.CanonicalKey() {
		t.Fatal("Parallelism/Progress leaked into the canonical key")
	}

	// Every result-affecting field must move the key.
	variants := []RunSpec{
		{Arch: "cloud", Model: "bert", SeqLen: 4096, System: "transfusion"},
		{Arch: "edge", Model: "t5", SeqLen: 4096, System: "transfusion"},
		{Arch: "edge", Model: "bert", SeqLen: 1024, System: "transfusion"},
		{Arch: "edge", Model: "bert", SeqLen: 4096, System: "fusemax"},
		{Arch: "edge", Model: "bert", SeqLen: 4096, System: "transfusion", Batch: 32},
		{Arch: "edge", Model: "bert", SeqLen: 4096, System: "transfusion", SearchBudget: 8},
		{Arch: "edge", Model: "bert", SeqLen: 4096, System: "transfusion", Causal: true},
		{Arch: "edge", Model: "bert", SeqLen: 4096, System: "transfusion",
			CustomModel: &CustomModel{Name: "mini", Heads: 8, HeadDim: 64, FFNHidden: 2048, Layers: 4, Activation: "relu"}},
	}
	seen := map[string]int{base.CanonicalKey(): -1}
	for i, v := range variants {
		k := v.CanonicalKey()
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %d keys identically to variant %d: %s", i, prev, k)
		}
		seen[k] = i
	}

	// Injectivity: string fields containing the key's own separator characters
	// must not let two distinct specs collide. Under an unquoted encoding both
	// of these would render as arch=a|archfile=b|...
	smuggled := RunSpec{Arch: "a|archfile=b", SeqLen: 4096, System: "transfusion", Model: "bert"}
	split := RunSpec{Arch: "a", ArchFile: "b", SeqLen: 4096, System: "transfusion", Model: "bert"}
	if smuggled.CanonicalKey() == split.CanonicalKey() {
		t.Fatalf("separator-smuggling specs collide: %s", smuggled.CanonicalKey())
	}
}

func TestParseCanonicalKeyRoundTrip(t *testing.T) {
	specs := []RunSpec{
		{Arch: "edge", Model: "bert", SeqLen: 4096, System: "transfusion"},
		{Arch: "cloud", Model: "llama3-70b", SeqLen: 65536, System: "fusemax", Batch: 8, SearchBudget: 32, Causal: true},
		{Arch: "edge", Model: "t5", SeqLen: 1024, System: "transfusion", HeuristicOnly: true, SearchTimeout: 3 * time.Second},
		{ArchFile: "/tmp/weird|arch=\"file\".json", Model: "bert", SeqLen: 2048, System: "transfusion"},
		{Arch: "a|archfile=b", SeqLen: 4096, System: "transfusion", Model: "bert"},
		{Arch: "edge", SeqLen: 4096, System: "transfusion",
			CustomModel: &CustomModel{Name: "mini", Heads: 8, HeadDim: 64, FFNHidden: 2048, Layers: 4, Activation: "relu"}},
	}
	for i, spec := range specs {
		key := spec.CanonicalKey()
		got, ok := ParseCanonicalKey(key)
		if !ok {
			t.Fatalf("spec %d: own canonical key %q did not parse", i, key)
		}
		if got.CanonicalKey() != key {
			t.Fatalf("spec %d: round-trip changed the key:\n in %s\nout %s", i, key, got.CanonicalKey())
		}
	}

	// Malformed keys must be rejected, never mis-parsed.
	for _, bad := range []string{
		"",
		"arch=edge",
		"not a key at all",
		`arch="edge|archfile=""|model="bert"|seq=x|sys="transfusion"|batch=64|budget=128|causal=false|timeout=0s|heur=false`,
		`arch="edge"|model="bert"|archfile=""|seq=4096|sys="transfusion"|batch=64|budget=128|causal=false|timeout=0s|heur=false`,
		`arch="edge"|archfile=""|model="bert"|seq=4096|sys="transfusion"|batch=64|budget=128|causal=maybe|timeout=0s|heur=false`,
		`arch="edge"|archfile=""|model="bert"|seq=4096|sys="transfusion"|batch=64|budget=128|causal=false|timeout=0s|heur=false|trailing`,
	} {
		if spec, ok := ParseCanonicalKey(bad); ok {
			t.Fatalf("malformed key %q parsed into %+v", bad, spec)
		}
	}
}
