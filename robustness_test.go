package transfusion

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// TestRunRejectsInvalidSpecsTyped drives Run with adversarial specs and
// requires every rejection to be a typed ErrInvalidSpec — never a panic,
// never an untyped error from deep inside the machinery.
func TestRunRejectsInvalidSpecsTyped(t *testing.T) {
	cases := []struct {
		name string
		spec RunSpec
	}{
		{"unknown arch", RunSpec{Arch: "gpu", Model: "t5", SeqLen: 4096, System: "fusemax"}},
		{"unknown model", RunSpec{Arch: "cloud", Model: "gpt", SeqLen: 4096, System: "fusemax"}},
		{"unknown system", RunSpec{Arch: "cloud", Model: "t5", SeqLen: 4096, System: "magic"}},
		{"zero seq", RunSpec{Arch: "cloud", Model: "t5", SeqLen: 0, System: "fusemax"}},
		{"negative seq", RunSpec{Arch: "cloud", Model: "t5", SeqLen: -4096, System: "fusemax"}},
		{"huge seq", RunSpec{Arch: "cloud", Model: "t5", SeqLen: MaxSeqLen + 1, System: "fusemax"}},
		{"negative batch", RunSpec{Arch: "cloud", Model: "t5", SeqLen: 4096, System: "fusemax", Batch: -1}},
		{"huge batch", RunSpec{Arch: "cloud", Model: "t5", SeqLen: 4096, System: "fusemax", Batch: MaxBatch + 1}},
		{"negative budget", RunSpec{Arch: "cloud", Model: "t5", SeqLen: 4096, System: "transfusion", SearchBudget: -5}},
		{"bad custom model", RunSpec{Arch: "cloud", Model: "x", SeqLen: 4096, System: "fusemax",
			CustomModel: &CustomModel{Name: "x", Heads: -1, HeadDim: 64, FFNHidden: 128, Layers: 2, Activation: "relu"}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Run(c.spec)
			if err == nil {
				t.Fatalf("Run(%+v) succeeded, want error", c.spec)
			}
			if !errors.Is(err, ErrInvalidSpec) {
				t.Fatalf("Run(%+v) error %v does not match ErrInvalidSpec", c.spec, err)
			}
		})
	}
}

func TestRunContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, RunSpec{Arch: "cloud", Model: "bert", SeqLen: 1024, System: "transfusion"})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, does not also match context.Canceled", err)
	}
}

func TestCompareContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CompareContext(ctx, "cloud", "bert", 1024); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestRunExperimentContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// table1/table3 are static renders; fig8b actually evaluates and must
	// observe the canceled context.
	if _, err := RunExperimentContext(ctx, "fig8b", 8); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestRunExperimentRejectsNegativeBudget(t *testing.T) {
	if _, err := RunExperiment("headline", -1); !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("err = %v, want ErrInvalidSpec", err)
	}
	if _, err := RunExperimentCSV("headline", -1); !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("err = %v, want ErrInvalidSpec", err)
	}
}

func TestUnknownExperimentTyped(t *testing.T) {
	if _, err := RunExperiment("fig999", 0); !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("err = %v, want ErrInvalidSpec", err)
	}
}

// TestRunNeverPanics sweeps a grid of hostile spec values; Run must return
// (result, error), never panic. The recover boundary converts any internal
// defect to a *InternalError, which would still fail the test visibly below.
func TestRunNeverPanics(t *testing.T) {
	seqs := []int{-1, 0, 1, 2, 3, 7, 1024, MaxSeqLen + 1}
	batches := []int{-7, 0, 1, 3, MaxBatch + 1}
	systems := []string{"", "transfusion", "unfused", "???"}
	for _, seq := range seqs {
		for _, b := range batches {
			for _, sys := range systems {
				spec := RunSpec{Arch: "edge", Model: "t5", SeqLen: seq, Batch: b, System: sys, SearchBudget: 4}
				_, err := Run(spec)
				var ie *InternalError
				if errors.As(err, &ie) {
					t.Fatalf("Run(%+v) hit an internal defect: %v", spec, ie)
				}
			}
		}
	}
}

func TestScheduleTraceRejectsBadSeq(t *testing.T) {
	if _, err := ScheduleTrace("cloud", "bert", -5, "mha", 4, 80); !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("err = %v, want ErrInvalidSpec", err)
	}
}

func TestDegradedReasonMentionsHeuristic(t *testing.T) {
	// A clean run must not be degraded.
	r, err := Run(RunSpec{Arch: "cloud", Model: "bert", SeqLen: 1024, System: "transfusion", SearchBudget: 8})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.Degraded || r.DegradedReason != "" {
		t.Fatalf("clean run marked degraded: %v %q", r.Degraded, r.DegradedReason)
	}
	if strings.Contains(r.Tile, "tile{") == false {
		t.Fatalf("tile not rendered: %q", r.Tile)
	}
}

func TestSearchTimeoutDegrades(t *testing.T) {
	// An immediately-expiring soft timeout must not fail the run: it falls
	// back to the heuristic tile and reports why.
	r, err := Run(RunSpec{Arch: "cloud", Model: "bert", SeqLen: 1024, System: "transfusion",
		SearchBudget: 1 << 16, SearchTimeout: 1})
	if err != nil {
		t.Fatalf("Run with 1ns SearchTimeout failed: %v", err)
	}
	if !r.Degraded {
		t.Fatal("run with expired SearchTimeout not marked degraded")
	}
	if !strings.Contains(r.DegradedReason, "heuristic") {
		t.Fatalf("DegradedReason %q does not mention the heuristic fallback", r.DegradedReason)
	}
	if !strings.Contains(r.Tile, "tile{") {
		t.Fatalf("degraded run has no usable tile: %q", r.Tile)
	}
}
