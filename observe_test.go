package transfusion

import (
	"context"
	"encoding/json"
	"testing"
)

// smallSpec keeps integration runs fast: the edge preset, the smallest zoo
// model, a short sequence, and a tiny search budget.
func smallSpec() RunSpec {
	return RunSpec{Arch: "edge", Model: "bert", SeqLen: 4096, System: "transfusion", SearchBudget: 4}
}

func TestRunContextPopulatesMetrics(t *testing.T) {
	m := NewMetrics()
	ctx := WithMetrics(context.Background(), m)
	if _, err := RunContext(ctx, smallSpec()); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	for _, name := range []string{
		"tileseek.searches", "tileseek.rollouts", "tileseek.evaluated",
		"dpipe.plans", "dpipe.enumerated", "dpipe.dp_cells",
		"pipeline.evaluations",
	} {
		if snap.Counters[name] <= 0 {
			t.Errorf("counter %s = %d, want > 0 (snapshot: %v)", name, snap.Counters[name], snap.Counters)
		}
	}
	if got := snap.Counters["tileseek.rollouts"]; got != 4 {
		t.Errorf("tileseek.rollouts = %d, want the budget 4", got)
	}
	if snap.Histograms["pipeline.tileseek_ms"].Count == 0 {
		t.Errorf("tileseek phase timing not recorded: %v", snap.Histograms)
	}
	data, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("snapshot JSON invalid: %v", err)
	}
}

func TestRunSpecProgressEvents(t *testing.T) {
	var rollouts, phaseStarts, phaseEnds int
	spec := smallSpec()
	spec.Progress = func(ev ProgressEvent) {
		switch ev.(type) {
		case RolloutDoneEvent:
			rollouts++
		case PhaseStartEvent:
			phaseStarts++
		case PhaseEndEvent:
			phaseEnds++
		}
	}
	if _, err := RunContext(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if rollouts != 4 {
		t.Errorf("rollout events = %d, want 4", rollouts)
	}
	if phaseStarts == 0 || phaseStarts != phaseEnds {
		t.Errorf("phase events unbalanced: %d starts, %d ends", phaseStarts, phaseEnds)
	}
}

func TestChromeTraceScheduleValidJSON(t *testing.T) {
	data, err := ChromeTraceSchedule("edge", "bert", 4096, 4)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	pids := map[float64]bool{}
	var complete int
	for _, ev := range events {
		pid, ok := ev["pid"].(float64)
		if !ok {
			t.Fatalf("event missing pid: %v", ev)
		}
		pids[pid] = true
		if ev["ph"] == "X" {
			complete++
			for _, key := range []string{"name", "ts", "dur", "tid"} {
				if _, ok := ev[key]; !ok {
					t.Fatalf("complete event missing %q: %v", key, ev)
				}
			}
		}
	}
	if complete == 0 {
		t.Fatal("no complete events in the trace")
	}
	// One process per sub-layer: qproj, kvproj, mha, ln, ffn.
	if len(pids) != 5 {
		t.Fatalf("trace covers %d processes, want 5", len(pids))
	}
}

func TestChromeTraceScheduleRejectsBadSpec(t *testing.T) {
	if _, err := ChromeTraceSchedule("edge", "bert", 0, 4); err == nil {
		t.Fatal("zero seq accepted")
	}
	if _, err := ChromeTraceSchedule("nope", "bert", 4096, 4); err == nil {
		t.Fatal("unknown arch accepted")
	}
}

func TestRunExperimentReportContext(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) == 0 {
		t.Skip("no experiments registered")
	}
	rep, err := RunExperimentReportContext(context.Background(), ids[0], 2, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != ids[0] || rep.Output == "" {
		t.Fatalf("report = %+v", rep)
	}
	if _, err := RunExperimentReportContext(context.Background(), ids[0], -1, 0, false); err == nil {
		t.Fatal("negative budget accepted")
	}
	if _, err := RunExperimentReportContext(context.Background(), ids[0], 2, -1, false); err == nil {
		t.Fatal("negative parallelism accepted")
	}
}
