// Decoder: the causal-masking extension. Validates the masked streaming
// attention cascade against a naive reference (including the fully-masked
// block edge case that breaks shift-free implementations), then shows the
// end-to-end effect of decoder masking on modelled latency.
//
//	go run ./examples/decoder
package main

import (
	"fmt"
	"log"

	"github.com/fusedmindlab/transfusion"
)

func main() {
	const h, e, f, p, m = 4, 16, 16, 8, 64

	q, err := transfusion.RandTensor(11, "h", h, "e", e, "p", p)
	if err != nil {
		log.Fatal(err)
	}
	k, _ := transfusion.RandTensor(12, "h", h, "e", e, "m", m)
	v, _ := transfusion.RandTensor(13, "h", h, "f", f, "m", m)

	fmt.Println("masked streaming attention vs masked reference:")
	for _, qStart := range []int{0, 17, m - p} {
		got, err := transfusion.RunCausalAttention(q, k, v, 8, qStart)
		if err != nil {
			log.Fatal(err)
		}
		want := transfusion.ReferenceCausalAttention(q, k, v, qStart)
		fmt.Printf("  queries at %2d..%2d  max deviation %.2e\n",
			qStart, qStart+p-1, transfusion.MaxAbsDiff(got, want))
	}

	// qStart = 0 means the first query sees exactly one key and six of the
	// eight KV blocks are fully masked for it — the case where a -inf
	// running max would produce NaN. The deviations above prove the finite
	// sentinel handles it exactly.

	fmt.Println("\nend-to-end effect of decoder masking (Llama3 on cloud, TransFusion):")
	for _, n := range []int{16 << 10, 256 << 10} {
		bi, err := transfusion.Run(transfusion.RunSpec{
			Arch: "cloud", Model: "llama3", SeqLen: n, System: "transfusion", SearchBudget: 24})
		if err != nil {
			log.Fatal(err)
		}
		causal, err := transfusion.Run(transfusion.RunSpec{
			Arch: "cloud", Model: "llama3", SeqLen: n, System: "transfusion", SearchBudget: 24, Causal: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  seq %4dK: bidirectional %.3e cycles, causal %.3e cycles (%.2fx)\n",
			n>>10, bi.Cycles, causal.Cycles, bi.Cycles/causal.Cycles)
	}
	fmt.Println("\nthe saving grows with sequence length as the (quadratic, halved-by-masking)")
	fmt.Println("attention term comes to dominate the (linear, unchanged) projection/FFN terms.")
}
