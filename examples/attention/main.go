// Attention: run the paper's Einsum Cascade 1 — the 1-pass streaming
// attention with running max / denominator / numerator-times-V — through
// the Extended-Einsum interpreter, and check it against naive full-softmax
// attention, including a numerical-stability stress test that would
// overflow a shift-free softmax.
//
//	go run ./examples/attention
package main

import (
	"fmt"
	"log"

	"github.com/fusedmindlab/transfusion"
)

func main() {
	const h, e, f, p, m = 4, 16, 16, 8, 48

	q, err := transfusion.RandTensor(1, "h", h, "e", e, "p", p)
	if err != nil {
		log.Fatal(err)
	}
	k, _ := transfusion.RandTensor(2, "h", h, "e", e, "m", m)
	v, _ := transfusion.RandTensor(3, "h", h, "f", f, "m", m)

	// The streaming result must be identical for every inner tile size m0 —
	// tiling is purely a performance decision, never a numerics decision.
	want := transfusion.ReferenceAttention(q, k, v)
	fmt.Println("streaming 1-pass attention vs naive softmax reference:")
	for _, m0 := range []int{1, 4, 12, 48} {
		got, err := transfusion.RunStreamingAttention(q, k, v, m0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  m0=%-3d  max deviation %.2e\n", m0, transfusion.MaxAbsDiff(got, want))
	}

	// Stability: scale Q so raw scores reach ~±700; exp(700) overflows
	// float64, but the running-max shift keeps every exponent <= 0.
	qHot := q.Clone().Apply(func(x float64) float64 { return x * 350 })
	wantHot := transfusion.ReferenceAttention(qHot, k, v)
	gotHot, err := transfusion.RunStreamingAttention(qHot, k, v, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlarge-score stress (|scores| ~ 700): max deviation %.2e — no overflow\n",
		transfusion.MaxAbsDiff(gotHot, wantHot))

	// Full-layer check: QKV -> MHA -> Add&LayerNorm -> FFN through the
	// cascade interpreter vs the reference composition.
	dev, err := transfusion.VerifyCascades(42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full Transformer layer through all four cascades: max deviation %.2e\n", dev)
}
