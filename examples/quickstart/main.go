// Quickstart: evaluate TransFusion on the paper's cloud architecture and
// compare all five modelled systems on one workload.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/fusedmindlab/transfusion"
)

func main() {
	// One evaluation: TransFusion (end-to-end fusion + DPipe + TileSeek)
	// running Llama3-8B with a 64K context on the TPU-class cloud preset.
	res, err := transfusion.Run(transfusion.RunSpec{
		Arch:   "cloud",
		Model:  "llama3",
		SeqLen: 64 << 10,
		System: "transfusion",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TransFusion / %s / %s @ %dK tokens (batch %d)\n",
		res.Arch, res.Model, res.SeqLen>>10, res.Batch)
	fmt.Printf("  latency  %.4g cycles (%.1f s modelled)\n", res.Cycles, res.Seconds)
	fmt.Printf("  tile     %s (found by TileSeek in %d evaluations)\n", res.Tile, res.TileSearchEvals)
	fmt.Printf("  arrays   2D %.0f%% busy, 1D %.0f%% busy\n\n",
		res.Utilization2D*100, res.Utilization1D*100)

	// The five-way comparison of §6.2.
	results, err := transfusion.Compare("cloud", "llama3", 64<<10)
	if err != nil {
		log.Fatal(err)
	}
	unfused := results[0]
	fmt.Println("speedup over Unfused:")
	for _, r := range results {
		fmt.Printf("  %-18s %6.2fx   (energy %.2fx)\n",
			r.System, unfused.Cycles/r.Cycles, r.EnergyPJ.Total()/unfused.EnergyPJ.Total())
	}
}
