// Tilesearch: a TileSeek deep dive. Runs the MCTS outer-tiling search on a
// memory-tight workload (Llama3 on the 5 MB edge buffer), showing the
// buffer-constraint pruning, the reward landscape, and a comparison with
// random search and the static heuristic at the same evaluation budget.
//
//	go run ./examples/tilesearch
package main

import (
	"fmt"
	"log"

	"github.com/fusedmindlab/transfusion/internal/arch"
	"github.com/fusedmindlab/transfusion/internal/model"
	"github.com/fusedmindlab/transfusion/internal/pipeline"
	"github.com/fusedmindlab/transfusion/internal/tileseek"
	"github.com/fusedmindlab/transfusion/internal/tiling"
)

func main() {
	spec := arch.Edge()
	w := tiling.Workload{Model: model.Llama3(), SeqLen: 64 << 10, Batch: 64}
	opts := pipeline.DefaultOptions()

	// The objective TileSeek optimises: the full TransFusion evaluation's
	// energy-delay product for a candidate tile.
	evals := 0
	objective := func(c tiling.Config) (float64, bool) {
		evals++
		r, err := pipeline.EvaluateWithTile(w, spec, pipeline.TransFusion(), c, opts)
		if err != nil {
			return 0, false
		}
		return r.TotalCycles * r.Energy.Total(), true
	}

	space := tileseek.DefaultSpace(w, spec)
	fmt.Printf("search space: %d complete configurations over [B, D, P, M0, M1, S]\n", space.Size())

	heur, err := tiling.HeuristicTile(w, spec)
	if err != nil {
		log.Fatal(err)
	}
	heurCost, _ := objective(heur)
	fmt.Printf("static heuristic:  %-40s EDP %.3e\n", heur, heurCost)

	const budget = 96
	mcts, err := tileseek.Search(space, objective, budget, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TileSeek (MCTS):   %-40s EDP %.3e  (%d evaluated, %d pruned by Table 2)\n",
		mcts.Best, mcts.BestCost, mcts.Evaluated, mcts.Pruned)

	rnd, err := tileseek.RandomSearch(space, objective, budget, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("random search:     %-40s EDP %.3e  (%d evaluated, %d pruned)\n",
		rnd.Best, rnd.BestCost, rnd.Evaluated, rnd.Pruned)

	best := mcts.BestCost
	if heurCost < best {
		best = heurCost
	}
	fmt.Printf("\nMCTS vs heuristic: %.2fx better EDP; vs random: %.2fx (equal budget of %d rollouts)\n",
		heurCost/mcts.BestCost, rnd.BestCost/mcts.BestCost, budget)
	fmt.Printf("total objective evaluations: %d (infeasible tiles never reach the evaluator)\n", evals)
}
