// Custom: bring your own hardware and model. Writes an architecture
// description to JSON, defines a model outside the five-entry zoo, and
// compares FuseMax against TransFusion on the custom pair — the
// downstream-adoption path for hardware that is neither the paper's cloud
// nor its edge preset.
//
//	go run ./examples/custom
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/fusedmindlab/transfusion"
)

func main() {
	// A mid-range NPU: 64x64 MAC array, wide 512-lane vector unit, 8 MB
	// buffer, 100 GB/s LPDDR.
	archJSON := `{
		"name": "midnpu",
		"pe2dRows": 64, "pe2dCols": 64,
		"pe1dLanes": 512,
		"bufferBytes": 8388608,
		"dramBandwidthGBs": 100,
		"clockGHz": 1.2
	}`
	dir, err := os.MkdirTemp("", "transfusion-custom")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	archPath := filepath.Join(dir, "midnpu.json")
	if err := os.WriteFile(archPath, []byte(archJSON), 0o644); err != nil {
		log.Fatal(err)
	}

	// A 1B-class custom model: 16 heads x 128, 5504 FFN hidden, 24 layers.
	custom := &transfusion.CustomModel{
		Name: "custom-1b", Heads: 16, HeadDim: 128,
		FFNHidden: 5504, Layers: 24, Activation: "silu",
	}

	fmt.Println("custom NPU (64x64 + 512-lane, 8MB, 100GB/s) x custom-1b model:")
	fmt.Printf("%-14s %-10s %-12s %-8s %-8s %s\n", "system", "seq", "cycles", "2D util", "1D util", "tile")
	var base float64
	for _, n := range []int{4 << 10, 64 << 10} {
		for _, sys := range []string{"fusemax", "transfusion"} {
			r, err := transfusion.Run(transfusion.RunSpec{
				ArchFile:     archPath,
				CustomModel:  custom,
				SeqLen:       n,
				System:       sys,
				SearchBudget: 32,
			})
			if err != nil {
				log.Fatal(err)
			}
			if sys == "fusemax" {
				base = r.Cycles
			}
			fmt.Printf("%-14s %-10d %-12.4g %-8.0f %-8.0f %s\n",
				sys, n, r.Cycles, r.Utilization2D*100, r.Utilization1D*100, r.Tile)
			if sys == "transfusion" {
				fmt.Printf("%-14s -> %.2fx over FuseMax on this hardware\n", "", base/r.Cycles)
			}
		}
	}
	fmt.Println("\nthe same search and scheduling machinery adapts to the new array shapes")
	fmt.Println("and buffer budget without code changes — only the JSON description.")
}
