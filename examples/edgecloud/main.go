// Edgecloud: sweep TransFusion and FuseMax across the cloud and edge
// architectures and the 1K-1M sequence range, reporting where the memory ->
// compute crossover falls, the PE-array utilization asymmetry, and the
// energy breakdown across the memory hierarchy.
//
//	go run ./examples/edgecloud
package main

import (
	"fmt"
	"log"

	"github.com/fusedmindlab/transfusion"
)

func main() {
	seqs := []int{1 << 10, 16 << 10, 256 << 10}
	const budget = 32 // small TileSeek budget keeps the sweep quick

	for _, arch := range []string{"cloud", "edge"} {
		fmt.Printf("== %s ==\n", arch)
		fmt.Printf("%-6s %-12s %-10s %-8s %-8s %-24s\n",
			"seq", "system", "speedup", "2D util", "1D util", "energy split D/B/R/PE")
		for _, n := range seqs {
			unfused, err := transfusion.Run(transfusion.RunSpec{
				Arch: arch, Model: "llama3", SeqLen: n, System: "unfused"})
			if err != nil {
				log.Fatal(err)
			}
			for _, sys := range []string{"fusemax", "transfusion"} {
				r, err := transfusion.Run(transfusion.RunSpec{
					Arch: arch, Model: "llama3", SeqLen: n, System: sys, SearchBudget: budget})
				if err != nil {
					log.Fatal(err)
				}
				e := r.EnergyPJ
				total := e.Total()
				fmt.Printf("%-6s %-12s %-10.2f %-8.0f %-8.0f %2.0f/%2.0f/%2.0f/%2.0f%%\n",
					seqLabel(n), sys, unfused.Cycles/r.Cycles,
					r.Utilization2D*100, r.Utilization1D*100,
					100*e.DRAM/total, 100*e.Buffer/total, 100*e.RegFile/total, 100*e.PE/total)
			}
		}
		fmt.Println()
	}
	fmt.Println("note the asymmetry: on cloud DPipe drives the big 2D array and offloads")
	fmt.Println("vector work onto it; on edge it spills matrix work onto the 1D array,")
	fmt.Println("whose lane count rivals the whole 16x16 2D array (§6.2, Utilization).")
}

func seqLabel(n int) string {
	if n >= 1<<20 {
		return fmt.Sprintf("%dM", n>>20)
	}
	return fmt.Sprintf("%dK", n>>10)
}
