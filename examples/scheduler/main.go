// Scheduler: a DPipe deep dive. Builds the operation-level DAG of the
// streaming-attention cascade (Einsum Cascade 1), shows the valid
// bipartitions under the four §4.1 constraints, and compares the three
// scheduling regimes — fully sequential, the FuseMax-style static
// pipeline, and DPipe's searched schedule — with the winning array
// assignment per Einsum.
//
//	go run ./examples/scheduler
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/fusedmindlab/transfusion/internal/arch"
	"github.com/fusedmindlab/transfusion/internal/cascade"
	"github.com/fusedmindlab/transfusion/internal/dpipe"
	"github.com/fusedmindlab/transfusion/internal/perf"
)

func main() {
	// One query tile of Llama3-class attention: 32 heads, 128-dim heads,
	// 256-token query tile, 64-token inner KV tile, 256 KV iterations.
	dims := map[string]int{"h": 32, "e": 128, "f": 128, "p": 256, "m0": 64}
	prob, err := dpipe.FromCascade(cascade.Attention(), dims, 256)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Einsum Cascade 1 as a computation DAG:")
	for _, n := range prob.Deps.Nodes() {
		succ := prob.Deps.Succ(n)
		if len(succ) > 0 {
			fmt.Printf("  %-9s -> %s\n", n, strings.Join(succ, ", "))
		}
	}
	fmt.Printf("cross-epoch recurrences: %v\n\n", prob.StateEdges)

	parts, err := prob.Deps.Bipartitions()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("valid bipartitions under the §4.1 constraints: %d\n", len(parts))
	for i, p := range parts {
		if i >= 3 {
			fmt.Printf("  ... and %d more\n", len(parts)-3)
			break
		}
		fmt.Printf("  stage1=%v | stage2=%v\n", p.FirstSorted(), p.SecondSorted())
	}
	fmt.Println()

	for _, spec := range []arch.Spec{arch.Cloud(), arch.Edge()} {
		seq, err := dpipe.Sequential(prob, spec, nil)
		if err != nil {
			log.Fatal(err)
		}
		static, err := dpipe.StaticPipelined(prob, spec, nil)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := dpipe.Plan(prob, spec, dpipe.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s (%d candidate schedules evaluated) ==\n", spec.Name, plan.Candidates)
		fmt.Printf("  sequential      %12.0f cycles\n", seq.TotalCycles)
		fmt.Printf("  static pipeline %12.0f cycles  (%.2fx)\n", static.TotalCycles, seq.TotalCycles/static.TotalCycles)
		fmt.Printf("  DPipe           %12.0f cycles  (%.2fx; 2D busy %.0f%%, 1D busy %.0f%%)\n",
			plan.TotalCycles, seq.TotalCycles/plan.TotalCycles,
			plan.Utilization2D()*100, plan.Utilization1D()*100)

		var on2D, on1D []string
		for name, a := range plan.Assignment {
			if a == perf.PE2D {
				on2D = append(on2D, name)
			} else {
				on1D = append(on1D, name)
			}
		}
		fmt.Printf("  steady-state placement: 2D=%v 1D=%v\n\n", on2D, on1D)
	}
}
