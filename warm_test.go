package transfusion

import (
	"context"
	"reflect"
	"testing"
)

// warmSearchCost is the host-independent price of a search: speculative
// objective evaluations in the parallel tile search plus the DP cells DPipe
// filled. Wall-clock never appears — the counters are deterministic at
// Parallelism 1 and bounded at higher settings.
func warmSearchCost(reg *Metrics) int64 {
	return reg.Counter("tileseek.spec_evals").Value() + reg.Counter("dpipe.dp_cells").Value()
}

// edp is the search objective (energy-delay product) of a result.
func edp(r RunResult) float64 { return float64(r.Cycles) * r.EnergyPJ.Total() }

// The acceptance oracle for warm-started search: on a neighbouring-seq_len
// miss, a search seeded from the stored neighbour's plan must spend ≥50%
// fewer objective evaluations than the cold search for the same spec, while
// returning a result whose objective is never worse than the cold result's —
// at Parallelism 1 and 4, counter-based and deterministic.
func TestWarmSearchHalvesObjectiveEvaluations(t *testing.T) {
	if testing.Short() {
		t.Skip("full search comparison is seconds-long")
	}
	base := RunSpec{Arch: "edge", Model: "bert", SeqLen: 1024, System: "transfusion", SearchBudget: 16}

	// The stored neighbour: a full cold search at seq_len 1024. Its plan is
	// bit-identical at every Parallelism, so one run serves both settings.
	hres, err := RunContext(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	if hres.Plan == nil {
		t.Fatal("search result carries no plan summary to warm-start from")
	}

	for _, par := range []int{1, 4} {
		spec := base
		spec.SeqLen = 2048
		spec.Parallelism = par
		// Keep the parallel leg's speculation minimal: speculative evaluations
		// are scheduling-dependent, and with the default lookahead their
		// count noise could swamp the deterministic rollout saving this test
		// measures. Both sides get the same setting, so the comparison is
		// fair — and the promoted tuning knobs get end-to-end exercise.
		spec.SpecChainSteps = 1
		spec.SpecLookahead = 1

		coldReg := NewMetrics()
		cold, err := RunContext(WithMetrics(context.Background(), coldReg), spec)
		if err != nil {
			t.Fatal(err)
		}
		warmSpec := spec
		warmSpec.WarmHint = hres.Plan
		warmReg := NewMetrics()
		warm, err := RunContext(WithMetrics(context.Background(), warmReg), warmSpec)
		if err != nil {
			t.Fatal(err)
		}

		coldCost, warmCost := warmSearchCost(coldReg), warmSearchCost(warmReg)
		if coldCost <= 0 || warmCost <= 0 {
			t.Fatalf("parallelism %d: degenerate costs cold=%d warm=%d", par, coldCost, warmCost)
		}
		if warmCost*2 > coldCost {
			t.Fatalf("parallelism %d: warm search spent %d objective evaluations, cold %d — less than a 50%% saving",
				par, warmCost, coldCost)
		}
		if edp(warm) > edp(cold) {
			t.Fatalf("parallelism %d: warm objective %g worse than cold %g — never-worse oracle violated",
				par, edp(warm), edp(cold))
		}
		if warm.Degraded {
			t.Fatalf("parallelism %d: warm result degraded: %+v", par, warm)
		}

		// Determinism given identical store state: the same hint yields the
		// same plan, bit for bit.
		again, err := RunContext(context.Background(), warmSpec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(again, warm) {
			t.Fatalf("parallelism %d: warm search nondeterministic:\n%+v\nvs\n%+v", par, again, warm)
		}
	}
}
