package transfusion

import (
	"github.com/fusedmindlab/transfusion/internal/faults"
)

// Typed error taxonomy. Every error returned from the public API classifies
// into one of these categories, matchable with errors.Is / errors.As:
//
//	ErrInvalidSpec     malformed input: unknown preset, bad architecture
//	                   JSON, non-positive extents, unparseable einsum spec;
//	ErrInfeasible      well-formed input with no solution — e.g. no outer
//	                   tiling fits the on-chip buffer; a normal search
//	                   outcome that TransFusion degrades around where it
//	                   can (see RunResult.Degraded);
//	ErrBudgetExhausted an explicit enumeration or evaluation budget ran out
//	                   before a search completed;
//	ErrCanceled        the context passed to a *Context entry point was
//	                   canceled or its deadline passed (the error also
//	                   matches context.Canceled / context.DeadlineExceeded
//	                   as appropriate);
//	ErrOverloaded      an admission controller refused the work because the
//	                   system is saturated past its degradation ladder; the
//	                   request is fine — back off and retry (the client
//	                   package does this automatically, honoring the
//	                   server's Retry-After);
//	*InternalError     an internal invariant broke. Every public entry point
//	                   runs behind a recover() boundary, so a bug below the
//	                   API surfaces as a typed error carrying the panic value
//	                   and stack instead of crashing the caller.
var (
	ErrInvalidSpec     = faults.ErrInvalidSpec
	ErrInfeasible      = faults.ErrInfeasible
	ErrBudgetExhausted = faults.ErrBudgetExhausted
	ErrCanceled        = faults.ErrCanceled
	ErrOverloaded      = faults.ErrOverloaded
)

// InternalError is a recovered panic from below the public API; match with
// errors.As. Its Stack field carries the goroutine stack at recovery.
type InternalError = faults.InternalError

// HTTPStatus maps an error from the taxonomy onto the HTTP status a serving
// layer should answer with: 400 for ErrInvalidSpec, 422 for ErrInfeasible and
// ErrBudgetExhausted, 504 for ErrCanceled, 503 for ErrOverloaded, 500
// otherwise (200 for nil). The transfusiond daemon uses exactly this mapping.
func HTTPStatus(err error) int { return faults.HTTPStatus(err) }
