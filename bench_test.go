package transfusion_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§6), plus the headline aggregate and the two ablations. Each
// benchmark regenerates its artifact through the same code path as
// cmd/experiments; the benchmark time is the cost of reproducing that
// artifact (dominated by TileSeek rollouts and DPipe schedule search, i.e.
// the framework's own search cost — the quantity a MICRO artifact
// evaluation would measure).
//
// A reduced TileSeek budget keeps a full `go test -bench=.` run tractable;
// cmd/experiments uses the full budget for the recorded numbers.

import (
	"context"
	"fmt"
	"testing"

	"github.com/fusedmindlab/transfusion/internal/arch"
	"github.com/fusedmindlab/transfusion/internal/dpipe"
	"github.com/fusedmindlab/transfusion/internal/experiments"
	"github.com/fusedmindlab/transfusion/internal/model"
	"github.com/fusedmindlab/transfusion/internal/obs"
	"github.com/fusedmindlab/transfusion/internal/pipeline"
	"github.com/fusedmindlab/transfusion/internal/tileseek"
	"github.com/fusedmindlab/transfusion/internal/tiling"
)

func benchOpts() pipeline.Options {
	opts := pipeline.DefaultOptions()
	opts.TileSeekIterations = 8
	opts.DPipe = dpipe.DefaultOptions()
	return opts
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		runner := experiments.NewRunner(benchOpts())
		e, err := experiments.ByID(id)
		if err != nil {
			b.Fatal(err)
		}
		table, err := e.Run(runner)
		if err != nil {
			b.Fatal(err)
		}
		if table.NumRows() == 0 {
			b.Fatalf("%s produced an empty table", id)
		}
	}
}

// Tables.

func BenchmarkTable1Mapping(b *testing.B)    { benchExperiment(b, "table1") }
func BenchmarkTable2BufferReqs(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3ArchSpecs(b *testing.B)  { benchExperiment(b, "table3") }

// Figure 8: speedup over Unfused.

func BenchmarkFig8aSpeedupScaling(b *testing.B) { benchExperiment(b, "fig8a") }
func BenchmarkFig8bSpeedupModels(b *testing.B)  { benchExperiment(b, "fig8b") }

// Figure 9: PE-size scaling on edge.

func BenchmarkFig9aPEScaling(b *testing.B)       { benchExperiment(b, "fig9a") }
func BenchmarkFig9bPEScalingModels(b *testing.B) { benchExperiment(b, "fig9b") }

// Figure 10: utilization.

func BenchmarkFig10aUtilizationScaling(b *testing.B) { benchExperiment(b, "fig10a") }
func BenchmarkFig10bUtilizationModels(b *testing.B)  { benchExperiment(b, "fig10b") }

// Figure 11: speedup-contribution breakdown.

func BenchmarkFig11Contribution(b *testing.B) { benchExperiment(b, "fig11") }

// Figure 12: energy.

func BenchmarkFig12aEnergyScaling(b *testing.B) { benchExperiment(b, "fig12a") }
func BenchmarkFig12bEnergyModels(b *testing.B)  { benchExperiment(b, "fig12b") }

// Figure 13: energy breakdown across the memory hierarchy.

func BenchmarkFig13EnergyBreakdown(b *testing.B) { benchExperiment(b, "fig13") }

// Headline geometric means (abstract / conclusion numbers).

func BenchmarkHeadlineGeomeans(b *testing.B) { benchExperiment(b, "headline") }

// Ablations.

func BenchmarkAblationTileSeek(b *testing.B) { benchExperiment(b, "ablation-tileseek") }
func BenchmarkAblationDPipe(b *testing.B)    { benchExperiment(b, "ablation-dpipe") }

// Component micro-benchmarks: the costs of the framework's two search
// engines in isolation.

func BenchmarkDPipePlanMHA(b *testing.B) {
	probs := buildLlamaProblems(b)
	prob := probs["mha"]
	spec := cloudSpec()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dpipe.Plan(prob, spec, dpipe.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDPipePlanFFN(b *testing.B) {
	probs := buildLlamaProblems(b)
	prob := probs["ffn"]
	spec := cloudSpec()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dpipe.Plan(prob, spec, dpipe.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateTransFusionCloud64K(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experimentsEval(b, "cloud"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateTransFusionEdge64K(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experimentsEval(b, "edge"); err != nil {
			b.Fatal(err)
		}
	}
}

// Helpers for the component micro-benchmarks.

func cloudSpec() arch.Spec { return arch.Cloud() }

func buildLlamaProblems(b *testing.B) map[string]*dpipe.Problem {
	b.Helper()
	w := pipeline.Workload{Model: model.Llama3(), SeqLen: model.SeqLength64K, Batch: model.EvalBatch}
	tile, err := tiling.HeuristicTile(w, arch.Cloud())
	if err != nil {
		b.Fatal(err)
	}
	probs, err := pipeline.BuildProblems(w, arch.Cloud(), pipeline.TransFusion(), tile)
	if err != nil {
		b.Fatal(err)
	}
	return probs
}

func experimentsEval(b *testing.B, archName string) (pipeline.Result, error) {
	b.Helper()
	spec, err := arch.ByName(archName)
	if err != nil {
		return pipeline.Result{}, err
	}
	w := pipeline.Workload{Model: model.Llama3(), SeqLen: model.SeqLength64K, Batch: model.EvalBatch}
	return pipeline.Evaluate(w, spec, pipeline.TransFusion(), benchOpts())
}

// Parallel search engine: the speculative tile search and the DPipe
// candidate pool at increasing worker counts. The searched result is
// bit-identical at every setting; only the wall-clock changes (see
// BENCH_parallel.json for recorded serial-vs-parallel numbers).

func BenchmarkSearchParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprint(workers), func(b *testing.B) {
			benchSearchParallel(b, arch.Cloud(), workers)
		})
	}
}

func BenchmarkSearchParallelEdge(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprint(workers), func(b *testing.B) {
			benchSearchParallel(b, arch.Edge(), workers)
		})
	}
}

// benchSearchParallel drives SearchWithOptions with the same expensive
// objective the pipeline uses — a full per-tile evaluation — on the default
// Llama3-64K workload.
func benchSearchParallel(b *testing.B, spec arch.Spec, workers int) {
	b.Helper()
	w := pipeline.Workload{Model: model.Llama3(), SeqLen: model.SeqLength64K, Batch: model.EvalBatch}
	space := tileseek.DefaultSpace(w, spec)
	serial := benchOpts()
	serial.Parallelism = 1
	serial.DPipe.Parallelism = 1
	objective := func(c tiling.Config) (float64, bool) {
		r, err := pipeline.EvaluateWithTile(w, spec, pipeline.TransFusion(), c, serial)
		if err != nil {
			return 0, false
		}
		return r.TotalCycles * r.Energy.Total(), true
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := tileseek.SearchWithOptions(context.Background(), space, objective, tileseek.Options{
			Iterations: 64, Seed: 1, Parallelism: workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Found {
			b.Fatal("search found no feasible tile")
		}
	}
}

func BenchmarkPlanParallel(b *testing.B) {
	probs := buildLlamaProblems(b)
	prob := probs["mha"]
	spec := cloudSpec()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprint(workers), func(b *testing.B) {
			opts := dpipe.DefaultOptions()
			opts.Parallelism = workers
			for i := 0; i < b.N; i++ {
				if _, err := dpipe.Plan(prob, spec, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Warm-started search: cold vs warm evaluations of the same workload, with
// the hint taken from the neighbouring (half) seq_len's winning plan. The
// headline metric is evals/op — tileseek.spec_evals + dpipe.dp_cells, the
// host-independent objective-evaluation count — reported next to ns/op.

func BenchmarkSearchWarm(b *testing.B) {
	spec := cloudSpec()
	w := pipeline.Workload{Model: model.Llama3(), SeqLen: model.SeqLength64K, Batch: model.EvalBatch}
	neighbour := w
	neighbour.SeqLen = w.SeqLen / 2
	nres, err := pipeline.Evaluate(neighbour, spec, pipeline.TransFusion(), benchOpts())
	if err != nil {
		b.Fatal(err)
	}
	hint := &pipeline.WarmHint{Tile: nres.Tile, Layers: nres.Plans}
	for _, mode := range []string{"cold", "warm"} {
		b.Run(mode, func(b *testing.B) {
			opts := benchOpts()
			// Twice the suite-wide budget: enough rollouts that the warm
			// reduction dominates the fixed per-evaluation overheads.
			opts.TileSeekIterations = 16
			if mode == "warm" {
				opts.WarmHint = hint
			}
			reg := obs.NewRegistry()
			ctx := obs.WithMetrics(context.Background(), reg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pipeline.EvaluateContext(ctx, w, spec, pipeline.TransFusion(), opts); err != nil {
					b.Fatal(err)
				}
			}
			evals := reg.Counter("tileseek.spec_evals").Value() + reg.Counter("dpipe.dp_cells").Value()
			b.ReportMetric(float64(evals)/float64(b.N), "evals/op")
		})
	}
}

func BenchmarkPlanWarm(b *testing.B) {
	probs := buildLlamaProblems(b)
	prob := probs["mha"]
	spec := cloudSpec()
	cold, err := dpipe.Plan(prob, spec, dpipe.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	hint := dpipe.Hint{Order: cold.Order, First: cold.Bipartition.FirstSorted()}
	for _, mode := range []string{"cold", "warm"} {
		b.Run(mode, func(b *testing.B) {
			opts := dpipe.DefaultOptions()
			if mode == "warm" {
				opts.WarmHints = []dpipe.Hint{hint}
			}
			reg := obs.NewRegistry()
			ctx := obs.WithMetrics(context.Background(), reg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dpipe.PlanContext(ctx, prob, spec, opts); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(reg.Counter("dpipe.dp_cells").Value())/float64(b.N), "cells/op")
		})
	}
}

// Sensitivity extensions.

func BenchmarkSensitivityBandwidth(b *testing.B) { benchExperiment(b, "sensitivity-bandwidth") }
func BenchmarkSensitivityCausal(b *testing.B)    { benchExperiment(b, "sensitivity-causal") }

func BenchmarkAblationAttentionPasses(b *testing.B) { benchExperiment(b, "ablation-attention-passes") }
func BenchmarkStackT5(b *testing.B)                 { benchExperiment(b, "stack-t5") }
