package transfusion

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/fusedmindlab/transfusion/internal/arch"
	"github.com/fusedmindlab/transfusion/internal/cascade"
	"github.com/fusedmindlab/transfusion/internal/dpipe"
	"github.com/fusedmindlab/transfusion/internal/einsum"
	"github.com/fusedmindlab/transfusion/internal/eval"
	"github.com/fusedmindlab/transfusion/internal/experiments"
	"github.com/fusedmindlab/transfusion/internal/faults"
	"github.com/fusedmindlab/transfusion/internal/model"
	"github.com/fusedmindlab/transfusion/internal/pipeline"
	"github.com/fusedmindlab/transfusion/internal/report"
	"github.com/fusedmindlab/transfusion/internal/tensor"
	"github.com/fusedmindlab/transfusion/internal/tiling"
)

// Sanity caps on RunSpec extents: large enough for any workload the model
// covers (the paper evaluates up to 1M tokens), small enough to reject
// nonsense before it allocates or loops for hours.
const (
	// MaxSeqLen bounds RunSpec.SeqLen.
	MaxSeqLen = 1 << 24
	// MaxBatch bounds RunSpec.Batch.
	MaxBatch = 1 << 16
)

// RunSpec selects one evaluation.
type RunSpec struct {
	// Arch is an architecture preset name: "cloud", "edge", "edge32",
	// "edge64".
	Arch string
	// Model is a workload name: "bert", "trxl", "t5", "xlm", "llama3".
	Model string
	// SeqLen is the sequence length (e.g. 65536). Must be divisible by the
	// tiling factors the search considers; powers of two are safe.
	SeqLen int
	// System selects the modelled dataflow: "unfused", "flat", "fusemax",
	// "fusemax+layerfuse", "transfusion".
	System string
	// Batch overrides the batch size (default 64, the paper's setting).
	Batch int
	// SearchBudget overrides TileSeek's rollout budget (default 128;
	// only meaningful for the "transfusion" system).
	SearchBudget int
	// Causal selects decoder-style masked attention (each query attends
	// only to itself and earlier positions). The paper's evaluation uses
	// the bidirectional formulation; this is the decoder extension.
	Causal bool
	// HeuristicOnly skips the tile search entirely and evaluates
	// search-backed systems (TransFusion) on the static heuristic tile; the
	// result reports Degraded with a DegradedReason. It is the bottom tier
	// of transfusiond's overload degradation ladder: the heuristic tile is
	// always a valid configuration, so a saturated server can still answer
	// cheaply instead of shedding. Baselines that never search are
	// unaffected. The flag changes the result, so it is part of
	// CanonicalKey: degraded results can never overwrite or serve for
	// full-fidelity cache entries.
	HeuristicOnly bool
	// ArchFile, when set, loads the architecture from a JSON description
	// instead of a preset (see internal/arch's schema); Arch is ignored.
	ArchFile string
	// CustomModel, when non-nil, replaces the zoo model named by Model.
	CustomModel *CustomModel
	// SearchTimeout, when positive, soft-bounds TileSeek's wall-clock time
	// (only meaningful for the "transfusion" system). When it expires the
	// evaluation falls back to the heuristic tile and the result reports
	// Degraded with a DegradedReason instead of failing. Cancellation of
	// the caller's context is unaffected: it still returns ErrCanceled.
	SearchTimeout time.Duration
	// Progress, when set, receives typed progress events (RolloutDoneEvent,
	// PhaseStartEvent/PhaseEndEvent, EnumerationProgressEvent,
	// DegradedEvent) synchronously from the evaluating goroutine. It must be
	// fast and must not block; leave nil for zero overhead. When Parallelism
	// exceeds 1, events may arrive from multiple goroutines (the engine
	// serialises the calls for you).
	Progress ProgressFunc
	// Parallelism bounds the worker pools used across the evaluation: tile
	// search speculation, sub-layer scheduling, and DPipe candidate
	// evaluation. 0 selects GOMAXPROCS; 1 forces the serial path. Results
	// are bit-identical at every setting.
	Parallelism int
	// WarmHint, when non-nil, warm-starts the searches from a previously
	// winning plan — typically the stored result for the nearest sequence
	// length of the same spec family (see internal/store's Nearest).
	// TileSeek pre-expands and pre-visits the hinted tile so its evaluation
	// becomes the incumbent and primes the objective memo; DPipe evaluates
	// the hinted (order, bipartition) first and uses its makespan to abort
	// provably-worse candidate sweeps early. The hint never changes which
	// plan wins a search it is part of: a warm result is deterministic given
	// the hint and never worse than the hint's objective, so it is a
	// full-fidelity answer and is deliberately excluded from CanonicalKey.
	// An invalid or foreign hint is ignored; nil is exactly the cold search.
	WarmHint *PlanSummary
	// SpecChainSteps / SpecLookahead tune the speculative workers used by
	// the tile search when Parallelism exceeds 1 (0 = the defaults of 8 and
	// 256). Speculation only warms the objective memo, so these never change
	// the result and are excluded from CanonicalKey.
	SpecChainSteps int
	SpecLookahead  int
}

// LayerPlan is one sub-layer's winning DPipe schedule in plain serialisable
// form: the phase order, the first-subgraph of the winning bipartition
// (empty when the winner is unpartitioned), and the epoch count it was
// planned for.
type LayerPlan struct {
	Order  []string
	First  []string
	Epochs int64
}

// PlanSummary captures the winning search artifacts of a completed
// evaluation — the outer tile configuration and each sub-layer's winning
// DPipe schedule keyed by problem name ("qproj", "kvproj", "mha", "ln",
// "ffn"). It rides RunResult into the plan store and back out as
// RunSpec.WarmHint, which is how a near-miss request inherits the structure
// of its nearest stored neighbour.
type PlanSummary struct {
	TileB  int
	TileD  int
	TileP  int
	TileM0 int
	TileM1 int
	TileS  int
	Layers map[string]LayerPlan
}

// CustomModel describes a Transformer outside the five-entry zoo by its
// hyper-parameters; D is derived as Heads*HeadDim.
type CustomModel struct {
	Name       string
	Heads      int
	HeadDim    int
	FFNHidden  int
	Layers     int
	Activation string
}

// EnergyBreakdown is the per-component energy in picojoules — the Figure 13
// decomposition.
type EnergyBreakdown struct {
	DRAM    float64
	Buffer  float64
	RegFile float64
	PE      float64
}

// Total sums the components.
func (e EnergyBreakdown) Total() float64 { return e.DRAM + e.Buffer + e.RegFile + e.PE }

// RunResult is the outcome of one evaluation, with plain serialisable
// fields.
type RunResult struct {
	Arch   string
	Model  string
	System string
	SeqLen int
	Batch  int
	// Cycles is the modelled end-to-end latency in PE clock cycles.
	Cycles float64
	// Seconds is Cycles under the architecture's clock.
	Seconds float64
	// EnergyPJ is the modelled energy breakdown.
	EnergyPJ EnergyBreakdown
	// Utilization1D / Utilization2D are the PE arrays' busy fractions.
	Utilization1D float64
	Utilization2D float64
	// LayerCycles attributes latency to the sub-layers ("QKV", "MHA",
	// "Add&LayerNorm", "FFN").
	LayerCycles map[string]float64
	// Tile describes the chosen outer tile.
	Tile string
	// DRAMBytes is the total off-chip traffic.
	DRAMBytes float64
	// TileSearchEvals counts TileSeek objective evaluations (zero for the
	// baselines' static heuristic).
	TileSearchEvals int
	// Degraded reports that the tile search did not complete cleanly and the
	// evaluation fell back to the static heuristic tile (see
	// DegradedReason). The result is still valid, but may be pessimistic
	// relative to a completed search.
	Degraded bool
	// DegradedReason says why, when Degraded is set.
	DegradedReason string
	// Plan is the winning tile and per-sub-layer schedule summary. It is
	// what a warm-started search for a neighbouring spec reuses as
	// RunSpec.WarmHint, and what the plan store persists alongside the
	// metrics.
	Plan *PlanSummary
}

// ArchNames lists the architecture presets.
func ArchNames() []string {
	names := make([]string, 0, 4)
	for n := range arch.Presets() {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ModelNames lists the workload models.
func ModelNames() []string {
	out := make([]string, 0, 5)
	for _, m := range model.All() {
		out = append(out, m.Name)
	}
	return out
}

// SystemNames lists the modelled systems in comparison order.
func SystemNames() []string {
	out := make([]string, 0, 5)
	for _, s := range pipeline.AllSystems() {
		out = append(out, s.Name)
	}
	return out
}

// validate checks the spec's numeric constraints up front, before any
// resolution work, so adversarial or fat-fingered inputs fail fast with an
// error matching ErrInvalidSpec instead of surfacing from deep inside the
// tiling or search machinery.
func (s RunSpec) validate() error {
	switch {
	case s.SeqLen <= 0:
		return faults.Invalidf("transfusion: non-positive sequence length %d", s.SeqLen)
	case s.SeqLen > MaxSeqLen:
		return faults.Invalidf("transfusion: sequence length %d exceeds maximum %d", s.SeqLen, MaxSeqLen)
	case s.Batch < 0:
		return faults.Invalidf("transfusion: negative batch %d (0 selects the default of %d)", s.Batch, model.EvalBatch)
	case s.Batch > MaxBatch:
		return faults.Invalidf("transfusion: batch %d exceeds maximum %d", s.Batch, MaxBatch)
	case s.SearchBudget < 0:
		return faults.Invalidf("transfusion: negative search budget %d (0 selects the default)", s.SearchBudget)
	case s.Parallelism < 0:
		return faults.Invalidf("transfusion: negative parallelism %d (0 selects GOMAXPROCS)", s.Parallelism)
	default:
		return nil
	}
}

// CanonicalKey returns a deterministic string identifying the evaluation the
// spec selects, for use as a cache or coalescing key: two specs with the same
// key produce bit-identical RunResults. String fields are %q-quoted so the
// key is injective — field values containing the separator characters cannot
// collide with a different spec. Defaulted fields are normalised (Batch 0
// becomes the evaluation default; SearchBudget <= 0 the default rollout
// budget, matching resolve, which only overrides the budget when positive),
// so a spec that spells the default explicitly keys identically to one that
// leaves it zero. Progress and Parallelism are deliberately excluded: hooks
// do not change the result, and results are bit-identical at every
// parallelism setting. WarmHint and the speculation knobs are excluded too:
// speculation never changes the result, and a warm-started result is a
// full-fidelity answer for the spec — deterministic given the hint and never
// worse than the hint's objective — so it may be cached and persisted under
// the spec's key.
func (s RunSpec) CanonicalKey() string {
	batch := s.Batch
	if batch == 0 {
		batch = model.EvalBatch
	}
	budget := s.SearchBudget
	if budget <= 0 {
		budget = pipeline.DefaultOptions().TileSeekIterations
	}
	var b strings.Builder
	fmt.Fprintf(&b, "arch=%q|archfile=%q|model=%q|seq=%d|sys=%q|batch=%d|budget=%d|causal=%t|timeout=%s|heur=%t",
		s.Arch, s.ArchFile, s.Model, s.SeqLen, s.System, batch, budget, s.Causal, s.SearchTimeout, s.HeuristicOnly)
	if cm := s.CustomModel; cm != nil {
		fmt.Fprintf(&b, "|custom=%q/%d/%d/%d/%d/%q",
			cm.Name, cm.Heads, cm.HeadDim, cm.FFNHidden, cm.Layers, cm.Activation)
	}
	return b.String()
}

// ParseCanonicalKey inverts CanonicalKey: it reconstructs the RunSpec a key
// renders from, with defaulted fields coming back normalised (Batch and
// SearchBudget explicit) and the keyless fields (Progress, Parallelism,
// WarmHint, the speculation knobs) zero. The boolean reports whether the key
// parses; every true return round-trips, spec.CanonicalKey() == key. The
// plan store uses it to group stored plans into warm-start families — the
// same evaluation at different sequence lengths.
func ParseCanonicalKey(key string) (RunSpec, bool) {
	p := &keyParser{s: key, ok: true}
	var spec RunSpec
	spec.Arch = p.quoted("arch=")
	spec.ArchFile = p.quoted("|archfile=")
	spec.Model = p.quoted("|model=")
	spec.SeqLen = p.num("|seq=")
	spec.System = p.quoted("|sys=")
	spec.Batch = p.num("|batch=")
	spec.SearchBudget = p.num("|budget=")
	spec.Causal = p.boolean("|causal=")
	spec.SearchTimeout = p.duration("|timeout=")
	spec.HeuristicOnly = p.boolean("|heur=")
	if p.ok && strings.HasPrefix(p.s, "|custom=") {
		cm := &CustomModel{}
		cm.Name = p.quoted("|custom=")
		cm.Heads = p.num("/")
		cm.HeadDim = p.num("/")
		cm.FFNHidden = p.num("/")
		cm.Layers = p.num("/")
		cm.Activation = p.quoted("/")
		spec.CustomModel = cm
	}
	if !p.ok || p.s != "" {
		return RunSpec{}, false
	}
	// The round trip is the correctness proof: a parse that does not
	// re-render byte-identically (a malformed quote that happened to
	// unquote, an un-normalised duration spelling) is rejected rather than
	// trusted.
	if spec.CanonicalKey() != key {
		return RunSpec{}, false
	}
	return spec, true
}

// keyParser consumes a canonical key left to right; any failure sticks.
type keyParser struct {
	s  string
	ok bool
}

func (p *keyParser) prefix(label string) bool {
	if !p.ok || !strings.HasPrefix(p.s, label) {
		p.ok = false
		return false
	}
	p.s = p.s[len(label):]
	return true
}

// quoted consumes label followed by a %q-quoted Go string: scan to the
// closing unescaped quote, then let strconv undo the escaping.
func (p *keyParser) quoted(label string) string {
	if !p.prefix(label) {
		return ""
	}
	if len(p.s) == 0 || p.s[0] != '"' {
		p.ok = false
		return ""
	}
	i := 1
	for i < len(p.s) {
		if p.s[i] == '\\' {
			i += 2
			continue
		}
		if p.s[i] == '"' {
			break
		}
		i++
	}
	if i >= len(p.s) {
		p.ok = false
		return ""
	}
	v, err := strconv.Unquote(p.s[:i+1])
	if err != nil {
		p.ok = false
		return ""
	}
	p.s = p.s[i+1:]
	return v
}

func (p *keyParser) num(label string) int {
	if !p.prefix(label) {
		return 0
	}
	i := 0
	if i < len(p.s) && p.s[i] == '-' {
		i++
	}
	for i < len(p.s) && p.s[i] >= '0' && p.s[i] <= '9' {
		i++
	}
	v, err := strconv.Atoi(p.s[:i])
	if err != nil {
		p.ok = false
		return 0
	}
	p.s = p.s[i:]
	return v
}

func (p *keyParser) boolean(label string) bool {
	if !p.prefix(label) {
		return false
	}
	switch {
	case strings.HasPrefix(p.s, "true"):
		p.s = p.s[4:]
		return true
	case strings.HasPrefix(p.s, "false"):
		p.s = p.s[5:]
		return false
	default:
		p.ok = false
		return false
	}
}

func (p *keyParser) duration(label string) time.Duration {
	if !p.prefix(label) {
		return 0
	}
	end := strings.IndexByte(p.s, '|')
	if end < 0 {
		end = len(p.s)
	}
	v, err := time.ParseDuration(p.s[:end])
	if err != nil {
		p.ok = false
		return 0
	}
	p.s = p.s[end:]
	return v
}

func (s RunSpec) resolve() (arch.Spec, model.Config, pipeline.System, pipeline.Options, int, error) {
	if err := s.validate(); err != nil {
		return arch.Spec{}, model.Config{}, pipeline.System{}, pipeline.Options{}, 0, err
	}
	var spec arch.Spec
	var err error
	if s.ArchFile != "" {
		spec, err = arch.FromJSONFile(s.ArchFile)
	} else {
		spec, err = arch.ByName(s.Arch)
	}
	if err != nil {
		return arch.Spec{}, model.Config{}, pipeline.System{}, pipeline.Options{}, 0, err
	}
	var m model.Config
	if cm := s.CustomModel; cm != nil {
		m, err = model.Custom(cm.Name, cm.Heads, cm.HeadDim, cm.FFNHidden, cm.Layers, cm.Activation)
	} else {
		m, err = model.ByName(s.Model)
	}
	if err != nil {
		return arch.Spec{}, model.Config{}, pipeline.System{}, pipeline.Options{}, 0, err
	}
	sys, err := pipeline.SystemByName(s.System)
	if err != nil {
		return arch.Spec{}, model.Config{}, pipeline.System{}, pipeline.Options{}, 0, err
	}
	batch := s.Batch
	if batch == 0 {
		batch = model.EvalBatch
	}
	opts := pipeline.DefaultOptions()
	if s.SearchBudget > 0 {
		opts.TileSeekIterations = s.SearchBudget
	}
	if s.SearchTimeout > 0 {
		opts.TileSeekTimeout = s.SearchTimeout
	}
	opts.Progress = s.Progress
	opts.Parallelism = s.Parallelism
	opts.SkipSearch = s.HeuristicOnly
	opts.WarmHint = s.WarmHint.toPipeline()
	opts.SpecChainSteps = s.SpecChainSteps
	opts.SpecLookahead = s.SpecLookahead
	return spec, m, sys, opts, batch, nil
}

// toPipeline converts the serialisable hint into the engine's form; nil in,
// nil out.
func (p *PlanSummary) toPipeline() *pipeline.WarmHint {
	if p == nil {
		return nil
	}
	h := &pipeline.WarmHint{
		Tile: tiling.Config{B: p.TileB, D: p.TileD, P: p.TileP, M0: p.TileM0, M1: p.TileM1, S: p.TileS},
	}
	if len(p.Layers) > 0 {
		h.Layers = make(map[string]pipeline.LayerPlan, len(p.Layers))
		for name, lp := range p.Layers {
			h.Layers[name] = pipeline.LayerPlan{Order: lp.Order, First: lp.First, Epochs: lp.Epochs}
		}
	}
	return h
}

func toRunResult(r pipeline.Result, batch int) RunResult {
	layers := make(map[string]float64, 4)
	for _, k := range pipeline.LayerKinds() {
		layers[k.String()] = r.LayerCycles[k]
	}
	var plan *PlanSummary
	if len(r.Plans) > 0 {
		plan = &PlanSummary{
			TileB: r.Tile.B, TileD: r.Tile.D, TileP: r.Tile.P,
			TileM0: r.Tile.M0, TileM1: r.Tile.M1, TileS: r.Tile.S,
			Layers: make(map[string]LayerPlan, len(r.Plans)),
		}
		for name, lp := range r.Plans {
			plan.Layers[name] = LayerPlan{Order: lp.Order, First: lp.First, Epochs: lp.Epochs}
		}
	}
	return RunResult{
		Arch:    r.Arch,
		Model:   r.Workload.Model.Name,
		System:  r.System,
		SeqLen:  r.Workload.SeqLen,
		Batch:   batch,
		Cycles:  r.TotalCycles,
		Seconds: r.Seconds,
		EnergyPJ: EnergyBreakdown{
			DRAM: r.Energy.DRAM, Buffer: r.Energy.Buffer,
			RegFile: r.Energy.Reg, PE: r.Energy.PE,
		},
		Utilization1D:   r.Utilization1D(),
		Utilization2D:   r.Utilization2D(),
		LayerCycles:     layers,
		Tile:            r.Tile.String(),
		DRAMBytes:       r.Traffic.DRAMBytes,
		TileSearchEvals: r.TileSearchEvals,
		Degraded:        r.Degraded,
		DegradedReason:  r.DegradedReason,
		Plan:            plan,
	}
}

// Run evaluates one system on one workload/architecture.
func Run(s RunSpec) (RunResult, error) {
	return RunContext(context.Background(), s)
}

// RunContext is Run under a context. Cancelling ctx aborts the tile search
// within one rollout and the schedule search within one candidate, returning
// an error matching ErrCanceled. RunContext never panics: an internal defect
// surfaces as a *InternalError carrying the stack trace.
func RunContext(ctx context.Context, s RunSpec) (res RunResult, err error) {
	defer faults.Recover(&err)
	spec, m, sys, opts, batch, err := s.resolve()
	if err != nil {
		return RunResult{}, err
	}
	w := pipeline.Workload{Model: m, SeqLen: s.SeqLen, Batch: batch, Causal: s.Causal}
	r, err := pipeline.EvaluateContext(ctx, w, spec, sys, opts)
	if err != nil {
		return RunResult{}, err
	}
	return toRunResult(r, batch), nil
}

// Compare evaluates all five systems on one workload/architecture, in the
// paper's comparison order (Unfused first — the common baseline).
func Compare(archName, modelName string, seqLen int) ([]RunResult, error) {
	return CompareContext(context.Background(), archName, modelName, seqLen)
}

// CompareContext is Compare under a context; cancellation aborts the
// in-flight evaluation and returns an error matching ErrCanceled.
func CompareContext(ctx context.Context, archName, modelName string, seqLen int) (out []RunResult, err error) {
	defer faults.Recover(&err)
	out = make([]RunResult, 0, 5)
	for _, name := range SystemNames() {
		r, err := RunContext(ctx, RunSpec{Arch: archName, Model: modelName, SeqLen: seqLen, System: name})
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// ExperimentIDs lists the regenerable paper artifacts (tables, figures,
// headline aggregates, ablations).
func ExperimentIDs() []string {
	out := make([]string, 0, 16)
	for _, e := range experiments.All() {
		out = append(out, e.ID)
	}
	return out
}

// ExperimentDescription returns the one-line description of an experiment.
func ExperimentDescription(id string) (string, error) {
	e, err := experiments.ByID(id)
	if err != nil {
		return "", err
	}
	return e.Description, nil
}

// RunExperiment regenerates one paper artifact and returns its rendered
// table. searchBudget tunes TileSeek's rollout count (0 = default); the
// figures involving TransFusion get slower but slightly better-tiled as it
// grows.
func RunExperiment(id string, searchBudget int) (string, error) {
	return RunExperimentContext(context.Background(), id, searchBudget)
}

// RunExperimentContext is RunExperiment under a context; cancellation aborts
// the in-flight evaluation and returns an error matching ErrCanceled.
func RunExperimentContext(ctx context.Context, id string, searchBudget int) (out string, err error) {
	defer faults.Recover(&err)
	table, err := runExperimentTable(ctx, id, searchBudget)
	if err != nil {
		return "", err
	}
	return table.Render(), nil
}

// RunExperimentCSV regenerates one paper artifact as CSV (header row plus
// one record per table row), for downstream plotting.
func RunExperimentCSV(id string, searchBudget int) (string, error) {
	return RunExperimentCSVContext(context.Background(), id, searchBudget)
}

// RunExperimentCSVContext is RunExperimentCSV under a context.
func RunExperimentCSVContext(ctx context.Context, id string, searchBudget int) (out string, err error) {
	defer faults.Recover(&err)
	table, err := runExperimentTable(ctx, id, searchBudget)
	if err != nil {
		return "", err
	}
	return table.CSV(), nil
}

func runExperimentTable(ctx context.Context, id string, searchBudget int) (*report.Table, error) {
	if searchBudget < 0 {
		return nil, faults.Invalidf("transfusion: negative search budget %d", searchBudget)
	}
	e, err := experiments.ByID(id)
	if err != nil {
		return nil, err
	}
	opts := pipeline.DefaultOptions()
	if searchBudget > 0 {
		opts.TileSeekIterations = searchBudget
	}
	return e.Run(experiments.NewRunnerContext(ctx, opts))
}

// VerifyCascades executes the functional layer end to end: one full
// Transformer layer (QKV -> streaming MHA -> Add&LayerNorm -> FFN) is run
// through the Einsum-cascade interpreter on deterministic random tensors
// and compared against naive reference implementations. It returns the
// maximum absolute deviation (which should be ~1e-12).
func VerifyCascades(seed uint64) (diff float64, err error) {
	defer faults.Recover(&err)
	const d, h, e, p, s, m0 = 8, 2, 4, 6, 10, 3
	input := tensor.Rand(seed+100, tensor.Dim{Name: "d", Size: d}, tensor.Dim{Name: "p", Size: p})
	w := cascade.RandLayerWeights(seed, d, h, e, e, s)
	got, err := cascade.RunLayer(input, w, m0, "gelu")
	if err != nil {
		return 0, err
	}
	// Reference composition.
	q := cascade.RefProject(input, w.WQ, "e")
	k := cascade.RefProject(input, w.WK, "e")
	v := cascade.RefProject(input, w.WV, "f")
	kM := renameDim(k, "p", "m")
	vM := renameDim(v, "p", "m")
	av := cascade.RefAttention(q, kM, vM)
	nr := cascade.RefAddLayerNorm(renameDim(q, "e", "f"), av)
	gelu := func(x float64) float64 { return einsum.GeLU([]float64{x}) }
	want := cascade.RefFFN(nr, w.WF1, w.BF1, w.WF2, w.BF2, gelu)
	return tensor.MaxAbsDiff(got, want), nil
}

// RunStreamingAttention executes Einsum Cascade 1 (the 1-pass streaming
// attention) on the given tensors via the interpreter and returns the
// output AV[h,f,p]; exposed so examples can drive the functional layer
// directly. q is [h,e,p]; k and v are [h,e,m] / [h,f,m]; m0 is the inner
// tile length and must divide m.
func RunStreamingAttention(q, k, v *tensor.Tensor, m0 int) (out *tensor.Tensor, err error) {
	defer faults.Recover(&err)
	m := k.MustSize("m")
	if m0 <= 0 || m%m0 != 0 {
		return nil, faults.Invalidf("transfusion: m0=%d does not divide m=%d", m0, m)
	}
	env := eval.Env{
		"Q":  q,
		"BK": k.SplitDim("m", "m1", "m0", m0),
		"BV": v.SplitDim("m", "m1", "m0", m0),
	}
	dims := map[string]int{
		"h": q.MustSize("h"), "e": q.MustSize("e"), "f": v.MustSize("f"),
		"p": q.MustSize("p"), "m1": m / m0, "m0": m0,
	}
	res, err := cascade.Attention().Run(env, dims)
	if err != nil {
		return nil, err
	}
	return res["AV"], nil
}

// ReferenceAttention computes naive full-softmax attention for comparison
// with RunStreamingAttention. q is [h,e,p]; k and v are [h,e,m] / [h,f,m].
func ReferenceAttention(q, k, v *tensor.Tensor) *tensor.Tensor {
	return cascade.RefAttention(q, k, v)
}

// RandTensor builds a deterministic pseudo-random tensor; dims alternate
// name/size pairs, e.g. RandTensor(1, "h", 2, "e", 4, "p", 8).
func RandTensor(seed uint64, dims ...interface{}) (out *tensor.Tensor, err error) {
	defer faults.Recover(&err)
	if len(dims)%2 != 0 {
		return nil, faults.Invalidf("transfusion: RandTensor needs name/size pairs")
	}
	td := make([]tensor.Dim, 0, len(dims)/2)
	for i := 0; i < len(dims); i += 2 {
		name, ok := dims[i].(string)
		if !ok {
			return nil, faults.Invalidf("transfusion: dim name %v is not a string", dims[i])
		}
		size, ok := dims[i+1].(int)
		if !ok {
			return nil, faults.Invalidf("transfusion: dim size %v is not an int", dims[i+1])
		}
		if size <= 0 {
			return nil, faults.Invalidf("transfusion: non-positive size %d for dim %q", size, name)
		}
		td = append(td, tensor.Dim{Name: name, Size: size})
	}
	return tensor.Rand(seed, td...), nil
}

// MaxAbsDiff compares two tensors elementwise (dimension-order
// insensitive).
func MaxAbsDiff(a, b *tensor.Tensor) float64 { return tensor.MaxAbsDiff(a, b) }

func renameDim(t *tensor.Tensor, from, to string) *tensor.Tensor {
	dims := t.Dims()
	for i := range dims {
		if dims[i].Name == from {
			dims[i].Name = to
		}
	}
	out := tensor.New(dims...)
	copy(out.Data(), t.Data())
	return out
}

// ScheduleTrace builds the DPipe schedule for one sub-layer of a workload
// ("qproj", "kvproj", "mha", "ln", "ffn") and renders it as an ASCII Gantt
// chart over the given number of explicit epochs, plus the schedule
// statistics. It is the introspection behind `transfusion -trace`.
func ScheduleTrace(archName, modelName string, seqLen int, layer string, epochs, width int) (out string, err error) {
	defer faults.Recover(&err)
	if seqLen <= 0 || seqLen > MaxSeqLen {
		return "", faults.Invalidf("transfusion: sequence length %d out of range (1..%d)", seqLen, MaxSeqLen)
	}
	spec, err := arch.ByName(archName)
	if err != nil {
		return "", err
	}
	m, err := model.ByName(modelName)
	if err != nil {
		return "", err
	}
	w := pipeline.Workload{Model: m, SeqLen: seqLen, Batch: model.EvalBatch}
	tile, err := tiling.HeuristicTile(w, spec)
	if err != nil {
		return "", err
	}
	probs, err := pipeline.BuildProblems(w, spec, pipeline.TransFusion(), tile)
	if err != nil {
		return "", err
	}
	prob, ok := probs[layer]
	if !ok {
		return "", faults.Invalidf("transfusion: unknown sub-layer %q (have qproj, kvproj, mha, ln, ffn)", layer)
	}
	plan, err := dpipe.Plan(prob, spec, dpipe.DefaultOptions())
	if err != nil {
		return "", err
	}
	if epochs < 1 {
		epochs = 4
	}
	if int64(epochs) > prob.Epochs {
		epochs = int(prob.Epochs)
	}
	tr, err := dpipe.TraceSchedule(prob, spec, plan.Order, plan.Bipartition.First, epochs, nil)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(tr.Gantt(width))
	busy2, busy1 := tr.BusyCycles()
	fmt.Fprintf(&b, "2D busy %.0f%%, 1D busy %.0f%% over %d explicit epochs; full-problem plan: %.4g cycles, %d candidate schedules\n",
		100*busy2/tr.Makespan, 100*busy1/tr.Makespan, epochs, plan.TotalCycles, plan.Candidates)
	return b.String(), nil
}

// RunCausalAttention executes the masked (decoder-style) streaming
// attention cascade: each query at global position qStart+i attends only to
// keys at positions <= qStart+i. Shapes follow RunStreamingAttention.
func RunCausalAttention(q, k, v *tensor.Tensor, m0, qStart int) (av *tensor.Tensor, err error) {
	defer faults.Recover(&err)
	m := k.MustSize("m")
	if m0 <= 0 || m%m0 != 0 {
		return nil, faults.Invalidf("transfusion: m0=%d does not divide m=%d", m0, m)
	}
	if qStart < 0 {
		return nil, faults.Invalidf("transfusion: negative qStart %d", qStart)
	}
	m1 := m / m0
	p := q.MustSize("p")
	env := eval.Env{
		"Q":    q,
		"BK":   k.SplitDim("m", "m1", "m0", m0),
		"BV":   v.SplitDim("m", "m1", "m0", m0),
		"MASK": cascade.CausalMask(m1, m0, p, qStart),
	}
	dims := map[string]int{
		"h": q.MustSize("h"), "e": q.MustSize("e"), "f": v.MustSize("f"),
		"p": p, "m1": m1, "m0": m0,
	}
	out, err := cascade.CausalAttention().Run(env, dims)
	if err != nil {
		return nil, err
	}
	return out["AV"], nil
}

// ReferenceCausalAttention is the naive masked reference for
// RunCausalAttention.
func ReferenceCausalAttention(q, k, v *tensor.Tensor, qStart int) *tensor.Tensor {
	return cascade.RefCausalAttention(q, k, v, qStart)
}

// StackSpec selects an encoder-decoder evaluation (§3.2's hybrid
// composition): an encoder stack over EncSeq source tokens, a causal
// decoder stack over DecSeq target tokens, and per-decoder-layer
// cross-attention over the encoder memory.
type StackSpec struct {
	Arch         string
	Model        string
	System       string
	EncSeq       int
	DecSeq       int
	Batch        int
	SearchBudget int
}

// StackResult aggregates the three stages of an encoder-decoder run.
type StackResult struct {
	Encoder      RunResult
	DecoderSelf  RunResult
	DecoderCross RunResult
	Cycles       float64
	Seconds      float64
	EnergyPJ     EnergyBreakdown
}

// RunEncoderDecoder evaluates a full encoder-decoder Transformer stack.
func RunEncoderDecoder(s StackSpec) (StackResult, error) {
	return RunEncoderDecoderContext(context.Background(), s)
}

// RunEncoderDecoderContext is RunEncoderDecoder under a context.
func RunEncoderDecoderContext(ctx context.Context, s StackSpec) (sr StackResult, err error) {
	defer faults.Recover(&err)
	if s.DecSeq <= 0 || s.DecSeq > MaxSeqLen {
		return StackResult{}, faults.Invalidf("transfusion: decoder sequence length %d out of range (1..%d)", s.DecSeq, MaxSeqLen)
	}
	spec, m, sys, opts, batch, err := RunSpec{
		Arch: s.Arch, Model: s.Model, System: s.System,
		SeqLen: s.EncSeq, Batch: s.Batch, SearchBudget: s.SearchBudget,
	}.resolve()
	if err != nil {
		return StackResult{}, err
	}
	w := pipeline.Workload{Model: m, Batch: batch}
	res, err := pipeline.EvaluateEncoderDecoderContext(ctx, w, s.EncSeq, s.DecSeq, spec, sys, opts)
	if err != nil {
		return StackResult{}, err
	}
	out := StackResult{
		Encoder:      toRunResult(res.Encoder, batch),
		DecoderSelf:  toRunResult(res.DecoderSelf, batch),
		DecoderCross: toRunResult(res.DecoderCross, batch),
		Cycles:       res.TotalCycles,
		Seconds:      res.Seconds,
	}
	out.EnergyPJ = EnergyBreakdown{
		DRAM:    res.Energy.DRAM,
		Buffer:  res.Energy.Buffer,
		RegFile: res.Energy.Reg,
		PE:      res.Energy.PE,
	}
	return out, nil
}

// Explain evaluates a run and renders its per-phase anatomy: each phase's
// instance count, compute cycles, DRAM bytes, rooflined time, and whether
// it is compute- or memory-bound — the roofline analysis behind
// `transfusion -explain`.
func Explain(s RunSpec) (out string, err error) {
	defer faults.Recover(&err)
	spec, m, sys, opts, batch, err := s.resolve()
	if err != nil {
		return "", err
	}
	w := pipeline.Workload{Model: m, SeqLen: s.SeqLen, Batch: batch, Causal: s.Causal}
	res, err := pipeline.Evaluate(w, spec, sys, opts)
	if err != nil {
		return "", err
	}
	tb := report.NewTable(
		fmt.Sprintf("%s / %s / %s @ %d tokens: per-phase anatomy (one layer's phases; x%d layers)",
			sys.Name, spec.Name, m.Name, s.SeqLen, m.Layers),
		"Phase", "Instances", "Compute cyc", "DRAM bytes", "Time cyc", "Bound", "Share")
	for _, ph := range res.Phases {
		bound := "compute"
		if ph.TimeCycles > ph.ComputeCycles {
			bound = "memory"
		}
		share := ph.TimeCycles * float64(ph.Instances) * float64(m.Layers) / res.TotalCycles
		tb.AddRow(ph.Name,
			fmt.Sprint(ph.Instances),
			report.Sci(ph.ComputeCycles),
			report.Sci(float64(ph.DRAMBytes)),
			report.Sci(ph.TimeCycles),
			bound,
			report.Pct(share))
	}
	var b strings.Builder
	b.WriteString(tb.Render())
	fmt.Fprintf(&b, "total %.4g cycles (%.4g s), tile %s, 2D util %.0f%%, 1D util %.0f%%\n",
		res.TotalCycles, res.Seconds, res.Tile, res.Utilization2D()*100, res.Utilization1D()*100)
	return b.String(), nil
}
