module github.com/fusedmindlab/transfusion

go 1.22
