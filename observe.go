package transfusion

// Observability surface: the instrumentation layer lives in internal/obs;
// this file re-exports (via type aliases) the pieces external callers need —
// attaching a structured logger and a metrics registry to the evaluation
// context, receiving typed progress events, and exporting DPipe schedules as
// Chrome trace_event JSON for chrome://tracing / Perfetto.

import (
	"context"
	"io"
	"log/slog"

	"github.com/fusedmindlab/transfusion/internal/arch"
	"github.com/fusedmindlab/transfusion/internal/dpipe"
	"github.com/fusedmindlab/transfusion/internal/experiments"
	"github.com/fusedmindlab/transfusion/internal/faults"
	"github.com/fusedmindlab/transfusion/internal/model"
	"github.com/fusedmindlab/transfusion/internal/obs"
	"github.com/fusedmindlab/transfusion/internal/pipeline"
	"github.com/fusedmindlab/transfusion/internal/tiling"
)

// ProgressEvent is a typed progress notification; see the concrete event
// types for what each carries.
type ProgressEvent = obs.Event

// ProgressFunc receives progress events; set it on RunSpec.Progress. Hooks
// run synchronously on the evaluating goroutine and must be fast. A nil hook
// costs nothing — events are neither constructed nor boxed.
type ProgressFunc = obs.ProgressFunc

// The concrete progress event types.
type (
	// PhaseStartEvent marks entry into a named evaluation phase.
	PhaseStartEvent = obs.PhaseStart
	// PhaseEndEvent marks completion of a phase with its wall-clock time.
	PhaseEndEvent = obs.PhaseEnd
	// RolloutDoneEvent reports one completed TileSeek MCTS rollout.
	RolloutDoneEvent = obs.RolloutDone
	// EnumerationProgressEvent reports one DPipe bipartition enumeration.
	EnumerationProgressEvent = obs.EnumerationProgress
	// DegradedEvent reports a fallback to the heuristic tile.
	DegradedEvent = obs.Degraded
)

// Metrics is an atomic counters/gauges/histograms registry. Attach one to
// the evaluation context with WithMetrics and read it back with Snapshot
// after the run; see the README's Observability section for the metric
// names the pipeline populates.
type Metrics = obs.Registry

// MetricsSnapshot is a point-in-time copy of a Metrics registry,
// serialisable via its JSON and WriteText methods.
type MetricsSnapshot = obs.Snapshot

// NewMetrics creates an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// WithMetrics returns a context whose evaluations record into m.
func WithMetrics(ctx context.Context, m *Metrics) context.Context {
	return obs.WithMetrics(ctx, m)
}

// WithLogger returns a context whose evaluations log through l (a
// *log/slog.Logger). Without one, logging is disabled at zero cost.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return obs.WithLogger(ctx, l)
}

// NewLogger builds a structured logger writing text (or JSON when json is
// set) lines to w at the given level; pair it with WithLogger.
func NewLogger(w io.Writer, level slog.Level, json bool) *slog.Logger {
	return obs.NewLogger(w, level, json)
}

// ParseLogLevel resolves a level name ("debug", "info", "warn", "error")
// case-insensitively, for CLI -log-level flags.
func ParseLogLevel(s string) (slog.Level, error) { return obs.ParseLevel(s) }

// ChromeTraceSchedule builds the DPipe schedule of every sub-layer of the
// workload (qproj, kvproj, mha, ln, ffn — the TransFusion system on the
// heuristic tile, as ScheduleTrace does for one sub-layer) over the given
// number of explicit epochs, and renders them all as one Chrome trace_event
// JSON document: one process per sub-layer, one thread per PE array, one
// complete event per scheduled op instance, with one modelled cycle mapped
// to one microsecond. The output loads directly in chrome://tracing and
// Perfetto. It is the exporter behind `transfusion -trace-out`.
func ChromeTraceSchedule(archName, modelName string, seqLen, epochs int) (out []byte, err error) {
	defer faults.Recover(&err)
	if seqLen <= 0 || seqLen > MaxSeqLen {
		return nil, faults.Invalidf("transfusion: sequence length %d out of range (1..%d)", seqLen, MaxSeqLen)
	}
	if epochs < 1 {
		epochs = 4
	}
	spec, err := arch.ByName(archName)
	if err != nil {
		return nil, err
	}
	m, err := model.ByName(modelName)
	if err != nil {
		return nil, err
	}
	w := pipeline.Workload{Model: m, SeqLen: seqLen, Batch: model.EvalBatch}
	tile, err := tiling.HeuristicTile(w, spec)
	if err != nil {
		return nil, err
	}
	probs, err := pipeline.BuildProblems(w, spec, pipeline.TransFusion(), tile)
	if err != nil {
		return nil, err
	}
	var events []obs.TraceEvent
	for pid, name := range []string{"qproj", "kvproj", "mha", "ln", "ffn"} {
		prob := probs[name]
		plan, err := dpipe.Plan(prob, spec, dpipe.DefaultOptions())
		if err != nil {
			return nil, err
		}
		n := epochs
		if int64(n) > prob.Epochs {
			n = int(prob.Epochs)
		}
		tr, err := dpipe.TraceSchedule(prob, spec, plan.Order, plan.Bipartition.First, n, nil)
		if err != nil {
			return nil, err
		}
		events = append(events, tr.ChromeTraceEvents(pid+1)...)
	}
	return obs.MarshalChromeTrace(events)
}

// ExperimentReport is one regenerated artifact plus the observability
// side-channel collected while producing it.
type ExperimentReport struct {
	// ID is the experiment's identifier.
	ID string
	// Output is the rendered table (or CSV when requested).
	Output string
	// Notes lists degraded evaluations encountered while regenerating the
	// artifact, one line each ("arch|model|seq|system: degraded: reason").
	Notes []string
}

// RunExperimentReportContext regenerates one paper artifact like
// RunExperimentContext, but also returns the degradation notes so callers
// (cmd/experiments) can surface incomplete searches instead of silently
// folding them into the numbers. csv selects CSV output instead of the
// rendered table. parallelism bounds the worker pools used across the run —
// independent grid cells, tile-search speculation, and DPipe candidate
// evaluation (0 selects GOMAXPROCS, 1 forces the serial path); the rendered
// tables are bit-identical at every setting.
func RunExperimentReportContext(ctx context.Context, id string, searchBudget, parallelism int, csv bool) (ExperimentReport, error) {
	return RunExperimentReportOptions(ctx, id, ExperimentRunOptions{
		SearchBudget: searchBudget, Parallelism: parallelism, CSV: csv,
	})
}

// ExperimentRunOptions tunes one artifact regeneration; the zero value takes
// every default.
type ExperimentRunOptions struct {
	// SearchBudget overrides the TileSeek rollout budget (0 = default).
	SearchBudget int
	// Parallelism bounds the worker pools used across the run (0 selects
	// GOMAXPROCS, 1 forces the serial path); the rendered tables are
	// bit-identical at every setting.
	Parallelism int
	// SpecChainSteps and SpecLookahead tune the parallel tile search's
	// speculation (see RunSpec); zero keeps each default, and no setting
	// changes the rendered tables.
	SpecChainSteps int
	SpecLookahead  int
	// CSV selects CSV output instead of the rendered table.
	CSV bool
}

// RunExperimentReportOptions is RunExperimentReportContext with the full
// option set.
func RunExperimentReportOptions(ctx context.Context, id string, o ExperimentRunOptions) (rep ExperimentReport, err error) {
	defer faults.Recover(&err)
	if o.SearchBudget < 0 {
		return ExperimentReport{}, faults.Invalidf("transfusion: negative search budget %d", o.SearchBudget)
	}
	if o.Parallelism < 0 {
		return ExperimentReport{}, faults.Invalidf("transfusion: negative parallelism %d (0 selects GOMAXPROCS)", o.Parallelism)
	}
	e, err := experiments.ByID(id)
	if err != nil {
		return ExperimentReport{}, err
	}
	opts := pipeline.DefaultOptions()
	if o.SearchBudget > 0 {
		opts.TileSeekIterations = o.SearchBudget
	}
	opts.Parallelism = o.Parallelism
	opts.SpecChainSteps = o.SpecChainSteps
	opts.SpecLookahead = o.SpecLookahead
	runner := experiments.NewRunnerContext(ctx, opts)
	table, err := e.Run(runner)
	if err != nil {
		return ExperimentReport{}, err
	}
	rep = ExperimentReport{ID: id, Notes: runner.Notes()}
	if o.CSV {
		rep.Output = table.CSV()
	} else {
		rep.Output = table.Render()
	}
	return rep, nil
}
