package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(Dim{"a", 2}, Dim{"b", 3})
	if x.Len() != 6 {
		t.Fatalf("Len = %d, want 6", x.Len())
	}
	for i := 0; i < x.Len(); i++ {
		if x.AtFlat(i) != 0 {
			t.Fatalf("element %d = %v, want 0", i, x.AtFlat(i))
		}
	}
	if x.Rank() != 2 {
		t.Fatalf("Rank = %d, want 2", x.Rank())
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	cases := []struct {
		name string
		dims []Dim
	}{
		{"zero size", []Dim{{"a", 0}}},
		{"negative size", []Dim{{"a", -1}}},
		{"empty name", []Dim{{"", 3}}},
		{"duplicate name", []Dim{{"a", 2}, {"a", 3}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%v) did not panic", c.dims)
				}
			}()
			New(c.dims...)
		})
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	x := New(Dim{"h", 2}, Dim{"p", 3})
	x.Set(map[string]int{"h": 1, "p": 2}, 42)
	if got := x.At(map[string]int{"h": 1, "p": 2}); got != 42 {
		t.Fatalf("At = %v, want 42", got)
	}
	// Row-major layout: (h=1, p=2) should be flat index 1*3+2 = 5.
	if got := x.AtFlat(5); got != 42 {
		t.Fatalf("AtFlat(5) = %v, want 42", got)
	}
}

func TestAtIgnoresExtraCoordinates(t *testing.T) {
	x := New(Dim{"a", 2})
	x.Set(map[string]int{"a": 1, "unused": 99}, 7)
	if got := x.At(map[string]int{"a": 1, "z": 3}); got != 7 {
		t.Fatalf("At with extra coords = %v, want 7", got)
	}
}

func TestAtPanicsOnMissingCoordinate(t *testing.T) {
	x := New(Dim{"a", 2}, Dim{"b", 2})
	defer func() {
		if recover() == nil {
			t.Fatal("At without full coordinates did not panic")
		}
	}()
	x.At(map[string]int{"a": 0})
}

func TestAtPanicsOnOutOfRange(t *testing.T) {
	x := New(Dim{"a", 2})
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	x.At(map[string]int{"a": 2})
}

func TestScalar(t *testing.T) {
	s := Scalar(3.5)
	if s.Rank() != 0 || s.Len() != 1 {
		t.Fatalf("Scalar rank/len = %d/%d, want 0/1", s.Rank(), s.Len())
	}
	if got := s.At(map[string]int{}); got != 3.5 {
		t.Fatalf("Scalar value = %v, want 3.5", got)
	}
}

func TestEachVisitsRowMajor(t *testing.T) {
	x := New(Dim{"a", 2}, Dim{"b", 2})
	for i := 0; i < 4; i++ {
		x.SetFlat(i, float64(i))
	}
	var visited []float64
	x.Each(func(_ map[string]int, v float64) { visited = append(visited, v) })
	want := []float64{0, 1, 2, 3}
	for i := range want {
		if visited[i] != want[i] {
			t.Fatalf("visit order %v, want %v", visited, want)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	x := New(Dim{"a", 2}).Fill(1)
	y := x.Clone()
	y.SetFlat(0, 9)
	if x.AtFlat(0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestSliceRemovesDim(t *testing.T) {
	x := New(Dim{"h", 2}, Dim{"p", 3})
	x.Set(map[string]int{"h": 1, "p": 2}, 5)
	s := x.Slice("h", 1)
	if s.Rank() != 1 || !s.HasDim("p") {
		t.Fatalf("Slice dims = %v", s.DimNames())
	}
	if got := s.At(map[string]int{"p": 2}); got != 5 {
		t.Fatalf("Slice value = %v, want 5", got)
	}
}

func TestNarrow(t *testing.T) {
	x := New(Dim{"p", 6})
	for i := 0; i < 6; i++ {
		x.SetFlat(i, float64(i))
	}
	n := x.Narrow("p", 2, 3)
	if n.MustSize("p") != 3 {
		t.Fatalf("Narrow size = %d, want 3", n.MustSize("p"))
	}
	for i := 0; i < 3; i++ {
		if got := n.At(map[string]int{"p": i}); got != float64(i+2) {
			t.Fatalf("Narrow[%d] = %v, want %v", i, got, float64(i+2))
		}
	}
}

func TestSplitMergeRoundTrip(t *testing.T) {
	x := Rand(1, Dim{"h", 2}, Dim{"m", 12})
	split := x.SplitDim("m", "m1", "m0", 4)
	if split.MustSize("m1") != 3 || split.MustSize("m0") != 4 {
		t.Fatalf("SplitDim sizes m1=%d m0=%d", split.MustSize("m1"), split.MustSize("m0"))
	}
	// Element (h, m=i) must appear at (h, m1=i/4, m0=i%4).
	for i := 0; i < 12; i++ {
		a := x.At(map[string]int{"h": 1, "m": i})
		b := split.At(map[string]int{"h": 1, "m1": i / 4, "m0": i % 4})
		if a != b {
			t.Fatalf("split mismatch at m=%d: %v vs %v", i, a, b)
		}
	}
	merged := split.MergeDims("m1", "m0", "m")
	if MaxAbsDiff(x, merged) != 0 {
		t.Fatal("MergeDims did not invert SplitDim")
	}
}

func TestTranspose(t *testing.T) {
	x := Rand(2, Dim{"a", 3}, Dim{"b", 4})
	y := x.Transpose("b", "a")
	if y.DimNames()[0] != "b" {
		t.Fatalf("Transpose order = %v", y.DimNames())
	}
	if MaxAbsDiff(x, y) != 0 {
		t.Fatal("Transpose changed values")
	}
}

func TestApply(t *testing.T) {
	x := New(Dim{"a", 3}).Fill(2)
	x.Apply(func(v float64) float64 { return v * v })
	for i := 0; i < 3; i++ {
		if x.AtFlat(i) != 4 {
			t.Fatalf("Apply result = %v, want 4", x.AtFlat(i))
		}
	}
}

func TestMaxAbsDiffDimOrderInsensitive(t *testing.T) {
	x := Rand(3, Dim{"a", 2}, Dim{"b", 3})
	y := x.Transpose("b", "a")
	if d := MaxAbsDiff(x, y); d != 0 {
		t.Fatalf("MaxAbsDiff across dim orders = %v, want 0", d)
	}
}

func TestMaxAbsDiffPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MaxAbsDiff with mismatched dims did not panic")
		}
	}()
	MaxAbsDiff(New(Dim{"a", 2}), New(Dim{"a", 3}))
}

func TestRandDeterministic(t *testing.T) {
	a := Rand(7, Dim{"x", 16})
	b := Rand(7, Dim{"x", 16})
	if MaxAbsDiff(a, b) != 0 {
		t.Fatal("Rand with same seed differs")
	}
	c := Rand(8, Dim{"x", 16})
	if MaxAbsDiff(a, c) == 0 {
		t.Fatal("Rand with different seeds identical")
	}
}

func TestRandRange(t *testing.T) {
	a := Rand(11, Dim{"x", 1024})
	for i := 0; i < a.Len(); i++ {
		v := a.AtFlat(i)
		if v < -1 || v >= 1 || math.IsNaN(v) {
			t.Fatalf("Rand value %v out of [-1,1)", v)
		}
	}
	p := RandPositive(11, Dim{"x", 1024})
	for i := 0; i < p.Len(); i++ {
		v := p.AtFlat(i)
		if v <= 0 || v > 1 {
			t.Fatalf("RandPositive value %v out of (0,1]", v)
		}
	}
}

// Property: SplitDim followed by MergeDims is the identity for any valid
// inner factor.
func TestQuickSplitMergeIdentity(t *testing.T) {
	f := func(seed uint64, outerRaw, innerRaw uint8) bool {
		outer := int(outerRaw%6) + 1
		inner := int(innerRaw%6) + 1
		x := Rand(seed|1, Dim{"m", outer * inner}, Dim{"k", 3})
		y := x.SplitDim("m", "m1", "m0", inner).MergeDims("m1", "m0", "m")
		return MaxAbsDiff(x, y) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Transpose preserves values under any permutation of 3 dims.
func TestQuickTransposeValuePreserving(t *testing.T) {
	perms := [][]string{
		{"a", "b", "c"}, {"a", "c", "b"}, {"b", "a", "c"},
		{"b", "c", "a"}, {"c", "a", "b"}, {"c", "b", "a"},
	}
	f := func(seed uint64, permIdx uint8) bool {
		x := Rand(seed|1, Dim{"a", 2}, Dim{"b", 3}, Dim{"c", 4})
		y := x.Transpose(perms[int(permIdx)%len(perms)]...)
		return MaxAbsDiff(x, y) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	x := New(Dim{"h", 8}, Dim{"e", 64})
	if got := x.String(); got != "Tensor[h:8 e:64]" {
		t.Fatalf("String = %q", got)
	}
}
