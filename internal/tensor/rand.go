package tensor

// xorshift64star is a tiny deterministic PRNG so functional tests and
// examples are reproducible without importing math/rand's global state.
type xorshift64star struct{ state uint64 }

func (x *xorshift64star) next() uint64 {
	x.state ^= x.state >> 12
	x.state ^= x.state << 25
	x.state ^= x.state >> 27
	return x.state * 0x2545F4914F6CDD1D
}

// float64 returns a uniform value in [0, 1).
func (x *xorshift64star) float64() float64 {
	return float64(x.next()>>11) / (1 << 53)
}

// Rand fills a new tensor of the given dimensions with deterministic
// pseudo-random values in [-1, 1), seeded by seed.
func Rand(seed uint64, dims ...Dim) *Tensor {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	rng := &xorshift64star{state: seed}
	t := New(dims...)
	for i := range t.data {
		t.data[i] = 2*rng.float64() - 1
	}
	return t
}

// RandPositive fills a new tensor with deterministic pseudo-random values in
// (0, 1]; useful for denominators and variance inputs.
func RandPositive(seed uint64, dims ...Dim) *Tensor {
	if seed == 0 {
		seed = 0xDEADBEEFCAFEBABE
	}
	rng := &xorshift64star{state: seed}
	t := New(dims...)
	for i := range t.data {
		t.data[i] = 1 - rng.float64()
	}
	return t
}
