// Package tensor provides a small dense tensor library with named
// dimensions. It is the numeric substrate on which the Extended Einsum
// interpreter (internal/eval) and the cascade executor (internal/cascade)
// run, and is used throughout the test suite to validate that the paper's
// Einsum Cascades are semantically correct (e.g. that the streaming 1-pass
// softmax matches a naive reference).
//
// Dimensions are identified by name ("h", "e", "p", "m0", ...) rather than
// by position, mirroring the index-label notation of Extended Einsums. The
// stored element type is float64; performance modelling elsewhere in the
// repository assumes a configurable element size, so the functional tensors
// here are deliberately decoupled from the modelled datatype width.
package tensor

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Dim is a named dimension with an extent.
type Dim struct {
	Name string
	Size int
}

// Tensor is a dense tensor with named dimensions stored in row-major order
// (the first dimension is the slowest varying).
type Tensor struct {
	dims    []Dim
	strides []int
	data    []float64
}

// New creates a zero-filled tensor with the given dimensions. It panics if a
// dimension has a non-positive size or a duplicated name; tensor construction
// errors are programming errors in this codebase, not runtime conditions.
func New(dims ...Dim) *Tensor {
	seen := make(map[string]bool, len(dims))
	n := 1
	for _, d := range dims {
		if d.Size <= 0 {
			panic(fmt.Sprintf("tensor: dimension %q has non-positive size %d", d.Name, d.Size))
		}
		if d.Name == "" {
			panic("tensor: dimension with empty name")
		}
		if seen[d.Name] {
			panic(fmt.Sprintf("tensor: duplicate dimension %q", d.Name))
		}
		seen[d.Name] = true
		n *= d.Size
	}
	t := &Tensor{
		dims:    append([]Dim(nil), dims...),
		strides: make([]int, len(dims)),
		data:    make([]float64, n),
	}
	stride := 1
	for i := len(dims) - 1; i >= 0; i-- {
		t.strides[i] = stride
		stride *= dims[i].Size
	}
	return t
}

// Scalar creates a zero-dimensional tensor holding v.
func Scalar(v float64) *Tensor {
	t := New()
	t.data[0] = v
	return t
}

// Fill sets every element to v and returns the tensor for chaining.
func (t *Tensor) Fill(v float64) *Tensor {
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.dims) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Dims returns a copy of the dimension list.
func (t *Tensor) Dims() []Dim { return append([]Dim(nil), t.dims...) }

// DimNames returns the dimension names in storage order.
func (t *Tensor) DimNames() []string {
	names := make([]string, len(t.dims))
	for i, d := range t.dims {
		names[i] = d.Name
	}
	return names
}

// Size returns the extent of the named dimension and whether it exists.
func (t *Tensor) Size(name string) (int, bool) {
	for _, d := range t.dims {
		if d.Name == name {
			return d.Size, true
		}
	}
	return 0, false
}

// MustSize returns the extent of the named dimension, panicking if absent.
func (t *Tensor) MustSize(name string) int {
	n, ok := t.Size(name)
	if !ok {
		panic(fmt.Sprintf("tensor: no dimension %q (have %v)", name, t.DimNames()))
	}
	return n
}

// HasDim reports whether the tensor has a dimension with the given name.
func (t *Tensor) HasDim(name string) bool {
	_, ok := t.Size(name)
	return ok
}

// Data returns the underlying storage. Mutating it mutates the tensor.
func (t *Tensor) Data() []float64 { return t.data }

// offset computes the flat index for coordinates given as a map from
// dimension name to index. Extra keys in the map are ignored so a single
// coordinate environment can address tensors of different ranks.
func (t *Tensor) offset(coord map[string]int) int {
	off := 0
	for i, d := range t.dims {
		idx, ok := coord[d.Name]
		if !ok {
			panic(fmt.Sprintf("tensor: coordinate missing dimension %q", d.Name))
		}
		if idx < 0 || idx >= d.Size {
			panic(fmt.Sprintf("tensor: index %d out of range for dimension %q (size %d)", idx, d.Name, d.Size))
		}
		off += idx * t.strides[i]
	}
	return off
}

// At returns the element at the named coordinates.
func (t *Tensor) At(coord map[string]int) float64 { return t.data[t.offset(coord)] }

// Set stores v at the named coordinates.
func (t *Tensor) Set(coord map[string]int, v float64) { t.data[t.offset(coord)] = v }

// AtFlat returns the element at flat index i.
func (t *Tensor) AtFlat(i int) float64 { return t.data[i] }

// SetFlat stores v at flat index i.
func (t *Tensor) SetFlat(i int, v float64) { t.data[i] = v }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.dims...)
	copy(c.data, t.data)
	return c
}

// Each calls f for every coordinate in row-major order. The coordinate map is
// reused between calls; callers must not retain it.
func (t *Tensor) Each(f func(coord map[string]int, v float64)) {
	coord := make(map[string]int, len(t.dims))
	t.each(0, coord, f)
}

func (t *Tensor) each(dim int, coord map[string]int, f func(map[string]int, float64)) {
	if dim == len(t.dims) {
		f(coord, t.data[t.offset(coord)])
		return
	}
	for i := 0; i < t.dims[dim].Size; i++ {
		coord[t.dims[dim].Name] = i
		t.each(dim+1, coord, f)
	}
	delete(coord, t.dims[dim].Name)
}

// Apply replaces every element x with f(x) and returns the tensor.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
	return t
}

// Slice returns a new tensor with the named dimension fixed to index idx;
// the dimension is removed from the result.
func (t *Tensor) Slice(name string, idx int) *Tensor {
	pos := -1
	for i, d := range t.dims {
		if d.Name == name {
			pos = i
			break
		}
	}
	if pos == -1 {
		panic(fmt.Sprintf("tensor: Slice: no dimension %q", name))
	}
	if idx < 0 || idx >= t.dims[pos].Size {
		panic(fmt.Sprintf("tensor: Slice: index %d out of range for %q (size %d)", idx, name, t.dims[pos].Size))
	}
	rest := make([]Dim, 0, len(t.dims)-1)
	for i, d := range t.dims {
		if i != pos {
			rest = append(rest, d)
		}
	}
	out := New(rest...)
	out.Each(func(coord map[string]int, _ float64) {
		coord[name] = idx
		v := t.At(coord)
		delete(coord, name)
		out.Set(coord, v)
	})
	return out
}

// Narrow returns a copy restricted to [start, start+length) along the named
// dimension. The dimension is retained with the reduced extent.
func (t *Tensor) Narrow(name string, start, length int) *Tensor {
	size := t.MustSize(name)
	if start < 0 || length <= 0 || start+length > size {
		panic(fmt.Sprintf("tensor: Narrow: [%d,%d) out of range for %q (size %d)", start, start+length, name, size))
	}
	dims := t.Dims()
	for i := range dims {
		if dims[i].Name == name {
			dims[i].Size = length
		}
	}
	out := New(dims...)
	out.Each(func(coord map[string]int, _ float64) {
		orig := coord[name]
		coord[name] = orig + start
		v := t.At(coord)
		coord[name] = orig
		out.Set(coord, v)
	})
	return out
}

// SplitDim reshapes the named dimension of extent outer*inner into two
// dimensions (outerName slowest, innerName fastest). The element order along
// the original dimension is preserved: original index i maps to
// (i/inner, i%inner). This implements the hierarchical sequence split
// m -> (m1, m0) used by the 1-pass attention cascade.
func (t *Tensor) SplitDim(name, outerName, innerName string, inner int) *Tensor {
	size := t.MustSize(name)
	if inner <= 0 || size%inner != 0 {
		panic(fmt.Sprintf("tensor: SplitDim: extent %d of %q not divisible by inner %d", size, name, inner))
	}
	outer := size / inner
	dims := make([]Dim, 0, len(t.dims)+1)
	for _, d := range t.dims {
		if d.Name == name {
			dims = append(dims, Dim{outerName, outer}, Dim{innerName, inner})
		} else {
			dims = append(dims, d)
		}
	}
	out := New(dims...)
	out.Each(func(coord map[string]int, _ float64) {
		o, in := coord[outerName], coord[innerName]
		src := make(map[string]int, len(coord))
		for k, v := range coord {
			if k != outerName && k != innerName {
				src[k] = v
			}
		}
		src[name] = o*inner + in
		out.Set(coord, t.At(src))
	})
	return out
}

// MergeDims is the inverse of SplitDim: (outerName, innerName) with extents
// (O, I) become a single dimension name of extent O*I, outer-major.
func (t *Tensor) MergeDims(outerName, innerName, name string) *Tensor {
	outer := t.MustSize(outerName)
	inner := t.MustSize(innerName)
	dims := make([]Dim, 0, len(t.dims)-1)
	placed := false
	for _, d := range t.dims {
		switch d.Name {
		case outerName:
			if !placed {
				dims = append(dims, Dim{name, outer * inner})
				placed = true
			}
		case innerName:
			if !placed {
				dims = append(dims, Dim{name, outer * inner})
				placed = true
			}
		default:
			dims = append(dims, d)
		}
	}
	out := New(dims...)
	out.Each(func(coord map[string]int, _ float64) {
		merged := coord[name]
		src := make(map[string]int, len(coord)+1)
		for k, v := range coord {
			if k != name {
				src[k] = v
			}
		}
		src[outerName] = merged / inner
		src[innerName] = merged % inner
		out.Set(coord, t.At(src))
	})
	return out
}

// Transpose returns a copy with the dimensions reordered to the given names,
// which must be a permutation of the tensor's dimension names.
func (t *Tensor) Transpose(names ...string) *Tensor {
	if len(names) != len(t.dims) {
		panic(fmt.Sprintf("tensor: Transpose: got %d names for rank-%d tensor", len(names), len(t.dims)))
	}
	dims := make([]Dim, len(names))
	for i, n := range names {
		size, ok := t.Size(n)
		if !ok {
			panic(fmt.Sprintf("tensor: Transpose: no dimension %q", n))
		}
		dims[i] = Dim{n, size}
	}
	out := New(dims...)
	out.Each(func(coord map[string]int, _ float64) {
		out.Set(coord, t.At(coord))
	})
	return out
}

// MaxAbsDiff returns the maximum absolute elementwise difference between two
// tensors with identical dimension sets (order-insensitive).
func MaxAbsDiff(a, b *Tensor) float64 {
	if !sameDimSet(a, b) {
		panic(fmt.Sprintf("tensor: MaxAbsDiff: dimension mismatch %v vs %v", a.dims, b.dims))
	}
	max := 0.0
	a.Each(func(coord map[string]int, v float64) {
		d := math.Abs(v - b.At(coord))
		if d > max {
			max = d
		}
	})
	return max
}

// AllClose reports whether every element of a is within tol of the matching
// element of b.
func AllClose(a, b *Tensor, tol float64) bool { return MaxAbsDiff(a, b) <= tol }

func sameDimSet(a, b *Tensor) bool {
	if len(a.dims) != len(b.dims) {
		return false
	}
	for _, d := range a.dims {
		s, ok := b.Size(d.Name)
		if !ok || s != d.Size {
			return false
		}
	}
	return true
}

// String renders a compact description, e.g. "Tensor[h:8 e:64 p:128]".
func (t *Tensor) String() string {
	parts := make([]string, len(t.dims))
	for i, d := range t.dims {
		parts[i] = fmt.Sprintf("%s:%d", d.Name, d.Size)
	}
	return "Tensor[" + strings.Join(parts, " ") + "]"
}

// SortedDimNames returns the dimension names sorted lexicographically;
// useful for deterministic test output.
func (t *Tensor) SortedDimNames() []string {
	names := t.DimNames()
	sort.Strings(names)
	return names
}

// Strides returns a copy of the row-major strides, aligned with Dims().
func (t *Tensor) Strides() []int { return append([]int(nil), t.strides...) }
