// Package model defines the Transformer workload zoo used in the paper's
// evaluation (§6.1): BERT-Base, TrXL (Transformer-XL wt103), T5-small, XLM,
// and Llama3-8B, plus the sequence-length sweep and batch size the figures
// use.
package model

import (
	"fmt"

	"github.com/fusedmindlab/transfusion/internal/faults"
)

// Config describes one Transformer model's architecture hyper-parameters in
// the paper's dimension vocabulary.
type Config struct {
	// Name identifies the model ("bert", "trxl", ...).
	Name string
	// D is the model (hidden) dimension; D = H * E.
	D int
	// H is the number of attention heads.
	H int
	// E is the per-head query/key embedding dimension.
	E int
	// F is the per-head value embedding dimension (E == F in every workload).
	F int
	// S is the FFN hidden dimension.
	S int
	// Layers is the encoder/decoder layer count.
	Layers int
	// Activation names the FFN nonlinearity ("relu", "gelu", "silu").
	Activation string
}

// Validate checks internal consistency (in particular D == H*E == H*F).
func (c Config) Validate() error {
	switch {
	case c.Name == "":
		return faults.Invalidf("model: empty name")
	case c.D <= 0 || c.H <= 0 || c.E <= 0 || c.F <= 0 || c.S <= 0 || c.Layers <= 0:
		return faults.Invalidf("model %s: non-positive dimension in %+v", c.Name, c)
	case c.D != c.H*c.E:
		return faults.Invalidf("model %s: D=%d != H*E=%d", c.Name, c.D, c.H*c.E)
	case c.E != c.F:
		return faults.Invalidf("model %s: E=%d != F=%d (the evaluation assumes E == F)", c.Name, c.E, c.F)
	default:
		return nil
	}
}

// InvHF returns 1/(H*F), the LayerNorm mean scale.
func (c Config) InvHF() float64 { return 1 / float64(c.H*c.F) }

// BERT is BERT-Base (Devlin et al.).
func BERT() Config {
	return Config{Name: "bert", D: 768, H: 12, E: 64, F: 64, S: 3072, Layers: 12, Activation: "gelu"}
}

// TrXL is Transformer-XL trained on wt103.
func TrXL() Config {
	return Config{Name: "trxl", D: 1024, H: 16, E: 64, F: 64, S: 4096, Layers: 18, Activation: "relu"}
}

// T5 is T5-small (Raffel et al.).
func T5() Config {
	return Config{Name: "t5", D: 512, H: 8, E: 64, F: 64, S: 2048, Layers: 6, Activation: "relu"}
}

// XLM is the cross-lingual language model (Conneau & Lample).
func XLM() Config {
	return Config{Name: "xlm", D: 1024, H: 8, E: 128, F: 128, S: 4096, Layers: 12, Activation: "gelu"}
}

// Llama3 is Llama3-8B (Grattafiori et al.).
func Llama3() Config {
	return Config{Name: "llama3", D: 4096, H: 32, E: 128, F: 128, S: 14336, Layers: 32, Activation: "silu"}
}

// All returns the five evaluation models in the paper's presentation order.
func All() []Config {
	return []Config{BERT(), TrXL(), T5(), XLM(), Llama3()}
}

// ByName resolves a model by name.
func ByName(name string) (Config, error) {
	for _, c := range All() {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, faults.Invalidf("model: unknown model %q", name)
}

// EvalBatch is the fixed batch size of every experiment (§6.1, following
// FLAT and FuseMax).
const EvalBatch = 64

// SeqLengths is the sequence-length sweep of the scaling figures (1K–1M).
func SeqLengths() []int {
	return []int{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}
}

// SeqLength64K is the fixed length of the cross-model comparison figures.
const SeqLength64K = 64 << 10

// Custom builds a model configuration outside the zoo — the workload
// generator for sweeps beyond the paper's five models. headDim is the
// per-head embedding (E = F); D is derived as heads*headDim.
func Custom(name string, heads, headDim, ffnHidden, layers int, activation string) (Config, error) {
	c := Config{
		Name:       name,
		D:          heads * headDim,
		H:          heads,
		E:          headDim,
		F:          headDim,
		S:          ffnHidden,
		Layers:     layers,
		Activation: activation,
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// Scale returns a copy of the configuration with the head count and FFN
// hidden dimension multiplied by k — a simple family generator for
// model-size sweeps (D scales with the head count).
func (c Config) Scale(k int) (Config, error) {
	if k <= 0 {
		return Config{}, faults.Invalidf("model: non-positive scale %d", k)
	}
	s := c
	s.Name = fmt.Sprintf("%s-x%d", c.Name, k)
	s.H = c.H * k
	s.D = s.H * s.E
	s.S = c.S * k
	return s, s.Validate()
}
