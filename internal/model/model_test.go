package model

import "testing"

func TestAllModelsValidate(t *testing.T) {
	for _, c := range All() {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestZooMatchesPublishedShapes(t *testing.T) {
	cases := []struct {
		cfg     Config
		d, h, s int
	}{
		{BERT(), 768, 12, 3072},
		{TrXL(), 1024, 16, 4096},
		{T5(), 512, 8, 2048},
		{XLM(), 1024, 8, 4096},
		{Llama3(), 4096, 32, 14336},
	}
	for _, c := range cases {
		if c.cfg.D != c.d || c.cfg.H != c.h || c.cfg.S != c.s {
			t.Errorf("%s: got D=%d H=%d S=%d, want D=%d H=%d S=%d",
				c.cfg.Name, c.cfg.D, c.cfg.H, c.cfg.S, c.d, c.h, c.s)
		}
	}
}

func TestValidateRejectsInconsistentConfig(t *testing.T) {
	c := BERT()
	c.E = 32 // breaks D == H*E
	if err := c.Validate(); err == nil {
		t.Fatal("inconsistent D/H/E accepted")
	}
	c = BERT()
	c.F = 32 // breaks E == F
	if err := c.Validate(); err == nil {
		t.Fatal("E != F accepted")
	}
	c = BERT()
	c.Layers = 0
	if err := c.Validate(); err == nil {
		t.Fatal("zero layers accepted")
	}
	c = BERT()
	c.Name = ""
	if err := c.Validate(); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestByName(t *testing.T) {
	c, err := ByName("llama3")
	if err != nil || c.D != 4096 {
		t.Fatalf("ByName(llama3) = %+v, %v", c, err)
	}
	if _, err := ByName("gpt5"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestInvHF(t *testing.T) {
	c := BERT()
	if got := c.InvHF(); got != 1.0/768 {
		t.Fatalf("InvHF = %v, want %v", got, 1.0/768)
	}
}

func TestSeqLengths(t *testing.T) {
	ls := SeqLengths()
	if ls[0] != 1024 || ls[len(ls)-1] != 1<<20 {
		t.Fatalf("SeqLengths = %v", ls)
	}
	for i := 1; i < len(ls); i++ {
		if ls[i] <= ls[i-1] {
			t.Fatalf("SeqLengths not increasing: %v", ls)
		}
	}
	found := false
	for _, l := range ls {
		if l == SeqLength64K {
			found = true
		}
	}
	if !found {
		t.Fatal("64K missing from the sweep")
	}
}

func TestCustom(t *testing.T) {
	c, err := Custom("tiny", 4, 32, 512, 2, "relu")
	if err != nil {
		t.Fatal(err)
	}
	if c.D != 128 || c.E != 32 || c.F != 32 {
		t.Fatalf("Custom derived %+v", c)
	}
	if _, err := Custom("bad", 0, 32, 512, 2, "relu"); err == nil {
		t.Fatal("zero heads accepted")
	}
}

func TestScale(t *testing.T) {
	base := BERT()
	big, err := base.Scale(2)
	if err != nil {
		t.Fatal(err)
	}
	if big.D != 2*base.D || big.S != 2*base.S || big.H != 2*base.H {
		t.Fatalf("Scale(2) = %+v", big)
	}
	if big.E != base.E {
		t.Fatal("Scale changed the head dimension")
	}
	if _, err := base.Scale(0); err == nil {
		t.Fatal("zero scale accepted")
	}
}
