package graph

import (
	"strings"
	"testing"
	"testing/quick"
)

// chain builds a -> b -> c -> ...
func chain(ids ...string) *DAG {
	g := New()
	for i := 0; i < len(ids)-1; i++ {
		g.AddEdge(ids[i], ids[i+1])
	}
	return g
}

// diamond builds a -> b, a -> c, b -> d, c -> d.
func diamond() *DAG {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("a", "c")
	g.AddEdge("b", "d")
	g.AddEdge("c", "d")
	return g
}

func TestTopoSortChain(t *testing.T) {
	g := chain("a", "b", "c")
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, "") != "abc" {
		t.Fatalf("order = %v", order)
	}
}

func TestTopoSortDeterministic(t *testing.T) {
	g := diamond()
	o1, _ := g.TopoSort()
	o2, _ := g.TopoSort()
	if strings.Join(o1, "") != strings.Join(o2, "") {
		t.Fatalf("nondeterministic topo sort: %v vs %v", o1, o2)
	}
	// Lexicographic tie-break: b before c.
	if strings.Join(o1, "") != "abcd" {
		t.Fatalf("order = %v, want [a b c d]", o1)
	}
}

func TestTopoSortDetectsCycle(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "a")
	if _, err := g.TopoSort(); err == nil {
		t.Fatal("cycle not detected")
	}
	if g.IsAcyclic() {
		t.Fatal("IsAcyclic true for cyclic graph")
	}
}

func TestSourcesSinks(t *testing.T) {
	g := diamond()
	if got := g.Sources(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("Sources = %v", got)
	}
	if got := g.Sinks(); len(got) != 1 || got[0] != "d" {
		t.Fatalf("Sinks = %v", got)
	}
}

func TestDuplicateEdgeIgnored(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("a", "b")
	if got := len(g.Succ("a")); got != 1 {
		t.Fatalf("duplicate edge stored: %d successors", got)
	}
	if got := len(g.Pred("b")); got != 1 {
		t.Fatalf("duplicate edge stored: %d predecessors", got)
	}
}

func TestReachableFrom(t *testing.T) {
	g := diamond()
	g.AddNode("island")
	r := g.ReachableFrom("b")
	if !r["b"] || !r["d"] || r["a"] || r["c"] || r["island"] {
		t.Fatalf("ReachableFrom(b) = %v", r)
	}
}

func TestWeaklyConnected(t *testing.T) {
	g := diamond()
	if !g.WeaklyConnected(map[string]bool{"a": true, "b": true, "c": true}) {
		t.Fatal("a,b,c should be weakly connected")
	}
	if g.WeaklyConnected(map[string]bool{"b": true, "c": true}) {
		t.Fatal("b,c are not connected without a or d")
	}
	if g.WeaklyConnected(map[string]bool{}) {
		t.Fatal("empty set reported connected")
	}
	if !g.WeaklyConnected(map[string]bool{"a": true}) {
		t.Fatal("singleton not connected")
	}
}

func TestInduced(t *testing.T) {
	g := diamond()
	s := g.Induced(map[string]bool{"a": true, "b": true, "d": true})
	if s.Len() != 3 {
		t.Fatalf("induced size = %d", s.Len())
	}
	if len(s.Succ("a")) != 1 || s.Succ("a")[0] != "b" {
		t.Fatalf("induced Succ(a) = %v", s.Succ("a"))
	}
}

func TestCloneIndependent(t *testing.T) {
	g := chain("a", "b")
	c := g.Clone()
	c.AddEdge("b", "z")
	if g.HasNode("z") {
		t.Fatal("Clone shares state")
	}
}

func TestValidBipartitionChain(t *testing.T) {
	g := chain("a", "b", "c")
	ok := Bipartition{
		First:  map[string]bool{"a": true},
		Second: map[string]bool{"b": true, "c": true},
	}
	if !g.ValidBipartition(ok) {
		t.Fatal("a | b,c should be valid")
	}
	// Sink in first subgraph violates alignment.
	bad := Bipartition{
		First:  map[string]bool{"a": true, "c": true},
		Second: map[string]bool{"b": true},
	}
	if g.ValidBipartition(bad) {
		t.Fatal("a,c | b accepted (sink alignment + dependency completeness violated)")
	}
	// Empty side.
	if g.ValidBipartition(Bipartition{First: map[string]bool{}, Second: map[string]bool{"a": true, "b": true, "c": true}}) {
		t.Fatal("empty first side accepted")
	}
}

func TestBipartitionsChainCount(t *testing.T) {
	// For a chain of n nodes there are exactly n-1 valid cut points.
	g := chain("a", "b", "c", "d")
	parts, err := g.Bipartitions()
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("chain-4 bipartitions = %d, want 3", len(parts))
	}
}

func TestBipartitionsDiamond(t *testing.T) {
	g := diamond()
	parts, err := g.Bipartitions()
	if err != nil {
		t.Fatal(err)
	}
	// Valid ideals containing a but not d, with both sides weakly connected:
	// {a}, {a,b}, {a,c}, {a,b,c}. All second sides are weakly connected
	// ({b,c,d} via d, {c,d}, {b,d}, {d}).
	if len(parts) != 4 {
		t.Fatalf("diamond bipartitions = %d, want 4: %v", len(parts), parts)
	}
	for _, b := range parts {
		if !g.ValidBipartition(b) {
			t.Fatalf("enumerated invalid bipartition %v", b)
		}
	}
}

func TestBipartitionsDisconnectedSecond(t *testing.T) {
	// a -> b, a -> c with no join: first={a} gives second={b,c} which is NOT
	// weakly connected, so there are no valid bipartitions at that cut.
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("a", "c")
	parts, err := g.Bipartitions()
	if err != nil {
		t.Fatal(err)
	}
	// first={a} gives second={b,c}: not weakly connected. Any other split
	// places a sink (b or c) in the first subgraph, violating alignment.
	// So this DAG admits no valid bipartition at all.
	if len(parts) != 0 {
		t.Fatalf("got %d bipartitions, want 0: %v", len(parts), parts)
	}
}

func TestBipartitionsSizeGuard(t *testing.T) {
	g := New()
	for i := 0; i < maxBipartitionNodes+1; i++ {
		g.AddNode(string(rune('A' + i)))
	}
	if _, err := g.Bipartitions(); err == nil {
		t.Fatal("size guard did not trigger")
	}
}

func TestTopoOrdersDiamond(t *testing.T) {
	g := diamond()
	orders := g.TopoOrders(10)
	// Diamond has exactly two topological orders: abcd and acbd.
	if len(orders) != 2 {
		t.Fatalf("topo orders = %d, want 2", len(orders))
	}
	if strings.Join(orders[0], "") != "abcd" || strings.Join(orders[1], "") != "acbd" {
		t.Fatalf("orders = %v", orders)
	}
}

func TestTopoOrdersLimit(t *testing.T) {
	// An antichain of k nodes has k! orders; the limit must bound the output.
	g := New()
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		g.AddNode(n)
	}
	orders := g.TopoOrders(7)
	if len(orders) != 7 {
		t.Fatalf("limit ignored: got %d orders", len(orders))
	}
	if got := len(g.TopoOrders(0)); got != 1 {
		t.Fatalf("limit<=0 should yield 1 order, got %d", got)
	}
}

func TestWithVirtualRoot(t *testing.T) {
	g := New()
	g.AddEdge("a", "c")
	g.AddEdge("b", "c")
	r, err := g.WithVirtualRoot("ROOT")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Sources(); len(got) != 1 || got[0] != "ROOT" {
		t.Fatalf("Sources after root = %v", got)
	}
	if len(r.Succ("ROOT")) != 2 {
		t.Fatalf("ROOT successors = %v", r.Succ("ROOT"))
	}
	// Original untouched.
	if g.HasNode("ROOT") {
		t.Fatal("WithVirtualRoot mutated the original")
	}
	// Collision rejected.
	if _, err := g.WithVirtualRoot("a"); err == nil {
		t.Fatal("root collision accepted")
	}
}

// randomDAG builds a DAG over n nodes where an edge i->j (i<j) exists when
// the corresponding bit of seed is set; acyclic by construction.
func randomDAG(seed uint64, n int) *DAG {
	g := New()
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	bit := 0
	for i := 0; i < n; i++ {
		g.AddNode(names[i])
		for j := i + 1; j < n; j++ {
			if seed&(1<<(bit%64)) != 0 {
				g.AddEdge(names[i], names[j])
			}
			bit++
		}
	}
	return g
}

// Property: every bipartition returned by the enumerator satisfies
// ValidBipartition, and the two sides partition the node set.
func TestQuickBipartitionsAreValid(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%5) + 3 // 3..7 nodes
		g := randomDAG(seed, n)
		parts, err := g.Bipartitions()
		if err != nil {
			return false
		}
		for _, b := range parts {
			if !g.ValidBipartition(b) {
				return false
			}
			if len(b.First)+len(b.Second) != g.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: every enumerated topological order respects all edges.
func TestQuickTopoOrdersRespectEdges(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%5) + 3
		g := randomDAG(seed, n)
		for _, order := range g.TopoOrders(50) {
			pos := make(map[string]int, len(order))
			for i, id := range order {
				pos[id] = i
			}
			for _, from := range g.Nodes() {
				for _, to := range g.Succ(from) {
					if pos[from] >= pos[to] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: in every valid bipartition, no edge crosses from Second to First
// (dependency completeness restated as an edge condition).
func TestQuickNoBackwardCrossEdges(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%5) + 3
		g := randomDAG(seed, n)
		parts, err := g.Bipartitions()
		if err != nil {
			return false
		}
		for _, b := range parts {
			for from := range b.Second {
				for _, to := range g.Succ(from) {
					if b.First[to] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
