package graph

import (
	"context"
	"fmt"
	"sort"

	"github.com/fusedmindlab/transfusion/internal/faults"
)

// Bipartition is a split of a DAG's nodes into two subgraphs: First runs as
// pipeline stage 1, Second as stage 2.
type Bipartition struct {
	First  map[string]bool
	Second map[string]bool
}

// FirstSorted returns the first subgraph's node IDs, sorted.
func (b Bipartition) FirstSorted() []string { return sortedKeys(b.First) }

// SecondSorted returns the second subgraph's node IDs, sorted.
func (b Bipartition) SecondSorted() []string { return sortedKeys(b.Second) }

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// String renders "first | second" for debugging and deterministic tests.
func (b Bipartition) String() string {
	return fmt.Sprintf("%v | %v", b.FirstSorted(), b.SecondSorted())
}

// maxBipartitionNodes guards the subset enumeration; the cascades scheduled
// in practice have at most a dozen nodes.
const maxBipartitionNodes = 22

// ValidBipartition checks the four DPipe constraints from §4.1 of the paper
// for a candidate split:
//
//  1. Source-sink alignment: every source node of the DAG is in First and
//     every sink node is in Second.
//  2. Weak connectivity: both induced subgraphs are weakly connected.
//  3. Dependency completeness: every predecessor of a node in First is
//     itself in First (no edge crosses from Second into First).
//  4. Reachability: every node in First is reachable from the DAG's sources
//     along paths that stay inside First.
func (g *DAG) ValidBipartition(b Bipartition) bool {
	if len(b.First) == 0 || len(b.Second) == 0 {
		return false
	}
	if len(b.First)+len(b.Second) != len(g.nodes) {
		return false
	}
	for n := range b.First {
		if !g.nodes[n] || b.Second[n] {
			return false
		}
	}
	// (1) Source-sink alignment.
	for _, s := range g.Sources() {
		if !b.First[s] {
			return false
		}
	}
	for _, s := range g.Sinks() {
		if !b.Second[s] {
			return false
		}
	}
	// (3) Dependency completeness.
	for n := range b.First {
		for _, p := range g.pred[n] {
			if !b.First[p] {
				return false
			}
		}
	}
	// (2) Weak connectivity.
	if !g.WeaklyConnected(b.First) || !g.WeaklyConnected(b.Second) {
		return false
	}
	// (4) Reachability within First from the DAG's sources.
	first := g.Induced(b.First)
	reach := first.ReachableFrom(g.Sources()...)
	for n := range b.First {
		if !reach[n] {
			return false
		}
	}
	return true
}

// Bipartitions enumerates every valid bipartition of the DAG under the four
// constraints, in a deterministic order. It returns an error for graphs
// larger than the enumeration guard.
func (g *DAG) Bipartitions() ([]Bipartition, error) {
	out, _, err := g.BipartitionsBounded(context.Background(), 0)
	return out, err
}

// ctxCheckStride is how many candidate subsets are examined between context
// cancellation checks during bipartition enumeration.
const ctxCheckStride = 1 << 10

// BipartitionsBounded enumerates valid bipartitions like Bipartitions, but
// under an explicit budget and a context. maxSubsets caps the number of
// candidate subsets *examined* (not returned); exceeding it aborts with an
// error matching faults.ErrBudgetExhausted rather than scanning the full
// 2^n space. maxSubsets <= 0 means unbounded up to the node-count guard.
// Cancellation is checked every ctxCheckStride subsets and aborts with an
// error matching faults.ErrCanceled. The examined count is returned even on
// error, so callers can account the enumeration work actually spent.
func (g *DAG) BipartitionsBounded(ctx context.Context, maxSubsets int) ([]Bipartition, int, error) {
	nodes := g.Nodes()
	n := len(nodes)
	if n > maxBipartitionNodes {
		return nil, 0, fmt.Errorf("graph: bipartition enumeration limited to %d nodes, got %d", maxBipartitionNodes, n)
	}
	if n < 2 {
		return nil, 0, nil
	}
	var out []Bipartition
	examined := 0
	// Enumerate subsets as bitmasks over the sorted node list; bit i set
	// means nodes[i] is in the first subgraph. Skip the empty and full sets.
	for mask := uint32(1); mask < (uint32(1)<<n)-1; mask++ {
		if examined%ctxCheckStride == 0 && ctx.Err() != nil {
			return nil, examined, faults.Canceled(ctx)
		}
		examined++
		if maxSubsets > 0 && examined > maxSubsets {
			return nil, examined, faults.Budgetf("graph: bipartition enumeration exceeded budget of %d subsets (%d-node DAG has %d)",
				maxSubsets, n, (uint64(1)<<n)-2)
		}
		first := make(map[string]bool)
		second := make(map[string]bool)
		for i, node := range nodes {
			if mask&(1<<i) != 0 {
				first[node] = true
			} else {
				second[node] = true
			}
		}
		b := Bipartition{First: first, Second: second}
		if g.ValidBipartition(b) {
			out = append(out, b)
		}
	}
	return out, examined, nil
}

// TopoOrders enumerates topological orderings of the DAG via backtracking,
// stopping after limit orderings (limit <= 0 means only the canonical
// order). The enumeration is deterministic: at each step the lexicographically
// smallest ready node is explored first, so the first ordering returned is
// the canonical TopoSort order.
func (g *DAG) TopoOrders(limit int) [][]string {
	if limit <= 0 {
		limit = 1
	}
	indeg := make(map[string]int, len(g.nodes))
	for n := range g.nodes {
		indeg[n] = len(g.pred[n])
	}
	var out [][]string
	order := make([]string, 0, len(g.nodes))

	var rec func()
	rec = func() {
		if len(out) >= limit {
			return
		}
		if len(order) == len(g.nodes) {
			out = append(out, append([]string(nil), order...))
			return
		}
		var ready []string
		for n, d := range indeg {
			if d == 0 {
				ready = append(ready, n)
			}
		}
		sort.Strings(ready)
		for _, n := range ready {
			indeg[n] = -1 // mark as taken
			for _, s := range g.succ[n] {
				indeg[s]--
			}
			order = append(order, n)
			rec()
			order = order[:len(order)-1]
			for _, s := range g.succ[n] {
				indeg[s]++
			}
			indeg[n] = 0
			if len(out) >= limit {
				return
			}
		}
	}
	rec()
	return out
}

// WithVirtualRoot returns a copy of the DAG with an extra node rootID that
// has an edge to every current source node; DPipe uses this to connect the
// two subgraphs of a bipartition into a single schedulable DAG (§4.1).
func (g *DAG) WithVirtualRoot(rootID string) (*DAG, error) {
	if g.nodes[rootID] {
		return nil, fmt.Errorf("graph: virtual root %q collides with an existing node", rootID)
	}
	c := g.Clone()
	c.AddNode(rootID)
	for _, s := range g.Sources() {
		c.AddEdge(rootID, s)
	}
	return c, nil
}
