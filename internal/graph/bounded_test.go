package graph

import (
	"context"
	"errors"
	"testing"

	"github.com/fusedmindlab/transfusion/internal/faults"
)

func diamondDAG() *DAG {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("a", "c")
	g.AddEdge("b", "d")
	g.AddEdge("c", "d")
	return g
}

func TestBipartitionsBoundedMatchesUnbounded(t *testing.T) {
	g := diamondDAG()
	want, err := g.Bipartitions()
	if err != nil {
		t.Fatalf("Bipartitions: %v", err)
	}
	got, examined, err := g.BipartitionsBounded(context.Background(), 1<<20)
	if err != nil {
		t.Fatalf("BipartitionsBounded: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("bounded enumeration returned %d bipartitions, unbounded %d", len(got), len(want))
	}
	// A 4-node DAG has 2^4-2 = 14 proper subsets to examine.
	if examined != 14 {
		t.Fatalf("examined = %d, want 14", examined)
	}
}

func TestBipartitionsBoundedBudgetExhausted(t *testing.T) {
	_, examined, err := diamondDAG().BipartitionsBounded(context.Background(), 1)
	if !errors.Is(err, faults.ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if examined == 0 {
		t.Fatalf("examined = 0, want the aborted scan's count")
	}
}

func TestBipartitionsBoundedCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := diamondDAG().BipartitionsBounded(ctx, 0)
	if !errors.Is(err, faults.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}
