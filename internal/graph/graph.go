// Package graph provides the directed-acyclic-graph machinery DPipe is
// built on: deterministic topological sorting, weak-connectivity tests,
// reachability, enumeration of valid bipartitions under the four
// constraints of §4.1 of the paper, and bounded enumeration of topological
// orderings.
//
// Nodes are identified by strings (the Einsum output-tensor names). The
// graphs scheduled in practice are small — a Transformer sub-layer has at
// most a dozen Einsums — so the enumeration routines favour clarity and
// determinism over asymptotic cleverness, with explicit size guards.
package graph

import (
	"fmt"
	"sort"
)

// DAG is a directed acyclic graph over string-named nodes. The zero value
// is not usable; create with New.
type DAG struct {
	nodes map[string]bool
	succ  map[string][]string
	pred  map[string][]string
}

// New creates an empty DAG.
func New() *DAG {
	return &DAG{
		nodes: make(map[string]bool),
		succ:  make(map[string][]string),
		pred:  make(map[string][]string),
	}
}

// AddNode inserts a node; adding an existing node is a no-op.
func (g *DAG) AddNode(id string) {
	g.nodes[id] = true
}

// AddEdge inserts a directed edge from -> to, adding missing endpoints.
// Duplicate edges are ignored.
func (g *DAG) AddEdge(from, to string) {
	g.AddNode(from)
	g.AddNode(to)
	for _, s := range g.succ[from] {
		if s == to {
			return
		}
	}
	g.succ[from] = append(g.succ[from], to)
	g.pred[to] = append(g.pred[to], from)
}

// HasNode reports whether id is in the graph.
func (g *DAG) HasNode(id string) bool { return g.nodes[id] }

// Len returns the number of nodes.
func (g *DAG) Len() int { return len(g.nodes) }

// Nodes returns all node IDs, sorted for determinism.
func (g *DAG) Nodes() []string {
	out := make([]string, 0, len(g.nodes))
	for n := range g.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Succ returns the successors of id, sorted.
func (g *DAG) Succ(id string) []string {
	out := append([]string(nil), g.succ[id]...)
	sort.Strings(out)
	return out
}

// Pred returns the predecessors of id, sorted.
func (g *DAG) Pred(id string) []string {
	out := append([]string(nil), g.pred[id]...)
	sort.Strings(out)
	return out
}

// Sources returns nodes with zero in-degree, sorted.
func (g *DAG) Sources() []string {
	var out []string
	for _, n := range g.Nodes() {
		if len(g.pred[n]) == 0 {
			out = append(out, n)
		}
	}
	return out
}

// Sinks returns nodes with zero out-degree, sorted.
func (g *DAG) Sinks() []string {
	var out []string
	for _, n := range g.Nodes() {
		if len(g.succ[n]) == 0 {
			out = append(out, n)
		}
	}
	return out
}

// TopoSort returns a deterministic topological ordering (Kahn's algorithm
// with lexicographic tie-breaking) or an error if the graph has a cycle.
func (g *DAG) TopoSort() ([]string, error) {
	indeg := make(map[string]int, len(g.nodes))
	for n := range g.nodes {
		indeg[n] = len(g.pred[n])
	}
	ready := g.Sources()
	var order []string
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		order = append(order, n)
		changed := false
		for _, s := range g.succ[n] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
				changed = true
			}
		}
		if changed {
			sort.Strings(ready)
		}
	}
	if len(order) != len(g.nodes) {
		return nil, fmt.Errorf("graph: cycle detected (%d of %d nodes ordered)", len(order), len(g.nodes))
	}
	return order, nil
}

// IsAcyclic reports whether the graph has no cycles.
func (g *DAG) IsAcyclic() bool {
	_, err := g.TopoSort()
	return err == nil
}

// ReachableFrom returns the set of nodes reachable from any of the given
// start nodes (inclusive), following edges forward.
func (g *DAG) ReachableFrom(starts ...string) map[string]bool {
	seen := make(map[string]bool)
	stack := append([]string(nil), starts...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] || !g.nodes[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, g.succ[n]...)
	}
	return seen
}

// WeaklyConnected reports whether the induced subgraph on the given node
// set is weakly connected (connected when edge directions are ignored).
// The empty set is not weakly connected; a singleton is.
func (g *DAG) WeaklyConnected(set map[string]bool) bool {
	if len(set) == 0 {
		return false
	}
	var start string
	for n := range set {
		start = n
		break
	}
	seen := map[string]bool{}
	stack := []string{start}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		for _, s := range g.succ[n] {
			if set[s] && !seen[s] {
				stack = append(stack, s)
			}
		}
		for _, p := range g.pred[n] {
			if set[p] && !seen[p] {
				stack = append(stack, p)
			}
		}
	}
	return len(seen) == len(set)
}

// Clone returns a deep copy of the graph.
func (g *DAG) Clone() *DAG {
	c := New()
	for n := range g.nodes {
		c.AddNode(n)
	}
	for from, tos := range g.succ {
		for _, to := range tos {
			c.AddEdge(from, to)
		}
	}
	return c
}

// Induced returns the subgraph induced by the given node set.
func (g *DAG) Induced(set map[string]bool) *DAG {
	s := New()
	for n := range set {
		if g.nodes[n] {
			s.AddNode(n)
		}
	}
	for from, tos := range g.succ {
		if !set[from] {
			continue
		}
		for _, to := range tos {
			if set[to] {
				s.AddEdge(from, to)
			}
		}
	}
	return s
}
