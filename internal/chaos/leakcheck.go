package chaos

import (
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"time"
)

// Goroutine-leak checking (goleak-style): the chaos invariants require that
// no fault schedule — panics in cache leaders, stuck evaluations converted by
// the watchdog, mid-drain cancellations — leaves an evaluator goroutine
// behind. The checker snapshots the full goroutine dump, filters the
// goroutines the runtime and the testing harness legitimately keep, and
// retries over a grace window so goroutines that are *finishing* (a detached
// cache leader bounded by the server's request timeout, an idle HTTP
// keep-alive connection unwinding) are not reported as leaks.

// benignStackFragments mark goroutines that are part of the harness, the
// runtime, or shutdown machinery — never application leaks.
var benignStackFragments = []string{
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*M).Run",
	"testing.runFuzzing(",
	"testing.runTests(",
	"runtime.goexit0",
	"runtime.gc",
	"runtime.MHeap_Scavenger",
	"runtime/trace.Start",
	"runtime.ReadTrace",
	"os/signal.signal_recv",
	"os/signal.loop",
	"created by runtime.gc",
	"created by runtime/trace",
	"created by testing.",
	"created by os/signal.",
	// The race detector and coverage machinery park goroutines of their own.
	"runtime.ensureSigM",
	"go.itab",
	// The checker's own goroutine (main, calling through TestMain).
	".leakedGoroutines(",
	"main.main()",
}

// leakedGoroutines returns the stacks of goroutines that look like
// application leaks right now.
func leakedGoroutines() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var leaks []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		if g == "" {
			continue
		}
		benign := false
		for _, frag := range benignStackFragments {
			if strings.Contains(g, frag) {
				benign = true
				break
			}
		}
		if !benign {
			leaks = append(leaks, g)
		}
	}
	return leaks
}

// CheckLeaks polls for leaked goroutines until none remain or the grace
// window expires, then reports the survivors. Goroutines legitimately
// winding down (drain-bounded evaluators, idle keep-alive connections) get
// the grace window to exit.
func CheckLeaks(grace time.Duration) error {
	deadline := time.Now().Add(grace)
	var leaks []string
	for {
		leaks = leakedGoroutines()
		if len(leaks) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("chaos: %d leaked goroutine(s) after %v grace:\n\n%s",
		len(leaks), grace, strings.Join(leaks, "\n\n"))
}

// testingM matches *testing.M without importing testing into non-test code.
type testingM interface{ Run() int }

// LeakCheckMain wraps a package's TestMain: it runs the tests, then — only
// when they passed — closes idle HTTP connections (the default transport's
// keep-alives otherwise linger as false positives) and fails the run if any
// goroutine survives the grace window. Usage:
//
//	func TestMain(m *testing.M) { os.Exit(chaos.LeakCheckMain(m, 10*time.Second)) }
func LeakCheckMain(m testingM, grace time.Duration) int {
	code := m.Run()
	if code != 0 {
		return code
	}
	http.DefaultClient.CloseIdleConnections()
	if t, ok := http.DefaultTransport.(*http.Transport); ok {
		t.CloseIdleConnections()
	}
	if err := CheckLeaks(grace); err != nil {
		fmt.Println(err)
		return 1
	}
	return 0
}
