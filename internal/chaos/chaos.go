// Package chaos is the deterministic fault-injection framework behind the
// serving path's resilience tests. Production code registers named *injection
// sites* — `serve.admission`, `serve.cache.leader`, `serve.peer.fetch`,
// `cluster.probe`, `tileseek.rollout`, `dpipe.candidate`, and the persistent
// plan store's disk-fault sites `store.write`, `store.read`, `store.fsync` —
// at the points
// where a real deployment fails: a stuck evaluation, a panicking cache
// leader, a partitioned cluster peer, a slow
// enumeration, a torn record write. A seeded
// *Injector* carried in the context arms a subset of those sites with a fault
// schedule (latency, error, panic, or simulated context-cancel), and the
// chaos test suite then runs the real daemon under the schedule asserting the
// system's invariants hold.
//
// The package mirrors internal/obs's zero-cost discipline: when no Injector
// is attached to the context, SiteFrom returns a nil *Site whose Strike is a
// single nil-check — no allocation, no interface boxing, no time lookup — so
// the hooks can live permanently on hot paths (guarded by an AllocsPerRun
// test). All schedules are deterministic for a fixed seed: "probability"
// decisions hash (seed, site, hit-ordinal) through splitmix64 rather than
// consulting a global RNG, so a failing chaos run replays exactly.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/fusedmindlab/transfusion/internal/faults"
)

// Canonical site names. Production code should use these constants rather
// than string literals so schedules and code cannot drift apart.
const (
	// SiteServeAdmission fires once per admission attempt, before the
	// request tries to claim an evaluation slot (latency here models queue
	// delay upstream of the pool).
	SiteServeAdmission = "serve.admission"
	// SiteServeCacheLeader fires once per cache-leader evaluation, inside
	// the singleflight closure (a panic here exercises the joiner-error
	// path; latency models a stuck evaluation for the watchdog).
	SiteServeCacheLeader = "serve.cache.leader"
	// SiteTileseekRollout fires once per MCTS rollout on the master
	// trajectory.
	SiteTileseekRollout = "tileseek.rollout"
	// SiteDPipeCandidate fires once per candidate schedule evaluation.
	SiteDPipeCandidate = "dpipe.candidate"
	// SiteStoreWrite fires once per persistent-store record write, before
	// the payload reaches the temp file (KindShortWrite here models a torn
	// write: the store writes a truncated temp file and reports the error,
	// exactly the on-disk state a crash mid-write leaves behind).
	SiteStoreWrite = "store.write"
	// SiteStoreRead fires once per persistent-store record read (errors
	// here must degrade to a cache miss, never to a failed request).
	SiteStoreRead = "store.read"
	// SiteStoreFsync fires once per store fsync, between writing the temp
	// file and the atomic rename (latency here holds a record mid-write —
	// the window the kill-mid-write crash tests SIGKILL into).
	SiteStoreFsync = "store.fsync"
	// SiteServePeerFetch fires once per cluster peer plan fetch, on the
	// requesting (non-owner) replica before the RPC goes out. Errors and
	// cancels here must degrade to a local search — never to a failed
	// request — and latency models a slow or partitioned owner (bounded by
	// the fetch context, so it converts to the same local fallback).
	SiteServePeerFetch = "serve.peer.fetch"
	// SiteClusterProbe fires once per membership health probe, before the
	// prober's /readyz round-trip goes out. Errors here simulate a
	// partitioned or crashed peer (consecutive strikes walk it through
	// suspect into dead); latency simulates a slow-but-alive peer — it
	// rides the probe's own timeout, inflates the latency EWMA, and must
	// never flap the ring on a single strike (hysteresis).
	SiteClusterProbe = "cluster.probe"
)

// ErrInjected marks every chaos-injected error (Kinds KindError and
// KindShortWrite); match with errors.Is. Injected cancellations instead match
// faults.ErrCanceled (and context.Canceled), and injected panics carry a
// descriptive string value — each fault kind is deliberately
// indistinguishable from the real failure it simulates, except for this
// sentinel on plain errors.
var ErrInjected = errors.New("chaos: injected fault")

// ErrShortWrite marks an injected short write (KindShortWrite): the
// instrumented writer is expected to persist only a truncated prefix of the
// record and surface this error, leaving the same torn bytes on disk a crash
// mid-write would. It matches ErrInjected too.
var ErrShortWrite = fmt.Errorf("short write: %w", ErrInjected)

// Kind selects what an armed site injects when its schedule fires.
type Kind int

const (
	// KindLatency sleeps for the configured duration (bounded by the
	// context's lifetime: if the context dies mid-sleep, Strike returns an
	// error matching faults.ErrCanceled, exactly as real slow code would
	// observe the deadline).
	KindLatency Kind = iota
	// KindError returns an error matching ErrInjected.
	KindError
	// KindPanic panics with a descriptive string value.
	KindPanic
	// KindCancel returns an error matching faults.ErrCanceled and
	// context.Canceled without touching the context — simulating the
	// caller's context dying at exactly this point.
	KindCancel
	// KindShortWrite returns an error matching ErrShortWrite (and
	// ErrInjected). Only write-shaped sites give it meaning: the
	// instrumented code reacts by leaving a truncated record behind,
	// simulating a torn write / crash mid-write.
	KindShortWrite
)

// String names the kind as the Parse grammar spells it.
func (k Kind) String() string {
	switch k {
	case KindLatency:
		return "latency"
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindCancel:
		return "cancel"
	case KindShortWrite:
		return "shortwrite"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// SiteConfig arms one site with a fault schedule. The schedule fires on a
// hit when all of the following hold, evaluated against the site's atomic
// 1-based hit ordinal n:
//
//   - n > After (the first After hits always pass through);
//   - Every > 0 and (n-After) is a multiple of Every, or Every == 0 and the
//     deterministic hash of (seed, site, n) falls below P;
//   - fewer than Limit faults have fired so far (Limit 0 = unlimited).
type SiteConfig struct {
	// Site is the injection-site name (one of the Site* constants, or any
	// name a test registers).
	Site string
	// Kind selects the fault.
	Kind Kind
	// Latency is the injected delay for KindLatency (ignored otherwise).
	Latency time.Duration
	// Every fires on every Every-th eligible hit when positive.
	Every int
	// P is the per-hit fire probability when Every is zero (deterministic
	// for a fixed injector seed).
	P float64
	// After skips the first After hits entirely.
	After int
	// Limit caps the number of fires (0 = unlimited).
	Limit int
}

func (c SiteConfig) validate() error {
	if c.Site == "" {
		return fmt.Errorf("chaos: site config with empty site name")
	}
	if c.Kind < KindLatency || c.Kind > KindShortWrite {
		return fmt.Errorf("chaos: site %s: unknown kind %d", c.Site, int(c.Kind))
	}
	if c.Kind == KindLatency && c.Latency <= 0 {
		return fmt.Errorf("chaos: site %s: latency kind needs a positive duration", c.Site)
	}
	if c.Every < 0 || c.After < 0 || c.Limit < 0 {
		return fmt.Errorf("chaos: site %s: negative schedule field", c.Site)
	}
	if c.P < 0 || c.P > 1 {
		return fmt.Errorf("chaos: site %s: probability %g out of [0,1]", c.Site, c.P)
	}
	if c.Every == 0 && c.P == 0 {
		return fmt.Errorf("chaos: site %s: schedule never fires (set every or p)", c.Site)
	}
	return nil
}

// Site is one armed injection site. A nil *Site (the unconfigured case) is
// fully usable: Strike returns nil immediately.
type Site struct {
	cfg   SiteConfig
	seed  uint64
	hits  atomic.Int64
	fires atomic.Int64
}

// splitmix64 is the standard SplitMix64 finalizer, used to turn
// (seed, site, ordinal) into an independent uniform stream.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// hashString folds a site name into the seed stream (FNV-1a).
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// shouldFire evaluates the deterministic schedule for hit ordinal n.
func (s *Site) shouldFire(n int64) bool {
	eligible := n - int64(s.cfg.After)
	if eligible <= 0 {
		return false
	}
	if s.cfg.Every > 0 {
		return eligible%int64(s.cfg.Every) == 0
	}
	u := splitmix64(s.seed ^ hashString(s.cfg.Site) ^ uint64(n))
	return float64(u>>11)/(1<<53) < s.cfg.P
}

// Strike evaluates the site's schedule for this hit and injects the
// configured fault when it fires: KindLatency sleeps (returning an error
// matching faults.ErrCanceled if ctx dies mid-sleep), KindError returns an
// error matching ErrInjected, KindPanic panics, and KindCancel returns an
// error matching faults.ErrCanceled. On a nil receiver (site unconfigured)
// Strike is a single branch and returns nil.
func (s *Site) Strike(ctx context.Context) error {
	if s == nil {
		return nil
	}
	n := s.hits.Add(1)
	if !s.shouldFire(n) {
		return nil
	}
	if s.cfg.Limit > 0 && s.fires.Add(1) > int64(s.cfg.Limit) {
		s.fires.Add(-1) // report Fires == Limit, not the overshoot
		return nil
	}
	if s.cfg.Limit == 0 {
		s.fires.Add(1)
	}
	switch s.cfg.Kind {
	case KindLatency:
		t := time.NewTimer(s.cfg.Latency)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return faults.Canceled(ctx)
		}
	case KindError:
		return fmt.Errorf("chaos: injected error at %s (hit %d): %w", s.cfg.Site, n, ErrInjected)
	case KindPanic:
		panic(fmt.Sprintf("chaos: injected panic at %s (hit %d)", s.cfg.Site, n))
	case KindCancel:
		return faults.Canceled(ctx)
	case KindShortWrite:
		return fmt.Errorf("chaos: injected short write at %s (hit %d): %w", s.cfg.Site, n, ErrShortWrite)
	}
	return nil
}

// Hits returns how many times the site was reached (zero on nil).
func (s *Site) Hits() int64 {
	if s == nil {
		return 0
	}
	return s.hits.Load()
}

// Fires returns how many faults the site injected (zero on nil).
func (s *Site) Fires() int64 {
	if s == nil {
		return 0
	}
	return s.fires.Load()
}

// Injector is a set of armed sites sharing one seed. A nil *Injector is
// fully usable and arms nothing.
type Injector struct {
	seed  uint64
	sites map[string]*Site
}

// New builds an Injector arming the given sites under one seed. Duplicate
// site names and invalid schedules are rejected.
func New(seed uint64, cfgs ...SiteConfig) (*Injector, error) {
	in := &Injector{seed: seed, sites: make(map[string]*Site, len(cfgs))}
	for _, cfg := range cfgs {
		if err := cfg.validate(); err != nil {
			return nil, err
		}
		if _, dup := in.sites[cfg.Site]; dup {
			return nil, fmt.Errorf("chaos: site %s armed twice", cfg.Site)
		}
		in.sites[cfg.Site] = &Site{cfg: cfg, seed: seed}
	}
	return in, nil
}

// Site returns the armed site by name, or nil when the injector is nil or
// the site is not armed — the returned *Site is always safe to Strike.
func (in *Injector) Site(name string) *Site {
	if in == nil {
		return nil
	}
	return in.sites[name]
}

// Fires returns the named site's fire count (zero when unarmed).
func (in *Injector) Fires(name string) int64 { return in.Site(name).Fires() }

// Hits returns the named site's hit count (zero when unarmed).
func (in *Injector) Hits(name string) int64 { return in.Site(name).Hits() }

// String summarises the armed sites for logging.
func (in *Injector) String() string {
	if in == nil || len(in.sites) == 0 {
		return "chaos: disarmed"
	}
	names := make([]string, 0, len(in.sites))
	for n := range in.sites {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "chaos: seed=%d", in.seed)
	for _, n := range names {
		s := in.sites[n]
		fmt.Fprintf(&b, " %s=%s", n, s.cfg.Kind)
		if s.cfg.Kind == KindLatency {
			fmt.Fprintf(&b, ":%s", s.cfg.Latency)
		}
		if s.cfg.Every > 0 {
			fmt.Fprintf(&b, "@every=%d", s.cfg.Every)
		} else {
			fmt.Fprintf(&b, "@p=%g", s.cfg.P)
		}
		if s.cfg.After > 0 {
			fmt.Fprintf(&b, "@after=%d", s.cfg.After)
		}
		if s.cfg.Limit > 0 {
			fmt.Fprintf(&b, "@limit=%d", s.cfg.Limit)
		}
	}
	return b.String()
}

// ctxKey is the context key carrying the Injector; a zero-size type keys
// without allocating.
type ctxKey struct{}

// With returns a context carrying the injector; nil detaches (the derived
// context reads as unconfigured).
func With(ctx context.Context, in *Injector) context.Context {
	return context.WithValue(ctx, ctxKey{}, in)
}

// From returns the context's injector, or nil when none is attached.
func From(ctx context.Context) *Injector {
	in, _ := ctx.Value(ctxKey{}).(*Injector)
	return in
}

// SiteFrom resolves a named site from the context's injector in one step.
// Hot paths should hoist this lookup out of their loop and Strike the
// returned (possibly nil) *Site per iteration.
func SiteFrom(ctx context.Context, name string) *Site {
	return From(ctx).Site(name)
}

// Parse builds an Injector from a compact schedule spec, the -chaos CLI
// grammar:
//
//	spec    = clause *( ";" clause )
//	clause  = site "=" kind [ ":" duration ] *( "@" key "=" value )
//	kind    = "latency" | "error" | "panic" | "cancel" | "shortwrite"
//	key     = "every" | "p" | "after" | "limit"
//
// Example:
//
//	serve.cache.leader=panic@every=3;tileseek.rollout=latency:2ms@p=0.25@limit=10
//
// An empty spec returns a nil (disarmed) injector.
func Parse(spec string, seed uint64) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var cfgs []SiteConfig
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		site, rest, ok := strings.Cut(clause, "=")
		if !ok || site == "" {
			return nil, fmt.Errorf("chaos: clause %q is not site=kind", clause)
		}
		cfg := SiteConfig{Site: strings.TrimSpace(site)}
		parts := strings.Split(rest, "@")
		kindSpec := strings.TrimSpace(parts[0])
		kindName, arg, hasArg := strings.Cut(kindSpec, ":")
		switch kindName {
		case "latency":
			cfg.Kind = KindLatency
			if !hasArg {
				return nil, fmt.Errorf("chaos: clause %q: latency needs a duration (latency:5ms)", clause)
			}
			d, err := time.ParseDuration(arg)
			if err != nil {
				return nil, fmt.Errorf("chaos: clause %q: bad duration %q: %v", clause, arg, err)
			}
			cfg.Latency = d
		case "error":
			cfg.Kind = KindError
		case "panic":
			cfg.Kind = KindPanic
		case "cancel":
			cfg.Kind = KindCancel
		case "shortwrite":
			cfg.Kind = KindShortWrite
		default:
			return nil, fmt.Errorf("chaos: clause %q: unknown kind %q (have latency, error, panic, cancel, shortwrite)", clause, kindName)
		}
		if cfg.Kind != KindLatency && hasArg {
			return nil, fmt.Errorf("chaos: clause %q: kind %s takes no argument", clause, kindName)
		}
		for _, mod := range parts[1:] {
			key, val, ok := strings.Cut(strings.TrimSpace(mod), "=")
			if !ok {
				return nil, fmt.Errorf("chaos: clause %q: modifier %q is not key=value", clause, mod)
			}
			switch key {
			case "every":
				n, err := strconv.Atoi(val)
				if err != nil {
					return nil, fmt.Errorf("chaos: clause %q: bad every %q", clause, val)
				}
				cfg.Every = n
			case "p":
				p, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("chaos: clause %q: bad p %q", clause, val)
				}
				cfg.P = p
			case "after":
				n, err := strconv.Atoi(val)
				if err != nil {
					return nil, fmt.Errorf("chaos: clause %q: bad after %q", clause, val)
				}
				cfg.After = n
			case "limit":
				n, err := strconv.Atoi(val)
				if err != nil {
					return nil, fmt.Errorf("chaos: clause %q: bad limit %q", clause, val)
				}
				cfg.Limit = n
			default:
				return nil, fmt.Errorf("chaos: clause %q: unknown modifier %q (have every, p, after, limit)", clause, key)
			}
		}
		if cfg.Every == 0 && cfg.P == 0 {
			// Unmodified clauses fire on every hit — the obvious reading of
			// "site=panic".
			cfg.Every = 1
		}
		cfgs = append(cfgs, cfg)
	}
	return New(seed, cfgs...)
}
