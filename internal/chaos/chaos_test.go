package chaos

import (
	"context"
	"errors"
	"os"
	"strings"
	"testing"
	"time"

	"github.com/fusedmindlab/transfusion/internal/faults"
)

func TestMain(m *testing.M) { os.Exit(LeakCheckMain(m, 5*time.Second)) }

func mustNew(t *testing.T, seed uint64, cfgs ...SiteConfig) *Injector {
	t.Helper()
	in, err := New(seed, cfgs...)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestEverySchedule(t *testing.T) {
	in := mustNew(t, 1, SiteConfig{Site: "x", Kind: KindError, Every: 3})
	ctx := With(context.Background(), in)
	site := SiteFrom(ctx, "x")
	var fired []int
	for i := 1; i <= 9; i++ {
		if err := site.Strike(ctx); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: error %v does not match ErrInjected", i, err)
			}
			fired = append(fired, i)
		}
	}
	if len(fired) != 3 || fired[0] != 3 || fired[1] != 6 || fired[2] != 9 {
		t.Fatalf("every=3 fired on hits %v, want [3 6 9]", fired)
	}
	if site.Hits() != 9 || site.Fires() != 3 {
		t.Fatalf("hits=%d fires=%d, want 9/3", site.Hits(), site.Fires())
	}
}

func TestAfterAndLimit(t *testing.T) {
	in := mustNew(t, 1, SiteConfig{Site: "x", Kind: KindError, Every: 1, After: 2, Limit: 2})
	site := in.Site("x")
	ctx := context.Background()
	var fired []int
	for i := 1; i <= 6; i++ {
		if site.Strike(ctx) != nil {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 4 {
		t.Fatalf("after=2 limit=2 fired on hits %v, want [3 4]", fired)
	}
	if site.Fires() != 2 {
		t.Fatalf("fires=%d, want 2 (limit)", site.Fires())
	}
}

func TestProbabilityDeterministicForSeed(t *testing.T) {
	run := func(seed uint64) []int64 {
		in := mustNew(t, seed, SiteConfig{Site: "p", Kind: KindError, P: 0.3})
		site := in.Site("p")
		var fired []int64
		for i := int64(1); i <= 200; i++ {
			if site.Strike(context.Background()) != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(42), run(42)
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("p=0.3 fired %d/200 times — schedule degenerate", len(a))
	}
	for i := range a {
		if i >= len(b) || a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
	if c := run(43); len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced the identical schedule")
		}
	}
}

func TestCancelKindMatchesTaxonomy(t *testing.T) {
	in := mustNew(t, 1, SiteConfig{Site: "c", Kind: KindCancel, Every: 1})
	err := in.Site("c").Strike(context.Background())
	if !errors.Is(err, faults.ErrCanceled) {
		t.Fatalf("cancel error %v does not match faults.ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel error %v does not match context.Canceled", err)
	}
}

func TestShortWriteKindMatchesSentinels(t *testing.T) {
	in := mustNew(t, 1, SiteConfig{Site: "store.write", Kind: KindShortWrite, Every: 1})
	err := in.Site("store.write").Strike(context.Background())
	if !errors.Is(err, ErrShortWrite) {
		t.Fatalf("shortwrite error %v does not match ErrShortWrite", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("shortwrite error %v does not match ErrInjected", err)
	}

	// The Parse grammar spells it "shortwrite", like Kind.String does.
	parsed, perr := Parse("store.write=shortwrite@every=2", 1)
	if perr != nil {
		t.Fatal(perr)
	}
	s := parsed.Site(SiteStoreWrite)
	if s == nil || s.cfg.Kind != KindShortWrite || s.cfg.Every != 2 {
		t.Fatalf("shortwrite clause misparsed: %+v", s)
	}
	if got := KindShortWrite.String(); got != "shortwrite" {
		t.Fatalf("KindShortWrite.String() = %q", got)
	}
}

func TestPanicKind(t *testing.T) {
	in := mustNew(t, 1, SiteConfig{Site: "boom", Kind: KindPanic, Every: 1})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic injected")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("panic value %v does not name the site", r)
		}
	}()
	in.Site("boom").Strike(context.Background()) //nolint:errcheck
}

func TestLatencyKindSleepsAndHonorsContext(t *testing.T) {
	in := mustNew(t, 1, SiteConfig{Site: "slow", Kind: KindLatency, Latency: 20 * time.Millisecond, Every: 1})
	start := time.Now()
	if err := in.Site("slow").Strike(context.Background()); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("latency strike returned after %v, want >= ~20ms", d)
	}

	in2 := mustNew(t, 1, SiteConfig{Site: "slow", Kind: KindLatency, Latency: 10 * time.Second, Every: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start = time.Now()
	err := in2.Site("slow").Strike(ctx)
	if !errors.Is(err, faults.ErrCanceled) {
		t.Fatalf("mid-sleep cancellation returned %v, want ErrCanceled match", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("canceled latency strike still slept %v", d)
	}
}

func TestParseGrammar(t *testing.T) {
	in, err := Parse("serve.cache.leader=panic@every=3;tileseek.rollout=latency:2ms@p=0.25@limit=10;dpipe.candidate=cancel@after=5", 7)
	if err != nil {
		t.Fatal(err)
	}
	lead := in.Site(SiteServeCacheLeader)
	if lead == nil || lead.cfg.Kind != KindPanic || lead.cfg.Every != 3 {
		t.Fatalf("leader site misparsed: %+v", lead)
	}
	roll := in.Site(SiteTileseekRollout)
	if roll == nil || roll.cfg.Kind != KindLatency || roll.cfg.Latency != 2*time.Millisecond ||
		roll.cfg.P != 0.25 || roll.cfg.Limit != 10 {
		t.Fatalf("rollout site misparsed: %+v", roll.cfg)
	}
	cand := in.Site(SiteDPipeCandidate)
	if cand == nil || cand.cfg.Kind != KindCancel || cand.cfg.After != 5 || cand.cfg.Every != 1 {
		t.Fatalf("candidate site misparsed: %+v", cand.cfg)
	}
	if in.Site("unarmed") != nil {
		t.Fatal("unarmed site resolved non-nil")
	}
	if s := in.String(); !strings.Contains(s, "seed=7") || !strings.Contains(s, "panic@every=3") {
		t.Fatalf("summary %q missing fields", s)
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"nosite",                   // no '='
		"x=explode",                // unknown kind
		"x=latency",                // latency without duration
		"x=latency:fast",           // bad duration
		"x=error:arg",              // argument on argless kind
		"x=error@every=two",        // bad int
		"x=error@p=1.5",            // probability out of range
		"x=error@huh=1",            // unknown modifier
		"x=error;x=panic",          // duplicate site
		"x=error@every=-1",         // negative schedule
		"x=latency:-5ms@every=1",   // non-positive latency
		"x=error@p=0.5@every=bad",  // bad modifier after good
		"=error",                   // empty site
	} {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q) accepted a bad spec", spec)
		}
	}
	if in, err := Parse("  ", 1); err != nil || in != nil {
		t.Fatalf("empty spec: (%v, %v), want (nil, nil)", in, err)
	}
}

// The acceptance-criteria guard: with injection unconfigured, the chaos hooks
// on a hot path — a context lookup plus a Strike on the resulting nil site —
// add zero allocations.
func TestHooksZeroAllocUnconfigured(t *testing.T) {
	ctx := context.Background()
	if n := testing.AllocsPerRun(1000, func() {
		site := SiteFrom(ctx, SiteTileseekRollout)
		if err := site.Strike(ctx); err != nil {
			t.Fatal("unconfigured site fired")
		}
	}); n != 0 {
		t.Fatalf("unconfigured chaos hook allocates %v per run, want 0", n)
	}

	// The same holds on a context that carries unrelated values above the
	// (absent) injector.
	deep := context.WithValue(context.WithValue(ctx, dummyKey{}, 1), dummyKey2{}, 2)
	if n := testing.AllocsPerRun(1000, func() {
		if err := SiteFrom(deep, SiteDPipeCandidate).Strike(deep); err != nil {
			t.Fatal("unconfigured site fired")
		}
	}); n != 0 {
		t.Fatalf("unconfigured chaos hook allocates %v per run on a deep context, want 0", n)
	}
}

type (
	dummyKey  struct{}
	dummyKey2 struct{}
)

// A site that never fires (armed but scheduled away) must not inject.
func TestArmedButColdSiteNeverFires(t *testing.T) {
	in := mustNew(t, 1, SiteConfig{Site: "x", Kind: KindError, Every: 1000})
	site := in.Site("x")
	for i := 0; i < 999; i++ {
		if err := site.Strike(context.Background()); err != nil {
			t.Fatalf("hit %d fired before schedule", i+1)
		}
	}
}

func TestCheckLeaksFlagsAndClears(t *testing.T) {
	stop := make(chan struct{})
	go func() { <-stop }()
	if err := CheckLeaks(100 * time.Millisecond); err == nil {
		t.Fatal("CheckLeaks missed a parked goroutine")
	} else if !strings.Contains(err.Error(), "leaked goroutine") {
		t.Fatalf("unexpected leak error: %v", err)
	}
	close(stop)
	if err := CheckLeaks(2 * time.Second); err != nil {
		t.Fatalf("CheckLeaks still failing after goroutine exit: %v", err)
	}
}
