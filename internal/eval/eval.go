// Package eval executes Extended Einsums (internal/einsum) on dense tensors
// (internal/tensor). It is the reference interpreter: the cascade executor
// uses it to run the paper's Einsum Cascades numerically, and the test suite
// uses it to prove the cascades are semantically equivalent to naive
// implementations of attention, LayerNorm, and the FFN.
//
// The interpreter is deliberately simple and allocation-heavy; it exists for
// correctness validation, not performance. The performance characteristics
// that the paper studies are *modelled* analytically in internal/perf, never
// measured from this interpreter.
package eval

import (
	"fmt"
	"math"

	"github.com/fusedmindlab/transfusion/internal/einsum"
	"github.com/fusedmindlab/transfusion/internal/tensor"
)

// Env is the execution environment: named tensors visible to the Einsum.
type Env map[string]*tensor.Tensor

// Sizes derives a dimension-size environment from the tensors in the env.
// It returns an error if two tensors disagree about a dimension's extent.
func (e Env) Sizes() (map[string]int, error) {
	sizes := make(map[string]int)
	for name, t := range e {
		for _, d := range t.Dims() {
			if prev, ok := sizes[d.Name]; ok && prev != d.Size {
				return nil, fmt.Errorf("eval: dimension %q has conflicting sizes %d (in %s) and %d", d.Name, d.Size, name, prev)
			}
			sizes[d.Name] = d.Size
		}
	}
	return sizes, nil
}

// Apply executes one Einsum against env and returns the output tensor. The
// dimension sizes are taken from dimSizes, which must cover every index label
// of the Einsum; callers typically build it once per cascade from Env.Sizes
// plus any indices not witnessed by an input (there are none in practice,
// since Validate rejects free output indices).
func Apply(e *einsum.Einsum, env Env, dimSizes map[string]int) (*tensor.Tensor, error) {
	if err := e.Validate(dimSizes); err != nil {
		return nil, err
	}
	inputs := make([]*tensor.Tensor, len(e.Inputs))
	for i, arg := range e.Inputs {
		t, ok := env[arg.Tensor]
		if !ok {
			return nil, fmt.Errorf("eval: einsum %s: input tensor %q not in environment", e.Name, arg.Tensor)
		}
		if t.Rank() != len(arg.Idx) {
			return nil, fmt.Errorf("eval: einsum %s: operand %s has rank %d but %d index labels", e.Name, arg.Tensor, t.Rank(), len(arg.Idx))
		}
		// Every operand dimension must match the environment's extent for
		// its label; a mismatch would otherwise surface as an out-of-range
		// panic deep inside the loop nest.
		for pos, d := range t.Dims() {
			if want := dimSizes[arg.Idx[pos]]; d.Size != want {
				return nil, fmt.Errorf("eval: einsum %s: operand %s dim %d (%s) has size %d, want %d",
					e.Name, arg.Tensor, pos, arg.Idx[pos], d.Size, want)
			}
		}
		inputs[i] = t
	}

	outDims := make([]tensor.Dim, len(e.OutIdx))
	for i, idx := range e.OutIdx {
		outDims[i] = tensor.Dim{Name: idx, Size: dimSizes[idx]}
	}
	out := tensor.New(outDims...)

	redIdx := e.ReductionIndices(nil)
	coord := make(map[string]int, len(e.OutIdx)+len(redIdx))
	vals := make([]float64, len(e.Inputs))

	var body func(level int) float64
	body = func(level int) float64 {
		if level == len(redIdx) {
			for i, arg := range e.Inputs {
				vals[i] = atLabels(inputs[i], arg.Idx, coord)
			}
			return e.CombineValue(vals)
		}
		idx := redIdx[level]
		acc := identity(e.Reduce)
		for v := 0; v < dimSizes[idx]; v++ {
			coord[idx] = v
			acc = reduce(e.Reduce, acc, body(level+1))
		}
		delete(coord, idx)
		return acc
	}

	var outer func(level int)
	outer = func(level int) {
		if level == len(e.OutIdx) {
			out.Set(coord, body(0))
			return
		}
		idx := e.OutIdx[level]
		for v := 0; v < dimSizes[idx]; v++ {
			coord[idx] = v
			outer(level + 1)
		}
		delete(coord, idx)
	}
	outer(0)
	return out, nil
}

// atLabels reads t at the coordinate determined by mapping t's dimensions
// through the operand's index labels. Labels address t positionally: label
// i names t's dimension i in the Einsum's index space, so an operand can
// bind a tensor whose stored dimension names differ from the cascade's
// labels (e.g. a weight tensor reused across layers). Every label is
// resolvable by construction: an operand's labels all appear in the output
// or reduction index sets, both fully bound in coord when the loop nest
// reaches its innermost level; an unresolved label reads the origin rather
// than crashing the interpreter.
func atLabels(t *tensor.Tensor, labels []string, coord map[string]int) float64 {
	dims := t.Dims()
	local := make(map[string]int, len(dims))
	for i, d := range dims {
		local[d.Name] = coord[labels[i]]
	}
	return t.At(local)
}

func identity(op einsum.ReduceOp) float64 {
	switch op {
	case einsum.ReduceMax:
		return math.Inf(-1)
	default:
		return 0
	}
}

func reduce(op einsum.ReduceOp, acc, v float64) float64 {
	switch op {
	case einsum.ReduceMax:
		return math.Max(acc, v)
	case einsum.ReduceSum:
		return acc + v
	default:
		// ReduceNone: body is called exactly once per output coordinate
		// (no reduction indices), so the "accumulation" is the value itself.
		return v
	}
}
