package eval

import (
	"testing"
	"testing/quick"

	"github.com/fusedmindlab/transfusion/internal/einsum"
	"github.com/fusedmindlab/transfusion/internal/tensor"
)

// Equivalence: the compiled path must agree with the reference interpreter
// on every Einsum shape the cascades use.

func applyBoth(t *testing.T, e *einsum.Einsum, env Env, sizes map[string]int) (*tensor.Tensor, *tensor.Tensor) {
	t.Helper()
	ref, err := Apply(e, env, sizes)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := ApplyFast(e, env, sizes)
	if err != nil {
		t.Fatal(err)
	}
	return ref, fast
}

func TestFastMatmul(t *testing.T) {
	a := tensor.Rand(1, tensor.Dim{Name: "m", Size: 5}, tensor.Dim{Name: "k", Size: 7})
	b := tensor.Rand(2, tensor.Dim{Name: "k", Size: 7}, tensor.Dim{Name: "n", Size: 3})
	e := mustParse("C = A[m,k] * B[k,n] -> [m,n]")
	ref, fast := applyBoth(t, e, Env{"A": a, "B": b}, map[string]int{"m": 5, "k": 7, "n": 3})
	if d := tensor.MaxAbsDiff(ref, fast); d > 1e-12 {
		t.Fatalf("compiled matmul deviates by %v", d)
	}
}

func TestFastBroadcastMap(t *testing.T) {
	x := tensor.Rand(3, tensor.Dim{Name: "h", Size: 3}, tensor.Dim{Name: "p", Size: 4})
	mu := tensor.Rand(4, tensor.Dim{Name: "p", Size: 4})
	e := einsum.Map("D", []string{"h", "p"}, einsum.Sub2, einsum.In("X", "h", "p"), einsum.In("MU", "p"))
	ref, fast := applyBoth(t, e, Env{"X": x, "MU": mu}, map[string]int{"h": 3, "p": 4})
	if d := tensor.MaxAbsDiff(ref, fast); d > 1e-12 {
		t.Fatalf("compiled broadcast deviates by %v", d)
	}
}

func TestFastMaxReduce(t *testing.T) {
	x := tensor.Rand(5, tensor.Dim{Name: "p", Size: 4}, tensor.Dim{Name: "m", Size: 9})
	e := einsum.Reduction("M", []string{"p"}, einsum.ReduceMax, einsum.In("X", "p", "m"))
	ref, fast := applyBoth(t, e, Env{"X": x}, map[string]int{"p": 4, "m": 9})
	if d := tensor.MaxAbsDiff(ref, fast); d > 1e-12 {
		t.Fatalf("compiled max-reduce deviates by %v", d)
	}
}

func TestFastScalarOutput(t *testing.T) {
	x := tensor.Rand(6, tensor.Dim{Name: "p", Size: 11})
	e := einsum.Reduction("T", nil, einsum.ReduceSum, einsum.In("X", "p"))
	ref, fast := applyBoth(t, e, Env{"X": x}, map[string]int{"p": 11})
	if ref.AtFlat(0) != fast.AtFlat(0) {
		t.Fatalf("compiled scalar sum = %v, want %v", fast.AtFlat(0), ref.AtFlat(0))
	}
}

func TestFastRepeatedOperand(t *testing.T) {
	// QAV = DAV * DAV: the same tensor appears twice.
	x := tensor.Rand(7, tensor.Dim{Name: "p", Size: 6})
	e := einsum.Map("Q", []string{"p"}, einsum.Mul2, einsum.In("X", "p"), einsum.In("X", "p"))
	ref, fast := applyBoth(t, e, Env{"X": x}, map[string]int{"p": 6})
	if d := tensor.MaxAbsDiff(ref, fast); d > 1e-12 {
		t.Fatalf("repeated-operand deviates by %v", d)
	}
}

// An operand that uses the same loop index on two of its own dimensions
// (diagonal addressing) must accumulate both strides.
func TestFastDiagonalAddressing(t *testing.T) {
	x := tensor.Rand(8, tensor.Dim{Name: "a", Size: 4}, tensor.Dim{Name: "b", Size: 4})
	e := einsum.Map("D", []string{"i"}, einsum.Identity, einsum.In("X", "i", "i"))
	ref, fast := applyBoth(t, e, Env{"X": x}, map[string]int{"i": 4})
	if d := tensor.MaxAbsDiff(ref, fast); d > 1e-12 {
		t.Fatalf("diagonal addressing deviates by %v", d)
	}
}

func TestCompileErrors(t *testing.T) {
	a := tensor.Rand(1, tensor.Dim{Name: "m", Size: 2}, tensor.Dim{Name: "k", Size: 3})
	e := mustParse("C = A[m,k] * B[k,n] -> [m,n]")
	if _, err := Compile(e, Env{"A": a}, map[string]int{"m": 2, "k": 3, "n": 2}); err == nil {
		t.Fatal("missing tensor accepted")
	}
	badRank := tensor.Rand(2, tensor.Dim{Name: "k", Size: 3})
	if _, err := Compile(e, Env{"A": a, "B": badRank}, map[string]int{"m": 2, "k": 3, "n": 2}); err == nil {
		t.Fatal("rank mismatch accepted")
	}
	badSize := tensor.Rand(3, tensor.Dim{Name: "k", Size: 4}, tensor.Dim{Name: "n", Size: 2})
	if _, err := Compile(e, Env{"A": a, "B": badSize}, map[string]int{"m": 2, "k": 3, "n": 2}); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

// Property: compiled and reference paths agree on random contraction
// shapes and random broadcast patterns.
func TestQuickFastEquivalence(t *testing.T) {
	e := mustParse("C = A[m,k] * B[k,n] -> [m,n]")
	f := func(seed uint64, mr, kr, nr uint8) bool {
		m, k, n := int(mr%5)+1, int(kr%5)+1, int(nr%5)+1
		a := tensor.Rand(seed|1, tensor.Dim{Name: "m", Size: m}, tensor.Dim{Name: "k", Size: k})
		b := tensor.Rand(seed|2, tensor.Dim{Name: "k", Size: k}, tensor.Dim{Name: "n", Size: n})
		sizes := map[string]int{"m": m, "k": k, "n": n}
		ref, err1 := Apply(e, Env{"A": a, "B": b}, sizes)
		fast, err2 := ApplyFast(e, Env{"A": a, "B": b}, sizes)
		if err1 != nil || err2 != nil {
			return false
		}
		return tensor.MaxAbsDiff(ref, fast) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkApplyReference(b *testing.B) {
	a := tensor.Rand(1, tensor.Dim{Name: "m", Size: 64}, tensor.Dim{Name: "k", Size: 64})
	bb := tensor.Rand(2, tensor.Dim{Name: "k", Size: 64}, tensor.Dim{Name: "n", Size: 64})
	e := mustParse("C = A[m,k] * B[k,n] -> [m,n]")
	sizes := map[string]int{"m": 64, "k": 64, "n": 64}
	env := Env{"A": a, "B": bb}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Apply(e, env, sizes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApplyCompiled(b *testing.B) {
	a := tensor.Rand(1, tensor.Dim{Name: "m", Size: 64}, tensor.Dim{Name: "k", Size: 64})
	bb := tensor.Rand(2, tensor.Dim{Name: "k", Size: 64}, tensor.Dim{Name: "n", Size: 64})
	e := mustParse("C = A[m,k] * B[k,n] -> [m,n]")
	sizes := map[string]int{"m": 64, "k": 64, "n": 64}
	env := Env{"A": a, "B": bb}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ApplyFast(e, env, sizes); err != nil {
			b.Fatal(err)
		}
	}
}
