package eval

import (
	"fmt"

	"github.com/fusedmindlab/transfusion/internal/einsum"
	"github.com/fusedmindlab/transfusion/internal/tensor"
)

// Compiled execution: instead of the map-based recursive interpreter in
// Apply, a Program precomputes per-operand strides aligned to a single
// loop nest (output indices outermost, reduction indices innermost) and
// walks flat offsets with an odometer. Semantics are identical to Apply —
// enforced by equivalence tests — but evaluation is one to two orders of
// magnitude faster, which lets the functional test-bench run realistically
// sized cascades.

// Program is a compiled Einsum bound to concrete input tensors.
type Program struct {
	e       *einsum.Einsum
	inputs  []*tensor.Tensor
	outDims []tensor.Dim
	// loop nest: extents and, per operand, the stride each loop level
	// advances that operand's flat offset by (0 when the operand does not
	// carry the index).
	extents   []int
	strides   [][]int // [operand][level]
	numOut    int     // loop levels 0..numOut-1 are output indices
	reduce    einsum.ReduceOp
	nOperands int
}

// Compile binds an Einsum to its input tensors under the dimension-size
// environment, validating shapes. The returned Program can be Run once (it
// allocates a fresh output per Run).
func Compile(e *einsum.Einsum, env Env, dimSizes map[string]int) (*Program, error) {
	if err := e.Validate(dimSizes); err != nil {
		return nil, err
	}
	p := &Program{e: e, reduce: e.Reduce, nOperands: len(e.Inputs)}

	for i, arg := range e.Inputs {
		t, ok := env[arg.Tensor]
		if !ok {
			return nil, fmt.Errorf("eval: compile %s: input tensor %q not in environment", e.Name, arg.Tensor)
		}
		if t.Rank() != len(arg.Idx) {
			return nil, fmt.Errorf("eval: compile %s: operand %s has rank %d but %d labels", e.Name, arg.Tensor, t.Rank(), len(arg.Idx))
		}
		for pos, d := range t.Dims() {
			want := dimSizes[arg.Idx[pos]]
			if d.Size != want {
				return nil, fmt.Errorf("eval: compile %s: operand %s dim %d (%s) has size %d, want %d",
					e.Name, arg.Tensor, pos, arg.Idx[pos], d.Size, want)
			}
		}
		p.inputs = append(p.inputs, t)
		_ = i
	}

	// Loop order: output indices then reduction indices.
	loops := append(append([]string{}, e.OutIdx...), e.ReductionIndices(nil)...)
	p.numOut = len(e.OutIdx)
	p.extents = make([]int, len(loops))
	for i, idx := range loops {
		p.extents[i] = dimSizes[idx]
	}
	for i, idx := range e.OutIdx {
		p.outDims = append(p.outDims, tensor.Dim{Name: idx, Size: dimSizes[idx]})
		_ = i
	}

	// Per-operand stride per loop level.
	p.strides = make([][]int, len(e.Inputs))
	for oi, arg := range e.Inputs {
		ts := p.inputs[oi].Strides()
		row := make([]int, len(loops))
		for li, loopIdx := range loops {
			for pos, label := range arg.Idx {
				if label == loopIdx {
					row[li] += ts[pos]
				}
			}
		}
		p.strides[oi] = row
	}
	return p, nil
}

// Run executes the program and returns a freshly allocated output tensor.
func (p *Program) Run() *tensor.Tensor {
	out := tensor.New(p.outDims...)
	outData := out.Data()

	counters := make([]int, len(p.extents))
	offsets := make([]int, p.nOperands)
	datas := make([][]float64, p.nOperands)
	for i, t := range p.inputs {
		datas[i] = t.Data()
	}
	vals := make([]float64, p.nOperands)

	redLevels := len(p.extents) - p.numOut
	outPos := 0
	for {
		// Inner reduction accumulation at the current output coordinate.
		acc := identity(p.reduce)
		for {
			for i := 0; i < p.nOperands; i++ {
				vals[i] = datas[i][offsets[i]]
			}
			acc = reduce(p.reduce, acc, p.e.CombineValue(vals))

			// Advance the reduction odometer (innermost levels).
			level := len(p.extents) - 1
			for ; level >= p.numOut; level-- {
				counters[level]++
				for i := 0; i < p.nOperands; i++ {
					offsets[i] += p.strides[i][level]
				}
				if counters[level] < p.extents[level] {
					break
				}
				// Reset this level.
				for i := 0; i < p.nOperands; i++ {
					offsets[i] -= p.strides[i][level] * p.extents[level]
				}
				counters[level] = 0
			}
			if level < p.numOut || redLevels == 0 {
				break
			}
		}
		outData[outPos] = acc
		outPos++

		// Advance the output odometer.
		level := p.numOut - 1
		for ; level >= 0; level-- {
			counters[level]++
			for i := 0; i < p.nOperands; i++ {
				offsets[i] += p.strides[i][level]
			}
			if counters[level] < p.extents[level] {
				break
			}
			for i := 0; i < p.nOperands; i++ {
				offsets[i] -= p.strides[i][level] * p.extents[level]
			}
			counters[level] = 0
		}
		if level < 0 {
			break
		}
	}
	return out
}

// ApplyFast executes one Einsum via the compiled path; a drop-in
// replacement for Apply with identical semantics.
func ApplyFast(e *einsum.Einsum, env Env, dimSizes map[string]int) (*tensor.Tensor, error) {
	p, err := Compile(e, env, dimSizes)
	if err != nil {
		return nil, err
	}
	return p.Run(), nil
}
