package eval

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/fusedmindlab/transfusion/internal/einsum"
	"github.com/fusedmindlab/transfusion/internal/tensor"
)

func TestMatmul(t *testing.T) {
	a := tensor.New(tensor.Dim{Name: "m", Size: 2}, tensor.Dim{Name: "k", Size: 3})
	b := tensor.New(tensor.Dim{Name: "k", Size: 3}, tensor.Dim{Name: "n", Size: 2})
	// a = [[1,2,3],[4,5,6]]; b = [[7,8],[9,10],[11,12]]
	for i, v := range []float64{1, 2, 3, 4, 5, 6} {
		a.SetFlat(i, v)
	}
	for i, v := range []float64{7, 8, 9, 10, 11, 12} {
		b.SetFlat(i, v)
	}
	e := mustParse("C = A[m,k] * B[k,n] -> [m,n]")
	env := Env{"A": a, "B": b}
	sizes, err := env.Sizes()
	if err != nil {
		t.Fatal(err)
	}
	c := mustApply(e, env, sizes)
	want := [][]float64{{58, 64}, {139, 154}}
	for m := 0; m < 2; m++ {
		for n := 0; n < 2; n++ {
			if got := c.At(map[string]int{"m": m, "n": n}); got != want[m][n] {
				t.Fatalf("C[%d,%d] = %v, want %v", m, n, got, want[m][n])
			}
		}
	}
}

func TestMaxReduce(t *testing.T) {
	x := tensor.New(tensor.Dim{Name: "p", Size: 2}, tensor.Dim{Name: "m", Size: 3})
	for i, v := range []float64{1, 5, 2, -1, -7, -3} {
		x.SetFlat(i, v)
	}
	e := einsum.Reduction("M", []string{"p"}, einsum.ReduceMax, einsum.In("X", "p", "m"))
	got := mustApply(e, Env{"X": x}, map[string]int{"p": 2, "m": 3})
	if got.At(map[string]int{"p": 0}) != 5 || got.At(map[string]int{"p": 1}) != -1 {
		t.Fatalf("max reduce = %v, %v", got.At(map[string]int{"p": 0}), got.At(map[string]int{"p": 1}))
	}
}

func TestBroadcastSubtract(t *testing.T) {
	x := tensor.New(tensor.Dim{Name: "h", Size: 2}, tensor.Dim{Name: "p", Size: 2}).Fill(10)
	mu := tensor.New(tensor.Dim{Name: "p", Size: 2})
	mu.SetFlat(0, 1)
	mu.SetFlat(1, 2)
	e := einsum.Map("D", []string{"h", "p"}, einsum.Sub2, einsum.In("X", "h", "p"), einsum.In("MU", "p"))
	got := mustApply(e, Env{"X": x, "MU": mu}, map[string]int{"h": 2, "p": 2})
	if got.At(map[string]int{"h": 1, "p": 0}) != 9 || got.At(map[string]int{"h": 0, "p": 1}) != 8 {
		t.Fatalf("broadcast subtract wrong: %v", got.Data())
	}
}

func TestExpSubMap(t *testing.T) {
	x := tensor.New(tensor.Dim{Name: "p", Size: 2})
	x.SetFlat(0, 3)
	x.SetFlat(1, 5)
	m := tensor.Scalar(0)
	m.SetFlat(0, 5)
	e := einsum.Map("S", []string{"p"}, einsum.ExpSub, einsum.In("X", "p"), einsum.In("M"))
	got := mustApply(e, Env{"X": x, "M": m}, map[string]int{"p": 2})
	if math.Abs(got.AtFlat(0)-math.Exp(-2)) > 1e-12 || math.Abs(got.AtFlat(1)-1) > 1e-12 {
		t.Fatalf("ExpSub = %v", got.Data())
	}
}

func TestLabelRemapping(t *testing.T) {
	// The operand labels address a tensor whose own dim names differ:
	// weight stored as (d, s) but used as W[f, s] in the cascade index space.
	w := tensor.Rand(3, tensor.Dim{Name: "d", Size: 4}, tensor.Dim{Name: "s", Size: 2})
	x := tensor.Rand(4, tensor.Dim{Name: "f", Size: 4})
	e := einsum.New("Y", []string{"s"}, einsum.In("X", "f"), einsum.In("W", "f", "s"))
	got := mustApply(e, Env{"X": x, "W": w}, map[string]int{"f": 4, "s": 2})
	for s := 0; s < 2; s++ {
		want := 0.0
		for f := 0; f < 4; f++ {
			want += x.At(map[string]int{"f": f}) * w.At(map[string]int{"d": f, "s": s})
		}
		if math.Abs(got.At(map[string]int{"s": s})-want) > 1e-12 {
			t.Fatalf("label remap wrong at s=%d", s)
		}
	}
}

func TestApplyErrors(t *testing.T) {
	a := tensor.New(tensor.Dim{Name: "m", Size: 2}, tensor.Dim{Name: "k", Size: 3})
	e := mustParse("C = A[m,k] * B[k,n] -> [m,n]")
	// Missing tensor B.
	if _, err := Apply(e, Env{"A": a}, map[string]int{"m": 2, "k": 3, "n": 2}); err == nil {
		t.Fatal("Apply with missing input succeeded")
	}
	// Rank mismatch.
	b1 := tensor.New(tensor.Dim{Name: "k", Size: 3})
	if _, err := Apply(e, Env{"A": a, "B": b1}, map[string]int{"m": 2, "k": 3, "n": 2}); err == nil {
		t.Fatal("Apply with rank mismatch succeeded")
	}
	// Missing dim size.
	b := tensor.New(tensor.Dim{Name: "k", Size: 3}, tensor.Dim{Name: "n", Size: 2})
	if _, err := Apply(e, Env{"A": a, "B": b}, map[string]int{"m": 2, "k": 3}); err == nil {
		t.Fatal("Apply with missing dim size succeeded")
	}
}

func TestEnvSizesConflict(t *testing.T) {
	env := Env{
		"A": tensor.New(tensor.Dim{Name: "k", Size: 3}),
		"B": tensor.New(tensor.Dim{Name: "k", Size: 4}),
	}
	if _, err := env.Sizes(); err == nil {
		t.Fatal("Sizes with conflicting extents succeeded")
	}
}

func TestScalarOutput(t *testing.T) {
	x := tensor.New(tensor.Dim{Name: "p", Size: 4})
	for i := 0; i < 4; i++ {
		x.SetFlat(i, float64(i+1))
	}
	e := einsum.Reduction("T", nil, einsum.ReduceSum, einsum.In("X", "p"))
	got := mustApply(e, Env{"X": x}, map[string]int{"p": 4})
	if got.Rank() != 0 || got.AtFlat(0) != 10 {
		t.Fatalf("scalar sum = %v", got.AtFlat(0))
	}
}

// Property: einsum matmul matches a hand-rolled triple loop for random
// shapes and values.
func TestQuickMatmulMatchesNaive(t *testing.T) {
	e := mustParse("C = A[m,k] * B[k,n] -> [m,n]")
	f := func(seed uint64, mr, kr, nr uint8) bool {
		m, k, n := int(mr%5)+1, int(kr%5)+1, int(nr%5)+1
		a := tensor.Rand(seed|1, tensor.Dim{Name: "m", Size: m}, tensor.Dim{Name: "k", Size: k})
		b := tensor.Rand(seed|2, tensor.Dim{Name: "k", Size: k}, tensor.Dim{Name: "n", Size: n})
		sizes := map[string]int{"m": m, "k": k, "n": n}
		c := mustApply(e, Env{"A": a, "B": b}, sizes)
		for mi := 0; mi < m; mi++ {
			for ni := 0; ni < n; ni++ {
				want := 0.0
				for ki := 0; ki < k; ki++ {
					want += a.At(map[string]int{"m": mi, "k": ki}) * b.At(map[string]int{"k": ki, "n": ni})
				}
				if math.Abs(c.At(map[string]int{"m": mi, "n": ni})-want) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: sum reduction is linear — scaling the input scales the output.
func TestQuickSumLinearity(t *testing.T) {
	e := einsum.Reduction("S", []string{"p"}, einsum.ReduceSum, einsum.In("X", "p", "m"))
	f := func(seed uint64, scaleRaw uint8) bool {
		scale := float64(scaleRaw%7) + 1
		x := tensor.Rand(seed|1, tensor.Dim{Name: "p", Size: 3}, tensor.Dim{Name: "m", Size: 4})
		sizes := map[string]int{"p": 3, "m": 4}
		s1 := mustApply(e, Env{"X": x}, sizes)
		xs := x.Clone().Apply(func(v float64) float64 { return v * scale })
		s2 := mustApply(e, Env{"X": xs}, sizes)
		for p := 0; p < 3; p++ {
			a := s1.At(map[string]int{"p": p}) * scale
			b := s2.At(map[string]int{"p": p})
			if math.Abs(a-b) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// mustParse and mustApply are test conveniences standing in for the removed
// library panic helpers: static specs in this file are known-good.
func mustParse(spec string) *einsum.Einsum {
	e, err := einsum.Parse(spec)
	if err != nil {
		panic(err)
	}
	return e
}

func mustApply(e *einsum.Einsum, env Env, dimSizes map[string]int) *tensor.Tensor {
	t, err := Apply(e, env, dimSizes)
	if err != nil {
		panic(err)
	}
	return t
}
