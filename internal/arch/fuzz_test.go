package arch

import (
	"errors"
	"testing"

	"github.com/fusedmindlab/transfusion/internal/faults"
)

// FuzzLoadJSON asserts the JSON loader never panics and that every rejected
// description carries the ErrInvalidSpec classification, while every
// accepted description passes Validate.
func FuzzLoadJSON(f *testing.F) {
	f.Add([]byte(`{"name":"npu","pe2dRows":64,"pe2dCols":64,"pe1dLanes":512,` +
		`"bufferBytes":8388608,"dramBandwidthGBs":100,"clockGHz":1.0}`))
	f.Add([]byte(`{"name":"bad","pe2dRows":-1}`))
	f.Add([]byte(`{"name":"zero","pe2dRows":0,"pe2dCols":64}`))
	f.Add([]byte(`{"name":"neg-energy","pe2dRows":4,"pe2dCols":4,"pe1dLanes":4,` +
		`"bufferBytes":1024,"dramBandwidthGBs":1,"clockGHz":1,"energy":{"macOp":-3}}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"huge","bufferBytes":-9223372036854775808}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := FromJSON(data)
		if err != nil {
			if !errors.Is(err, faults.ErrInvalidSpec) {
				t.Fatalf("rejection %v does not match ErrInvalidSpec", err)
			}
			return
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("accepted spec fails Validate: %v", verr)
		}
		if s.BufferElements() <= 0 {
			t.Fatalf("accepted spec has non-positive buffer elements: %+v", s)
		}
	})
}

func TestFromJSONRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"non-positive PE rows", `{"name":"x","pe2dRows":0,"pe2dCols":4,"pe1dLanes":4,"bufferBytes":1024,"dramBandwidthGBs":1,"clockGHz":1}`},
		{"negative PE cols", `{"name":"x","pe2dRows":4,"pe2dCols":-4,"pe1dLanes":4,"bufferBytes":1024,"dramBandwidthGBs":1,"clockGHz":1}`},
		{"non-positive lanes", `{"name":"x","pe2dRows":4,"pe2dCols":4,"pe1dLanes":0,"bufferBytes":1024,"dramBandwidthGBs":1,"clockGHz":1}`},
		{"non-positive buffer", `{"name":"x","pe2dRows":4,"pe2dCols":4,"pe1dLanes":4,"bufferBytes":0,"dramBandwidthGBs":1,"clockGHz":1}`},
		{"negative bandwidth", `{"name":"x","pe2dRows":4,"pe2dCols":4,"pe1dLanes":4,"bufferBytes":1024,"dramBandwidthGBs":-1,"clockGHz":1}`},
		{"non-positive clock", `{"name":"x","pe2dRows":4,"pe2dCols":4,"pe1dLanes":4,"bufferBytes":1024,"dramBandwidthGBs":1,"clockGHz":0}`},
		{"negative element width", `{"name":"x","pe2dRows":4,"pe2dCols":4,"pe1dLanes":4,"bufferBytes":1024,"dramBandwidthGBs":1,"clockGHz":1,"bytesPerElement":-2}`},
		{"missing name", `{"pe2dRows":4,"pe2dCols":4,"pe1dLanes":4,"bufferBytes":1024,"dramBandwidthGBs":1,"clockGHz":1}`},
		{"negative energy", `{"name":"x","pe2dRows":4,"pe2dCols":4,"pe1dLanes":4,"bufferBytes":1024,"dramBandwidthGBs":1,"clockGHz":1,"energy":{"dramPerByte":-1}}`},
		{"malformed JSON", `{"name":`},
	}
	for _, c := range cases {
		_, err := FromJSON([]byte(c.json))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !errors.Is(err, faults.ErrInvalidSpec) {
			t.Errorf("%s: error %v does not match ErrInvalidSpec", c.name, err)
		}
	}
}
