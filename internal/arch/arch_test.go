package arch

import (
	"os"
	"testing"
)

func TestTable3Presets(t *testing.T) {
	cloud := Cloud()
	if cloud.PE2D.Rows != 256 || cloud.PE2D.Cols != 256 {
		t.Fatalf("cloud 2D PE = %dx%d, want 256x256", cloud.PE2D.Rows, cloud.PE2D.Cols)
	}
	if cloud.PE1DLanes != 256 {
		t.Fatalf("cloud 1D PE = %d, want 256", cloud.PE1DLanes)
	}
	if cloud.BufferBytes != 16<<20 {
		t.Fatalf("cloud buffer = %d, want 16 MiB", cloud.BufferBytes)
	}
	if cloud.DRAMBandwidth != 400e9 {
		t.Fatalf("cloud bandwidth = %v, want 400 GB/s", cloud.DRAMBandwidth)
	}

	edge := Edge()
	if edge.PE2D.NumPEs() != 256 {
		t.Fatalf("edge 2D PEs = %d, want 256", edge.PE2D.NumPEs())
	}
	if edge.BufferBytes != 5<<20 {
		t.Fatalf("edge buffer = %d, want 5 MiB", edge.BufferBytes)
	}
	if edge.DRAMBandwidth != 30e9 {
		t.Fatalf("edge bandwidth = %v, want 30 GB/s", edge.DRAMBandwidth)
	}
}

func TestEdgeVariants(t *testing.T) {
	e32 := Edge32()
	if e32.PE2D.NumPEs() != 1024 || e32.BufferBytes != 5<<20 {
		t.Fatalf("edge32 = %d PEs, %d buffer", e32.PE2D.NumPEs(), e32.BufferBytes)
	}
	e64 := Edge64()
	if e64.PE2D.NumPEs() != 4096 {
		t.Fatalf("edge64 PEs = %d, want 4096", e64.PE2D.NumPEs())
	}
	// §6.2: the 64x64 configuration's buffer grows to 8 MB.
	if e64.BufferBytes != 8<<20 {
		t.Fatalf("edge64 buffer = %d, want 8 MiB", e64.BufferBytes)
	}
}

func TestAllPresetsValidate(t *testing.T) {
	for name, s := range Presets() {
		if err := s.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", name, err)
		}
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	base := Cloud()
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"empty name", func(s *Spec) { s.Name = "" }},
		{"zero 2D rows", func(s *Spec) { s.PE2D.Rows = 0 }},
		{"negative 2D cols", func(s *Spec) { s.PE2D.Cols = -1 }},
		{"zero 1D lanes", func(s *Spec) { s.PE1DLanes = 0 }},
		{"zero buffer", func(s *Spec) { s.BufferBytes = 0 }},
		{"zero bandwidth", func(s *Spec) { s.DRAMBandwidth = 0 }},
		{"zero clock", func(s *Spec) { s.ClockHz = 0 }},
		{"zero element width", func(s *Spec) { s.BytesPerElement = 0 }},
	}
	for _, c := range cases {
		s := base
		c.mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate succeeded", c.name)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("edge")
	if err != nil || s.Name != "edge" {
		t.Fatalf("ByName(edge) = %v, %v", s.Name, err)
	}
	if _, err := ByName("gpu"); err == nil {
		t.Fatal("ByName(gpu) succeeded")
	}
}

func TestBufferElements(t *testing.T) {
	s := Cloud()
	if got := s.BufferElements(); got != (16<<20)/2 {
		t.Fatalf("BufferElements = %d", got)
	}
}

func TestEnergyOrdering(t *testing.T) {
	// The evaluation depends on DRAM ≫ buffer ≫ register file; assert the
	// ordering so a future constant tweak cannot silently invert it.
	e := Default45nm
	if !(e.DRAMPerByte > 5*e.BufferPerByte && e.BufferPerByte > 5*e.RegPerByte) {
		t.Fatalf("energy ordering violated: %+v", e)
	}
	if e.MACOp <= 0 || e.VectorOp <= 0 {
		t.Fatalf("non-positive op energies: %+v", e)
	}
}

func TestFromJSON(t *testing.T) {
	data := []byte(`{
		"name": "myNPU",
		"pe2dRows": 64, "pe2dCols": 64,
		"pe1dLanes": 512,
		"bufferBytes": 8388608,
		"dramBandwidthGBs": 100,
		"clockGHz": 1.5,
		"energy": {"dramPerByte": 200}
	}`)
	s, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "myNPU" || s.PE2D.NumPEs() != 4096 || s.PE1DLanes != 512 {
		t.Fatalf("parsed %+v", s)
	}
	if s.DRAMBandwidth != 100e9 || s.ClockHz != 1.5e9 {
		t.Fatalf("units wrong: BW=%v clock=%v", s.DRAMBandwidth, s.ClockHz)
	}
	// Defaults: element width and remaining energy entries.
	if s.BytesPerElement != 2 {
		t.Fatalf("default element width = %d", s.BytesPerElement)
	}
	if s.Energy.DRAMPerByte != 200 || s.Energy.MACOp != Default45nm.MACOp {
		t.Fatalf("energy merge wrong: %+v", s.Energy)
	}
}

func TestFromJSONErrors(t *testing.T) {
	if _, err := FromJSON([]byte("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Valid JSON but invalid spec (no PEs).
	if _, err := FromJSON([]byte(`{"name":"x"}`)); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestFromJSONFile(t *testing.T) {
	path := t.TempDir() + "/arch.json"
	content := `{"name":"f","pe2dRows":16,"pe2dCols":16,"pe1dLanes":256,"bufferBytes":1048576,"dramBandwidthGBs":30,"clockGHz":0.8}`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := FromJSONFile(path)
	if err != nil || s.Name != "f" {
		t.Fatalf("FromJSONFile = %+v, %v", s, err)
	}
	if _, err := FromJSONFile(path + ".missing"); err == nil {
		t.Fatal("missing file accepted")
	}
}
