package arch

import (
	"encoding/json"
	"fmt"
	"os"

	"github.com/fusedmindlab/transfusion/internal/faults"
)

// JSON configuration loading: downstream users describe their own
// accelerator instead of editing the presets. The schema mirrors Table 3
// plus the modelling knobs:
//
//	{
//	  "name": "myNPU",
//	  "pe2dRows": 64, "pe2dCols": 64,
//	  "pe1dLanes": 512,
//	  "bufferBytes": 8388608,
//	  "dramBandwidthGBs": 100,
//	  "clockGHz": 1.0,
//	  "bytesPerElement": 2,
//	  "energy": {                       // optional; defaults to 45 nm table
//	    "dramPerByte": 160, "bufferPerByte": 12.5,
//	    "regPerByte": 0.25, "macOp": 4.6, "vectorOp": 1.1
//	  }
//	}

type jsonEnergy struct {
	DRAMPerByte   *float64 `json:"dramPerByte"`
	BufferPerByte *float64 `json:"bufferPerByte"`
	RegPerByte    *float64 `json:"regPerByte"`
	MACOp         *float64 `json:"macOp"`
	VectorOp      *float64 `json:"vectorOp"`
}

type jsonSpec struct {
	Name             string      `json:"name"`
	PE2DRows         int         `json:"pe2dRows"`
	PE2DCols         int         `json:"pe2dCols"`
	PE1DLanes        int         `json:"pe1dLanes"`
	BufferBytes      int64       `json:"bufferBytes"`
	DRAMBandwidthGBs float64     `json:"dramBandwidthGBs"`
	ClockGHz         float64     `json:"clockGHz"`
	BytesPerElement  int         `json:"bytesPerElement"`
	Energy           *jsonEnergy `json:"energy"`
}

// FromJSON parses an architecture description. Missing optional fields
// (element width, energy entries) take the preset defaults.
func FromJSON(data []byte) (Spec, error) {
	var js jsonSpec
	if err := json.Unmarshal(data, &js); err != nil {
		return Spec{}, fmt.Errorf("arch: parse JSON: %v: %w", err, faults.ErrInvalidSpec)
	}
	if js.Name == "" {
		return Spec{}, faults.Invalidf("arch: JSON description missing \"name\"")
	}
	s := Spec{
		Name:            js.Name,
		PE2D:            Array2D{Rows: js.PE2DRows, Cols: js.PE2DCols},
		PE1DLanes:       js.PE1DLanes,
		BufferBytes:     js.BufferBytes,
		DRAMBandwidth:   js.DRAMBandwidthGBs * 1e9,
		ClockHz:         js.ClockGHz * 1e9,
		BytesPerElement: js.BytesPerElement,
		Energy:          Default45nm,
	}
	if s.BytesPerElement == 0 {
		s.BytesPerElement = 2
	}
	if e := js.Energy; e != nil {
		if e.DRAMPerByte != nil {
			s.Energy.DRAMPerByte = *e.DRAMPerByte
		}
		if e.BufferPerByte != nil {
			s.Energy.BufferPerByte = *e.BufferPerByte
		}
		if e.RegPerByte != nil {
			s.Energy.RegPerByte = *e.RegPerByte
		}
		if e.MACOp != nil {
			s.Energy.MACOp = *e.MACOp
		}
		if e.VectorOp != nil {
			s.Energy.VectorOp = *e.VectorOp
		}
	}
	if t := s.Energy; t.DRAMPerByte < 0 || t.BufferPerByte < 0 || t.RegPerByte < 0 || t.MACOp < 0 || t.VectorOp < 0 {
		return Spec{}, faults.Invalidf("arch %s: negative energy table entry", s.Name)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// FromJSONFile loads an architecture description from a file.
func FromJSONFile(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("arch: %w", err)
	}
	return FromJSON(data)
}
