// Package arch describes the spatial-accelerator architectures TransFusion
// targets: an off-chip DRAM, a shared on-chip global buffer, a 2D PE array
// for matrix-dense work and a 1D PE array for streaming/vector work
// (Figure 1 of the paper). The presets reproduce Table 3 plus the 32×32 and
// 64×64 edge variants used in the PE-scaling study (§6.2).
//
// Energy is modelled with per-access costs at a 45 nm-class technology node,
// replacing the paper's use of Accelergy: what the evaluation consumes is
// only the relative per-component cost ordering (DRAM ≫ global buffer ≫
// register file ≈ PE op), which these constants preserve.
package arch

import (
	"github.com/fusedmindlab/transfusion/internal/faults"
)

// Array2D is the 2D processing-element array.
type Array2D struct {
	Rows int
	Cols int
}

// NumPEs returns the total PE count of the 2D array.
func (a Array2D) NumPEs() int { return a.Rows * a.Cols }

// EnergyTable holds per-access energies in picojoules.
type EnergyTable struct {
	// DRAMPerByte is the energy of moving one byte to/from off-chip memory.
	DRAMPerByte float64
	// BufferPerByte is the energy of one global-buffer byte access.
	BufferPerByte float64
	// RegPerByte is the energy of one register-file byte access.
	RegPerByte float64
	// MACOp is the energy of one multiply-accumulate on the 2D array.
	MACOp float64
	// VectorOp is the energy of one scalar operation on the 1D array.
	VectorOp float64
}

// Default45nm is the energy table used by every preset; the values follow
// the usual 45 nm scaling literature (a 4-byte DRAM access costs two to
// three orders of magnitude more than a MAC).
var Default45nm = EnergyTable{
	DRAMPerByte:   160,  // ~640 pJ per 32-bit word
	BufferPerByte: 12.5, // large on-chip SRAM
	RegPerByte:    0.25,
	MACOp:         4.6, // fp mult + add
	VectorOp:      1.1, // exp/div approximated as iterative vector ops
}

// Spec is a complete architecture description.
type Spec struct {
	// Name identifies the preset ("cloud", "edge", ...).
	Name string
	// PE2D is the matrix array (e.g. 256×256 on cloud).
	PE2D Array2D
	// PE1DLanes is the element count of the 1D streaming array.
	PE1DLanes int
	// BufferBytes is the shared on-chip global buffer capacity.
	BufferBytes int64
	// DRAMBandwidth is the off-chip bandwidth in bytes per second.
	DRAMBandwidth float64
	// ClockHz is the PE clock frequency.
	ClockHz float64
	// BytesPerElement is the modelled datatype width (2 = bf16).
	BytesPerElement int
	// Energy is the per-access energy table.
	Energy EnergyTable
}

// Validate checks that every parameter is physically meaningful. Violations
// return errors matching faults.ErrInvalidSpec.
func (s Spec) Validate() error {
	switch {
	case s.Name == "":
		return faults.Invalidf("arch: empty name")
	case s.PE2D.Rows <= 0 || s.PE2D.Cols <= 0:
		return faults.Invalidf("arch %s: non-positive 2D PE array %dx%d", s.Name, s.PE2D.Rows, s.PE2D.Cols)
	case s.PE1DLanes <= 0:
		return faults.Invalidf("arch %s: non-positive 1D PE lanes %d", s.Name, s.PE1DLanes)
	case s.BufferBytes <= 0:
		return faults.Invalidf("arch %s: non-positive buffer size %d", s.Name, s.BufferBytes)
	case s.DRAMBandwidth <= 0:
		return faults.Invalidf("arch %s: non-positive DRAM bandwidth %f", s.Name, s.DRAMBandwidth)
	case s.ClockHz <= 0:
		return faults.Invalidf("arch %s: non-positive clock %f", s.Name, s.ClockHz)
	case s.BytesPerElement <= 0:
		return faults.Invalidf("arch %s: non-positive element width %d", s.Name, s.BytesPerElement)
	default:
		return nil
	}
}

// BufferElements returns the buffer capacity in elements of the modelled
// datatype.
func (s Spec) BufferElements() int64 {
	return s.BufferBytes / int64(s.BytesPerElement)
}

const (
	kib = int64(1) << 10
	mib = int64(1) << 20
	gb  = 1e9
)

// Cloud is the TPU v2/v3-class cloud architecture of Table 3: a 256×256 2D
// array, 256-lane 1D array, 16 MB buffer, 400 GB/s DRAM.
func Cloud() Spec {
	return Spec{
		Name:            "cloud",
		PE2D:            Array2D{Rows: 256, Cols: 256},
		PE1DLanes:       256,
		BufferBytes:     16 * mib,
		DRAMBandwidth:   400 * gb,
		ClockHz:         940e6,
		BytesPerElement: 2,
		Energy:          Default45nm,
	}
}

// Edge is the edge-NPU architecture of Table 3: 16×16 2D array, 256-lane 1D
// array, 5 MB buffer, 30 GB/s DRAM.
func Edge() Spec {
	return Spec{
		Name:            "edge",
		PE2D:            Array2D{Rows: 16, Cols: 16},
		PE1DLanes:       256,
		BufferBytes:     5 * mib,
		DRAMBandwidth:   30 * gb,
		ClockHz:         800e6,
		BytesPerElement: 2,
		Energy:          Default45nm,
	}
}

// Edge32 is the 32×32 PE-scaling variant of §6.2 (same 5 MB buffer).
func Edge32() Spec {
	s := Edge()
	s.Name = "edge32"
	s.PE2D = Array2D{Rows: 32, Cols: 32}
	return s
}

// Edge64 is the 64×64 PE-scaling variant of §6.2; the paper notes the
// on-chip buffer grows to 8 MB in this configuration.
func Edge64() Spec {
	s := Edge()
	s.Name = "edge64"
	s.PE2D = Array2D{Rows: 64, Cols: 64}
	s.BufferBytes = 8 * mib
	return s
}

// Presets returns all architecture presets keyed by name.
func Presets() map[string]Spec {
	out := map[string]Spec{}
	for _, s := range []Spec{Cloud(), Edge(), Edge32(), Edge64()} {
		out[s.Name] = s
	}
	return out
}

// ByName resolves a preset; it returns an error listing the valid names when
// the preset does not exist.
func ByName(name string) (Spec, error) {
	p := Presets()
	if s, ok := p[name]; ok {
		return s, nil
	}
	names := make([]string, 0, len(p))
	for n := range p {
		names = append(names, n)
	}
	return Spec{}, faults.Invalidf("arch: unknown preset %q (have %v)", name, names)
}
