package faults

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestConstructorsMatchSentinels(t *testing.T) {
	cases := []struct {
		err      error
		sentinel error
	}{
		{Invalidf("bad dim %d", -1), ErrInvalidSpec},
		{Infeasiblef("no tile fits"), ErrInfeasible},
		{Budgetf("out of rollouts"), ErrBudgetExhausted},
	}
	for _, c := range cases {
		if !errors.Is(c.err, c.sentinel) {
			t.Errorf("%v does not match %v", c.err, c.sentinel)
		}
	}
	if !strings.Contains(Invalidf("bad dim %d", -1).Error(), "bad dim -1") {
		t.Errorf("Invalidf lost its message: %v", Invalidf("bad dim %d", -1))
	}
}

func TestCanceledMatchesBothSentinelAndCause(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Canceled(ctx)
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("Canceled() does not match ErrCanceled: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Canceled() does not match context.Canceled: %v", err)
	}

	dctx, dcancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer dcancel()
	<-dctx.Done()
	derr := Canceled(dctx)
	if !errors.Is(derr, ErrCanceled) || !errors.Is(derr, context.DeadlineExceeded) {
		t.Errorf("deadline Canceled() = %v, want ErrCanceled and DeadlineExceeded", derr)
	}
}

func TestRecoverConvertsPanic(t *testing.T) {
	run := func() (err error) {
		defer Recover(&err)
		panic("boom")
	}
	err := run()
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("recovered error %v is not *InternalError", err)
	}
	if ie.Panic != "boom" {
		t.Errorf("panic value = %v, want boom", ie.Panic)
	}
	if len(ie.Stack) == 0 {
		t.Error("InternalError has no stack")
	}

	// A panic whose value is an error remains matchable through Unwrap.
	sentinel := errors.New("inner")
	run2 := func() (err error) {
		defer Recover(&err)
		panic(sentinel)
	}
	if err := run2(); !errors.Is(err, sentinel) {
		t.Errorf("error-valued panic %v does not unwrap to sentinel", err)
	}

	// No panic leaves the returned error untouched.
	run3 := func() (err error) {
		defer Recover(&err)
		return errors.New("plain")
	}
	if err := run3(); err == nil || err.Error() != "plain" {
		t.Errorf("Recover clobbered a plain error: %v", err)
	}
}

func TestHTTPStatus(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, 200},
		{"invalid", Invalidf("bad spec"), 400},
		{"infeasible", Infeasiblef("no tile fits"), 422},
		{"budget", Budgetf("out of rollouts"), 422},
		{"canceled", fmt.Errorf("wrapped: %w", ErrCanceled), 504},
		{"internal", &InternalError{Panic: "boom"}, 500},
		{"unclassified", errors.New("mystery"), 500},
	}
	for _, tc := range cases {
		if got := HTTPStatus(tc.err); got != tc.want {
			t.Errorf("%s: HTTPStatus = %d, want %d", tc.name, got, tc.want)
		}
	}
}
