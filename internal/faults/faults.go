// Package faults defines TransFusion's typed error taxonomy and the panic
// containment boundary used at the public API surface. Every open-ended
// search in the repository (TileSeek's MCTS rollouts, DPipe's bipartition and
// topological-order enumeration) classifies its failures against these
// sentinels so callers can react programmatically with errors.Is/errors.As:
//
//	ErrInvalidSpec     the caller's input is malformed (bad arch JSON,
//	                   non-positive extents, unparseable einsum, ...);
//	ErrInfeasible      the input is well-formed but no solution exists
//	                   (no tile fits the buffer) — a normal search outcome,
//	                   not a crash;
//	ErrBudgetExhausted an explicit enumeration/evaluation budget ran out
//	                   before the search completed;
//	ErrCanceled        the caller's context was canceled or timed out;
//	*InternalError     an internal invariant broke (a recovered panic),
//	                   carrying the panic value and stack.
package faults

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
)

// Sentinel errors; match with errors.Is. Wrapped values produced by the
// helper constructors carry a descriptive message in front of the sentinel.
var (
	// ErrInvalidSpec marks malformed caller input.
	ErrInvalidSpec = errors.New("invalid spec")
	// ErrInfeasible marks a well-formed problem with no solution (e.g. no
	// tiling fits the on-chip buffer).
	ErrInfeasible = errors.New("infeasible")
	// ErrBudgetExhausted marks a search that hit its enumeration or
	// evaluation budget before completing.
	ErrBudgetExhausted = errors.New("budget exhausted")
	// ErrCanceled marks work abandoned because the caller's context was
	// canceled (or its deadline passed).
	ErrCanceled = errors.New("canceled")
	// ErrOverloaded marks work refused by an admission controller because
	// the system is saturated beyond its degradation ladder — nothing about
	// the request itself is wrong, and retrying after backing off is the
	// correct reaction (serving layers answer 503 + Retry-After).
	ErrOverloaded = errors.New("overloaded")
)

// Invalidf builds an error matching ErrInvalidSpec with a formatted message.
func Invalidf(format string, args ...interface{}) error {
	return fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), ErrInvalidSpec)
}

// Infeasiblef builds an error matching ErrInfeasible with a formatted
// message.
func Infeasiblef(format string, args ...interface{}) error {
	return fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), ErrInfeasible)
}

// Budgetf builds an error matching ErrBudgetExhausted with a formatted
// message.
func Budgetf(format string, args ...interface{}) error {
	return fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), ErrBudgetExhausted)
}

// Overloadedf builds an error matching ErrOverloaded with a formatted
// message.
func Overloadedf(format string, args ...interface{}) error {
	return fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), ErrOverloaded)
}

// canceledError pairs ErrCanceled with the underlying context cause so both
// errors.Is(err, faults.ErrCanceled) and errors.Is(err, context.Canceled)
// (or context.DeadlineExceeded, or a custom cancel cause) hold.
type canceledError struct{ cause error }

func (c *canceledError) Error() string   { return "canceled: " + c.cause.Error() }
func (c *canceledError) Unwrap() []error { return []error{ErrCanceled, c.cause} }

// Canceled converts a context's cancellation state into a typed error. The
// context should already be done; if it is not, the error still matches
// ErrCanceled with context.Canceled as the recorded cause.
func Canceled(ctx context.Context) error {
	cause := context.Cause(ctx)
	if cause == nil {
		cause = context.Canceled
	}
	return &canceledError{cause: cause}
}

// InternalError is a recovered panic: an internal invariant broke somewhere
// below the public API. It carries the panic value and the goroutine stack
// at the recovery point, and matches errors.As(&target) for *InternalError.
type InternalError struct {
	// Panic is the recovered panic value.
	Panic interface{}
	// Stack is the formatted goroutine stack captured at recovery.
	Stack []byte
}

// Error summarises the panic; the stack is available via the Stack field.
func (e *InternalError) Error() string {
	return fmt.Sprintf("internal error: %v", e.Panic)
}

// Unwrap exposes a wrapped error when the panic value itself was an error.
func (e *InternalError) Unwrap() error {
	if err, ok := e.Panic.(error); ok {
		return err
	}
	return nil
}

// HTTPStatus maps an error from the taxonomy onto the HTTP status code a
// serving layer should answer with:
//
//	ErrInvalidSpec     400 Bad Request       — the caller's input is malformed;
//	ErrInfeasible      422 Unprocessable     — well-formed but has no solution;
//	ErrBudgetExhausted 422 Unprocessable     — the spec's own search budget ran
//	                                           out; retrying is futile because
//	                                           the outcome is deterministic;
//	ErrCanceled        504 Gateway Timeout   — the request deadline expired (a
//	                                           client that hung up never reads
//	                                           the status anyway);
//	ErrOverloaded      503 Service Unavailable — admission shed the request
//	                                           past the degradation ladder;
//	                                           serving layers add Retry-After;
//	anything else      500 Internal Server Error (including *InternalError).
//
// A nil error maps to 200 OK.
func HTTPStatus(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, ErrInvalidSpec):
		return http.StatusBadRequest
	case errors.Is(err, ErrInfeasible), errors.Is(err, ErrBudgetExhausted):
		return http.StatusUnprocessableEntity
	case errors.Is(err, ErrCanceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// Recover is the panic containment boundary: deferred at a public entry
// point, it converts any panic below into a *InternalError stored in *errp
// (without clobbering an already-set error with nil). Usage:
//
//	func Run(...) (res Result, err error) {
//	    defer faults.Recover(&err)
//	    ...
//	}
func Recover(errp *error) {
	if r := recover(); r != nil {
		*errp = &InternalError{Panic: r, Stack: debug.Stack()}
	}
}
