package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	transfusion "github.com/fusedmindlab/transfusion"
	"github.com/fusedmindlab/transfusion/client"
	"github.com/fusedmindlab/transfusion/internal/chaos"
	"github.com/fusedmindlab/transfusion/internal/cluster"
	"github.com/fusedmindlab/transfusion/internal/obs"
)

// The cluster suite boots N real replicas — each a full Server with its own
// registry and listener, joined by a consistent-hash ring over real HTTP —
// and holds the tier to its contract:
//
//   - cluster-wide singleflight: concurrent identical requests through
//     different replicas trigger exactly one tile search in the whole
//     cluster (asserted via each replica's own tileseek.searches counter);
//   - bit-identical results: every replica's answer equals the single-node
//     reference answer, whatever tier served it;
//   - graceful degradation: a killed, draining, or fault-injected owner
//     never fails a request — the requester falls back to a local search;
//   - accounting: serve.peer.hits + serve.peer.fallbacks ==
//     serve.peer.forwards on every replica, and X-Plan-Source: peer appears
//     exactly serve.peer.hits times.
//
// Goroutine leaks are covered package-wide by TestMain's LeakCheckMain.

// clusterHarness is n live replicas sharing one ring.
type clusterHarness struct {
	urls    []string
	servers []*Server
	https   []*httptest.Server
	regs    []*obs.Registry
}

// clusterOpts tunes harness construction per test.
type clusterOpts struct {
	n            int
	cfg          Config        // per-replica serve config (Parallelism defaulted to 1)
	fetchTimeout time.Duration // peer fetch bound (default 2s)
	chaos        string        // chaos schedule armed on every replica ("" disables)
	chaosSeed    uint64
}

// newClusterHarness boots opts.n replicas on real loopback listeners. The
// listeners are bound first so every replica knows the full member list
// before it starts serving.
func newClusterHarness(t *testing.T, opts clusterOpts) *clusterHarness {
	t.Helper()
	if opts.fetchTimeout == 0 {
		opts.fetchTimeout = 2 * time.Second
	}
	listeners := make([]net.Listener, opts.n)
	urls := make([]string, opts.n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		urls[i] = "http://" + l.Addr().String()
	}
	h := &clusterHarness{urls: urls}
	for i := range listeners {
		cl, err := cluster.New(cluster.Config{
			Self:         urls[i],
			Peers:        urls,
			FetchTimeout: opts.fetchTimeout,
			ClientOptions: client.Options{
				// Fail fast and predictably: a dead peer should cost one
				// connection attempt, not a retry ladder, and the breaker
				// must not carry state between assertions.
				MaxRetries:       -1,
				BreakerThreshold: -1,
				BaseBackoff:      time.Millisecond,
				MaxBackoff:       5 * time.Millisecond,
				Seed:             1,
				HTTPClient:       &http.Client{Timeout: opts.fetchTimeout + time.Second},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := opts.cfg
		cfg.Cluster = cl
		if cfg.Parallelism == 0 {
			cfg.Parallelism = 1
		}
		ctx := context.Background()
		if opts.chaos != "" {
			inj, err := chaos.Parse(opts.chaos, opts.chaosSeed)
			if err != nil {
				t.Fatal(err)
			}
			ctx = chaos.With(ctx, inj)
		}
		reg := obs.NewRegistry()
		s := New(cfg, reg, ctx)
		ts := httptest.NewUnstartedServer(s.Handler())
		ts.Listener.Close()
		ts.Listener = listeners[i]
		ts.Start()
		t.Cleanup(ts.Close)
		h.servers = append(h.servers, s)
		h.https = append(h.https, ts)
		h.regs = append(h.regs, reg)
	}
	return h
}

// ownerIndex returns which replica owns spec's full-fidelity key.
func (h *clusterHarness) ownerIndex(t *testing.T, spec transfusion.RunSpec) int {
	t.Helper()
	owner := h.servers[0].cfg.Cluster.Owner(spec.CanonicalKey())
	for i, u := range h.urls {
		if u == owner {
			return i
		}
	}
	t.Fatalf("owner %q is not a harness replica (%v)", owner, h.urls)
	return -1
}

// specOwnedBy finds a search-backed spec whose key replica idx owns, by
// scanning sequence lengths (ownership is deterministic, so this always
// terminates quickly).
func (h *clusterHarness) specOwnedBy(t *testing.T, idx int) transfusion.RunSpec {
	t.Helper()
	for seq := 256; seq <= 64*1024; seq += 256 {
		spec := transfusion.RunSpec{
			Arch: "edge", Model: "bert", SeqLen: seq, System: "transfusion", SearchBudget: 4,
		}
		if h.ownerIndex(t, spec) == idx {
			return spec
		}
	}
	t.Fatalf("no spec owned by replica %d", idx)
	return transfusion.RunSpec{}
}

func planBody(spec transfusion.RunSpec) string {
	return fmt.Sprintf(`{"arch":%q,"model":%q,"seq_len":%d,"system":%q,"search_budget":%d}`,
		spec.Arch, spec.Model, spec.SeqLen, spec.System, spec.SearchBudget)
}

// referenceResult computes spec's answer on a fresh single-node server — the
// bit-identical baseline every cluster answer must match.
func referenceResult(t *testing.T, spec transfusion.RunSpec) transfusion.RunResult {
	t.Helper()
	_, ts, _ := newTestServer(t, Config{})
	resp, data := post(t, ts.URL+"/v1/plan", planBody(spec))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference request: status %d: %s", resp.StatusCode, data)
	}
	var pr PlanResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	return pr.Result
}

// peerAccounting asserts the per-replica counter invariant and returns the
// cluster-wide totals.
func (h *clusterHarness) peerAccounting(t *testing.T) (forwards, hits, fallbacks int64) {
	t.Helper()
	for i, reg := range h.regs {
		f := reg.Counter("serve.peer.forwards").Value()
		ht := reg.Counter("serve.peer.hits").Value()
		fb := reg.Counter("serve.peer.fallbacks").Value()
		if ht+fb != f {
			t.Errorf("replica %d: hits %d + fallbacks %d != forwards %d", i, ht, fb, f)
		}
		forwards, hits, fallbacks = forwards+f, hits+ht, fallbacks+fb
	}
	return forwards, hits, fallbacks
}

// searches sums tileseek.searches across replicas — the cluster-wide count
// of real tile searches run.
func (h *clusterHarness) searches() int64 {
	var n int64
	for _, reg := range h.regs {
		n += reg.Counter("tileseek.searches").Value()
	}
	return n
}

// Concurrent identical requests through every replica of a 3-node cluster
// must run exactly one tile search cluster-wide: non-owners forward to the
// owner, whose singleflight coalesces everything into a single evaluation.
// Every answer is bit-identical to the single-node reference.
func TestClusterWideSingleflight(t *testing.T) {
	h := newClusterHarness(t, clusterOpts{n: 3})
	spec := h.specOwnedBy(t, 0)
	want := referenceResult(t, spec)
	body := planBody(spec)

	const perReplica = 4
	type answer struct {
		status  int
		source  string
		replica int
		result  transfusion.RunResult
	}
	answers := make(chan answer, perReplica*len(h.urls))
	var wg sync.WaitGroup
	for i := range h.urls {
		for j := 0; j < perReplica; j++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, data := post(t, h.urls[i]+"/v1/plan", body)
				a := answer{status: resp.StatusCode, source: resp.Header.Get("X-Plan-Source"), replica: i}
				if resp.StatusCode == http.StatusOK {
					var pr PlanResponse
					if err := json.Unmarshal(data, &pr); err == nil {
						a.result = pr.Result
					}
				}
				answers <- a
			}(i)
		}
	}
	wg.Wait()
	close(answers)

	for a := range answers {
		if a.status != http.StatusOK {
			t.Fatalf("replica %d answered %d", a.replica, a.status)
		}
		if !reflect.DeepEqual(a.result, want) {
			t.Fatalf("replica %d (source %s) diverged from the single-node reference:\ngot  %+v\nwant %+v",
				a.replica, a.source, a.result, want)
		}
		switch a.source {
		case sourceMemory, sourcePeer, sourceSearch, sourceWarm:
		default:
			t.Fatalf("replica %d reported unknown source %q", a.replica, a.source)
		}
	}

	if got := h.searches(); got != 1 {
		t.Fatalf("cluster ran %d tile searches, want exactly 1", got)
	}
	for i, reg := range h.regs {
		if n := reg.Counter("tileseek.searches").Value(); n > 0 && i != 0 {
			t.Fatalf("non-owner replica %d ran a search", i)
		}
	}
	forwards, hits, fallbacks := h.peerAccounting(t)
	if fallbacks != 0 {
		t.Fatalf("healthy cluster recorded %d fallbacks", fallbacks)
	}
	if forwards == 0 || hits != forwards {
		t.Fatalf("forwards=%d hits=%d: non-owners did not fetch from the owner", forwards, hits)
	}
	// The owner served every fetch it admitted.
	if served := h.regs[0].Counter("serve.peer.serves").Value(); served != hits {
		t.Fatalf("owner served %d peer fetches, requesters counted %d hits", served, hits)
	}
}

// A SIGKILLed owner (its listener torn down mid-flight) must degrade, not
// fail: requests for its keys through surviving replicas fall back to a
// local search and still return the bit-identical reference answer.
func TestClusterKilledOwnerFallsBackLocally(t *testing.T) {
	h := newClusterHarness(t, clusterOpts{n: 3})
	spec := h.specOwnedBy(t, 2)
	want := referenceResult(t, spec)

	// Kill the owner the hard way: no drain, connections refused.
	h.https[2].CloseClientConnections()
	h.https[2].Close()

	for _, i := range []int{0, 1} {
		resp, data := post(t, h.urls[i]+"/v1/plan", planBody(spec))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("replica %d with dead owner answered %d: %s", i, resp.StatusCode, data)
		}
		var pr PlanResponse
		if err := json.Unmarshal(data, &pr); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pr.Result, want) {
			t.Fatalf("replica %d fallback diverged from reference", i)
		}
		if src := resp.Header.Get("X-Plan-Source"); src == sourcePeer {
			t.Fatalf("replica %d claimed a peer answer from a dead owner", i)
		}
	}
	_, hits, fallbacks := h.peerAccounting(t)
	if hits != 0 || fallbacks != 2 {
		t.Fatalf("hits=%d fallbacks=%d, want 0 hits and 2 fallbacks", hits, fallbacks)
	}
	// Each survivor searched locally — the dead owner cost duplicated work,
	// never availability.
	if got := h.searches(); got != 2 {
		t.Fatalf("survivors ran %d searches, want 2", got)
	}
}

// A draining owner refuses peer fetches (503 on the internal route) so the
// requester finishes locally; in-flight work on the drainer is unaffected.
func TestClusterDrainingOwnerRefusesPeerFetches(t *testing.T) {
	h := newClusterHarness(t, clusterOpts{n: 3})
	spec := h.specOwnedBy(t, 1)
	want := referenceResult(t, spec)

	h.servers[1].draining.Store(true)

	// Direct probe: the internal route answers 503 while draining.
	resp, _ := post(t, h.urls[1]+"/v1/peer/plan", planBody(spec))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining owner answered peer fetch with %d, want 503", resp.StatusCode)
	}
	if n := h.regs[1].Counter("serve.peer.rejects").Value(); n != 1 {
		t.Fatalf("serve.peer.rejects = %d, want 1", n)
	}

	// A user request through a non-owner falls back to local search.
	resp, data := post(t, h.urls[0]+"/v1/plan", planBody(spec))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request with draining owner answered %d: %s", resp.StatusCode, data)
	}
	var pr PlanResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pr.Result, want) {
		t.Fatal("fallback past a draining owner diverged from reference")
	}
	if fb := h.regs[0].Counter("serve.peer.fallbacks").Value(); fb != 1 {
		t.Fatalf("requester fallbacks = %d, want 1", fb)
	}

	// A draining replica never forwards its own user traffic either — it is
	// about to disappear, so it must not open new cross-replica work.
	other := h.specOwnedBy(t, 0)
	resp, _ = post(t, h.urls[1]+"/v1/plan", planBody(other))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draining replica's own request answered %d", resp.StatusCode)
	}
	if f := h.regs[1].Counter("serve.peer.forwards").Value(); f != 0 {
		t.Fatalf("draining replica forwarded %d fetches, want 0", f)
	}
}

// An overloaded owner (degradation ladder engaged) withholds results from
// peers rather than shipping degraded plans across the cluster.
func TestClusterOverloadedOwnerWithholdsDegraded(t *testing.T) {
	// MaxQueue 1: a single queued waiter already puts the ladder past tier 0
	// (the ladder reads queue depth, and 2*1 >= 1).
	h := newClusterHarness(t, clusterOpts{n: 2, cfg: Config{MaxConcurrent: 1, MaxQueue: 1}})

	// Wedge replica 1's only evaluation slot, then park one request in its
	// queue so pressure rises. The parked request must use a key replica 1
	// owns itself — a non-owned key would forward to replica 0 and never
	// queue here.
	spec := h.specOwnedBy(t, 1)
	if err := h.servers[1].adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	parked := make(chan struct{})
	go func() {
		defer close(parked)
		resp, err := http.Post(h.urls[1]+"/v1/plan", "application/json", strings.NewReader(planBody(spec)))
		if err == nil {
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for h.servers[1].degradeTier() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("ladder never engaged")
		}
		time.Sleep(time.Millisecond)
	}

	resp, _ := post(t, h.urls[1]+"/v1/peer/plan", planBody(spec))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overloaded owner answered peer fetch with %d, want 503", resp.StatusCode)
	}
	if n := h.regs[1].Counter("serve.peer.rejects").Value(); n == 0 {
		t.Fatal("overloaded owner recorded no peer reject")
	}

	h.servers[1].adm.release()
	<-parked
}

// Fixed-seed fault schedules at the serve.peer.fetch site: whatever the
// fault kind — injected errors, latency past the fetch budget, cancellation
// — every request answers 200 with the bit-identical reference result via
// local fallback, and the header/counter accounting stays consistent.
func TestClusterPeerFetchChaosSchedules(t *testing.T) {
	schedules := []struct {
		name  string
		spec  string
		fetch time.Duration
	}{
		// Every fetch errors: pure local fallback.
		{name: "error", spec: "serve.peer.fetch=error@every=1"},
		// Injected latency exceeds the fetch budget: the fetch context
		// expires and the requester searches locally.
		{name: "latency", spec: "serve.peer.fetch=latency:400ms@every=1", fetch: 50 * time.Millisecond},
		// Alternating cancellation: odd fetches die, even fetches succeed —
		// the mixed case must keep hits + fallbacks == forwards.
		{name: "cancel-alternating", spec: "serve.peer.fetch=cancel@every=2"},
	}
	for _, sc := range schedules {
		t.Run(sc.name, func(t *testing.T) {
			h := newClusterHarness(t, clusterOpts{
				n: 3, chaos: sc.spec, chaosSeed: 7, fetchTimeout: sc.fetch,
			})
			// Three distinct search-backed specs, each owned by a different
			// replica, each requested through every replica.
			peerSeen := int64(0)
			for idx := 0; idx < 3; idx++ {
				spec := h.specOwnedBy(t, idx)
				want := referenceResult(t, spec)
				for i := range h.urls {
					resp, data := post(t, h.urls[i]+"/v1/plan", planBody(spec))
					if resp.StatusCode != http.StatusOK {
						t.Fatalf("schedule %s: replica %d answered %d: %s", sc.name, i, resp.StatusCode, data)
					}
					var pr PlanResponse
					if err := json.Unmarshal(data, &pr); err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(pr.Result, want) {
						t.Fatalf("schedule %s: replica %d diverged from reference (source %s)",
							sc.name, i, resp.Header.Get("X-Plan-Source"))
					}
					if resp.Header.Get("X-Plan-Source") == sourcePeer {
						peerSeen++
					}
				}
			}
			forwards, hits, fallbacks := h.peerAccounting(t)
			if forwards == 0 {
				t.Fatalf("schedule %s: no fetches were even attempted", sc.name)
			}
			if hits != peerSeen {
				t.Fatalf("schedule %s: %d X-Plan-Source: peer headers vs %d counted hits", sc.name, peerSeen, hits)
			}
			switch sc.name {
			case "error", "latency":
				if fallbacks != forwards {
					t.Fatalf("schedule %s: fallbacks %d != forwards %d under an every=1 fault", sc.name, fallbacks, forwards)
				}
			case "cancel-alternating":
				if fallbacks == 0 || hits == 0 {
					t.Fatalf("schedule %s: want a mix, got hits=%d fallbacks=%d", sc.name, hits, fallbacks)
				}
			}
		})
	}
}

// A fetched peer plan fills the local tiers: the second request for the same
// key on the same non-owner answers from its own memory, with no second
// forward.
func TestClusterPeerHitFillsLocalCache(t *testing.T) {
	h := newClusterHarness(t, clusterOpts{n: 3})
	spec := h.specOwnedBy(t, 1)
	body := planBody(spec)

	resp, _ := post(t, h.urls[0]+"/v1/plan", body)
	if src := resp.Header.Get("X-Plan-Source"); src != sourcePeer {
		t.Fatalf("first non-owner request source = %q, want peer", src)
	}
	resp, data := post(t, h.urls[0]+"/v1/plan", body)
	var pr PlanResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	if src := resp.Header.Get("X-Plan-Source"); src != sourceMemory || !pr.Cached {
		t.Fatalf("second request source=%q cached=%t, want a memory hit", src, pr.Cached)
	}
	if f := h.regs[0].Counter("serve.peer.forwards").Value(); f != 1 {
		t.Fatalf("forwards = %d, want exactly 1", f)
	}
}
