package serve

import (
	"net/http"
	"time"

	transfusion "github.com/fusedmindlab/transfusion"
	"github.com/fusedmindlab/transfusion/internal/faults"
)

// maxBatchEntries bounds one POST /v1/plan/batch body. The batch route is a
// convenience multiplexer, not a bulk-load path: each entry still pays
// admission individually, so a huge batch would just serialize behind the
// queue anyway.
const maxBatchEntries = 64

// BatchPlanRequest is the POST /v1/plan/batch body: up to maxBatchEntries
// plan requests resolved in order through the same tiers as /v1/plan.
type BatchPlanRequest struct {
	Requests []PlanRequest `json:"requests"`
}

// BatchPlanEntry is one per-request outcome inside a BatchPlanResponse.
// Exactly one of Result / Error is meaningful, discriminated by Status.
type BatchPlanEntry struct {
	// Status is the HTTP status this request would have received on
	// /v1/plan — 200 with Result set, else the faults taxonomy mapping
	// (400 invalid, 429 over capacity, 499 canceled, 500 internal) with
	// Error set.
	Status int `json:"status"`
	// Result is the evaluation outcome (Status 200 only). A degraded entry
	// keeps its Result — Degraded/DegradedReason mark it — so one slow or
	// shed entry never voids its siblings.
	Result *transfusion.RunResult `json:"result,omitempty"`
	// Cached, Key and Source mirror the PlanResponse fields (Status 200
	// only). Source may differ per entry: one batch can mix "memory",
	// "disk", "peer", "warm-search" and "search" answers.
	Cached bool   `json:"cached,omitempty"`
	Key    string `json:"key,omitempty"`
	Source string `json:"source,omitempty"`
	// Error is the failure message (non-200 only).
	Error string `json:"error,omitempty"`
}

// BatchPlanResponse is the POST /v1/plan/batch reply. The HTTP status is 200
// whenever the batch itself was well-formed — per-entry failures live in
// Entries[i].Status, so partial failure is the normal shape, not an error.
type BatchPlanResponse struct {
	// Entries holds one outcome per request, in request order.
	Entries []BatchPlanEntry `json:"entries"`
	// Failed counts entries with a non-200 status.
	Failed int `json:"failed"`
	// DegradedEntries counts status-200 entries whose result is degraded.
	DegradedEntries int     `json:"degraded_entries"`
	ElapsedMS       float64 `json:"elapsed_ms"`
}

// handlePlanBatch resolves a list of plan requests in one round trip. Each
// entry runs through the identical tier ladder as /v1/plan (memory, disk,
// peer, warm-search, search) and fails independently: an invalid or shed
// entry maps to its own status while the rest proceed. Entries are resolved
// sequentially in request order, so identical keys within one batch coalesce
// on the cache rather than racing the singleflight. Whole-batch errors (bad
// JSON, empty or oversized list) answer 400 with no entries.
func (s *Server) handlePlanBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only", Status: http.StatusMethodNotAllowed})
		return
	}
	start := time.Now()
	var req BatchPlanRequest
	if err := decodeStrict(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if len(req.Requests) == 0 {
		s.writeError(w, faults.Invalidf("serve: batch has no requests"))
		return
	}
	if len(req.Requests) > maxBatchEntries {
		s.writeError(w, faults.Invalidf("serve: batch of %d exceeds limit %d", len(req.Requests), maxBatchEntries))
		return
	}
	resp := BatchPlanResponse{Entries: make([]BatchPlanEntry, len(req.Requests))}
	degradeMode := ""
	for i, pr := range req.Requests {
		entry := &resp.Entries[i]
		if err := s.validateLimits(pr.SeqLen, pr.SearchBudget); err != nil {
			entry.Status = faults.HTTPStatus(err)
			entry.Error = err.Error()
			resp.Failed++
			continue
		}
		spec := transfusion.RunSpec{
			Arch: pr.Arch, Model: pr.Model, SeqLen: pr.SeqLen, System: pr.System,
			Batch: pr.Batch, SearchBudget: pr.SearchBudget, Causal: pr.Causal,
		}
		res, cached, key, mode, source, err := s.evalPlan(r.Context(), spec, true)
		if err != nil {
			entry.Status = faults.HTTPStatus(err)
			entry.Error = err.Error()
			resp.Failed++
			continue
		}
		if mode != "" && !res.Degraded {
			res.Degraded = true
			res.DegradedReason = "served degraded under load (" + mode + " tier)"
		}
		if res.Degraded {
			resp.DegradedEntries++
			if degradeMode == "" {
				if mode == "" {
					mode = degradeSearch
				}
				degradeMode = mode
			}
		}
		entry.Status = http.StatusOK
		entry.Result = &res
		entry.Cached = cached
		entry.Key = key
		entry.Source = source
	}
	// Same per-response degradation invariant as /v1/compare: one header and
	// one counter however many entries degraded.
	if degradeMode != "" {
		s.markDegradedResponse(r.Context(), w, degradeMode)
	}
	if resp.Failed < len(resp.Entries) {
		s.noteSuccess()
	}
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1e3
	writeJSON(w, http.StatusOK, resp)
}
