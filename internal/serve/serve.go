// Package serve is the transfusiond serving layer: an HTTP JSON API fronting
// the analytical model's RunContext/CompareContext with the machinery a
// production endpoint needs —
//
//   - an LRU plan cache keyed by the canonical RunSpec key, with singleflight
//     coalescing of identical in-flight requests (serve.cache_hits/misses/
//     inflight metrics);
//   - a bounded-concurrency admission controller with a depth-limited wait
//     queue; beyond the queue, requests are shed with 503 + Retry-After
//     instead of piling up;
//   - per-request deadlines owned by the server, with the faults taxonomy
//     mapped onto HTTP statuses (faults.HTTPStatus);
//   - graceful shutdown: on cancellation the health check flips to draining
//     and in-flight plans finish within the drain timeout.
//
// Endpoints: POST /v1/plan, POST /v1/compare, GET /healthz, GET /metrics,
// GET /debug/trace.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/fusedmindlab/transfusion"
	"github.com/fusedmindlab/transfusion/internal/faults"
	"github.com/fusedmindlab/transfusion/internal/obs"
)

// Config tunes the serving layer; zero values take the defaults noted on
// each field.
type Config struct {
	// MaxConcurrent bounds simultaneous evaluations (default 4).
	MaxConcurrent int
	// MaxQueue bounds callers waiting for an evaluation slot before new
	// arrivals are shed with 503 (0 takes the default of 64; negative
	// disables queueing entirely — a busy pool sheds immediately).
	MaxQueue int
	// RequestTimeout is the server-owned evaluation deadline (default 60s).
	// Expiry surfaces as 504 via the ErrCanceled mapping.
	RequestTimeout time.Duration
	// CacheEntries bounds the plan cache (default 1024 completed results).
	CacheEntries int
	// MaxSeqLen caps the sequence length accepted over the API (default
	// transfusion.MaxSeqLen). Lower it to bound worst-case evaluation time.
	MaxSeqLen int
	// MaxSearchBudget caps the per-request TileSeek rollout budget (default
	// 1024).
	MaxSearchBudget int
	// Parallelism is passed through to every evaluation's RunSpec (0 =
	// GOMAXPROCS). Results are bit-identical at every setting, so it is not
	// part of the cache key.
	Parallelism int
	// DrainTimeout bounds graceful shutdown (default 30s).
	DrainTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 64
	} else if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1024
	}
	if c.MaxSeqLen <= 0 || c.MaxSeqLen > transfusion.MaxSeqLen {
		c.MaxSeqLen = transfusion.MaxSeqLen
	}
	if c.MaxSearchBudget <= 0 {
		c.MaxSearchBudget = 1024
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	return c
}

// maxBodyBytes bounds request bodies; plan/compare requests are tiny.
const maxBodyBytes = 1 << 20

// Server is the transfusiond HTTP service.
type Server struct {
	cfg      Config
	reg      *obs.Registry
	cache    *planCache
	adm      *admission
	baseCtx  context.Context
	draining atomic.Bool
}

// New builds a Server. reg receives the serving metrics and is exposed at
// /metrics; nil disables metrics (the endpoint then serves an empty
// snapshot). baseCtx carries cross-request facilities (logger); nil means
// background. Only its values are kept: cancellation is detached, so a
// caller passing its shutdown-signal context (as cmd/transfusiond does)
// cannot abort in-flight evaluations mid-drain — drain semantics belong to
// the context given to Serve.
func New(cfg Config, reg *obs.Registry, baseCtx context.Context) *Server {
	cfg = cfg.withDefaults()
	if baseCtx == nil {
		baseCtx = context.Background()
	}
	baseCtx = context.WithoutCancel(baseCtx)
	if reg != nil {
		baseCtx = obs.WithMetrics(baseCtx, reg)
	}
	return &Server{
		cfg:     cfg,
		reg:     reg,
		cache:   newPlanCache(cfg.CacheEntries, reg),
		adm:     newAdmission(cfg.MaxConcurrent, cfg.MaxQueue, reg),
		baseCtx: baseCtx,
	}
}

// Handler returns the routed, metrics-instrumented handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/plan", s.handlePlan)
	mux.HandleFunc("/v1/compare", s.handleCompare)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/trace", s.handleTrace)
	return obs.HTTPMetrics(s.reg, "serve.http", mux)
}

// Serve runs the server on l until ctx is cancelled, then drains: the health
// check flips to draining immediately, no new connections are accepted, and
// in-flight requests get up to DrainTimeout to finish.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	srv := &http.Server{Handler: s.Handler()}
	shutdownErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		s.draining.Store(true)
		drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		defer cancel()
		shutdownErr <- srv.Shutdown(drainCtx)
	}()
	err := srv.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		// srv.Serve returns ErrServerClosed the moment Shutdown is called,
		// while the drain is still running. Block until Shutdown finishes (or
		// DrainTimeout expires) so in-flight plans complete before we return.
		return <-shutdownErr
	}
	return err
}

// PlanRequest is the POST /v1/plan body. Field semantics follow
// transfusion.RunSpec; architecture files and custom models are not accepted
// over the wire (unknown fields are rejected with 400).
type PlanRequest struct {
	Arch         string `json:"arch"`
	Model        string `json:"model"`
	SeqLen       int    `json:"seq_len"`
	System       string `json:"system"`
	Batch        int    `json:"batch,omitempty"`
	SearchBudget int    `json:"search_budget,omitempty"`
	Causal       bool   `json:"causal,omitempty"`
}

// PlanResponse is the POST /v1/plan reply.
type PlanResponse struct {
	// Result is the evaluation outcome.
	Result transfusion.RunResult `json:"result"`
	// Cached reports the result came from the completed plan cache without
	// waiting on any evaluation.
	Cached bool `json:"cached"`
	// Key is the canonical cache key the request resolved to.
	Key string `json:"key"`
	// ElapsedMS is the server-side handling time.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// CompareRequest is the POST /v1/compare body.
type CompareRequest struct {
	Arch         string `json:"arch"`
	Model        string `json:"model"`
	SeqLen       int    `json:"seq_len"`
	Batch        int    `json:"batch,omitempty"`
	SearchBudget int    `json:"search_budget,omitempty"`
}

// CompareResponse is the POST /v1/compare reply: all five systems in the
// paper's comparison order (Unfused first).
type CompareResponse struct {
	Results []transfusion.RunResult `json:"results"`
	// CachedResults counts how many of the five came straight from cache.
	CachedResults int     `json:"cached_results"`
	ElapsedMS     float64 `json:"elapsed_ms"`
}

// errorResponse is the JSON body of every non-2xx reply.
type errorResponse struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

// writeError maps err through the faults taxonomy onto an HTTP status.
// Shedding gets 503 + Retry-After here rather than in the taxonomy: it is an
// admission decision, not an error classification.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	if errors.Is(err, errOverloaded) {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error(), Status: http.StatusServiceUnavailable})
		return
	}
	status := faults.HTTPStatus(err)
	msg := err.Error()
	var ie *faults.InternalError
	if errors.As(err, &ie) {
		// Never leak a panic value or stack to the wire.
		msg = "internal error"
	}
	writeJSON(w, status, errorResponse{Error: msg, Status: status})
}

// decodeStrict decodes one JSON document into v, rejecting unknown fields,
// type mismatches, and trailing garbage — everything surfaces as an error
// matching faults.ErrInvalidSpec so the handler answers 400.
func decodeStrict(r *http.Request, v interface{}) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return faults.Invalidf("serve: bad request body: %v", err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return faults.Invalidf("serve: trailing data after JSON body")
	}
	return nil
}

// validateLimits enforces the server-side bounds before any evaluation work —
// including before the cache key is computed, so out-of-range values can never
// reach (and fragment) the plan cache.
func (s *Server) validateLimits(seqLen, budget int) error {
	if seqLen <= 0 {
		return faults.Invalidf("serve: non-positive seq_len %d", seqLen)
	}
	if seqLen > s.cfg.MaxSeqLen {
		return faults.Invalidf("serve: seq_len %d exceeds server limit %d", seqLen, s.cfg.MaxSeqLen)
	}
	if budget < 0 {
		return faults.Invalidf("serve: negative search_budget %d (0 selects the default)", budget)
	}
	if budget > s.cfg.MaxSearchBudget {
		return faults.Invalidf("serve: search_budget %d exceeds server limit %d", budget, s.cfg.MaxSearchBudget)
	}
	return nil
}

// evalPlan resolves one spec through the cache/admission stack. reqCtx bounds
// only this caller's wait; the evaluation itself runs under the server's own
// deadline so a disconnecting client cannot kill coalesced peers, and its
// result is cached for the retry even if nobody is left to read it.
func (s *Server) evalPlan(reqCtx context.Context, spec transfusion.RunSpec) (transfusion.RunResult, bool, string, error) {
	spec.Parallelism = s.cfg.Parallelism
	key := spec.CanonicalKey()
	res, cached, err := s.cache.Do(reqCtx, key, func() (transfusion.RunResult, error) {
		evalCtx, cancel := context.WithTimeout(s.baseCtx, s.cfg.RequestTimeout)
		defer cancel()
		if err := s.adm.acquire(evalCtx); err != nil {
			return transfusion.RunResult{}, err
		}
		defer s.adm.release()
		return transfusion.RunContext(evalCtx, spec)
	})
	return res, cached, key, err
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only", Status: http.StatusMethodNotAllowed})
		return
	}
	start := time.Now()
	var req PlanRequest
	if err := decodeStrict(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if err := s.validateLimits(req.SeqLen, req.SearchBudget); err != nil {
		s.writeError(w, err)
		return
	}
	spec := transfusion.RunSpec{
		Arch: req.Arch, Model: req.Model, SeqLen: req.SeqLen, System: req.System,
		Batch: req.Batch, SearchBudget: req.SearchBudget, Causal: req.Causal,
	}
	res, cached, key, err := s.evalPlan(r.Context(), spec)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, PlanResponse{
		Result: res, Cached: cached, Key: key,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1e3,
	})
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only", Status: http.StatusMethodNotAllowed})
		return
	}
	start := time.Now()
	var req CompareRequest
	if err := decodeStrict(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if err := s.validateLimits(req.SeqLen, req.SearchBudget); err != nil {
		s.writeError(w, err)
		return
	}
	// Route each system through the same cache/admission stack as /v1/plan,
	// so a compare shares evaluations with plans (and other compares) of the
	// same workload.
	resp := CompareResponse{Results: make([]transfusion.RunResult, 0, 5)}
	for _, name := range transfusion.SystemNames() {
		spec := transfusion.RunSpec{
			Arch: req.Arch, Model: req.Model, SeqLen: req.SeqLen, System: name,
			Batch: req.Batch, SearchBudget: req.SearchBudget,
		}
		res, cached, _, err := s.evalPlan(r.Context(), spec)
		if err != nil {
			s.writeError(w, err)
			return
		}
		if cached {
			resp.CachedResults++
		}
		resp.Results = append(resp.Results, res)
	}
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1e3
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	if r.URL.Query().Get("format") == "json" {
		data, err := snap.JSON()
		if err != nil {
			s.writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data) //nolint:errcheck
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	snap.WriteText(w) //nolint:errcheck
}

// handleTrace serves the Chrome trace_event export of the DPipe schedules for
// a workload: GET /debug/trace?arch=edge&model=bert&seq=4096&epochs=6.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	seq, err := strconv.Atoi(strings.TrimSpace(q.Get("seq")))
	if err != nil {
		s.writeError(w, faults.Invalidf("serve: bad seq parameter %q", q.Get("seq")))
		return
	}
	epochs := 6
	if e := q.Get("epochs"); e != "" {
		epochs, err = strconv.Atoi(e)
		if err != nil || epochs < 1 || epochs > 64 {
			s.writeError(w, faults.Invalidf("serve: bad epochs parameter %q", e))
			return
		}
	}
	if err := s.validateLimits(seq, 0); err != nil {
		s.writeError(w, err)
		return
	}
	data, err := transfusion.ChromeTraceSchedule(q.Get("arch"), q.Get("model"), seq, epochs)
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", fmt.Sprintf("inline; filename=%q", "trace.json"))
	w.Write(data) //nolint:errcheck
}
