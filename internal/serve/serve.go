// Package serve is the transfusiond serving layer: an HTTP JSON API fronting
// the analytical model's RunContext/CompareContext with the machinery a
// production endpoint needs —
//
//   - an LRU plan cache keyed by the canonical RunSpec key, with singleflight
//     coalescing of identical in-flight requests (serve.cache_hits/misses/
//     inflight/size/evictions metrics), optionally layered over a durable
//     disk tier (internal/store): memory hit -> disk hit -> search, with
//     disk fills off the request path, warm restart seeding the memory
//     cache from disk, and the answering tier surfaced as X-Plan-Source;
//   - a bounded-concurrency admission controller with a depth-limited wait
//     queue and a degradation ladder above it: as the queue fills, requests
//     step down search-budget tiers (full search -> reduced budget ->
//     heuristic tile only) instead of being shed, surfaced via the result's
//     Degraded/DegradedReason fields, a Served-Degraded response header, and
//     serve.degraded.* counters; only past twice the queue depth are
//     arrivals refused with 503 + a Retry-After computed from queue depth
//     and the EWMA of recent plan latencies (serve.plan_latency_ewma);
//   - a per-request watchdog that converts a stuck evaluation into a
//     degraded heuristic-only answer instead of letting the caller ride the
//     full deadline into a 504;
//   - per-request deadlines owned by the server, with the faults taxonomy
//     mapped onto HTTP statuses (faults.HTTPStatus), and a panic-recovery
//     boundary around every handler;
//   - split health endpoints — /healthz is pure liveness, /readyz is
//     readiness and fails while draining or while the evaluator circuit
//     breaker (tripped by consecutive internal errors) is open;
//   - graceful shutdown: on cancellation readiness flips first, then (after
//     ReadyDelay, for load balancers to stop routing) the listener closes
//     and in-flight plans finish within the drain timeout.
//
// Endpoints: POST /v1/plan, POST /v1/compare, GET /healthz, GET /readyz,
// GET /metrics, GET /debug/trace.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/fusedmindlab/transfusion"
	"github.com/fusedmindlab/transfusion/client"
	"github.com/fusedmindlab/transfusion/internal/chaos"
	"github.com/fusedmindlab/transfusion/internal/cluster"
	"github.com/fusedmindlab/transfusion/internal/faults"
	"github.com/fusedmindlab/transfusion/internal/obs"
	"github.com/fusedmindlab/transfusion/internal/store"
)

// Config tunes the serving layer; zero values take the defaults noted on
// each field.
type Config struct {
	// MaxConcurrent bounds simultaneous evaluations (default 4).
	MaxConcurrent int
	// MaxQueue bounds callers waiting for an evaluation slot before new
	// arrivals are shed with 503 (0 takes the default of 64; negative
	// disables queueing entirely — a busy pool sheds immediately).
	MaxQueue int
	// RequestTimeout is the server-owned evaluation deadline (default 60s).
	// Expiry surfaces as 504 via the ErrCanceled mapping.
	RequestTimeout time.Duration
	// CacheEntries bounds the plan cache (default 1024 completed results).
	CacheEntries int
	// MaxSeqLen caps the sequence length accepted over the API (default
	// transfusion.MaxSeqLen). Lower it to bound worst-case evaluation time.
	MaxSeqLen int
	// MaxSearchBudget caps the per-request TileSeek rollout budget (default
	// 1024).
	MaxSearchBudget int
	// Parallelism is passed through to every evaluation's RunSpec (0 =
	// GOMAXPROCS). Results are bit-identical at every setting, so it is not
	// part of the cache key.
	Parallelism int
	// SpecChainSteps and SpecLookahead tune the parallel tile search's
	// speculation (see tileseek.Options); zero keeps each default. They are
	// passed through to every evaluation's RunSpec and, like Parallelism,
	// never change results, so they are not part of the cache key.
	SpecChainSteps int
	SpecLookahead  int
	// DrainTimeout bounds graceful shutdown (default 30s).
	DrainTimeout time.Duration
	// ReducedBudget is the search budget the degradation ladder's middle
	// tier caps requests at once the wait queue is half full (default 16).
	ReducedBudget int
	// WatchdogTimeout bounds how long a request waits on its evaluation
	// before the watchdog serves a degraded heuristic-only answer instead
	// (the stuck evaluation keeps running in the background, bounded by
	// RequestTimeout, and lands in the cache if it ever completes). 0 takes
	// the default of half the request timeout; negative disables the
	// watchdog.
	WatchdogTimeout time.Duration
	// ReadyDelay is the pause between flipping /readyz to draining and
	// closing the listener on shutdown, giving load balancers a window to
	// stop routing (default 0 — flip and drain immediately).
	ReadyDelay time.Duration
	// Store is the optional durable plan tier layered under the in-memory
	// cache (memory hit -> disk hit -> search). Completed full-fidelity
	// results are persisted to it off the request path; degraded results
	// never are. nil disables the disk tier.
	Store *store.Store
	// ColdStart skips seeding the in-memory cache from Store at startup.
	// The default (false) warm restart preloads the most recently used
	// stored plans so a restarted daemon answers its previous working set
	// from memory without re-searching.
	ColdStart bool
	// Tracer enables per-request tracing: every request gets a span tree
	// (admission wait, ladder decision, cache tiers, singleflight role,
	// search, store fills), an X-Trace-Id response header, and a slot in the
	// /debug/requests ring buffers. nil disables tracing — the request path
	// then carries no span and pays nothing (the obs span API is
	// zero-allocation on a span-free context).
	Tracer *obs.Tracer
	// Cluster enables the peer tier: a consistent-hash ring shards the
	// canonical-key space across replicas, and a request missing the local
	// memory and disk tiers on a non-owner replica is fetched from the
	// key's owner (X-Plan-Source: peer) instead of searched locally — the
	// owner's singleflight then guarantees each plan is computed at most
	// once cluster-wide. Every fetch failure falls back to the local search
	// tiers; degraded results never cross replicas (owners answer 503
	// rather than ship one). nil disables the tier.
	Cluster *cluster.Cluster
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 64
	} else if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1024
	}
	if c.MaxSeqLen <= 0 || c.MaxSeqLen > transfusion.MaxSeqLen {
		c.MaxSeqLen = transfusion.MaxSeqLen
	}
	if c.MaxSearchBudget <= 0 {
		c.MaxSearchBudget = 1024
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.ReducedBudget <= 0 {
		c.ReducedBudget = 16
	}
	if c.WatchdogTimeout == 0 {
		c.WatchdogTimeout = c.RequestTimeout / 2
	} else if c.WatchdogTimeout < 0 {
		c.WatchdogTimeout = 0
	}
	if c.ReadyDelay < 0 {
		c.ReadyDelay = 0
	}
	return c
}

// Circuit breaker into the evaluator: after breakerThreshold consecutive
// internal errors /readyz reports not-ready for breakerCooldown (or until a
// request succeeds), so orchestrators stop routing to a replica whose
// evaluator is systematically failing. Liveness (/healthz) is unaffected —
// the process itself is healthy and must not be restarted for it.
const (
	breakerThreshold = 5
	breakerCooldown  = 15 * time.Second
)

// maxBodyBytes bounds request bodies; plan/compare requests are tiny.
const maxBodyBytes = 1 << 20

// Server is the transfusiond HTTP service.
type Server struct {
	cfg      Config
	reg      *obs.Registry
	cache    *planCache
	store    *store.Store // nil when the disk tier is disabled
	adm      *admission
	baseCtx  context.Context
	draining atomic.Bool

	// fills tracks in-flight asynchronous disk-tier writes so a drain can
	// wait for completed searches to reach durable storage.
	fills sync.WaitGroup

	// ewmaBits holds the EWMA of recent plan evaluation latencies in
	// milliseconds, as float64 bits (0 = no observation yet). It feeds the
	// serve.plan_latency_ewma gauge and the computed Retry-After.
	ewmaBits atomic.Uint64
	ewmaG    *obs.Gauge

	// consecInternal counts consecutive internal errors; at
	// breakerThreshold the evaluator circuit breaker trips (breakerTrip is
	// the trip time in unix nanoseconds) and /readyz fails until a request
	// succeeds or the cooldown passes.
	consecInternal atomic.Int64
	breakerTrip    atomic.Int64
}

// New builds a Server. reg receives the serving metrics and is exposed at
// /metrics; nil disables metrics (the endpoint then serves an empty
// snapshot). baseCtx carries cross-request facilities (logger); nil means
// background. Only its values are kept: cancellation is detached, so a
// caller passing its shutdown-signal context (as cmd/transfusiond does)
// cannot abort in-flight evaluations mid-drain — drain semantics belong to
// the context given to Serve.
func New(cfg Config, reg *obs.Registry, baseCtx context.Context) *Server {
	cfg = cfg.withDefaults()
	if baseCtx == nil {
		baseCtx = context.Background()
	}
	baseCtx = context.WithoutCancel(baseCtx)
	if reg != nil {
		baseCtx = obs.WithMetrics(baseCtx, reg)
	}
	s := &Server{
		cfg:     cfg,
		reg:     reg,
		cache:   newPlanCache(cfg.CacheEntries, reg),
		store:   cfg.Store,
		adm:     newAdmission(cfg.MaxConcurrent, cfg.MaxQueue, reg),
		baseCtx: baseCtx,
		ewmaG:   reg.Gauge("serve.plan_latency_ewma"),
	}
	if s.store != nil && !cfg.ColdStart {
		// Warm restart: preload the most recently used stored plans so the
		// previous working set answers from memory immediately. Only
		// full-fidelity results are ever persisted, so nothing seeded here
		// can shadow a clean entry with a degraded one.
		s.store.WarmEntries(cfg.CacheEntries, func(we store.WarmEntry) bool {
			s.cache.Put(we.Key, we.Result)
			return true
		})
	}
	return s
}

// Handler returns the routed, metrics- and trace-instrumented handler.
// Ordering matters: metrics wrap tracing so the middleware's own cost is
// inside the measured latency, and tracing wraps the panic boundary so a
// recovered panic still finishes its trace (as a 500, and therefore
// retained).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	routes := []string{"/v1/plan", "/v1/compare", "/healthz", "/readyz", "/metrics", "/debug/trace", "/debug/requests"}
	mux.HandleFunc("/v1/plan", s.handlePlan)
	mux.HandleFunc("/v1/plan/batch", s.handlePlanBatch)
	mux.HandleFunc("/v1/peer/plan", s.handlePeerPlan)
	mux.HandleFunc("/v1/peer/cached", s.handlePeerCached)
	mux.HandleFunc("/v1/compare", s.handleCompare)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/trace", s.handleTrace)
	mux.HandleFunc("/debug/requests", s.handleRequests)
	return obs.HTTPMetrics(s.reg, "serve.http", routes,
		obs.HTTPTrace(s.cfg.Tracer, s.recoverPanics(mux)))
}

// recoverPanics is the handler-level panic boundary: a panic escaping a
// handler (the evaluation path has its own faults.Recover boundary, but the
// handlers themselves, fault injection, and future middleware do not) maps to
// a 500 instead of net/http killing the connection mid-response. If the
// handler already wrote a response the write of the error status is a no-op.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.writeError(w, &faults.InternalError{Panic: rec})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// Serve runs the server on l until ctx is cancelled, then drains: readiness
// (/readyz) flips to draining immediately, ReadyDelay later no new
// connections are accepted, and in-flight requests get up to DrainTimeout to
// finish. Liveness (/healthz) stays OK throughout — a draining process is
// shutting down deliberately, not stuck.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	srv := &http.Server{
		Handler: s.Handler(),
		// Request contexts inherit the server's base context values (logger,
		// metrics, chaos injector) so handlers see the same facilities
		// whether driven through Serve or through Handler directly in tests.
		BaseContext: func(net.Listener) context.Context { return s.baseCtx },
	}
	shutdownErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		// Readiness flips before the listener closes so load balancers see
		// not-ready and stop routing while the socket still accepts the
		// stragglers already routed here.
		s.draining.Store(true)
		if s.cfg.ReadyDelay > 0 {
			time.Sleep(s.cfg.ReadyDelay)
		}
		drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		defer cancel()
		shutdownErr <- srv.Shutdown(drainCtx)
	}()
	err := srv.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		// srv.Serve returns ErrServerClosed the moment Shutdown is called,
		// while the drain is still running. Block until Shutdown finishes (or
		// DrainTimeout expires) so in-flight plans complete before we return.
		err = <-shutdownErr
	}
	// Disk fills are asynchronous; drain them too, so a clean shutdown
	// leaves every completed search durably persisted (each fill is bounded
	// by RequestTimeout, so this cannot hang indefinitely).
	s.fills.Wait()
	return err
}

// PlanRequest is the POST /v1/plan body. Field semantics follow
// transfusion.RunSpec; architecture files and custom models are not accepted
// over the wire (unknown fields are rejected with 400).
type PlanRequest struct {
	Arch         string `json:"arch"`
	Model        string `json:"model"`
	SeqLen       int    `json:"seq_len"`
	System       string `json:"system"`
	Batch        int    `json:"batch,omitempty"`
	SearchBudget int    `json:"search_budget,omitempty"`
	Causal       bool   `json:"causal,omitempty"`
}

// PlanResponse is the POST /v1/plan reply.
type PlanResponse struct {
	// Result is the evaluation outcome.
	Result transfusion.RunResult `json:"result"`
	// Cached reports the result came from the completed plan cache without
	// waiting on any evaluation.
	Cached bool `json:"cached"`
	// Key is the canonical cache key the request resolved to.
	Key string `json:"key"`
	// Source names the tier that answered — "memory" (in-process cache),
	// "disk" (persistent plan store), "peer" (fetched from the key's owning
	// replica), "warm-search" (a fresh evaluation seeded from the nearest
	// stored plan), or "search" (a fresh cold evaluation) — mirrored in the
	// X-Plan-Source response header.
	Source string `json:"source"`
	// ElapsedMS is the server-side handling time.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// CompareRequest is the POST /v1/compare body.
type CompareRequest struct {
	Arch         string `json:"arch"`
	Model        string `json:"model"`
	SeqLen       int    `json:"seq_len"`
	Batch        int    `json:"batch,omitempty"`
	SearchBudget int    `json:"search_budget,omitempty"`
}

// CompareResponse is the POST /v1/compare reply: all five systems in the
// paper's comparison order (Unfused first).
type CompareResponse struct {
	Results []transfusion.RunResult `json:"results"`
	// CachedResults counts how many of the five came straight from cache.
	CachedResults int     `json:"cached_results"`
	ElapsedMS     float64 `json:"elapsed_ms"`
}

// errorResponse is the JSON body of every non-2xx reply. WarmHint rides only
// on peer-route refusals and cache-only misses: the refusing replica's
// nearest stored recipe, so the requester's local fallback search can start
// warm instead of cold.
type errorResponse struct {
	Error    string                   `json:"error"`
	Status   int                      `json:"status"`
	WarmHint *transfusion.PlanSummary `json:"warm_hint,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

// writeError maps err through the faults taxonomy onto an HTTP status.
// Overload (503) carries a Retry-After computed from current queue depth and
// the EWMA of recent plan latencies; internal errors feed the evaluator
// circuit breaker behind /readyz.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := faults.HTTPStatus(err)
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	}
	msg := err.Error()
	var ie *faults.InternalError
	if errors.As(err, &ie) {
		// Never leak a panic value or stack to the wire.
		msg = "internal error"
	}
	if status == http.StatusInternalServerError {
		s.noteInternalError()
	}
	writeJSON(w, status, errorResponse{Error: msg, Status: status})
}

// observeLatency folds one plan evaluation's service time into the EWMA
// behind serve.plan_latency_ewma (milliseconds) and the computed Retry-After.
func (s *Server) observeLatency(d time.Duration) {
	const alpha = 0.2
	ms := float64(d.Microseconds()) / 1e3
	for {
		old := s.ewmaBits.Load()
		next := ms
		if old != 0 {
			next = (1-alpha)*math.Float64frombits(old) + alpha*ms
		}
		if s.ewmaBits.CompareAndSwap(old, math.Float64bits(next)) {
			s.ewmaG.Set(next)
			return
		}
	}
}

// retryAfterSeconds estimates how long a shed caller should back off: the
// time for the current queue (plus the caller) to drain through the
// evaluation pool at the EWMA service rate, clamped to [1, 60] seconds.
func (s *Server) retryAfterSeconds() int {
	ewmaMS := math.Float64frombits(s.ewmaBits.Load())
	if ewmaMS <= 0 {
		return 1
	}
	drainMS := float64(s.adm.pressure()+1) / float64(s.cfg.MaxConcurrent) * ewmaMS
	secs := int(math.Ceil(drainMS / 1000))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// noteInternalError advances the evaluator circuit breaker; see breakerOpen.
func (s *Server) noteInternalError() {
	if s.consecInternal.Add(1) >= breakerThreshold {
		s.breakerTrip.Store(time.Now().UnixNano())
	}
}

// noteSuccess resets the breaker: the evaluator produced a good answer.
func (s *Server) noteSuccess() { s.consecInternal.Store(0) }

// breakerOpen reports whether the evaluator circuit breaker currently holds
// /readyz not-ready: breakerThreshold consecutive internal errors, with the
// most recent inside the cooldown window.
func (s *Server) breakerOpen() bool {
	if s.consecInternal.Load() < breakerThreshold {
		return false
	}
	return time.Now().UnixNano()-s.breakerTrip.Load() < int64(breakerCooldown)
}

// decodeStrict decodes one JSON document into v, rejecting unknown fields,
// type mismatches, and trailing garbage — everything surfaces as an error
// matching faults.ErrInvalidSpec so the handler answers 400.
func decodeStrict(r *http.Request, v interface{}) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return faults.Invalidf("serve: bad request body: %v", err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return faults.Invalidf("serve: trailing data after JSON body")
	}
	return nil
}

// validateLimits enforces the server-side bounds before any evaluation work —
// including before the cache key is computed, so out-of-range values can never
// reach (and fragment) the plan cache.
func (s *Server) validateLimits(seqLen, budget int) error {
	if seqLen <= 0 {
		return faults.Invalidf("serve: non-positive seq_len %d", seqLen)
	}
	if seqLen > s.cfg.MaxSeqLen {
		return faults.Invalidf("serve: seq_len %d exceeds server limit %d", seqLen, s.cfg.MaxSeqLen)
	}
	if budget < 0 {
		return faults.Invalidf("serve: negative search_budget %d (0 selects the default)", budget)
	}
	if budget > s.cfg.MaxSearchBudget {
		return faults.Invalidf("serve: search_budget %d exceeds server limit %d", budget, s.cfg.MaxSearchBudget)
	}
	return nil
}

// Degradation-mode labels: exactly one serve.degraded.<mode> counter is
// incremented per response carrying a Served-Degraded header, so the sum of
// the serve.degraded.* counters always equals the number of degraded
// responses served.
const (
	degradeBudget    = "budget"    // ladder tier 1: search budget reduced
	degradeHeuristic = "heuristic" // ladder tier 2: heuristic tile only
	degradeWatchdog  = "watchdog"  // watchdog rescued a stuck evaluation
	degradeSearch    = "search"    // the evaluation itself degraded internally
)

// degradeTier maps current queue pressure onto the ladder: 0 below half the
// configured queue depth (full-fidelity search), 1 up to the full depth
// (reduced search budget), 2 beyond it (heuristic tile only — no search).
// With queueing disabled the ladder is off: a busy pool sheds immediately,
// preserving the strict pre-ladder behaviour.
func (s *Server) degradeTier() int {
	if s.cfg.MaxQueue == 0 {
		return 0
	}
	q := s.adm.pressure()
	switch {
	case 2*q < int64(s.cfg.MaxQueue):
		return 0
	case q < int64(s.cfg.MaxQueue):
		return 1
	default:
		return 2
	}
}

// applyLadder steps spec down the degradation ladder for the current load,
// returning the possibly rewritten spec and the degradation mode ("" at tier
// 0). Degraded specs have different canonical keys (the budget and the
// HeuristicOnly flag are both part of CanonicalKey), so degraded results live
// in their own cache slots and can never be served for — or overwrite — a
// full-fidelity entry: the cache is structurally unpoisonable by load.
func (s *Server) applyLadder(spec transfusion.RunSpec) (transfusion.RunSpec, string) {
	if spec.HeuristicOnly {
		return spec, "" // already at the bottom by the caller's own choice
	}
	switch s.degradeTier() {
	case 1:
		if spec.SearchBudget == 0 || spec.SearchBudget > s.cfg.ReducedBudget {
			spec.SearchBudget = s.cfg.ReducedBudget
			return spec, degradeBudget
		}
		return spec, ""
	case 2:
		spec.HeuristicOnly = true
		return spec, degradeHeuristic
	default:
		return spec, ""
	}
}

// Plan-source labels for the X-Plan-Source response header: which tier of
// the memory -> disk -> peer -> search stack answered. "peer-warm" is the
// hybrid: a peer fetch missed, but its miss body carried the owner's nearest
// stored recipe and the local search started from it.
const (
	sourceMemory   = "memory"
	sourceDisk     = "disk"
	sourcePeer     = "peer"
	sourceWarm     = "warm-search"
	sourcePeerWarm = "peer-warm"
	sourceSearch   = "search"
)

// sourceOf maps a doEval outcome onto a plan-source label: cached means the
// in-memory cache answered inside Do (the entry landed between the peek and
// the call, or the degraded key was already cached); anything else waited on
// an evaluation.
func sourceOf(cached bool) string {
	if cached {
		return sourceMemory
	}
	return sourceSearch
}

// evalPlan resolves one spec through the ladder/cache/store/cluster/
// admission stack, returning the result, whether it came from a cache tier
// without waiting on any evaluation, the canonical key it was served under,
// the degradation mode ("" for a full-fidelity answer), and the tier that
// answered (memory|disk|peer|warm-search|search). reqCtx bounds only this
// caller's wait; the evaluation itself runs under the server's own deadline
// so a disconnecting client cannot kill coalesced peers, and its result is
// cached for the retry even if nobody is left to read it. allowPeer gates
// the cluster tier: the internal peer-fetch handler clears it so a fetch can
// never re-forward (two replicas that momentarily disagree about ownership
// during a topology change must degrade to local work, not loop).
//
// When the request carries a trace, the resolution gets a "plan.resolve"
// span annotated with the outcome — which tier answered, the cache key, and
// the degradation mode — so a slow or degraded response is attributable at a
// glance in /debug/requests.
func (s *Server) evalPlan(reqCtx context.Context, spec transfusion.RunSpec, allowPeer bool) (transfusion.RunResult, bool, string, string, string, error) {
	ctx, sp := obs.StartSpan(reqCtx, "plan.resolve")
	res, cached, key, mode, source, err := s.resolvePlan(ctx, spec, allowPeer)
	if sp != nil {
		sp.SetAttr("key", key)
		sp.SetAttr("source", source)
		sp.SetAttrBool("cached", cached)
		if mode != "" {
			sp.SetAttr("degrade_mode", mode)
			sp.MarkDegraded()
		}
		sp.EndErr(err)
	}
	return res, cached, key, mode, source, err
}

// resolvePlan is evalPlan's body; see there for the contract.
func (s *Server) resolvePlan(reqCtx context.Context, spec transfusion.RunSpec, allowPeer bool) (transfusion.RunResult, bool, string, string, string, error) {
	spec.Parallelism = s.cfg.Parallelism
	spec.SpecChainSteps = s.cfg.SpecChainSteps
	spec.SpecLookahead = s.cfg.SpecLookahead
	fullKey := spec.CanonicalKey()
	// Peek the full-fidelity cache before consulting the ladder: a complete
	// cached answer beats a freshly computed degraded one at any load.
	_, memSp := obs.StartSpan(reqCtx, "cache.memory")
	res, ok := s.cache.Get(fullKey)
	memSp.SetAttrBool("hit", ok)
	memSp.End()
	if ok {
		return res, true, fullKey, "", sourceMemory, nil
	}
	spec, mode := s.applyLadder(spec)
	if sp := obs.SpanFromContext(reqCtx); sp != nil && mode != "" {
		sp.SetAttr("ladder_mode", mode)
	}
	key := fullKey
	if mode != "" {
		key = spec.CanonicalKey()
	}

	// Disk tier: only full-fidelity keys can hit — degraded results are never
	// persisted, so a ladder-rewritten key cannot exist on disk. A hit is
	// promoted into the memory cache so the next request skips the disk.
	// Every store failure (read fault, torn record, injected chaos) reports a
	// clean miss and the request falls through to search. The store's own
	// "store.read" span (it inherits the request span through diskCtx)
	// carries the lookup's duration and error, so injected disk latency and
	// faults are attributed to this tier in the trace.
	if s.store != nil && mode == "" {
		diskCtx, cancel := s.boundDiskCtx(reqCtx)
		res, ok := s.store.Get(diskCtx, fullKey)
		cancel()
		if ok {
			s.cache.Put(fullKey, res)
			return res, true, fullKey, "", sourceDisk, nil
		}
	}

	// Peer tier: the consistent-hash ring names one replica the key's owner;
	// a non-owner that missed its exact local tiers fetches from the owner
	// instead of searching, so the owner's singleflight makes each plan a
	// compute-at-most-once resource cluster-wide. Any failure — partition,
	// dead or draining owner, owner under load, injected chaos — falls
	// through to the local search tiers below: the cluster is a work-sharing
	// optimisation, never a correctness or availability dependency. A
	// fetched plan fills the local memory cache and, asynchronously, the
	// local disk tier. Owners refuse to ship degraded results (503), and a
	// degraded body that arrives anyway is discarded, so degraded plans
	// cannot cross replicas. Degraded (ladder-rewritten) requests and specs
	// not expressible on the wire never forward.
	//
	// When this replica owns the key itself but the ring generation just
	// moved ownership here, the remap path runs instead: one cache-only
	// fetch from the previous generation's owner, so a membership change
	// costs at most one extra peer hop — not a cluster-wide re-search of
	// every remapped key. The remap fetch is deliberately not gated on
	// allowPeer: it is loop-free (the cache-only route never forwards or
	// searches), so even an owner answering a peer fetch may take the hop.
	//
	// Either fetch that fails may still return the remote side's nearest
	// stored recipe (peerHint); the warm tier below seeds the local search
	// from it.
	var peerHint *transfusion.PlanSummary
	if cl := s.cfg.Cluster; cl != nil && mode == "" && !spec.HeuristicOnly &&
		!s.draining.Load() && peerForwardable(spec) {
		switch owner := cl.Owner(fullKey); {
		case owner != "" && !cl.IsSelf(owner) && allowPeer:
			res, hint, ok := s.peerFetch(reqCtx, owner, spec, fullKey)
			if ok {
				return res, false, fullKey, "", sourcePeer, nil
			}
			peerHint = hint
		case owner != "" && cl.IsSelf(owner):
			if prev := cl.PrevOwner(fullKey); prev != "" && cl.CanFetch(prev) {
				res, hint, ok := s.remapFetch(reqCtx, prev, spec, fullKey)
				if ok {
					return res, false, fullKey, "", sourcePeer, nil
				}
				peerHint = hint
			}
		}
	}

	// Warm tier: both exact tiers missed, so seed the search from the nearest
	// stored plan in the same workload family (same arch/model/system and
	// knobs, closest seq_len). The hint rides inside the spec — it is
	// excluded from the canonical key, so the result still lands in the
	// full-fidelity cache slot — and makes a near-miss request dramatically
	// cheaper: the warm search is deterministic given the store's state,
	// returns a full-fidelity result, and is never worse than the hint it
	// started from. Degraded records are never persisted, so a hint can never
	// carry degraded fidelity; heuristic-only requests run no search and have
	// nothing to warm.
	warmed := false
	warmSrc := sourceWarm
	if peerHint != nil && mode == "" && !spec.HeuristicOnly {
		// A replica-aware warm hint from the failed peer fetch above beats
		// consulting the local store: the remote owner's nearest neighbour is
		// at least as close as ours (it owned this key family), and using it
		// skips a disk scan on the request path.
		spec.WarmHint = peerHint
		warmed = true
		warmSrc = sourcePeerWarm
		s.reg.Counter("serve.peer.warm_hints").Inc()
		if sp := obs.SpanFromContext(reqCtx); sp != nil {
			sp.SetAttr("warm_from", "peer")
		}
	} else if s.store != nil && mode == "" && !spec.HeuristicOnly {
		diskCtx, cancel := s.boundDiskCtx(reqCtx)
		ne, ok := s.store.Nearest(diskCtx, fullKey)
		cancel()
		if ok && ne.Result.Plan != nil {
			spec.WarmHint = ne.Result.Plan
			warmed = true
			s.reg.Counter("serve.warm_hits").Inc()
			if sp := obs.SpanFromContext(reqCtx); sp != nil {
				sp.SetAttr("warm_from", ne.Key)
			}
		}
	}
	// src maps a doEval outcome to the plan-source label, distinguishing a
	// warm-seeded evaluation (and which side supplied the hint) from a cold
	// one; a cache hit inside Do is a memory answer regardless of the hint.
	src := func(cached bool) string {
		if !cached && warmed {
			return warmSrc
		}
		return sourceOf(cached)
	}

	if s.cfg.WatchdogTimeout <= 0 {
		res, cached, err := s.doEval(reqCtx, spec, key)
		return res, cached, key, mode, src(cached), err
	}

	type evalOut struct {
		res    transfusion.RunResult
		cached bool
		err    error
	}
	done := make(chan evalOut, 1)
	go func() {
		r, c, err := s.doEval(reqCtx, spec, key)
		done <- evalOut{res: r, cached: c, err: err}
	}()
	watchdog := time.NewTimer(s.cfg.WatchdogTimeout)
	defer watchdog.Stop()
	select {
	case o := <-done:
		return o.res, o.cached, key, mode, src(o.cached), o.err
	case <-reqCtx.Done():
		return transfusion.RunResult{}, false, key, mode, sourceSearch, faults.Canceled(reqCtx)
	case <-watchdog.C:
	}
	if spec.HeuristicOnly {
		// The stuck evaluation already is the heuristic-only fallback; there
		// is nothing cheaper to step down to, so ride it out.
		select {
		case o := <-done:
			return o.res, o.cached, key, mode, src(o.cached), o.err
		case <-reqCtx.Done():
			return transfusion.RunResult{}, false, key, mode, sourceSearch, faults.Canceled(reqCtx)
		}
	}
	// Watchdog fired: serve a heuristic-only answer now instead of letting
	// the caller ride the request deadline into a 504. The stuck evaluation
	// keeps running in the background, bounded by RequestTimeout, and lands
	// in the cache under its own key if it ever completes. The fallback
	// bypasses admission deliberately — the pool's slots may be wedged by the
	// very evaluations the watchdog is routing around, and the heuristic path
	// is bounded, cheap work.
	s.reg.Counter("serve.watchdog_fires").Inc()
	obs.SpanFromContext(reqCtx).Event("watchdog.fired")
	fspec := spec
	fspec.HeuristicOnly = true
	fkey := fspec.CanonicalKey()
	wdRes, wdCached, err := s.cache.Do(reqCtx, fkey, true, func() (transfusion.RunResult, error) {
		evalCtx, cancel := context.WithTimeout(s.baseCtx, s.cfg.RequestTimeout)
		defer cancel()
		var wdSp *obs.Span
		if sp := obs.SpanFromContext(reqCtx); sp != nil {
			evalCtx = obs.ContextWithSpan(evalCtx, sp)
			evalCtx, wdSp = obs.StartSpan(evalCtx, "plan.watchdog_rescue")
		}
		r, err := transfusion.RunContext(evalCtx, fspec)
		wdSp.EndErr(err)
		return r, err
	})
	if err != nil {
		return transfusion.RunResult{}, false, fkey, mode, sourceSearch, err
	}
	return wdRes, wdCached, fkey, degradeWatchdog, sourceOf(wdCached), nil
}

// boundDiskCtx derives the context for an on-request-path disk read: the
// server's base context (which carries the chaos injector and metrics), time-
// bounded so a slow or fault-injected disk degrades to a miss instead of
// wedging the request. The watchdog timeout bounds it when configured — the
// disk tier sits outside the watchdog, so it must not be allowed to consume
// the whole request deadline on its own. The request's span (when tracing)
// is re-attached so the store's "store.read" span lands in the request's
// trace despite the detached cancellation.
func (s *Server) boundDiskCtx(reqCtx context.Context) (context.Context, context.CancelFunc) {
	timeout := s.cfg.RequestTimeout
	if s.cfg.WatchdogTimeout > 0 && s.cfg.WatchdogTimeout < timeout {
		timeout = s.cfg.WatchdogTimeout
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
	if sp := obs.SpanFromContext(reqCtx); sp != nil {
		ctx = obs.ContextWithSpan(ctx, sp)
	}
	return ctx, cancel
}

// peerForwardable reports whether spec can be expressed as a wire-level
// PlanRequest. Specs carrying local-only inputs (an architecture file path, a
// custom model) never arise from the HTTP handlers, but a direct library
// caller could build one — those always resolve locally.
func peerForwardable(spec transfusion.RunSpec) bool {
	return spec.ArchFile == "" && spec.CustomModel == nil
}

// wireRequest expresses a forwardable spec as the peer-route body.
func wireRequest(spec transfusion.RunSpec) client.PlanRequest {
	return client.PlanRequest{
		Arch: spec.Arch, Model: spec.Model, SeqLen: spec.SeqLen, System: spec.System,
		Batch: spec.Batch, SearchBudget: spec.SearchBudget, Causal: spec.Causal,
	}
}

// hintFrom extracts the replica-aware warm hint, if any, from a failed peer
// call: the remote side attaches its store.Nearest recipe to refusals and
// cache-only misses.
func hintFrom(err error) *transfusion.PlanSummary {
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		return apiErr.WarmHint
	}
	return nil
}

// peerFetch asks the key's owner for the plan over the internal peer RPC,
// returning (result, nil, true) on a usable full-fidelity answer. It runs
// under its own timeout derived from the server's base context — like the
// disk tier, it must not consume the whole request deadline, and it must
// carry the chaos injector so the serve.peer.fetch site can strike. The
// bound is the cluster's per-peer timeout: flat normally, clamped down by
// the prober's latency EWMA for a peer known to be running slow. The
// fetched result fills the local memory cache immediately and the local
// disk tier asynchronously (off the request path), so subsequent requests
// for the key on this replica answer locally. On any failure it reports
// (zero, hint, false) — hint carrying the owner's nearest stored recipe
// when the refusal included one — and the caller falls through to local
// search: serve.peer.hits + serve.peer.fallbacks always sums to
// serve.peer.forwards.
func (s *Server) peerFetch(reqCtx context.Context, owner string, spec transfusion.RunSpec, fullKey string) (transfusion.RunResult, *transfusion.PlanSummary, bool) {
	s.reg.Counter("serve.peer.forwards").Inc()
	cl := s.cfg.Cluster
	ctx, cancel := context.WithTimeout(s.baseCtx, cl.PeerTimeout(owner))
	defer cancel()
	if sp := obs.SpanFromContext(reqCtx); sp != nil {
		ctx = obs.ContextWithSpan(ctx, sp)
	}
	ctx, sp := obs.StartSpan(ctx, "cluster.fetch")
	sp.SetAttr("owner", owner)
	var resp *client.PlanResponse
	err := chaos.SiteFrom(ctx, chaos.SiteServePeerFetch).Strike(ctx)
	if err == nil {
		resp, err = cl.Fetch(ctx, owner, wireRequest(spec))
	}
	if err == nil && resp.Result.Degraded {
		// Owners answer 503 rather than ship a degraded plan; a body that
		// carries one anyway (a version-skewed or misbehaving peer) is
		// treated as a failed fetch so it can never enter a local cache.
		err = faults.Invalidf("serve: peer %s returned a degraded result", owner)
	}
	if err != nil {
		s.reg.Counter("serve.peer.fallbacks").Inc()
		sp.EndErr(err)
		return transfusion.RunResult{}, hintFrom(err), false
	}
	s.reg.Counter("serve.peer.hits").Inc()
	sp.SetAttr("peer_source", resp.Source)
	sp.End()
	s.cache.Put(fullKey, resp.Result)
	s.storeFillAsync(ctx, fullKey, resp.Result)
	return resp.Result, nil, true
}

// remapFetch is the one-hop previous-owner protocol: this replica owns
// fullKey under the current ring generation, but the previous generation's
// ring named prev the owner — so prev's caches, not a local search, are the
// cheapest place the plan can be. One cache-only fetch (the remote side
// never searches or forwards on that route) either adopts the plan here or
// falls through to the local search, converting a membership change into at
// most one extra peer hop per key instead of a cold-search stampede. After
// the first hop the plan (fetched or searched) is in the local cache, so
// the hop never repeats for the key. Counters: cluster.remap.fetches per
// attempt, cluster.remap.hits per adopted plan.
func (s *Server) remapFetch(reqCtx context.Context, prev string, spec transfusion.RunSpec, fullKey string) (transfusion.RunResult, *transfusion.PlanSummary, bool) {
	s.reg.Counter("cluster.remap.fetches").Inc()
	cl := s.cfg.Cluster
	ctx, cancel := context.WithTimeout(s.baseCtx, cl.PeerTimeout(prev))
	defer cancel()
	if sp := obs.SpanFromContext(reqCtx); sp != nil {
		ctx = obs.ContextWithSpan(ctx, sp)
	}
	ctx, sp := obs.StartSpan(ctx, "cluster.remap")
	sp.SetAttr("prev_owner", prev)
	var resp *client.PlanResponse
	err := chaos.SiteFrom(ctx, chaos.SiteServePeerFetch).Strike(ctx)
	if err == nil {
		resp, err = cl.FetchCached(ctx, prev, wireRequest(spec))
	}
	if err == nil && resp.Result.Degraded {
		err = faults.Invalidf("serve: peer %s returned a degraded result", prev)
	}
	if err != nil {
		sp.EndErr(err)
		return transfusion.RunResult{}, hintFrom(err), false
	}
	s.reg.Counter("cluster.remap.hits").Inc()
	sp.SetAttr("peer_source", resp.Source)
	sp.End()
	s.cache.Put(fullKey, resp.Result)
	s.storeFillAsync(ctx, fullKey, resp.Result)
	return resp.Result, nil, true
}

// WarmGrid precomputes plans for gaps in the store's seq-length grid, warm-
// seeding each from its nearest stored neighbour. Stored keys are grouped
// into workload families (same arch/model/system and knobs, seq_len
// ignored); between each adjacent stored pair (lo, hi) the power-of-two
// lengths lo*2, lo*4, ... < hi are planned, skipping any already cached or
// stored. Completed plans land in both the memory cache and the store, and
// count in serve.warm_grid_plans. maxPlans > 0 bounds the total work; 0
// walks the whole grid. It runs off the serving path — call it from a
// goroutine at boot — and returns the number of plans computed (ctx
// cancellation stops it early).
func (s *Server) WarmGrid(ctx context.Context, maxPlans int) int {
	if s.store == nil {
		return 0
	}
	byFamily := make(map[string][]transfusion.RunSpec)
	for _, key := range s.store.Keys() {
		spec, ok := transfusion.ParseCanonicalKey(key)
		if !ok || spec.HeuristicOnly {
			continue
		}
		fam := spec
		fam.SeqLen = 0
		fk := fam.CanonicalKey()
		byFamily[fk] = append(byFamily[fk], spec)
	}
	fams := make([]string, 0, len(byFamily))
	for f := range byFamily {
		fams = append(fams, f)
	}
	sort.Strings(fams)
	planned := 0
	for _, f := range fams {
		specs := byFamily[f]
		sort.Slice(specs, func(i, j int) bool { return specs[i].SeqLen < specs[j].SeqLen })
		for i := 0; i+1 < len(specs); i++ {
			for q := specs[i].SeqLen * 2; q < specs[i+1].SeqLen; q *= 2 {
				if ctx.Err() != nil || (maxPlans > 0 && planned >= maxPlans) {
					return planned
				}
				spec := specs[i]
				spec.SeqLen = q
				if s.warmGridPlan(ctx, spec) {
					planned++
				}
			}
		}
	}
	return planned
}

// warmGridPlan fills one grid gap: skip if either exact tier already has the
// key, otherwise evaluate with the nearest stored plan as the warm hint and
// persist the completed result. Reports whether a plan was computed.
func (s *Server) warmGridPlan(ctx context.Context, spec transfusion.RunSpec) bool {
	spec.Parallelism = s.cfg.Parallelism
	spec.SpecChainSteps = s.cfg.SpecChainSteps
	spec.SpecLookahead = s.cfg.SpecLookahead
	key := spec.CanonicalKey()
	if _, ok := s.cache.Get(key); ok {
		return false
	}
	getCtx, cancel := context.WithTimeout(s.baseCtx, s.cfg.RequestTimeout)
	res, ok := s.store.Get(getCtx, key)
	cancel()
	if ok {
		s.cache.Put(key, res)
		return false
	}
	neCtx, cancel := context.WithTimeout(s.baseCtx, s.cfg.RequestTimeout)
	ne, ok := s.store.Nearest(neCtx, key)
	cancel()
	if ok {
		spec.WarmHint = ne.Result.Plan
	}
	evalCtx, cancel := context.WithTimeout(s.baseCtx, s.cfg.RequestTimeout)
	defer cancel()
	res, err := transfusion.RunContext(evalCtx, spec)
	if err != nil || res.Degraded {
		// Degraded results are never persisted (nor worth pre-seeding the
		// cache with); the gap stays open for a real request to fill.
		return false
	}
	s.cache.Put(key, res)
	putCtx, cancel2 := context.WithTimeout(s.baseCtx, s.cfg.RequestTimeout)
	defer cancel2()
	s.store.Put(putCtx, key, res) //nolint:errcheck // counted in store.put_errors
	s.reg.Counter("serve.warm_grid_plans").Inc()
	return true
}

// storeFillAsync persists a completed full-fidelity result to the disk tier
// off the request path. Degraded results are never persisted: they encode a
// transient load or fault condition, and the store must only ever hold
// answers worth serving forever. Fill failures (including injected chaos)
// cost durability, never correctness — the next restart re-searches.
//
// evalCtx donates only its span (when tracing): the fill appears in the
// originating request's trace as an async "store.fill" span — typically
// still open when the response goes out, exported as unfinished — but runs
// under its own timeout detached from the request.
func (s *Server) storeFillAsync(evalCtx context.Context, key string, res transfusion.RunResult) {
	if s.store == nil || res.Degraded {
		return
	}
	parent := obs.SpanFromContext(evalCtx)
	s.fills.Add(1)
	go func() {
		defer s.fills.Done()
		ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.RequestTimeout)
		defer cancel()
		var sp *obs.Span
		if parent != nil {
			ctx = obs.ContextWithSpan(ctx, parent)
			ctx, sp = obs.StartSpan(ctx, "store.fill")
			sp.SetAttrBool("async", true)
		}
		err := s.store.Put(ctx, key, res) //nolint:errcheck // counted in store.put_errors
		sp.EndErr(err)
	}()
}

// doEval is one pass through the cache/admission stack for a
// (possibly ladder-rewritten) spec.
func (s *Server) doEval(reqCtx context.Context, spec transfusion.RunSpec, key string) (transfusion.RunResult, bool, error) {
	// Degraded results are retained only under keys that asked for degraded
	// fidelity; see planCache.Do.
	return s.cache.Do(reqCtx, key, spec.HeuristicOnly, func() (res transfusion.RunResult, err error) {
		// The recover boundary keeps an injected (or real) panic in the
		// leader from unwinding through the cache's singleflight machinery
		// and killing the serving process; it classifies as an internal
		// error (500) for the leader and every coalesced joiner.
		defer faults.Recover(&err)
		evalCtx, cancel := context.WithTimeout(s.baseCtx, s.cfg.RequestTimeout)
		defer cancel()
		// The evaluation runs under the server-owned evalCtx, which does not
		// inherit the request context — re-attach the request's span so the
		// singleflight leader's work ("plan.lead": admission wait, chaos
		// strikes, the search itself) lands in the leader's trace. Joiners
		// get a "plan.join" span inside planCache.Do instead.
		var lead *obs.Span
		if sp := obs.SpanFromContext(reqCtx); sp != nil {
			evalCtx = obs.ContextWithSpan(evalCtx, sp)
			evalCtx, lead = obs.StartSpan(evalCtx, "plan.lead")
			defer func() { lead.EndErr(err) }()
		}
		if err := s.adm.acquire(evalCtx); err != nil {
			return transfusion.RunResult{}, err
		}
		defer s.adm.release()
		if err := chaos.SiteFrom(evalCtx, chaos.SiteServeCacheLeader).Strike(evalCtx); err != nil {
			return transfusion.RunResult{}, err
		}
		start := time.Now()
		res, err = transfusion.RunContext(evalCtx, spec)
		if err == nil {
			s.observeLatency(time.Since(start))
			// One durable fill per completed evaluation, spawned by the
			// singleflight leader so coalesced joiners never duplicate it.
			s.storeFillAsync(evalCtx, key, res)
		}
		return res, err
	})
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only", Status: http.StatusMethodNotAllowed})
		return
	}
	start := time.Now()
	var req PlanRequest
	if err := decodeStrict(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if err := s.validateLimits(req.SeqLen, req.SearchBudget); err != nil {
		s.writeError(w, err)
		return
	}
	spec := transfusion.RunSpec{
		Arch: req.Arch, Model: req.Model, SeqLen: req.SeqLen, System: req.System,
		Batch: req.Batch, SearchBudget: req.SearchBudget, Causal: req.Causal,
	}
	res, cached, key, mode, source, err := s.evalPlan(r.Context(), spec, true)
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("X-Plan-Source", source)
	s.markDegraded(r.Context(), w, &res, mode)
	s.noteSuccess()
	writeJSON(w, http.StatusOK, PlanResponse{
		Result: res, Cached: cached, Key: key, Source: source,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1e3,
	})
}

// handlePeerPlan answers the internal peer-fetch route (/v1/peer/plan): a
// sibling replica that does not own a key forwards the request here so this
// replica's singleflight computes the plan once for the whole cluster. The
// contract differs from /v1/plan in two ways. First, evalPlan runs with
// allowPeer=false — an owner never re-forwards, so topology disagreement
// during a membership change can bounce a request at most once. Second,
// degraded results never cross replicas: while draining, while the local
// ladder is engaged, or when the evaluation itself degraded, the owner
// answers 503 and the requester falls back to its own local search. A
// degraded plan in a peer response would otherwise be cached remotely and
// outlive the load spike that caused it.
func (s *Server) handlePeerPlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only", Status: http.StatusMethodNotAllowed})
		return
	}
	start := time.Now()
	var req PlanRequest
	if err := decodeStrict(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if err := s.validateLimits(req.SeqLen, req.SearchBudget); err != nil {
		s.writeError(w, err)
		return
	}
	spec := transfusion.RunSpec{
		Arch: req.Arch, Model: req.Model, SeqLen: req.SeqLen, System: req.System,
		Batch: req.Batch, SearchBudget: req.SearchBudget, Causal: req.Causal,
	}
	fullKey := spec.CanonicalKey()
	if s.draining.Load() {
		s.peerRefuse(w, r.Context(), fullKey, faults.Overloadedf("serve: draining; peer fetches refused"))
		return
	}
	if s.degradeTier() > 0 {
		s.peerRefuse(w, r.Context(), fullKey, faults.Overloadedf("serve: overloaded; peer fetch would degrade"))
		return
	}
	res, cached, key, mode, source, err := s.evalPlan(r.Context(), spec, false)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if mode != "" || res.Degraded {
		s.peerRefuse(w, r.Context(), fullKey, faults.Overloadedf("serve: degraded result withheld from peer fetch"))
		return
	}
	s.reg.Counter("serve.peer.serves").Inc()
	s.noteSuccess()
	w.Header().Set("X-Plan-Source", source)
	writeJSON(w, http.StatusOK, PlanResponse{
		Result: res, Cached: cached, Key: key, Source: source,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1e3,
	})
}

// peerRefuse answers a peer route with a refusal that still helps: alongside
// the 503 the body carries this replica's nearest stored recipe for the key
// (when one exists), so the requester's mandatory local fallback search can
// start warm. Counted in serve.peer.rejects like every peer refusal.
func (s *Server) peerRefuse(w http.ResponseWriter, ctx context.Context, fullKey string, err error) {
	s.reg.Counter("serve.peer.rejects").Inc()
	status := faults.HTTPStatus(err)
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	}
	writeJSON(w, status, errorResponse{
		Error: err.Error(), Status: status, WarmHint: s.nearestHint(ctx, fullKey),
	})
}

// nearestHint looks up the nearest stored recipe for fullKey for use as a
// replica-aware warm hint. Store absence, misses, and disk faults all report
// nil — hints are an optimisation, never an obligation. Nearest never
// returns a degraded or plan-less record, so a hint is always a full-
// fidelity seed.
func (s *Server) nearestHint(reqCtx context.Context, fullKey string) *transfusion.PlanSummary {
	if s.store == nil {
		return nil
	}
	diskCtx, cancel := s.boundDiskCtx(reqCtx)
	defer cancel()
	ne, ok := s.store.Nearest(diskCtx, fullKey)
	if !ok || ne.Result.Plan == nil {
		return nil
	}
	return ne.Result.Plan
}

// handlePeerCached answers the cache-only peer route (/v1/peer/cached): the
// one-hop previous-owner fetch a replica makes when ring reconfiguration
// just moved ownership of a key onto it. The contract is strictly cheaper
// than /v1/peer/plan: answer from the local memory or disk tier, never
// search, never forward — which is what makes the remap path loop-free and
// safe to run even while answering a peer's own fetch. A miss is a 404
// carrying the nearest stored recipe as a warm hint. The route stays open
// while draining: it is bounded read-only work, and the draining replica's
// caches are exactly what the surviving owners need to take over its keys.
func (s *Server) handlePeerCached(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only", Status: http.StatusMethodNotAllowed})
		return
	}
	start := time.Now()
	var req PlanRequest
	if err := decodeStrict(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if err := s.validateLimits(req.SeqLen, req.SearchBudget); err != nil {
		s.writeError(w, err)
		return
	}
	spec := transfusion.RunSpec{
		Arch: req.Arch, Model: req.Model, SeqLen: req.SeqLen, System: req.System,
		Batch: req.Batch, SearchBudget: req.SearchBudget, Causal: req.Causal,
	}
	fullKey := spec.CanonicalKey()
	answer := func(res transfusion.RunResult, source string) {
		s.reg.Counter("serve.peer.cached.hits").Inc()
		w.Header().Set("X-Plan-Source", source)
		writeJSON(w, http.StatusOK, PlanResponse{
			Result: res, Cached: true, Key: fullKey, Source: source,
			ElapsedMS: float64(time.Since(start).Microseconds()) / 1e3,
		})
	}
	if res, ok := s.cache.Get(fullKey); ok && !res.Degraded {
		answer(res, sourceMemory)
		return
	}
	if s.store != nil {
		diskCtx, cancel := s.boundDiskCtx(r.Context())
		res, ok := s.store.Get(diskCtx, fullKey)
		cancel()
		if ok && !res.Degraded {
			s.cache.Put(fullKey, res)
			answer(res, sourceDisk)
			return
		}
	}
	s.reg.Counter("serve.peer.cached.misses").Inc()
	writeJSON(w, http.StatusNotFound, errorResponse{
		Error:  "serve: no cached plan for " + fullKey,
		Status: http.StatusNotFound, WarmHint: s.nearestHint(r.Context(), fullKey),
	})
}

// markDegraded stamps a response that was served below full fidelity: the
// Served-Degraded header names the mode, exactly one serve.degraded.<mode>
// counter is incremented (so the counters' sum equals the number of degraded
// responses on the wire), and the result's Degraded/DegradedReason fields are
// set when the ladder — rather than the evaluation itself — was the cause.
// mode "" with an undegraded result is the full-fidelity fast path: no
// header, no counter. A degraded response also marks the request's trace
// degraded, which guarantees its retention in the tracer's tail-sampling
// ring.
func (s *Server) markDegraded(ctx context.Context, w http.ResponseWriter, res *transfusion.RunResult, mode string) {
	if mode == "" {
		if !res.Degraded {
			return
		}
		// The evaluation degraded internally (search timeout, budget
		// exhaustion, infeasible space — or an injected search fault).
		mode = degradeSearch
	}
	if !res.Degraded {
		res.Degraded = true
		res.DegradedReason = "served degraded under load (" + mode + " tier)"
	}
	s.markDegradedResponse(ctx, w, mode)
}

// markDegradedResponse applies the on-the-wire degradation stamp shared by
// every handler: trace marked for tail-sampling retention, Served-Degraded
// header, and exactly one serve.degraded.<mode> counter increment per
// response.
func (s *Server) markDegradedResponse(ctx context.Context, w http.ResponseWriter, mode string) {
	obs.SpanFromContext(ctx).MarkDegraded()
	w.Header().Set("Served-Degraded", mode)
	s.reg.Counter("serve.degraded." + mode).Inc()
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only", Status: http.StatusMethodNotAllowed})
		return
	}
	start := time.Now()
	var req CompareRequest
	if err := decodeStrict(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if err := s.validateLimits(req.SeqLen, req.SearchBudget); err != nil {
		s.writeError(w, err)
		return
	}
	// Route each system through the same cache/admission stack as /v1/plan,
	// so a compare shares evaluations with plans (and other compares) of the
	// same workload.
	resp := CompareResponse{Results: make([]transfusion.RunResult, 0, 5)}
	degradeMode := ""
	anyDegraded := false
	for _, name := range transfusion.SystemNames() {
		spec := transfusion.RunSpec{
			Arch: req.Arch, Model: req.Model, SeqLen: req.SeqLen, System: name,
			Batch: req.Batch, SearchBudget: req.SearchBudget,
		}
		res, cached, _, mode, _, err := s.evalPlan(r.Context(), spec, true)
		if err != nil {
			s.writeError(w, err)
			return
		}
		if cached {
			resp.CachedResults++
		}
		if mode != "" && degradeMode == "" {
			degradeMode = mode
		}
		anyDegraded = anyDegraded || res.Degraded
		resp.Results = append(resp.Results, res)
	}
	// One header and one counter per response, whatever mix of the five
	// evaluations degraded — the counter/header invariant is per response on
	// the wire, not per evaluation behind it.
	if degradeMode != "" || anyDegraded {
		if degradeMode == "" {
			degradeMode = degradeSearch
		}
		s.markDegradedResponse(r.Context(), w, degradeMode)
	}
	s.noteSuccess()
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1e3
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz is pure liveness: the process is up and serving HTTP. It
// stays 200 while draining (shutting down deliberately is not being stuck) —
// restart decisions belong to /healthz, routing decisions to /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: 503 while draining (flipped before the listener
// closes, so load balancers stop routing first) and while the evaluator
// circuit breaker is open after consecutive internal errors.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case s.breakerOpen():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "breaker-open"})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}
}

// handleMetrics serves the registry under content negotiation:
// ?format=json keeps the legacy JSON snapshot, ?format=prometheus — or an
// Accept header naming text/plain, which is what a Prometheus scraper
// sends — serves text exposition format 0.0.4, and anything else gets the
// legacy sorted name/value text.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	format := r.URL.Query().Get("format")
	if format == "json" {
		data, err := s.reg.Snapshot().JSON()
		if err != nil {
			s.writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data) //nolint:errcheck
		return
	}
	if format == "prometheus" || strings.Contains(r.Header.Get("Accept"), "text/plain") {
		w.Header().Set("Content-Type", obs.PrometheusContentType)
		s.reg.WritePrometheus(w) //nolint:errcheck
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.reg.Snapshot().WriteText(w) //nolint:errcheck
}

// handleRequests serves the request-trace ring buffers: the full dump
// (in-flight + recent + retained span trees) by default, one trace by
// ?id=<trace-id>, and a Chrome trace_event rendering of one trace by
// ?id=<trace-id>&format=chrome (load it in Perfetto or chrome://tracing).
// With tracing disabled the dump is present but empty, so dashboards can
// poll unconditionally.
func (s *Server) handleRequests(w http.ResponseWriter, r *http.Request) {
	tracer := s.cfg.Tracer
	id := r.URL.Query().Get("id")
	if id == "" {
		writeJSON(w, http.StatusOK, tracer.Dump())
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		events, ok := tracer.ChromeTrace(id)
		if !ok {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: "serve: no trace " + id, Status: http.StatusNotFound})
			return
		}
		data, err := obs.MarshalChromeTrace(events)
		if err != nil {
			s.writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", fmt.Sprintf("inline; filename=%q", "request-trace.json"))
		w.Write(data) //nolint:errcheck
		return
	}
	exp, ok := tracer.Export(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "serve: no trace " + id, Status: http.StatusNotFound})
		return
	}
	writeJSON(w, http.StatusOK, exp)
}

// handleTrace serves the Chrome trace_event export of the DPipe schedules for
// a workload: GET /debug/trace?arch=edge&model=bert&seq=4096&epochs=6.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	seq, err := strconv.Atoi(strings.TrimSpace(q.Get("seq")))
	if err != nil {
		s.writeError(w, faults.Invalidf("serve: bad seq parameter %q", q.Get("seq")))
		return
	}
	epochs := 6
	if e := q.Get("epochs"); e != "" {
		epochs, err = strconv.Atoi(e)
		if err != nil || epochs < 1 || epochs > 64 {
			s.writeError(w, faults.Invalidf("serve: bad epochs parameter %q", e))
			return
		}
	}
	if err := s.validateLimits(seq, 0); err != nil {
		s.writeError(w, err)
		return
	}
	data, err := transfusion.ChromeTraceSchedule(q.Get("arch"), q.Get("model"), seq, epochs)
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", fmt.Sprintf("inline; filename=%q", "trace.json"))
	w.Write(data) //nolint:errcheck
}
