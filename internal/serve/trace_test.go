package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"github.com/fusedmindlab/transfusion/internal/obs"
)

// fetchTrace pulls one exported trace by id from /debug/requests.
func fetchTrace(t *testing.T, baseURL, traceID string) *obs.TraceExport {
	t.Helper()
	resp, err := http.Get(baseURL + "/debug/requests?id=" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/requests?id=%s: status %d", traceID, resp.StatusCode)
	}
	var exp obs.TraceExport
	if err := json.NewDecoder(resp.Body).Decode(&exp); err != nil {
		t.Fatalf("decoding trace export: %v", err)
	}
	return &exp
}

// findSpan walks the span tree for the first span with the given name.
func findSpan(spans []*obs.SpanExport, name string) *obs.SpanExport {
	for _, s := range spans {
		if s.Name == name {
			return s
		}
		if found := findSpan(s.Children, name); found != nil {
			return found
		}
	}
	return nil
}

func spanAttr(s *obs.SpanExport, key string) (string, bool) {
	for _, a := range s.Attrs {
		if a.K == key {
			return a.V, true
		}
	}
	return "", false
}

// A fixed-seed chaos schedule injecting latency at store.read must show up in
// the request's trace as a "store.read" span carrying the injected delay —
// the trace attributes the slowness to the disk tier, not to the search or
// the cache. Runs under -race in CI's chaos-smoke job.
func TestTraceChaosDiskLatencyAttribution(t *testing.T) {
	dir := t.TempDir()

	// Warm the disk tier: one searched plan, fill awaited.
	sA, tsA, _ := storeTestServer(t, Config{WatchdogTimeout: -1}, dir, true, "")
	resp, data := post(t, tsA.URL+"/v1/plan", searchPlanBody)
	if _, source := planSource(t, resp, data); source != sourceSearch {
		t.Fatalf("warmup served from %q, want %q", source, sourceSearch)
	}
	sA.fills.Wait()

	// A cold restart over the same directory, disk reads slowed by 150ms,
	// tracing on. The answer must come from disk and the trace must pin the
	// delay on the store.read span.
	cfg := Config{
		WatchdogTimeout: -1,
		Tracer:          obs.NewTracer(obs.TracerConfig{Seed: 1}),
	}
	_, tsB, _ := storeTestServer(t, cfg, dir, true, "store.read=latency:150ms@limit=1")
	resp, data = post(t, tsB.URL+"/v1/plan", searchPlanBody)
	if _, source := planSource(t, resp, data); source != sourceDisk {
		t.Fatalf("served from %q, want %q", source, sourceDisk)
	}
	traceID := resp.Header.Get("X-Trace-Id")
	if traceID == "" {
		t.Fatal("no X-Trace-Id on traced response")
	}

	exp := fetchTrace(t, tsB.URL, traceID)
	read := findSpan(exp.Spans, "store.read")
	if read == nil {
		t.Fatalf("no store.read span in trace %s", traceID)
	}
	if read.DurUS < 100_000 {
		t.Fatalf("store.read span is %.0fus, want >= 100ms of injected latency", read.DurUS)
	}
	if hit, ok := spanAttr(read, "hit"); !ok || hit != "true" {
		t.Fatalf("store.read hit attr = %q, want true", hit)
	}
	if read.Error != "" {
		t.Fatalf("store.read span unexpectedly errored: %s", read.Error)
	}
	// The delay belongs to the disk span, not the memory lookup.
	if mem := findSpan(exp.Spans, "cache.memory"); mem == nil {
		t.Fatal("no cache.memory span in trace")
	} else if mem.DurUS > 50_000 {
		t.Fatalf("cache.memory span absorbed the delay (%.0fus)", mem.DurUS)
	}
}

// An injected store.read error must surface on the store.read span (error
// attribution) while the request falls through to a full search and still
// answers 200.
func TestTraceChaosDiskErrorAttribution(t *testing.T) {
	dir := t.TempDir()

	sA, tsA, _ := storeTestServer(t, Config{WatchdogTimeout: -1}, dir, true, "")
	resp, data := post(t, tsA.URL+"/v1/plan", searchPlanBody)
	planSource(t, resp, data)
	sA.fills.Wait()

	cfg := Config{
		WatchdogTimeout: -1,
		Tracer:          obs.NewTracer(obs.TracerConfig{Seed: 2}),
	}
	_, tsB, _ := storeTestServer(t, cfg, dir, true, "store.read=error@limit=1")
	resp, data = post(t, tsB.URL+"/v1/plan", searchPlanBody)
	if _, source := planSource(t, resp, data); source != sourceSearch {
		t.Fatalf("served from %q, want %q (disk read was fault-injected)", source, sourceSearch)
	}
	traceID := resp.Header.Get("X-Trace-Id")
	exp := fetchTrace(t, tsB.URL, traceID)

	read := findSpan(exp.Spans, "store.read")
	if read == nil {
		t.Fatalf("no store.read span in trace %s", traceID)
	}
	if read.Error == "" {
		t.Fatal("store.read span carries no error despite injected fault")
	}
	if !strings.Contains(read.Error, "chaos") {
		t.Fatalf("store.read span error %q does not name the injected fault", read.Error)
	}
	if hit, _ := spanAttr(read, "hit"); hit == "true" {
		t.Fatal("store.read reported a hit through an injected read error")
	}
	// The request recovered by searching: the search spans must be siblings
	// in the same trace.
	if findSpan(exp.Spans, "tileseek.search") == nil {
		t.Fatal("no tileseek.search span — fall-through to search is missing from the trace")
	}
	if findSpan(exp.Spans, "plan.lead") == nil {
		t.Fatal("no plan.lead span for the singleflight leader")
	}
}

// With no tracer configured, the admission fast path — taken by every plan
// request — must not allocate for tracing.
func TestUntracedAdmissionZeroAllocChaosBaseline(t *testing.T) {
	a := newAdmission(1, 4, nil)
	ctx := context.Background()
	n := testing.AllocsPerRun(200, func() {
		if err := a.acquire(ctx); err != nil {
			t.Fatal(err)
		}
		a.release()
	})
	if n != 0 {
		t.Fatalf("untraced acquire/release allocates %g per op, want 0", n)
	}
}
