package serve

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"github.com/fusedmindlab/transfusion"
	"github.com/fusedmindlab/transfusion/internal/faults"
	"github.com/fusedmindlab/transfusion/internal/obs"
)

// planCache is the serving layer's LRU result cache with singleflight
// admission: concurrent requests for the same canonical RunSpec key coalesce
// onto one evaluation, and completed results are retained up to the
// configured entry count. It extends the PR 3 singleflight pattern (TileSeek
// objective memo, experiments Runner) to the API layer, with one serving
// twist: the evaluation runs under a server-owned context, so joiners that
// hang up cannot kill the leader, and a completed result lands in the cache
// even when every requester has gone away — the retry then hits.
type planCache struct {
	mu    sync.Mutex
	max   int
	lru   *list.List               // front = most recently used
	byKey map[string]*list.Element // key -> element whose Value is *cacheEntry
	calls map[string]*planCall     // in-flight evaluations by key

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	inflightG *obs.Gauge
	sizeG     *obs.Gauge
}

// cacheEntry is one completed, cached result.
type cacheEntry struct {
	key string
	res transfusion.RunResult
}

// planCall is one in-flight evaluation joiners wait on; res/err are immutable
// after done closes.
type planCall struct {
	done chan struct{}
	res  transfusion.RunResult
	err  error
	// complete is set once eval has returned; observed false in the deferred
	// cleanup it means eval panicked out of the call.
	complete bool
	// leaderTrace is the trace id of the leader's request ("" when the
	// leader is untraced); joiners stamp it on their "plan.join" span so the
	// trace that actually ran the evaluation is one click away.
	leaderTrace string
}

func newPlanCache(max int, reg *obs.Registry) *planCache {
	return &planCache{
		max:   max,
		lru:   list.New(),
		byKey: make(map[string]*list.Element),
		calls: make(map[string]*planCall),

		hits:      reg.Counter("serve.cache_hits"),
		misses:    reg.Counter("serve.cache_misses"),
		evictions: reg.Counter("serve.cache_evictions"),
		inflightG: reg.Gauge("serve.cache_inflight"),
		sizeG:     reg.Gauge("serve.cache_size"),
	}
}

// Do returns the cached result for key, joins an in-flight evaluation of it,
// or runs eval as the leader and caches its success. cached reports whether
// the result came from the completed cache (a coalesced join still counts as
// a cache hit in the metrics — the evaluation was shared — but reports
// cached=false because the caller did wait for an evaluation). ctx bounds
// only this caller's wait, never the evaluation itself: eval runs to
// completion under whatever context the leader's closure captured.
//
// retainDegraded controls what happens when eval succeeds but reports a
// Degraded result. For keys whose spec asked for degraded fidelity
// (heuristic-only), Degraded is definitional and the result is retained like
// any other. For full-fidelity keys the degradation arose inside the
// evaluation — a transient search fault — and retaining it would pin a
// pessimistic plan under the clean key for the cache's lifetime: the caller
// and its coalesced joiners still get the degraded answer (they were
// concurrent with the fault), but the entry is not kept, so the next request
// re-evaluates.
func (c *planCache) Do(ctx context.Context, key string, retainDegraded bool, eval func() (transfusion.RunResult, error)) (res transfusion.RunResult, cached bool, err error) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		res = el.Value.(*cacheEntry).res
		c.mu.Unlock()
		c.hits.Inc()
		return res, true, nil
	}
	if call, ok := c.calls[key]; ok {
		c.mu.Unlock()
		// A leader is already evaluating this key: joining shares its work,
		// which is a hit for capacity purposes. The wait is a span of its
		// own — a traced joiner shows up as "plan.join" pointing at the
		// leader's trace, not as an unexplained gap.
		c.hits.Inc()
		_, joinSp := obs.StartSpan(ctx, "plan.join")
		if joinSp != nil && call.leaderTrace != "" {
			joinSp.SetAttr("leader_trace", call.leaderTrace)
		}
		select {
		case <-call.done:
			joinSp.EndErr(call.err)
			return call.res, false, call.err
		case <-ctx.Done():
			err := faults.Canceled(ctx)
			joinSp.EndErr(err)
			return transfusion.RunResult{}, false, err
		}
	}
	call := &planCall{done: make(chan struct{}), leaderTrace: obs.SpanFromContext(ctx).TraceID()}
	c.calls[key] = call
	c.mu.Unlock()
	c.misses.Inc()
	c.inflightG.Add(1)

	defer func() {
		// Unblock joiners even if eval panics (the panic keeps propagating to
		// the API recover boundary); joiners of a panicked evaluation get the
		// same internal-error classification (500) the leader's recover
		// boundary reports, never a zero result or a caller-fault 400.
		if !call.complete {
			call.err = &faults.InternalError{Panic: fmt.Sprintf("serve: evaluation of %s aborted", key)}
		}
		c.inflightG.Add(-1)
		close(call.done)
		c.mu.Lock()
		delete(c.calls, key)
		c.mu.Unlock()
	}()

	call.res, call.err = eval()
	call.complete = true
	if call.err != nil {
		return transfusion.RunResult{}, false, call.err
	}
	if call.res.Degraded && !retainDegraded {
		return call.res, false, nil
	}
	c.mu.Lock()
	c.insert(key, call.res)
	c.mu.Unlock()
	return call.res, false, nil
}

// insert adds a completed result, evicting from the LRU tail. Caller holds mu.
func (c *planCache) insert(key string, res transfusion.RunResult) {
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		el.Value.(*cacheEntry).res = res
		return
	}
	c.byKey[key] = c.lru.PushFront(&cacheEntry{key: key, res: res})
	for c.max > 0 && c.lru.Len() > c.max {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		delete(c.byKey, tail.Value.(*cacheEntry).key)
		c.evictions.Inc()
	}
	c.sizeG.Set(float64(c.lru.Len()))
}

// Put inserts a completed result directly — the warm-restart seed and the
// disk-tier promotion path. It accounts no hit or miss: nobody requested the
// key on this call.
func (c *planCache) Put(key string, res transfusion.RunResult) {
	c.mu.Lock()
	c.insert(key, res)
	c.mu.Unlock()
}

// Get peeks the completed cache for key without joining or starting an
// evaluation. The serving layer peeks the full-fidelity key before applying
// the degradation ladder: a complete cached answer is better than a freshly
// computed degraded one at any load level.
func (c *planCache) Get(key string) (transfusion.RunResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		// Not counted as a miss: the caller falls through to Do, which
		// accounts the request exactly once.
		return transfusion.RunResult{}, false
	}
	c.lru.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*cacheEntry).res, true
}

// Len returns the number of completed entries currently cached.
func (c *planCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
