package serve

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/fusedmindlab/transfusion/internal/chaos"
	"github.com/fusedmindlab/transfusion/internal/obs"
)

// The chaos suite runs the real daemon under seeded fault schedules and holds
// it to the serving invariants:
//
//   - every request terminates with a status from the faults mapping
//     (200/400/422/500/503/504) — never a hung connection or a torn reply;
//   - the sum of the serve.degraded.* counters equals the number of
//     responses that carried a Served-Degraded header;
//   - the plan cache is never poisoned: once a schedule's fault budget is
//     exhausted, every spec evaluates to exactly the result a fault-free
//     server produces;
//   - no goroutine leaks (per-schedule below, and package-wide via
//     TestMain's chaos.LeakCheckMain).

// chaosTestServer builds a Server whose base context carries a fault injector
// parsed from spec (seeded, so every run replays the same schedule).
func chaosTestServer(t *testing.T, cfg Config, spec string, seed uint64) (*Server, *httptest.Server, *obs.Registry, *chaos.Injector) {
	t.Helper()
	inj, err := chaos.Parse(spec, seed)
	if err != nil {
		t.Fatalf("chaos.Parse(%q): %v", spec, err)
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = 1
	}
	reg := obs.NewRegistry()
	s := New(cfg, reg, chaos.With(context.Background(), inj))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, reg, inj
}

// degradedCounterSum adds up every serve.degraded.* counter.
func degradedCounterSum(reg *obs.Registry) int64 {
	var sum int64
	for _, mode := range []string{degradeBudget, degradeHeuristic, degradeWatchdog, degradeSearch} {
		sum += reg.Counter("serve.degraded." + mode).Value()
	}
	return sum
}

// validStatuses is the complete set of statuses the faults mapping can
// produce for /v1/plan.
var validStatuses = map[int]bool{
	http.StatusOK:                  true,
	http.StatusBadRequest:          true,
	http.StatusUnprocessableEntity: true,
	http.StatusInternalServerError: true,
	http.StatusServiceUnavailable:  true,
	http.StatusGatewayTimeout:      true,
}

// chaosSpecs is the workload mix each schedule drives: distinct cache keys,
// cheap evaluations, one search-backed spec.
var chaosSpecs = []string{
	`{"arch":"edge","model":"bert","seq_len":1024,"system":"unfused"}`,
	`{"arch":"edge","model":"bert","seq_len":2048,"system":"unfused"}`,
	`{"arch":"edge","model":"bert","seq_len":1024,"system":"flat"}`,
	`{"arch":"edge","model":"bert","seq_len":1024,"system":"transfusion","search_budget":4}`,
}

func TestChaosSchedules(t *testing.T) {
	schedules := []struct {
		name string
		spec string
		site string
		cfg  Config
	}{
		{
			// Injected leader latency with a short watchdog: stuck
			// evaluations come back as degraded heuristic answers, the
			// stalled leaders finish in the background.
			name: "latency",
			spec: "serve.cache.leader=latency:300ms@every=2@limit=4",
			site: chaos.SiteServeCacheLeader,
			cfg:  Config{RequestTimeout: 5 * time.Second, WatchdogTimeout: 40 * time.Millisecond},
		},
		{
			// Injected leader panics must surface as mapped 500s — for the
			// leader and every coalesced joiner — never kill the process or
			// tear the connection.
			name: "panic",
			spec: "serve.cache.leader=panic@every=3@limit=5",
			site: chaos.SiteServeCacheLeader,
			cfg:  Config{RequestTimeout: 5 * time.Second, WatchdogTimeout: -1},
		},
		{
			// Injected cancellation maps to 504 through the ErrCanceled
			// classification.
			name: "cancel",
			spec: "serve.cache.leader=cancel@every=3@limit=5",
			site: chaos.SiteServeCacheLeader,
			cfg:  Config{RequestTimeout: 5 * time.Second, WatchdogTimeout: -1},
		},
		{
			// Injected errors inside the tile search: the pipeline degrades
			// to the heuristic tile, so these surface as 200s with a
			// Served-Degraded: search header, not as errors.
			name: "search-fault",
			spec: "tileseek.rollout=error@every=2@limit=3",
			site: chaos.SiteTileseekRollout,
			cfg:  Config{RequestTimeout: 5 * time.Second, WatchdogTimeout: -1},
		},
	}
	for _, sc := range schedules {
		t.Run(sc.name, func(t *testing.T) {
			_, ts, reg, inj := chaosTestServer(t, sc.cfg, sc.spec, 42)

			type reply struct {
				status   int
				degraded string
			}
			const workers, perWorker = 4, 6
			replies := make([]reply, 0, workers*perWorker)
			var mu sync.Mutex
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						body := chaosSpecs[(w+i)%len(chaosSpecs)]
						resp, err := http.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader(body))
						if err != nil {
							t.Errorf("worker %d request %d: transport error %v", w, i, err)
							return
						}
						var pr PlanResponse
						json.NewDecoder(resp.Body).Decode(&pr) //nolint:errcheck
						resp.Body.Close()
						mu.Lock()
						replies = append(replies, reply{resp.StatusCode, resp.Header.Get("Served-Degraded")})
						mu.Unlock()
					}
				}(w)
			}
			wg.Wait()

			if inj.Fires(sc.site) == 0 {
				t.Fatalf("schedule %q never fired at %s", sc.spec, sc.site)
			}
			degradedResponses := int64(0)
			for i, r := range replies {
				if !validStatuses[r.status] {
					t.Errorf("reply %d: unmapped status %d", i, r.status)
				}
				if r.degraded != "" {
					degradedResponses++
					if r.status != http.StatusOK {
						t.Errorf("reply %d: Served-Degraded %q on a %d", i, r.degraded, r.status)
					}
				}
			}
			if sum := degradedCounterSum(reg); sum != degradedResponses {
				t.Errorf("serve.degraded.* sum = %d, but %d responses carried Served-Degraded", sum, degradedResponses)
			}

			// Poison check: the schedules' fault budgets (@limit) are spent,
			// so every spec now evaluates cleanly — and must match a
			// fault-free server bit for bit, cached entries included.
			cleanReg := obs.NewRegistry()
			clean := New(sc.cfg, cleanReg, context.Background())
			cleanTS := httptest.NewServer(clean.Handler())
			defer cleanTS.Close()
			for _, body := range chaosSpecs {
				got := planResult(t, ts.URL, body)
				want := planResult(t, cleanTS.URL, body)
				if got.Cycles != want.Cycles || got.Tile != want.Tile {
					t.Errorf("post-chaos result for %s diverged from clean server:\ngot  %+v\nwant %+v", body, got, want)
				}
			}

			// Every schedule ends with the evaluator pool quiet: close both
			// servers first (Close is idempotent — the t.Cleanup re-close is a
			// no-op) so only genuinely leaked goroutines remain, with a grace
			// window for leaders still finishing in the background.
			cleanTS.Close()
			ts.Close()
			http.DefaultClient.CloseIdleConnections()
			if err := chaos.CheckLeaks(10 * time.Second); err != nil {
				t.Error(err)
			}
		})
	}
}

// planResult posts body to /v1/plan until it answers a full-fidelity 200 —
// a leftover injected fault surfaces as 5xx, and a watchdog fallback carries
// Served-Degraded while the stuck leader is still finishing; both must clear
// within a few retries once the fault budget is spent.
func planResult(t *testing.T, baseURL, body string) (out struct {
	Cycles float64
	Tile   string
}) {
	t.Helper()
	for attempt := 0; attempt < 20; attempt++ {
		resp, data := post(t, baseURL+"/v1/plan", body)
		if resp.StatusCode == http.StatusOK && resp.Header.Get("Served-Degraded") == "" {
			var pr PlanResponse
			if err := json.Unmarshal(data, &pr); err != nil {
				t.Fatalf("bad 200 body: %v", err)
			}
			out.Cycles = pr.Result.Cycles
			out.Tile = pr.Result.Tile
			return out
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("no full-fidelity 200 for %s after retries", body)
	return out
}

// A drain started while injected faults are in flight still completes: every
// outstanding request terminates with a mapped status and Serve returns
// within the drain timeout.
func TestServeDrainsUnderInjection(t *testing.T) {
	inj, err := chaos.Parse("serve.cache.leader=latency:150ms@every=1", 7)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s := New(Config{
		Parallelism:     1,
		RequestTimeout:  5 * time.Second,
		DrainTimeout:    20 * time.Second,
		WatchdogTimeout: -1,
		ReadyDelay:      300 * time.Millisecond,
	}, reg, chaos.With(context.Background(), inj))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(sctx, l) }()
	url := "http://" + l.Addr().String()

	statuses := make(chan int, len(chaosSpecs))
	for _, body := range chaosSpecs {
		go func(body string) {
			resp, err := http.Post(url+"/v1/plan", "application/json", strings.NewReader(body))
			if err != nil {
				statuses <- -1
				return
			}
			resp.Body.Close()
			statuses <- resp.StatusCode
		}(body)
	}
	time.Sleep(50 * time.Millisecond) // let the requests reach the injected leaders
	cancel()

	// Readiness flips before the listener closes (the ReadyDelay window).
	flipped := false
	for i := 0; i < 20 && !flipped; i++ {
		resp, err := http.Get(url + "/readyz")
		if err != nil {
			break // listener already closed — the flip happened before this
		}
		flipped = resp.StatusCode == http.StatusServiceUnavailable
		resp.Body.Close()
		time.Sleep(10 * time.Millisecond)
	}
	if !flipped {
		t.Error("readyz never reported draining before the listener closed")
	}

	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(25 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
	for range chaosSpecs {
		st := <-statuses
		if st == -1 || !validStatuses[st] {
			t.Errorf("in-flight request under injection finished with %d", st)
		}
	}
}
