package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"testing"
	"time"

	"github.com/fusedmindlab/transfusion/internal/chaos"
	"github.com/fusedmindlab/transfusion/internal/faults"
	"github.com/fusedmindlab/transfusion/internal/obs"

	transfusion "github.com/fusedmindlab/transfusion"
)

const searchPlanBody = `{"arch":"edge","model":"bert","seq_len":1024,"system":"transfusion","search_budget":8}`

// The ladder unit: queue pressure maps onto fidelity tiers, and degraded specs
// always resolve to their own cache keys.
func TestApplyLadderTiers(t *testing.T) {
	s, _, _ := newTestServer(t, Config{MaxQueue: 8, WatchdogTimeout: -1})
	base := transfusion.RunSpec{Arch: "edge", Model: "bert", SeqLen: 1024, System: "transfusion", SearchBudget: 64}

	s.adm.queued.Store(0)
	if _, mode := s.applyLadder(base); mode != "" {
		t.Fatalf("unloaded ladder degraded with mode %q", mode)
	}

	// Half-full queue: tier 1 caps the search budget...
	s.adm.queued.Store(4)
	spec, mode := s.applyLadder(base)
	if mode != degradeBudget || spec.SearchBudget != s.cfg.ReducedBudget {
		t.Fatalf("tier 1 = (budget %d, mode %q), want (%d, %q)", spec.SearchBudget, mode, s.cfg.ReducedBudget, degradeBudget)
	}
	if spec.CanonicalKey() == base.CanonicalKey() {
		t.Fatal("budget-degraded spec shares the full-fidelity cache key")
	}
	// ...but never inflates a request that already asked for less.
	small := base
	small.SearchBudget = 4
	if got, mode := s.applyLadder(small); mode != "" || got.SearchBudget != 4 {
		t.Fatalf("tier 1 rewrote a below-cap budget: (%d, %q)", got.SearchBudget, mode)
	}

	// Full queue: tier 2 drops the search entirely.
	s.adm.queued.Store(8)
	spec, mode = s.applyLadder(base)
	if mode != degradeHeuristic || !spec.HeuristicOnly {
		t.Fatalf("tier 2 = (heuristic %t, mode %q), want (true, %q)", spec.HeuristicOnly, mode, degradeHeuristic)
	}
	if spec.CanonicalKey() == base.CanonicalKey() {
		t.Fatal("heuristic-degraded spec shares the full-fidelity cache key")
	}

	// A caller that asked for heuristic-only is already at the bottom; the
	// ladder has nothing to take away and must not claim the degradation.
	own := base
	own.HeuristicOnly = true
	if _, mode := s.applyLadder(own); mode != "" {
		t.Fatalf("caller-chosen heuristic spec reported ladder mode %q", mode)
	}
}

// End-to-end tier 2: a saturated queue turns a search request into a
// heuristic-only answer — 200, Served-Degraded: heuristic, counter bumped —
// and once pressure clears the same request gets its full-fidelity search.
func TestPlanDegradesHeuristicUnderPressure(t *testing.T) {
	s, ts, reg := newTestServer(t, Config{MaxQueue: 8, WatchdogTimeout: -1})

	s.adm.queued.Store(8)
	resp, data := post(t, ts.URL+"/v1/plan", searchPlanBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded request: status %d: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("Served-Degraded"); got != degradeHeuristic {
		t.Fatalf("Served-Degraded = %q, want %q", got, degradeHeuristic)
	}
	var pr PlanResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	if !pr.Result.Degraded || pr.Result.DegradedReason == "" {
		t.Fatalf("degraded response body not marked: %+v", pr.Result)
	}
	if pr.Result.TileSearchEvals != 0 {
		t.Fatalf("heuristic-only answer ran %d search evals", pr.Result.TileSearchEvals)
	}
	if got := reg.Counter("serve.degraded." + degradeHeuristic).Value(); got != 1 {
		t.Fatalf("serve.degraded.heuristic = %d, want 1", got)
	}

	// Pressure gone: the same spec now gets the real search, not the cached
	// degraded entry (their canonical keys differ).
	s.adm.queued.Store(0)
	resp, data = post(t, ts.URL+"/v1/plan", searchPlanBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered request: status %d: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("Served-Degraded"); got != "" {
		t.Fatalf("unloaded server served degraded: %q", got)
	}
	var full PlanResponse
	if err := json.Unmarshal(data, &full); err != nil {
		t.Fatal(err)
	}
	if full.Cached {
		t.Fatal("full-fidelity request was served the degraded cache entry")
	}
	if full.Result.Degraded || full.Result.TileSearchEvals == 0 {
		t.Fatalf("recovered answer still degraded: %+v", full.Result)
	}
}

// End-to-end tier 1: a half-full queue trims the search budget but still
// searches; the response is marked with the budget mode.
func TestPlanDegradesBudgetUnderPressure(t *testing.T) {
	s, ts, reg := newTestServer(t, Config{MaxQueue: 8, WatchdogTimeout: -1})
	s.adm.queued.Store(4)
	body := `{"arch":"edge","model":"bert","seq_len":1024,"system":"transfusion","search_budget":64}`
	resp, data := post(t, ts.URL+"/v1/plan", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("Served-Degraded"); got != degradeBudget {
		t.Fatalf("Served-Degraded = %q, want %q", got, degradeBudget)
	}
	var pr PlanResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	if !pr.Result.Degraded {
		t.Fatalf("budget-degraded response body not marked: %+v", pr.Result)
	}
	if pr.Result.TileSearchEvals == 0 {
		t.Fatal("budget tier skipped the search entirely")
	}
	if got := reg.Counter("serve.degraded." + degradeBudget).Value(); got != 1 {
		t.Fatalf("serve.degraded.budget = %d, want 1", got)
	}
}

// The watchdog converts a stuck evaluation into a degraded heuristic answer
// instead of letting the caller ride into a 504. The stuck leader finishes in
// the background under the request timeout.
func TestWatchdogRescuesStuckEvaluation(t *testing.T) {
	_, ts, reg, inj := chaosTestServer(t, Config{
		RequestTimeout:  10 * time.Second,
		WatchdogTimeout: 30 * time.Millisecond,
	}, "serve.cache.leader=latency:2s@limit=1", 11)

	start := time.Now()
	resp, data := post(t, ts.URL+"/v1/plan", fastPlanBody)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("Served-Degraded"); got != degradeWatchdog {
		t.Fatalf("Served-Degraded = %q, want %q", got, degradeWatchdog)
	}
	if elapsed >= 2*time.Second {
		t.Fatalf("watchdog answer took %v — it waited out the injected stall", elapsed)
	}
	var pr PlanResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	if !pr.Result.Degraded {
		t.Fatalf("watchdog response body not marked degraded: %+v", pr.Result)
	}
	if got := reg.Counter("serve.watchdog_fires").Value(); got != 1 {
		t.Fatalf("serve.watchdog_fires = %d, want 1", got)
	}
	if got := reg.Counter("serve.degraded." + degradeWatchdog).Value(); got != 1 {
		t.Fatalf("serve.degraded.watchdog = %d, want 1", got)
	}
	if inj.Fires(chaos.SiteServeCacheLeader) != 1 {
		t.Fatalf("injected stall fired %d times, want 1", inj.Fires(chaos.SiteServeCacheLeader))
	}
}

// The server-side deadline bounds the queue wait: with the pool wedged and no
// watchdog, a request times out with a mapped 504 instead of hanging.
func TestRequestDeadlineBoundsQueueWait(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{
		MaxConcurrent:   1,
		MaxQueue:        8,
		RequestTimeout:  100 * time.Millisecond,
		WatchdogTimeout: -1,
	})
	s.adm.sem <- struct{}{} // wedge the only slot
	defer func() { <-s.adm.sem }()

	start := time.Now()
	resp, data := post(t, ts.URL+"/v1/plan", fastPlanBody)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v, deadline did not bound the queue wait", elapsed)
	}
}

// A request whose context is already dead never claims an admission slot, even
// when one is free — the slot must stay available for live callers.
func TestCanceledRequestNeverAcquiresSlot(t *testing.T) {
	a := newAdmission(1, 4, obs.NewRegistry())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := a.acquire(ctx); !errors.Is(err, faults.ErrCanceled) {
		t.Fatalf("acquire on dead context = %v, want ErrCanceled", err)
	}
	if len(a.sem) != 0 {
		t.Fatalf("dead request left %d slot(s) claimed", len(a.sem))
	}

	// Regression for the queued path: injected latency holds the caller at
	// the admission gate, cancellation lands mid-wait, and no slot may leak.
	inj, err := chaos.Parse("serve.admission=latency:30s@every=1", 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel = context.WithCancel(chaos.With(context.Background(), inj))
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if err := a.acquire(ctx); !errors.Is(err, faults.ErrCanceled) {
		t.Fatalf("acquire canceled mid-injection = %v, want ErrCanceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("canceled acquire took %v — injected latency ignored the cancellation", elapsed)
	}
	if len(a.sem) != 0 {
		t.Fatalf("canceled request left %d slot(s) claimed", len(a.sem))
	}
}

// Retry-After is computed, not constant: queue-drain time at the EWMA
// service rate, and the EWMA is exported as serve.plan_latency_ewma.
func TestRetryAfterComputedFromLoad(t *testing.T) {
	s, ts, reg := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: -1, WatchdogTimeout: -1})
	s.observeLatency(2500 * time.Millisecond)
	if got := reg.Gauge("serve.plan_latency_ewma").Value(); got != 2500 {
		t.Fatalf("serve.plan_latency_ewma = %v, want 2500", got)
	}

	s.adm.sem <- struct{}{} // busy pool + queueing disabled → immediate shed
	defer func() { <-s.adm.sem }()
	resp, data := post(t, ts.URL+"/v1/plan", fastPlanBody)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	// One caller draining through one slot at 2.5s each: ceil(2.5) = 3.
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want %q", got, "3")
	}
}
