package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/fusedmindlab/transfusion"
	"github.com/fusedmindlab/transfusion/internal/faults"
	"github.com/fusedmindlab/transfusion/internal/obs"
)

func result(system string, cycles float64) transfusion.RunResult {
	return transfusion.RunResult{System: system, Cycles: cycles}
}

func TestPlanCacheHitMissAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	c := newPlanCache(8, reg)
	evals := 0
	eval := func() (transfusion.RunResult, error) {
		evals++
		return result("transfusion", 42), nil
	}
	res, cached, err := c.Do(context.Background(), "k1", true, eval)
	if err != nil || cached || res.Cycles != 42 {
		t.Fatalf("first Do = (%v, %t, %v), want fresh result", res, cached, err)
	}
	res, cached, err = c.Do(context.Background(), "k1", true, eval)
	if err != nil || !cached || res.Cycles != 42 {
		t.Fatalf("second Do = (%v, %t, %v), want cached result", res, cached, err)
	}
	if evals != 1 {
		t.Fatalf("evaluations = %d, want 1", evals)
	}
	if h, m := reg.Counter("serve.cache_hits").Value(), reg.Counter("serve.cache_misses").Value(); h != 1 || m != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", h, m)
	}
}

// Concurrent identical requests coalesce onto one evaluation: the leader
// blocks on a gate while the joiners pile up, and everyone gets the same
// result from a single eval call.
func TestPlanCacheCoalescesConcurrentIdenticalRequests(t *testing.T) {
	reg := obs.NewRegistry()
	c := newPlanCache(8, reg)
	gate := make(chan struct{})
	started := make(chan struct{})
	var evals int32
	eval := func() (transfusion.RunResult, error) {
		close(started)
		<-gate
		evals++
		return result("transfusion", 7), nil
	}
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(context.Background(), "k", true, eval)
		leaderDone <- err
	}()
	<-started

	const joiners = 8
	var wg sync.WaitGroup
	errs := make([]error, joiners)
	ress := make([]transfusion.RunResult, joiners)
	for i := 0; i < joiners; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ress[i], _, errs[i] = c.Do(context.Background(), "k", true, func() (transfusion.RunResult, error) {
				t.Error("joiner ran its own evaluation")
				return transfusion.RunResult{}, nil
			})
		}(i)
	}
	// Joiners must be registered as waiters before the gate opens; poll the
	// hit counter (joins count as hits) rather than sleeping blind.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter("serve.cache_hits").Value() < joiners && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	if err := <-leaderDone; err != nil {
		t.Fatal(err)
	}
	for i := range errs {
		if errs[i] != nil || ress[i].Cycles != 7 {
			t.Fatalf("joiner %d = (%v, %v)", i, ress[i], errs[i])
		}
	}
	if evals != 1 {
		t.Fatalf("evaluations = %d, want 1 (coalesced)", evals)
	}
	if m := reg.Counter("serve.cache_misses").Value(); m != 1 {
		t.Fatalf("misses = %d, want 1", m)
	}
}

func TestPlanCacheErrorsAreNotCached(t *testing.T) {
	c := newPlanCache(8, obs.NewRegistry())
	boom := errors.New("boom")
	if _, _, err := c.Do(context.Background(), "k", true, func() (transfusion.RunResult, error) {
		return transfusion.RunResult{}, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failure must not poison the key: the next call re-evaluates.
	res, cached, err := c.Do(context.Background(), "k", true, func() (transfusion.RunResult, error) {
		return result("transfusion", 1), nil
	})
	if err != nil || cached || res.Cycles != 1 {
		t.Fatalf("retry = (%v, %t, %v), want fresh success", res, cached, err)
	}
	if c.Len() != 1 {
		t.Fatalf("cache len = %d, want 1", c.Len())
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	reg := obs.NewRegistry()
	c := newPlanCache(2, reg)
	mk := func(k string) {
		if _, _, err := c.Do(context.Background(), k, true, func() (transfusion.RunResult, error) {
			return result(k, 1), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	mk("a")
	mk("b")
	mk("a") // refresh a: now b is least recently used
	mk("c") // evicts b
	if c.Len() != 2 {
		t.Fatalf("cache len = %d, want 2", c.Len())
	}
	misses := reg.Counter("serve.cache_misses").Value()
	mk("a") // refreshed above, so it survived the eviction
	if got := reg.Counter("serve.cache_misses").Value(); got != misses {
		t.Fatalf("a was evicted: misses %d -> %d", misses, got)
	}
	mk("b") // must re-evaluate
	if got := reg.Counter("serve.cache_misses").Value(); got != misses+1 {
		t.Fatalf("b was not evicted: misses %d -> %d", misses, got)
	}
}

// A joiner's context expiring releases the joiner with ErrCanceled while the
// leader's evaluation keeps running and still lands in the cache.
func TestPlanCacheJoinerHonoursItsContext(t *testing.T) {
	c := newPlanCache(8, obs.NewRegistry())
	gate := make(chan struct{})
	started := make(chan struct{})
	go c.Do(context.Background(), "k", true, func() (transfusion.RunResult, error) { //nolint:errcheck
		close(started)
		<-gate
		return result("transfusion", 9), nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.Do(ctx, "k", true, nil); !errors.Is(err, faults.ErrCanceled) {
		t.Fatalf("joiner err = %v, want ErrCanceled", err)
	}
	close(gate)
	// The leader's result must still arrive in the cache.
	deadline := time.Now().Add(5 * time.Second)
	for c.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	res, cached, err := c.Do(context.Background(), "k", true, nil)
	if err != nil || !cached || res.Cycles != 9 {
		t.Fatalf("post-cancel Do = (%v, %t, %v), want cached 9", res, cached, err)
	}
}

// A panicking evaluation unblocks joiners with an error instead of stranding
// them, and the panic itself keeps propagating to the leader.
func TestPlanCachePanicUnblocksJoiners(t *testing.T) {
	c := newPlanCache(8, obs.NewRegistry())
	started := make(chan struct{})
	joinErr := make(chan error, 1)
	go func() {
		defer func() {
			if recover() == nil {
				t.Error("leader panic did not propagate")
			}
		}()
		c.Do(context.Background(), "k", true, func() (transfusion.RunResult, error) { //nolint:errcheck
			close(started)
			// Give the joiner a moment to register before dying.
			time.Sleep(10 * time.Millisecond)
			panic("objective bug")
		})
	}()
	<-started
	go func() {
		_, _, err := c.Do(context.Background(), "k", true, nil)
		joinErr <- err
	}()
	select {
	case err := <-joinErr:
		if err == nil {
			t.Fatal("joiner got nil error from a panicked evaluation")
		}
		// A panicked evaluation is a server-side failure: joiners must see the
		// same internal-error classification (500) the leader's recover
		// boundary produces, never a caller-fault 400.
		var ie *faults.InternalError
		if !errors.As(err, &ie) {
			t.Fatalf("joiner error %v is not *faults.InternalError", err)
		}
		if got := faults.HTTPStatus(err); got != 500 {
			t.Fatalf("joiner error maps to HTTP %d, want 500", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("joiner deadlocked on a panicked evaluation")
	}
}

func TestPlanCacheDistinctKeysDoNotCoalesce(t *testing.T) {
	reg := obs.NewRegistry()
	c := newPlanCache(8, reg)
	for i := 0; i < 4; i++ {
		k := fmt.Sprintf("k%d", i)
		if _, _, err := c.Do(context.Background(), k, true, func() (transfusion.RunResult, error) {
			return result(k, float64(i)), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if m := reg.Counter("serve.cache_misses").Value(); m != 4 {
		t.Fatalf("misses = %d, want 4", m)
	}
	if h := reg.Counter("serve.cache_hits").Value(); h != 0 {
		t.Fatalf("hits = %d, want 0", h)
	}
}

// An internally degraded result is shared with its requester but not retained
// under a full-fidelity key — the next request must re-evaluate. Keys whose
// spec asked for degraded fidelity retain degraded results like any other.
func TestPlanCacheDoesNotRetainDegradedResults(t *testing.T) {
	c := newPlanCache(8, obs.NewRegistry())
	degraded := result("transfusion", 1)
	degraded.Degraded = true
	degraded.DegradedReason = "tile search faulted"

	evals := 0
	eval := func() (transfusion.RunResult, error) {
		evals++
		return degraded, nil
	}
	res, cached, err := c.Do(context.Background(), "full", false, eval)
	if err != nil || cached || !res.Degraded {
		t.Fatalf("first Do = (%+v, %t, %v)", res, cached, err)
	}
	if _, ok := c.Get("full"); ok {
		t.Fatal("degraded result was retained under the full-fidelity key")
	}
	if _, cached, err = c.Do(context.Background(), "full", false, eval); err != nil || cached {
		t.Fatalf("second Do did not re-evaluate: cached=%t err=%v", cached, err)
	}
	if evals != 2 {
		t.Fatalf("evals = %d, want 2 (no retention between them)", evals)
	}

	if _, _, err := c.Do(context.Background(), "full|heur=true", true, eval); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("full|heur=true"); !ok {
		t.Fatal("definitionally degraded result was not retained under its own key")
	}
}
