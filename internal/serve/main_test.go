package serve

import (
	"os"
	"testing"
	"time"

	"github.com/fusedmindlab/transfusion/internal/chaos"
)

// TestMain wraps the whole package in the goroutine-leak checker: no test —
// chaos schedules, watchdog rescues, drains under injection — may leave an
// evaluator goroutine behind. The grace window covers detached cache leaders
// still winding down under their (short, test-configured) request timeouts.
func TestMain(m *testing.M) {
	os.Exit(chaos.LeakCheckMain(m, 15*time.Second))
}
