package serve

import (
	"context"
	"strings"
	"testing"
)

const (
	warmSeedBody      = `{"arch":"edge","model":"bert","seq_len":1024,"system":"transfusion","search_budget":8}`
	warmNeighbourBody = `{"arch":"edge","model":"bert","seq_len":2048,"system":"transfusion","search_budget":8}`
	warmFarBody       = `{"arch":"edge","model":"bert","seq_len":4096,"system":"transfusion","search_budget":8}`
)

// A near-miss request — same plan family, neighbouring seq_len — must be
// answered by the warm-search tier: the stored neighbour seeds the search and
// the response is labelled warm-search, never a silent cold search.
func TestNearMissServedByWarmSearch(t *testing.T) {
	dir := t.TempDir()
	sA, tsA, _ := storeTestServer(t, Config{WatchdogTimeout: -1}, dir, true, "")
	resp, data := post(t, tsA.URL+"/v1/plan", warmSeedBody)
	planSource(t, resp, data)
	sA.fills.Wait()

	sB, tsB, regB := storeTestServer(t, Config{WatchdogTimeout: -1}, dir, true, "")
	resp, data = post(t, tsB.URL+"/v1/plan", warmNeighbourBody)
	pr, source := planSource(t, resp, data)
	if source != sourceWarm {
		t.Fatalf("near-miss served from %q, want %q", source, sourceWarm)
	}
	if pr.Cached {
		t.Fatal("warm-search answer reported as cached")
	}
	if pr.Result.Degraded {
		t.Fatalf("warm-search answer degraded: %+v", pr.Result)
	}
	if got := regB.Counter("serve.warm_hits").Value(); got != 1 {
		t.Fatalf("serve.warm_hits = %d after one warm-search answer, want 1", got)
	}
	// The warm answer back-fills the store like any search result.
	sB.fills.Wait()
	if n := sB.store.Len(); n != 2 {
		t.Fatalf("store holds %d records after the warm answer, want 2", n)
	}

	// Repeating the request must now hit the memory tier, not re-search.
	resp, data = post(t, tsB.URL+"/v1/plan", warmNeighbourBody)
	if _, source = planSource(t, resp, data); source != sourceMemory {
		t.Fatalf("repeat served from %q, want %q", source, sourceMemory)
	}
	if got := regB.Counter("serve.warm_hits").Value(); got != 1 {
		t.Fatalf("serve.warm_hits moved to %d on a cache hit", got)
	}
}

// An exact stored hit must be served from the disk tier; the warm-search tier
// only fires on misses, so its counter stays at zero.
func TestExactHitPrefersDiskOverWarm(t *testing.T) {
	dir := t.TempDir()
	sA, tsA, _ := storeTestServer(t, Config{WatchdogTimeout: -1}, dir, true, "")
	resp, data := post(t, tsA.URL+"/v1/plan", warmSeedBody)
	planSource(t, resp, data)
	sA.fills.Wait()

	_, tsB, regB := storeTestServer(t, Config{WatchdogTimeout: -1}, dir, true, "")
	resp, data = post(t, tsB.URL+"/v1/plan", warmSeedBody)
	if _, source := planSource(t, resp, data); source != sourceDisk {
		t.Fatalf("exact hit served from %q, want %q", source, sourceDisk)
	}
	if got := regB.Counter("serve.warm_hits").Value(); got != 0 {
		t.Fatalf("serve.warm_hits = %d on an exact hit, want 0", got)
	}
}

// Degraded answers are never persisted, so they can never become warm hints:
// after a degraded evaluation the next near-miss request cold-searches.
func TestDegradedNeverSeedsWarmSearch(t *testing.T) {
	dir := t.TempDir()
	s, ts, reg := storeTestServer(t, Config{MaxQueue: 8, WatchdogTimeout: -1}, dir, true, "")

	s.adm.queued.Store(8) // tier 2: heuristic only
	resp, data := post(t, ts.URL+"/v1/plan", warmSeedBody)
	pr, _ := planSource(t, resp, data)
	if !pr.Result.Degraded {
		t.Fatalf("saturated server served undegraded: %+v", pr.Result)
	}
	s.adm.queued.Store(0)
	s.fills.Wait()
	if n := s.store.Len(); n != 0 {
		t.Fatalf("store holds %d records after a degraded answer, want 0", n)
	}

	resp, data = post(t, ts.URL+"/v1/plan", warmNeighbourBody)
	if _, source := planSource(t, resp, data); source != sourceSearch {
		t.Fatalf("near-miss after degraded answer served from %q, want %q", source, sourceSearch)
	}
	if got := reg.Counter("serve.warm_hits").Value(); got != 0 {
		t.Fatalf("serve.warm_hits = %d with an empty store, want 0", got)
	}
}

// WarmGrid fills the power-of-two gaps between stored seq_lens off the
// serving path; the filled plans are immediately servable from memory.
func TestWarmGridFillsSeqLenGaps(t *testing.T) {
	dir := t.TempDir()
	s, ts, reg := storeTestServer(t, Config{WatchdogTimeout: -1}, dir, true, "")
	for _, body := range []string{warmSeedBody, warmFarBody} {
		resp, data := post(t, ts.URL+"/v1/plan", body)
		planSource(t, resp, data)
	}
	s.fills.Wait()
	if n := s.store.Len(); n != 2 {
		t.Fatalf("store holds %d records before the grid walk, want 2", n)
	}

	n := s.WarmGrid(context.Background(), 0)
	if n != 1 {
		t.Fatalf("WarmGrid filled %d plans between 1024 and 4096, want 1 (seq 2048)", n)
	}
	if got := reg.Counter("serve.warm_grid_plans").Value(); got != 1 {
		t.Fatalf("serve.warm_grid_plans = %d, want 1", got)
	}
	if got := s.store.Len(); got != 3 {
		t.Fatalf("store holds %d records after the grid walk, want 3", got)
	}
	// A second walk finds no gaps left.
	if again := s.WarmGrid(context.Background(), 0); again != 0 {
		t.Fatalf("repeat WarmGrid filled %d plans, want 0", again)
	}

	resp, data := post(t, ts.URL+"/v1/plan", warmNeighbourBody)
	if _, source := planSource(t, resp, data); source != sourceMemory {
		t.Fatalf("grid-filled spec served from %q, want %q", source, sourceMemory)
	}
}

// The warm-search source label reaches clients through both the JSON body and
// the X-Plan-Source header (planSource asserts their agreement); sanity-check
// the literal since CI greps for it.
func TestWarmSourceLabel(t *testing.T) {
	if sourceWarm != "warm-search" || !strings.HasPrefix(sourceWarm, "warm") {
		t.Fatalf("sourceWarm = %q", sourceWarm)
	}
}
