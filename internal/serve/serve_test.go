package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/fusedmindlab/transfusion/internal/obs"
)

// fastPlanBody is a spec cheap enough to evaluate in every test: the unfused
// baseline needs no tile search at all.
const fastPlanBody = `{"arch":"edge","model":"bert","seq_len":1024,"system":"unfused"}`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *obs.Registry) {
	t.Helper()
	if cfg.Parallelism == 0 {
		cfg.Parallelism = 1
	}
	reg := obs.NewRegistry()
	s := New(cfg, reg, context.Background())
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, reg
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestPlanEndpointServesRepeatsFromCache(t *testing.T) {
	_, ts, reg := newTestServer(t, Config{})
	resp, data := post(t, ts.URL+"/v1/plan", fastPlanBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: status %d: %s", resp.StatusCode, data)
	}
	var first PlanResponse
	if err := json.Unmarshal(data, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first request reported cached")
	}
	if first.Result.System != "unfused" || first.Result.Cycles <= 0 {
		t.Fatalf("implausible result: %+v", first.Result)
	}

	resp, data = post(t, ts.URL+"/v1/plan", fastPlanBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second request: status %d: %s", resp.StatusCode, data)
	}
	var second PlanResponse
	if err := json.Unmarshal(data, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second identical request was not served from cache")
	}
	if second.Result.Cycles != first.Result.Cycles || second.Result.Tile != first.Result.Tile {
		t.Fatalf("cached result drifted:\n%+v\nvs\n%+v", second.Result, first.Result)
	}
	if second.Key != first.Key {
		t.Fatalf("canonical keys differ: %q vs %q", second.Key, first.Key)
	}
	if hits := reg.Counter("serve.cache_hits").Value(); hits != 1 {
		t.Fatalf("serve.cache_hits = %d, want 1", hits)
	}
	if misses := reg.Counter("serve.cache_misses").Value(); misses != 1 {
		t.Fatalf("serve.cache_misses = %d, want 1", misses)
	}
}

// Specs that spell the default batch explicitly must key (and hence cache)
// identically to specs that leave it zero.
func TestPlanEndpointCanonicalisesDefaults(t *testing.T) {
	_, ts, reg := newTestServer(t, Config{})
	post(t, ts.URL+"/v1/plan", fastPlanBody)
	resp, data := post(t, ts.URL+"/v1/plan",
		`{"arch":"edge","model":"bert","seq_len":1024,"system":"unfused","batch":64}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var pr PlanResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	if !pr.Cached {
		t.Fatal("explicit-default batch missed the cache")
	}
	if misses := reg.Counter("serve.cache_misses").Value(); misses != 1 {
		t.Fatalf("serve.cache_misses = %d, want 1", misses)
	}
}

func TestPlanEndpointStatusMapping(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{MaxSeqLen: 4096})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed JSON", `{"arch":`, http.StatusBadRequest},
		{"wrong type", `{"arch":"edge","model":"bert","seq_len":"big","system":"unfused"}`, http.StatusBadRequest},
		{"unknown field", `{"arch":"edge","model":"bert","seq_len":1024,"system":"unfused","arch_file":"/etc/passwd"}`, http.StatusBadRequest},
		{"trailing garbage", fastPlanBody + `{"again":true}`, http.StatusBadRequest},
		{"unknown arch", `{"arch":"tpu","model":"bert","seq_len":1024,"system":"unfused"}`, http.StatusBadRequest},
		{"unknown model", `{"arch":"edge","model":"gpt9","seq_len":1024,"system":"unfused"}`, http.StatusBadRequest},
		{"unknown system", `{"arch":"edge","model":"bert","seq_len":1024,"system":"magic"}`, http.StatusBadRequest},
		{"non-positive seq", `{"arch":"edge","model":"bert","seq_len":0,"system":"unfused"}`, http.StatusBadRequest},
		{"seq over server cap", `{"arch":"edge","model":"bert","seq_len":8192,"system":"unfused"}`, http.StatusBadRequest},
		{"budget over server cap", `{"arch":"edge","model":"bert","seq_len":1024,"system":"transfusion","search_budget":1000000}`, http.StatusBadRequest},
		{"negative batch", `{"arch":"edge","model":"bert","seq_len":1024,"system":"unfused","batch":-1}`, http.StatusBadRequest},
		{"negative seq", `{"arch":"edge","model":"bert","seq_len":-1,"system":"unfused"}`, http.StatusBadRequest},
		{"negative budget", `{"arch":"edge","model":"bert","seq_len":1024,"system":"unfused","search_budget":-1}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := post(t, ts.URL+"/v1/plan", tc.body)
			if resp.StatusCode != tc.want {
				t.Fatalf("status = %d, want %d (%s)", resp.StatusCode, tc.want, data)
			}
			var er errorResponse
			if err := json.Unmarshal(data, &er); err != nil {
				t.Fatalf("error body is not JSON: %s", data)
			}
			if er.Status != tc.want || er.Error == "" {
				t.Fatalf("error body = %+v", er)
			}
		})
	}

	t.Run("GET not allowed", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/plan")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("status = %d, want 405", resp.StatusCode)
		}
	})
}

// An expired server-side deadline surfaces as 504 through the ErrCanceled
// mapping.
func TestPlanEndpointDeadlineMapsTo504(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	resp, data := post(t, ts.URL+"/v1/plan",
		`{"arch":"edge","model":"bert","seq_len":1024,"system":"transfusion","search_budget":4}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (%s)", resp.StatusCode, data)
	}
}

// A saturated pool with queueing disabled sheds instantly: 503 with a
// Retry-After header, and the serve.shed counter accounts it.
func TestPlanEndpointShedsWhenSaturated(t *testing.T) {
	s, ts, reg := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: -1})
	// Occupy the only evaluation slot directly; the next uncached request
	// must be shed rather than queued.
	s.adm.sem <- struct{}{}
	defer func() { <-s.adm.sem }()
	resp, data := post(t, ts.URL+"/v1/plan", fastPlanBody)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (%s)", resp.StatusCode, data)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 without Retry-After")
	}
	if shed := reg.Counter("serve.shed").Value(); shed != 1 {
		t.Fatalf("serve.shed = %d, want 1", shed)
	}
}

func TestCompareEndpointSharesCacheWithPlan(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	// Seed the unfused cell through /v1/plan; the compare then gets it for
	// free and fills the other four.
	post(t, ts.URL+"/v1/plan", `{"arch":"edge","model":"bert","seq_len":1024,"system":"unfused","search_budget":4}`)
	resp, data := post(t, ts.URL+"/v1/compare",
		`{"arch":"edge","model":"bert","seq_len":1024,"search_budget":4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var cr CompareResponse
	if err := json.Unmarshal(data, &cr); err != nil {
		t.Fatal(err)
	}
	if len(cr.Results) != 5 {
		t.Fatalf("results = %d, want 5", len(cr.Results))
	}
	if cr.Results[0].System != "unfused" {
		t.Fatalf("first system = %q, want unfused (comparison order)", cr.Results[0].System)
	}
	if cr.CachedResults != 1 {
		t.Fatalf("cached_results = %d, want 1 (the seeded unfused cell)", cr.CachedResults)
	}
	// A repeated compare is answered fully from cache.
	resp, data = post(t, ts.URL+"/v1/compare",
		`{"arch":"edge","model":"bert","seq_len":1024,"search_budget":4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d: %s", resp.StatusCode, data)
	}
	var again CompareResponse
	if err := json.Unmarshal(data, &again); err != nil {
		t.Fatal(err)
	}
	if again.CachedResults != 5 {
		t.Fatalf("repeat cached_results = %d, want 5", again.CachedResults)
	}
}

// Liveness and readiness split: /healthz stays 200 while draining (the
// process is shutting down deliberately, not stuck — restarting it would be
// wrong), while /readyz flips to 503 so load balancers stop routing.
func TestHealthzLivenessAndReadyzDraining(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{})
	resp, data := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(data, []byte(`"ok"`)) {
		t.Fatalf("healthy healthz = %d %s", resp.StatusCode, data)
	}
	resp, data = get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(data, []byte(`"ok"`)) {
		t.Fatalf("healthy readyz = %d %s", resp.StatusCode, data)
	}
	s.draining.Store(true)
	resp, data = get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draining healthz = %d %s, want 200 (liveness is not readiness)", resp.StatusCode, data)
	}
	resp, data = get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || !bytes.Contains(data, []byte(`"draining"`)) {
		t.Fatalf("draining readyz = %d %s", resp.StatusCode, data)
	}
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestMetricsEndpointTextAndJSON(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	post(t, ts.URL+"/v1/plan", fastPlanBody)

	resp, data := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("text metrics status %d", resp.StatusCode)
	}
	for _, name := range []string{"serve.cache_misses", "serve.http.requests"} {
		if !bytes.Contains(data, []byte(name)) {
			t.Fatalf("text metrics missing %s:\n%s", name, data)
		}
	}

	resp, data = get(t, ts.URL+"/metrics?format=json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("json metrics status %d", resp.StatusCode)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("json metrics unparseable: %v\n%s", err, data)
	}
	if snap.Counters["serve.cache_misses"] != 1 {
		t.Fatalf("serve.cache_misses = %d, want 1", snap.Counters["serve.cache_misses"])
	}
}

func TestTraceEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	resp, data := get(t, ts.URL+"/debug/trace?arch=edge&model=bert&seq=1024&epochs=3")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(data, &events); err != nil || len(events) == 0 {
		t.Fatalf("trace not a JSON event array: %v", err)
	}
	resp, _ = get(t, ts.URL+"/debug/trace?arch=edge&model=bert&seq=nope")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad seq status = %d, want 400", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/debug/trace?arch=edge&model=bert&seq=1024&epochs=9999")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad epochs status = %d, want 400", resp.StatusCode)
	}
}

// Serve drains gracefully: a request in flight when shutdown starts still
// completes, and Serve returns cleanly afterwards.
func TestServeGracefulShutdownDrainsInFlight(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{Parallelism: 1, DrainTimeout: 30 * time.Second}, reg, context.Background())
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, l) }()

	url := "http://" + l.Addr().String()
	// A search-backed request that takes long enough to still be in flight
	// when shutdown starts.
	reqDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(url+"/v1/plan", "application/json", strings.NewReader(
			`{"arch":"edge","model":"bert","seq_len":4096,"system":"transfusion","search_budget":48}`))
		if err != nil {
			reqDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		reqDone <- resp.StatusCode
	}()
	// Let the request reach the server, then start the drain.
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
	// Serve must block until the drain finishes: by the time it returns, the
	// in-flight evaluation (seconds of search) has completed and its response
	// is on the wire, so the client observes it almost immediately. A short
	// window here catches a Serve that returns while Shutdown is still
	// draining.
	select {
	case code := <-reqDone:
		if code != http.StatusOK {
			t.Fatalf("in-flight request finished with %d, want 200", code)
		}
	case <-time.After(time.Second):
		t.Fatal("Serve returned before the in-flight request completed")
	}
	if !s.draining.Load() {
		t.Fatal("server did not mark itself draining")
	}
}
