package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/fusedmindlab/transfusion/internal/faults"
	"github.com/fusedmindlab/transfusion/internal/obs"
)

func TestAdmissionFastPath(t *testing.T) {
	reg := obs.NewRegistry()
	a := newAdmission(2, 1, reg)
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := reg.Gauge("serve.active").Value(); got != 2 {
		t.Fatalf("active = %g, want 2", got)
	}
	a.release()
	a.release()
	if got := reg.Gauge("serve.active").Value(); got != 0 {
		t.Fatalf("active after release = %g, want 0", got)
	}
}

func TestAdmissionShedsBeyondHardCap(t *testing.T) {
	reg := obs.NewRegistry()
	a := newAdmission(1, 1, reg)
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The hard cap is twice the configured queue depth (the band in between
	// is where the degradation ladder works), so two waiters may queue...
	waited := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() { waited <- a.acquire(context.Background()) }()
	}
	deadline := time.Now().Add(5 * time.Second)
	for a.queued.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// ...and the next arrival is shed immediately, without blocking, with an
	// error from the faults taxonomy (mapping to 503).
	if err := a.acquire(context.Background()); !errors.Is(err, faults.ErrOverloaded) {
		t.Fatalf("err = %v, want faults.ErrOverloaded", err)
	}
	if got := reg.Counter("serve.shed").Value(); got != 1 {
		t.Fatalf("shed = %d, want 1", got)
	}
	for i := 0; i < 2; i++ {
		a.release() // hands the slot to a queued waiter
		if err := <-waited; err != nil {
			t.Fatalf("queued waiter %d err = %v", i, err)
		}
	}
	a.release()
}

func TestAdmissionQueuedWaiterHonoursContext(t *testing.T) {
	a := newAdmission(1, 4, obs.NewRegistry())
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := a.acquire(ctx); !errors.Is(err, faults.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if got := a.queued.Load(); got != 0 {
		t.Fatalf("queued = %d after cancellation, want 0", got)
	}
	a.release()
}
