package serve

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden/*.json from the current implementation")

// One batch through a 2-replica cluster mixes every source in a single
// response: a fresh self-owned spec searches, a peer-owned spec fetches, a
// duplicate of the first answers from memory (entries resolve in order), and
// an invalid entry fails alone without voiding its siblings.
func TestBatchMixedSourcesAcrossCluster(t *testing.T) {
	h := newClusterHarness(t, clusterOpts{n: 2})
	mine := h.specOwnedBy(t, 0)
	theirs := h.specOwnedBy(t, 1)

	body := fmt.Sprintf(`{"requests":[%s,%s,%s,{"arch":"edge","model":"bert","seq_len":-1,"system":"unfused"}]}`,
		planBody(mine), planBody(theirs), planBody(mine))
	resp, data := post(t, h.urls[0]+"/v1/plan/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, data)
	}
	var br BatchPlanResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Entries) != 4 || br.Failed != 1 {
		t.Fatalf("entries=%d failed=%d, want 4 and 1", len(br.Entries), br.Failed)
	}
	wantSources := []string{sourceSearch, sourcePeer, sourceMemory, ""}
	wantStatus := []int{200, 200, 200, 400}
	for i, e := range br.Entries {
		if e.Status != wantStatus[i] {
			t.Fatalf("entry %d status %d, want %d (%s)", i, e.Status, wantStatus[i], e.Error)
		}
		if e.Source != wantSources[i] {
			t.Fatalf("entry %d source %q, want %q", i, e.Source, wantSources[i])
		}
		if (e.Status == 200) == (e.Result == nil) {
			t.Fatalf("entry %d: status %d with result=%v", i, e.Status, e.Result)
		}
		if e.Status != 200 && e.Error == "" {
			t.Fatalf("entry %d failed without an error message", i)
		}
	}
	if !br.Entries[2].Cached {
		t.Fatal("duplicate entry not reported cached")
	}
	// The failed entry must not have poisoned the peer accounting.
	if f, hits := h.regs[0].Counter("serve.peer.forwards").Value(), h.regs[0].Counter("serve.peer.hits").Value(); f != 1 || hits != 1 {
		t.Fatalf("forwards=%d hits=%d, want 1 and 1", f, hits)
	}
}

// A degraded evaluation inside a batch keeps its entry (Result.Degraded set,
// counted in DegradedEntries) and stamps the response exactly once: one
// Served-Degraded header, one serve.degraded.* counter increment — the same
// per-response invariant /v1/compare holds.
func TestBatchDegradedEntrySemantics(t *testing.T) {
	// Every search rollout faults, so search-backed entries degrade to the
	// heuristic tile internally; the cheap unfused entry is untouched.
	_, ts, reg, _ := chaosTestServer(t, Config{WatchdogTimeout: -1},
		"tileseek.rollout=error@every=1", 7)

	body := fmt.Sprintf(`{"requests":[%s,%s]}`, fastPlanBody, searchPlanBody)
	resp, data := post(t, ts.URL+"/v1/plan/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, data)
	}
	var br BatchPlanResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if br.Failed != 0 || br.DegradedEntries != 1 {
		t.Fatalf("failed=%d degraded_entries=%d, want 0 and 1", br.Failed, br.DegradedEntries)
	}
	if br.Entries[0].Result.Degraded {
		t.Fatal("unfused entry reported degraded")
	}
	if e := br.Entries[1]; !e.Result.Degraded || e.Result.DegradedReason == "" {
		t.Fatalf("search entry = %+v, want a degraded result with a reason", e.Result)
	}
	if h := resp.Header.Get("Served-Degraded"); h != degradeSearch {
		t.Fatalf("Served-Degraded = %q, want %q", h, degradeSearch)
	}
	if n := degradedCounterSum(reg); n != 1 {
		t.Fatalf("serve.degraded.* sum = %d, want exactly 1 for one batch response", n)
	}
}

// Whole-batch errors: anything that prevents per-entry resolution answers a
// plain 400/405 with no entries.
func TestBatchWholeRequestErrors(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	cases := []struct {
		name, body string
		status     int
	}{
		{"empty-list", `{"requests":[]}`, http.StatusBadRequest},
		{"missing-field", `{}`, http.StatusBadRequest},
		{"bad-json", `{"requests":[`, http.StatusBadRequest},
		{"unknown-field", `{"requests":[],"surprise":1}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, data := post(t, ts.URL+"/v1/plan/batch", tc.body)
		if resp.StatusCode != tc.status {
			t.Fatalf("%s: status %d, want %d: %s", tc.name, resp.StatusCode, tc.status, data)
		}
	}
	// Oversized batch.
	var big bytes.Buffer
	big.WriteString(`{"requests":[`)
	for i := 0; i <= maxBatchEntries; i++ {
		if i > 0 {
			big.WriteByte(',')
		}
		big.WriteString(fastPlanBody)
	}
	big.WriteString(`]}`)
	if resp, _ := post(t, ts.URL+"/v1/plan/batch", big.String()); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d, want 400", resp.StatusCode)
	}
	// Method.
	if resp, _ := get(t, ts.URL+"/v1/plan/batch"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET batch: status %d, want 405", resp.StatusCode)
	}
}

var elapsedRe = regexp.MustCompile(`"elapsed_ms": [0-9.e+-]+`)

// The batch response shape, pinned against a golden file: a disk-tier hit, a
// memory promotion, a fresh search, and a per-entry validation failure in one
// response. Every field but the wall-clock elapsed_ms is deterministic (the
// analytical model is exact and the search is seeded), so the golden is
// byte-stable; regenerate with -update after an intentional change.
func TestBatchGoldenResponseShape(t *testing.T) {
	dir := t.TempDir()
	// Seed the disk tier with the search spec's plan, then restart cold so
	// the first batch entry must come from disk.
	sA, tsA, _ := storeTestServer(t, Config{WatchdogTimeout: -1}, dir, true, "")
	if resp, data := post(t, tsA.URL+"/v1/plan", searchPlanBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed request: %d: %s", resp.StatusCode, data)
	}
	sA.fills.Wait()

	_, tsB, _ := storeTestServer(t, Config{WatchdogTimeout: -1}, dir, true, "")
	body := fmt.Sprintf(`{"requests":[%s,%s,%s,{"arch":"edge","model":"bert","seq_len":-1,"system":"unfused"}]}`,
		searchPlanBody, searchPlanBody, fastPlanBody)
	resp, data := post(t, tsB.URL+"/v1/plan/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, data)
	}

	got := elapsedRe.ReplaceAll(data, []byte(`"elapsed_ms": 0`))
	goldenPath := filepath.Join("testdata", "golden", "batch_response.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (run: go test ./internal/serve -run TestBatchGoldenResponseShape -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("batch response drifted from golden (regenerate with -update if intentional):\ngot:\n%s\nwant:\n%s", got, want)
	}
}
