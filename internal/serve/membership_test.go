package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	transfusion "github.com/fusedmindlab/transfusion"
	"github.com/fusedmindlab/transfusion/client"
	"github.com/fusedmindlab/transfusion/internal/chaos"
	"github.com/fusedmindlab/transfusion/internal/cluster"
	"github.com/fusedmindlab/transfusion/internal/obs"
	"github.com/fusedmindlab/transfusion/internal/store"
)

// The membership suite drives dynamic cluster membership end to end: real
// replicas with live probers are killed, resurrected, and reconfigured
// mid-traffic, and the contract under test is the robustness one —
//
//   - no request ever fails because of a membership event: every client
//     answer is a 200, whatever the ring was doing at the time;
//   - every replica that observed the same event schedule converges to the
//     same ring generation and member set, and the membership gauges
//     (cluster.member.alive/suspect/dead, cluster.ring.generation) agree
//     with the cluster's own view;
//   - a key whose ownership moved is served through at most one cache-only
//     previous-owner fetch (cluster.remap.fetches), never a duplicate
//     search, and never a fetch pointed at a dead member.
//
// Unlike clusterHarness (static httptest servers), memberHarness manages
// each replica's listener and http.Server by hand so a replica can be
// killed — listener torn down, connections refused — and later resurrected
// on the same address with its caches intact, which is exactly the
// kill/resurrect schedule the failure detector exists for.

// memberReplica is one harness replica: a full Server plus the manually
// managed listener that lets tests kill and resurrect it.
type memberReplica struct {
	url    string
	s      *Server
	reg    *obs.Registry
	cl     *cluster.Cluster
	st     *store.Store
	prober *cluster.Prober

	// gens records the ring generations OnChange announced, in order.
	genMu sync.Mutex
	gens  []uint64

	mu sync.Mutex
	hs *http.Server
	wg sync.WaitGroup
}

// kill tears the replica's listener and connections down hard (no drain),
// like a SIGKILL. Idempotent.
func (r *memberReplica) kill() {
	r.mu.Lock()
	hs := r.hs
	r.hs = nil
	r.mu.Unlock()
	if hs != nil {
		hs.Close() //nolint:errcheck
	}
	r.wg.Wait()
}

// resurrect re-binds the replica's original address and serves again with
// the same Server — caches warm, as after a fast process restart behind a
// stable address.
func (r *memberReplica) resurrect(t *testing.T) {
	t.Helper()
	addr := r.url[len("http://"):]
	var l net.Listener
	var err error
	// The previous listener just closed; give the kernel a beat to release
	// the port on the rare unlucky schedule.
	for attempt := 0; attempt < 50; attempt++ {
		if l, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("resurrecting %s: %v", r.url, err)
	}
	r.serveOn(l)
}

func (r *memberReplica) serveOn(l net.Listener) {
	hs := &http.Server{Handler: r.s.Handler()}
	r.mu.Lock()
	r.hs = hs
	r.wg.Add(1)
	r.mu.Unlock()
	go func() {
		defer r.wg.Done()
		hs.Serve(l) //nolint:errcheck
	}()
}

type memberHarness struct {
	urls []string
	reps []*memberReplica
}

// memberOpts tunes harness construction per test.
type memberOpts struct {
	n            int
	probe        cluster.ProbeConfig // zero Interval leaves the prober off
	probers      bool
	stores       bool   // give each replica its own disk tier
	probeChaos   string // chaos schedule armed on every replica's prober
	chaosSeed    uint64
	fetchTimeout time.Duration
}

func newMemberHarness(t *testing.T, opts memberOpts) *memberHarness {
	t.Helper()
	if opts.fetchTimeout == 0 {
		opts.fetchTimeout = 2 * time.Second
	}
	listeners := make([]net.Listener, opts.n)
	urls := make([]string, opts.n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		urls[i] = "http://" + l.Addr().String()
	}
	h := &memberHarness{urls: urls}
	for i := range listeners {
		r := &memberReplica{url: urls[i], reg: obs.NewRegistry()}
		cl, err := cluster.New(cluster.Config{
			Self:         urls[i],
			Peers:        urls,
			FetchTimeout: opts.fetchTimeout,
			Probe:        opts.probe,
			Metrics:      r.reg,
			OnChange: func(gen uint64, _ []string) {
				r.genMu.Lock()
				r.gens = append(r.gens, gen)
				r.genMu.Unlock()
			},
			ClientOptions: client.Options{
				// Fail fast and predictably: a dead peer costs one connection
				// attempt, and no breaker state leaks between phases.
				MaxRetries:       -1,
				BreakerThreshold: -1,
				BaseBackoff:      time.Millisecond,
				MaxBackoff:       5 * time.Millisecond,
				Seed:             1,
				HTTPClient:       &http.Client{Timeout: opts.fetchTimeout + time.Second},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		r.cl = cl
		cfg := Config{Parallelism: 1, Cluster: cl}
		if opts.stores {
			st, err := store.Open(t.TempDir(), 0, r.reg)
			if err != nil {
				t.Fatal(err)
			}
			r.st = st
			cfg.Store = st
		}
		r.s = New(cfg, r.reg, context.Background())
		r.serveOn(listeners[i])
		t.Cleanup(r.kill)
		if opts.probers {
			proberCtx := context.Background()
			if opts.probeChaos != "" {
				inj, err := chaos.Parse(opts.probeChaos, opts.chaosSeed)
				if err != nil {
					t.Fatal(err)
				}
				proberCtx = chaos.With(proberCtx, inj)
			}
			r.prober = cl.StartProber(proberCtx)
			t.Cleanup(r.prober.Stop)
		}
		h.reps = append(h.reps, r)
	}
	return h
}

// specsOwnedBy returns n distinct search-backed specs whose keys replica idx
// owns under replica 0's current ring, scanning sequence lengths.
func (h *memberHarness) specsOwnedBy(t *testing.T, idx, n int) []transfusion.RunSpec {
	t.Helper()
	var out []transfusion.RunSpec
	for seq := 256; seq <= 64*1024 && len(out) < n; seq += 256 {
		spec := transfusion.RunSpec{
			Arch: "edge", Model: "bert", SeqLen: seq, System: "transfusion", SearchBudget: 4,
		}
		if h.reps[0].cl.Owner(spec.CanonicalKey()) == h.urls[idx] {
			out = append(out, spec)
		}
	}
	if len(out) < n {
		t.Fatalf("found only %d/%d specs owned by replica %d", len(out), n, idx)
	}
	return out
}

// postPlan sends spec to replica URL and returns status, source header, and
// decoded response.
func postPlan(t *testing.T, url string, spec transfusion.RunSpec) (int, string, PlanResponse) {
	t.Helper()
	resp, data := post(t, url+"/v1/plan", planBody(spec))
	var pr PlanResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &pr); err != nil {
			t.Fatalf("decoding plan response: %v: %s", err, data)
		}
	}
	return resp.StatusCode, resp.Header.Get("X-Plan-Source"), pr
}

// mustPlan is postPlan that fails the test on any non-200.
func mustPlan(t *testing.T, url string, spec transfusion.RunSpec) (string, PlanResponse) {
	t.Helper()
	status, src, pr := postPlan(t, url, spec)
	if status != http.StatusOK {
		t.Fatalf("POST %s for seq %d: status %d", url, spec.SeqLen, status)
	}
	return src, pr
}

func waitForCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// pounder hammers a set of (url, spec) targets from the background until
// stopped, recording every non-200 or transport error.
type pounder struct {
	stop     chan struct{}
	wg       sync.WaitGroup
	total    atomic.Int64
	failures atomic.Int64

	mu    sync.Mutex
	first string
}

func startPounder(urls []string, specs []transfusion.RunSpec) *pounder {
	p := &pounder{stop: make(chan struct{})}
	for _, u := range urls {
		u := u
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for i := 0; ; i++ {
				select {
				case <-p.stop:
					return
				default:
				}
				spec := specs[i%len(specs)]
				resp, err := http.Post(u+"/v1/plan", "application/json",
					strings.NewReader(planBody(spec)))
				p.total.Add(1)
				if err != nil {
					p.fail(fmt.Sprintf("POST %s: %v", u, err))
				} else {
					if resp.StatusCode != http.StatusOK {
						p.fail(fmt.Sprintf("POST %s: status %d", u, resp.StatusCode))
					}
					resp.Body.Close()
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}
	return p
}

func (p *pounder) fail(msg string) {
	p.failures.Add(1)
	p.mu.Lock()
	if p.first == "" {
		p.first = msg
	}
	p.mu.Unlock()
}

// halt stops the traffic and asserts every request answered 200.
func (p *pounder) halt(t *testing.T) {
	t.Helper()
	close(p.stop)
	p.wg.Wait()
	if n := p.failures.Load(); n != 0 {
		p.mu.Lock()
		first := p.first
		p.mu.Unlock()
		t.Fatalf("%d/%d background requests failed during membership churn; first: %s",
			n, p.total.Load(), first)
	}
	if p.total.Load() == 0 {
		t.Fatal("pounder sent no traffic")
	}
}

// TestMembershipKillResurrectUnderTraffic is the membership chaos suite's
// centrepiece: three replicas with live probers, one killed hard and later
// resurrected while background traffic keeps flowing through the survivors.
// Zero requests may fail, the survivors must converge to the same ring
// generation and member set at every step, no fetch may be pointed at the
// dead member, and the membership gauges must reconcile with the cluster's
// own view.
func TestMembershipKillResurrectUnderTraffic(t *testing.T) {
	h := newMemberHarness(t, memberOpts{
		n:       3,
		probers: true,
		probe: cluster.ProbeConfig{
			Interval:     20 * time.Millisecond,
			Timeout:      250 * time.Millisecond,
			SuspectAfter: 2,
			DeadAfter:    3,
			ReviveAfter:  2,
			Seed:         7,
		},
	})
	victim := h.reps[2]
	survivors := []*memberReplica{h.reps[0], h.reps[1]}

	// Warm one spec per replica through every replica: afterwards each
	// replica holds all three plans in memory, so the background traffic
	// below exercises the full request path at every ring generation.
	var warm []transfusion.RunSpec
	for idx := 0; idx < 3; idx++ {
		warm = append(warm, h.specsOwnedBy(t, idx, 1)[0])
	}
	for _, u := range h.urls {
		for _, spec := range warm {
			mustPlan(t, u, spec)
		}
	}

	// Fresh keys owned by the victim, reserved for the dead and revived
	// phases (specsOwnedBy scans deterministically, so asking for three
	// returns the warm spec first plus two unseen ones).
	fresh := h.specsOwnedBy(t, 2, 3)[1:]

	traffic := startPounder([]string{h.urls[0], h.urls[1]}, warm)

	// Kill the victim hard: connections refused, no drain, its own Server
	// object (and caches) intact for the resurrection below.
	victim.kill()

	// Both survivors must walk the victim through the detector to dead and
	// rebuild generation 2 without the victim.
	waitForCond(t, "survivors to declare the victim dead", func() bool {
		for _, r := range survivors {
			if r.cl.State(h.urls[2]) != cluster.StateDead || r.cl.Generation() != 2 {
				return false
			}
		}
		return true
	})
	liveSet := []string{h.urls[0], h.urls[1]}
	sort.Strings(liveSet)
	for i, r := range survivors {
		if got := r.cl.Members(); !reflect.DeepEqual(got, liveSet) {
			t.Fatalf("survivor %d members after death = %v, want %v", i, got, liveSet)
		}
		if a := r.reg.Gauge("cluster.member.alive").Value(); a != 2 {
			t.Fatalf("survivor %d alive gauge = %g after death, want 2", i, a)
		}
		if d := r.reg.Gauge("cluster.member.dead").Value(); d != 1 {
			t.Fatalf("survivor %d dead gauge = %g after death, want 1", i, d)
		}
	}

	// The victim's keys now belong to a survivor. Serving them must not
	// point any fetch at the corpse: the previous owner is dead, so the
	// remap path is skipped and the key is searched locally once.
	for i, spec := range fresh[:1] {
		for _, u := range []string{h.urls[0], h.urls[1]} {
			_, pr := mustPlan(t, u, spec)
			if pr.Result.Plan == nil {
				t.Fatalf("fresh spec %d served without a plan", i)
			}
		}
	}
	for i, r := range survivors {
		if n := r.reg.Counter("cluster.remap.fetches").Value(); n != 0 {
			t.Fatalf("survivor %d attempted %d remap fetches at a dead member", i, n)
		}
	}

	// Resurrection: same address, warm caches. The probers must walk it
	// back to alive and readmit it at generation 3.
	victim.resurrect(t)
	waitForCond(t, "survivors to readmit the resurrected member", func() bool {
		for _, r := range survivors {
			if r.cl.State(h.urls[2]) != cluster.StateAlive || r.cl.Generation() != 3 {
				return false
			}
		}
		return true
	})

	// The revived replica serves again, and the survivors forward its keys
	// to it like before the crash.
	for _, spec := range warm {
		mustPlan(t, h.urls[2], spec)
	}
	src, pr := mustPlan(t, h.urls[0], fresh[1])
	if pr.Result.Plan == nil {
		t.Fatal("post-revival spec served without a plan")
	}
	if src == sourcePeer {
		// Owner is the revived replica; a peer answer means the forward
		// worked end to end. A local source is equally legal (the ring may
		// assign the key to the requester), so only log for diagnosis.
		t.Logf("post-revival spec served via peer forward")
	}

	traffic.halt(t)

	// Final convergence: every replica agrees on the member set; the
	// survivors — who observed the same death and revival — agree on the
	// generation and announced the same transition sequence; gauges match.
	all := append([]string(nil), h.urls...)
	sort.Strings(all)
	for i, r := range h.reps {
		if got := r.cl.Members(); !reflect.DeepEqual(got, all) {
			t.Fatalf("replica %d members = %v, want %v", i, got, all)
		}
	}
	for i, r := range survivors {
		if g := r.cl.Generation(); g != 3 {
			t.Fatalf("survivor %d generation = %d, want 3", i, g)
		}
		if g := r.reg.Gauge("cluster.ring.generation").Value(); g != 3 {
			t.Fatalf("survivor %d generation gauge = %g, want 3", i, g)
		}
		if a := r.reg.Gauge("cluster.member.alive").Value(); a != 3 {
			t.Fatalf("survivor %d alive gauge = %g, want 3", i, a)
		}
		if s := r.reg.Gauge("cluster.member.suspect").Value(); s != 0 {
			t.Fatalf("survivor %d suspect gauge = %g, want 0", i, s)
		}
		if d := r.reg.Gauge("cluster.member.dead").Value(); d != 0 {
			t.Fatalf("survivor %d dead gauge = %g, want 0", i, d)
		}
		r.genMu.Lock()
		gens := append([]uint64(nil), r.gens...)
		r.genMu.Unlock()
		if !reflect.DeepEqual(gens, []uint64{2, 3}) {
			t.Fatalf("survivor %d announced generations %v, want [2 3]", i, gens)
		}
		if n := r.reg.Counter("cluster.probe.attempts").Value(); n == 0 {
			t.Fatalf("survivor %d recorded no probe attempts", i)
		}
		if n := r.reg.Counter("cluster.probe.failures").Value(); n == 0 {
			t.Fatalf("survivor %d recorded no probe failures despite a death", i)
		}
	}
	// Per-replica peer accounting holds through the churn.
	for i, r := range h.reps {
		f := r.reg.Counter("serve.peer.forwards").Value()
		ht := r.reg.Counter("serve.peer.hits").Value()
		fb := r.reg.Counter("serve.peer.fallbacks").Value()
		if ht+fb != f {
			t.Fatalf("replica %d: hits %d + fallbacks %d != forwards %d", i, ht, fb, f)
		}
	}
}

// Isolated probe failures — a lossy network, a slow scrape — must never move
// the ring: with an every=3 error schedule at the cluster.probe site no peer
// ever accumulates two consecutive failures, so the detector's hysteresis
// holds every member alive at generation 1 while traffic flows normally.
func TestMembershipProbeChaosNeverFlapsRing(t *testing.T) {
	h := newMemberHarness(t, memberOpts{
		n:          2,
		probers:    true,
		probeChaos: "cluster.probe=error@every=3",
		chaosSeed:  9,
		probe: cluster.ProbeConfig{
			Interval:     10 * time.Millisecond,
			Timeout:      250 * time.Millisecond,
			SuspectAfter: 2,
			DeadAfter:    3,
			ReviveAfter:  2,
			Seed:         11,
		},
	})
	waitForCond(t, "enough probe failures to prove the schedule ran", func() bool {
		for _, r := range h.reps {
			if r.reg.Counter("cluster.probe.failures").Value() < 3 {
				return false
			}
		}
		return true
	})
	spec := h.specsOwnedBy(t, 1, 1)[0]
	mustPlan(t, h.urls[0], spec)
	for i, r := range h.reps {
		if g := r.cl.Generation(); g != 1 {
			t.Fatalf("replica %d generation = %d under isolated probe failures, want 1", i, g)
		}
		if s := r.reg.Gauge("cluster.member.suspect").Value(); s != 0 {
			t.Fatalf("replica %d suspect gauge = %g, want 0", i, s)
		}
		if a := r.reg.Gauge("cluster.member.alive").Value(); a != 2 {
			t.Fatalf("replica %d alive gauge = %g, want 2", i, a)
		}
	}
}

// A planned scale-down (reload removes a still-running member) must be
// remap-safe: the departed member's keys are adopted by their new owners
// through exactly one cache-only previous-owner fetch each — no duplicate
// search anywhere in the cluster, bit-identical answers throughout.
func TestMembershipRemapOneHopOnScaleDown(t *testing.T) {
	h := newMemberHarness(t, memberOpts{n: 3})
	spec := h.specsOwnedBy(t, 2, 1)[0]
	key := spec.CanonicalKey()
	want := referenceResult(t, spec)

	// Warm the key on its owner: one search, cluster-wide.
	src, pr := mustPlan(t, h.urls[2], spec)
	if src != sourceSearch || !reflect.DeepEqual(pr.Result, want) {
		t.Fatalf("owner warmup: source %q, diverged=%t", src, !reflect.DeepEqual(pr.Result, want))
	}

	// Scale down: replicas 0 and 1 reload without replica 2 (which keeps
	// running — a drain, not a crash).
	twoRing := []string{h.urls[0], h.urls[1]}
	for _, i := range []int{0, 1} {
		if err := h.reps[i].cl.Reload(twoRing); err != nil {
			t.Fatal(err)
		}
		if g := h.reps[i].cl.Generation(); g != 2 {
			t.Fatalf("replica %d generation after reload = %d, want 2", i, g)
		}
	}
	newOwner := -1
	for i, u := range twoRing {
		if h.reps[0].cl.Owner(key) == u {
			newOwner = i
		}
	}
	if newOwner == -1 {
		t.Fatalf("key %s owned by no survivor after reload", key)
	}
	other := 1 - newOwner

	// First request on the new owner: one previous-owner fetch adopts the
	// plan from the departed replica's memory — no local search.
	src, pr = mustPlan(t, h.urls[newOwner], spec)
	if src != sourcePeer {
		t.Fatalf("moved key served from %q, want %q (remap fetch)", src, sourcePeer)
	}
	if !reflect.DeepEqual(pr.Result, want) {
		t.Fatal("remap-fetched plan diverged from the reference")
	}
	ownerReg := h.reps[newOwner].reg
	if n := ownerReg.Counter("cluster.remap.fetches").Value(); n != 1 {
		t.Fatalf("cluster.remap.fetches = %d, want 1", n)
	}
	if n := ownerReg.Counter("cluster.remap.hits").Value(); n != 1 {
		t.Fatalf("cluster.remap.hits = %d, want 1", n)
	}
	if n := h.reps[2].reg.Counter("serve.peer.cached.hits").Value(); n != 1 {
		t.Fatalf("departed replica served %d cache-only fetches, want 1", n)
	}

	// The other survivor forwards to the new owner, which now answers from
	// memory; a second request on the new owner is a plain memory hit. The
	// previous-owner hop never repeats.
	src, pr = mustPlan(t, h.urls[other], spec)
	if src != sourcePeer || !reflect.DeepEqual(pr.Result, want) {
		t.Fatalf("other survivor: source %q, want forwarded peer answer", src)
	}
	src, _ = mustPlan(t, h.urls[newOwner], spec)
	if src != sourceMemory {
		t.Fatalf("repeat on new owner served from %q, want memory", src)
	}
	if n := ownerReg.Counter("cluster.remap.fetches").Value(); n != 1 {
		t.Fatalf("cluster.remap.fetches grew to %d, want to stay 1", n)
	}

	// The whole migration cost exactly the one original search.
	var searches int64
	for _, r := range h.reps {
		searches += r.reg.Counter("tileseek.searches").Value()
	}
	if searches != 1 {
		t.Fatalf("cluster ran %d searches across the scale-down, want exactly 1", searches)
	}
}

// When the previous owner has no exact plan, its miss still helps: the 404
// carries its nearest stored recipe, and the new owner's unavoidable local
// search starts warm from it — labelled peer-warm, counted in
// serve.peer.warm_hints.
func TestMembershipRemapMissYieldsPeerWarmHint(t *testing.T) {
	h := newMemberHarness(t, memberOpts{n: 3, stores: true})
	specs := h.specsOwnedBy(t, 2, 2)
	target, neighbour := specs[0], specs[1]

	// The departed owner holds only the neighbour (same workload family,
	// different seq_len) — in memory and, once the async fill lands, on disk.
	mustPlan(t, h.urls[2], neighbour)
	neighbourKey := neighbour.CanonicalKey()
	waitForCond(t, "neighbour plan to reach the owner's store", func() bool {
		_, ok := h.reps[2].st.Get(context.Background(), neighbourKey)
		return ok
	})

	twoRing := []string{h.urls[0], h.urls[1]}
	for _, i := range []int{0, 1} {
		if err := h.reps[i].cl.Reload(twoRing); err != nil {
			t.Fatal(err)
		}
	}
	newOwner := -1
	for i, u := range twoRing {
		if h.reps[0].cl.Owner(target.CanonicalKey()) == u {
			newOwner = i
		}
	}
	if newOwner == -1 {
		t.Fatal("target key owned by no survivor after reload")
	}

	src, pr := mustPlan(t, h.urls[newOwner], target)
	if src != sourcePeerWarm {
		t.Fatalf("remap miss served from %q, want %q", src, sourcePeerWarm)
	}
	if pr.Result.Plan == nil || pr.Result.Degraded {
		t.Fatalf("peer-warm answer unusable: plan=%v degraded=%t", pr.Result.Plan, pr.Result.Degraded)
	}
	ownerReg := h.reps[newOwner].reg
	if n := ownerReg.Counter("serve.peer.warm_hints").Value(); n != 1 {
		t.Fatalf("serve.peer.warm_hints = %d, want 1", n)
	}
	if n := ownerReg.Counter("cluster.remap.fetches").Value(); n != 1 {
		t.Fatalf("cluster.remap.fetches = %d, want 1", n)
	}
	if n := ownerReg.Counter("cluster.remap.hits").Value(); n != 0 {
		t.Fatalf("cluster.remap.hits = %d, want 0 on a miss", n)
	}
	if n := h.reps[2].reg.Counter("serve.peer.cached.misses").Value(); n != 1 {
		t.Fatalf("departed replica counted %d cache-only misses, want 1", n)
	}
	// The hint rode the wire, not the local disk: the new owner's own store
	// had nothing for this family, so a local warm hit would be impossible.
	if n := ownerReg.Counter("serve.warm_hits").Value(); n != 0 {
		t.Fatalf("serve.warm_hits = %d, want 0 (hint must come from the peer)", n)
	}
}
