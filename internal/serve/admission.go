package serve

import (
	"context"
	"errors"
	"sync/atomic"

	"github.com/fusedmindlab/transfusion/internal/faults"
	"github.com/fusedmindlab/transfusion/internal/obs"
)

// errOverloaded marks a request shed at admission: the evaluation pool is
// saturated and the wait queue is at depth. The handler answers 503 with a
// Retry-After header; it is deliberately not part of the faults taxonomy
// because nothing about the request itself is wrong.
var errOverloaded = errors.New("serve: overloaded, retry later")

// admission is the bounded-concurrency controller in front of the evaluation
// pool: at most maxConcurrent evaluations run at once, at most maxQueue
// callers wait for a slot, and everything beyond that is shed immediately so
// queue time never grows unbounded (load shedding beats collapse).
type admission struct {
	sem      chan struct{}
	queued   atomic.Int64
	maxQueue int64

	shedC   *obs.Counter
	activeG *obs.Gauge
	queuedG *obs.Gauge
}

func newAdmission(maxConcurrent, maxQueue int, reg *obs.Registry) *admission {
	return &admission{
		sem:      make(chan struct{}, maxConcurrent),
		maxQueue: int64(maxQueue),

		shedC:   reg.Counter("serve.shed"),
		activeG: reg.Gauge("serve.active"),
		queuedG: reg.Gauge("serve.queued"),
	}
}

// acquire claims an evaluation slot, waiting in the bounded queue when the
// pool is busy. It returns errOverloaded when the queue is full, or an error
// matching faults.ErrCanceled when ctx expires while queued. A nil return
// must be paired with release.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.sem <- struct{}{}:
		a.activeG.Add(1)
		return nil
	default:
	}
	if q := a.queued.Add(1); q > a.maxQueue {
		a.queued.Add(-1)
		a.shedC.Inc()
		return errOverloaded
	}
	a.queuedG.Set(float64(a.queued.Load()))
	defer func() {
		a.queued.Add(-1)
		a.queuedG.Set(float64(a.queued.Load()))
	}()
	select {
	case a.sem <- struct{}{}:
		a.activeG.Add(1)
		return nil
	case <-ctx.Done():
		return faults.Canceled(ctx)
	}
}

// release returns a slot claimed by acquire.
func (a *admission) release() {
	<-a.sem
	a.activeG.Add(-1)
}
