package serve

import (
	"context"
	"sync/atomic"

	"github.com/fusedmindlab/transfusion/internal/chaos"
	"github.com/fusedmindlab/transfusion/internal/faults"
	"github.com/fusedmindlab/transfusion/internal/obs"
)

// admission is the bounded-concurrency controller in front of the evaluation
// pool: at most maxConcurrent evaluations run at once, and callers beyond
// that wait in a depth-bounded queue. Queue depth is also the signal the
// degradation ladder reads (see Server.degradeTier): requests start losing
// search fidelity once the queue is half full, and only past twice the
// configured depth — when even heuristic-only answers cannot keep up — are
// arrivals shed outright with faults.ErrOverloaded (503 + Retry-After).
// Degrading before shedding keeps answers flowing: the heuristic tile is
// always a valid configuration, so a cheap answer beats no answer.
type admission struct {
	sem     chan struct{}
	queued  atomic.Int64
	hardCap int64

	shedC   *obs.Counter
	activeG *obs.Gauge
	queuedG *obs.Gauge
}

func newAdmission(maxConcurrent, maxQueue int, reg *obs.Registry) *admission {
	return &admission{
		sem: make(chan struct{}, maxConcurrent),
		// The ladder works inside [0, maxQueue]; the hard cap gives degraded
		// requests the same headroom again before arrivals are refused. With
		// queueing disabled (maxQueue 0) a busy pool sheds immediately.
		hardCap: 2 * int64(maxQueue),

		shedC:   reg.Counter("serve.shed"),
		activeG: reg.Gauge("serve.active"),
		queuedG: reg.Gauge("serve.queued"),
	}
}

// pressure reports the current wait-queue depth — the load signal behind the
// degradation ladder and the computed Retry-After.
func (a *admission) pressure() int64 { return a.queued.Load() }

// acquire claims an evaluation slot, waiting in the bounded queue when the
// pool is busy. It returns an error matching faults.ErrOverloaded when the
// queue is past its hard cap, or one matching faults.ErrCanceled when ctx
// expires while queued. A request whose context is already dead never
// acquires a slot, even if one happens to be free the instant it joins the
// race. A nil return must be paired with release. A traced caller gets an
// "admission.wait" span with the queue depth it saw, so time spent waiting
// for a slot is attributed in the request's trace.
func (a *admission) acquire(ctx context.Context) error {
	_, sp := obs.StartSpan(ctx, "admission.wait")
	if sp != nil {
		sp.SetAttrInt("queue_depth", a.pressure())
	}
	err := a.doAcquire(ctx)
	sp.EndErr(err)
	return err
}

// doAcquire is acquire's body; see there for the contract.
func (a *admission) doAcquire(ctx context.Context) error {
	if err := chaos.SiteFrom(ctx, chaos.SiteServeAdmission).Strike(ctx); err != nil {
		return err
	}
	select {
	case a.sem <- struct{}{}:
		if ctx.Err() != nil {
			<-a.sem
			return faults.Canceled(ctx)
		}
		a.activeG.Add(1)
		return nil
	default:
	}
	if q := a.queued.Add(1); q > a.hardCap {
		a.queued.Add(-1)
		a.shedC.Inc()
		return faults.Overloadedf("serve: overloaded (queue depth %d past hard cap %d), retry later", q-1, a.hardCap)
	}
	a.queuedG.Set(float64(a.queued.Load()))
	defer func() {
		a.queued.Add(-1)
		a.queuedG.Set(float64(a.queued.Load()))
	}()
	select {
	case a.sem <- struct{}{}:
		// Both arms of the select can be ready at once and the winner is
		// random; a caller that is already canceled must give the slot
		// straight back instead of starting an evaluation nobody reads.
		if ctx.Err() != nil {
			<-a.sem
			return faults.Canceled(ctx)
		}
		a.activeG.Add(1)
		return nil
	case <-ctx.Done():
		return faults.Canceled(ctx)
	}
}

// release returns a slot claimed by acquire.
func (a *admission) release() {
	<-a.sem
	a.activeG.Add(-1)
}
