package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/fusedmindlab/transfusion/internal/chaos"
	"github.com/fusedmindlab/transfusion/internal/obs"
	"github.com/fusedmindlab/transfusion/internal/store"
)

// storeTestServer builds a Server over a disk store at dir. chaosSpec ""
// leaves fault injection off; cold skips the warm-restart preload.
func storeTestServer(t *testing.T, cfg Config, dir string, cold bool, chaosSpec string) (*Server, *httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	st, err := store.Open(dir, 0, reg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = st
	cfg.ColdStart = cold
	if cfg.Parallelism == 0 {
		cfg.Parallelism = 1
	}
	baseCtx := context.Background()
	if chaosSpec != "" {
		inj, err := chaos.Parse(chaosSpec, 42)
		if err != nil {
			t.Fatal(err)
		}
		baseCtx = chaos.With(baseCtx, inj)
	}
	s := New(cfg, reg, baseCtx)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, reg
}

func planSource(t *testing.T, resp *http.Response, data []byte) (PlanResponse, string) {
	t.Helper()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var pr PlanResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	if h := resp.Header.Get("X-Plan-Source"); h != pr.Source {
		t.Fatalf("X-Plan-Source header %q disagrees with body source %q", h, pr.Source)
	}
	return pr, pr.Source
}

// The three-tier stack end to end: a fresh spec is searched and filled to
// disk; a restarted (cold) server serves it from disk and promotes it to
// memory; the request after that hits memory. Results are bit-identical at
// every tier.
func TestDiskTierServesAcrossRestart(t *testing.T) {
	dir := t.TempDir()

	sA, tsA, _ := storeTestServer(t, Config{WatchdogTimeout: -1}, dir, true, "")
	resp, data := post(t, tsA.URL+"/v1/plan", searchPlanBody)
	first, source := planSource(t, resp, data)
	if source != sourceSearch {
		t.Fatalf("fresh spec served from %q, want %q", source, sourceSearch)
	}
	sA.fills.Wait()
	if sA.store.Len() != 1 {
		t.Fatalf("store holds %d records after one search, want 1", sA.store.Len())
	}

	// "Restart": a cold server over the same directory. Its memory cache is
	// empty, so the first answer must come from disk — and be promoted.
	sB, tsB, regB := storeTestServer(t, Config{WatchdogTimeout: -1}, dir, true, "")
	resp, data = post(t, tsB.URL+"/v1/plan", searchPlanBody)
	fromDisk, source := planSource(t, resp, data)
	if source != sourceDisk {
		t.Fatalf("restarted server served from %q, want %q", source, sourceDisk)
	}
	if !fromDisk.Cached {
		t.Fatal("disk hit not reported as cached")
	}
	if fromDisk.Result.Cycles != first.Result.Cycles || fromDisk.Result.Tile != first.Result.Tile {
		t.Fatalf("disk tier mutated the plan:\ngot  %+v\nwant %+v", fromDisk.Result, first.Result)
	}
	if regB.Counter("store.hits").Value() != 1 {
		t.Fatal("disk hit not counted in store.hits")
	}

	resp, data = post(t, tsB.URL+"/v1/plan", searchPlanBody)
	fromMem, source := planSource(t, resp, data)
	if source != sourceMemory {
		t.Fatalf("promoted entry served from %q, want %q", source, sourceMemory)
	}
	if fromMem.Result.Cycles != first.Result.Cycles {
		t.Fatal("memory tier diverged from the original result")
	}
	_ = sB
}

// Warm restart: a warm (default) server preloads the stored working set into
// its memory cache at construction, so the very first request is a memory hit.
func TestWarmRestartSeedsMemoryCache(t *testing.T) {
	dir := t.TempDir()
	sA, tsA, _ := storeTestServer(t, Config{WatchdogTimeout: -1}, dir, true, "")
	resp, data := post(t, tsA.URL+"/v1/plan", searchPlanBody)
	first, _ := planSource(t, resp, data)
	sA.fills.Wait()

	sB, tsB, _ := storeTestServer(t, Config{WatchdogTimeout: -1}, dir, false, "")
	if sB.cache.Len() != 1 {
		t.Fatalf("warm server's memory cache holds %d entries, want 1", sB.cache.Len())
	}
	resp, data = post(t, tsB.URL+"/v1/plan", searchPlanBody)
	warm, source := planSource(t, resp, data)
	if source != sourceMemory {
		t.Fatalf("warm-restarted server served from %q, want %q", source, sourceMemory)
	}
	if warm.Result.Cycles != first.Result.Cycles || warm.Result.Tile != first.Result.Tile {
		t.Fatalf("warm-restart answer diverged:\ngot  %+v\nwant %+v", warm.Result, first.Result)
	}
}

// Degraded results never reach the disk: a ladder-degraded answer leaves the
// store empty, and once pressure clears the full-fidelity result is the one
// persisted.
func TestDegradedResultsNeverPersisted(t *testing.T) {
	dir := t.TempDir()
	s, ts, _ := storeTestServer(t, Config{MaxQueue: 8, WatchdogTimeout: -1}, dir, true, "")

	s.adm.queued.Store(8) // tier 2: heuristic only
	resp, data := post(t, ts.URL+"/v1/plan", searchPlanBody)
	pr, _ := planSource(t, resp, data)
	if !pr.Result.Degraded {
		t.Fatalf("saturated server served undegraded: %+v", pr.Result)
	}
	s.adm.queued.Store(0)
	s.fills.Wait()
	if n := s.store.Len(); n != 0 {
		t.Fatalf("store holds %d records after a degraded answer, want 0", n)
	}

	resp, data = post(t, ts.URL+"/v1/plan", searchPlanBody)
	full, _ := planSource(t, resp, data)
	if full.Result.Degraded {
		t.Fatalf("unloaded server still degraded: %+v", full.Result)
	}
	s.fills.Wait()
	if n := s.store.Len(); n != 1 {
		t.Fatalf("store holds %d records after a clean answer, want 1", n)
	}
}

// Fixed-seed disk-fault chaos through the serving stack: every injected store
// fault yields a correct plan (recomputed) or a clean miss — never a
// corrupted or divergent response — and the directory stays recoverable.
func TestStoreChaosSchedules(t *testing.T) {
	// The fault-free reference server: what every answer must match.
	_, cleanTS, _ := newTestServer(t, Config{WatchdogTimeout: -1})
	resp, data := post(t, cleanTS.URL+"/v1/plan", searchPlanBody)
	want, _ := planSource(t, resp, data)

	schedules := []struct {
		name string
		spec string
		// prime runs a clean pass first so there is a record to fault on.
		prime bool
		// watchdog enables the watchdog (which also bounds the disk read) —
		// needed by the latency schedule; left off elsewhere so responses
		// wait for the real evaluation and its fill is spawned before the
		// response returns (making fills.Wait a reliable barrier).
		watchdog time.Duration
	}{
		{name: "read-error", spec: "store.read=error@every=1@limit=2", prime: true, watchdog: -1},
		{name: "read-latency", spec: "store.read=latency:10s@every=1@limit=1", prime: true, watchdog: 100 * time.Millisecond},
		{name: "write-shortwrite", spec: "store.write=shortwrite@every=1@limit=1", watchdog: -1},
		{name: "fsync-error", spec: "store.fsync=error@every=1@limit=1", watchdog: -1},
	}
	for _, sc := range schedules {
		t.Run(sc.name, func(t *testing.T) {
			dir := t.TempDir()
			if sc.prime {
				sp, tsp, _ := storeTestServer(t, Config{WatchdogTimeout: -1}, dir, true, "")
				post(t, tsp.URL+"/v1/plan", searchPlanBody)
				sp.fills.Wait()
			}
			s, ts, reg := storeTestServer(t, Config{
				RequestTimeout:  5 * time.Second,
				WatchdogTimeout: sc.watchdog,
			}, dir, true, sc.spec)

			// Drive the spec through the faulted stack repeatedly. Whatever
			// the injected fault does underneath, the answer on the wire must
			// be the clean server's plan (a disk fault degrades to a miss and
			// a re-search of a deterministic evaluation — same bits).
			for i := 0; i < 3; i++ {
				start := time.Now()
				resp, data := post(t, ts.URL+"/v1/plan", searchPlanBody)
				pr, source := planSource(t, resp, data)
				if pr.Result.Cycles != want.Result.Cycles || pr.Result.Tile != want.Result.Tile {
					t.Fatalf("request %d (source %s): corrupted response under %s:\ngot  %+v\nwant %+v",
						i, source, sc.spec, pr.Result, want.Result)
				}
				if elapsed := time.Since(start); elapsed > 10*time.Second {
					t.Fatalf("request %d took %v — injected disk fault wedged the request path", i, elapsed)
				}
			}
			s.fills.Wait()
			if sc.name == "write-shortwrite" || sc.name == "fsync-error" {
				if reg.Counter("store.put_errors").Value() == 0 {
					t.Fatalf("schedule %s never faulted a fill", sc.spec)
				}
			}

			// "Restart" into a clean server over the same directory. Its boot
			// scan must find no corrupt committed record (torn writes only
			// ever leave temp files, swept as store.recovered, never bad
			// bytes under a live name), and the working set re-commits: a
			// faulted fill was dropped, so the re-search after restart is the
			// retry that lands it durably.
			s2, ts2, reg2 := storeTestServer(t, Config{WatchdogTimeout: -1}, dir, true, "")
			if got := reg2.Counter("store.quarantined").Value(); got != 0 {
				t.Fatalf("%d committed records were corrupt after %s — torn writes reached live names", got, sc.spec)
			}
			if sc.name == "write-shortwrite" && reg2.Counter("store.recovered").Value() == 0 {
				t.Fatal("shortwrite schedule left no torn temp for recovery to sweep")
			}
			resp, data := post(t, ts2.URL+"/v1/plan", searchPlanBody)
			pr, _ := planSource(t, resp, data)
			if pr.Result.Cycles != want.Result.Cycles || pr.Result.Tile != want.Result.Tile {
				t.Fatalf("post-restart answer diverged after %s:\ngot  %+v\nwant %+v", sc.spec, pr.Result, want.Result)
			}
			s2.fills.Wait()

			// Final reopen: the record is durably committed and serves.
			st3, err := store.Open(dir, 0, obs.NewRegistry())
			if err != nil {
				t.Fatalf("reopen after recovery: %v", err)
			}
			if st3.Len() == 0 {
				t.Fatalf("no valid records committed after recovery from %s", sc.spec)
			}
			if _, ok := st3.Get(context.Background(), want.Key); !ok {
				t.Fatalf("recovered store cannot serve the spec planned under %s", sc.spec)
			}
		})
	}
}

// Satellite: the memory cache's occupancy gauge and eviction counter.
func TestCacheSizeGaugeAndEvictionCounter(t *testing.T) {
	_, ts, reg := newTestServer(t, Config{CacheEntries: 2, WatchdogTimeout: -1})
	bodies := []string{
		`{"arch":"edge","model":"bert","seq_len":1024,"system":"unfused"}`,
		`{"arch":"edge","model":"bert","seq_len":2048,"system":"unfused"}`,
		`{"arch":"edge","model":"bert","seq_len":4096,"system":"unfused"}`,
	}
	for _, body := range bodies {
		if resp, data := post(t, ts.URL+"/v1/plan", body); resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
	}
	if got := reg.Gauge("serve.cache_size").Value(); got != 2 {
		t.Fatalf("serve.cache_size = %v, want 2 (capacity)", got)
	}
	if got := reg.Counter("serve.cache_evictions").Value(); got != 1 {
		t.Fatalf("serve.cache_evictions = %d, want 1", got)
	}
	// The evicted (oldest) spec misses; the survivors hit.
	resp, data := post(t, ts.URL+"/v1/plan", bodies[2])
	pr, _ := planSource(t, resp, data)
	if !pr.Cached {
		t.Fatal("most recent entry was evicted")
	}
}

// Satellite: exact boundary semantics of the degradation ladder's tier
// function. MaxQueue 8: tier 0 holds strictly below half the queue depth,
// tier 1 from half up to (excluding) the full depth, tier 2 at and past it.
func TestDegradeTierBoundaries(t *testing.T) {
	s, _, _ := newTestServer(t, Config{MaxQueue: 8, WatchdogTimeout: -1})
	for _, tc := range []struct {
		queued int64
		tier   int
	}{
		{0, 0},
		{3, 0},  // last full-fidelity depth: 2*3 < 8
		{4, 1},  // exactly half the cap: first degraded tier
		{7, 1},  // last budget-tier depth
		{8, 2},  // exactly at cap: tier-1 -> tier-2 transition
		{15, 2}, // one below the hard cap: still answering, heuristically
		{16, 2}, // exactly at 2xcap: the ladder still answers; shedding is
		// admission's decision for arrivals beyond this, not the ladder's
	} {
		s.adm.queued.Store(tc.queued)
		if got := s.degradeTier(); got != tc.tier {
			t.Errorf("degradeTier at queued=%d = %d, want %d", tc.queued, got, tc.tier)
		}
	}
	s.adm.queued.Store(0)
}

// Satellite: the ladder edges end to end — a request arriving with the queue
// exactly at cap is answered heuristically (not shed), one arriving past the
// hard cap is shed with 503 — and the serve.degraded.* counter sum equals the
// number of degraded responses on the wire at every edge.
func TestLadderAndShedBoundariesEndToEnd(t *testing.T) {
	s, ts, reg := newTestServer(t, Config{
		MaxConcurrent: 1,
		MaxQueue:      8,
		// Long enough for edge 1's real (heuristic) evaluation even under
		// -race; edge 2's queued-past-deadline arrival rides it into a 504.
		RequestTimeout:  2 * time.Second,
		WatchdogTimeout: -1,
	})
	degradedOnWire := int64(0)

	// Edge 1: queue exactly at cap (8) — tier 2, answered, not shed.
	s.adm.queued.Store(8)
	resp, data := post(t, ts.URL+"/v1/plan", searchPlanBody)
	pr, _ := planSource(t, resp, data)
	if resp.Header.Get("Served-Degraded") != degradeHeuristic {
		t.Fatalf("at-cap arrival: Served-Degraded = %q, want %q", resp.Header.Get("Served-Degraded"), degradeHeuristic)
	}
	if !pr.Result.Degraded {
		t.Fatal("at-cap answer not marked degraded")
	}
	degradedOnWire++
	if sum := degradedCounterSum(reg); sum != degradedOnWire {
		t.Fatalf("counter sum %d != %d degraded responses at the cap edge", sum, degradedOnWire)
	}

	// Edge 2: one slot below the hard cap (15 queued, cap 16), pool wedged.
	// The arrival becomes the 16th waiter — exactly at the hard cap, still
	// queued, not shed — and times out with 504 when no slot frees.
	s.adm.sem <- struct{}{} // wedge the only evaluation slot
	s.adm.queued.Store(15)
	resp, data = post(t, ts.URL+"/v1/plan", `{"arch":"edge","model":"bert","seq_len":2048,"system":"unfused"}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("hard-cap-edge arrival: status %d (%s), want 504 (queued, then deadline)", resp.StatusCode, data)
	}
	if got := reg.Counter("serve.shed").Value(); got != 0 {
		t.Fatalf("serve.shed = %d after an at-hard-cap arrival, want 0", got)
	}

	// Edge 3: exactly at the hard cap (16 queued) — the next arrival is shed.
	s.adm.queued.Store(16)
	resp, data = post(t, ts.URL+"/v1/plan", `{"arch":"edge","model":"bert","seq_len":4096,"system":"unfused"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("past-hard-cap arrival: status %d (%s), want 503", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if got := reg.Counter("serve.shed").Value(); got != 1 {
		t.Fatalf("serve.shed = %d, want 1", got)
	}

	// Errors carry no Served-Degraded header and bump no degraded counter:
	// the sum invariant still holds after both error edges.
	if sum := degradedCounterSum(reg); sum != degradedOnWire {
		t.Fatalf("counter sum %d != %d degraded responses after the shed edges", sum, degradedOnWire)
	}
	<-s.adm.sem
	s.adm.queued.Store(0)
}
