package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/fusedmindlab/transfusion/internal/obs"
)

// FuzzServePlan throws arbitrary bodies at the /v1/plan decoder and handler:
// malformed JSON, wrong field types, extreme extents, unknown fields. The
// handler must never panic, must answer a well-formed JSON error with a 4xx
// for anything invalid, and any 200 body must decode back into a
// PlanResponse with a plausible result. Server caps are kept tiny so even a
// "valid" fuzz input evaluates in microseconds.
func FuzzServePlan(f *testing.F) {
	seeds := []string{
		`{"arch":"edge","model":"bert","seq_len":1024,"system":"unfused"}`,
		`{"arch":"edge","model":"bert","seq_len":1024,"system":"transfusion","search_budget":2}`,
		`{"arch":"cloud","model":"llama3","seq_len":4096,"system":"fusemax","batch":64,"causal":true}`,
		`{"arch":`,
		`{}`,
		`null`,
		`[1,2,3]`,
		`{"arch":"edge","model":"bert","seq_len":"big","system":"unfused"}`,
		`{"arch":"edge","model":"bert","seq_len":1e30,"system":"unfused"}`,
		`{"arch":"edge","model":"bert","seq_len":-9223372036854775808,"system":"unfused"}`,
		`{"arch":"edge","model":"bert","seq_len":1024,"system":"unfused","batch":-1}`,
		`{"arch":"edge","model":"bert","seq_len":1024,"system":"unfused","extra":1}`,
		`{"arch":"edge","model":"bert","seq_len":1024,"system":"unfused"}{"trailing":true}`,
		`{"arch":"\u0000","model":"bert","seq_len":1024,"system":"unfused"}`,
		strings.Repeat("[", 1000),
	}
	for _, s := range seeds {
		f.Add(s)
	}

	srv := New(Config{
		MaxSeqLen:       4096,
		MaxSearchBudget: 8,
		Parallelism:     1,
		CacheEntries:    64,
	}, obs.NewRegistry(), context.Background())
	handler := srv.Handler()

	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest(http.MethodPost, "/v1/plan", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req) // must not panic

		resp := rec.Result()
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("reading recorded body: %v", err)
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			var pr PlanResponse
			if err := json.Unmarshal(data, &pr); err != nil {
				t.Fatalf("200 body is not a PlanResponse: %v\n%s", err, data)
			}
			if pr.Result.Cycles <= 0 || pr.Result.System == "" {
				t.Fatalf("200 with implausible result: %+v", pr.Result)
			}
		case resp.StatusCode >= 400 && resp.StatusCode < 500:
			var er errorResponse
			if err := json.Unmarshal(data, &er); err != nil {
				t.Fatalf("%d body is not an errorResponse: %v\n%s", resp.StatusCode, err, data)
			}
			if er.Status != resp.StatusCode || er.Error == "" {
				t.Fatalf("%d with inconsistent error body: %+v", resp.StatusCode, er)
			}
		default:
			// No fuzz input should reach a 5xx: decoding and validation run
			// before any evaluation, and the evaluation itself is bounded by
			// the tiny caps above.
			t.Fatalf("unexpected status %d:\n%s", resp.StatusCode, data)
		}
	})
}
