package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22222")
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Demo" {
		t.Fatalf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name ") {
		t.Fatalf("header line = %q", lines[1])
	}
	if !strings.Contains(lines[2], "-----") {
		t.Fatalf("separator line = %q", lines[2])
	}
	if len(lines) != 5 {
		t.Fatalf("got %d lines: %q", len(lines), out)
	}
	// Column alignment: "value" column starts at the same offset everywhere.
	col := strings.Index(lines[1], "value")
	if lines[3][col:col+1] != "1" || lines[4][col:col+5] != "22222" {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestTablePadsShortRows(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("only")
	if tb.NumRows() != 1 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	if !strings.Contains(tb.Render(), "only") {
		t.Fatal("row missing")
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456, 2) != "1.23" {
		t.Fatalf("F = %q", F(1.23456, 2))
	}
	if Sci(12345.0) != "1.234e+04" && Sci(12345.0) != "1.235e+04" {
		t.Fatalf("Sci = %q", Sci(12345.0))
	}
	if Pct(0.58) != "58%" {
		t.Fatalf("Pct = %q", Pct(0.58))
	}
}

func TestSeqLabel(t *testing.T) {
	cases := map[int]string{
		1024:    "1K",
		4096:    "4K",
		65536:   "64K",
		1 << 20: "1M",
		999:     "999",
		1500:    "1500",
	}
	for n, want := range cases {
		if got := SeqLabel(n); got != want {
			t.Errorf("SeqLabel(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("Geomean(2,8) = %v", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Fatalf("Geomean(nil) = %v", g)
	}
	// Non-positive values skipped.
	if g := Geomean([]float64{4, 0, -1}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("Geomean with non-positives = %v", g)
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("ignored", "a", "b")
	tb.AddRow("x", "1,5")
	tb.AddRow("quote\"y", "2")
	out := tb.CSV()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d: %q", len(lines), out)
	}
	if lines[0] != "a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != `x,"1,5"` {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if lines[2] != `"quote""y",2` {
		t.Fatalf("row 2 = %q", lines[2])
	}
}

func TestRowsReturnsDeepCopy(t *testing.T) {
	tbl := NewTable("t", "a", "b")
	tbl.AddRow("1", "2")
	tbl.AddRow("3")
	rows := tbl.Rows()
	if len(rows) != 2 || rows[0][0] != "1" || rows[1][1] != "" {
		t.Fatalf("rows = %v", rows)
	}
	rows[0][0] = "mutated"
	if tbl.Rows()[0][0] != "1" {
		t.Fatal("Rows aliases the table's internal state")
	}
}
