// Package report renders the experiment harness's tables and series as
// aligned ASCII, and provides the aggregate statistics (geometric means)
// the paper's headline numbers use.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns a deep copy of the data rows, so callers (golden-file
// serialisation, diffing) can inspect cells without aliasing the table.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}

// Render returns the aligned table text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float with the given precision, trimming to a compact form.
func F(v float64, prec int) string {
	return fmt.Sprintf("%.*f", prec, v)
}

// Sci formats a float in scientific notation.
func Sci(v float64) string {
	return fmt.Sprintf("%.3e", v)
}

// Pct formats a fraction as a percentage.
func Pct(v float64) string {
	return fmt.Sprintf("%.0f%%", v*100)
}

// SeqLabel renders a sequence length as "1K", "64K", "1M".
func SeqLabel(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// Geomean returns the geometric mean of positive values; zero for an empty
// slice. Non-positive values are skipped (they would poison the log).
func Geomean(vals []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vals {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// CSV renders the table as RFC-4180-style CSV (headers first, fields
// quoted only when they contain a comma, quote, or newline).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRecord := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(csvEscape(c))
		}
		b.WriteString("\n")
	}
	writeRecord(t.Headers)
	for _, row := range t.rows {
		writeRecord(row)
	}
	return b.String()
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
}
