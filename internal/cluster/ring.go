// Package cluster is transfusiond's peer-aware tier: a consistent-hash ring
// that shards the RunSpec.CanonicalKey() space across a static set of
// replicas, and a small replica-to-replica plan-fetch transport built on the
// public client package (so peer RPCs get the same retries, per-endpoint
// circuit breaker, and typed errors external callers do).
//
// The contract the serving layer builds on:
//
//   - every replica, given the same member list, computes the same owner for
//     every key (deterministic ordering — member insertion order is
//     irrelevant);
//   - keys spread across replicas within a documented bound (±30% of fair
//     share at >= 128 virtual nodes per member, property-tested);
//   - topology changes remap the minimal key fraction: adding a member moves
//     keys only onto the new member, removing a member moves only the keys it
//     owned (property-tested — no full reshuffle, so a rolling restart does
//     not stampede the search tier).
package cluster

import (
	"fmt"
	"sort"
)

// DefaultVNodes is the virtual-node count per member when Config.VNodes is
// zero. 128 points per member keeps per-replica load within ±30% of fair
// share (see TestRingBalanceWithinDocumentedBound) at negligible memory cost.
const DefaultVNodes = 128

// point is one virtual node on the ring.
type point struct {
	hash   uint64
	member string
}

// Ring is an immutable consistent-hash ring. Build one with NewRing; derive
// changed topologies with Add/Remove (the originals are untouched, so a
// topology swap is a pointer store).
type Ring struct {
	vnodes  int
	points  []point  // sorted by (hash, member)
	members []string // sorted, deduplicated
}

// fnv64 is FNV-1a, the same fold the chaos package uses for site names.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix is the SplitMix64 finalizer: FNV alone clusters on short, similar
// strings (peer URLs differ by one port digit; canonical keys by one seq
// digit), and the finalizer scatters those into a uniform stream.
func mix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// hashKey places a canonical key on the ring.
func hashKey(key string) uint64 { return mix(fnv64(key)) }

// hashPoint places virtual node i of a member on the ring.
func hashPoint(member string, i int) uint64 {
	return mix(fnv64(member) ^ mix(uint64(i)))
}

// NewRing builds a ring with vnodes virtual nodes per member (<= 0 takes
// DefaultVNodes). Members are deduplicated; order is irrelevant — two rings
// built from permutations of the same list are identical.
func NewRing(vnodes int, members ...string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(members))
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if m != "" && !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	r := &Ring{vnodes: vnodes, members: uniq}
	r.points = make([]point, 0, len(uniq)*vnodes)
	for _, m := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{hash: hashPoint(m, i), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare, but possible) break on the member
		// name so ownership never depends on sort stability.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Owner returns the member owning key: the first virtual node at or clockwise
// of the key's hash, wrapping at the top. An empty ring owns nothing ("").
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// Members returns the ring's member list, sorted. The slice is a copy.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Has reports whether member is on the ring.
func (r *Ring) Has(member string) bool {
	i := sort.SearchStrings(r.members, member)
	return i < len(r.members) && r.members[i] == member
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Add returns a new ring with member joined; r is unchanged. Adding an
// existing member returns an identical ring.
func (r *Ring) Add(member string) *Ring {
	return NewRing(r.vnodes, append(r.Members(), member)...)
}

// Remove returns a new ring with member left; r is unchanged.
func (r *Ring) Remove(member string) *Ring {
	kept := make([]string, 0, len(r.members))
	for _, m := range r.members {
		if m != member {
			kept = append(kept, m)
		}
	}
	return NewRing(r.vnodes, kept...)
}

// String summarises the ring for logging.
func (r *Ring) String() string {
	return fmt.Sprintf("cluster: ring of %d members, %d vnodes each", len(r.members), r.vnodes)
}
