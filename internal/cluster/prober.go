package cluster

import (
	"context"
	"sync"
	"time"

	"github.com/fusedmindlab/transfusion/internal/chaos"
)

// Prober is the active failure detector: one goroutine per configured peer
// hits the peer's /readyz on a jittered interval and feeds the outcome into
// Cluster.ReportProbe. Probes to one peer never overlap (the loop is
// synchronous), so "per-peer backoff" falls out of the delay schedule: dead
// peers are probed at 4x the base interval, everyone else at base, each gap
// jittered deterministically from the configured seed.
//
// The prober honours the chaos site cluster.probe (struck once per probe,
// before the round-trip) so membership tests can kill, partition, and slow
// peers on a fixed-seed schedule without real processes dying.
type Prober struct {
	c      *Cluster
	cancel context.CancelFunc
	done   chan struct{}
	wg     sync.WaitGroup // per-peer probe loops

	mu      sync.Mutex
	running map[string]bool
}

// StartProber launches the failure detector; ctx cancellation or Stop ends
// it. At most one prober per Cluster — a second call returns the running
// one. The context also carries the chaos injector, if any.
func (c *Cluster) StartProber(ctx context.Context) *Prober {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.prober != nil {
		return c.prober
	}
	pctx, cancel := context.WithCancel(ctx)
	p := &Prober{
		c:       c,
		cancel:  cancel,
		done:    make(chan struct{}),
		running: make(map[string]bool),
	}
	c.prober = p
	go p.supervise(pctx)
	return p
}

// Stop halts all probe loops and waits for in-flight probes to finish. Safe
// to call more than once.
func (p *Prober) Stop() {
	p.cancel()
	<-p.done
}

// supervise keeps one probe loop running per configured peer, re-checking
// at the base interval so peers added by a Reload get probed and loops for
// removed peers wind down (each loop exits on its own when its peer leaves
// the configured set).
func (p *Prober) supervise(ctx context.Context) {
	defer close(p.done)
	interval := p.c.probe.Interval
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		for _, peer := range p.c.Peers() {
			if peer == p.c.self {
				continue
			}
			p.mu.Lock()
			if !p.running[peer] {
				p.running[peer] = true
				p.wg.Add(1)
				go p.probeLoop(ctx, peer)
			}
			p.mu.Unlock()
		}
		select {
		case <-ctx.Done():
			p.wg.Wait()
			return
		case <-ticker.C:
		}
	}
}

// probeLoop drives one peer: sleep the jittered delay, probe once, repeat —
// until the context ends or the peer leaves the configured set.
func (p *Prober) probeLoop(ctx context.Context, peer string) {
	defer p.wg.Done()
	defer func() {
		p.mu.Lock()
		delete(p.running, peer)
		p.mu.Unlock()
	}()
	timer := time.NewTimer(0)
	defer timer.Stop()
	for n := 0; ; n++ {
		if !p.c.hasPeer(peer) {
			return
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(p.delay(peer, n))
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
		}
		if !p.c.hasPeer(peer) {
			return
		}
		p.probeOnce(ctx, peer)
	}
}

// delay computes the gap before probe n of peer: the base interval (4x for
// dead peers — the per-peer backoff), jittered into [0.5, 1.5)x by a
// deterministic hash of (seed, peer, n). Probe 0 gets a quarter of that so
// boot converges fast while replicas still spread out.
func (p *Prober) delay(peer string, n int) time.Duration {
	cfg := p.c.probe
	base := cfg.Interval
	if p.c.State(peer) == StateDead {
		base *= 4
	}
	u := mix(cfg.Seed ^ fnv64(peer) ^ mix(uint64(n)))
	frac := 0.5 + float64(u>>11)/float64(1<<53) // [0.5, 1.5)
	d := time.Duration(float64(base) * frac)
	if n == 0 {
		d /= 4
	}
	return d
}

// probeOnce runs a single /readyz round-trip and reports the verdict. A
// failure observed only because the prober itself is shutting down is
// discarded — it says nothing about the peer.
func (p *Prober) probeOnce(ctx context.Context, peer string) {
	cfg := p.c.probe
	pctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()
	start := time.Now()
	err := chaos.SiteFrom(ctx, chaos.SiteClusterProbe).Strike(pctx)
	if err == nil {
		err = p.c.pool.For(peer).Ready(pctx)
	}
	rtt := time.Since(start)
	if err != nil && ctx.Err() != nil {
		return
	}
	p.c.reg.Counter("cluster.probe.attempts").Inc()
	if err != nil {
		p.c.reg.Counter("cluster.probe.failures").Inc()
		// Failures report the full probe timeout into the EWMA: whether
		// the probe timed out or was refused instantly, the peer is not
		// answering at a usable latency.
		rtt = cfg.Timeout
	}
	p.c.ReportProbe(peer, err == nil, rtt)
}

// hasPeer reports whether peer is still in the configured set (self aside).
func (c *Cluster) hasPeer(peer string) bool {
	if peer == c.self {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.health[peer]
	return ok
}
