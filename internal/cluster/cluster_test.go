package cluster

import (
	"context"
	"strings"
	"testing"

	"github.com/fusedmindlab/transfusion/client"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Self: "http://a:1"}); err == nil {
		t.Fatal("empty peer list accepted")
	}
	if _, err := New(Config{Self: "http://c:1", Peers: []string{"http://a:1", "http://b:1"}}); err == nil {
		t.Fatal("self outside the peer list accepted")
	}
	if _, err := New(Config{Self: "ftp://a:1", Peers: []string{"ftp://a:1"}}); err == nil {
		t.Fatal("non-http scheme accepted")
	}
	if _, err := New(Config{Self: "http://", Peers: []string{"http://"}}); err == nil {
		t.Fatal("hostless URL accepted")
	}
}

// Trailing slashes and duplicates must not split one replica into two ring
// identities — flag typos should normalise away, not skew ownership.
func TestNewNormalises(t *testing.T) {
	c, err := New(Config{
		Self:  "http://a:1/",
		Peers: []string{"http://a:1", "http://a:1/", "http://b:1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Members(); len(got) != 2 || got[0] != "http://a:1" || got[1] != "http://b:1" {
		t.Fatalf("members = %v, want [http://a:1 http://b:1]", got)
	}
	if !c.IsSelf("http://a:1") || c.IsSelf("http://b:1") {
		t.Fatalf("self resolution broken: self=%q", c.Self())
	}
}

// The degenerate single-member cluster is valid and owns every key — one
// -peers template can cover every replica count.
func TestSingleMemberOwnsEverything(t *testing.T) {
	c, err := New(Config{Self: "http://only:1", Peers: []string{"http://only:1"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(100, 5) {
		if owner := c.Owner(k); !c.IsSelf(owner) {
			t.Fatalf("single-member cluster gave key %q to %q", k, owner)
		}
	}
}

func TestFetchRejectsSelfAndStrangers(t *testing.T) {
	c, err := New(Config{Self: "http://a:1", Peers: []string{"http://a:1", "http://b:1"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Fetch(context.Background(), "http://a:1", client.PlanRequest{}); err == nil || !strings.Contains(err.Error(), "self") {
		t.Fatalf("fetch from self: err = %v, want self-fetch error", err)
	}
	if _, err := c.Fetch(context.Background(), "http://z:1", client.PlanRequest{}); err == nil || !strings.Contains(err.Error(), "member") {
		t.Fatalf("fetch from non-member: err = %v, want membership error", err)
	}
}
