package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/fusedmindlab/transfusion/internal/chaos"
	"github.com/fusedmindlab/transfusion/internal/obs"
)

// newTestCluster builds a 3-member cluster (self = a) with the default
// hysteresis thresholds: 2 consecutive failures to suspect, 4 to dead, 2
// successes to revive.
func newTestCluster(t *testing.T, reg *obs.Registry) *Cluster {
	t.Helper()
	c, err := New(Config{
		Self:    "http://a:1",
		Peers:   []string{"http://a:1", "http://b:1", "http://c:1"},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// The detector must walk alive -> suspect -> dead on consecutive failures,
// rebuild the ring only at the dead boundary, and resurrect after consecutive
// successes — with the generation counting exactly the two boundary events.
func TestHysteresisLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	c := newTestCluster(t, reg)
	b := "http://b:1"
	if got := c.Generation(); got != 1 {
		t.Fatalf("initial generation = %d, want 1", got)
	}

	c.ReportProbe(b, false, time.Second)
	if st := c.State(b); st != StateAlive {
		t.Fatalf("after 1 failure state = %v, want alive (hysteresis)", st)
	}
	c.ReportProbe(b, false, time.Second)
	if st := c.State(b); st != StateSuspect {
		t.Fatalf("after 2 failures state = %v, want suspect", st)
	}
	// Suspect keeps ownership: the ring and generation must not move.
	if got := c.Generation(); got != 1 {
		t.Fatalf("suspect bumped generation to %d", got)
	}
	if len(c.Members()) != 3 {
		t.Fatalf("suspect member left the ring: %v", c.Members())
	}

	c.ReportProbe(b, false, time.Second)
	c.ReportProbe(b, false, time.Second)
	if st := c.State(b); st != StateDead {
		t.Fatalf("after 4 failures state = %v, want dead", st)
	}
	if got := c.Generation(); got != 2 {
		t.Fatalf("death generation = %d, want 2", got)
	}
	if m := c.Members(); len(m) != 2 || m[0] != "http://a:1" || m[1] != "http://c:1" {
		t.Fatalf("dead member still owns keys: %v", m)
	}
	if v := reg.Gauge("cluster.member.dead").Value(); v != 1 {
		t.Fatalf("cluster.member.dead = %v, want 1", v)
	}

	c.ReportProbe(b, true, time.Millisecond)
	if st := c.State(b); st != StateDead {
		t.Fatalf("one success resurrected a dead peer (state %v)", st)
	}
	c.ReportProbe(b, true, time.Millisecond)
	if st := c.State(b); st != StateAlive {
		t.Fatalf("after 2 successes state = %v, want alive", st)
	}
	if got := c.Generation(); got != 3 {
		t.Fatalf("resurrection generation = %d, want 3", got)
	}
	if len(c.Members()) != 3 {
		t.Fatalf("revived member missing from ring: %v", c.Members())
	}
	if v := reg.Gauge("cluster.ring.generation").Value(); v != 3 {
		t.Fatalf("cluster.ring.generation gauge = %v, want 3", v)
	}
}

// Alternating failure/success — one slow scrape at a time — must never move
// the state machine past alive: hysteresis requires *consecutive* failures.
func TestSingleFailuresCannotFlapRing(t *testing.T) {
	c := newTestCluster(t, nil)
	b := "http://b:1"
	for i := 0; i < 50; i++ {
		c.ReportProbe(b, false, time.Second)
		c.ReportProbe(b, true, time.Millisecond)
	}
	if st := c.State(b); st != StateAlive {
		t.Fatalf("alternating outcomes left state %v, want alive", st)
	}
	if got := c.Generation(); got != 1 {
		t.Fatalf("alternating outcomes bumped generation to %d", got)
	}
}

// Ring-generation edge cases around Reload: an empty list degrades to
// single-node mode, a list without self is rejected with the ring unchanged,
// and identical back-to-back reloads coalesce into zero rebuilds.
func TestReloadEdgeCases(t *testing.T) {
	c := newTestCluster(t, nil)

	// Self missing: clear error, ring untouched.
	err := c.Reload([]string{"http://b:1", "http://c:1"})
	if err == nil || !strings.Contains(err.Error(), "self") {
		t.Fatalf("reload without self: err = %v, want mention of self", err)
	}
	if got := c.Generation(); got != 1 {
		t.Fatalf("rejected reload bumped generation to %d", got)
	}
	if len(c.Members()) != 3 {
		t.Fatalf("rejected reload changed members: %v", c.Members())
	}

	// Identical list: coalesces, no rebuild.
	if err := c.Reload([]string{"http://a:1", "http://b:1", "http://c:1"}); err != nil {
		t.Fatal(err)
	}
	if got := c.Generation(); got != 1 {
		t.Fatalf("identical reload bumped generation to %d", got)
	}

	// Empty list: single-node mode, one rebuild.
	if err := c.Reload(nil); err != nil {
		t.Fatal(err)
	}
	if m := c.Members(); len(m) != 1 || m[0] != "http://a:1" {
		t.Fatalf("empty reload members = %v, want just self", m)
	}
	if got := c.Generation(); got != 2 {
		t.Fatalf("single-node reload generation = %d, want 2", got)
	}
	for _, k := range testKeys(50, 3) {
		if !c.IsSelf(c.Owner(k)) {
			t.Fatalf("single-node mode gave key %q to %q", k, c.Owner(k))
		}
	}

	// Growing back: new peers join alive.
	if err := c.Reload([]string{"http://a:1", "http://d:1"}); err != nil {
		t.Fatal(err)
	}
	if st := c.State("http://d:1"); st != StateAlive {
		t.Fatalf("new peer state = %v, want alive", st)
	}
	if got := c.Generation(); got != 3 {
		t.Fatalf("rejoin generation = %d, want 3", got)
	}
}

// PrevOwner must answer only for keys whose ownership actually moved in the
// last generation, and name the previous ring's owner.
func TestPrevOwnerTracksLastGeneration(t *testing.T) {
	c := newTestCluster(t, nil)
	b := "http://b:1"
	if got := c.PrevOwner("any"); got != "" {
		t.Fatalf("PrevOwner before any reconfiguration = %q, want empty", got)
	}

	keys := testKeys(300, 9)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = c.Owner(k)
	}
	for i := 0; i < 4; i++ {
		c.ReportProbe(b, false, time.Second)
	}
	if c.State(b) != StateDead {
		t.Fatal("setup: b not dead")
	}
	moved := 0
	for _, k := range keys {
		prev := c.PrevOwner(k)
		if before[k] == c.Owner(k) {
			if prev != "" {
				t.Fatalf("unmoved key %q has PrevOwner %q", k, prev)
			}
			continue
		}
		moved++
		if prev != b {
			t.Fatalf("moved key %q: PrevOwner = %q, want %q", k, prev, b)
		}
	}
	if moved == 0 {
		t.Fatal("no key moved when a member died; test is vacuous")
	}
}

// PeerTimeout: flat for healthy peers (a fetch legitimately rides the
// owner's full search), clamped once the probe EWMA shows the peer slow or
// the detector has it past alive.
func TestPeerTimeoutClamp(t *testing.T) {
	c, err := New(Config{
		Self:         "http://a:1",
		Peers:        []string{"http://a:1", "http://b:1"},
		FetchTimeout: 10 * time.Second,
		Probe:        ProbeConfig{Timeout: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	b := "http://b:1"
	if got := c.PeerTimeout(b); got != 10*time.Second {
		t.Fatalf("no samples: PeerTimeout = %v, want flat 10s", got)
	}
	c.ReportProbe(b, true, 2*time.Millisecond)
	if got := c.PeerTimeout(b); got != 10*time.Second {
		t.Fatalf("fast healthy peer: PeerTimeout = %v, want flat 10s", got)
	}
	// Drive the EWMA up with slow-but-successful probes: still alive, but the
	// clamp must engage well below the flat timeout.
	for i := 0; i < 20; i++ {
		c.ReportProbe(b, true, 900*time.Millisecond)
	}
	got := c.PeerTimeout(b)
	if got >= 10*time.Second || got < 250*time.Millisecond {
		t.Fatalf("slow alive peer: PeerTimeout = %v, want clamped into [250ms, 10s)", got)
	}
	// A suspect peer with a fast historical EWMA clamps to the floor region.
	c2 := newTestCluster(t, nil)
	c2.ReportProbe("http://b:1", true, time.Millisecond)
	c2.ReportProbe("http://b:1", false, time.Millisecond)
	c2.ReportProbe("http://b:1", false, time.Millisecond)
	if c2.State("http://b:1") != StateSuspect {
		t.Fatal("setup: not suspect")
	}
	if got := c2.PeerTimeout("http://b:1"); got >= c2.FetchTimeout() {
		t.Fatalf("suspect peer kept the flat timeout %v", got)
	}
}

// Ownership reads race ring rebuilds under -race: the atomic view swap must
// never expose a torn ring (an owner outside the member set) and the
// generation must be monotone.
func TestConcurrentReloadAndOwnershipReads(t *testing.T) {
	c := newTestCluster(t, nil)
	keys := testKeys(64, 11)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastGen uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				gen := c.Generation()
				if gen < lastGen {
					t.Error("generation went backwards")
					return
				}
				lastGen = gen
				members := map[string]bool{}
				for _, m := range c.Members() {
					members[m] = true
				}
				for _, k := range keys {
					if o := c.Owner(k); o != "" && !members[o] {
						// The owner may come from a newer view than the
						// member snapshot; re-check against the live ring
						// before declaring a torn read.
						fresh := map[string]bool{}
						for _, m := range c.Members() {
							fresh[m] = true
						}
						if !fresh[o] {
							t.Errorf("owner %q outside member set", o)
							return
						}
					}
				}
			}
		}()
	}
	lists := [][]string{
		{"http://a:1", "http://b:1", "http://c:1"},
		{"http://a:1", "http://b:1"},
		{"http://a:1", "http://b:1", "http://c:1", "http://d:1"},
		{"http://a:1"},
	}
	for i := 0; i < 200; i++ {
		if err := c.Reload(lists[i%len(lists)]); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// The prober against real listeners: a peer whose /readyz starts failing is
// walked to dead and out of the ring; when it answers again it is revived
// and readmitted. OnChange observes exactly the two boundary generations.
func TestProberDetectsDeathAndResurrection(t *testing.T) {
	var sick atomic.Bool
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if sick.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer peer.Close()

	var gens []uint64
	var gensMu sync.Mutex
	reg := obs.NewRegistry()
	c, err := New(Config{
		Self:    "http://self:1",
		Peers:   []string{"http://self:1", peer.URL},
		Metrics: reg,
		Probe: ProbeConfig{
			Interval:     15 * time.Millisecond,
			Timeout:      300 * time.Millisecond,
			SuspectAfter: 2,
			DeadAfter:    3,
			ReviveAfter:  2,
			Seed:         7,
		},
		OnChange: func(gen uint64, members []string) {
			gensMu.Lock()
			gens = append(gens, gen)
			gensMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := c.StartProber(ctx)
	defer p.Stop()
	if again := c.StartProber(ctx); again != p {
		t.Fatal("second StartProber built a second prober")
	}

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	waitFor("first successful probes", func() bool {
		return reg.Counter("cluster.probe.attempts").Value() >= 2
	})
	if c.State(peer.URL) != StateAlive {
		t.Fatalf("healthy peer state = %v", c.State(peer.URL))
	}

	sick.Store(true)
	waitFor("death", func() bool { return c.State(peer.URL) == StateDead })
	if len(c.Members()) != 1 {
		t.Fatalf("dead peer still in ring: %v", c.Members())
	}

	sick.Store(false)
	waitFor("resurrection", func() bool { return c.State(peer.URL) == StateAlive })
	if len(c.Members()) != 2 {
		t.Fatalf("revived peer not readmitted: %v", c.Members())
	}

	gensMu.Lock()
	got := append([]uint64(nil), gens...)
	gensMu.Unlock()
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("OnChange generations = %v, want [2 3]", got)
	}
}

// The cluster.probe chaos site must drive the same lifecycle without any
// real failure: an error schedule striking every probe kills the peer; the
// schedule's @limit exhausting resurrects it.
func TestProberChaosSiteDrivesLifecycle(t *testing.T) {
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer peer.Close()

	inj, err := chaos.Parse("cluster.probe=error@limit=6", 42)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{
		Self:  "http://self:1",
		Peers: []string{"http://self:1", peer.URL},
		Probe: ProbeConfig{
			Interval:     15 * time.Millisecond,
			Timeout:      300 * time.Millisecond,
			SuspectAfter: 2,
			DeadAfter:    3,
			ReviveAfter:  2,
			Seed:         7,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := c.StartProber(chaos.With(ctx, inj))
	defer p.Stop()

	deadline := time.Now().Add(10 * time.Second)
	for c.State(peer.URL) != StateDead {
		if time.Now().After(deadline) {
			t.Fatal("injected probe errors never killed the peer")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for c.State(peer.URL) != StateAlive {
		if time.Now().After(deadline) {
			t.Fatal("peer never revived after the chaos budget drained")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// A reload that drops a peer must stop its probe loop (no leaked goroutines
// probing ex-members) and re-adding it must resume probing.
func TestProberFollowsReloads(t *testing.T) {
	var hits atomic.Int64
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer peer.Close()

	c, err := New(Config{
		Self:  "http://self:1",
		Peers: []string{"http://self:1", peer.URL},
		Probe: ProbeConfig{Interval: 10 * time.Millisecond, Timeout: 300 * time.Millisecond, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := c.StartProber(ctx)
	defer p.Stop()

	deadline := time.Now().Add(10 * time.Second)
	for hits.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("prober never reached the peer")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := c.Reload([]string{"http://self:1"}); err != nil {
		t.Fatal(err)
	}
	// Give in-flight probes a moment to finish, then verify probing stopped.
	time.Sleep(50 * time.Millisecond)
	base := hits.Load()
	time.Sleep(100 * time.Millisecond)
	if hits.Load() > base+1 {
		t.Fatalf("dropped peer still being probed (%d -> %d)", base, hits.Load())
	}
	if err := c.Reload([]string{"http://self:1", peer.URL}); err != nil {
		t.Fatal(err)
	}
	rejoined := hits.Load()
	for hits.Load() == rejoined {
		if time.Now().After(deadline) {
			t.Fatal("probing never resumed after the peer rejoined")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// CanFetch gates who a cache-only fetch may target: configured members that
// are not dead, plus — the scale-down grace window — members the latest
// reload removed, for as long as they remain in the previous ring. One more
// generation ends the grace.
func TestCanFetchGraceForDepartedMembers(t *testing.T) {
	c := newTestCluster(t, nil)
	a, b, cc := "http://a:1", "http://b:1", "http://c:1"

	if c.CanFetch(a) {
		t.Fatal("self must never be fetchable")
	}
	if c.CanFetch("") {
		t.Fatal("empty peer must never be fetchable")
	}
	if !c.CanFetch(b) || !c.CanFetch(cc) {
		t.Fatal("configured alive peers must be fetchable")
	}
	if c.CanFetch("http://stranger:1") {
		t.Fatal("an unconfigured stranger must not be fetchable")
	}

	// Scale down: b leaves the configured set but stays in the previous
	// ring, so its warm caches remain reachable for the remap protocol.
	if err := c.Reload([]string{a, cc}); err != nil {
		t.Fatal(err)
	}
	if !c.CanFetch(b) {
		t.Fatal("freshly departed member must stay fetchable for one generation")
	}
	if !c.CanFetch(cc) {
		t.Fatal("remaining member must stay fetchable")
	}

	// Next generation: the grace window closes.
	if err := c.Reload([]string{a}); err != nil {
		t.Fatal(err)
	}
	if c.CanFetch(b) {
		t.Fatal("departed member must stop being fetchable after a further generation")
	}

	// A dead configured member is never fetchable.
	c2 := newTestCluster(t, nil)
	for i := 0; i < 4; i++ {
		c2.ReportProbe(b, false, time.Millisecond)
	}
	if c2.State(b) != StateDead {
		t.Fatalf("state after 4 failures = %v, want dead", c2.State(b))
	}
	if c2.CanFetch(b) {
		t.Fatal("dead member must not be fetchable")
	}
}
