package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// synthetic canonical keys shaped like the real ones: same prefix structure,
// differing in the fields that actually vary between requests.
func testKeys(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	arches := []string{"edge", "mobile", "server"}
	models := []string{"bert", "gpt2", "vit", "t5"}
	systems := []string{"unfused", "fused", "pipelined", "transfusion"}
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("arch=%q|archfile=%q|model=%q|seq=%d|sys=%q|batch=%d|budget=%d|causal=%t|timeout=%s|heur=%t",
			arches[rng.Intn(len(arches))], "", models[rng.Intn(len(models))],
			64*(1+rng.Intn(256)), systems[rng.Intn(len(systems))],
			1+rng.Intn(8), rng.Intn(256), rng.Intn(2) == 0, "0s", false)
	}
	return keys
}

func testMembers(n int) []string {
	members := make([]string, n)
	for i := range members {
		members[i] = fmt.Sprintf("http://replica-%d:8080", i)
	}
	return members
}

// Ownership must be a pure function of the member set: any permutation of the
// member list, and any Add/Remove path arriving at the same set, produces the
// same owner for every key. This is the property the whole cluster tier rests
// on — replicas never exchange ring state, they each rebuild it from -peers.
func TestRingDeterministicAcrossOrderings(t *testing.T) {
	members := testMembers(5)
	keys := testKeys(2000, 1)

	forward := NewRing(0, members...)
	reversed := make([]string, len(members))
	for i, m := range members {
		reversed[len(members)-1-i] = m
	}
	backward := NewRing(0, reversed...)
	// Same set via a different construction path: build with one extra
	// member, then remove it.
	viaChange := NewRing(0, append([]string{"http://replica-9:8080"}, members...)...).Remove("http://replica-9:8080")

	for _, k := range keys {
		want := forward.Owner(k)
		if got := backward.Owner(k); got != want {
			t.Fatalf("owner depends on member order: %q vs %q for key %q", got, want, k)
		}
		if got := viaChange.Owner(k); got != want {
			t.Fatalf("owner depends on construction path: %q vs %q for key %q", got, want, k)
		}
	}
	if forward.Owner("any") == "" {
		t.Fatal("non-empty ring returned no owner")
	}
	if (&Ring{}).Owner("any") != "" || NewRing(0).Owner("any") != "" {
		t.Fatal("empty ring claimed an owner")
	}
}

// At the default virtual-node count, every member's share of a large seeded
// key population stays within the documented ±30% of fair share. Runs over
// several member counts and seeds so the bound is a property, not one lucky
// draw.
func TestRingBalanceWithinDocumentedBound(t *testing.T) {
	const keysPerTrial = 20000
	for _, nMembers := range []int{2, 3, 5, 8} {
		for seed := int64(1); seed <= 3; seed++ {
			members := testMembers(nMembers)
			ring := NewRing(DefaultVNodes, members...)
			counts := make(map[string]int, nMembers)
			for _, k := range testKeys(keysPerTrial, seed) {
				counts[ring.Owner(k)]++
			}
			fair := float64(keysPerTrial) / float64(nMembers)
			for _, m := range members {
				share := float64(counts[m]) / fair
				if share < 0.70 || share > 1.30 {
					t.Errorf("members=%d seed=%d: %s owns %.0f%% of fair share (want 70%%..130%%)",
						nMembers, seed, m, 100*share)
				}
			}
		}
	}
}

// Adding a member must move keys only onto the new member: a key whose owner
// changes must now belong to the joiner, and the moved fraction must be near
// the joiner's fair share — never a reshuffle between the old members.
func TestRingJoinRemapsMinimally(t *testing.T) {
	members := testMembers(4)
	keys := testKeys(20000, 7)
	before := NewRing(0, members...)
	joiner := "http://replica-new:8080"
	after := before.Add(joiner)

	moved := 0
	for _, k := range keys {
		ob, oa := before.Owner(k), after.Owner(k)
		if ob == oa {
			continue
		}
		if oa != joiner {
			t.Fatalf("join moved key %q between old members: %q -> %q", k, ob, oa)
		}
		moved++
	}
	// Fair share for the joiner is 1/5 of the keys; allow the same ±30%
	// tolerance the balance bound documents.
	frac := float64(moved) / float64(len(keys))
	if frac < 0.20*0.70 || frac > 0.20*1.30 {
		t.Errorf("join moved %.1f%% of keys; want ~20%% (±30%% relative)", 100*frac)
	}
}

// Removing a member must move only the keys it owned; everything else keeps
// its owner. The leaver's keys redistribute across the survivors.
func TestRingLeaveRemapsMinimally(t *testing.T) {
	members := testMembers(5)
	keys := testKeys(20000, 11)
	before := NewRing(0, members...)
	leaver := members[2]
	after := before.Remove(leaver)

	if after.Has(leaver) || after.Len() != 4 {
		t.Fatalf("remove left the ring in state %v", after.Members())
	}
	for _, k := range keys {
		ob, oa := before.Owner(k), after.Owner(k)
		if ob == leaver {
			if oa == leaver || oa == "" {
				t.Fatalf("leaver still owns key %q after removal", k)
			}
			continue
		}
		if ob != oa {
			t.Fatalf("removing %q moved unrelated key %q: %q -> %q", leaver, k, ob, oa)
		}
	}
}

// Add of an existing member and Remove of a stranger are identity operations,
// and the originals are untouched (immutability).
func TestRingAddRemoveEdgeCases(t *testing.T) {
	members := testMembers(3)
	ring := NewRing(0, members...)
	keys := testKeys(500, 3)

	same := ring.Add(members[0])
	gone := ring.Remove("http://not-a-member:1")
	for _, k := range keys {
		if ring.Owner(k) != same.Owner(k) {
			t.Fatalf("re-adding an existing member changed ownership of %q", k)
		}
		if ring.Owner(k) != gone.Owner(k) {
			t.Fatalf("removing a non-member changed ownership of %q", k)
		}
	}
	if ring.Len() != 3 || len(ring.Members()) != 3 {
		t.Fatalf("original ring mutated: %v", ring.Members())
	}
	// Duplicates collapse at construction.
	if NewRing(0, members[0], members[0], members[1]).Len() != 2 {
		t.Fatal("duplicate members were not collapsed")
	}
}
