package cluster

import (
	"fmt"
	"sort"
	"time"
)

// MemberState is one peer's position in the failure-detection lifecycle.
//
// Transitions are driven only by consecutive probe outcomes (hysteresis):
//
//	alive   --SuspectAfter consecutive failures-->  suspect
//	suspect --DeadAfter consecutive failures----->  dead
//	any     --ReviveAfter consecutive successes-->  alive
//
// Only the alive<->dead boundary rebuilds the ring: a suspect member keeps
// its key ownership (it may just be slow), it merely gets a clamped fetch
// timeout (see Cluster.PeerTimeout). One slow scrape can therefore never
// move a single key.
type MemberState int

const (
	StateAlive MemberState = iota
	StateSuspect
	StateDead
)

// String returns the state's metrics/log label.
func (s MemberState) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	default:
		return fmt.Sprintf("MemberState(%d)", int(s))
	}
}

// ProbeConfig tunes the failure detector. The zero value takes the defaults
// noted per field; thresholds count *consecutive* probe outcomes, so the
// detector has hysteresis by construction.
type ProbeConfig struct {
	// Interval is the base gap between two probes of the same peer (default
	// 2s). Each gap is jittered into [0.5, 1.5)x so replicas don't probe in
	// lockstep, and backs off 4x for dead peers so the prober doesn't hammer
	// corpses (resurrection is still noticed within ~4 intervals).
	Interval time.Duration
	// Timeout bounds one /readyz round-trip (default 1s). A probe that
	// outlives it counts as a failure. Timeout may exceed Interval: each
	// peer's probe loop is synchronous, so a slow probe simply delays that
	// peer's next probe rather than piling up — and a generous timeout is
	// what keeps a busy-but-alive peer from being mistaken for a dead one,
	// while genuinely dead peers still fail fast (connection refused).
	Timeout time.Duration
	// SuspectAfter is the consecutive-failure count that demotes alive to
	// suspect (default 2).
	SuspectAfter int
	// DeadAfter is the consecutive-failure count that declares a peer dead
	// and removes it from the ring (default 4; values <= SuspectAfter are
	// raised to SuspectAfter+1 so suspect is always visited first).
	DeadAfter int
	// ReviveAfter is the consecutive-success count that resurrects a
	// suspect or dead peer to alive (default 2).
	ReviveAfter int
	// Seed drives the deterministic probe jitter (default 1).
	Seed uint64
}

// withDefaults fills zero fields.
func (p ProbeConfig) withDefaults() ProbeConfig {
	if p.Interval <= 0 {
		p.Interval = 2 * time.Second
	}
	if p.Timeout <= 0 {
		p.Timeout = time.Second
	}
	if p.SuspectAfter <= 0 {
		p.SuspectAfter = 2
	}
	if p.DeadAfter <= p.SuspectAfter {
		p.DeadAfter = p.SuspectAfter + 1
	}
	if p.ReviveAfter <= 0 {
		p.ReviveAfter = 2
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// memberHealth is one peer's detector state. Guarded by Cluster.mu.
type memberHealth struct {
	state      MemberState
	consecFail int
	consecOK   int
	// ewmaMS is the exponentially-weighted moving average of probe
	// round-trip time in milliseconds (alpha 0.3; zero until the first
	// sample). Failed probes contribute the full probe timeout, so a peer
	// that stops answering sees its EWMA climb toward the timeout.
	ewmaMS float64
}

// view is one immutable generation of the ring, swapped atomically so
// ownership lookups on the request path never take the membership lock.
type view struct {
	ring *Ring
	// prev is the previous generation's ring (nil at generation 1). It is
	// kept exactly one generation deep: that is what the one-hop remap
	// protocol needs, and bounding it means a flapping peer can't chain
	// unbounded history.
	prev *Ring
	gen  uint64
}

// ewmaAlpha weights new probe samples into memberHealth.ewmaMS.
const ewmaAlpha = 0.3

// Generation returns the current ring generation. It starts at 1 and bumps
// once per effective membership change (a reload or probe transition that
// does not change the live member set does not bump it — that is what lets
// back-to-back identical SIGHUPs coalesce).
func (c *Cluster) Generation() uint64 { return c.cur.Load().gen }

// Peers returns the configured member list (self included, sorted) — the
// set being probed, regardless of health. Compare Members, which returns
// only the live (non-dead) members that own keys.
func (c *Cluster) Peers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.peers))
	copy(out, c.peers)
	return out
}

// State returns peer's lifecycle state. Self is always alive; a URL outside
// the configured set is reported dead.
func (c *Cluster) State(peer string) MemberState {
	if peer == c.self {
		return StateAlive
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if h, ok := c.health[peer]; ok {
		return h.state
	}
	return StateDead
}

// CanFetch reports whether peer is a usable fetch target: someone other
// than self who is either a configured member not declared dead, or a
// member of the previous ring generation that a reload just removed. The
// latter grace window is what makes scale-down remap-safe — a SIGHUP that
// drops a still-running replica leaves its warm cache reachable for one
// generation, so its keys migrate by cheap cache fetches instead of fresh
// searches. The remap path uses CanFetch to avoid pointing a
// previous-owner fetch at a corpse.
func (c *Cluster) CanFetch(peer string) bool {
	if peer == "" || peer == c.self {
		return false
	}
	c.mu.Lock()
	h, known := c.health[peer]
	st := StateDead
	if known {
		st = h.state
	}
	c.mu.Unlock()
	if known {
		return st != StateDead
	}
	v := c.cur.Load()
	return v.prev != nil && v.prev.Has(peer)
}

// PrevOwner returns the member that owned key under the previous ring
// generation, or "" when there is no previous generation or ownership did
// not move. The serve layer calls this on a local miss for a key it owns:
// a non-empty answer means the key just remapped here, and one cache-only
// fetch from the old owner can replace a full local search.
func (c *Cluster) PrevOwner(key string) string {
	v := c.cur.Load()
	if v.prev == nil {
		return ""
	}
	prev := v.prev.Owner(key)
	if prev == "" || prev == v.ring.Owner(key) {
		return ""
	}
	return prev
}

// PeerTimeout bounds one plan fetch from peer. Healthy peers get the flat
// configured FetchTimeout — a fetch legitimately rides the owner's full
// search, which dwarfs any probe round-trip. Once the prober shows the peer
// is struggling (state suspect/dead, or probe EWMA above half the probe
// timeout), the bound clamps to 4x the EWMA (floor 250ms) so one
// slow-but-alive peer can't consume the whole request deadline before the
// local fallback search starts.
func (c *Cluster) PeerTimeout(peer string) time.Duration {
	flat := c.fetchTimeout
	c.mu.Lock()
	h, ok := c.health[peer]
	var ewmaMS float64
	st := StateAlive
	if ok {
		ewmaMS, st = h.ewmaMS, h.state
	}
	c.mu.Unlock()
	if !ok || ewmaMS <= 0 {
		return flat
	}
	ewma := time.Duration(ewmaMS * float64(time.Millisecond))
	if st == StateAlive && ewma <= c.probe.Timeout/2 {
		return flat
	}
	clamped := 4 * ewma
	if clamped < 250*time.Millisecond {
		clamped = 250 * time.Millisecond
	}
	if clamped > flat {
		clamped = flat
	}
	return clamped
}

// Reload replaces the configured member list (the SIGHUP -peers-file path).
// Self must remain in the new list; an empty list degrades to single-node
// mode (ring = {self}). Health state carries over for peers present in both
// lists; new peers start alive (the prober will demote them if they are
// not), and departed peers drop their detector and client-pool state. A
// reload to the identical configured list is a no-op — no ring rebuild, no
// generation bump — so back-to-back identical SIGHUPs coalesce.
func (c *Cluster) Reload(peers []string) error {
	norm := make([]string, 0, len(peers))
	seen := make(map[string]bool, len(peers))
	for _, p := range peers {
		n, err := normalizeURL(p)
		if err != nil {
			return err
		}
		if !seen[n] {
			seen[n] = true
			norm = append(norm, n)
		}
	}
	if len(norm) == 0 {
		// Empty peers file: degrade to single-node mode rather than an
		// empty ring that owns nothing.
		norm = []string{c.self}
		seen[c.self] = true
	}
	if !seen[c.self] {
		return fmt.Errorf("cluster: reload rejected: self %q is not in the new peer list %v", c.self, norm)
	}
	sort.Strings(norm)

	c.mu.Lock()
	if sameMembers(c.peers, norm) {
		c.mu.Unlock()
		return nil
	}
	for p := range c.health {
		if !seen[p] {
			delete(c.health, p)
		}
	}
	for _, p := range norm {
		if p == c.self {
			continue
		}
		if _, ok := c.health[p]; !ok {
			c.health[p] = &memberHealth{state: StateAlive}
		}
	}
	c.peers = norm
	changed, gen, members := c.rebuildLocked()
	c.mu.Unlock()

	c.pool.Prune(norm)
	if changed && c.onChange != nil {
		c.onChange(gen, members)
	}
	return nil
}

// ReportProbe feeds one probe outcome for peer into the failure detector
// and returns the peer's resulting state. ok is the probe verdict; rtt is
// the observed round-trip (callers report the probe timeout for failures).
// The prober is the normal caller, but tests drive it directly for
// deterministic state walks.
func (c *Cluster) ReportProbe(peer string, ok bool, rtt time.Duration) MemberState {
	c.mu.Lock()
	h, known := c.health[peer]
	if !known {
		// A probe completed for a peer removed by a concurrent reload;
		// nothing to update.
		c.mu.Unlock()
		return StateDead
	}
	if ms := float64(rtt) / float64(time.Millisecond); ms > 0 {
		if h.ewmaMS == 0 {
			h.ewmaMS = ms
		} else {
			h.ewmaMS = ewmaAlpha*ms + (1-ewmaAlpha)*h.ewmaMS
		}
	}
	was := h.state
	if ok {
		h.consecOK++
		h.consecFail = 0
		if h.state != StateAlive && h.consecOK >= c.probe.ReviveAfter {
			h.state = StateAlive
		}
	} else {
		h.consecFail++
		h.consecOK = 0
		switch {
		case h.consecFail >= c.probe.DeadAfter:
			h.state = StateDead
		case h.consecFail >= c.probe.SuspectAfter:
			if h.state == StateAlive {
				h.state = StateSuspect
			}
		}
	}
	now := h.state
	var changed bool
	var gen uint64
	var members []string
	if (was == StateDead) != (now == StateDead) {
		changed, gen, members = c.rebuildLocked()
	} else if was != now {
		c.updateGaugesLocked()
	}
	c.mu.Unlock()

	if changed && c.onChange != nil {
		c.onChange(gen, members)
	}
	return now
}

// rebuildLocked recomputes the live ring from the configured peers minus
// dead members. If the live set is unchanged it only refreshes gauges; when
// it changes, the new view keeps the outgoing ring as prev and bumps the
// generation. Callers hold c.mu; the returned snapshot lets them invoke
// OnChange after unlocking.
func (c *Cluster) rebuildLocked() (changed bool, gen uint64, members []string) {
	live := make([]string, 0, len(c.peers))
	for _, p := range c.peers {
		if p == c.self || c.health[p].state != StateDead {
			live = append(live, p)
		}
	}
	old := c.cur.Load()
	if sameMembers(old.ring.members, live) {
		c.updateGaugesLocked()
		return false, old.gen, old.ring.Members()
	}
	v := &view{ring: NewRing(c.vnodes, live...), prev: old.ring, gen: old.gen + 1}
	c.cur.Store(v)
	c.updateGaugesLocked()
	return true, v.gen, v.ring.Members()
}

// updateGaugesLocked refreshes the membership gauges. Callers hold c.mu.
func (c *Cluster) updateGaugesLocked() {
	if c.reg == nil {
		return
	}
	alive, suspect, dead := 1, 0, 0 // self is always alive
	for _, h := range c.health {
		switch h.state {
		case StateAlive:
			alive++
		case StateSuspect:
			suspect++
		case StateDead:
			dead++
		}
	}
	c.reg.Gauge("cluster.member.alive").Set(float64(alive))
	c.reg.Gauge("cluster.member.suspect").Set(float64(suspect))
	c.reg.Gauge("cluster.member.dead").Set(float64(dead))
	c.reg.Gauge("cluster.ring.generation").Set(float64(c.cur.Load().gen))
}

// sameMembers reports whether two sorted member lists are identical.
func sameMembers(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
