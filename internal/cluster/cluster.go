package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"time"

	"github.com/fusedmindlab/transfusion/client"
)

// Config describes one replica's view of the cluster.
type Config struct {
	// Self is this replica's own advertised base URL, exactly as it appears
	// in Peers (e.g. "http://10.0.0.3:8080").
	Self string
	// Peers is the full static member list, Self included. Every replica must
	// be configured with the same list (order irrelevant) for ownership to
	// agree cluster-wide.
	Peers []string
	// VNodes is the virtual-node count per member (<= 0 takes DefaultVNodes).
	VNodes int
	// FetchTimeout bounds one peer plan fetch, retries included (default 10s).
	// On expiry the caller falls back to a local search, so this is the most
	// extra latency a cluster miss can add to a request.
	FetchTimeout time.Duration
	// ClientOptions tunes the per-peer transport (retries, breaker, hedging).
	// Zero values take the client package defaults, except MaxRetries, which
	// defaults to 1 here: a struggling peer is better answered by the local
	// fallback search than by a long retry ladder.
	ClientOptions client.Options
}

// Cluster is one replica's handle on the sharded plan space: ownership
// lookups over the ring plus the per-peer fetch transport. It is immutable
// after New and safe for concurrent use.
type Cluster struct {
	self         string
	ring         *Ring
	pool         *client.Pool
	fetchTimeout time.Duration
}

// normalizeURL validates and canonicalises one peer URL (scheme+host only,
// trailing slash trimmed).
func normalizeURL(raw string) (string, error) {
	raw = strings.TrimRight(strings.TrimSpace(raw), "/")
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("cluster: bad peer URL %q: %v", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("cluster: peer URL %q must be http(s)", raw)
	}
	if u.Host == "" {
		return "", fmt.Errorf("cluster: peer URL %q has no host", raw)
	}
	return raw, nil
}

// New builds a Cluster. Self must appear in Peers; duplicates are collapsed.
// A single-member cluster (just Self) is valid and owns every key — the
// degenerate case lets one -peers flag template cover every replica count.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: no peers configured")
	}
	self, err := normalizeURL(cfg.Self)
	if err != nil {
		return nil, err
	}
	peers := make([]string, 0, len(cfg.Peers))
	for _, p := range cfg.Peers {
		n, err := normalizeURL(p)
		if err != nil {
			return nil, err
		}
		peers = append(peers, n)
	}
	ring := NewRing(cfg.VNodes, peers...)
	if !ring.Has(self) {
		return nil, fmt.Errorf("cluster: self %q is not in the peer list %v", self, ring.Members())
	}
	if cfg.FetchTimeout <= 0 {
		cfg.FetchTimeout = 10 * time.Second
	}
	opts := cfg.ClientOptions
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 1
	}
	if opts.HTTPClient == nil {
		// The pool default (90s overall timeout) is tuned for external
		// callers riding out a full search; a peer fetch is bounded by
		// FetchTimeout via the context, so the transport cap just needs to
		// be above it.
		opts.HTTPClient = &http.Client{Timeout: cfg.FetchTimeout + 5*time.Second}
	}
	return &Cluster{
		self:         self,
		ring:         ring,
		pool:         client.NewPool(opts),
		fetchTimeout: cfg.FetchTimeout,
	}, nil
}

// Self returns this replica's own normalised URL.
func (c *Cluster) Self() string { return c.self }

// Members returns the normalised member list, sorted.
func (c *Cluster) Members() []string { return c.ring.Members() }

// Owner returns the member owning key.
func (c *Cluster) Owner(key string) string { return c.ring.Owner(key) }

// IsSelf reports whether member is this replica.
func (c *Cluster) IsSelf(member string) bool { return member == c.self }

// FetchTimeout is the configured bound on one peer fetch.
func (c *Cluster) FetchTimeout() time.Duration { return c.fetchTimeout }

// Fetch asks owner for a plan over the internal peer route. The owner's
// breaker/retry state is isolated per peer (client.Pool), so a dead owner
// fails fast here without poisoning fetches to other members. Callers treat
// any error as "compute locally instead" — a fetch failure must never fail
// the user's request.
func (c *Cluster) Fetch(ctx context.Context, owner string, req client.PlanRequest) (*client.PlanResponse, error) {
	if owner == c.self {
		return nil, fmt.Errorf("cluster: fetch from self")
	}
	if !c.ring.Has(owner) {
		return nil, fmt.Errorf("cluster: %q is not a member", owner)
	}
	return c.pool.For(owner).PeerPlan(ctx, req)
}
