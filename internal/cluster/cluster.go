package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/fusedmindlab/transfusion/client"
	"github.com/fusedmindlab/transfusion/internal/obs"
)

// Config describes one replica's view of the cluster.
type Config struct {
	// Self is this replica's own advertised base URL, exactly as it appears
	// in Peers (e.g. "http://10.0.0.3:8080").
	Self string
	// Peers is the initial full member list, Self included. Every replica
	// must be configured with the same list (order irrelevant) for ownership
	// to agree cluster-wide. The list is no longer static: Reload swaps it
	// live (the SIGHUP -peers-file path), and the prober's dead/alive
	// verdicts exclude and readmit members without touching it.
	Peers []string
	// VNodes is the virtual-node count per member (<= 0 takes DefaultVNodes).
	VNodes int
	// FetchTimeout bounds one peer plan fetch, retries included (default 10s).
	// On expiry the caller falls back to a local search, so this is the most
	// extra latency a cluster miss can add to a request. PeerTimeout clamps
	// it per-endpoint once the prober observes a peer running slow.
	FetchTimeout time.Duration
	// ClientOptions tunes the per-peer transport (retries, breaker, hedging).
	// Zero values take the client package defaults, except MaxRetries, which
	// defaults to 1 here: a struggling peer is better answered by the local
	// fallback search than by a long retry ladder.
	ClientOptions client.Options
	// Probe tunes the failure detector (zero fields take ProbeConfig
	// defaults). The detector only acts once StartProber runs — without a
	// prober every configured peer stays alive forever, which is exactly
	// the static-membership behaviour of earlier releases.
	Probe ProbeConfig
	// Metrics receives the membership gauges (cluster.member.alive/
	// suspect/dead, cluster.ring.generation) and the prober's counters.
	// Nil disables them.
	Metrics *obs.Registry
	// OnChange, when set, is called after every effective membership change
	// (ring rebuild) with the new generation and live member list. It runs
	// outside the membership lock, on the goroutine that triggered the
	// change; keep it fast (the daemon logs from it).
	OnChange func(gen uint64, members []string)
}

// Cluster is one replica's handle on the sharded plan space: ownership
// lookups over the live ring, the failure detector feeding it, and the
// per-peer fetch transport. Ownership reads (Owner/PrevOwner/Members/
// Generation) are lock-free loads of an immutable view swapped atomically
// by reloads and probe transitions; everything is safe for concurrent use.
type Cluster struct {
	self         string
	vnodes       int
	pool         *client.Pool
	fetchTimeout time.Duration
	probe        ProbeConfig
	reg          *obs.Registry
	onChange     func(uint64, []string)

	// mu guards the configured peer list and health map, and serializes
	// ring rebuilds. The request path never takes it for ownership reads.
	mu     sync.Mutex
	peers  []string                 // configured members, sorted, self included
	health map[string]*memberHealth // keyed by peer URL, self excluded
	prober *Prober

	cur atomic.Pointer[view]
}

// normalizeURL validates and canonicalises one peer URL (scheme+host only,
// trailing slash trimmed).
func normalizeURL(raw string) (string, error) {
	raw = strings.TrimRight(strings.TrimSpace(raw), "/")
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("cluster: bad peer URL %q: %v", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("cluster: peer URL %q must be http(s)", raw)
	}
	if u.Host == "" {
		return "", fmt.Errorf("cluster: peer URL %q has no host", raw)
	}
	return raw, nil
}

// New builds a Cluster. Self must appear in Peers; duplicates are collapsed.
// A single-member cluster (just Self) is valid and owns every key — the
// degenerate case lets one -peers flag template cover every replica count.
// All members start alive at generation 1.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: no peers configured")
	}
	self, err := normalizeURL(cfg.Self)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(cfg.Peers))
	peers := make([]string, 0, len(cfg.Peers))
	for _, p := range cfg.Peers {
		n, err := normalizeURL(p)
		if err != nil {
			return nil, err
		}
		if !seen[n] {
			seen[n] = true
			peers = append(peers, n)
		}
	}
	if !seen[self] {
		return nil, fmt.Errorf("cluster: self %q is not in the peer list %v", self, peers)
	}
	sort.Strings(peers)
	if cfg.FetchTimeout <= 0 {
		cfg.FetchTimeout = 10 * time.Second
	}
	opts := cfg.ClientOptions
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 1
	}
	if opts.HTTPClient == nil {
		// The pool default (90s overall timeout) is tuned for external
		// callers riding out a full search; a peer fetch is bounded by
		// FetchTimeout via the context, so the transport cap just needs to
		// be above it.
		opts.HTTPClient = &http.Client{Timeout: cfg.FetchTimeout + 5*time.Second}
	}
	vnodes := cfg.VNodes
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	c := &Cluster{
		self:         self,
		vnodes:       vnodes,
		pool:         client.NewPool(opts),
		fetchTimeout: cfg.FetchTimeout,
		probe:        cfg.Probe.withDefaults(),
		reg:          cfg.Metrics,
		onChange:     cfg.OnChange,
		peers:        peers,
		health:       make(map[string]*memberHealth, len(peers)),
	}
	for _, p := range peers {
		if p != self {
			c.health[p] = &memberHealth{state: StateAlive}
		}
	}
	c.cur.Store(&view{ring: NewRing(vnodes, peers...), gen: 1})
	c.mu.Lock()
	c.updateGaugesLocked()
	c.mu.Unlock()
	return c, nil
}

// Self returns this replica's own normalised URL.
func (c *Cluster) Self() string { return c.self }

// Members returns the live member list (configured minus dead), sorted —
// the set that currently owns keys.
func (c *Cluster) Members() []string { return c.cur.Load().ring.Members() }

// Owner returns the live member owning key.
func (c *Cluster) Owner(key string) string { return c.cur.Load().ring.Owner(key) }

// IsSelf reports whether member is this replica.
func (c *Cluster) IsSelf(member string) bool { return member == c.self }

// FetchTimeout is the configured flat bound on one peer fetch; PeerTimeout
// gives the per-endpoint effective bound.
func (c *Cluster) FetchTimeout() time.Duration { return c.fetchTimeout }

// Fetch asks owner for a plan over the internal peer route. The owner's
// breaker/retry state is isolated per peer (client.Pool), so a dead owner
// fails fast here without poisoning fetches to other members. Callers treat
// any error as "compute locally instead" — a fetch failure must never fail
// the user's request.
func (c *Cluster) Fetch(ctx context.Context, owner string, req client.PlanRequest) (*client.PlanResponse, error) {
	if owner == c.self {
		return nil, fmt.Errorf("cluster: fetch from self")
	}
	if !c.cur.Load().ring.Has(owner) {
		return nil, fmt.Errorf("cluster: %q is not a member", owner)
	}
	return c.pool.For(owner).PeerPlan(ctx, req)
}

// FetchCached asks peer for a plan from its caches only (the one-hop remap
// path): the peer answers from memory or disk and never searches, so this
// is cheap enough to try before a local search when ownership of a key has
// just moved here. The same never-fail contract as Fetch applies.
func (c *Cluster) FetchCached(ctx context.Context, peer string, req client.PlanRequest) (*client.PlanResponse, error) {
	if peer == c.self {
		return nil, fmt.Errorf("cluster: fetch from self")
	}
	if !c.CanFetch(peer) {
		return nil, fmt.Errorf("cluster: %q is not a fetchable member", peer)
	}
	return c.pool.For(peer).PeerCached(ctx, req)
}
