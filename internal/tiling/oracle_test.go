package tiling

import (
	"math/rand"
	"testing"

	"github.com/fusedmindlab/transfusion/internal/arch"
	"github.com/fusedmindlab/transfusion/internal/model"
)

// The Table 2 formulas are closed-form polynomials; these reference
// implementations re-derive every count by brute-force element enumeration —
// one increment per buffered element, term by term — so an algebra slip in
// the closed forms (a swapped factor, a lost coefficient) cannot survive
// unnoticed.

// countElems increments once per element of an extents-shaped tensor.
func countElems(extents ...int) int64 {
	n := int64(0)
	idx := make([]int, len(extents))
	for {
		n++
		i := len(extents) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < extents[i] {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return n
		}
	}
}

// refQKV enumerates B*D*(4P + 3*M1*M0) + 3*D*H*E + 2*B*H*P.
func refQKV(c Config, h, e int) int64 {
	n := countElems(c.B, c.D, 4*c.P)
	n += countElems(c.B, c.D, 3*c.M1*c.M0)
	n += countElems(3, c.D, h, e)
	n += countElems(2, c.B, h, c.P)
	return n
}

// refMHA enumerates B*H*E*(P + 2*M1*M0) + B*H*P*(2 + 2F) + 4*M0*P' + 18*P'.
func refMHA(c Config, h, e, f, pp int) int64 {
	n := countElems(c.B, h, e, c.P)
	n += countElems(c.B, h, e, 2*c.M1*c.M0)
	n += countElems(c.B, h, c.P, 2+2*f)
	n += countElems(4, c.M0, pp)
	n += countElems(18, pp)
	return n
}

// refLayerNorm enumerates 3*B*H*F*P + 4*H*F*P'.
func refLayerNorm(c Config, h, f, pp int) int64 {
	return countElems(3, c.B, h, f, c.P) + countElems(4, h, f, pp)
}

// refFFN enumerates H*F*(2*B*P + S) + S*(P + 2) + 2*S*P'.
func refFFN(c Config, h, f, pp int) int64 {
	n := countElems(h, f, 2*c.B, c.P)
	n += countElems(h, f, c.S)
	n += countElems(c.S, c.P)
	n += countElems(c.S, 2)
	n += countElems(2, c.S, pp)
	return n
}

// TestBufferFormulasMatchEnumerationOracle cross-checks the four closed-form
// buffer requirements against brute-force element enumeration over ~1k
// seeded random tiles, and BufferReq against the max of the four.
func TestBufferFormulasMatchEnumerationOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	spec := arch.Edge()
	for i := 0; i < 1000; i++ {
		c := Config{
			B:  1 + rng.Intn(6),
			D:  1 + rng.Intn(6),
			P:  1 + rng.Intn(6),
			M1: 1 + rng.Intn(6),
			M0: 1 + rng.Intn(6),
			S:  1 + rng.Intn(6),
		}
		h := 1 + rng.Intn(6)
		e := 1 + rng.Intn(6)
		f := e
		pp := c.PPrime(spec)

		if got, want := QKVBufferReq(c, h, e), refQKV(c, h, e); got != want {
			t.Fatalf("case %d %v h=%d e=%d: QKV = %d, oracle %d", i, c, h, e, got, want)
		}
		if got, want := MHABufferReq(c, h, e, f, pp), refMHA(c, h, e, f, pp); got != want {
			t.Fatalf("case %d %v h=%d e=%d f=%d pp=%d: MHA = %d, oracle %d", i, c, h, e, f, pp, got, want)
		}
		if got, want := LayerNormBufferReq(c, h, f, pp), refLayerNorm(c, h, f, pp); got != want {
			t.Fatalf("case %d %v: LayerNorm = %d, oracle %d", i, c, got, want)
		}
		if got, want := FFNBufferReq(c, h, f, pp), refFFN(c, h, f, pp); got != want {
			t.Fatalf("case %d %v: FFN = %d, oracle %d", i, c, got, want)
		}
	}
}

// TestBufferReqIsMaxOfStagesOnRealTiles checks, for every model on both
// evaluation architectures across the full sequence sweep, that BufferReq is
// exactly the maximum stage requirement and Feasible agrees with the
// validity + capacity definition.
func TestBufferReqIsMaxOfStagesOnRealTiles(t *testing.T) {
	for _, spec := range []arch.Spec{arch.Cloud(), arch.Edge()} {
		for _, m := range model.All() {
			for _, seq := range model.SeqLengths() {
				w := Workload{Model: m, SeqLen: seq, Batch: model.EvalBatch}
				c, err := HeuristicTile(w, spec)
				if err != nil {
					t.Fatalf("%s/%s/%d: %v", spec.Name, m.Name, seq, err)
				}
				pp := c.PPrime(spec)
				stages := []int64{
					QKVBufferReq(c, m.H, m.E),
					MHABufferReq(c, m.H, m.E, m.F, pp),
					LayerNormBufferReq(c, m.H, m.F, pp),
					FFNBufferReq(c, m.H, m.F, pp),
				}
				max := stages[0]
				for _, s := range stages[1:] {
					if s > max {
						max = s
					}
				}
				if got := BufferReq(c, w, spec); got != max {
					t.Errorf("%s/%s/%d: BufferReq = %d, max stage %d", spec.Name, m.Name, seq, got, max)
				}
				wantFeasible := c.Validate(w) == nil && max <= spec.BufferElements()
				if got := Feasible(c, w, spec); got != wantFeasible {
					t.Errorf("%s/%s/%d: Feasible = %t, definition says %t", spec.Name, m.Name, seq, got, wantFeasible)
				}
			}
		}
	}
}
