package tiling

import (
	"testing"
	"testing/quick"

	"github.com/fusedmindlab/transfusion/internal/arch"
	"github.com/fusedmindlab/transfusion/internal/model"
)

func testWorkload() Workload {
	return Workload{Model: model.BERT(), SeqLen: 4096, Batch: 64}
}

func smallTile() Config {
	return Config{B: 1, D: 768, P: 256, M1: 4, M0: 64, S: 256}
}

func TestWorkloadValidate(t *testing.T) {
	w := testWorkload()
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := w
	bad.SeqLen = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero seq accepted")
	}
	bad = w
	bad.Batch = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative batch accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	w := testWorkload()
	if err := smallTile().Validate(w); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero B", func(c *Config) { c.B = 0 }},
		{"B over batch", func(c *Config) { c.B = 128 }},
		{"D over model", func(c *Config) { c.D = 1024 }},
		{"P over seq", func(c *Config) { c.P = 8192 }},
		{"KV chunk over seq", func(c *Config) { c.M1 = 4096; c.M0 = 4096 }},
		{"S over model", func(c *Config) { c.S = 4096 }},
		{"KV chunk not dividing", func(c *Config) { c.M0 = 96 }},
		{"P not dividing", func(c *Config) { c.P = 640 }},
		{"B not dividing", func(c *Config) { c.B = 48 }},
	}
	for _, tc := range cases {
		c := smallTile()
		tc.mutate(&c)
		if err := c.Validate(w); err == nil {
			t.Errorf("%s: accepted %+v", tc.name, c)
		}
	}
}

func TestTileCounts(t *testing.T) {
	w := testWorkload()
	c := smallTile()
	if got := c.QTiles(w); got != 16 {
		t.Fatalf("QTiles = %d, want 16", got)
	}
	if got := c.KVChunks(w); got != 16 {
		t.Fatalf("KVChunks = %d, want 16", got)
	}
	if got := c.BatchTiles(w); got != 64 {
		t.Fatalf("BatchTiles = %d, want 64", got)
	}
}

func TestPPrime(t *testing.T) {
	c := smallTile()
	if got := c.PPrime(arch.Cloud()); got != 256 {
		t.Fatalf("cloud PPrime = %d, want min(P=256, rows=256) = 256", got)
	}
	if got := c.PPrime(arch.Edge()); got != 16 {
		t.Fatalf("edge PPrime = %d, want 16", got)
	}
	tiny := c
	tiny.P = 8
	if got := tiny.PPrime(arch.Edge()); got != 8 {
		t.Fatalf("tiny PPrime = %d, want 8", got)
	}
}

// Table 2 formulas, audited term by term against the paper.
func TestTable2Formulas(t *testing.T) {
	c := Config{B: 2, D: 8, P: 4, M1: 3, M0: 5, S: 7}
	h, e, f, pp := 2, 3, 3, 2

	wantQKV := int64(2*8*(4*4+3*3*5) + 3*8*2*3 + 2*2*2*4)
	if got := QKVBufferReq(c, h, e); got != wantQKV {
		t.Fatalf("QKV = %d, want %d", got, wantQKV)
	}

	wantMHA := int64(2*2*3*(4+2*3*5) + 2*2*4*(2+2*3) + 4*5*2 + 18*2)
	if got := MHABufferReq(c, h, e, f, pp); got != wantMHA {
		t.Fatalf("MHA = %d, want %d", got, wantMHA)
	}

	wantLN := int64(3*2*2*3*4 + 4*2*3*2)
	if got := LayerNormBufferReq(c, h, f, pp); got != wantLN {
		t.Fatalf("LayerNorm = %d, want %d", got, wantLN)
	}

	wantFFN := int64(2*3*(2*2*4+7) + 7*(4+2) + 2*7*2)
	if got := FFNBufferReq(c, h, f, pp); got != wantFFN {
		t.Fatalf("FFN = %d, want %d", got, wantFFN)
	}
}

func TestBufferReqIsMaxOfStages(t *testing.T) {
	w := testWorkload()
	c := smallTile()
	spec := arch.Cloud()
	pp := c.PPrime(spec)
	m := w.Model
	stages := []int64{
		QKVBufferReq(c, m.H, m.E),
		MHABufferReq(c, m.H, m.E, m.F, pp),
		LayerNormBufferReq(c, m.H, m.F, pp),
		FFNBufferReq(c, m.H, m.F, pp),
	}
	max := stages[0]
	for _, s := range stages[1:] {
		if s > max {
			max = s
		}
	}
	if got := BufferReq(c, w, spec); got != max {
		t.Fatalf("BufferReq = %d, want max of stages %d", got, max)
	}
}

func TestFeasible(t *testing.T) {
	w := testWorkload()
	spec := arch.Cloud()
	if !Feasible(smallTile(), w, spec) {
		t.Fatal("small tile infeasible on cloud")
	}
	// A giant tile must be infeasible on the 5 MB edge buffer.
	big := Config{B: 64, D: 768, P: 4096, M1: 64, M0: 64, S: 3072}
	if Feasible(big, w, arch.Edge()) {
		t.Fatal("giant tile feasible on edge")
	}
	// Invalid tiles are infeasible regardless of size.
	invalid := smallTile()
	invalid.P = 640
	if Feasible(invalid, w, spec) {
		t.Fatal("invalid tile reported feasible")
	}
}

func TestDivisors(t *testing.T) {
	got := Divisors(12, 0)
	want := []int{1, 2, 3, 4, 6, 12}
	if len(got) != len(want) {
		t.Fatalf("Divisors(12) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Divisors(12) = %v", got)
		}
	}
	capped := Divisors(12, 4)
	if len(capped) != 4 || capped[len(capped)-1] != 4 {
		t.Fatalf("Divisors(12, 4) = %v", capped)
	}
	if Divisors(0, 0) != nil {
		t.Fatal("Divisors(0) != nil")
	}
	if got := Divisors(1<<20, 0); len(got) != 21 {
		t.Fatalf("Divisors(2^20) = %d entries, want 21", len(got))
	}
}

// Property: every buffer requirement is monotone in every tile extent —
// growing a tile never shrinks its footprint (the pruning soundness TileSeek
// relies on).
func TestQuickBufferReqMonotone(t *testing.T) {
	w := testWorkload()
	spec := arch.Cloud()
	f := func(bR, pR, m1R, m0R, sR uint8) bool {
		c := Config{
			B:  int(bR%4) + 1,
			D:  768,
			P:  []int{128, 256, 512}[pR%3],
			M1: int(m1R%4) + 1,
			M0: []int{32, 64}[m0R%2],
			S:  int(sR%8)*128 + 128,
		}
		base := BufferReq(c, w, spec)
		grownB := c
		grownB.B *= 2
		grownP := c
		grownP.P *= 2
		grownS := c
		grownS.S += 128
		grownM := c
		grownM.M1 *= 2
		return BufferReq(grownB, w, spec) >= base &&
			BufferReq(grownP, w, spec) >= base &&
			BufferReq(grownS, w, spec) >= base &&
			BufferReq(grownM, w, spec) >= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: divisors divide and are sorted.
func TestQuickDivisors(t *testing.T) {
	f := func(nRaw uint16) bool {
		n := int(nRaw%5000) + 1
		ds := Divisors(n, 0)
		for i, d := range ds {
			if n%d != 0 {
				return false
			}
			if i > 0 && ds[i-1] >= d {
				return false
			}
		}
		return ds[0] == 1 && ds[len(ds)-1] == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloadKVLen(t *testing.T) {
	w := testWorkload()
	if w.KVLen() != w.SeqLen {
		t.Fatalf("self-attention KVLen = %d", w.KVLen())
	}
	w.KVSeqLen = 8192
	if w.KVLen() != 8192 {
		t.Fatalf("cross-attention KVLen = %d", w.KVLen())
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	w.KVSeqLen = -1
	if err := w.Validate(); err == nil {
		t.Fatal("negative KVSeqLen accepted")
	}
	w = testWorkload()
	w.Causal = true
	w.KVSeqLen = 8192
	if err := w.Validate(); err == nil {
		t.Fatal("causal cross-attention accepted")
	}
}

func TestAvgVisibleKV(t *testing.T) {
	w := testWorkload() // seq 4096
	if got := w.AvgVisibleKV(256); got != 4096 {
		t.Fatalf("bidirectional AvgVisibleKV = %d", got)
	}
	w.Causal = true
	if got := w.AvgVisibleKV(256); got != (4096+256)/2 {
		t.Fatalf("causal AvgVisibleKV = %d, want %d", got, (4096+256)/2)
	}
	w2 := Workload{Model: model.BERT(), SeqLen: 1, Batch: 1, Causal: true}
	if got := w2.AvgVisibleKV(1); got < 1 {
		t.Fatalf("AvgVisibleKV clamped to %d", got)
	}
}

func TestConfigValidateCrossAttention(t *testing.T) {
	w := testWorkload()
	w.KVSeqLen = 1024
	// KV chunk validated against the KV length, not the query length.
	c := smallTile() // M1*M0 = 256 divides 1024
	if err := c.Validate(w); err != nil {
		t.Fatal(err)
	}
	c.M0 = 96 // 96*4 does not divide 1024
	if err := c.Validate(w); err == nil {
		t.Fatal("non-dividing KV chunk accepted for cross-attention")
	}
	good := smallTile()
	if got := good.KVChunks(w); got != 1024/256 {
		t.Fatalf("cross KVChunks = %d", got)
	}
}

func TestHeuristicTileShrinksForTinyBuffer(t *testing.T) {
	// A buffer big enough for something but forcing deep shrink loops.
	spec := arch.Edge()
	spec.BufferBytes = 256 << 10 // 256 KiB
	w := Workload{Model: model.Llama3(), SeqLen: 65536, Batch: 64}
	c, err := HeuristicTile(w, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !Feasible(c, w, spec) {
		t.Fatalf("shrunk tile %v infeasible", c)
	}
	// An impossible buffer must error, not loop forever.
	spec.BufferBytes = 64
	if _, err := HeuristicTile(w, spec); err == nil {
		t.Fatal("impossible buffer produced a tile")
	}
}

func TestHeuristicTileRejectsBadWorkload(t *testing.T) {
	if _, err := HeuristicTile(Workload{Model: model.BERT(), SeqLen: 0, Batch: 1}, arch.Cloud()); err == nil {
		t.Fatal("invalid workload accepted")
	}
}
