package tiling

import (
	"github.com/fusedmindlab/transfusion/internal/arch"
	"github.com/fusedmindlab/transfusion/internal/faults"
)

// HeuristicTile is the static outer-tiling rule the baseline systems use
// (prior-work dataflows pick tiles with fixed heuristics rather than a
// search):
//
//   - batch tile 1;
//   - inner key/value tile matched to the 2D PE column count (the
//     FuseMax-style mapping of m0 onto columns), staged chunk M1 = 1;
//   - weight-staging slices (D for the QKV projection, S for the FFN)
//     sized to at most a quarter of the buffer each, so activations keep
//     most of the capacity;
//   - then the largest query tile that satisfies the Table 2 buffer
//     constraint, shrinking the weight slices further if even P = 1 does
//     not fit.
func HeuristicTile(w Workload, spec arch.Spec) (Config, error) {
	if err := w.Validate(); err != nil {
		return Config{}, err
	}
	m := w.Model
	budget := spec.BufferElements()

	c := Config{B: 1, M1: 1}
	c.M0 = largestLE(Divisors(w.SeqLen, 0), spec.PE2D.Cols)

	// Weight-staging slices capped at a quarter of the buffer each.
	c.D = largestSuchThat(Divisors(m.D, 0), func(d int) bool {
		return 3*int64(d)*int64(m.H)*int64(m.E) <= budget/4
	})
	c.S = largestSuchThat(Divisors(m.S, 0), func(s int) bool {
		return int64(m.H)*int64(m.F)*int64(s) <= budget/4
	})

	// Joint batch/query-tile choice: among feasible (B, P) pairs, minimise
	// the dominant off-chip traffic — per layer, weights are re-read once
	// per (batch tile x query tile) and the key/value stream is re-read
	// once per query tile per batch element:
	//
	//	traffic(b, p) ~ (N/p) * ((Batch/b) * Welems + Batch * 2*N*D)
	weightElems := float64(3*m.D*m.D + 2*m.D*m.S)
	kvElems := float64(w.Batch) * 2 * float64(w.KVLen()) * float64(m.D)
	score := func(b, p int) float64 {
		passes := float64(w.SeqLen) / float64(p)
		return passes * (float64(w.Batch)/float64(b)*weightElems + kvElems)
	}

	ds := Divisors(m.D, c.D)
	ss := Divisors(m.S, c.S)
	m0s := Divisors(w.KVLen(), c.M0)
	bs := Divisors(w.Batch, 0)
	ps := Divisors(w.SeqLen, 0)
	// Outer loops shrink the weight slices / KV tile only when no (B, P)
	// pair fits at the current staging sizes.
	for di := len(ds) - 1; di >= 0; di-- {
		for si := len(ss) - 1; si >= 0; si-- {
			for mi := len(m0s) - 1; mi >= 0; mi-- {
				c.D, c.S, c.M0 = ds[di], ss[si], m0s[mi]
				bestScore := 0.0
				found := false
				var best Config
				for _, b := range bs {
					for _, p := range ps {
						c.B, c.P = b, p
						if !Feasible(c, w, spec) {
							continue
						}
						if s := score(b, p); !found || s < bestScore {
							bestScore, best, found = s, c, true
						}
					}
				}
				if found {
					return best, nil
				}
			}
		}
	}
	return Config{}, faults.Infeasiblef("tiling: no feasible heuristic tile for %s on %s (seq %d)", w.Model.Name, spec.Name, w.SeqLen)
}

func largestLE(sorted []int, max int) int {
	best := sorted[0]
	for _, v := range sorted {
		if v <= max {
			best = v
		}
	}
	return best
}

// largestSuchThat returns the largest value in the sorted slice satisfying
// ok, falling back to the smallest value when none does.
func largestSuchThat(sorted []int, ok func(int) bool) int {
	best := sorted[0]
	for _, v := range sorted {
		if ok(v) {
			best = v
		}
	}
	return best
}
