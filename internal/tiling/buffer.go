package tiling

import (
	"github.com/fusedmindlab/transfusion/internal/arch"
)

// Buffer requirements per tile, in elements, implementing Table 2 of the
// paper verbatim:
//
//	QKV Projection:   B*D*(4P + 3*M1*M0) + 3*D*H*E + 2*B*H*P
//	MHA:              B*H*E*(P + 2*M1*M0) + B*H*P*(2 + 2F) + 4*M0*P' + 18*P'
//	Add & LayerNorm:  3*B*H*F*P + 4*H*F*P'
//	FFN:              H*F*(2*B*P + S) + S*(P + 2) + 2*S*P'
//
// where P' is the intra-tile sequence length per PE row. Each formula
// accounts for the layer's resident input/output activations, the recurrent
// MHA state, and the double-buffered pipeline staging buffers (§5.2).

// QKVBufferReq returns the QKV-projection tile's buffer requirement.
func QKVBufferReq(c Config, h, e int) int64 {
	b, d, p, m1, m0 := int64(c.B), int64(c.D), int64(c.P), int64(c.M1), int64(c.M0)
	return b*d*(4*p+3*m1*m0) + 3*d*int64(h)*int64(e) + 2*b*int64(h)*p
}

// MHABufferReq returns the fused-attention tile's buffer requirement.
func MHABufferReq(c Config, h, e, f, pPrime int) int64 {
	b, p, m1, m0 := int64(c.B), int64(c.P), int64(c.M1), int64(c.M0)
	hh, ee, ff, pp := int64(h), int64(e), int64(f), int64(pPrime)
	return b*hh*ee*(p+2*m1*m0) + b*hh*p*(2+2*ff) + 4*m0*pp + 18*pp
}

// LayerNormBufferReq returns the Add & LayerNorm tile's buffer requirement.
func LayerNormBufferReq(c Config, h, f, pPrime int) int64 {
	return 3*int64(c.B)*int64(h)*int64(f)*int64(c.P) + 4*int64(h)*int64(f)*int64(pPrime)
}

// FFNBufferReq returns the FFN tile's buffer requirement.
func FFNBufferReq(c Config, h, f, pPrime int) int64 {
	b, p, s := int64(c.B), int64(c.P), int64(c.S)
	hf := int64(h) * int64(f)
	return hf*(2*b*p+s) + s*(p+2) + 2*s*int64(pPrime)
}

// BufferReq returns the end-to-end fused tile's buffer requirement: the
// maximum over the four layer stages. Adjacent stages share the buffer —
// each stage's formula already includes both its input and output
// activations, so the stage working sets overlap rather than accumulate,
// and the binding constraint is the largest stage.
func BufferReq(c Config, w Workload, spec arch.Spec) int64 {
	m := w.Model
	pp := c.PPrime(spec)
	reqs := []int64{
		QKVBufferReq(c, m.H, m.E),
		MHABufferReq(c, m.H, m.E, m.F, pp),
		LayerNormBufferReq(c, m.H, m.F, pp),
		FFNBufferReq(c, m.H, m.F, pp),
	}
	max := reqs[0]
	for _, r := range reqs[1:] {
		if r > max {
			max = r
		}
	}
	return max
}

// Feasible reports whether the tile's buffer requirement fits the
// architecture's on-chip buffer — the constraint-validation stage of
// TileSeek's MCTS (§5.1).
func Feasible(c Config, w Workload, spec arch.Spec) bool {
	if err := c.Validate(w); err != nil {
		return false
	}
	return BufferReq(c, w, spec) <= spec.BufferElements()
}
