// Package tiling models TransFusion's outer tiling: the partitioning of
// work between off-chip memory and the on-chip buffer. It provides the
// closed-form per-layer buffer requirements of Table 2 of the paper, the
// feasibility check TileSeek uses to prune its search space (§5.2), and the
// divisor enumeration that defines the search space over [B, D, M1, P, S].
package tiling

import (
	"fmt"
	"sort"

	"github.com/fusedmindlab/transfusion/internal/arch"
	"github.com/fusedmindlab/transfusion/internal/faults"
	"github.com/fusedmindlab/transfusion/internal/model"
)

// Workload fixes the full problem extents an outer tile is drawn from.
type Workload struct {
	// Model is the Transformer configuration.
	Model model.Config
	// SeqLen is the total sequence length (queries and keys/values).
	SeqLen int
	// Batch is the total batch size.
	Batch int
	// Causal selects decoder-style masked attention: each query attends
	// only to itself and earlier positions, halving the effective key/value
	// work on average. The paper evaluates the bidirectional formulation;
	// this is the decoder extension (§3.2).
	Causal bool
	// KVSeqLen, when non-zero, decouples the key/value sequence length from
	// the query length — the cross-attention case, where queries come from
	// the decoder stream and keys/values from the encoder memory. Zero
	// means self-attention (KV length = SeqLen).
	KVSeqLen int
}

// KVLen returns the key/value sequence length (SeqLen for self-attention).
func (w Workload) KVLen() int {
	if w.KVSeqLen > 0 {
		return w.KVSeqLen
	}
	return w.SeqLen
}

// AvgVisibleKV returns the average number of key/value positions each query
// attends to: the full sequence bidirectionally, roughly half of it under
// causal masking (queries in the tile starting at position q see q+1 ..
// q+P positions; averaged over all tiles this is (SeqLen + P) / 2).
func (w Workload) AvgVisibleKV(tileP int) int {
	if !w.Causal {
		return w.KVLen()
	}
	v := (w.KVLen() + tileP) / 2
	if v < 1 {
		v = 1
	}
	return v
}

// Validate checks the workload.
func (w Workload) Validate() error {
	if err := w.Model.Validate(); err != nil {
		return err
	}
	if w.SeqLen <= 0 {
		return faults.Invalidf("tiling: non-positive sequence length %d", w.SeqLen)
	}
	if w.Batch <= 0 {
		return faults.Invalidf("tiling: non-positive batch %d", w.Batch)
	}
	if w.KVSeqLen < 0 {
		return faults.Invalidf("tiling: negative KV sequence length %d", w.KVSeqLen)
	}
	if w.Causal && w.KVSeqLen != 0 && w.KVSeqLen != w.SeqLen {
		return faults.Invalidf("tiling: causal masking requires KV length == query length")
	}
	return nil
}

// Config is one outer-tiling configuration over the paper's search
// dimensions [B, D, M1, P, S]. Extents are per-tile sizes; the hierarchy is:
// the on-chip buffer stages a (B, P) query tile, an (M1 x M0) key/value
// chunk, a D-wide slice of the projection weights and an S-wide slice of
// the FFN weights at a time.
type Config struct {
	// B is the batch extent per tile.
	B int
	// D is the hidden-dimension slice staged for the QKV projection.
	D int
	// P is the query-sequence tile length.
	P int
	// M1 is the number of inner key/value tiles staged per chunk.
	M1 int
	// M0 is the inner key/value tile length.
	M0 int
	// S is the FFN hidden slice staged at a time.
	S int
}

// Validate checks the tile against its workload.
func (c Config) Validate(w Workload) error {
	m := w.Model
	switch {
	case c.B <= 0 || c.D <= 0 || c.P <= 0 || c.M1 <= 0 || c.M0 <= 0 || c.S <= 0:
		return faults.Invalidf("tiling: non-positive tile extent in %+v", c)
	case c.B > w.Batch:
		return faults.Invalidf("tiling: tile B=%d exceeds batch %d", c.B, w.Batch)
	case c.D > m.D:
		return faults.Invalidf("tiling: tile D=%d exceeds model D=%d", c.D, m.D)
	case c.P > w.SeqLen:
		return faults.Invalidf("tiling: tile P=%d exceeds sequence %d", c.P, w.SeqLen)
	case c.M1*c.M0 > w.KVLen():
		return faults.Invalidf("tiling: KV chunk M1*M0=%d exceeds KV sequence %d", c.M1*c.M0, w.KVLen())
	case c.S > m.S:
		return faults.Invalidf("tiling: tile S=%d exceeds model S=%d", c.S, m.S)
	case w.KVLen()%(c.M1*c.M0) != 0:
		return faults.Invalidf("tiling: KV chunk %d does not divide KV sequence %d", c.M1*c.M0, w.KVLen())
	case w.SeqLen%c.P != 0:
		return faults.Invalidf("tiling: query tile %d does not divide sequence %d", c.P, w.SeqLen)
	case w.Batch%c.B != 0:
		return faults.Invalidf("tiling: tile batch %d does not divide batch %d", c.B, w.Batch)
	default:
		return nil
	}
}

// QTiles is the number of query tiles per batch slice.
func (c Config) QTiles(w Workload) int64 { return int64(w.SeqLen / c.P) }

// KVChunks is the number of staged key/value chunks the MHA loop streams
// through per query tile.
func (c Config) KVChunks(w Workload) int64 { return int64(w.KVLen() / (c.M1 * c.M0)) }

// BatchTiles is the number of batch slices.
func (c Config) BatchTiles(w Workload) int64 { return int64(w.Batch / c.B) }

// PPrime returns P', the intra-tile sequence length processed per PE row —
// the query rows resident in one pipeline epoch (§5.2).
func (c Config) PPrime(spec arch.Spec) int {
	if c.P < spec.PE2D.Rows {
		return c.P
	}
	return spec.PE2D.Rows
}

// String renders the tile compactly for logs and search traces.
func (c Config) String() string {
	return fmt.Sprintf("tile{B:%d D:%d P:%d M1:%d M0:%d S:%d}", c.B, c.D, c.P, c.M1, c.M0, c.S)
}

// Divisors returns the sorted divisors of n, optionally capped to those <=
// max (max <= 0 means uncapped).
func Divisors(n, max int) []int {
	if n <= 0 {
		return nil
	}
	var out []int
	for d := 1; d*d <= n; d++ {
		if n%d != 0 {
			continue
		}
		out = append(out, d)
		if other := n / d; other != d {
			out = append(out, other)
		}
	}
	sort.Ints(out)
	if max > 0 {
		i := sort.SearchInts(out, max+1)
		out = out[:i]
	}
	return out
}
