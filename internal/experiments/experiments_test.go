package experiments

import (
	"strings"
	"testing"

	"github.com/fusedmindlab/transfusion/internal/arch"
	"github.com/fusedmindlab/transfusion/internal/model"
	"github.com/fusedmindlab/transfusion/internal/pipeline"
)

func fastRunner() *Runner {
	opts := pipeline.DefaultOptions()
	opts.TileSeekIterations = 8
	return NewRunner(opts)
}

func TestAllExperimentsRegistered(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Description == "" || e.Run == nil {
			t.Errorf("malformed experiment %+v", e)
		}
		if ids[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		ids[e.ID] = true
	}
	// The paper's evaluation artifacts must all be present.
	for _, want := range []string{"table1", "table2", "table3", "fig8a", "fig8b", "fig9a",
		"fig9b", "fig10a", "fig10b", "fig11", "fig12a", "fig12b", "fig13", "headline",
		"ablation-tileseek", "ablation-dpipe", "ablation-attention-passes",
		"sensitivity-bandwidth", "sensitivity-causal", "stack-t5"} {
		if !ids[want] {
			t.Errorf("experiment %q missing", want)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig8a")
	if err != nil || e.ID != "fig8a" {
		t.Fatalf("ByID(fig8a) = %v, %v", e.ID, err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestEvalCaches(t *testing.T) {
	r := fastRunner()
	a, err := r.Eval(arch.Cloud(), model.T5(), 4096, pipeline.FuseMax())
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Eval(arch.Cloud(), model.T5(), 4096, pipeline.FuseMax())
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalCycles != b.TotalCycles {
		t.Fatal("cache returned different result")
	}
	if len(r.cache) != 1 {
		t.Fatalf("cache size = %d", len(r.cache))
	}
}

func TestStaticTables(t *testing.T) {
	r := fastRunner()
	for _, id := range []string{"table1", "table3"} {
		e, _ := ByID(id)
		tb, err := e.Run(r)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if tb.NumRows() == 0 {
			t.Fatalf("%s: empty table", id)
		}
	}
	t3, _ := ByID("table3")
	tb, err := t3.Run(r)
	if err != nil {
		t.Fatal(err)
	}
	out := tb.Render()
	for _, want := range []string{"256x256", "16x16", "16MB", "5MB", "400GB/s", "30GB/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("table3 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2AllFeasible(t *testing.T) {
	tb, err := Table2(fastRunner())
	if err != nil {
		t.Fatal(err)
	}
	out := tb.Render()
	if strings.Contains(out, "false") {
		t.Fatalf("an infeasible heuristic tile appeared in Table 2:\n%s", out)
	}
	if tb.NumRows() != 10 { // 5 models x 2 archs
		t.Fatalf("Table 2 rows = %d, want 10", tb.NumRows())
	}
}

// Run the cheap figure experiments end to end with a tiny search budget and
// verify row counts match their sweep definitions.
func TestFigureRowCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweeps in short mode")
	}
	r := fastRunner()
	cases := []struct {
		id   string
		rows int
	}{
		{"fig8a", 12},  // 2 archs x 6 seqs
		{"fig10a", 24}, // 6 seqs x 4 systems
		{"fig11", 12},  // 2 archs x 6 seqs
		{"fig12a", 12}, // 2 archs x 6 seqs
		{"fig13", 24},  // 2 archs x 6 seqs x 2 systems
	}
	for _, c := range cases {
		e, _ := ByID(c.id)
		tb, err := e.Run(r)
		if err != nil {
			t.Fatalf("%s: %v", c.id, err)
		}
		if tb.NumRows() != c.rows {
			t.Errorf("%s rows = %d, want %d", c.id, tb.NumRows(), c.rows)
		}
	}
}

func TestAblationDPipeRuns(t *testing.T) {
	tb, err := AblationDPipe(fastRunner())
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 10 { // 2 archs x 5 sub-layers
		t.Fatalf("ablation-dpipe rows = %d, want 10", tb.NumRows())
	}
}

func TestAttentionPassesAblation(t *testing.T) {
	tb, err := AblationAttentionPasses(fastRunner())
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 6 { // 2 archs x 3 dataflows
		t.Fatalf("rows = %d, want 6", tb.NumRows())
	}
	// The 1-pass rows are the reference: their ratio column must be 1.00.
	out := tb.Render()
	if !strings.Contains(out, "1-pass") || !strings.Contains(out, "2-pass") {
		t.Fatalf("missing dataflow rows:\n%s", out)
	}
}

func TestStackT5Experiment(t *testing.T) {
	if testing.Short() {
		t.Skip("stack sweep in short mode")
	}
	tb, err := StackT5(fastRunner())
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 6 { // 2 archs x 3 systems
		t.Fatalf("rows = %d, want 6", tb.NumRows())
	}
}
