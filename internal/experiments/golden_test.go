package experiments

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/fusedmindlab/transfusion/internal/pipeline"
)

var update = flag.Bool("update", false, "rewrite testdata/golden/*.json from the current implementation")

// goldenBudget pins the TileSeek rollout budget for the golden runs: small
// enough to keep the suite fast, large enough that the searches leave the
// heuristic tile where it matters.
const goldenBudget = 8

// goldenIDs lists the regression-pinned artifacts: the buffer-requirement and
// architecture tables plus the 64K model-wise headline figures (speedup,
// utilization, energy) on cloud+edge across all five models.
var goldenIDs = []string{"table2", "table3", "fig8b", "fig10b", "fig12b"}

// goldenTable is the serialised form of one artifact.
type goldenTable struct {
	ID      string     `json:"id"`
	Budget  int        `json:"search_budget"`
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

func goldenPath(id string) string {
	return filepath.Join("testdata", "golden", id+".json")
}

func runGolden(t *testing.T, parallelism int) map[string]goldenTable {
	t.Helper()
	opts := pipeline.DefaultOptions()
	opts.TileSeekIterations = goldenBudget
	opts.Parallelism = parallelism
	r := NewRunner(opts)
	out := make(map[string]goldenTable, len(goldenIDs))
	for _, id := range goldenIDs {
		exp, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := exp.Run(r)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		out[id] = goldenTable{
			ID: id, Budget: goldenBudget,
			Title: tbl.Title, Headers: append([]string(nil), tbl.Headers...),
			Rows: tbl.Rows(),
		}
	}
	return out
}

// diffTables renders a readable cell-level diff, or "" when equal.
func diffTables(want, got goldenTable) string {
	var b strings.Builder
	if want.Title != got.Title {
		fmt.Fprintf(&b, "  title: %q -> %q\n", want.Title, got.Title)
	}
	if strings.Join(want.Headers, "|") != strings.Join(got.Headers, "|") {
		fmt.Fprintf(&b, "  headers: %v -> %v\n", want.Headers, got.Headers)
	}
	if len(want.Rows) != len(got.Rows) {
		fmt.Fprintf(&b, "  row count: %d -> %d\n", len(want.Rows), len(got.Rows))
	}
	for i := 0; i < len(want.Rows) && i < len(got.Rows); i++ {
		w, g := want.Rows[i], got.Rows[i]
		for j := 0; j < len(w) || j < len(g); j++ {
			var wc, gc string
			if j < len(w) {
				wc = w[j]
			}
			if j < len(g) {
				gc = g[j]
			}
			if wc != gc {
				col := fmt.Sprintf("col %d", j)
				if j < len(want.Headers) {
					col = want.Headers[j]
				}
				fmt.Fprintf(&b, "  row %d (%s), %s: %q -> %q\n", i, strings.Join(labelCells(w), "/"), col, wc, gc)
			}
		}
	}
	return b.String()
}

// labelCells picks the leading identity cells of a row for diff context.
func labelCells(row []string) []string {
	if len(row) > 2 {
		return row[:2]
	}
	return row
}

// TestGoldenTables regenerates the pinned artifacts and compares them against
// testdata/golden cell by cell. Run with -update to rewrite the goldens after
// an intentional modelling change; the diff in a failure names the exact rows
// and columns that moved.
func TestGoldenTables(t *testing.T) {
	got := runGolden(t, 1)

	if *update {
		if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
			t.Fatal(err)
		}
		for _, id := range goldenIDs {
			data, err := json.MarshalIndent(got[id], "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(goldenPath(id), append(data, '\n'), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("rewrote %d golden files", len(goldenIDs))
		return
	}

	for _, id := range goldenIDs {
		t.Run(id, func(t *testing.T) {
			data, err := os.ReadFile(goldenPath(id))
			if err != nil {
				t.Fatalf("missing golden (run: go test ./internal/experiments -run TestGoldenTables -update): %v", err)
			}
			var want goldenTable
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatalf("corrupt golden %s: %v", goldenPath(id), err)
			}
			if want.Budget != goldenBudget {
				t.Fatalf("golden %s was generated at budget %d, test runs %d — regenerate with -update", id, want.Budget, goldenBudget)
			}
			if d := diffTables(want, got[id]); d != "" {
				t.Errorf("%s drifted from golden (regenerate with -update if intentional):\n%s", id, d)
			}
		})
	}
}

// TestGoldenTablesParallelismInvariant re-runs the same artifacts with a
// 4-way worker pool and requires bit-identical tables: the deterministic
// parallel search must not leak scheduling order into results.
func TestGoldenTablesParallelismInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel re-run skipped in -short")
	}
	serial := runGolden(t, 1)
	parallel := runGolden(t, 4)
	for _, id := range goldenIDs {
		if d := diffTables(serial[id], parallel[id]); d != "" {
			t.Errorf("%s differs between Parallelism 1 and 4:\n%s", id, d)
		}
	}
}
