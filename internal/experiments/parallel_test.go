package experiments

import (
	"context"
	"sync"
	"testing"

	"github.com/fusedmindlab/transfusion/internal/arch"
	"github.com/fusedmindlab/transfusion/internal/model"
	"github.com/fusedmindlab/transfusion/internal/obs"
	"github.com/fusedmindlab/transfusion/internal/pipeline"
)

// A regenerated artifact must render byte-identically whether its grid cells
// were evaluated lazily in the table loop (Parallelism 1) or prefetched
// through the concurrent cell pool.
func TestExperimentTableParallelismByteIdentical(t *testing.T) {
	e, err := ByID("fig10b")
	if err != nil {
		t.Fatal(err)
	}
	run := func(parallelism int) string {
		opts := pipeline.DefaultOptions()
		opts.TileSeekIterations = 4
		opts.Parallelism = parallelism
		tb, err := e.Run(NewRunner(opts))
		if err != nil {
			t.Fatal(err)
		}
		return tb.Render()
	}
	ref := run(1)
	if ref == "" {
		t.Fatal("empty serial reference table")
	}
	for _, parallelism := range []int{4, 0} { // 0 resolves to GOMAXPROCS
		if got := run(parallelism); got != ref {
			t.Fatalf("parallelism=%d table diverged from serial:\n%s\n-- want --\n%s",
				parallelism, got, ref)
		}
	}
}

// Concurrent Evals of the same cell must coalesce into one evaluation.
func TestEvalSingleflight(t *testing.T) {
	reg := obs.NewRegistry()
	opts := pipeline.DefaultOptions()
	opts.TileSeekIterations = 4
	r := NewRunnerContext(obs.WithMetrics(context.Background(), reg), opts)

	var wg sync.WaitGroup
	results := make([]pipeline.Result, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := r.Eval(arch.Cloud(), model.T5(), 4096, pipeline.FuseMax())
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for _, res := range results[1:] {
		if res.TotalCycles != results[0].TotalCycles {
			t.Fatal("joined callers saw a different result")
		}
	}
	if got := reg.Snapshot().Counters["pipeline.evaluations"]; got != 1 {
		t.Fatalf("cell evaluated %d times, want 1", got)
	}
	if len(r.cache) != 1 {
		t.Fatalf("cache size = %d, want 1", len(r.cache))
	}
}

// The cell pool must surface its in-flight gauge (and return it to zero once
// the prefetch drains).
func TestPrefetchGaugeRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	opts := pipeline.DefaultOptions()
	opts.TileSeekIterations = 4
	opts.Parallelism = 4
	r := NewRunnerContext(obs.WithMetrics(context.Background(), reg), opts)
	e, err := ByID("fig10b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(r); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	inflight, ok := snap.Gauges["experiments.cells_inflight"]
	if !ok {
		t.Fatal("experiments.cells_inflight not registered")
	}
	if inflight != 0 {
		t.Fatalf("cells_inflight = %v after drain, want 0", inflight)
	}
}
