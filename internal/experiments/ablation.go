package experiments

import (
	"github.com/fusedmindlab/transfusion/internal/arch"
	"github.com/fusedmindlab/transfusion/internal/cascade"
	"github.com/fusedmindlab/transfusion/internal/dpipe"
	"github.com/fusedmindlab/transfusion/internal/model"
	"github.com/fusedmindlab/transfusion/internal/pipeline"
	"github.com/fusedmindlab/transfusion/internal/report"
	"github.com/fusedmindlab/transfusion/internal/tileseek"
	"github.com/fusedmindlab/transfusion/internal/tiling"
)

// AblationTileSeek compares the MCTS search against random search (equal
// rollout budget) and a budget-capped exhaustive scan, all using the full
// TransFusion evaluation as the objective. Lower cost (EDP) is better.
func AblationTileSeek(r *Runner) (*report.Table, error) {
	t := report.NewTable("Ablation: tiling-search strategy (objective = latency x energy; lower is better)",
		"Arch", "Strategy", "Best cost", "vs MCTS", "Evaluated", "Pruned")
	budget := r.Opts.TileSeekIterations
	if budget <= 0 {
		budget = pipeline.DefaultOptions().TileSeekIterations
	}
	for _, spec := range []arch.Spec{arch.Cloud(), arch.Edge()} {
		w := tiling.Workload{Model: model.Llama3(), SeqLen: model.SeqLength64K, Batch: model.EvalBatch}
		objective := func(c tiling.Config) (float64, bool) {
			res, err := pipeline.EvaluateWithTile(w, spec, pipeline.TransFusion(), c, r.Opts)
			if err != nil {
				return 0, false
			}
			return res.TotalCycles * res.Energy.Total(), true
		}
		space := tileseek.DefaultSpace(w, spec)

		mcts, err := tileseek.SearchContext(r.Context(), space, objective, budget, 1)
		if err != nil {
			return nil, err
		}
		rnd, err := tileseek.RandomSearch(space, objective, budget, 1)
		if err != nil {
			return nil, err
		}
		ex, err := tileseek.Exhaustive(space, objective, budget)
		if err != nil {
			return nil, err
		}
		// The static heuristic as a fourth point of comparison.
		heur, err := tiling.HeuristicTile(w, spec)
		if err != nil {
			return nil, err
		}
		heurCost, _ := objective(heur)

		for _, row := range []struct {
			name string
			res  tileseek.Result
		}{
			{"MCTS (TileSeek)", mcts},
			{"Random", rnd},
			{"Exhaustive (capped)", ex},
			{"Heuristic", tileseek.Result{BestCost: heurCost, Evaluated: 1}},
		} {
			t.AddRow(spec.Name, row.name, report.Sci(row.res.BestCost),
				report.F(row.res.BestCost/mcts.BestCost, 2),
				report.F(float64(row.res.Evaluated), 0), report.F(float64(row.res.Pruned), 0))
		}
	}
	return t, nil
}

// AblationDPipe isolates the scheduler: for each sub-layer cascade of
// Llama3 at 64K (heuristic tile), compare fully sequential execution, the
// FuseMax-style static pipeline, and the full DPipe search.
func AblationDPipe(r *Runner) (*report.Table, error) {
	t := report.NewTable("Ablation: scheduler per sub-layer (cycles per tile instance, Llama3 @64K)",
		"Arch", "Layer", "Sequential", "Static pipeline", "DPipe", "DPipe gain", "Candidates")
	for _, spec := range []arch.Spec{arch.Cloud(), arch.Edge()} {
		w := tiling.Workload{Model: model.Llama3(), SeqLen: model.SeqLength64K, Batch: model.EvalBatch}
		tile, err := tiling.HeuristicTile(w, spec)
		if err != nil {
			return nil, err
		}
		probs, err := pipeline.BuildProblems(w, spec, pipeline.TransFusion(), tile)
		if err != nil {
			return nil, err
		}
		for _, name := range []string{"qproj", "kvproj", "mha", "ln", "ffn"} {
			prob := probs[name]
			seq, err := dpipe.Sequential(prob, spec, nil)
			if err != nil {
				return nil, err
			}
			static, err := dpipe.StaticPipelined(prob, spec, nil)
			if err != nil {
				return nil, err
			}
			plan, err := dpipe.PlanContext(r.Context(), prob, spec, r.Opts.DPipe)
			if err != nil {
				return nil, err
			}
			t.AddRow(spec.Name, name,
				report.Sci(seq.TotalCycles), report.Sci(static.TotalCycles), report.Sci(plan.TotalCycles),
				report.F(static.TotalCycles/plan.TotalCycles, 2),
				report.F(float64(plan.Candidates), 0))
		}
	}
	return t, nil
}

// AblationAttentionPasses compares the three attention dataflow
// generations under identical DPipe scheduling: the naive
// full-materialisation form, the FlashAttention-1-style two-pass form
// (global statistics first, weighted sum second, scores computed twice),
// and the FuseMax/TransFusion one-pass streaming form (Einsum Cascade 1).
// Cycles are per query-tile instance on the heuristic tile, Llama3 at 64K.
func AblationAttentionPasses(r *Runner) (*report.Table, error) {
	t := report.NewTable("Ablation: attention dataflow generations (cycles per query tile, Llama3 @64K, DPipe-scheduled)",
		"Arch", "Dataflow", "Cycles", "vs 1-pass")
	for _, spec := range []arch.Spec{arch.Cloud(), arch.Edge()} {
		w := tiling.Workload{Model: model.Llama3(), SeqLen: model.SeqLength64K, Batch: model.EvalBatch}
		tile, err := tiling.HeuristicTile(w, spec)
		if err != nil {
			return nil, err
		}
		m := w.Model
		dims := map[string]int{"h": m.H, "e": m.E, "f": m.F, "p": tile.P, "m0": tile.M0}
		epochs := int64((w.SeqLen + tile.M0 - 1) / tile.M0)

		plan := func(c *cascade.Cascade, eps int64) (float64, error) {
			prob, err := dpipe.FromCascade(c, dims, eps)
			if err != nil {
				return 0, err
			}
			res, err := dpipe.PlanContext(r.Context(), prob, spec, r.Opts.DPipe)
			if err != nil {
				return 0, err
			}
			return res.TotalCycles, nil
		}

		onePass, err := plan(cascade.Attention(), epochs)
		if err != nil {
			return nil, err
		}
		statsCycles, err := plan(cascade.TwoPassStats(), epochs)
		if err != nil {
			return nil, err
		}
		weightedCycles, err := plan(cascade.TwoPassWeighted(), epochs)
		if err != nil {
			return nil, err
		}
		twoPass := statsCycles + weightedCycles

		naiveDims := map[string]int{"h": m.H, "e": m.E, "f": m.F, "p": tile.P, "m0": w.SeqLen}
		naiveProb, err := dpipe.FromCascade(cascade.NaiveAttention(), naiveDims, 1)
		if err != nil {
			return nil, err
		}
		naiveRes, err := dpipe.PlanContext(r.Context(), naiveProb, spec, r.Opts.DPipe)
		if err != nil {
			return nil, err
		}

		for _, row := range []struct {
			name   string
			cycles float64
		}{
			{"naive (full materialisation)", naiveRes.TotalCycles},
			{"2-pass (FlashAttention-1 style)", twoPass},
			{"1-pass (Einsum Cascade 1)", onePass},
		} {
			t.AddRow(spec.Name, row.name, report.Sci(row.cycles), report.F(row.cycles/onePass, 2))
		}
	}
	return t, nil
}
