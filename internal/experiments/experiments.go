// Package experiments regenerates every table and figure of the paper's
// evaluation (§6). Each experiment returns a rendered ASCII table whose
// rows/series correspond to the paper's plot; cmd/experiments prints them
// and bench_test.go wraps them as benchmarks. Results are cached per
// (architecture, model, sequence, system) within a Runner, since the
// figures share underlying evaluations.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/fusedmindlab/transfusion/internal/arch"
	"github.com/fusedmindlab/transfusion/internal/faults"
	"github.com/fusedmindlab/transfusion/internal/model"
	"github.com/fusedmindlab/transfusion/internal/obs"
	"github.com/fusedmindlab/transfusion/internal/pipeline"
	"github.com/fusedmindlab/transfusion/internal/report"
	"github.com/fusedmindlab/transfusion/internal/tiling"
)

// Runner evaluates systems with caching. It is safe for concurrent use:
// concurrent Evals of the same cell coalesce into one evaluation
// (singleflight), so Prefetch workers and the experiment's own loop never
// duplicate work.
type Runner struct {
	Opts  pipeline.Options
	ctx   context.Context
	mu    sync.Mutex
	cache map[string]pipeline.Result
	// inflight holds cells currently being evaluated; latecomers wait on the
	// call instead of re-evaluating.
	inflight map[string]*evalCall
	// notes records degraded evaluations ("key: reason"), one line per
	// evaluated (not cache-hit) cell, for surfacing in experiment output.
	notes []string
}

// evalCall is one in-flight evaluation joiners can wait on.
type evalCall struct {
	done chan struct{}
	res  pipeline.Result
	err  error
}

// NewRunner creates a Runner with the given evaluation options.
func NewRunner(opts pipeline.Options) *Runner {
	return NewRunnerContext(context.Background(), opts)
}

// NewRunnerContext creates a Runner whose evaluations run under ctx:
// cancelling it aborts the in-flight evaluation (within one search rollout /
// schedule candidate) and fails the experiment with an error matching
// faults.ErrCanceled.
func NewRunnerContext(ctx context.Context, opts pipeline.Options) *Runner {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Runner{Opts: opts, ctx: ctx,
		cache:    make(map[string]pipeline.Result),
		inflight: make(map[string]*evalCall)}
}

// Eval evaluates (and caches) one system on one workload/architecture.
func (r *Runner) Eval(spec arch.Spec, m model.Config, seq int, sys pipeline.System) (pipeline.Result, error) {
	return r.eval(spec, m, seq, sys, r.Opts)
}

func (r *Runner) eval(spec arch.Spec, m model.Config, seq int, sys pipeline.System, opts pipeline.Options) (pipeline.Result, error) {
	key := fmt.Sprintf("%s|%s|%d|%s", spec.Name, m.Name, seq, sys.Name)
	r.mu.Lock()
	if res, ok := r.cache[key]; ok {
		r.mu.Unlock()
		return res, nil
	}
	if c, ok := r.inflight[key]; ok {
		r.mu.Unlock()
		<-c.done
		return c.res, c.err
	}
	c := &evalCall{done: make(chan struct{})}
	r.inflight[key] = c
	r.mu.Unlock()

	completed := false
	defer func() {
		// On a panic inside the evaluation, joiners still get unblocked with
		// an error while the panic keeps propagating to the API boundary.
		if !completed {
			c.err = faults.Invalidf("experiments: %s: evaluation aborted", key)
		}
		close(c.done)
		r.mu.Lock()
		delete(r.inflight, key)
		r.mu.Unlock()
	}()

	ctx := r.Context()
	w := pipeline.Workload{Model: m, SeqLen: seq, Batch: model.EvalBatch}
	res, err := pipeline.EvaluateContext(ctx, w, spec, sys, opts)
	if err != nil {
		c.err = fmt.Errorf("experiments: %s: %w", key, err)
		completed = true
		return pipeline.Result{}, c.err
	}
	r.mu.Lock()
	r.cache[key] = res
	if res.Degraded {
		r.notes = append(r.notes, fmt.Sprintf("%s: degraded: %s", key, res.DegradedReason))
	}
	r.mu.Unlock()
	if res.Degraded {
		obs.MetricsFrom(ctx).Counter("experiments.degraded").Inc()
	}
	c.res = res
	completed = true
	return res, nil
}

// Notes returns the observations collected across this Runner's evaluations
// (currently one line per degraded result), sorted so the listing is
// deterministic regardless of which worker evaluated which cell. Cached hits
// do not re-report.
func (r *Runner) Notes() []string {
	r.mu.Lock()
	out := append([]string(nil), r.notes...)
	r.mu.Unlock()
	sort.Strings(out)
	return out
}

// Cell identifies one (architecture, model, sequence, system) grid cell of
// an experiment.
type Cell struct {
	Spec  arch.Spec
	Model model.Config
	Seq   int
	Sys   pipeline.System
}

// resolveParallelism maps an Options.Parallelism value to a worker count.
func resolveParallelism(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// Prefetch evaluates independent grid cells concurrently (bounded by
// Opts.Parallelism; 0 selects GOMAXPROCS) and fills the Runner's cache, so
// the experiment's own sequential loop then assembles its table from hits.
// Each cell runs with inner parallelism 1 — the cell pool is the
// parallelism — and results are bit-identical to lazy serial evaluation.
// Cancellation of the Runner's context stops the pool between cells; cell
// errors do not abort the remaining cells (degraded evaluations are not
// errors at all), and the first error in cell order — the same error the
// serial loop would have hit first — is returned after the pool drains.
// With an effective worker count of 1 Prefetch is a no-op: cells evaluate
// lazily in the experiment loop, exactly as before.
func (r *Runner) Prefetch(cells []Cell) error {
	inflightG := obs.MetricsFrom(r.Context()).Gauge("experiments.cells_inflight")
	workers := resolveParallelism(r.Opts.Parallelism)
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers <= 1 {
		return nil
	}
	cellOpts := r.Opts
	cellOpts.Parallelism = 1
	cellOpts.DPipe.Parallelism = 1
	errs := make([]error, len(cells))
	var next atomic.Int64
	var wg sync.WaitGroup
	var panicMu sync.Mutex
	var panicVal any
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panicMu.Lock()
					if panicVal == nil {
						panicVal = p
					}
					panicMu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) || r.Context().Err() != nil {
					return
				}
				cell := cells[i]
				inflightG.Add(1)
				_, err := r.eval(cell.Spec, cell.Model, cell.Seq, cell.Sys, cellOpts)
				inflightG.Add(-1)
				if err != nil {
					errs[i] = err
				}
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Context returns the Runner's evaluation context (never nil), so
// experiments that drive the schedulers and searches directly — rather than
// through Eval — honour the same cancellation and report into the same
// metrics registry.
func (r *Runner) Context() context.Context {
	if r.ctx == nil {
		return context.Background()
	}
	return r.ctx
}

// Experiment is one regenerable paper artifact.
type Experiment struct {
	// ID matches the paper's artifact ("fig8a", "table2", ...).
	ID string
	// Description summarises what the artifact shows.
	Description string
	// Run produces the artifact's table.
	Run func(*Runner) (*report.Table, error)
}

// All lists every experiment in the paper's presentation order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table 1: dimension mapping of each layer onto the 2D PE array", Table1},
		{"table2", "Table 2: buffer requirements per tile for each intra-layer module", Table2},
		{"table3", "Table 3: architecture specifications", Table3},
		{"fig8a", "Fig 8a: Llama3 speedup over Unfused across sequence lengths, cloud+edge", Fig8a},
		{"fig8b", "Fig 8b: model-wise speedup over Unfused at 64K", Fig8b},
		{"fig9a", "Fig 9a: Llama3 speedup on edge with 32x32 and 64x64 2D PE arrays", Fig9a},
		{"fig9b", "Fig 9b: model-wise speedup at 64K under the edge PE variants", Fig9b},
		{"fig10a", "Fig 10a: PE-array utilization for Llama3 on cloud across sequence lengths", Fig10a},
		{"fig10b", "Fig 10b: PE-array utilization per model at 64K on cloud", Fig10b},
		{"fig11", "Fig 11: per-layer speedup-contribution breakdown of TransFusion over FuseMax", Fig11},
		{"fig12a", "Fig 12a: Llama3 energy relative to Unfused across sequence lengths", Fig12a},
		{"fig12b", "Fig 12b: model-wise energy relative to Unfused at 64K", Fig12b},
		{"fig13", "Fig 13: energy breakdown across the memory hierarchy, TransFusion vs FuseMax", Fig13},
		{"headline", "Headline geometric-mean speedups over each baseline", Headline},
		{"ablation-tileseek", "Ablation: TileSeek MCTS vs random vs exhaustive search", AblationTileSeek},
		{"ablation-dpipe", "Ablation: DPipe vs static pipeline vs sequential per sub-layer", AblationDPipe},
		{"ablation-attention-passes", "Ablation: naive vs 2-pass vs 1-pass attention dataflows under DPipe", AblationAttentionPasses},
		{"sensitivity-bandwidth", "Sensitivity: TransFusion vs FuseMax across DRAM bandwidth scales", SensitivityBandwidth},
		{"sensitivity-causal", "Sensitivity: causal (decoder) masking under TransFusion", SensitivityCausal},
		{"stack-t5", "Extension: encoder-decoder stack composition on T5", StackT5},
	}
}

// ByID resolves an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, faults.Invalidf("experiments: unknown experiment %q", id)
}

// scalingSeqs is the 1K–1M sweep of the scaling figures.
func scalingSeqs() []int { return model.SeqLengths() }

// systemsVsUnfused lists the systems plotted against the Unfused baseline.
func systemsVsUnfused() []pipeline.System {
	return []pipeline.System{pipeline.FLAT(), pipeline.FuseMax(), pipeline.FuseMaxLayerFuse(), pipeline.TransFusion()}
}

// Table1 prints the Table 1 mapping as implemented.
func Table1(*Runner) (*report.Table, error) {
	t := report.NewTable("Table 1: dimension mapping onto the 2D PE array",
		"Layer", "2D PE Row", "2D PE Column")
	t.AddRow("QKV", "p/m0", "h,e (h,f for BV)")
	t.AddRow("MHA", "p", "m0 (f for SLNV/AV)")
	t.AddRow("LayerNorm", "p", "h,f")
	t.AddRow("FFN", "p", "s (h,f for FFN2)")
	return t, nil
}

// Table2 evaluates the buffer-requirement formulas for a representative
// tile on every model, against each architecture's capacity.
func Table2(*Runner) (*report.Table, error) {
	t := report.NewTable("Table 2: buffer requirement per tile (elements; heuristic tile, 64K sequence)",
		"Model", "Arch", "Tile", "QKV", "MHA", "LayerNorm", "FFN", "Capacity", "Fits")
	for _, spec := range []arch.Spec{arch.Cloud(), arch.Edge()} {
		for _, m := range model.All() {
			w := tiling.Workload{Model: m, SeqLen: model.SeqLength64K, Batch: model.EvalBatch}
			c, err := tiling.HeuristicTile(w, spec)
			if err != nil {
				return nil, err
			}
			pp := c.PPrime(spec)
			t.AddRow(m.Name, spec.Name, c.String(),
				fmt.Sprint(tiling.QKVBufferReq(c, m.H, m.E)),
				fmt.Sprint(tiling.MHABufferReq(c, m.H, m.E, m.F, pp)),
				fmt.Sprint(tiling.LayerNormBufferReq(c, m.H, m.F, pp)),
				fmt.Sprint(tiling.FFNBufferReq(c, m.H, m.F, pp)),
				fmt.Sprint(spec.BufferElements()),
				fmt.Sprint(tiling.Feasible(c, w, spec)))
		}
	}
	return t, nil
}

// Table3 prints the architecture presets.
func Table3(*Runner) (*report.Table, error) {
	t := report.NewTable("Table 3: architecture specification",
		"Name", "2D PE size", "1D PE size", "On-chip Mem.", "DRAM BW")
	for _, name := range []string{"cloud", "edge", "edge32", "edge64"} {
		s, err := arch.ByName(name)
		if err != nil {
			return nil, err
		}
		t.AddRow(s.Name,
			fmt.Sprintf("%dx%d", s.PE2D.Rows, s.PE2D.Cols),
			fmt.Sprint(s.PE1DLanes),
			fmt.Sprintf("%dMB", s.BufferBytes>>20),
			fmt.Sprintf("%.0fGB/s", s.DRAMBandwidth/1e9))
	}
	return t, nil
}

// Fig8a: Llama3 speedup over Unfused across sequence lengths on cloud and
// edge.
func Fig8a(r *Runner) (*report.Table, error) {
	return speedupScaling(r, model.Llama3(), []arch.Spec{arch.Cloud(), arch.Edge()},
		"Fig 8a: Llama3 speedup over Unfused (1K-1M)")
}

// Fig8b: model-wise speedup over Unfused at 64K.
func Fig8b(r *Runner) (*report.Table, error) {
	return speedupModels(r, []arch.Spec{arch.Cloud(), arch.Edge()},
		"Fig 8b: speedup over Unfused at 64K across models")
}

// Fig9a: the PE-scaling study on the 32x32 / 64x64 edge variants, Llama3.
func Fig9a(r *Runner) (*report.Table, error) {
	return speedupScaling(r, model.Llama3(), []arch.Spec{arch.Edge32(), arch.Edge64()},
		"Fig 9a: Llama3 speedup over Unfused on edge 32x32 / 64x64 (1K-1M)")
}

// Fig9b: model-wise speedup at 64K under the edge PE variants.
func Fig9b(r *Runner) (*report.Table, error) {
	return speedupModels(r, []arch.Spec{arch.Edge32(), arch.Edge64()},
		"Fig 9b: speedup over Unfused at 64K on edge 32x32 / 64x64")
}

func speedupScaling(r *Runner, m model.Config, specs []arch.Spec, title string) (*report.Table, error) {
	var cells []Cell
	for _, spec := range specs {
		for _, n := range scalingSeqs() {
			cells = append(cells, Cell{spec, m, n, pipeline.Unfused()})
			for _, sys := range systemsVsUnfused() {
				cells = append(cells, Cell{spec, m, n, sys})
			}
		}
	}
	if err := r.Prefetch(cells); err != nil {
		return nil, err
	}
	t := report.NewTable(title, "Arch", "Seq", "FLAT", "FuseMax", "FuseMax+LF", "TransFusion")
	for _, spec := range specs {
		for _, n := range scalingSeqs() {
			unf, err := r.Eval(spec, m, n, pipeline.Unfused())
			if err != nil {
				return nil, err
			}
			row := []string{spec.Name, report.SeqLabel(n)}
			for _, sys := range systemsVsUnfused() {
				res, err := r.Eval(spec, m, n, sys)
				if err != nil {
					return nil, err
				}
				row = append(row, report.F(res.Speedup(unf), 2))
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

func speedupModels(r *Runner, specs []arch.Spec, title string) (*report.Table, error) {
	var cells []Cell
	for _, spec := range specs {
		for _, m := range model.All() {
			cells = append(cells, Cell{spec, m, model.SeqLength64K, pipeline.Unfused()})
			for _, sys := range systemsVsUnfused() {
				cells = append(cells, Cell{spec, m, model.SeqLength64K, sys})
			}
		}
	}
	if err := r.Prefetch(cells); err != nil {
		return nil, err
	}
	t := report.NewTable(title, "Arch", "Model", "FLAT", "FuseMax", "FuseMax+LF", "TransFusion")
	for _, spec := range specs {
		for _, m := range model.All() {
			unf, err := r.Eval(spec, m, model.SeqLength64K, pipeline.Unfused())
			if err != nil {
				return nil, err
			}
			row := []string{spec.Name, m.Name}
			for _, sys := range systemsVsUnfused() {
				res, err := r.Eval(spec, m, model.SeqLength64K, sys)
				if err != nil {
					return nil, err
				}
				row = append(row, report.F(res.Speedup(unf), 2))
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// Fig10a: PE utilization for Llama3 on cloud across sequence lengths.
func Fig10a(r *Runner) (*report.Table, error) {
	var cells []Cell
	for _, n := range scalingSeqs() {
		for _, sys := range []pipeline.System{pipeline.FLAT(), pipeline.FuseMax(), pipeline.FuseMaxLayerFuse(), pipeline.TransFusion()} {
			cells = append(cells, Cell{arch.Cloud(), model.Llama3(), n, sys})
		}
	}
	if err := r.Prefetch(cells); err != nil {
		return nil, err
	}
	t := report.NewTable("Fig 10a: PE-array utilization, Llama3 on cloud",
		"Seq", "System", "2D util", "1D util")
	for _, n := range scalingSeqs() {
		for _, sys := range []pipeline.System{pipeline.FLAT(), pipeline.FuseMax(), pipeline.FuseMaxLayerFuse(), pipeline.TransFusion()} {
			res, err := r.Eval(arch.Cloud(), model.Llama3(), n, sys)
			if err != nil {
				return nil, err
			}
			t.AddRow(report.SeqLabel(n), sys.Name, report.Pct(res.Utilization2D()), report.Pct(res.Utilization1D()))
		}
	}
	return t, nil
}

// Fig10b: utilization per model at 64K on cloud.
func Fig10b(r *Runner) (*report.Table, error) {
	var cells []Cell
	for _, m := range model.All() {
		for _, sys := range []pipeline.System{pipeline.FuseMax(), pipeline.TransFusion()} {
			cells = append(cells, Cell{arch.Cloud(), m, model.SeqLength64K, sys})
		}
	}
	if err := r.Prefetch(cells); err != nil {
		return nil, err
	}
	t := report.NewTable("Fig 10b: PE-array utilization at 64K on cloud",
		"Model", "System", "2D util", "1D util")
	for _, m := range model.All() {
		for _, sys := range []pipeline.System{pipeline.FuseMax(), pipeline.TransFusion()} {
			res, err := r.Eval(arch.Cloud(), m, model.SeqLength64K, sys)
			if err != nil {
				return nil, err
			}
			t.AddRow(m.Name, sys.Name, report.Pct(res.Utilization2D()), report.Pct(res.Utilization1D()))
		}
	}
	return t, nil
}

// Fig11: the Eq. 47–48 speedup-contribution breakdown of TransFusion over
// FuseMax, per layer, across sequence lengths on cloud and edge.
func Fig11(r *Runner) (*report.Table, error) {
	t := report.NewTable("Fig 11: speedup contribution of TransFusion over FuseMax, Llama3",
		"Arch", "Seq", "QKV", "MHA", "Add&LayerNorm", "FFN")
	for _, spec := range []arch.Spec{arch.Cloud(), arch.Edge()} {
		for _, n := range scalingSeqs() {
			base, err := r.Eval(spec, model.Llama3(), n, pipeline.FuseMax())
			if err != nil {
				return nil, err
			}
			tf, err := r.Eval(spec, model.Llama3(), n, pipeline.TransFusion())
			if err != nil {
				return nil, err
			}
			c := tf.Contribution(base)
			t.AddRow(spec.Name, report.SeqLabel(n),
				report.Pct(c[pipeline.LayerQKV]), report.Pct(c[pipeline.LayerMHA]),
				report.Pct(c[pipeline.LayerNorm]), report.Pct(c[pipeline.LayerFFN]))
		}
	}
	return t, nil
}

// Fig12a: Llama3 energy relative to Unfused across sequence lengths.
func Fig12a(r *Runner) (*report.Table, error) {
	t := report.NewTable("Fig 12a: Llama3 energy relative to Unfused (lower is better)",
		"Arch", "Seq", "FLAT", "FuseMax", "FuseMax+LF", "TransFusion")
	for _, spec := range []arch.Spec{arch.Cloud(), arch.Edge()} {
		for _, n := range scalingSeqs() {
			unf, err := r.Eval(spec, model.Llama3(), n, pipeline.Unfused())
			if err != nil {
				return nil, err
			}
			row := []string{spec.Name, report.SeqLabel(n)}
			for _, sys := range systemsVsUnfused() {
				res, err := r.Eval(spec, model.Llama3(), n, sys)
				if err != nil {
					return nil, err
				}
				row = append(row, report.F(res.EnergyRatio(unf), 2))
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// Fig12b: model-wise energy relative to Unfused at 64K.
func Fig12b(r *Runner) (*report.Table, error) {
	t := report.NewTable("Fig 12b: energy relative to Unfused at 64K across models",
		"Arch", "Model", "FLAT", "FuseMax", "FuseMax+LF", "TransFusion")
	for _, spec := range []arch.Spec{arch.Cloud(), arch.Edge()} {
		for _, m := range model.All() {
			unf, err := r.Eval(spec, m, model.SeqLength64K, pipeline.Unfused())
			if err != nil {
				return nil, err
			}
			row := []string{spec.Name, m.Name}
			for _, sys := range systemsVsUnfused() {
				res, err := r.Eval(spec, m, model.SeqLength64K, sys)
				if err != nil {
					return nil, err
				}
				row = append(row, report.F(res.EnergyRatio(unf), 2))
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// Fig13: energy breakdown across the memory hierarchy for TransFusion and
// FuseMax on Llama3.
func Fig13(r *Runner) (*report.Table, error) {
	t := report.NewTable("Fig 13: energy breakdown (DRAM / Global Buffer / Register File / PE), Llama3",
		"Arch", "Seq", "System", "DRAM", "Buffer", "RegFile", "PE")
	for _, spec := range []arch.Spec{arch.Cloud(), arch.Edge()} {
		for _, n := range scalingSeqs() {
			for _, sys := range []pipeline.System{pipeline.TransFusion(), pipeline.FuseMax()} {
				res, err := r.Eval(spec, model.Llama3(), n, sys)
				if err != nil {
					return nil, err
				}
				e := res.Energy
				total := e.Total()
				t.AddRow(spec.Name, report.SeqLabel(n), sys.Name,
					report.Pct(e.DRAM/total), report.Pct(e.Buffer/total),
					report.Pct(e.Reg/total), report.Pct(e.PE/total))
			}
		}
	}
	return t, nil
}

// Headline computes the geometric-mean speedups of TransFusion over each
// baseline across all models and sequence lengths — the abstract's
// 1.6x (cloud) / 2.2x (edge) over FuseMax, 7.0x / 3.2x over FLAT, and
// 1.3x / 1.8x over FuseMax+LayerFuse.
func Headline(r *Runner) (*report.Table, error) {
	var cells []Cell
	for _, spec := range []arch.Spec{arch.Cloud(), arch.Edge()} {
		for _, m := range model.All() {
			for _, n := range scalingSeqs() {
				cells = append(cells, Cell{spec, m, n, pipeline.TransFusion()})
				for _, sys := range []pipeline.System{pipeline.FLAT(), pipeline.FuseMax(), pipeline.FuseMaxLayerFuse(), pipeline.Unfused()} {
					cells = append(cells, Cell{spec, m, n, sys})
				}
			}
		}
	}
	if err := r.Prefetch(cells); err != nil {
		return nil, err
	}
	t := report.NewTable("Headline: geomean speedup of TransFusion over each baseline (all models x 1K-1M)",
		"Arch", "vs FLAT", "vs FuseMax", "vs FuseMax+LF", "vs Unfused")
	for _, spec := range []arch.Spec{arch.Cloud(), arch.Edge()} {
		ratios := map[string][]float64{}
		for _, m := range model.All() {
			for _, n := range scalingSeqs() {
				tf, err := r.Eval(spec, m, n, pipeline.TransFusion())
				if err != nil {
					return nil, err
				}
				for _, sys := range []pipeline.System{pipeline.FLAT(), pipeline.FuseMax(), pipeline.FuseMaxLayerFuse(), pipeline.Unfused()} {
					base, err := r.Eval(spec, m, n, sys)
					if err != nil {
						return nil, err
					}
					ratios[sys.Name] = append(ratios[sys.Name], tf.Speedup(base))
				}
			}
		}
		t.AddRow(spec.Name,
			report.F(report.Geomean(ratios["flat"]), 2),
			report.F(report.Geomean(ratios["fusemax"]), 2),
			report.F(report.Geomean(ratios["fusemax+layerfuse"]), 2),
			report.F(report.Geomean(ratios["unfused"]), 2))
	}
	return t, nil
}
