package experiments

import (
	"fmt"

	"github.com/fusedmindlab/transfusion/internal/arch"
	"github.com/fusedmindlab/transfusion/internal/model"
	"github.com/fusedmindlab/transfusion/internal/pipeline"
	"github.com/fusedmindlab/transfusion/internal/report"
)

// SensitivityBandwidth sweeps the DRAM bandwidth around each preset
// (0.25x to 4x) and reports TransFusion's speedup over FuseMax at each
// point, on Llama3 at 64K. This extends the paper's evaluation with the
// robustness question its reviewers asked about compute capability (§6.2),
// applied to the memory system: fusion's advantage must grow as bandwidth
// shrinks (more memory-bound) and DPipe's advantage must persist as
// bandwidth grows (compute-bound).
func SensitivityBandwidth(r *Runner) (*report.Table, error) {
	t := report.NewTable("Sensitivity: TransFusion vs FuseMax across DRAM bandwidth (Llama3, 64K)",
		"Arch", "BW scale", "BW (GB/s)", "FuseMax cycles", "TransFusion cycles", "Speedup")
	for _, base := range []arch.Spec{arch.Cloud(), arch.Edge()} {
		for _, scale := range []float64{0.25, 0.5, 1, 2, 4} {
			spec := base
			spec.Name = fmt.Sprintf("%s-bw%gx", base.Name, scale)
			spec.DRAMBandwidth = base.DRAMBandwidth * scale
			w := pipeline.Workload{Model: model.Llama3(), SeqLen: model.SeqLength64K, Batch: model.EvalBatch}
			fm, err := pipeline.Evaluate(w, spec, pipeline.FuseMax(), r.Opts)
			if err != nil {
				return nil, err
			}
			tf, err := pipeline.Evaluate(w, spec, pipeline.TransFusion(), r.Opts)
			if err != nil {
				return nil, err
			}
			t.AddRow(base.Name, fmt.Sprintf("%gx", scale),
				fmt.Sprintf("%.0f", spec.DRAMBandwidth/1e9),
				report.Sci(fm.TotalCycles), report.Sci(tf.TotalCycles),
				report.F(tf.Speedup(fm), 2))
		}
	}
	return t, nil
}

// SensitivityCausal compares bidirectional and causal (decoder-masked)
// attention under TransFusion across sequence lengths — the decoder
// extension's effect on end-to-end latency.
func SensitivityCausal(r *Runner) (*report.Table, error) {
	t := report.NewTable("Sensitivity: causal (decoder) masking under TransFusion, Llama3 on cloud",
		"Seq", "Bidirectional cycles", "Causal cycles", "Causal/Bi")
	for _, n := range scalingSeqs() {
		w := pipeline.Workload{Model: model.Llama3(), SeqLen: n, Batch: model.EvalBatch}
		bi, err := pipeline.Evaluate(w, arch.Cloud(), pipeline.TransFusion(), r.Opts)
		if err != nil {
			return nil, err
		}
		w.Causal = true
		ca, err := pipeline.Evaluate(w, arch.Cloud(), pipeline.TransFusion(), r.Opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(report.SeqLabel(n), report.Sci(bi.TotalCycles), report.Sci(ca.TotalCycles),
			report.F(ca.TotalCycles/bi.TotalCycles, 2))
	}
	return t, nil
}

// StackT5 evaluates the encoder-decoder composition on T5 (the zoo's
// actual encoder-decoder model): a 16K-token source encoded once, a
// 4K-token target decoded with masked self-attention and per-layer
// cross-attention over the memory. Extends the paper's encoder-only
// evaluation with its §3.2 hybrid-composition claim.
func StackT5(r *Runner) (*report.Table, error) {
	t := report.NewTable("Extension: encoder-decoder stack (T5, 16K source / 4K target)",
		"Arch", "System", "Encoder", "Dec self", "Dec cross", "Total", "vs Unfused")
	for _, spec := range []arch.Spec{arch.Cloud(), arch.Edge()} {
		w := pipeline.Workload{Model: model.T5(), Batch: model.EvalBatch}
		var unfused float64
		for _, sys := range []pipeline.System{pipeline.Unfused(), pipeline.FuseMax(), pipeline.TransFusion()} {
			res, err := pipeline.EvaluateEncoderDecoder(w, 16<<10, 4<<10, spec, sys, r.Opts)
			if err != nil {
				return nil, err
			}
			if sys.Name == "unfused" {
				unfused = res.TotalCycles
			}
			t.AddRow(spec.Name, sys.Name,
				report.Sci(res.Encoder.TotalCycles), report.Sci(res.DecoderSelf.TotalCycles),
				report.Sci(res.DecoderCross.TotalCycles), report.Sci(res.TotalCycles),
				report.F(unfused/res.TotalCycles, 2))
		}
	}
	return t, nil
}
