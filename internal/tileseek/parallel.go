// Parallel search engine: speculative trajectory replay over a memoized
// objective cache.
//
// The hard requirement is bit-identical results at any Parallelism and any
// GOMAXPROCS. Classic parallel MCTS (virtual loss, merged root statistics)
// perturbs the visit counts and therefore the UCB trajectory, so it cannot
// meet that bar. Instead the engine keeps a single master goroutine running
// the exact serial loop, and turns the remaining workers into speculators:
//
//   - The objective is required to be pure when parallelism is enabled, so a
//     concurrency-safe singleflight memo cache keyed by tiling.Config holds
//     values indistinguishable from fresh evaluations.
//   - Whenever the master is about to block on an evaluation it publishes a
//     snapshot (tree clone + PRNG state + reward scale). Workers clone the
//     snapshot and replay the master's own algorithm forward; evaluations
//     still in flight are bridged with a hypothesized reward (the tree's
//     mean rollout reward), and every configuration a worker reaches first
//     is claimed and evaluated into the cache.
//   - After a bounded replay prefix each worker switches its rollout tail to
//     a private seed-split PRNG stream (splitmix64(seed, workerID)), turning
//     it into an explorer that samples the same region of the space the
//     master's next rollouts are drawn from and warms the cache broadly.
//
// The master's consumed values come from the cache but are bit-equal to what
// a direct call would return, so Result, counters derived from the master
// trajectory, and progress events all match the serial engine exactly.
package tileseek

import (
	"math"
	"sync"
	"sync/atomic"

	"github.com/fusedmindlab/transfusion/internal/obs"
	"github.com/fusedmindlab/transfusion/internal/tiling"
)

// splitmix64 derives an independent, well-mixed PRNG seed for a worker
// stream from the search seed. Sequential stream indices land far apart in
// state space, so worker streams never correlate with each other or with
// the master's xorshift sequence.
func splitmix64(seed, stream uint64) uint64 {
	z := seed + (stream+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// cacheEntry is one singleflight slot: whoever creates it owns the
// evaluation and must close done exactly once; cost/ok are immutable after
// done is closed.
type cacheEntry struct {
	done chan struct{}
	cost float64
	ok   bool
}

// objCache is the concurrency-safe objective memo cache.
type objCache struct {
	mu sync.Mutex
	m  map[tiling.Config]*cacheEntry
}

func newObjCache() *objCache { return &objCache{m: make(map[tiling.Config]*cacheEntry)} }

// acquire returns cfg's entry and whether the caller claimed it. A claimant
// MUST store cost/ok and close done (even on panic), or every later reader
// deadlocks.
func (c *objCache) acquire(cfg tiling.Config) (*cacheEntry, bool) {
	c.mu.Lock()
	e, ok := c.m[cfg]
	if !ok {
		e = &cacheEntry{done: make(chan struct{})}
		c.m[cfg] = e
	}
	c.mu.Unlock()
	return e, !ok
}

// peekDone returns cfg's entry if it exists and has completed, without
// claiming or blocking.
func (c *objCache) peekDone(cfg tiling.Config) (*cacheEntry, bool) {
	c.mu.Lock()
	e := c.m[cfg]
	c.mu.Unlock()
	if e == nil {
		return nil, false
	}
	select {
	case <-e.done:
		return e, true
	default:
		return e, false
	}
}

// fill evaluates cfg into a claimed entry. done is closed even if the
// objective panics, so no reader is ever stranded; the panic itself keeps
// propagating to the caller.
func (c *objCache) fill(e *cacheEntry, obj Objective, cfg tiling.Config) (float64, bool) {
	defer close(e.done)
	e.cost, e.ok = obj(cfg)
	return e.cost, e.ok
}

// Speculation tuning defaults. The chain prefix replays the master's PRNG
// verbatim (maximum-likelihood prediction of its next configs); past it the
// worker flips to its explorer stream so mispredicted hypotheses cannot
// steer a long wasted chain, and the cache fills with samples from the
// current rollout distribution instead. Options.SpecChainSteps /
// SpecLookahead / SpecMaxFresh override these per search so speculation can
// be tuned against measured overlap; since speculation only warms the memo
// cache, no setting changes the search result.
const (
	defaultSpecChainSteps = 8   // replay steps on the master's PRNG stream
	defaultSpecLookahead  = 256 // total replay steps per snapshot before re-syncing
	defaultSpecMaxFresh   = 16  // evaluations per snapshot before re-syncing
)

// specTuning is the resolved speculation configuration.
type specTuning struct {
	chainSteps int
	lookahead  int
	maxFresh   int
}

// tuning resolves the Options speculation knobs, zeroes meaning defaults.
func (o Options) tuning() specTuning {
	t := specTuning{
		chainSteps: defaultSpecChainSteps,
		lookahead:  defaultSpecLookahead,
		maxFresh:   defaultSpecMaxFresh,
	}
	if o.SpecChainSteps > 0 {
		t.chainSteps = o.SpecChainSteps
	}
	if o.SpecLookahead > 0 {
		t.lookahead = o.SpecLookahead
	}
	if o.SpecMaxFresh > 0 {
		t.maxFresh = o.SpecMaxFresh
	}
	return t
}

// clone deep-copies the subtree rooted at n, attaching it to parent.
func (n *node) clone(parent *node) *node {
	c := &node{level: n.level, choice: n.choice, parent: parent,
		visits: n.visits, reward: n.reward, dead: n.dead}
	if len(n.children) > 0 {
		c.children = make([]*node, len(n.children))
		for i, ch := range n.children {
			c.children[i] = ch.clone(c)
		}
	}
	return c
}

// specSnapshot is the master's frozen pre-evaluation state. root is a clone
// owned by the snapshot: workers clone it again before mutating, so one
// snapshot safely feeds any number of workers.
type specSnapshot struct {
	root  *node
	rng   uint64
	scale float64
}

// speculator owns the memo cache and the worker pool.
type speculator struct {
	space  Space
	levels [][]int
	obj    Objective
	cache  *objCache
	tune   specTuning

	hitsC   *obs.Counter // master consumed a cached / in-flight value
	missesC *obs.Counter // master had to evaluate itself
	evalsC  *obs.Counter // speculative evaluations by workers

	mu   sync.Mutex
	cond *sync.Cond
	gen  int64
	snap *specSnapshot

	genA     atomic.Int64 // mirror of gen for lock-free staleness checks
	stoppedA atomic.Bool
	stopped  bool

	wg       sync.WaitGroup
	panicMu  sync.Mutex
	panicVal any
}

func newSpeculator(space Space, obj Objective, seed uint64, workers int, tune specTuning, hitsC, missesC, evalsC *obs.Counter) *speculator {
	sp := &speculator{
		space:  space,
		levels: space.levels(),
		obj:    obj,
		cache:  newObjCache(),
		tune:   tune,
		hitsC:  hitsC, missesC: missesC, evalsC: evalsC,
	}
	sp.cond = sync.NewCond(&sp.mu)
	sp.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go sp.worker(i, seed)
	}
	return sp
}

// consume resolves one feasible configuration for the master. mw is the
// master's walker (read here only to publish a snapshot; never mutated) and
// scale its current reward normaliser.
func (sp *speculator) consume(cfg tiling.Config, mw *walker, scale float64) (float64, bool) {
	if e, ready := sp.cache.peekDone(cfg); ready {
		sp.hitsC.Inc()
		return e.cost, e.ok
	}
	// The master is about to block: hand the workers its exact state so they
	// can run ahead while it waits.
	sp.publish(mw, scale)
	e, claimed := sp.cache.acquire(cfg)
	if claimed {
		sp.missesC.Inc()
		return sp.cache.fill(e, sp.obj, cfg)
	}
	// A worker got there first and is still computing: joining it still
	// overlaps work, so it counts as a hit.
	sp.hitsC.Inc()
	<-e.done
	return e.cost, e.ok
}

// publish freezes the master's state as a new snapshot generation.
func (sp *speculator) publish(mw *walker, scale float64) {
	snap := &specSnapshot{root: mw.root.clone(nil), rng: mw.r.state, scale: scale}
	sp.mu.Lock()
	sp.gen++
	sp.snap = snap
	sp.genA.Store(sp.gen)
	sp.mu.Unlock()
	sp.cond.Broadcast()
}

// stop shuts the pool down, waits for in-flight evaluations, and re-raises
// the first worker panic (if any) on the caller's goroutine so objective
// panics surface exactly as they do on the serial path.
func (sp *speculator) stop() {
	sp.mu.Lock()
	sp.stopped = true
	sp.mu.Unlock()
	sp.stoppedA.Store(true)
	sp.cond.Broadcast()
	sp.wg.Wait()
	if sp.panicVal != nil {
		panic(sp.panicVal)
	}
}

func (sp *speculator) recordPanic(p any) {
	sp.panicMu.Lock()
	if sp.panicVal == nil {
		sp.panicVal = p
	}
	sp.panicMu.Unlock()
}

// worker is one speculation loop: wait for a snapshot generation, replay
// from it, repeat. Its explorer PRNG stream persists across snapshots so the
// rollout tails it samples never repeat.
func (sp *speculator) worker(id int, seed uint64) {
	defer sp.wg.Done()
	defer func() {
		if p := recover(); p != nil {
			sp.recordPanic(p)
		}
	}()
	explorer := newRNG(splitmix64(seed, uint64(id)))
	var lastGen int64
	for {
		sp.mu.Lock()
		for !sp.stopped && sp.gen == lastGen {
			sp.cond.Wait()
		}
		if sp.stopped {
			sp.mu.Unlock()
			return
		}
		lastGen = sp.gen
		snap := sp.snap
		sp.mu.Unlock()
		sp.speculate(snap, lastGen, explorer)
	}
}

// speculate replays the master's algorithm from one snapshot: true rewards
// come from completed cache entries, configurations nobody holds are claimed
// and evaluated (the useful parallel work), and entries still in flight are
// bridged with the tree's mean rollout reward so the replay can continue
// past them. The first specChainSteps use the master's own PRNG state —
// predicting its actual next configs — after which the worker's private
// stream takes over the rollout tails.
func (sp *speculator) speculate(snap *specSnapshot, gen int64, explorer *rng) {
	w := &walker{space: sp.space, levels: sp.levels,
		r: &rng{state: snap.rng}, root: snap.root.clone(nil)}
	scale := snap.scale
	mean := 1.0
	if w.root.visits > 0 {
		mean = w.root.reward / float64(w.root.visits)
	}
	fresh := 0
	for step := 0; step < sp.tune.lookahead; step++ {
		if sp.stoppedA.Load() || sp.genA.Load() != gen {
			return // newer truth available: re-sync
		}
		if step == sp.tune.chainSteps {
			w.r = explorer
		}
		cur, cfg, _, feasible := w.step()
		reward := 0.0
		if feasible {
			if e, claimed := sp.cache.acquire(cfg); claimed {
				cost, ok := sp.cache.fill(e, sp.obj, cfg)
				sp.evalsC.Inc()
				fresh++
				reward = specReward(cost, ok, &scale)
			} else {
				select {
				case <-e.done:
					reward = specReward(e.cost, e.ok, &scale)
				default:
					reward = mean // in flight elsewhere: hypothesize
				}
			}
		}
		backprop(cur, reward)
		if fresh >= sp.tune.maxFresh {
			return
		}
	}
}

// specReward mirrors the master's reward computation, including its
// first-feasible-sets-the-scale rule on the worker's local copy.
func specReward(cost float64, ok bool, scale *float64) float64 {
	if !ok || cost <= 0 {
		return 0
	}
	if math.IsNaN(*scale) {
		*scale = cost
	}
	return *scale / cost
}
