package tileseek

import (
	"context"
	"errors"
	"testing"

	"github.com/fusedmindlab/transfusion/internal/arch"
	"github.com/fusedmindlab/transfusion/internal/faults"
	"github.com/fusedmindlab/transfusion/internal/model"
	"github.com/fusedmindlab/transfusion/internal/tiling"
)

func cancelTestSpace() Space {
	w := tiling.Workload{Model: model.BERT(), SeqLen: 1024, Batch: 64}
	return DefaultSpace(w, arch.Cloud())
}

func TestSearchContextCanceledUpFront(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	objective := func(c tiling.Config) (float64, bool) { calls++; return 1, true }
	_, err := SearchContext(ctx, cancelTestSpace(), objective, 1000, 1)
	if !errors.Is(err, faults.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, does not also match context.Canceled", err)
	}
	if calls != 0 {
		t.Fatalf("objective called %d times under a pre-canceled context", calls)
	}
}

func TestSearchContextStopsWithinOneRollout(t *testing.T) {
	// Cancel from inside the first objective evaluation: the search must
	// notice at the next rollout boundary, i.e. at most one more evaluation.
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	objective := func(c tiling.Config) (float64, bool) {
		calls++
		cancel()
		return 1, true
	}
	res, err := SearchContext(ctx, cancelTestSpace(), objective, 1<<20, 1)
	if !errors.Is(err, faults.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if calls > 2 {
		t.Fatalf("search ran %d objective evaluations after cancellation; want <= 2", calls)
	}
	// The partial result reflects what was accumulated before the cancel.
	if res.Evaluated != calls {
		t.Fatalf("partial result reports %d evaluations, objective ran %d", res.Evaluated, calls)
	}
}

func TestSearchReportsInfeasibleSpace(t *testing.T) {
	w := tiling.Workload{Model: model.BERT(), SeqLen: 4096, Batch: 64}
	space := Space{
		Workload: w,
		Spec:     arch.Cloud(),
		Bs:       []int{w.Batch},
		Ds:       []int{w.Model.D},
		Ps:       []int{w.SeqLen},
		M0s:      []int{w.SeqLen},
		M1s:      []int{1},
		Ss:       []int{w.Model.S},
	}
	objective := func(c tiling.Config) (float64, bool) { return 1, true }
	_, err := Search(space, objective, 16, 1)
	if !errors.Is(err, faults.ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}
