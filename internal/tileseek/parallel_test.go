package tileseek

import (
	"context"
	"runtime"
	"sync"
	"testing"

	"github.com/fusedmindlab/transfusion/internal/obs"
	"github.com/fusedmindlab/transfusion/internal/tiling"
)

// The headline guarantee: SearchWithOptions returns a bit-identical Result —
// and identical master-trajectory counters — at Parallelism 1, 4, and
// GOMAXPROCS, across a sweep of GOMAXPROCS values.
func TestSearchParallelismBitIdentical(t *testing.T) {
	s := testSpace()
	obj := syntheticObjective(s.Workload)
	const budget, seed = 400, 7

	run := func(parallelism int) (Result, obs.Snapshot) {
		reg := obs.NewRegistry()
		ctx := obs.WithMetrics(context.Background(), reg)
		res, err := SearchWithOptions(ctx, s, obj, Options{
			Iterations: budget, Seed: seed, Parallelism: parallelism,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, reg.Snapshot()
	}

	ref, refSnap := run(1)
	if !ref.Found {
		t.Fatal("serial reference found nothing")
	}

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 2, 4} {
		runtime.GOMAXPROCS(procs)
		for _, parallelism := range []int{1, 4, 0} { // 0 resolves to GOMAXPROCS
			res, snap := run(parallelism)
			if res != ref {
				t.Fatalf("GOMAXPROCS=%d parallelism=%d: result %+v != serial %+v",
					procs, parallelism, res, ref)
			}
			for _, name := range []string{"tileseek.rollouts", "tileseek.evaluated", "tileseek.pruned"} {
				if snap.Counters[name] != refSnap.Counters[name] {
					t.Fatalf("GOMAXPROCS=%d parallelism=%d: counter %s = %d, serial %d",
						procs, parallelism, name, snap.Counters[name], refSnap.Counters[name])
				}
			}
		}
	}
}

// Memoized values must be indistinguishable from fresh evaluations: every
// (config, cost, ok) the cache hands out equals a direct objective call, and
// the parallel search exercises the cache (nonzero hits).
func TestObjectiveCacheCorrectness(t *testing.T) {
	s := testSpace()
	pure := syntheticObjective(s.Workload)

	var mu sync.Mutex
	served := map[tiling.Config]float64{}
	obj := func(c tiling.Config) (float64, bool) {
		cost, ok := pure(c)
		mu.Lock()
		if prev, seen := served[c]; seen && prev != cost {
			mu.Unlock()
			t.Errorf("objective impure for %v: %v vs %v", c, prev, cost)
			return cost, ok
		}
		served[c] = cost
		mu.Unlock()
		return cost, ok
	}

	reg := obs.NewRegistry()
	ctx := obs.WithMetrics(context.Background(), reg)
	res, err := SearchWithOptions(ctx, s, obj, Options{Iterations: 400, Seed: 7, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}

	// Every evaluation that ever hit the cache must equal a fresh call.
	mu.Lock()
	defer mu.Unlock()
	for c, cost := range served {
		if fresh, ok := pure(c); !ok || fresh != cost {
			t.Fatalf("cached value for %v = %v, fresh evaluation = %v", c, cost, fresh)
		}
	}
	if fresh, ok := pure(res.Best); !ok || fresh != res.BestCost {
		t.Fatalf("best cost %v does not match a fresh evaluation %v", res.BestCost, fresh)
	}

	snap := reg.Snapshot()
	hits, misses := snap.Counters["tileseek.cache_hits"], snap.Counters["tileseek.cache_misses"]
	if hits == 0 {
		t.Fatalf("cache never hit (hits=%d misses=%d)", hits, misses)
	}
	if hits+misses != int64(res.Evaluated) {
		t.Fatalf("hits+misses = %d, want consumed evaluations %d", hits+misses, res.Evaluated)
	}
}

// splitmix64 streams must differ per worker and be stable per (seed, id).
func TestSplitmix64Streams(t *testing.T) {
	seen := map[uint64]bool{}
	for id := uint64(0); id < 64; id++ {
		v := splitmix64(42, id)
		if seen[v] {
			t.Fatalf("stream collision at id %d", id)
		}
		seen[v] = true
		if v != splitmix64(42, id) {
			t.Fatal("splitmix64 unstable")
		}
	}
	if splitmix64(1, 0) == splitmix64(2, 0) {
		t.Fatal("seed ignored")
	}
}
