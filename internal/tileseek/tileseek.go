// Package tileseek implements TileSeek, the paper's MCTS-based outer-tiling
// search (§5). Each node of the search tree fixes one more tiling factor
// along the dimensions [B, D, P, M0, M1, S]; a root-to-leaf path is a
// complete outer-tiling configuration. Selection uses the UCB1 criterion,
// candidate tilings are validated against the Table 2 buffer constraints
// before evaluation, leaves are scored by a caller-supplied objective (the
// performance model's latency or energy — the Timeloop/Accelergy stand-in),
// and rewards are backpropagated along the selected path.
//
// The package also provides random search and bounded exhaustive search
// over the same space, used by the paper-style ablation comparing search
// strategies at equal evaluation budgets.
package tileseek

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"runtime"

	"github.com/fusedmindlab/transfusion/internal/arch"
	"github.com/fusedmindlab/transfusion/internal/chaos"
	"github.com/fusedmindlab/transfusion/internal/faults"
	"github.com/fusedmindlab/transfusion/internal/obs"
	"github.com/fusedmindlab/transfusion/internal/tiling"
)

// Objective scores a complete, feasible tiling configuration; lower is
// better (e.g. modelled latency in cycles or energy in picojoules). The
// boolean reports whether the configuration could be evaluated.
type Objective func(c tiling.Config) (cost float64, ok bool)

// Space is the candidate set per tiling dimension. Dimensions are decided
// in the fixed order B, D, P, M0, M1, S.
type Space struct {
	Workload tiling.Workload
	Spec     arch.Spec
	Bs       []int
	Ds       []int
	Ps       []int
	M0s      []int
	M1s      []int
	Ss       []int
}

// DefaultSpace derives the search space the evaluation uses: divisors of
// the full extents, with the query tile and KV tile capped to keep the
// space commensurate with the paper's (fine-grained but finite).
func DefaultSpace(w tiling.Workload, spec arch.Spec) Space {
	return Space{
		Workload: w,
		Spec:     spec,
		Bs:       tiling.Divisors(w.Batch, 8),
		Ds:       tiling.Divisors(w.Model.D, 0),
		Ps:       tiling.Divisors(w.SeqLen, 0),
		M0s:      tiling.Divisors(w.SeqLen, 4096),
		M1s:      tiling.Divisors(w.SeqLen, 64),
		Ss:       tiling.Divisors(w.Model.S, 0),
	}
}

// levels returns the candidate lists in decision order.
func (s Space) levels() [][]int {
	return [][]int{s.Bs, s.Ds, s.Ps, s.M0s, s.M1s, s.Ss}
}

// minCompletion fills the undecided levels of a partial assignment with
// each level's smallest candidate. Because every Table 2 buffer formula is
// monotone in every tile extent, the minimal completion is a lower bound:
// if it does not fit the buffer, no completion of the partial assignment
// does, and the whole subtree can be pruned (§5.1, constraint validation).
func (s Space) minCompletion(partial []int) tiling.Config {
	levels := s.levels()
	full := make([]int, len(levels))
	for i := range full {
		if i < len(partial) {
			full[i] = partial[i]
		} else {
			full[i] = levels[i][0]
		}
	}
	return assemble(full)
}

// partialFeasible reports whether some completion of the partial assignment
// can satisfy the buffer constraint (via the minimal-completion lower
// bound). Divisibility constraints are only enforced for decided levels —
// the minimal candidates are always divisors, so they never reject a
// partial spuriously.
func (s Space) partialFeasible(partial []int) bool {
	return tiling.Feasible(s.minCompletion(partial), s.Workload, s.Spec)
}

// assemble builds a Config from one choice per level.
func assemble(choices []int) tiling.Config {
	return tiling.Config{B: choices[0], D: choices[1], P: choices[2], M0: choices[3], M1: choices[4], S: choices[5]}
}

// Validate checks the space is non-empty in every dimension.
func (s Space) Validate() error {
	for i, l := range s.levels() {
		if len(l) == 0 {
			return fmt.Errorf("tileseek: empty candidate list at level %d", i)
		}
	}
	return s.Workload.Validate()
}

// Size returns the total number of complete configurations in the space.
func (s Space) Size() int64 {
	n := int64(1)
	for _, l := range s.levels() {
		n *= int64(len(l))
	}
	return n
}

// Result is the outcome of a search.
type Result struct {
	// Best is the best feasible configuration found.
	Best tiling.Config
	// BestCost is its objective value.
	BestCost float64
	// Evaluated counts objective evaluations (feasible candidates).
	Evaluated int
	// Pruned counts candidates rejected by the buffer constraint before
	// evaluation.
	Pruned int
	// Found reports whether any feasible configuration was found.
	Found bool
}

// rng is a deterministic xorshift PRNG for reproducible searches.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x853C49E6748FEA9B
	}
	return &rng{state: seed}
}

func (r *rng) next() uint64 {
	r.state ^= r.state >> 12
	r.state ^= r.state << 25
	r.state ^= r.state >> 27
	return r.state * 0x2545F4914F6CDD1D
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

func (r *rng) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

// ucbC is the UCB1 exploration constant.
const ucbC = 1.4

// node is one MCTS tree node: a partial configuration through `level`
// decided levels.
type node struct {
	level    int // number of decided levels
	choice   int // candidate index chosen at level-1 (undefined for root)
	parent   *node
	children []*node
	visits   int
	reward   float64
	dead     bool // subtree pruned by the buffer-constraint lower bound
}

func (n *node) ucb(total int) float64 {
	if n.dead {
		return math.Inf(-1)
	}
	if n.visits == 0 {
		return math.Inf(1)
	}
	return n.reward/float64(n.visits) + ucbC*math.Sqrt(math.Log(float64(total))/float64(n.visits))
}

// Options configures a search beyond the space and objective. The zero
// value selects a 1-iteration search with the default seed and no
// observability hooks.
type Options struct {
	// Iterations is the rollout budget (<= 0 selects 1).
	Iterations int
	// Seed seeds the deterministic PRNG (0 selects the fixed default).
	Seed uint64
	// Parallelism sets how many goroutines may evaluate objectives
	// concurrently: 0 selects GOMAXPROCS, 1 the serial engine (exactly
	// today's single-threaded loop), and n > 1 one master plus n-1
	// speculative workers. The result is bit-identical at every setting for
	// a fixed seed — parallel workers only warm a memo cache of the pure
	// objective, they never alter the master trajectory — but the objective
	// must be concurrency-safe (and pure, or the determinism guarantee is
	// void) whenever the effective parallelism exceeds 1.
	Parallelism int
	// Progress, when non-nil, receives an obs.RolloutDone event after every
	// rollout. Leave nil to pay nothing: the event is neither constructed
	// nor boxed when unset.
	Progress obs.ProgressFunc
	// Hint, when non-nil, warm-starts the search from a previously winning
	// configuration (typically the stored result for the nearest sequence
	// length): the MCTS path to the hint is pre-expanded and pre-visited, so
	// its evaluation becomes the incumbent best — a warm search can never
	// return a worse objective than the hint's — and primes the objective
	// memo. A hint whose values do not appear in the space, or which fails
	// the buffer constraint, is ignored. With no hint the search is
	// bit-identical to the unhinted one; with a hint the objective must be
	// pure even at Parallelism 1, because the warm path memoises it
	// (tileseek.cache_hits/cache_misses count the memo there too).
	Hint *tiling.Config
	// SpecChainSteps / SpecLookahead / SpecMaxFresh override the speculative
	// workers' tuning when Parallelism exceeds 1 (0 = the defaults of 8,
	// 256, and 16). Speculation only warms the objective memo, so these
	// never change the search result.
	SpecChainSteps int
	SpecLookahead  int
	SpecMaxFresh   int
}

// Search runs MCTS for the given number of iterations and returns the best
// feasible configuration. Deterministic for a fixed seed.
func Search(space Space, objective Objective, iterations int, seed uint64) (Result, error) {
	return SearchContext(context.Background(), space, objective, iterations, seed)
}

// SearchContext is Search under a context. Cancellation is checked before
// every rollout: a canceled search stops within one rollout and returns the
// partial Result accumulated so far (Found reports whether it holds a usable
// best) together with an error matching faults.ErrCanceled. A search that
// completes its budget without finding any feasible configuration returns an
// error matching faults.ErrInfeasible — an expected outcome callers degrade
// around, not a crash.
//
// SearchContext always runs the serial engine (Parallelism 1), so the
// objective does not need to be concurrency-safe; use SearchWithOptions to
// opt into parallel evaluation.
func SearchContext(ctx context.Context, space Space, objective Objective, iterations int, seed uint64) (Result, error) {
	return SearchWithOptions(ctx, space, objective, Options{Iterations: iterations, Seed: seed, Parallelism: 1})
}

// resolveParallelism maps an Options.Parallelism value to a worker count.
func resolveParallelism(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// walker bundles the state the MCTS loop threads through one rollout:
// the space, its candidate lists, the PRNG, and the tree root. step is the
// single source of truth for selection + expansion + rollout, shared by the
// serial master loop and the speculative workers so both replay the exact
// same trajectory from equal state.
type walker struct {
	space  Space
	levels [][]int
	r      *rng
	root   *node
}

// step runs one iteration's selection, expansion, and rollout: it returns
// the node to backpropagate from, the completed configuration, how many
// candidates the buffer-constraint lower bound pruned during expansion, and
// whether the configuration passed final validation.
func (w *walker) step() (cur *node, cfg tiling.Config, pruned int, feasible bool) {
	// Selection: descend by UCB1 until a node with unexpanded children or a
	// leaf. Subtrees whose minimal completion already exceeds the buffer are
	// marked dead at expansion time and never selected.
	cur = w.root
	values := make([]int, 0, len(w.levels))
	for cur.level < len(w.levels) {
		cands := w.levels[cur.level]
		if len(cur.children) < len(cands) {
			// Expansion: add the next unexpanded child, pruning dead
			// subtrees eagerly. Children are expanded from the largest
			// candidate down — large tiles amortise weight and K/V
			// re-reads best, so they deserve the earliest visits, and
			// the ones that cannot fit are pruned by the lower bound
			// before costing an evaluation.
			idx := len(cands) - 1 - len(cur.children)
			child := &node{level: cur.level + 1, choice: idx, parent: cur}
			if !w.space.partialFeasible(append(values, cands[idx])) {
				child.dead = true
				pruned++
			}
			cur.children = append(cur.children, child)
			if child.dead {
				continue // try the next candidate within this iteration
			}
			cur = child
			values = append(values, cands[idx])
			break
		}
		best := (*node)(nil)
		bestScore := math.Inf(-1)
		for _, ch := range cur.children {
			if s := ch.ucb(cur.visits + 1); s > bestScore {
				bestScore = s
				best = ch
			}
		}
		if best == nil || best.dead {
			break // every child pruned: roll out from here
		}
		cur = best
		values = append(values, w.levels[cur.level-1][cur.choice])
	}

	// Rollout: complete the remaining levels randomly among values that
	// keep the minimal completion feasible (constraint-guided sampling,
	// §5.1); fall back to uniform if no candidate passes the bound.
	full := append([]int(nil), values...)
	for len(full) < len(w.levels) {
		cands := w.levels[len(full)]
		var live []int
		for _, v := range cands {
			if w.space.partialFeasible(append(full, v)) {
				live = append(live, v)
			}
		}
		if len(live) == 0 {
			live = cands
		}
		full = append(full, live[w.r.intn(len(live))])
	}
	cfg = assemble(full)

	// Final constraint validation: infeasible tiles earn zero reward and are
	// never passed to the expensive evaluation.
	return cur, cfg, pruned, tiling.Feasible(cfg, w.space.Workload, w.space.Spec)
}

// backprop adds one visit carrying the given reward to every node from n up
// to the root.
func backprop(n *node, reward float64) {
	for ; n != nil; n = n.parent {
		n.visits++
		n.reward += reward
	}
}

// warmSeed pre-expands and pre-visits the MCTS path to a hinted
// configuration before the first rollout: children along the path are
// created in exactly the expansion order the serial loop uses (largest
// candidate first, dead-marking infeasible siblings via the same lower
// bound), the hint is evaluated through consume — priming the objective
// memo — and its reward is backpropagated from the leaf. The hint's cost
// thereby becomes the incumbent Result.Best before any rollout, which is
// what makes a warm search never worse than its hint. A hint outside the
// space or failing the buffer constraint is rejected before touching the
// tree, leaving the search identical to a cold one. Reports success on the
// tileseek.warm_seeds counter.
func warmSeed(w *walker, hint tiling.Config, consume func(tiling.Config) (float64, bool), res *Result, scale *float64, warmC, evaluatedC, prunedC *obs.Counter) bool {
	choices := []int{hint.B, hint.D, hint.P, hint.M0, hint.M1, hint.S}
	idxs := make([]int, len(w.levels))
	for l, cands := range w.levels {
		idxs[l] = -1
		for i, v := range cands {
			if v == choices[l] {
				idxs[l] = i
				break
			}
		}
		if idxs[l] < 0 {
			return false
		}
	}
	if !tiling.Feasible(hint, w.space.Workload, w.space.Spec) {
		return false
	}
	cur := w.root
	values := make([]int, 0, len(w.levels))
	for cur.level < len(w.levels) {
		cands := w.levels[cur.level]
		hi := idxs[cur.level]
		// The hinted child is created once the children list spans index hi
		// in expansion order (idx = len(cands)-1-position, so position
		// len(cands)-1-hi); expanding any further would deviate from the
		// prefix invariant the serial loop's expansion relies on.
		for len(cur.children) < len(cands)-hi {
			idx := len(cands) - 1 - len(cur.children)
			child := &node{level: cur.level + 1, choice: idx, parent: cur}
			if !w.space.partialFeasible(append(values, cands[idx])) {
				child.dead = true
				res.Pruned++
				prunedC.Inc()
			}
			cur.children = append(cur.children, child)
		}
		var next *node
		for _, ch := range cur.children {
			if ch.choice == hi {
				next = ch
				break
			}
		}
		if next == nil || next.dead {
			// Unreachable while the buffer formulas stay monotone (a feasible
			// full hint implies every prefix's minimal completion fits), but a
			// dead hint child must not be visited: bail and let the search run
			// from the partially expanded tree, which is still a valid state.
			return false
		}
		values = append(values, cands[hi])
		cur = next
	}
	cost, ok := consume(hint)
	if !ok || cost <= 0 {
		return false
	}
	res.Evaluated++
	evaluatedC.Inc()
	if math.IsNaN(*scale) {
		*scale = cost
	}
	if cost < res.BestCost {
		res.BestCost = cost
		res.Best = hint
		res.Found = true
	}
	backprop(cur, *scale/cost)
	warmC.Inc()
	return true
}

// SearchWithOptions is SearchContext with explicit Options, the full-fidelity
// entry point.
//
// Observability: a registry attached to ctx (obs.WithMetrics) accumulates
// tileseek.searches, tileseek.rollouts, tileseek.evaluated and
// tileseek.pruned; with parallelism enabled it additionally accumulates
// tileseek.cache_hits, tileseek.cache_misses and tileseek.spec_evals; a
// logger attached to ctx (obs.WithLogger) gets debug lines at search start
// and end; opts.Progress streams per-rollout events (always from the master
// goroutine, exactly once per rollout, at every parallelism level). With
// none of the three configured the rollout loop allocates nothing it did not
// already allocate. A request span attached to ctx (obs.ContextWithSpan)
// gains one "tileseek.search" child covering the whole search, annotated
// with the iteration budget and the evaluated/pruned/found outcome.
func SearchWithOptions(ctx context.Context, space Space, objective Objective, opts Options) (Result, error) {
	ctx, sp := obs.StartSpan(ctx, "tileseek.search")
	res, err := searchWithOptions(ctx, space, objective, opts)
	if sp != nil {
		sp.SetAttrInt("iterations", int64(opts.Iterations))
		sp.SetAttrInt("evaluated", int64(res.Evaluated))
		sp.SetAttrInt("pruned", int64(res.Pruned))
		sp.SetAttrBool("found", res.Found)
		if opts.Hint != nil {
			sp.SetAttrBool("warm", true)
		}
		sp.EndErr(err)
	}
	return res, err
}

// searchWithOptions is SearchWithOptions' body; see there for the contract.
func searchWithOptions(ctx context.Context, space Space, objective Objective, opts Options) (Result, error) {
	if err := space.Validate(); err != nil {
		return Result{}, err
	}
	iterations := opts.Iterations
	if iterations <= 0 {
		iterations = 1
	}
	workers := resolveParallelism(opts.Parallelism)

	// Instruments are hoisted out of the rollout loop; on an unset registry
	// each is nil and its increments are single predicted branches. The
	// cache counters are registered even on serial searches so they always
	// appear in exported snapshots.
	reg := obs.MetricsFrom(ctx)
	rolloutsC := reg.Counter("tileseek.rollouts")
	evaluatedC := reg.Counter("tileseek.evaluated")
	prunedC := reg.Counter("tileseek.pruned")
	hitsC := reg.Counter("tileseek.cache_hits")
	missesC := reg.Counter("tileseek.cache_misses")
	reg.Counter("tileseek.searches").Inc()
	lg := obs.LoggerFrom(ctx)
	if lg.Enabled(ctx, slog.LevelDebug) {
		lg.Debug("tileseek: search start",
			"space", space.Size(), "iterations", iterations, "seed", opts.Seed,
			"parallelism", workers)
	}
	res := Result{BestCost: math.Inf(1)}
	// scale normalises rewards: the first feasible cost maps to reward 1.
	scale := math.NaN()

	w := &walker{space: space, levels: space.levels(), r: newRNG(opts.Seed), root: &node{}}

	// consume resolves one feasible configuration to its objective value. At
	// Parallelism 1 it is a direct call — exactly the historical serial path.
	// Above 1 it goes through the speculator's memo cache: the master claims
	// or joins the config's singleflight entry while P-1 workers replay the
	// published trajectory ahead of the master and pre-evaluate the configs
	// it is about to need. Only the master mutates w or res, so the
	// trajectory — and therefore the Result — is bit-identical to serial.
	consume := objective
	if workers > 1 {
		sp := newSpeculator(space, objective, opts.Seed, workers-1, opts.tuning(), hitsC, missesC, reg.Counter("tileseek.spec_evals"))
		defer sp.stop()
		consume = func(cfg tiling.Config) (float64, bool) {
			return sp.consume(cfg, w, scale)
		}
	} else if opts.Hint != nil {
		// A warm serial search memoises the (pure, per the Hint contract)
		// objective, mirroring the parallel engine's cache: the pre-visited
		// hint biases the trajectory toward its own neighbourhood, so repeat
		// configurations become free instead of re-paying the evaluation.
		// Cold serial searches keep the historical direct-call path exactly.
		type memoEntry struct {
			cost float64
			ok   bool
		}
		memo := make(map[tiling.Config]memoEntry)
		consume = func(cfg tiling.Config) (float64, bool) {
			if e, hit := memo[cfg]; hit {
				hitsC.Inc()
				return e.cost, e.ok
			}
			missesC.Inc()
			cost, ok := objective(cfg)
			memo[cfg] = memoEntry{cost: cost, ok: ok}
			return cost, ok
		}
	}

	if opts.Hint != nil {
		warmSeed(w, *opts.Hint, consume, &res, &scale, reg.Counter("tileseek.warm_seeds"), evaluatedC, prunedC)
	}

	// Fault-injection site, struck once per rollout on the master trajectory.
	// Unconfigured (the production default) the hoisted lookup is nil and each
	// Strike is a single predicted branch. An injected error or cancel aborts
	// the search exactly as a real mid-search failure would — callers see the
	// partial Result plus the error, and the pipeline degrades around it.
	chaosSite := chaos.SiteFrom(ctx, chaos.SiteTileseekRollout)

	for it := 0; it < iterations; it++ {
		if ctx.Err() != nil {
			return res, faults.Canceled(ctx)
		}
		if err := chaosSite.Strike(ctx); err != nil {
			return res, err
		}
		rolloutsC.Inc()
		cur, cfg, prunedN, feasible := w.step()
		res.Pruned += prunedN
		prunedC.Add(int64(prunedN))

		reward := 0.0
		if feasible {
			cost, ok := consume(cfg)
			if ok && cost > 0 {
				res.Evaluated++
				evaluatedC.Inc()
				if math.IsNaN(scale) {
					scale = cost
				}
				reward = scale / cost
				if cost < res.BestCost {
					res.BestCost = cost
					res.Best = cfg
					res.Found = true
				}
			}
		} else {
			res.Pruned++
			prunedC.Inc()
		}

		backprop(cur, reward)

		// The nil check must stay inline: constructing the event only inside
		// the branch keeps the unset path free of interface boxing.
		if opts.Progress != nil {
			opts.Progress(obs.RolloutDone{
				Iteration: it + 1,
				Budget:    iterations,
				BestCost:  res.BestCost,
				Found:     res.Found,
				Visits:    w.root.visits,
			})
		}
	}
	if lg.Enabled(ctx, slog.LevelDebug) {
		lg.Debug("tileseek: search done",
			"found", res.Found, "best", res.Best.String(), "cost", res.BestCost,
			"evaluated", res.Evaluated, "pruned", res.Pruned)
	}
	if !res.Found {
		return res, faults.Infeasiblef("tileseek: no feasible configuration found in %d iterations", iterations)
	}
	return res, nil
}
