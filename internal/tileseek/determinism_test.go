package tileseek

import (
	"context"
	"testing"

	"github.com/fusedmindlab/transfusion/internal/obs"
)

// Two searches with the same seed must agree exactly: the same best
// configuration AND the same observable work — the rollout counter in an
// attached metrics registry must match, and equal the requested budget.
func TestSearchSeedDeterminismWithMetrics(t *testing.T) {
	s := testSpace()
	obj := syntheticObjective(s.Workload)
	const budget, seed = 120, 99

	run := func() (Result, obs.Snapshot) {
		reg := obs.NewRegistry()
		ctx := obs.WithMetrics(context.Background(), reg)
		res, err := SearchWithOptions(ctx, s, obj, Options{Iterations: budget, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return res, reg.Snapshot()
	}
	r1, m1 := run()
	r2, m2 := run()

	if r1.Best != r2.Best || r1.BestCost != r2.BestCost {
		t.Fatalf("nondeterministic best: %v/%v vs %v/%v", r1.Best, r1.BestCost, r2.Best, r2.BestCost)
	}
	if r1.Evaluated != r2.Evaluated || r1.Pruned != r2.Pruned {
		t.Fatalf("nondeterministic work: eval %d/%d pruned %d/%d",
			r1.Evaluated, r2.Evaluated, r1.Pruned, r2.Pruned)
	}
	if got := m1.Counters["tileseek.rollouts"]; got != budget {
		t.Fatalf("rollouts counter = %d, want the budget %d", got, budget)
	}
	for _, name := range []string{"tileseek.rollouts", "tileseek.evaluated", "tileseek.pruned", "tileseek.searches"} {
		if m1.Counters[name] != m2.Counters[name] {
			t.Fatalf("counter %s differs across identical seeds: %d vs %d",
				name, m1.Counters[name], m2.Counters[name])
		}
	}
	// A different seed explores differently (counters may coincide, the
	// PRNG stream must not): sanity-check that the seed is actually used.
	reg3 := obs.NewRegistry()
	res3, err := SearchWithOptions(obs.WithMetrics(context.Background(), reg3), s, obj,
		Options{Iterations: budget, Seed: seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	if reg3.Snapshot().Counters["tileseek.rollouts"] != budget {
		t.Fatalf("rollouts under a different seed = %d", reg3.Snapshot().Counters["tileseek.rollouts"])
	}
	_ = res3 // best may legitimately coincide on a smooth landscape
}

// Progress events arrive once per rollout, in order, with a final event
// carrying the returned best.
func TestSearchProgressEvents(t *testing.T) {
	s := testSpace()
	obj := syntheticObjective(s.Workload)
	const budget = 40
	var events []obs.RolloutDone
	res, err := SearchWithOptions(context.Background(), s, obj, Options{
		Iterations: budget,
		Seed:       7,
		Progress: func(ev obs.Event) {
			rd, ok := ev.(obs.RolloutDone)
			if !ok {
				t.Fatalf("unexpected event %T", ev)
			}
			events = append(events, rd)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != budget {
		t.Fatalf("got %d rollout events, want %d", len(events), budget)
	}
	for i, ev := range events {
		if ev.Iteration != i+1 || ev.Budget != budget {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
	last := events[len(events)-1]
	if !last.Found || last.BestCost != res.BestCost {
		t.Fatalf("final event %+v does not match result best %v", last, res.BestCost)
	}
}
