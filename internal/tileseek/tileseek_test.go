package tileseek

import (
	"math"
	"testing"

	"github.com/fusedmindlab/transfusion/internal/arch"
	"github.com/fusedmindlab/transfusion/internal/model"
	"github.com/fusedmindlab/transfusion/internal/tiling"
)

func testSpace() Space {
	w := tiling.Workload{Model: model.BERT(), SeqLen: 16384, Batch: 64}
	return DefaultSpace(w, arch.Cloud())
}

// syntheticObjective rewards large query tiles and column-matched KV tiles:
// a smooth landscape with a known optimum (maximal P, M0 == 256) so search
// quality is checkable.
func syntheticObjective(w tiling.Workload) Objective {
	return func(c tiling.Config) (float64, bool) {
		kvRereads := float64(w.SeqLen / c.P)
		m0Mismatch := math.Abs(float64(c.M0) - 256)
		return kvRereads*1000 + m0Mismatch + float64(c.M1), true
	}
}

func TestDefaultSpaceNonEmpty(t *testing.T) {
	s := testSpace()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Size() <= 0 {
		t.Fatalf("Size = %d", s.Size())
	}
	// D candidates cover the full divisor ladder up to the model dimension.
	if s.Ds[len(s.Ds)-1] != 768 || s.Ds[0] != 1 {
		t.Fatalf("Ds = %v, want 1..768", s.Ds)
	}
}

func TestSpaceValidateEmptyLevel(t *testing.T) {
	s := testSpace()
	s.Ps = nil
	if err := s.Validate(); err == nil {
		t.Fatal("empty level accepted")
	}
}

func TestSearchFindsFeasibleAndImproves(t *testing.T) {
	s := testSpace()
	obj := syntheticObjective(s.Workload)
	res, err := Search(s, obj, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("no feasible configuration found")
	}
	if !tiling.Feasible(res.Best, s.Workload, s.Spec) {
		t.Fatalf("returned infeasible config %v", res.Best)
	}
	if res.Evaluated == 0 {
		t.Fatal("no evaluations recorded")
	}
	// With 400 rollouts on this smooth landscape, MCTS should find a large
	// query tile (few KV re-reads).
	if s.Workload.SeqLen/res.Best.P > 8 {
		t.Fatalf("search stuck at small P: %v (cost %v)", res.Best, res.BestCost)
	}
}

func TestSearchDeterministic(t *testing.T) {
	s := testSpace()
	obj := syntheticObjective(s.Workload)
	r1, err1 := Search(s, obj, 150, 42)
	r2, err2 := Search(s, obj, 150, 42)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1.Best != r2.Best || r1.BestCost != r2.BestCost {
		t.Fatalf("nondeterministic: %v/%v vs %v/%v", r1.Best, r1.BestCost, r2.Best, r2.BestCost)
	}
}

func TestSearchRespectsBufferConstraint(t *testing.T) {
	// On edge the buffer is 5 MB; every evaluated config must fit.
	w := tiling.Workload{Model: model.Llama3(), SeqLen: 65536, Batch: 64}
	s := DefaultSpace(w, arch.Edge())
	var evaluated []tiling.Config
	obj := func(c tiling.Config) (float64, bool) {
		evaluated = append(evaluated, c)
		return float64(c.P), true
	}
	if _, err := Search(s, obj, 200, 3); err != nil {
		t.Fatal(err)
	}
	for _, c := range evaluated {
		if !tiling.Feasible(c, w, arch.Edge()) {
			t.Fatalf("objective called on infeasible config %v", c)
		}
	}
}

func TestSearchBeatsOrMatchesRandomOnBudget(t *testing.T) {
	s := testSpace()
	obj := syntheticObjective(s.Workload)
	const budget = 300
	mcts, err := Search(s, obj, budget, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Compare against the mean of several random-search runs.
	sum := 0.0
	const runs = 5
	for i := uint64(0); i < runs; i++ {
		r, err := RandomSearch(s, obj, budget, 100+i)
		if err != nil {
			t.Fatal(err)
		}
		sum += r.BestCost
	}
	if mcts.BestCost > sum/runs*1.05 {
		t.Fatalf("MCTS (%v) worse than mean random (%v) at equal budget", mcts.BestCost, sum/runs)
	}
}

func TestExhaustiveIsOracle(t *testing.T) {
	// Small space: exhaustive finds the global optimum; MCTS approaches it.
	w := tiling.Workload{Model: model.T5(), SeqLen: 1024, Batch: 4}
	s := DefaultSpace(w, arch.Cloud())
	obj := syntheticObjective(w)
	ex, err := Exhaustive(s, obj, 0)
	if err != nil {
		t.Fatal(err)
	}
	mcts, err := Search(s, obj, 2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if mcts.BestCost < ex.BestCost-1e-9 {
		t.Fatalf("MCTS (%v) beat the exhaustive optimum (%v) — exhaustive is broken", mcts.BestCost, ex.BestCost)
	}
	if mcts.BestCost > ex.BestCost*1.5 {
		t.Fatalf("MCTS (%v) far from optimum (%v)", mcts.BestCost, ex.BestCost)
	}
}

func TestExhaustiveBudget(t *testing.T) {
	w := tiling.Workload{Model: model.T5(), SeqLen: 1024, Batch: 4}
	s := DefaultSpace(w, arch.Cloud())
	obj := syntheticObjective(w)
	res, err := Exhaustive(s, obj, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != 10 {
		t.Fatalf("budget ignored: %d evaluations", res.Evaluated)
	}
}

func TestSearchNoFeasible(t *testing.T) {
	// A workload whose smallest tile exceeds a tiny buffer.
	w := tiling.Workload{Model: model.Llama3(), SeqLen: 1 << 20, Batch: 64}
	spec := arch.Edge()
	spec.BufferBytes = 1024 // 1 KiB: nothing fits
	s := DefaultSpace(w, spec)
	if _, err := Search(s, func(tiling.Config) (float64, bool) { return 1, true }, 50, 1); err == nil {
		t.Fatal("search succeeded with an impossible buffer")
	}
	if _, err := RandomSearch(s, func(tiling.Config) (float64, bool) { return 1, true }, 50, 1); err == nil {
		t.Fatal("random search succeeded with an impossible buffer")
	}
}

func TestObjectiveFailureHandled(t *testing.T) {
	s := testSpace()
	calls := 0
	obj := func(c tiling.Config) (float64, bool) {
		calls++
		if calls%2 == 0 {
			return 0, false // evaluation failure
		}
		return float64(c.P), true
	}
	res, err := Search(s, obj, 100, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("search did not tolerate objective failures")
	}
}

func TestHeuristicTileFeasibleEverywhere(t *testing.T) {
	for _, spec := range []arch.Spec{arch.Cloud(), arch.Edge(), arch.Edge32(), arch.Edge64()} {
		for _, m := range model.All() {
			for _, n := range []int{1024, 65536, 1 << 20} {
				w := tiling.Workload{Model: m, SeqLen: n, Batch: 64}
				c, err := tiling.HeuristicTile(w, spec)
				if err != nil {
					t.Errorf("%s/%s/%d: %v", spec.Name, m.Name, n, err)
					continue
				}
				if !tiling.Feasible(c, w, spec) {
					t.Errorf("%s/%s/%d: heuristic tile %v infeasible", spec.Name, m.Name, n, c)
				}
			}
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := newRNG(5), newRNG(5)
	for i := 0; i < 10; i++ {
		if a.next() != b.next() {
			t.Fatal("rng nondeterministic")
		}
	}
	r := newRNG(0)
	if r.intn(10) < 0 || r.intn(10) >= 10 {
		t.Fatal("intn out of range")
	}
	if r.intn(0) != 0 {
		t.Fatal("intn(0) != 0")
	}
	if f := r.float64(); f < 0 || f >= 1 {
		t.Fatalf("float64 = %v", f)
	}
}
