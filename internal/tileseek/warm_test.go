package tileseek

import (
	"context"
	"reflect"
	"testing"

	"github.com/fusedmindlab/transfusion/internal/obs"
	"github.com/fusedmindlab/transfusion/internal/tiling"
)

// A warm-seeded search must (a) record the seed, (b) never end worse than
// the hint's own objective — the hint becomes the incumbent before the first
// rollout — and (c) stay bit-identical across Parallelism settings.
func TestWarmHintNeverWorseAndDeterministic(t *testing.T) {
	s := testSpace()
	obj := syntheticObjective(s.Workload)

	// A mid-quality feasible config as the hint: the best of a tiny search
	// under a different seed.
	seedRes, err := Search(s, obj, 10, 99)
	if err != nil || !seedRes.Found {
		t.Fatalf("seed search: %v found=%v", err, seedRes.Found)
	}
	hint := seedRes.Best
	hintCost, ok := obj(hint)
	if !ok {
		t.Fatal("hint not evaluable")
	}

	run := func(par int) (Result, int64) {
		reg := obs.NewRegistry()
		ctx := obs.WithMetrics(context.Background(), reg)
		h := hint
		res, err := SearchWithOptions(ctx, s, obj, Options{
			Iterations: 60, Seed: 7, Parallelism: par, Hint: &h,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, reg.Counter("tileseek.warm_seeds").Value()
	}

	warm, seeds := run(1)
	if seeds != 1 {
		t.Fatalf("tileseek.warm_seeds = %d, want 1", seeds)
	}
	if !warm.Found {
		t.Fatal("warm search found nothing despite a feasible hint")
	}
	if warm.BestCost > hintCost {
		t.Fatalf("warm BestCost %v worse than the hint's %v — never-worse-than-hint violated", warm.BestCost, hintCost)
	}
	for _, par := range []int{1, 4} {
		res, n := run(par)
		if !reflect.DeepEqual(res, warm) {
			t.Fatalf("parallelism %d: warm result diverged:\n%+v\nvs\n%+v", par, res, warm)
		}
		if n != 1 {
			t.Fatalf("parallelism %d: warm_seeds = %d, want 1", par, n)
		}
	}
}

// A hint outside the space (or infeasible) is ignored without perturbing the
// search: the result is bit-identical to a cold run and no seed is counted.
func TestInvalidTileHintColdIdentical(t *testing.T) {
	s := testSpace()
	obj := syntheticObjective(s.Workload)
	cold, err := Search(s, obj, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	for name, bad := range map[string]tiling.Config{
		"outside space": {B: 7777, D: 3, P: 5, M0: 9, M1: 11, S: 13},
		"infeasible":    {B: s.Bs[len(s.Bs)-1], D: s.Ds[len(s.Ds)-1], P: s.Ps[len(s.Ps)-1], M0: s.M0s[len(s.M0s)-1], M1: s.M1s[len(s.M1s)-1], S: s.Ss[len(s.Ss)-1]},
	} {
		bad := bad
		if name == "infeasible" && tiling.Feasible(bad, s.Workload, s.Spec) {
			t.Skip("max-everything config unexpectedly feasible on this space")
		}
		reg := obs.NewRegistry()
		ctx := obs.WithMetrics(context.Background(), reg)
		warm, err := SearchWithOptions(ctx, s, obj, Options{Iterations: 100, Seed: 7, Hint: &bad})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(warm, cold) {
			t.Fatalf("%s: invalid hint perturbed the search:\nwarm %+v\ncold %+v", name, warm, cold)
		}
		if got := reg.Counter("tileseek.warm_seeds").Value(); got != 0 {
			t.Fatalf("%s: warm_seeds = %d for an invalid hint, want 0", name, got)
		}
	}
}

// The promoted speculation knobs must resolve zeros to the historical
// defaults and honour explicit overrides.
func TestSpecTuningResolution(t *testing.T) {
	def := Options{}.tuning()
	if def.chainSteps != defaultSpecChainSteps || def.lookahead != defaultSpecLookahead || def.maxFresh != defaultSpecMaxFresh {
		t.Fatalf("zero Options resolved to %+v, want package defaults", def)
	}
	got := Options{SpecChainSteps: 3, SpecLookahead: 40, SpecMaxFresh: 5}.tuning()
	if got.chainSteps != 3 || got.lookahead != 40 || got.maxFresh != 5 {
		t.Fatalf("explicit tuning not honoured: %+v", got)
	}
	// Tuning redistributes speculative work but never changes the result.
	s := testSpace()
	obj := syntheticObjective(s.Workload)
	base, err := SearchWithOptions(context.Background(), s, obj, Options{Iterations: 80, Seed: 5, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := SearchWithOptions(context.Background(), s, obj, Options{
		Iterations: 80, Seed: 5, Parallelism: 4,
		SpecChainSteps: 2, SpecLookahead: 16, SpecMaxFresh: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tuned, base) {
		t.Fatalf("speculation tuning changed the search result:\n%+v\nvs\n%+v", tuned, base)
	}
}
