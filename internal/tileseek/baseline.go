package tileseek

import (
	"fmt"
	"math"

	"github.com/fusedmindlab/transfusion/internal/tiling"
)

// RandomSearch samples configurations uniformly from the space for the
// given number of iterations — the ablation baseline for MCTS at an equal
// rollout budget.
func RandomSearch(space Space, objective Objective, iterations int, seed uint64) (Result, error) {
	if err := space.Validate(); err != nil {
		return Result{}, err
	}
	if iterations <= 0 {
		iterations = 1
	}
	r := newRNG(seed)
	levels := space.levels()
	res := Result{BestCost: math.Inf(1)}
	for it := 0; it < iterations; it++ {
		full := make([]int, len(levels))
		for i, l := range levels {
			full[i] = l[r.intn(len(l))]
		}
		cfg := assemble(full)
		if !tiling.Feasible(cfg, space.Workload, space.Spec) {
			res.Pruned++
			continue
		}
		cost, ok := objective(cfg)
		if !ok || cost <= 0 {
			continue
		}
		res.Evaluated++
		if cost < res.BestCost {
			res.BestCost = cost
			res.Best = cfg
			res.Found = true
		}
	}
	if !res.Found {
		return res, fmt.Errorf("tileseek: random search found no feasible configuration in %d iterations", iterations)
	}
	return res, nil
}

// Exhaustive enumerates the full cross product of the space (up to
// maxEvaluations objective calls; feasibility pruning does not count
// against the budget) and returns the global optimum within the budget.
// It is the ablation's oracle for small spaces.
func Exhaustive(space Space, objective Objective, maxEvaluations int) (Result, error) {
	if err := space.Validate(); err != nil {
		return Result{}, err
	}
	if maxEvaluations <= 0 {
		maxEvaluations = math.MaxInt
	}
	levels := space.levels()
	res := Result{BestCost: math.Inf(1)}
	idx := make([]int, len(levels))
	for {
		full := make([]int, len(levels))
		for i := range idx {
			full[i] = levels[i][idx[i]]
		}
		cfg := assemble(full)
		if tiling.Feasible(cfg, space.Workload, space.Spec) {
			cost, ok := objective(cfg)
			if ok && cost > 0 {
				res.Evaluated++
				if cost < res.BestCost {
					res.BestCost = cost
					res.Best = cfg
					res.Found = true
				}
				if res.Evaluated >= maxEvaluations {
					break
				}
			}
		} else {
			res.Pruned++
		}
		// Odometer increment.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(levels[i]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	if !res.Found {
		return res, fmt.Errorf("tileseek: exhaustive search found no feasible configuration")
	}
	return res, nil
}
