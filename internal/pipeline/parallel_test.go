package pipeline

import (
	"reflect"
	"runtime"
	"testing"

	"github.com/fusedmindlab/transfusion/internal/arch"
)

// A full evaluation — tile search, sub-layer scheduling, phases, energy —
// must be bit-identical at every Parallelism setting and GOMAXPROCS value.
func TestEvaluateParallelismBitIdentical(t *testing.T) {
	w := bertWorkload(4096)
	cloud := arch.Cloud()
	run := func(parallelism int) Result {
		opts := fastOpts()
		opts.Parallelism = parallelism
		res, err := Evaluate(w, cloud, TransFusion(), opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	if ref.TotalCycles <= 0 {
		t.Fatalf("degenerate serial reference %+v", ref)
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 2, 4} {
		runtime.GOMAXPROCS(procs)
		for _, parallelism := range []int{1, 4, 0} { // 0 resolves to GOMAXPROCS
			if res := run(parallelism); !reflect.DeepEqual(res, ref) {
				t.Fatalf("GOMAXPROCS=%d parallelism=%d: result diverged from serial\n got %+v\nwant %+v",
					procs, parallelism, res, ref)
			}
		}
	}
}

// Parallelism must propagate into the DPipe options only when the caller did
// not pin them explicitly.
func TestParallelismPropagatesToDPipe(t *testing.T) {
	o := Options{Parallelism: 3}
	if got := o.withDefaults().DPipe.Parallelism; got != 3 {
		t.Fatalf("DPipe.Parallelism = %d, want inherited 3", got)
	}
	o = Options{Parallelism: 3}
	o.DPipe.Parallelism = 2
	if got := o.withDefaults().DPipe.Parallelism; got != 2 {
		t.Fatalf("DPipe.Parallelism = %d, want explicit 2", got)
	}
}
