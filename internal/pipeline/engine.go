package pipeline

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/fusedmindlab/transfusion/internal/arch"
	"github.com/fusedmindlab/transfusion/internal/cascade"
	"github.com/fusedmindlab/transfusion/internal/dpipe"
	"github.com/fusedmindlab/transfusion/internal/faults"
	"github.com/fusedmindlab/transfusion/internal/obs"
	"github.com/fusedmindlab/transfusion/internal/perf"
	"github.com/fusedmindlab/transfusion/internal/tileseek"
	"github.com/fusedmindlab/transfusion/internal/tiling"
)

// Objective selects what TileSeek optimises — the paper notes "the
// resulting energy or latency can serve as the reward signal" (§5.1).
type Objective int

const (
	// ObjectiveEDP minimises the energy-delay product (the default: it
	// breaks latency ties on compute-bound workloads in favour of less
	// traffic).
	ObjectiveEDP Objective = iota
	// ObjectiveLatency minimises modelled cycles.
	ObjectiveLatency
	// ObjectiveEnergy minimises modelled energy.
	ObjectiveEnergy
)

// String names the objective.
func (o Objective) String() string {
	switch o {
	case ObjectiveLatency:
		return "latency"
	case ObjectiveEnergy:
		return "energy"
	default:
		return "edp"
	}
}

// Options tune the evaluation; the zero value requests defaults.
type Options struct {
	// TileSeekIterations is the MCTS rollout budget for TransFusion's
	// outer-tiling search.
	TileSeekIterations int
	// TileSeekSeed seeds the search for reproducibility.
	TileSeekSeed uint64
	// TileSeekObjective selects the search's reward signal.
	TileSeekObjective Objective
	// TileSeekTimeout, when positive, soft-bounds the tile search's
	// wall-clock time. If the timeout expires while the caller's own context
	// is still live, the evaluation degrades to the heuristic tile instead
	// of failing; cancellation of the caller's context always propagates as
	// an error matching faults.ErrCanceled.
	TileSeekTimeout time.Duration
	// TileSeekSpace, when non-nil, replaces the default search space. Used
	// by tests and external tools to constrain or stress the search (e.g. a
	// deliberately infeasible space exercises the degradation path).
	TileSeekSpace *tileseek.Space
	// SkipSearch evaluates search-backed systems (TransFusion) on the static
	// heuristic tile without running TileSeek at all, reporting the result as
	// Degraded. Serving layers use it as the bottom tier of their overload
	// degradation ladder: the heuristic tile is always a valid configuration,
	// so a loaded server can answer cheaply instead of shedding. Baselines
	// that never search are unaffected.
	SkipSearch bool
	// DPipe bounds the per-layer schedule search.
	DPipe dpipe.Options
	// WarmHint, when non-nil, seeds the searches from a previously winning
	// plan for a neighbouring workload: Tile warm-starts TileSeek's MCTS
	// (pre-expanding and crediting the hinted path so its objective becomes
	// the incumbent) and each Layers entry warm-starts the matching
	// sub-layer's DPipe enumeration (hinted candidates go to the head of the
	// frontier and their makespan prunes the fan-out). Hints are advisory:
	// entries that do not validate against the current space or DAG are
	// ignored, a warm evaluation is deterministic given the hint, and its
	// objective is never worse than the hint's own. A valid hint also shrinks
	// the TileSeek rollout budget (see warmBudgetDivisor) — the incumbent
	// replaces most of the exploration a cold search pays for. With WarmHint
	// nil the evaluation is bit-identical to today's cold path.
	WarmHint *WarmHint
	// SpecChainSteps, SpecLookahead and SpecMaxFresh override the parallel
	// tile search's speculation tuning (see tileseek.Options); zero keeps
	// each default. Speculation only warms the objective memo cache, so no
	// setting changes the search result.
	SpecChainSteps int
	SpecLookahead  int
	SpecMaxFresh   int
	// Parallelism sets the evaluation's concurrency budget: 0 selects
	// GOMAXPROCS, 1 the fully serial path, n > 1 parallel execution. It
	// drives the tile search's speculative workers, concurrent sub-layer
	// scheduling, and (unless DPipe.Parallelism is set explicitly) the DPipe
	// candidate pool. Results are bit-identical at every setting for a fixed
	// seed. Inside the tile search each objective evaluation runs serially —
	// the search itself supplies the concurrency — so cores are never
	// oversubscribed quadratically.
	Parallelism int
	// Progress, when non-nil, receives typed obs events during evaluation:
	// PhaseStart/PhaseEnd around the tile search, per-rollout RolloutDone,
	// per-plan EnumerationProgress, and Degraded on heuristic fallback. With
	// Parallelism above 1 the hook may be invoked from worker goroutines;
	// invocations are serialised by the engine, so the hook itself needs no
	// locking.
	Progress obs.ProgressFunc
}

// A warm-hinted evaluation runs TileSeek on a reduced rollout budget: the
// hint supplies a near-optimal incumbent, so the search only needs enough
// rollouts to explore its neighbourhood. The divisor keeps the warm budget
// proportional to the requested one; the floor keeps tiny budgets exploring
// at all. Correctness never depends on the budget — the hint is consumed as
// the incumbent before the first rollout, so the warm result's objective is
// never worse than the hint's at any setting.
const (
	warmBudgetDivisor = 4
	warmBudgetFloor   = 4
)

// DefaultOptions is the evaluation configuration used by the experiment
// harness.
func DefaultOptions() Options {
	return Options{
		TileSeekIterations: 128,
		TileSeekSeed:       1,
		DPipe:              dpipe.DefaultOptions(),
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.TileSeekIterations <= 0 {
		o.TileSeekIterations = d.TileSeekIterations
	}
	if o.TileSeekSeed == 0 {
		o.TileSeekSeed = d.TileSeekSeed
	}
	if o.DPipe.MaxBipartitions <= 0 {
		par := o.DPipe.Parallelism
		o.DPipe = d.DPipe
		o.DPipe.Parallelism = par
	}
	if o.DPipe.Parallelism == 0 {
		// The pipeline-level budget flows down unless DPipe was pinned
		// explicitly (1 at the pipeline level must mean fully serial).
		o.DPipe.Parallelism = o.Parallelism
	}
	return o
}

// resolveParallelism maps an Options.Parallelism value to a worker count.
func resolveParallelism(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// serializeProgress wraps a progress hook so concurrent emitters appear
// sequential to it; nil stays nil (and free).
func serializeProgress(fn obs.ProgressFunc) obs.ProgressFunc {
	if fn == nil {
		return nil
	}
	var mu sync.Mutex
	return func(ev obs.Event) {
		mu.Lock()
		defer mu.Unlock()
		fn(ev)
	}
}

// Evaluate models the system on the workload and architecture, selecting
// the outer tile with TileSeek (TransFusion) or the static heuristic
// (baselines).
func Evaluate(w Workload, spec arch.Spec, sys System, opts Options) (Result, error) {
	return EvaluateContext(context.Background(), w, spec, sys, opts)
}

// EvaluateContext is Evaluate under a context. Cancelling ctx aborts the
// tile search within one rollout and the schedule search within one
// candidate, returning an error matching faults.ErrCanceled. When the tile
// search fails for a reason other than the caller's cancellation — its soft
// timeout expires, its enumeration budget is exhausted, or it finds no
// feasible configuration — the evaluation degrades to the static heuristic
// tile and records Degraded / DegradedReason in the Result rather than
// failing.
func EvaluateContext(ctx context.Context, w Workload, spec arch.Spec, sys System, opts Options) (Result, error) {
	opts = opts.withDefaults()
	if err := sys.Validate(); err != nil {
		return Result{}, err
	}
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	if ctx.Err() != nil {
		return Result{}, faults.Canceled(ctx)
	}

	reg := obs.MetricsFrom(ctx)
	reg.Counter("pipeline.evaluations").Inc()
	lg := obs.LoggerFrom(ctx)
	if resolveParallelism(opts.Parallelism) > 1 {
		// Workers may emit progress events concurrently; callers' hooks must
		// keep seeing sequential invocations.
		opts.Progress = serializeProgress(opts.Progress)
	}
	if opts.DPipe.Progress == nil {
		opts.DPipe.Progress = opts.Progress
	}

	if !sys.UseTileSeek {
		tile, err := tiling.HeuristicTile(w, spec)
		if err != nil {
			return Result{}, err
		}
		return evaluateWithTile(ctx, w, spec, sys, tile, opts)
	}

	if opts.SkipSearch {
		// Heuristic-only degraded mode: evaluate the search-backed system on
		// the static seed tile. The result is valid — the heuristic is the
		// same configuration the search itself falls back to — just possibly
		// pessimistic, so it is reported as Degraded.
		tile, err := tiling.HeuristicTile(w, spec)
		if err != nil {
			return Result{}, err
		}
		res, err := evaluateWithTile(ctx, w, spec, sys, tile, opts)
		if err != nil {
			return Result{}, err
		}
		res.Degraded = true
		res.DegradedReason = "tile search skipped (heuristic-only degraded mode)"
		reg.Counter("pipeline.degradations").Inc()
		opts.Progress.Emit(obs.Degraded{Reason: res.DegradedReason})
		return res, nil
	}

	space := tileseek.DefaultSpace(w, spec)
	if opts.TileSeekSpace != nil {
		space = *opts.TileSeekSpace
	}
	// The search reward follows opts.TileSeekObjective; the default EDP
	// breaks latency ties on compute-bound workloads in favour of less
	// traffic, matching the paper's energy/latency reward options.
	// Each objective evaluation runs serially: with Parallelism above 1 the
	// tile search evaluates many configurations concurrently, and nesting
	// another pool inside each would oversubscribe the machine.
	innerOpts := opts
	innerOpts.Parallelism = 1
	innerOpts.DPipe.Parallelism = 1
	// The objective runs once per rollout — hundreds of times per request —
	// so it evaluates under a detached trace context: a span per rollout
	// would blow straight through the per-trace cap and drown the request
	// tree. The search itself gets one "tileseek.search" span; only the
	// final evaluation of the winning tile (below) runs traced, so its
	// per-sub-layer schedule spans appear exactly once. The conditional
	// keeps the untraced path allocation-free.
	objCtx := ctx
	if obs.SpanFromContext(ctx) != nil {
		objCtx = obs.ContextWithSpan(ctx, nil)
	}
	objective := func(c tiling.Config) (float64, bool) {
		r, err := evaluateWithTile(objCtx, w, spec, sys, c, innerOpts)
		if err != nil {
			return 0, false
		}
		switch opts.TileSeekObjective {
		case ObjectiveLatency:
			return r.TotalCycles, true
		case ObjectiveEnergy:
			return r.Energy.Total(), true
		default:
			return r.TotalCycles * r.Energy.Total(), true
		}
	}

	// The search is seeded with the baseline heuristic: TileSeek must never
	// do worse than the static rule it replaces. A heuristic failure is not
	// yet fatal — the search itself may still find a feasible tile.
	best, herr := tiling.HeuristicTile(w, spec)
	bestCost := math.Inf(1)
	found := false
	evals := 0
	if herr == nil {
		if cost, ok := objective(best); ok {
			bestCost, found = cost, true
			evals = 1
		} else {
			herr = fmt.Errorf("pipeline: heuristic tile %v not evaluable", best)
		}
	}

	searchCtx := ctx
	if opts.TileSeekTimeout > 0 {
		var cancel context.CancelFunc
		searchCtx, cancel = context.WithTimeout(ctx, opts.TileSeekTimeout)
		defer cancel()
	}
	opts.Progress.Emit(obs.PhaseStart{Phase: "tileseek"})
	searchStart := time.Now()
	tsOpts := tileseek.Options{
		Iterations:     opts.TileSeekIterations,
		Seed:           opts.TileSeekSeed,
		Parallelism:    opts.Parallelism,
		Progress:       opts.Progress,
		SpecChainSteps: opts.SpecChainSteps,
		SpecLookahead:  opts.SpecLookahead,
		SpecMaxFresh:   opts.SpecMaxFresh,
	}
	if opts.WarmHint != nil {
		// Copy so the search cannot alias the caller's hint.
		tile := opts.WarmHint.Tile
		tsOpts.Hint = &tile
		// A warm search starts from a known-good incumbent, so it spends a
		// fraction of the cold rollout budget — this is where near-miss
		// requests get an order of magnitude cheaper. Never-worse-than-hint
		// holds at any budget: the hint is consumed before the first rollout.
		if it := opts.TileSeekIterations / warmBudgetDivisor; it < tsOpts.Iterations {
			if it < warmBudgetFloor {
				it = warmBudgetFloor
			}
			tsOpts.Iterations = it
		}
	}
	search, serr := tileseek.SearchWithOptions(searchCtx, space, objective, tsOpts)
	searchDur := time.Since(searchStart)
	opts.Progress.Emit(obs.PhaseEnd{Phase: "tileseek", Duration: searchDur})
	if reg != nil {
		reg.Histogram("pipeline.tileseek_ms", nil).Observe(float64(searchDur.Microseconds()) / 1e3)
	}
	if ctx.Err() != nil {
		// The caller's own context died (possibly surfacing through serr);
		// cancellation always wins over degradation.
		return Result{}, faults.Canceled(ctx)
	}
	evals += search.Evaluated
	if search.Found && search.BestCost < bestCost {
		best, bestCost = search.Best, search.BestCost
		found = true
	}
	if !found {
		if serr == nil {
			serr = faults.Infeasiblef("pipeline: tile search found no feasible tile")
		}
		if herr != nil {
			return Result{}, fmt.Errorf("pipeline: tile search failed (%v) and heuristic fallback failed: %w", serr, herr)
		}
		// The heuristic tile exists but was not evaluable as a seed and the
		// search found nothing: nothing left to run.
		return Result{}, fmt.Errorf("pipeline: no runnable tile: %w", serr)
	}

	res, err := evaluateWithTile(ctx, w, spec, sys, best, opts)
	if err != nil {
		return Result{}, err
	}
	res.TileSearchEvals = evals
	if serr != nil {
		// The search did not complete cleanly (soft timeout, enumeration
		// budget, or an infeasible space); we are running on the heuristic
		// seed (or a partial search best). Graceful degradation, not failure.
		res.Degraded = true
		res.DegradedReason = degradeReason(serr)
		reg.Counter("pipeline.degradations").Inc()
		opts.Progress.Emit(obs.Degraded{Reason: res.DegradedReason})
		lg.Warn("pipeline: degraded evaluation",
			"system", sys.Name, "arch", spec.Name, "model", w.Model.Name,
			"seq", w.SeqLen, "reason", res.DegradedReason)
	}
	if lg.Enabled(ctx, slog.LevelDebug) {
		lg.Debug("pipeline: evaluation done",
			"system", sys.Name, "arch", spec.Name, "model", w.Model.Name,
			"seq", w.SeqLen, "cycles", res.TotalCycles, "tile", res.Tile.String(),
			"evals", evals, "search_ms", float64(searchDur.Microseconds())/1e3)
	}
	return res, nil
}

// degradeReason classifies a tile-search failure for Result.DegradedReason.
func degradeReason(err error) string {
	switch {
	case errors.Is(err, faults.ErrCanceled):
		return "tile search timed out; using heuristic tile"
	case errors.Is(err, faults.ErrBudgetExhausted):
		return "tile search budget exhausted; using heuristic tile"
	case errors.Is(err, faults.ErrInfeasible):
		return "tile search found no feasible configuration; using heuristic tile"
	default:
		return "tile search failed (" + err.Error() + "); using heuristic tile"
	}
}

// layerProblem bundles a schedulable sub-layer with the metadata the
// traffic model needs.
type layerProblem struct {
	prob *dpipe.Problem
	// fullDims gives each index label's full per-instance extent (the tile
	// extent, not the per-epoch slice); used for kernel-level DRAM sizing.
	fullDims map[string]int
	// weights names operand tensors that are model parameters (amortised
	// across the batch tile).
	weights map[string]bool
	kind    LayerKind
	// sched is the scheduler this system uses for this sub-layer.
	sched Scheduler
	// instOverride, when non-zero, replaces the default per-layer instance
	// count for this sub-layer's phase (used by FLAT's row-batch attention).
	instOverride int64
}

// EvaluateWithTile models the system under an explicit outer tile.
func EvaluateWithTile(w Workload, spec arch.Spec, sys System, tile tiling.Config, opts Options) (Result, error) {
	return EvaluateWithTileContext(context.Background(), w, spec, sys, tile, opts)
}

// EvaluateWithTileContext is EvaluateWithTile under a context; cancellation
// aborts the per-sub-layer schedule search within one candidate.
func EvaluateWithTileContext(ctx context.Context, w Workload, spec arch.Spec, sys System, tile tiling.Config, opts Options) (Result, error) {
	return evaluateWithTile(ctx, w, spec, sys, tile, opts)
}

func evaluateWithTile(ctx context.Context, w Workload, spec arch.Spec, sys System, tile tiling.Config, opts Options) (Result, error) {
	opts = opts.withDefaults()
	if err := tile.Validate(w); err != nil {
		return Result{}, err
	}
	if !tiling.Feasible(tile, w, spec) {
		return Result{}, faults.Infeasiblef("pipeline: tile %v infeasible on %s", tile, spec.Name)
	}
	if ctx.Err() != nil {
		return Result{}, faults.Canceled(ctx)
	}

	m := w.Model
	n := w.SeqLen
	dm := m.D
	bytes := int64(spec.BytesPerElement)
	bt := int64(tile.B)
	qInst := int64(w.Batch) * int64(n/tile.P)
	kvInst := int64(w.Batch) * tile.KVChunks(w)

	probs, err := buildProblems(w, spec, sys, tile)
	if err != nil {
		return Result{}, err
	}

	// Schedule every sub-layer problem — concurrently when the parallelism
	// budget allows (the five problems are independent). Results are keyed by
	// name, and scheduling errors are reported for the lexicographically
	// smallest failing sub-layer, so outputs and errors are deterministic at
	// any worker count.
	type schedOut struct {
		res dpipe.Result
		lp  layerProblem
	}
	reg := obs.MetricsFrom(ctx)
	var schedStart time.Time
	if reg != nil {
		schedStart = time.Now()
	}
	names := make([]string, 0, len(probs))
	for name := range probs {
		names = append(names, name)
	}
	sort.Strings(names)
	schedOne := func(name string) (res dpipe.Result, err error) {
		lp := probs[name]
		// One span per sub-layer schedule. With workers > 1 these run on
		// worker goroutines; the trace serialises span mutation internally,
		// so concurrent sub-layer spans are safe and show up as overlapping
		// lanes in the exported timeline.
		sctx, sp := obs.StartSpan(ctx, "pipeline.schedule")
		if sp != nil {
			sp.SetAttr("layer", name)
			sp.SetAttr("scheduler", lp.sched.String())
			defer func() {
				sp.SetAttrInt("candidates", int64(res.Candidates))
				sp.EndErr(err)
			}()
		}
		switch lp.sched {
		case SchedSequential:
			return dpipe.Sequential(lp.prob, spec, nil)
		case SchedStatic:
			return dpipe.StaticPipelined(lp.prob, spec, dpipe.FuseMaxAssignment(lp.prob, spec))
		default:
			dopts := opts.DPipe
			if opts.WarmHint != nil {
				if lh, ok := opts.WarmHint.Layers[name]; ok && len(lh.Order) > 0 {
					dopts.WarmHints = []dpipe.Hint{{Order: lh.Order, First: lh.First}}
				}
			}
			return dpipe.PlanContext(sctx, lp.prob, spec, dopts)
		}
	}
	scheds := make(map[string]schedOut, len(probs))
	workers := resolveParallelism(opts.Parallelism)
	if workers > len(names) {
		workers = len(names)
	}
	if workers > 1 {
		opts.DPipe.Progress = serializeProgress(opts.DPipe.Progress)
		results := make([]dpipe.Result, len(names))
		errs := make([]error, len(names))
		var next atomic.Int64
		var wg sync.WaitGroup
		var panicMu sync.Mutex
		var panicVal any
		wg.Add(workers)
		for i := 0; i < workers; i++ {
			go func() {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						panicMu.Lock()
						if panicVal == nil {
							panicVal = r
						}
						panicMu.Unlock()
					}
				}()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(names) {
						return
					}
					results[i], errs[i] = schedOne(names[i])
				}
			}()
		}
		wg.Wait()
		if panicVal != nil {
			panic(panicVal)
		}
		for i, err := range errs {
			if err != nil {
				return Result{}, fmt.Errorf("pipeline: scheduling %s: %w", names[i], err)
			}
		}
		for i, name := range names {
			scheds[name] = schedOut{res: results[i], lp: probs[name]}
		}
	} else {
		for _, name := range names {
			res, err := schedOne(name)
			if err != nil {
				return Result{}, fmt.Errorf("pipeline: scheduling %s: %w", name, err)
			}
			scheds[name] = schedOut{res: res, lp: probs[name]}
		}
	}
	if reg != nil {
		reg.Histogram("pipeline.schedule_ms", nil).
			Observe(float64(time.Since(schedStart).Microseconds()) / 1e3)
	}

	// On-chip traffic per problem instance (buffer/RF/op counts). Pipelined
	// schedules retain producer-consumer operands in the register file
	// (FuseMax-style); sequential schedules round-trip the buffer.
	onChip := func(name string) perf.Traffic {
		so := scheds[name]
		var fused map[string]bool
		if so.lp.sched != SchedSequential {
			fused = make(map[string]bool, len(so.lp.prob.Ops))
			for op := range so.lp.prob.Ops {
				fused[op] = true
			}
		}
		var tr perf.Traffic
		for opName, op := range so.lp.prob.Ops {
			kind := so.res.Assignment[opName]
			tr.Add(perf.OpTraffic(op, spec, kind, fused).Scale(float64(so.lp.prob.Epochs)))
		}
		return tr
	}

	// DRAM boundary traffic per phase instance.
	kvprojDRAM := kernelDRAM(probs["kvproj"], bt, bytes)
	var phases []Phase

	addPhase := func(ph Phase) { phases = append(phases, ph) }

	// KV projection phase: common to every system (K/V are always written
	// to off-chip memory for reuse across query tiles — Figure 3).
	{
		so := scheds["kvproj"]
		ph := Phase{
			Name:          "kvproj",
			ComputeCycles: so.res.TotalCycles,
			DRAMBytes:     kvprojDRAM,
			Instances:     kvInst,
			Busy1D:        so.res.Busy1D,
			Busy2D:        so.res.Busy2D,
			OnChip:        onChip("kvproj"),
		}
		ph.ComputeByLayer[LayerQKV] = so.res.TotalCycles
		addPhase(ph)
	}

	if sys.FuseLayer {
		// One fused phase for the whole query path: QKV(Q) -> MHA -> LN ->
		// FFN with all activations on-chip. The DRAM boundary: K/V stream
		// (once per query tile), the Q-projection and FFN weights (amortised
		// across the batch tile), and the layer output write (which the next
		// layer's KV projection re-reads as its input).
		var compute, busy1, busy2 float64
		var byLayer [numLayerKinds]float64
		var chip perf.Traffic
		for _, name := range []string{"qproj", "mha", "ln", "ffn"} {
			so := scheds[name]
			compute += so.res.TotalCycles
			busy1 += so.res.Busy1D
			busy2 += so.res.Busy2D
			byLayer[so.lp.kind] += so.res.TotalCycles
			chip.Add(onChip(name))
		}
		dram := bytes * (2*int64(w.AvgVisibleKV(tile.P))*int64(dm) + // K and V streams
			(int64(dm)*int64(dm)+2*int64(dm)*int64(m.S))/bt + // WQ + FFN weights
			int64(tile.P)*int64(dm)) // layer output write
		ph := Phase{
			Name:           "layer",
			ComputeCycles:  compute,
			DRAMBytes:      dram,
			Instances:      qInst,
			Busy1D:         busy1,
			Busy2D:         busy2,
			OnChip:         chip,
			ComputeByLayer: byLayer,
		}
		addPhase(ph)
	} else {
		// Q projection (unfused): DRAM round trip for input and output.
		{
			so := scheds["qproj"]
			ph := Phase{
				Name:          "qproj",
				ComputeCycles: so.res.TotalCycles,
				DRAMBytes:     kernelDRAM(probs["qproj"], bt, bytes),
				Instances:     qInst,
				Busy1D:        so.res.Busy1D,
				Busy2D:        so.res.Busy2D,
				OnChip:        onChip("qproj"),
			}
			ph.ComputeByLayer[LayerQKV] = so.res.TotalCycles
			addPhase(ph)
		}
		// MHA: fused on-chip (FLAT/FuseMax) or kernel-level (Unfused).
		{
			so := scheds["mha"]
			mhaInst := qInst
			mhaP := tile.P
			if so.lp.instOverride > 0 {
				mhaInst = so.lp.instOverride
				mhaP = so.lp.fullDims["p"]
			}
			var dram int64
			if sys.FuseAttention {
				dram = bytes * (int64(mhaP)*int64(dm) + // Q tile read
					2*int64(w.AvgVisibleKV(mhaP))*int64(dm) + // K and V streams
					int64(mhaP)*int64(dm)) // AV write
			} else {
				dram = kernelDRAM(probs["mha"], bt, bytes)
			}
			ph := Phase{
				Name:          "mha",
				ComputeCycles: so.res.TotalCycles,
				DRAMBytes:     dram,
				Instances:     mhaInst,
				Busy1D:        so.res.Busy1D,
				Busy2D:        so.res.Busy2D,
				OnChip:        onChip("mha"),
			}
			ph.ComputeByLayer[LayerMHA] = so.res.TotalCycles
			addPhase(ph)
		}
		// Add & LayerNorm and FFN, unfused.
		for _, entry := range []struct {
			name string
			kind LayerKind
		}{{"ln", LayerNorm}, {"ffn", LayerFFN}} {
			so := scheds[entry.name]
			ph := Phase{
				Name:          entry.name,
				ComputeCycles: so.res.TotalCycles,
				DRAMBytes:     kernelDRAM(probs[entry.name], bt, bytes),
				Instances:     qInst,
				Busy1D:        so.res.Busy1D,
				Busy2D:        so.res.Busy2D,
				OnChip:        onChip(entry.name),
			}
			ph.ComputeByLayer[entry.kind] = so.res.TotalCycles
			addPhase(ph)
		}
	}

	// Roofline each phase and accumulate over layers.
	layers := int64(m.Layers)
	plans := make(map[string]LayerPlan, len(scheds))
	for name, so := range scheds {
		plans[name] = LayerPlan{
			Order:  so.res.Order,
			First:  so.res.Bipartition.FirstSorted(),
			Epochs: so.lp.prob.Epochs,
		}
	}
	res := Result{
		System:   sys.Name,
		Arch:     spec.Name,
		Workload: w,
		Tile:     tile,
		Plans:    plans,
	}
	for i := range phases {
		ph := &phases[i]
		ph.TimeCycles = perf.Roofline(ph.ComputeCycles, ph.DRAMBytes, spec)
		scale := float64(ph.Instances * layers)
		res.TotalCycles += ph.TimeCycles * scale

		// Attribute rooflined time to sub-layers proportionally to their
		// compute share of the phase.
		computeSum := 0.0
		for _, c := range ph.ComputeByLayer {
			computeSum += c
		}
		if computeSum > 0 {
			for k := 0; k < int(numLayerKinds); k++ {
				res.LayerCycles[k] += ph.TimeCycles * scale * ph.ComputeByLayer[k] / computeSum
			}
		}

		res.Busy1D += ph.Busy1D * scale
		res.Busy2D += ph.Busy2D * scale
		total := ph.OnChip.Scale(scale)
		total.DRAMBytes = float64(ph.DRAMBytes) * scale
		res.Traffic.Add(total)
	}
	res.Energy = res.Traffic.Energy(spec)
	res.Seconds = perf.SecondsFromCycles(res.TotalCycles, spec)
	res.Phases = phases
	return res, nil
}

// buildProblems constructs the five schedulable sub-layer problems for a
// system/tile combination.
func buildProblems(w Workload, spec arch.Spec, sys System, tile tiling.Config) (map[string]layerProblem, error) {
	m := w.Model
	n := w.SeqLen
	pp := tile.PPrime(spec)

	qkv := cascade.QKV()
	qCasc := &cascade.Cascade{Name: "QKV", Body: qkv.Body[:1]}
	kvCasc := &cascade.Cascade{Name: "QKV", Body: qkv.Body[1:3]}

	dEpochs := int64(ceilDiv(m.D, tile.D))
	out := make(map[string]layerProblem, 5)

	add := func(name string, c *cascade.Cascade, dims map[string]int, epochs int64, fullDims map[string]int, weights map[string]bool, kind LayerKind, sched Scheduler) error {
		prob, err := dpipe.FromCascade(c, dims, epochs)
		if err != nil {
			return err
		}
		out[name] = layerProblem{prob: prob, fullDims: fullDims, weights: weights, kind: kind, sched: sched}
		return nil
	}

	otherSched := sys.OtherScheduler
	attnSched := sys.AttentionScheduler

	if err := add("qproj", qCasc,
		map[string]int{"d": tile.D, "p": tile.P, "h": m.H, "e": m.E},
		dEpochs,
		map[string]int{"d": m.D, "p": tile.P, "h": m.H, "e": m.E},
		map[string]bool{"WQ": true},
		LayerQKV, otherSched); err != nil {
		return nil, err
	}
	if err := add("kvproj", kvCasc,
		map[string]int{"d": tile.D, "m1": tile.M1, "m0": tile.M0, "h": m.H, "e": m.E, "f": m.F},
		dEpochs,
		map[string]int{"d": m.D, "m1": tile.M1, "m0": tile.M0, "h": m.H, "e": m.E, "f": m.F},
		map[string]bool{"WK": true, "WV": true},
		LayerQKV, otherSched); err != nil {
		return nil, err
	}

	// Under causal masking every query attends to roughly half the
	// sequence on average; nVis is the effective key/value extent.
	nVis := w.AvgVisibleKV(tile.P)
	switch {
	case sys.StreamingAttention:
		mhaCascade := cascade.Attention()
		if w.Causal {
			mhaCascade = cascade.CausalAttention()
		}
		if err := add("mha", mhaCascade,
			map[string]int{"h": m.H, "e": m.E, "f": m.F, "p": tile.P, "m0": tile.M0},
			int64(ceilDiv(nVis, tile.M0)),
			map[string]int{"h": m.H, "e": m.E, "f": m.F, "p": tile.P, "m0": nVis},
			nil,
			LayerMHA, attnSched); err != nil {
			return nil, err
		}
	case sys.FuseAttention:
		// FLAT: full (two-pass) softmax fused on-chip. Unlike the streaming
		// cascade, the complete score rows for every query in flight must be
		// resident, so the row batch shrinks as the sequence grows:
		// p_flat = buffer/2 / N. This is FLAT's structural weakness at long
		// sequences (its 2D-array utilisation collapses), and the reason the
		// gap to streaming systems widens with N.
		pFlat := int(spec.BufferElements() / 2 / int64(w.KVLen()))
		if pFlat > tile.P {
			pFlat = tile.P
		}
		if pFlat < 1 {
			pFlat = 1
		}
		// Snap down to a divisor of the sequence so row batches tile it
		// exactly (no ragged final batch).
		if ds := tiling.Divisors(n, pFlat); len(ds) > 0 {
			pFlat = ds[len(ds)-1]
		}
		if err := add("mha", cascade.NaiveAttention(),
			map[string]int{"h": m.H, "e": m.E, "f": m.F, "p": pFlat, "m0": nVis},
			1,
			map[string]int{"h": m.H, "e": m.E, "f": m.F, "p": pFlat, "m0": nVis},
			nil,
			LayerMHA, attnSched); err != nil {
			return nil, err
		}
		lp := out["mha"]
		lp.instOverride = int64(w.Batch) * int64(ceilDiv(n, pFlat))
		out["mha"] = lp
	default:
		// Unfused: the same naive cascade, but every intermediate (including
		// the score matrix) round-trips DRAM, so the full query tile is kept.
		if err := add("mha", cascade.NaiveAttention(),
			map[string]int{"h": m.H, "e": m.E, "f": m.F, "p": tile.P, "m0": nVis},
			1,
			map[string]int{"h": m.H, "e": m.E, "f": m.F, "p": tile.P, "m0": nVis},
			nil,
			LayerMHA, attnSched); err != nil {
			return nil, err
		}
	}

	if err := add("ln", cascade.AddLayerNorm(m.InvHF()),
		map[string]int{"h": m.H, "f": m.F, "p": pp},
		int64(ceilDiv(tile.P, pp)),
		map[string]int{"h": m.H, "f": m.F, "p": tile.P},
		nil,
		LayerNorm, otherSched); err != nil {
		return nil, err
	}
	if err := add("ffn", cascade.FFN(m.Activation),
		map[string]int{"h": m.H, "f": m.F, "s": tile.S, "p": pp},
		int64(ceilDiv(tile.P, pp))*int64(ceilDiv(m.S, tile.S)),
		map[string]int{"h": m.H, "f": m.F, "s": m.S, "p": tile.P},
		map[string]bool{"WF1": true, "WF2": true, "BF1": true, "BF2": true},
		LayerFFN, otherSched); err != nil {
		return nil, err
	}
	return out, nil
}

// kernelDRAM models an unfused sub-layer's off-chip traffic at kernel
// granularity: every Einsum is a separate kernel that streams each distinct
// input tensor in from DRAM (at its full per-instance extent) and its output
// back out. Weight tensors are amortised across the batch tile. This is the
// dataflow the paper's Unfused baseline describes: "intermediate results
// written to off-chip memory between phases".
func kernelDRAM(lp layerProblem, batchTile, bytesPerElem int64) int64 {
	var total int64
	size := func(labels []string) int64 {
		p := int64(1)
		for _, l := range labels {
			if s, ok := lp.fullDims[l]; ok {
				p *= int64(s)
			}
		}
		return p
	}
	for _, op := range lp.prob.Ops {
		seen := map[string]bool{}
		for _, in := range op.E.Inputs {
			if seen[in.Tensor] {
				continue
			}
			seen[in.Tensor] = true
			sz := size(in.Idx)
			if lp.weights[in.Tensor] {
				sz = sz / batchTile
				if sz == 0 {
					sz = 1
				}
			}
			total += sz
		}
		total += size(op.E.OutIdx)
	}
	return total * bytesPerElem
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// BuildProblems exposes the per-sub-layer schedulable problems ("qproj",
// "kvproj", "mha", "ln", "ffn") for a system/tile combination; the
// scheduler-ablation experiment and external tools use it to study DPipe in
// isolation.
func BuildProblems(w Workload, spec arch.Spec, sys System, tile tiling.Config) (map[string]*dpipe.Problem, error) {
	probs, err := buildProblems(w, spec, sys, tile)
	if err != nil {
		return nil, err
	}
	out := make(map[string]*dpipe.Problem, len(probs))
	for name, lp := range probs {
		out[name] = lp.prob
	}
	return out, nil
}
