package pipeline

import (
	"context"
	"fmt"

	"github.com/fusedmindlab/transfusion/internal/arch"
	"github.com/fusedmindlab/transfusion/internal/dpipe"
	"github.com/fusedmindlab/transfusion/internal/faults"
	"github.com/fusedmindlab/transfusion/internal/perf"
	"github.com/fusedmindlab/transfusion/internal/tiling"
)

// Encoder-decoder composition (§3.2): TransFusion "composes and reorders
// Add & LayerNorm, FFN and MHA by their uniform input/output tensor shape,
// supporting different model structures such as encoders, decoders, or
// hybrid configurations". This file models a full encoder-decoder stack:
//
//	encoder:      Layers x [QKV -> MHA -> Add&LN -> FFN]         (bidirectional)
//	decoder self: Layers x [QKV -> masked MHA -> Add&LN -> FFN]  (causal)
//	decoder cross: Layers x [Q proj + memory K/V proj -> MHA -> Add&LN]
//
// The encoder and decoder-self parts reuse Evaluate directly; the
// cross-attention part is the same phase machinery with the key/value
// length decoupled from the query length (Workload.KVSeqLen).

// StackResult aggregates an encoder-decoder evaluation.
type StackResult struct {
	// Encoder is the bidirectional encoder stack's evaluation.
	Encoder Result
	// DecoderSelf is the masked self-attention decoder stack's evaluation.
	DecoderSelf Result
	// DecoderCross is the cross-attention stage's evaluation (per decoder
	// layer: query projection, memory K/V projection, MHA over the encoder
	// memory, Add & LayerNorm).
	DecoderCross Result
	// TotalCycles / Seconds / Energy aggregate the three parts.
	TotalCycles float64
	Seconds     float64
	Energy      perf.Energy
}

// EvaluateEncoderDecoder models a full encoder-decoder Transformer (equal
// encoder and decoder depth, per the model configuration) with encSeq
// source tokens and decSeq target tokens.
func EvaluateEncoderDecoder(w Workload, encSeq, decSeq int, spec arch.Spec, sys System, opts Options) (StackResult, error) {
	return EvaluateEncoderDecoderContext(context.Background(), w, encSeq, decSeq, spec, sys, opts)
}

// EvaluateEncoderDecoderContext is EvaluateEncoderDecoder under a context;
// cancellation aborts between and within the three constituent evaluations.
func EvaluateEncoderDecoderContext(ctx context.Context, w Workload, encSeq, decSeq int, spec arch.Spec, sys System, opts Options) (StackResult, error) {
	if encSeq <= 0 || decSeq <= 0 {
		return StackResult{}, faults.Invalidf("pipeline: non-positive stack lengths enc=%d dec=%d", encSeq, decSeq)
	}
	var out StackResult
	var err error

	encW := w
	encW.SeqLen = encSeq
	encW.Causal = false
	encW.KVSeqLen = 0
	out.Encoder, err = EvaluateContext(ctx, encW, spec, sys, opts)
	if err != nil {
		return StackResult{}, fmt.Errorf("pipeline: encoder stack: %w", err)
	}

	selfW := w
	selfW.SeqLen = decSeq
	selfW.Causal = true
	selfW.KVSeqLen = 0
	out.DecoderSelf, err = EvaluateContext(ctx, selfW, spec, sys, opts)
	if err != nil {
		return StackResult{}, fmt.Errorf("pipeline: decoder self-attention stack: %w", err)
	}

	crossW := w
	crossW.SeqLen = decSeq
	crossW.Causal = false
	crossW.KVSeqLen = encSeq
	out.DecoderCross, err = EvaluateCrossContext(ctx, crossW, spec, sys, opts)
	if err != nil {
		return StackResult{}, fmt.Errorf("pipeline: decoder cross-attention stage: %w", err)
	}

	out.TotalCycles = out.Encoder.TotalCycles + out.DecoderSelf.TotalCycles + out.DecoderCross.TotalCycles
	out.Seconds = perf.SecondsFromCycles(out.TotalCycles, spec)
	out.Energy.Add(out.Encoder.Energy)
	out.Energy.Add(out.DecoderSelf.Energy)
	out.Energy.Add(out.DecoderCross.Energy)
	return out, nil
}

// EvaluateCross models the cross-attention stage of a decoder stack: per
// decoder layer, the query projection over the decoder stream, the memory
// key/value projection over the encoder output, the MHA over the memory,
// and the Add & LayerNorm — no FFN (it belongs to the self-attention
// evaluation). The workload's KVSeqLen must carry the encoder length.
func EvaluateCross(w Workload, spec arch.Spec, sys System, opts Options) (Result, error) {
	return EvaluateCrossContext(context.Background(), w, spec, sys, opts)
}

// EvaluateCrossContext is EvaluateCross under a context; cancellation aborts
// the per-sub-layer schedule search within one candidate.
func EvaluateCrossContext(ctx context.Context, w Workload, spec arch.Spec, sys System, opts Options) (Result, error) {
	opts = opts.withDefaults()
	if err := sys.Validate(); err != nil {
		return Result{}, err
	}
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	if w.KVSeqLen == 0 {
		return Result{}, faults.Invalidf("pipeline: EvaluateCross requires KVSeqLen")
	}
	if ctx.Err() != nil {
		return Result{}, faults.Canceled(ctx)
	}
	tile, err := tiling.HeuristicTile(w, spec)
	if err != nil {
		return Result{}, err
	}

	m := w.Model
	dm := m.D
	bytes := int64(spec.BytesPerElement)
	bt := int64(tile.B)
	qInst := int64(w.Batch) * int64(w.SeqLen/tile.P)
	kvInst := int64(w.Batch) * tile.KVChunks(w)

	probs, err := buildProblems(w, spec, sys, tile)
	if err != nil {
		return Result{}, err
	}

	sched := func(name string) (dpipe.Result, layerProblem, error) {
		lp := probs[name]
		var res dpipe.Result
		var err error
		switch lp.sched {
		case SchedSequential:
			res, err = dpipe.Sequential(lp.prob, spec, nil)
		case SchedStatic:
			res, err = dpipe.StaticPipelined(lp.prob, spec, dpipe.FuseMaxAssignment(lp.prob, spec))
		default:
			res, err = dpipe.PlanContext(ctx, lp.prob, spec, opts.DPipe)
		}
		return res, lp, err
	}
	onChip := func(lp layerProblem, res dpipe.Result) perf.Traffic {
		var fused map[string]bool
		if lp.sched != SchedSequential {
			fused = make(map[string]bool, len(lp.prob.Ops))
			for op := range lp.prob.Ops {
				fused[op] = true
			}
		}
		var tr perf.Traffic
		for opName, op := range lp.prob.Ops {
			tr.Add(perf.OpTraffic(op, spec, res.Assignment[opName], fused).Scale(float64(lp.prob.Epochs)))
		}
		return tr
	}

	var phases []Phase

	// Memory K/V projection (once per KV chunk per decoder layer).
	kvRes, kvLP, err := sched("kvproj")
	if err != nil {
		return Result{}, err
	}
	kvPhase := Phase{
		Name:          "cross-kvproj",
		ComputeCycles: kvRes.TotalCycles,
		DRAMBytes:     kernelDRAM(kvLP, bt, bytes),
		Instances:     kvInst,
		Busy1D:        kvRes.Busy1D,
		Busy2D:        kvRes.Busy2D,
		OnChip:        onChip(kvLP, kvRes),
	}
	kvPhase.ComputeByLayer[LayerQKV] = kvRes.TotalCycles
	phases = append(phases, kvPhase)

	// Query path: Q projection + MHA over memory + Add & LayerNorm.
	names := []string{"qproj", "mha", "ln"}
	kinds := []LayerKind{LayerQKV, LayerMHA, LayerNorm}
	if sys.FuseLayer {
		var compute, busy1, busy2 float64
		var byLayer [numLayerKinds]float64
		var chip perf.Traffic
		for i, name := range names {
			res, lp, err := sched(name)
			if err != nil {
				return Result{}, err
			}
			compute += res.TotalCycles
			busy1 += res.Busy1D
			busy2 += res.Busy2D
			byLayer[kinds[i]] += res.TotalCycles
			chip.Add(onChip(lp, res))
		}
		dram := bytes * (int64(tile.P)*int64(dm) + // decoder stream read
			2*int64(w.KVLen())*int64(dm) + // memory K/V stream
			int64(dm)*int64(dm)/bt + // WQ
			int64(tile.P)*int64(dm)) // output write
		ph := Phase{
			Name:           "cross-layer",
			ComputeCycles:  compute,
			DRAMBytes:      dram,
			Instances:      qInst,
			Busy1D:         busy1,
			Busy2D:         busy2,
			OnChip:         chip,
			ComputeByLayer: byLayer,
		}
		phases = append(phases, ph)
	} else {
		for i, name := range names {
			res, lp, err := sched(name)
			if err != nil {
				return Result{}, err
			}
			var dram int64
			if name == "mha" && sys.FuseAttention {
				mhaP := tile.P
				if lp.instOverride > 0 {
					mhaP = lp.fullDims["p"]
				}
				dram = bytes * (int64(mhaP)*int64(dm) + 2*int64(w.KVLen())*int64(dm) + int64(mhaP)*int64(dm))
			} else {
				dram = kernelDRAM(lp, bt, bytes)
			}
			inst := qInst
			if lp.instOverride > 0 {
				inst = lp.instOverride
			}
			ph := Phase{
				Name:          "cross-" + name,
				ComputeCycles: res.TotalCycles,
				DRAMBytes:     dram,
				Instances:     inst,
				Busy1D:        res.Busy1D,
				Busy2D:        res.Busy2D,
				OnChip:        onChip(lp, res),
			}
			ph.ComputeByLayer[kinds[i]] = res.TotalCycles
			phases = append(phases, ph)
		}
	}

	// Roofline and accumulate across decoder layers.
	res := Result{System: sys.Name, Arch: spec.Name, Workload: w, Tile: tile}
	layers := int64(m.Layers)
	for i := range phases {
		ph := &phases[i]
		ph.TimeCycles = perf.Roofline(ph.ComputeCycles, ph.DRAMBytes, spec)
		scale := float64(ph.Instances * layers)
		res.TotalCycles += ph.TimeCycles * scale
		computeSum := 0.0
		for _, c := range ph.ComputeByLayer {
			computeSum += c
		}
		if computeSum > 0 {
			for k := 0; k < int(numLayerKinds); k++ {
				res.LayerCycles[k] += ph.TimeCycles * scale * ph.ComputeByLayer[k] / computeSum
			}
		}
		res.Busy1D += ph.Busy1D * scale
		res.Busy2D += ph.Busy2D * scale
		total := ph.OnChip.Scale(scale)
		total.DRAMBytes = float64(ph.DRAMBytes) * scale
		res.Traffic.Add(total)
	}
	res.Energy = res.Traffic.Energy(spec)
	res.Seconds = perf.SecondsFromCycles(res.TotalCycles, spec)
	res.Phases = phases
	return res, nil
}
