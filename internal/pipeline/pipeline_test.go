package pipeline

import (
	"math"
	"testing"

	"github.com/fusedmindlab/transfusion/internal/arch"
	"github.com/fusedmindlab/transfusion/internal/model"
	"github.com/fusedmindlab/transfusion/internal/tiling"
)

func fastOpts() Options {
	o := DefaultOptions()
	o.TileSeekIterations = 24
	return o
}

func bertWorkload(n int) Workload {
	return Workload{Model: model.BERT(), SeqLen: n, Batch: 64}
}

func evalAll(t *testing.T, w Workload, spec arch.Spec) map[string]Result {
	t.Helper()
	out := make(map[string]Result, 5)
	for _, sys := range AllSystems() {
		r, err := Evaluate(w, spec, sys, fastOpts())
		if err != nil {
			t.Fatalf("%s on %s: %v", sys.Name, spec.Name, err)
		}
		out[sys.Name] = r
	}
	return out
}

func TestSystemsValidate(t *testing.T) {
	for _, s := range AllSystems() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	bad := System{Name: "x", FuseLayer: true}
	if err := bad.Validate(); err == nil {
		t.Error("layer fusion without attention fusion accepted")
	}
	bad2 := System{Name: "y", StreamingAttention: true}
	if err := bad2.Validate(); err == nil {
		t.Error("streaming without fusion accepted")
	}
	if _, err := SystemByName("transfusion"); err != nil {
		t.Error(err)
	}
	if _, err := SystemByName("nope"); err == nil {
		t.Error("unknown system accepted")
	}
}

func TestSchedulerString(t *testing.T) {
	if SchedSequential.String() != "sequential" || SchedStatic.String() != "static-pipeline" || SchedDPipe.String() != "dpipe" {
		t.Fatal("scheduler names wrong")
	}
}

func TestAllSystemsEvaluate(t *testing.T) {
	for _, spec := range []arch.Spec{arch.Cloud(), arch.Edge()} {
		results := evalAll(t, bertWorkload(4096), spec)
		for name, r := range results {
			if r.TotalCycles <= 0 || math.IsNaN(r.TotalCycles) || math.IsInf(r.TotalCycles, 0) {
				t.Errorf("%s/%s: TotalCycles = %v", spec.Name, name, r.TotalCycles)
			}
			if r.Seconds <= 0 {
				t.Errorf("%s/%s: Seconds = %v", spec.Name, name, r.Seconds)
			}
			if r.Energy.Total() <= 0 {
				t.Errorf("%s/%s: Energy = %v", spec.Name, name, r.Energy.Total())
			}
			for _, u := range []float64{r.Utilization1D(), r.Utilization2D()} {
				if u < 0 || u > 1+1e-9 {
					t.Errorf("%s/%s: utilization %v out of range", spec.Name, name, u)
				}
			}
		}
	}
}

// Dominance invariants that must hold by construction:
//   - FuseMax never loses to Unfused (it strictly removes traffic and adds
//     overlap in MHA, leaving the rest identical);
//   - LayerFuse never loses to FuseMax (same compute, strictly less DRAM);
//   - TransFusion never loses to LayerFuse (DPipe subsumes the static
//     schedule among its candidates, TileSeek is seeded with the heuristic
//     tile).
func TestSystemDominance(t *testing.T) {
	const slack = 1.001
	for _, spec := range []arch.Spec{arch.Cloud(), arch.Edge()} {
		for _, n := range []int{4096, 65536} {
			r := evalAll(t, bertWorkload(n), spec)
			if r["fusemax"].TotalCycles > r["unfused"].TotalCycles*slack {
				t.Errorf("%s/%d: fusemax (%v) worse than unfused (%v)", spec.Name, n,
					r["fusemax"].TotalCycles, r["unfused"].TotalCycles)
			}
			if r["fusemax+layerfuse"].TotalCycles > r["fusemax"].TotalCycles*slack {
				t.Errorf("%s/%d: layerfuse (%v) worse than fusemax (%v)", spec.Name, n,
					r["fusemax+layerfuse"].TotalCycles, r["fusemax"].TotalCycles)
			}
			if r["transfusion"].TotalCycles > r["fusemax+layerfuse"].TotalCycles*slack {
				t.Errorf("%s/%d: transfusion (%v) worse than layerfuse (%v)", spec.Name, n,
					r["transfusion"].TotalCycles, r["fusemax+layerfuse"].TotalCycles)
			}
		}
	}
}

// The paper's headline cloud trends: TransFusion beats FuseMax, and the
// FLAT gap widens with sequence length (full-softmax row residency
// collapses FLAT's utilisation at long sequences).
func TestCloudTrendShapes(t *testing.T) {
	cloud := arch.Cloud()
	short := evalAll(t, bertWorkload(4096), cloud)
	long := evalAll(t, bertWorkload(262144), cloud)

	if s := short["transfusion"].Speedup(short["fusemax"]); s < 1.05 {
		t.Errorf("short: TransFusion/FuseMax = %v, want > 1.05", s)
	}
	gapShort := short["transfusion"].Speedup(short["flat"])
	gapLong := long["transfusion"].Speedup(long["flat"])
	if gapLong <= gapShort {
		t.Errorf("FLAT gap did not widen with sequence length: %v -> %v", gapShort, gapLong)
	}

	// Layer fusion's benefit over plain FuseMax shrinks as compute comes to
	// dominate (§6.2: "its benefit diminishes as sequence length increases").
	lfShort := short["fusemax"].TotalCycles / short["fusemax+layerfuse"].TotalCycles
	lfLong := long["fusemax"].TotalCycles / long["fusemax+layerfuse"].TotalCycles
	if lfLong > lfShort+1e-9 {
		t.Errorf("layer-fusion benefit grew with sequence length: %v -> %v", lfShort, lfLong)
	}
}

// Edge: DPipe's matrix spill onto the 1D array must produce a clear win and
// a busy 1D array (§6.2's 82% 1D utilization narrative).
func TestEdgeSpillShape(t *testing.T) {
	edge := arch.Edge()
	r := evalAll(t, bertWorkload(65536), edge)
	if s := r["transfusion"].Speedup(r["fusemax"]); s < 1.2 {
		t.Errorf("edge TransFusion/FuseMax = %v, want >= 1.2", s)
	}
	if u := r["transfusion"].Utilization1D(); u < 0.3 {
		t.Errorf("edge TransFusion 1D utilization = %v, want substantial", u)
	}
	if u := r["fusemax"].Utilization1D(); u > 0.5 {
		t.Errorf("edge FuseMax 1D utilization = %v, expected mostly idle", u)
	}
}

func TestEnergyOrdering(t *testing.T) {
	cloud := arch.Cloud()
	r := evalAll(t, bertWorkload(65536), cloud)
	// Fusion eliminates DRAM round trips: DRAM energy must shrink
	// monotonically from Unfused through the fused systems.
	if !(r["unfused"].Energy.DRAM > r["fusemax"].Energy.DRAM) {
		t.Errorf("DRAM energy: unfused %v <= fusemax %v", r["unfused"].Energy.DRAM, r["fusemax"].Energy.DRAM)
	}
	if !(r["fusemax"].Energy.DRAM >= r["fusemax+layerfuse"].Energy.DRAM) {
		t.Errorf("DRAM energy: fusemax %v < layerfuse %v", r["fusemax"].Energy.DRAM, r["fusemax+layerfuse"].Energy.DRAM)
	}
	// Total energy strictly positive in every component.
	e := r["transfusion"].Energy
	if e.DRAM <= 0 || e.Buffer <= 0 || e.Reg <= 0 || e.PE <= 0 {
		t.Errorf("energy components must be positive: %+v", e)
	}
}

func TestResultAccounting(t *testing.T) {
	cloud := arch.Cloud()
	r, err := Evaluate(bertWorkload(4096), cloud, FuseMax(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	// TotalCycles must equal the sum over phases of instances x layers x
	// rooflined per-instance time.
	sum := 0.0
	for _, ph := range r.Phases {
		sum += ph.TimeCycles * float64(ph.Instances) * float64(r.Workload.Model.Layers)
	}
	if math.Abs(sum-r.TotalCycles)/r.TotalCycles > 1e-9 {
		t.Fatalf("phase sum %v != total %v", sum, r.TotalCycles)
	}
	// Layer attribution covers the whole latency.
	var lsum float64
	for _, c := range r.LayerCycles {
		lsum += c
	}
	if math.Abs(lsum-r.TotalCycles)/r.TotalCycles > 1e-6 {
		t.Fatalf("layer attribution %v != total %v", lsum, r.TotalCycles)
	}
}

func TestContributionSumsToOne(t *testing.T) {
	cloud := arch.Cloud()
	base, err := Evaluate(bertWorkload(4096), cloud, FuseMax(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	tf, err := Evaluate(bertWorkload(4096), cloud, TransFusion(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	contrib := tf.Contribution(base)
	sum := 0.0
	for _, c := range contrib {
		if c < 0 {
			t.Fatalf("negative contribution: %v", contrib)
		}
		sum += c
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("contributions sum to %v, want 1", sum)
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	cloud := arch.Cloud()
	a, err := Evaluate(bertWorkload(4096), cloud, TransFusion(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(bertWorkload(4096), cloud, TransFusion(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalCycles != b.TotalCycles || a.Tile != b.Tile {
		t.Fatalf("nondeterministic evaluation: %v/%v vs %v/%v", a.TotalCycles, a.Tile, b.TotalCycles, b.Tile)
	}
}

func TestEvaluateWithTileRejectsInfeasible(t *testing.T) {
	w := bertWorkload(4096)
	// A tile that exceeds the edge buffer.
	tile := tiling.Config{B: 64, D: 768, P: 4096, M1: 64, M0: 64, S: 3072}
	if _, err := EvaluateWithTile(w, arch.Edge(), FuseMax(), tile, fastOpts()); err == nil {
		t.Fatal("infeasible tile accepted")
	}
	// A structurally invalid tile.
	bad := tiling.Config{B: 0, D: 768, P: 256, M1: 1, M0: 64, S: 512}
	if _, err := EvaluateWithTile(w, arch.Cloud(), FuseMax(), bad, fastOpts()); err == nil {
		t.Fatal("invalid tile accepted")
	}
}

func TestEvaluateRejectsBadInputs(t *testing.T) {
	cloud := arch.Cloud()
	if _, err := Evaluate(Workload{Model: model.BERT(), SeqLen: 0, Batch: 64}, cloud, FuseMax(), fastOpts()); err == nil {
		t.Fatal("zero sequence accepted")
	}
	if _, err := Evaluate(bertWorkload(4096), cloud, System{}, fastOpts()); err == nil {
		t.Fatal("empty system accepted")
	}
	badSpec := cloud
	badSpec.PE1DLanes = 0
	if _, err := Evaluate(bertWorkload(4096), badSpec, FuseMax(), fastOpts()); err == nil {
		t.Fatal("invalid arch accepted")
	}
}

func TestTransFusionRecordsSearchEvals(t *testing.T) {
	r, err := Evaluate(bertWorkload(4096), arch.Cloud(), TransFusion(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r.TileSearchEvals < 1 {
		t.Fatalf("TileSearchEvals = %d", r.TileSearchEvals)
	}
	base, err := Evaluate(bertWorkload(4096), arch.Cloud(), FuseMax(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if base.TileSearchEvals != 0 {
		t.Fatalf("baseline recorded search evals: %d", base.TileSearchEvals)
	}
}

func TestLayerKindString(t *testing.T) {
	want := []string{"QKV", "MHA", "Add&LayerNorm", "FFN"}
	for i, k := range LayerKinds() {
		if k.String() != want[i] {
			t.Fatalf("LayerKind %d = %q", i, k.String())
		}
	}
}

// The MHA share of latency must grow with sequence length (quadratic vs
// linear terms) — the mechanism behind Figure 11's shift from LayerNorm/FFN
// gains to MHA-dominated gains.
func TestMHAShareGrowsWithSequence(t *testing.T) {
	cloud := arch.Cloud()
	short, err := Evaluate(bertWorkload(1024), cloud, TransFusion(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	long, err := Evaluate(bertWorkload(262144), cloud, TransFusion(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	shareShort := short.LayerCycles[LayerMHA] / short.TotalCycles
	shareLong := long.LayerCycles[LayerMHA] / long.TotalCycles
	if shareLong <= shareShort {
		t.Fatalf("MHA share did not grow: %v -> %v", shareShort, shareLong)
	}
}

func TestAllModelsAllArchesEvaluate(t *testing.T) {
	if testing.Short() {
		t.Skip("full model sweep in short mode")
	}
	opts := fastOpts()
	opts.TileSeekIterations = 8
	for _, spec := range []arch.Spec{arch.Cloud(), arch.Edge(), arch.Edge32(), arch.Edge64()} {
		for _, m := range model.All() {
			w := Workload{Model: m, SeqLen: 65536, Batch: 64}
			for _, sys := range []System{Unfused(), FuseMax(), TransFusion()} {
				if _, err := Evaluate(w, spec, sys, opts); err != nil {
					t.Errorf("%s/%s/%s: %v", spec.Name, m.Name, sys.Name, err)
				}
			}
		}
	}
}

// Property: longer sequences never get cheaper (work is monotone in N).
func TestQuickSeqMonotonicity(t *testing.T) {
	cloud := arch.Cloud()
	opts := fastOpts()
	seqs := []int{1024, 4096, 16384, 65536}
	var prev float64
	for i, n := range seqs {
		r, err := Evaluate(bertWorkload(n), cloud, FuseMax(), opts)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && r.TotalCycles < prev {
			t.Fatalf("cycles decreased from seq %d to %d: %v -> %v", seqs[i-1], n, prev, r.TotalCycles)
		}
		prev = r.TotalCycles
	}
}

// Property: more DRAM bandwidth never slows any system down.
func TestBandwidthMonotonicity(t *testing.T) {
	base := arch.Edge()
	fast := base
	fast.Name = "edge-fastmem"
	fast.DRAMBandwidth *= 4
	for _, sys := range []System{Unfused(), FuseMax()} {
		slow, err := Evaluate(bertWorkload(4096), base, sys, fastOpts())
		if err != nil {
			t.Fatal(err)
		}
		quick, err := Evaluate(bertWorkload(4096), fast, sys, fastOpts())
		if err != nil {
			t.Fatal(err)
		}
		if quick.TotalCycles > slow.TotalCycles*1.001 {
			t.Fatalf("%s: 4x bandwidth made it slower: %v -> %v", sys.Name, slow.TotalCycles, quick.TotalCycles)
		}
	}
}

// Property: a custom model with identical hyper-parameters to a zoo model
// produces identical results (the evaluation depends only on shapes).
func TestCustomModelEquivalence(t *testing.T) {
	custom, err := model.Custom("bertclone", 12, 64, 3072, 12, "gelu")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Evaluate(Workload{Model: model.BERT(), SeqLen: 4096, Batch: 64}, arch.Cloud(), FuseMax(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(Workload{Model: custom, SeqLen: 4096, Batch: 64}, arch.Cloud(), FuseMax(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalCycles != b.TotalCycles || a.Energy.Total() != b.Energy.Total() {
		t.Fatalf("clone differs: %v/%v vs %v/%v", a.TotalCycles, a.Energy.Total(), b.TotalCycles, b.Energy.Total())
	}
}

// The three TileSeek objectives all produce valid, deterministic runs, and
// the energy objective never picks a higher-energy tile than the latency
// objective picks (given the shared heuristic seeding, both are upper-
// bounded by the heuristic; energy-mode search can only improve energy).
func TestTileSeekObjectives(t *testing.T) {
	edge := arch.Edge()
	results := map[Objective]Result{}
	for _, obj := range []Objective{ObjectiveEDP, ObjectiveLatency, ObjectiveEnergy} {
		opts := fastOpts()
		opts.TileSeekObjective = obj
		r, err := Evaluate(bertWorkload(16384), edge, TransFusion(), opts)
		if err != nil {
			t.Fatalf("%v: %v", obj, err)
		}
		results[obj] = r
	}
	// With heuristic seeding, the latency objective's cycles lower-bound
	// the other modes' cycles only approximately; assert sanity instead:
	// every mode produced finite positive results and the latency mode is
	// not the slowest by more than 1%.
	for obj, r := range results {
		if r.TotalCycles <= 0 || r.Energy.Total() <= 0 {
			t.Fatalf("%v: degenerate result", obj)
		}
	}
	lat := results[ObjectiveLatency].TotalCycles
	for obj, r := range results {
		if lat > r.TotalCycles*1.01 {
			t.Fatalf("latency objective (%v cycles) slower than %v objective (%v cycles)", lat, obj, r.TotalCycles)
		}
	}
	if ObjectiveEDP.String() != "edp" || ObjectiveLatency.String() != "latency" || ObjectiveEnergy.String() != "energy" {
		t.Fatal("objective names wrong")
	}
}

// Integration: the schedulable problems must carry exactly the cascades'
// body Einsums — the performance model schedules precisely the operations
// the functional layer executes.
func TestProblemsMirrorCascades(t *testing.T) {
	w := bertWorkload(4096)
	spec := arch.Cloud()
	tile, err := tiling.HeuristicTile(w, spec)
	if err != nil {
		t.Fatal(err)
	}
	probs, err := BuildProblems(w, spec, TransFusion(), tile)
	if err != nil {
		t.Fatal(err)
	}
	wantOps := map[string][]string{
		"qproj":  {"Q"},
		"kvproj": {"BK", "BV"},
		"mha":    {"BQK", "LM", "RM_next", "SLN", "SLD", "SLNV", "PRM", "SPD", "RD_next", "SPNV", "RNV_next"},
		"ln":     {"IAV", "SAV", "MAV", "DAV", "QAV", "SQAV", "MQAV", "SR", "NR"},
		"ffn":    {"FFN1", "FFN1B", "AR", "FFN2", "FFN2B"},
	}
	for name, want := range wantOps {
		prob, ok := probs[name]
		if !ok {
			t.Fatalf("problem %q missing", name)
		}
		if len(prob.Ops) != len(want) {
			t.Fatalf("%s: %d ops, want %d", name, len(prob.Ops), len(want))
		}
		for _, op := range want {
			if _, ok := prob.Ops[op]; !ok {
				t.Errorf("%s: op %q missing", name, op)
			}
		}
	}
}
