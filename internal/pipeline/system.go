// Package pipeline is the end-to-end evaluation engine: it turns a
// (workload, architecture, system) triple into modelled latency, energy,
// traffic, and utilization by composing the Einsum cascades (internal/
// cascade), the DPipe scheduler (internal/dpipe), the outer-tiling machinery
// (internal/tiling, internal/tileseek), and the performance model
// (internal/perf).
//
// Five systems are modelled, matching §6.1 of the paper:
//
//	Unfused    every Einsum is a separate kernel with DRAM-resident
//	           operands; naive two-pass softmax; no 1D/2D overlap.
//	FLAT       attention fused on-chip per query tile (row-wise fusion,
//	           naive softmax) but executed sequentially; all other layers
//	           unfused.
//	FuseMax    attention fused with the 1-pass streaming cascade and a
//	           static 2D/1D pipeline (contractions on the 2D array, the
//	           softmax chain on the 1D array); other layers unfused.
//	FuseMax+LayerFuse
//	           the ablation: end-to-end inter-layer fusion (activations
//	           stay on-chip through QKV, MHA, Add&LayerNorm, FFN) but no
//	           DPipe — layers run sequentially, only the FuseMax attention
//	           pipeline overlaps.
//	TransFusion
//	           inter-layer fusion + DPipe schedules for every layer +
//	           TileSeek outer tiling.
package pipeline

import (
	"fmt"

	"github.com/fusedmindlab/transfusion/internal/faults"
	"github.com/fusedmindlab/transfusion/internal/tiling"
)

// Scheduler selects how a fused layer's Einsums are ordered onto the PE
// arrays.
type Scheduler int

const (
	// SchedSequential serialises every op on its class-assigned array.
	SchedSequential Scheduler = iota
	// SchedStatic is the FuseMax static pipeline: class-assigned arrays
	// with Eq. 43–46 overlap, canonical order.
	SchedStatic
	// SchedDPipe is the full DPipe search (bipartitions + orders + DP).
	SchedDPipe
)

// String names the scheduler.
func (s Scheduler) String() string {
	switch s {
	case SchedSequential:
		return "sequential"
	case SchedStatic:
		return "static-pipeline"
	default:
		return "dpipe"
	}
}

// System describes one modelled system's dataflow.
type System struct {
	// Name identifies the system in reports.
	Name string
	// FuseAttention keeps attention intermediates on-chip (FLAT and later).
	FuseAttention bool
	// StreamingAttention uses the 1-pass cascade (FuseMax and later);
	// otherwise the naive full-softmax cascade.
	StreamingAttention bool
	// FuseLayer keeps all inter-layer activations on-chip (LayerFuse,
	// TransFusion).
	FuseLayer bool
	// AttentionScheduler schedules the attention cascade.
	AttentionScheduler Scheduler
	// OtherScheduler schedules QKV / LayerNorm / FFN.
	OtherScheduler Scheduler
	// UseTileSeek selects the outer tile with the MCTS search instead of
	// the static heuristic.
	UseTileSeek bool
}

// Validate rejects inconsistent system descriptions.
func (s System) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("pipeline: system with empty name")
	}
	if s.FuseLayer && !s.FuseAttention {
		return fmt.Errorf("pipeline: system %s fuses layers but not attention", s.Name)
	}
	if s.StreamingAttention && !s.FuseAttention {
		return fmt.Errorf("pipeline: system %s streams attention without fusing it", s.Name)
	}
	return nil
}

// Unfused is the sequential, DRAM-everything baseline.
func Unfused() System {
	return System{Name: "unfused"}
}

// FLAT is the attention-fusion baseline (Kao et al.).
func FLAT() System {
	return System{Name: "flat", FuseAttention: true}
}

// FuseMax is the primary baseline (Nayak et al.): streaming attention with
// a static 2D/1D pipeline.
func FuseMax() System {
	return System{
		Name:               "fusemax",
		FuseAttention:      true,
		StreamingAttention: true,
		AttentionScheduler: SchedStatic,
	}
}

// FuseMaxLayerFuse is the paper's ablation: FuseMax plus end-to-end
// inter-layer fusion, without DPipe.
func FuseMaxLayerFuse() System {
	return System{
		Name:               "fusemax+layerfuse",
		FuseAttention:      true,
		StreamingAttention: true,
		FuseLayer:          true,
		AttentionScheduler: SchedStatic,
	}
}

// TransFusion is the paper's system: end-to-end fusion, DPipe everywhere,
// TileSeek outer tiling.
func TransFusion() System {
	return System{
		Name:               "transfusion",
		FuseAttention:      true,
		StreamingAttention: true,
		FuseLayer:          true,
		AttentionScheduler: SchedDPipe,
		OtherScheduler:     SchedDPipe,
		UseTileSeek:        true,
	}
}

// AllSystems returns the five systems in the evaluation's comparison order.
func AllSystems() []System {
	return []System{Unfused(), FLAT(), FuseMax(), FuseMaxLayerFuse(), TransFusion()}
}

// SystemByName resolves a system by its report name.
func SystemByName(name string) (System, error) {
	for _, s := range AllSystems() {
		if s.Name == name {
			return s, nil
		}
	}
	return System{}, faults.Invalidf("pipeline: unknown system %q", name)
}

// Workload re-exports the tiling workload for the public API's convenience.
type Workload = tiling.Workload
