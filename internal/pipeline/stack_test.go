package pipeline

import (
	"math"
	"testing"

	"github.com/fusedmindlab/transfusion/internal/arch"
	"github.com/fusedmindlab/transfusion/internal/model"
)

func TestEvaluateEncoderDecoder(t *testing.T) {
	w := Workload{Model: model.T5(), Batch: 64}
	for _, sys := range []System{Unfused(), FuseMax(), TransFusion()} {
		res, err := EvaluateEncoderDecoder(w, 4096, 1024, arch.Cloud(), sys, fastOpts())
		if err != nil {
			t.Fatalf("%s: %v", sys.Name, err)
		}
		sum := res.Encoder.TotalCycles + res.DecoderSelf.TotalCycles + res.DecoderCross.TotalCycles
		if math.Abs(sum-res.TotalCycles)/res.TotalCycles > 1e-9 {
			t.Fatalf("%s: parts %v != total %v", sys.Name, sum, res.TotalCycles)
		}
		if res.Seconds <= 0 || res.Energy.Total() <= 0 {
			t.Fatalf("%s: bad aggregates %v / %v", sys.Name, res.Seconds, res.Energy.Total())
		}
		// The cross stage has no FFN: its FFN attribution must be zero.
		if res.DecoderCross.LayerCycles[LayerFFN] != 0 {
			t.Fatalf("%s: cross stage charged FFN cycles", sys.Name)
		}
		// Decoder-self used causal masking: cheaper per token than the
		// encoder at the same length would be. (Compare per-token: encoder
		// is 4x the tokens.)
		perTokEnc := res.Encoder.TotalCycles / 4096
		perTokSelf := res.DecoderSelf.TotalCycles / 1024
		if perTokSelf > perTokEnc*1.2 {
			t.Fatalf("%s: causal decoder per-token (%v) much worse than encoder (%v)", sys.Name, perTokSelf, perTokEnc)
		}
	}
}

func TestEvaluateEncoderDecoderOrdering(t *testing.T) {
	// TransFusion must beat FuseMax on the whole stack, as on the parts.
	w := Workload{Model: model.T5(), Batch: 64}
	fm, err := EvaluateEncoderDecoder(w, 4096, 1024, arch.Edge(), FuseMax(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	tf, err := EvaluateEncoderDecoder(w, 4096, 1024, arch.Edge(), TransFusion(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if tf.TotalCycles > fm.TotalCycles*1.001 {
		t.Fatalf("stack: transfusion (%v) worse than fusemax (%v)", tf.TotalCycles, fm.TotalCycles)
	}
}

func TestEvaluateCrossRequiresKVLen(t *testing.T) {
	w := Workload{Model: model.T5(), SeqLen: 1024, Batch: 64}
	if _, err := EvaluateCross(w, arch.Cloud(), FuseMax(), fastOpts()); err == nil {
		t.Fatal("EvaluateCross without KVSeqLen succeeded")
	}
}

func TestEvaluateEncoderDecoderErrors(t *testing.T) {
	w := Workload{Model: model.T5(), Batch: 64}
	if _, err := EvaluateEncoderDecoder(w, 0, 1024, arch.Cloud(), FuseMax(), fastOpts()); err == nil {
		t.Fatal("zero encoder length accepted")
	}
	if _, err := EvaluateEncoderDecoder(w, 1024, -1, arch.Cloud(), FuseMax(), fastOpts()); err == nil {
		t.Fatal("negative decoder length accepted")
	}
}

// Cross-attention work must scale with the encoder length (the KV side).
func TestCrossScalesWithMemoryLength(t *testing.T) {
	w := Workload{Model: model.T5(), SeqLen: 1024, Batch: 64}
	w.KVSeqLen = 4096
	small, err := EvaluateCross(w, arch.Cloud(), FuseMax(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	w.KVSeqLen = 16384
	big, err := EvaluateCross(w, arch.Cloud(), FuseMax(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	ratio := big.TotalCycles / small.TotalCycles
	if ratio < 2 || ratio > 8 {
		t.Fatalf("4x memory length scaled cross cycles by %v, want ~4", ratio)
	}
}
