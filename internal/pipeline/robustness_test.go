package pipeline

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/fusedmindlab/transfusion/internal/arch"
	"github.com/fusedmindlab/transfusion/internal/faults"
	"github.com/fusedmindlab/transfusion/internal/tileseek"
	"github.com/fusedmindlab/transfusion/internal/tiling"
)

func TestEvaluateContextCanceledUpFront(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := EvaluateContext(ctx, bertWorkload(1024), arch.Cloud(), TransFusion(), fastOpts())
	if !errors.Is(err, faults.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, does not also match context.Canceled", err)
	}
}

func TestEvaluateContextCanceledMidSearch(t *testing.T) {
	// Cancel while the tile search is running: the evaluation must abort
	// within one rollout and report cancellation, never a partial result.
	ctx, cancel := context.WithCancel(context.Background())
	opts := fastOpts()
	opts.TileSeekIterations = 1 << 20 // would run for a very long time
	done := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
		close(done)
	}()
	_, err := EvaluateContext(ctx, bertWorkload(4096), arch.Cloud(), TransFusion(), opts)
	<-done
	if !errors.Is(err, faults.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// infeasibleSpace builds a search space whose only candidate is the full,
// untiled problem — guaranteed to blow any realistic buffer, so the search
// can never find a feasible configuration.
func infeasibleSpace(w Workload, spec arch.Spec) *tileseek.Space {
	m := w.Model
	return &tileseek.Space{
		Workload: w,
		Spec:     spec,
		Bs:       []int{w.Batch},
		Ds:       []int{m.D},
		Ps:       []int{w.SeqLen},
		M0s:      []int{w.KVLen()},
		M1s:      []int{1},
		Ss:       []int{m.S},
	}
}

func TestEvaluateDegradesToHeuristicOnInfeasibleSearch(t *testing.T) {
	w := bertWorkload(4096)
	spec := arch.Cloud()
	opts := fastOpts()
	opts.TileSeekSpace = infeasibleSpace(w, spec)

	// Sanity: the forced space really is infeasible while the heuristic
	// still finds a tile.
	full := tiling.Config{B: w.Batch, D: w.Model.D, P: w.SeqLen, M1: 1, M0: w.KVLen(), S: w.Model.S}
	if tiling.Feasible(full, w, spec) {
		t.Fatal("full-problem tile unexpectedly fits the buffer; test premise broken")
	}
	heur, err := tiling.HeuristicTile(w, spec)
	if err != nil {
		t.Fatalf("heuristic tile: %v", err)
	}

	res, err := EvaluateContext(context.Background(), w, spec, TransFusion(), opts)
	if err != nil {
		t.Fatalf("EvaluateContext: %v", err)
	}
	if !res.Degraded {
		t.Fatal("Degraded = false, want true after infeasible search")
	}
	if res.DegradedReason == "" {
		t.Fatal("DegradedReason empty")
	}
	if res.Tile != heur {
		t.Fatalf("fallback tile %v, want heuristic tile %v", res.Tile, heur)
	}
	if res.TotalCycles <= 0 {
		t.Fatalf("degraded result has no latency: %v", res.TotalCycles)
	}
}

func TestEvaluateDegradesOnSearchTimeout(t *testing.T) {
	// An already-expired soft timeout cancels the search's child context
	// while the caller's context stays live: the evaluation must degrade to
	// the heuristic tile, not fail.
	opts := fastOpts()
	opts.TileSeekIterations = 1 << 20
	opts.TileSeekTimeout = time.Nanosecond
	res, err := EvaluateContext(context.Background(), bertWorkload(4096), arch.Cloud(), TransFusion(), opts)
	if err != nil {
		t.Fatalf("EvaluateContext: %v", err)
	}
	if !res.Degraded {
		t.Fatal("Degraded = false, want true after search timeout")
	}
	if res.DegradedReason == "" {
		t.Fatal("DegradedReason empty")
	}
}

func TestEvaluateNotDegradedOnCleanSearch(t *testing.T) {
	res, err := EvaluateContext(context.Background(), bertWorkload(1024), arch.Cloud(), TransFusion(), fastOpts())
	if err != nil {
		t.Fatalf("EvaluateContext: %v", err)
	}
	if res.Degraded || res.DegradedReason != "" {
		t.Fatalf("clean run marked degraded: %v / %q", res.Degraded, res.DegradedReason)
	}
}

func TestEvaluateCrossContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w := bertWorkload(1024)
	w.KVSeqLen = 2048
	_, err := EvaluateCrossContext(ctx, w, arch.Cloud(), FuseMax(), fastOpts())
	if !errors.Is(err, faults.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestEvaluateRejectsInvalidWorkload(t *testing.T) {
	w := bertWorkload(0)
	_, err := Evaluate(w, arch.Cloud(), TransFusion(), fastOpts())
	if !errors.Is(err, faults.ErrInvalidSpec) {
		t.Fatalf("err = %v, want ErrInvalidSpec", err)
	}
}
