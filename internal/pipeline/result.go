package pipeline

import (
	"fmt"

	"github.com/fusedmindlab/transfusion/internal/perf"
	"github.com/fusedmindlab/transfusion/internal/tiling"
)

// LayerKind indexes the four Transformer sub-layers for breakdowns.
type LayerKind int

const (
	LayerQKV LayerKind = iota
	LayerMHA
	LayerNorm
	LayerFFN
	numLayerKinds
)

// String names the sub-layer.
func (k LayerKind) String() string {
	switch k {
	case LayerQKV:
		return "QKV"
	case LayerMHA:
		return "MHA"
	case LayerNorm:
		return "Add&LayerNorm"
	case LayerFFN:
		return "FFN"
	default:
		return fmt.Sprintf("LayerKind(%d)", int(k))
	}
}

// LayerKinds lists the sub-layers in execution order.
func LayerKinds() []LayerKind {
	return []LayerKind{LayerQKV, LayerMHA, LayerNorm, LayerFFN}
}

// Phase is one rooflined execution phase: a group of scheduled Einsums plus
// its DRAM boundary traffic, repeated Instances times.
type Phase struct {
	// Name identifies the phase in traces ("kvproj", "mha", "layer", ...).
	Name string
	// ComputeCycles is the scheduled compute makespan per instance.
	ComputeCycles float64
	// DRAMBytes is the off-chip traffic per instance.
	DRAMBytes int64
	// Instances is the repeat count (batch elements x tiles x layers).
	Instances int64
	// Busy1D and Busy2D are per-instance busy cycles per array.
	Busy1D float64
	Busy2D float64
	// OnChip is the per-instance on-chip traffic and op counts.
	OnChip perf.Traffic
	// ComputeByLayer attributes the per-instance compute cycles to
	// sub-layers (used for the Figure 11 contribution breakdown).
	ComputeByLayer [numLayerKinds]float64
	// TimeCycles is the rooflined per-instance latency (max of compute and
	// DRAM streaming), filled in by the engine.
	TimeCycles float64
}

// Result is a complete system evaluation on one workload/architecture.
type Result struct {
	// System and Arch identify the evaluation.
	System string
	Arch   string
	// Workload echoes the evaluated workload.
	Workload Workload
	// Tile is the outer tile used.
	Tile tiling.Config
	// TotalCycles is the end-to-end modelled latency in cycles.
	TotalCycles float64
	// Seconds is TotalCycles under the architecture clock.
	Seconds float64
	// LayerCycles attributes total latency to the four sub-layers.
	LayerCycles [numLayerKinds]float64
	// Traffic aggregates all access counts.
	Traffic perf.Traffic
	// Energy is the priced traffic.
	Energy perf.Energy
	// Busy1D / Busy2D are total busy cycles per PE array.
	Busy1D float64
	Busy2D float64
	// Phases are the constituent phases (one layer's worth; all layers are
	// identical so the engine stores the per-layer phase list).
	Phases []Phase
	// TileSearchEvals counts objective evaluations spent by TileSeek (zero
	// for heuristic tiling).
	TileSearchEvals int
	// Degraded reports that the tile search did not complete cleanly (soft
	// timeout, enumeration budget, or no feasible configuration) and the
	// evaluation fell back to the static heuristic tile. The result is still
	// valid — it models the system under the fallback tile — but may be
	// pessimistic relative to a completed search.
	Degraded bool
	// DegradedReason says why, when Degraded is set.
	DegradedReason string
	// Plans records each sub-layer problem's winning schedule under the
	// final tile, keyed by problem name ("qproj", "kvproj", "mha", "ln",
	// "ffn"). Together with Tile it is everything a warm-started search for
	// a neighbouring workload needs (Options.WarmHint).
	Plans map[string]LayerPlan
}

// LayerPlan is one sub-layer's winning schedule: the phase order, the
// first-subgraph of the winning bipartition (empty when unpartitioned), and
// the epoch count it was planned for.
type LayerPlan struct {
	Order  []string
	First  []string
	Epochs int64
}

// WarmHint seeds the searches from a previously winning plan for a
// neighbouring workload: Tile warm-starts TileSeek (on a reduced rollout
// budget, with the hint consumed as the incumbent), Layers warm-starts each
// sub-layer's DPipe enumeration (hinted candidates lead the frontier and
// their makespan prunes the fan-out without changing the winner). Invalid or
// foreign entries are ignored, a warm evaluation is deterministic given the
// hint, and its objective is never worse than the hint's own.
type WarmHint struct {
	Tile   tiling.Config
	Layers map[string]LayerPlan
}

// Utilization1D is the 1D array's busy fraction of total latency.
func (r Result) Utilization1D() float64 {
	if r.TotalCycles == 0 {
		return 0
	}
	return r.Busy1D / r.TotalCycles
}

// Utilization2D is the 2D array's busy fraction of total latency.
func (r Result) Utilization2D() float64 {
	if r.TotalCycles == 0 {
		return 0
	}
	return r.Busy2D / r.TotalCycles
}

// Speedup returns baseline.TotalCycles / r.TotalCycles.
func (r Result) Speedup(baseline Result) float64 {
	if r.TotalCycles == 0 {
		return 0
	}
	return baseline.TotalCycles / r.TotalCycles
}

// EnergyRatio returns r's total energy relative to the baseline's.
func (r Result) EnergyRatio(baseline Result) float64 {
	if baseline.Energy.Total() == 0 {
		return 0
	}
	return r.Energy.Total() / baseline.Energy.Total()
}

// Contribution implements the paper's speedup-contribution attribution
// (Eqs. 47–48): for each sub-layer i, S_i = T_i^baseline / T_i^this, and the
// normalised contribution is S_i * T_i^baseline / sum_j S_j * T_j^baseline.
func (r Result) Contribution(baseline Result) [numLayerKinds]float64 {
	var s, weight [numLayerKinds]float64
	total := 0.0
	for i := 0; i < int(numLayerKinds); i++ {
		if r.LayerCycles[i] > 0 {
			s[i] = baseline.LayerCycles[i] / r.LayerCycles[i]
		}
		weight[i] = s[i] * baseline.LayerCycles[i]
		total += weight[i]
	}
	var out [numLayerKinds]float64
	if total == 0 {
		return out
	}
	for i := range out {
		out[i] = weight[i] / total
	}
	return out
}
