// Package einsum defines the Extended Einsum intermediate representation
// used throughout TransFusion. An Extended Einsum (Nayak et al., FuseMax)
// generalises classic tensor contraction notation with user-defined map and
// reduce operations, which is exactly what is needed to express streaming
// softmax, LayerNorm, and the other non-GEMM stages of a Transformer layer.
//
// An Einsum here is a single equation such as
//
//	BQK[h,m1,m0,p] = Q[h,e,p] * BK[h,e,m1,m0]      (multiply, sum over e)
//	LM[h,m1,p]     = max_{m0} BQK[h,m1,m0,p]        (identity map, max reduce)
//	SLN[h,m1,m0,p] = exp(BQK[h,m1,m0,p] - RM[h,p])  (binary map, no reduce)
//
// The IR carries everything the rest of the system needs:
//   - the functional semantics (Combine + Reduce), executed by internal/eval;
//   - the index structure, from which internal/perf derives the compute load
//     of Eq. 40 in the paper (product of output dims x reduction dims);
//   - an operation class (Class) that baseline dataflows use for their static
//     1D-array / 2D-array assignments.
package einsum

import (
	"fmt"
	"sort"
	"strings"
)

// ReduceOp identifies how values mapping to the same output coordinate are
// combined.
type ReduceOp int

const (
	// ReduceNone means the map output is stored directly; the Einsum must
	// then have no reduction indices.
	ReduceNone ReduceOp = iota
	// ReduceSum accumulates with addition (identity 0).
	ReduceSum
	// ReduceMax accumulates with max (identity -inf).
	ReduceMax
)

// String returns the reduction name.
func (r ReduceOp) String() string {
	switch r {
	case ReduceNone:
		return "none"
	case ReduceSum:
		return "sum"
	case ReduceMax:
		return "max"
	default:
		return fmt.Sprintf("ReduceOp(%d)", int(r))
	}
}

// Class is a coarse classification of the Einsum's arithmetic, used by the
// performance model and by the baselines' static PE-array assignments
// (GEMM-like contractions go to the 2D array, streaming vector work to the
// 1D array in all prior-work dataflows).
type Class int

const (
	// ClassContraction is a multiply-accumulate contraction (GEMM-like):
	// a multiplication map with a sum reduction over at least one index.
	ClassContraction Class = iota
	// ClassVector is elementwise/streaming map work (add, sub, mul by a
	// broadcast scalar, exp, division, ...), possibly with a reduction that
	// is not a MAC pattern (e.g. max or sum over an existing tensor).
	ClassVector
)

// String returns the class name.
func (c Class) String() string {
	if c == ClassContraction {
		return "contraction"
	}
	return "vector"
}

// CombineFunc merges one value from each input operand into the value fed to
// the reduction (or stored directly when ReduceNone).
type CombineFunc func(vals []float64) float64

// Arg is one input operand: the name of the tensor it reads and the index
// labels addressing it.
type Arg struct {
	Tensor string
	Idx    []string
}

// Einsum is a single Extended Einsum equation.
type Einsum struct {
	// Name is the output tensor name; it is also the node identity in the
	// computation DAG, so it must be unique within a cascade.
	Name string
	// OutIdx are the output index labels.
	OutIdx []string
	// Inputs are the operands. An operand whose index list omits some output
	// indices broadcasts along them (e.g. the per-token mean in LayerNorm).
	Inputs []Arg
	// Combine merges one scalar per input; nil means: single input identity,
	// or multiplication for exactly two inputs (classic einsum semantics).
	Combine CombineFunc
	// Reduce combines values across the reduction indices.
	Reduce ReduceOp
	// ClassHint overrides the inferred Class when set (>= 0). Use -1 to infer.
	ClassHint Class
	// combineIsMul records that the default product combine is in use; needed
	// for class inference when Combine is nil.
	combineIsMul bool
}

// New constructs an Einsum with the default combine semantics: identity for
// one input, product for two or more inputs, ReduceSum over any reduction
// indices (classic einsum), and inferred class.
func New(name string, out []string, inputs ...Arg) *Einsum {
	e := &Einsum{Name: name, OutIdx: out, Inputs: inputs, Reduce: ReduceSum, ClassHint: -1, combineIsMul: true}
	if len(e.ReductionIndices(nil)) == 0 {
		e.Reduce = ReduceNone
	}
	return e
}

// Map constructs a map-only Einsum (no reduction) with an explicit combine
// function; it is classified as vector work.
func Map(name string, out []string, combine CombineFunc, inputs ...Arg) *Einsum {
	return &Einsum{Name: name, OutIdx: out, Inputs: inputs, Combine: combine, Reduce: ReduceNone, ClassHint: ClassVector}
}

// Reduction constructs a reduce Einsum with the identity map over a single
// input; classified as vector work (streaming reductions run on the 1D array
// in the baseline dataflows).
func Reduction(name string, out []string, op ReduceOp, input Arg) *Einsum {
	return &Einsum{Name: name, OutIdx: out, Inputs: []Arg{input}, Reduce: op, ClassHint: ClassVector}
}

// In builds an Arg; a convenience for cascade definitions.
func In(tensor string, idx ...string) Arg { return Arg{Tensor: tensor, Idx: idx} }

// Class returns the operation class: ClassContraction for a product map with
// a sum reduction (a MAC pattern), ClassVector otherwise, unless overridden
// by ClassHint.
func (e *Einsum) Class() Class {
	if e.ClassHint >= 0 {
		return e.ClassHint
	}
	if e.combineIsMul && len(e.Inputs) >= 2 && e.Reduce == ReduceSum && len(e.ReductionIndices(nil)) > 0 {
		return ClassContraction
	}
	return ClassVector
}

// InputTensors returns the distinct tensor names read by this Einsum, in
// first-appearance order.
func (e *Einsum) InputTensors() []string {
	seen := make(map[string]bool, len(e.Inputs))
	var names []string
	for _, in := range e.Inputs {
		if !seen[in.Tensor] {
			seen[in.Tensor] = true
			names = append(names, in.Tensor)
		}
	}
	return names
}

// AllIndices returns the union of output and input index labels, sorted.
func (e *Einsum) AllIndices() []string {
	set := make(map[string]bool)
	for _, i := range e.OutIdx {
		set[i] = true
	}
	for _, in := range e.Inputs {
		for _, i := range in.Idx {
			set[i] = true
		}
	}
	out := make([]string, 0, len(set))
	for i := range set {
		out = append(out, i)
	}
	sort.Strings(out)
	return out
}

// ReductionIndices returns the index labels that appear in at least one
// input but not in the output — the dimensions reduced over. The env
// argument is unused for the label computation and may be nil; it is
// accepted so call sites mirror ComputeLoad.
func (e *Einsum) ReductionIndices(_ map[string]int) []string {
	outSet := make(map[string]bool, len(e.OutIdx))
	for _, i := range e.OutIdx {
		outSet[i] = true
	}
	set := make(map[string]bool)
	for _, in := range e.Inputs {
		for _, i := range in.Idx {
			if !outSet[i] {
				set[i] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for i := range set {
		out = append(out, i)
	}
	sort.Strings(out)
	return out
}

// Validate checks structural well-formedness against a dimension-size
// environment: every index label must have a positive size in env, every
// output index must be produced by some input (no free output indices), and
// ReduceNone Einsums must have no reduction indices.
func (e *Einsum) Validate(env map[string]int) error {
	if e.Name == "" {
		return fmt.Errorf("einsum: empty name")
	}
	if len(e.Inputs) == 0 {
		return fmt.Errorf("einsum %s: no inputs", e.Name)
	}
	inSet := make(map[string]bool)
	for _, in := range e.Inputs {
		for _, i := range in.Idx {
			inSet[i] = true
		}
	}
	for _, i := range e.OutIdx {
		if !inSet[i] {
			return fmt.Errorf("einsum %s: output index %q not present in any input", e.Name, i)
		}
	}
	for _, i := range e.AllIndices() {
		size, ok := env[i]
		if !ok {
			return fmt.Errorf("einsum %s: index %q has no size in environment", e.Name, i)
		}
		if size <= 0 {
			return fmt.Errorf("einsum %s: index %q has non-positive size %d", e.Name, i, size)
		}
	}
	if e.Reduce == ReduceNone && len(e.ReductionIndices(nil)) > 0 {
		return fmt.Errorf("einsum %s: ReduceNone with reduction indices %v", e.Name, e.ReductionIndices(nil))
	}
	if e.Combine == nil && !e.combineIsMul && len(e.Inputs) > 1 {
		return fmt.Errorf("einsum %s: multiple inputs but no combine function", e.Name)
	}
	return nil
}

// OutputSize returns the number of output elements under env.
func (e *Einsum) OutputSize(env map[string]int) int64 {
	return indexProduct(e.OutIdx, env)
}

// ComputeLoad implements Eq. 40 of the paper: the number of scalar map
// operations, computed as the product of the output dimension extents times
// the product of the reduction dimension extents.
func (e *Einsum) ComputeLoad(env map[string]int) int64 {
	return indexProduct(e.OutIdx, env) * indexProduct(e.ReductionIndices(nil), env)
}

func indexProduct(idx []string, env map[string]int) int64 {
	p := int64(1)
	for _, i := range idx {
		size, ok := env[i]
		if !ok {
			panic(fmt.Sprintf("einsum: index %q has no size in environment", i))
		}
		p *= int64(size)
	}
	return p
}

// CombineValue applies the Einsum's map stage to one scalar per input.
func (e *Einsum) CombineValue(vals []float64) float64 {
	if e.Combine != nil {
		return e.Combine(vals)
	}
	// Default semantics: identity for a single input, product otherwise.
	prod := vals[0]
	for _, v := range vals[1:] {
		prod *= v
	}
	return prod
}

// String renders the equation in extended-einsum notation, e.g.
// "BQK[h,m1,m0,p] = Q[h,e,p], BK[h,e,m1,m0] :: sum(e)".
func (e *Einsum) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s[%s] =", e.Name, strings.Join(e.OutIdx, ","))
	for i, in := range e.Inputs {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, " %s[%s]", in.Tensor, strings.Join(in.Idx, ","))
	}
	if red := e.ReductionIndices(nil); len(red) > 0 {
		fmt.Fprintf(&b, " :: %s(%s)", e.Reduce, strings.Join(red, ","))
	}
	return b.String()
}
