package einsum

import (
	"fmt"
	"strings"

	"github.com/fusedmindlab/transfusion/internal/faults"
)

// Parse builds a classic (product/sum) Einsum from a compact spec of the form
//
//	"OUT = A[h,e,p] * B[h,e,m1,m0] -> [h,m1,m0,p]"
//
// i.e. an output name, one or more bracketed operands separated by '*', and
// the output index list after '->'. Whitespace is insignificant. Parse covers
// only the contraction form; map/reduce Einsums with custom semantics are
// built with the Map and Reduction constructors.
//
// Parse rejects structurally invalid specs — duplicate output indices, free
// output indices not carried by any operand, duplicate labels within one
// operand — with errors matching faults.ErrInvalidSpec, so a parsed Einsum
// can always be evaluated or costed without panicking downstream.
func Parse(spec string) (*Einsum, error) {
	eq := strings.SplitN(spec, "=", 2)
	if len(eq) != 2 {
		return nil, faults.Invalidf("einsum: parse %q: missing '='", spec)
	}
	name := strings.TrimSpace(eq[0])
	if !validToken(name) {
		return nil, faults.Invalidf("einsum: parse %q: invalid output name %q", spec, name)
	}
	body := strings.SplitN(eq[1], "->", 2)
	if len(body) != 2 {
		return nil, faults.Invalidf("einsum: parse %q: missing '->'", spec)
	}
	outIdx, err := parseIndexList(strings.TrimSpace(body[1]))
	if err != nil {
		return nil, faults.Invalidf("einsum: parse %q: output indices: %v", spec, err)
	}
	if dup := firstDuplicate(outIdx); dup != "" {
		return nil, faults.Invalidf("einsum: parse %q: duplicate output index %q", spec, dup)
	}
	var inputs []Arg
	for _, part := range strings.Split(body[0], "*") {
		part = strings.TrimSpace(part)
		open := strings.Index(part, "[")
		if open <= 0 || !strings.HasSuffix(part, "]") {
			return nil, faults.Invalidf("einsum: parse %q: malformed operand %q", spec, part)
		}
		idx, err := parseIndexList(part[open:])
		if err != nil {
			return nil, faults.Invalidf("einsum: parse %q: operand %q: %v", spec, part, err)
		}
		if dup := firstDuplicate(idx); dup != "" {
			return nil, faults.Invalidf("einsum: parse %q: operand %q repeats index %q", spec, part, dup)
		}
		tensor := strings.TrimSpace(part[:open])
		if !validToken(tensor) {
			return nil, faults.Invalidf("einsum: parse %q: operand %q has no valid tensor name", spec, part)
		}
		inputs = append(inputs, Arg{Tensor: tensor, Idx: idx})
	}
	if len(inputs) == 0 {
		return nil, faults.Invalidf("einsum: parse %q: no operands", spec)
	}
	inSet := make(map[string]bool)
	for _, in := range inputs {
		for _, i := range in.Idx {
			inSet[i] = true
		}
	}
	for _, i := range outIdx {
		if !inSet[i] {
			return nil, faults.Invalidf("einsum: parse %q: output index %q not present in any operand", spec, i)
		}
	}
	return New(name, outIdx, inputs...), nil
}

// validToken reports whether s can serve as a tensor name or index label:
// non-empty, and free of the spec's structural characters (brackets,
// separators, operators) and of whitespace.
func validToken(s string) bool {
	if s == "" {
		return false
	}
	return !strings.ContainsAny(s, "[]*,=<> \t\r\n")
}

// firstDuplicate returns the first label appearing more than once, or "".
func firstDuplicate(labels []string) string {
	seen := make(map[string]bool, len(labels))
	for _, l := range labels {
		if seen[l] {
			return l
		}
		seen[l] = true
	}
	return ""
}

func parseIndexList(s string) ([]string, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return nil, fmt.Errorf("index list %q not bracketed", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	if inner == "" {
		return nil, nil
	}
	parts := strings.Split(inner, ",")
	idx := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if !validToken(p) {
			return nil, fmt.Errorf("invalid index label %q in %q", p, s)
		}
		idx = append(idx, p)
	}
	return idx, nil
}
