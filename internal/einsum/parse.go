package einsum

import (
	"fmt"
	"strings"
)

// Parse builds a classic (product/sum) Einsum from a compact spec of the form
//
//	"OUT = A[h,e,p] * B[h,e,m1,m0] -> [h,m1,m0,p]"
//
// i.e. an output name, one or more bracketed operands separated by '*', and
// the output index list after '->'. Whitespace is insignificant. Parse covers
// only the contraction form; map/reduce Einsums with custom semantics are
// built with the Map and Reduction constructors.
func Parse(spec string) (*Einsum, error) {
	eq := strings.SplitN(spec, "=", 2)
	if len(eq) != 2 {
		return nil, fmt.Errorf("einsum: parse %q: missing '='", spec)
	}
	name := strings.TrimSpace(eq[0])
	if name == "" {
		return nil, fmt.Errorf("einsum: parse %q: empty output name", spec)
	}
	body := strings.SplitN(eq[1], "->", 2)
	if len(body) != 2 {
		return nil, fmt.Errorf("einsum: parse %q: missing '->'", spec)
	}
	outIdx, err := parseIndexList(strings.TrimSpace(body[1]))
	if err != nil {
		return nil, fmt.Errorf("einsum: parse %q: output indices: %w", spec, err)
	}
	var inputs []Arg
	for _, part := range strings.Split(body[0], "*") {
		part = strings.TrimSpace(part)
		open := strings.Index(part, "[")
		if open <= 0 || !strings.HasSuffix(part, "]") {
			return nil, fmt.Errorf("einsum: parse %q: malformed operand %q", spec, part)
		}
		idx, err := parseIndexList(part[open:])
		if err != nil {
			return nil, fmt.Errorf("einsum: parse %q: operand %q: %w", spec, part, err)
		}
		inputs = append(inputs, Arg{Tensor: strings.TrimSpace(part[:open]), Idx: idx})
	}
	if len(inputs) == 0 {
		return nil, fmt.Errorf("einsum: parse %q: no operands", spec)
	}
	return New(name, outIdx, inputs...), nil
}

// MustParse is Parse that panics on error; for tests and static definitions.
func MustParse(spec string) *Einsum {
	e, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return e
}

func parseIndexList(s string) ([]string, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return nil, fmt.Errorf("index list %q not bracketed", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	if inner == "" {
		return nil, nil
	}
	parts := strings.Split(inner, ",")
	idx := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("empty index label in %q", s)
		}
		idx = append(idx, p)
	}
	return idx, nil
}
