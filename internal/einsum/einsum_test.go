package einsum

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/fusedmindlab/transfusion/internal/faults"
)

func env(pairs ...interface{}) map[string]int {
	m := make(map[string]int)
	for i := 0; i < len(pairs); i += 2 {
		m[pairs[i].(string)] = pairs[i+1].(int)
	}
	return m
}

func TestNewMatmulStructure(t *testing.T) {
	e := New("C", []string{"m", "n"}, In("A", "m", "k"), In("B", "k", "n"))
	if got := e.ReductionIndices(nil); len(got) != 1 || got[0] != "k" {
		t.Fatalf("reduction indices = %v, want [k]", got)
	}
	if e.Reduce != ReduceSum {
		t.Fatalf("Reduce = %v, want sum", e.Reduce)
	}
	if e.Class() != ClassContraction {
		t.Fatalf("Class = %v, want contraction", e.Class())
	}
}

func TestNewElementwiseHasNoReduce(t *testing.T) {
	e := New("Y", []string{"p"}, In("X", "p"))
	if e.Reduce != ReduceNone {
		t.Fatalf("Reduce = %v, want none", e.Reduce)
	}
	if e.Class() != ClassVector {
		t.Fatalf("Class = %v, want vector", e.Class())
	}
}

func TestComputeLoadMatchesEq40(t *testing.T) {
	// Matmul m x k x n: load = m*n (output) * k (reduction).
	e := New("C", []string{"m", "n"}, In("A", "m", "k"), In("B", "k", "n"))
	en := env("m", 4, "n", 5, "k", 7)
	if got := e.ComputeLoad(en); got != 4*5*7 {
		t.Fatalf("ComputeLoad = %d, want %d", got, 4*5*7)
	}
	if got := e.OutputSize(en); got != 20 {
		t.Fatalf("OutputSize = %d, want 20", got)
	}
}

func TestComputeLoadElementwise(t *testing.T) {
	e := Map("Y", []string{"h", "p"}, Add2, In("A", "h", "p"), In("B", "h", "p"))
	if got := e.ComputeLoad(env("h", 3, "p", 11)); got != 33 {
		t.Fatalf("ComputeLoad = %d, want 33", got)
	}
}

func TestComputeLoadBroadcastInput(t *testing.T) {
	// DAV[h,f,p] = IAV[h,f,p] - MAV[p]: broadcast along h,f; no reduction.
	e := Map("DAV", []string{"h", "f", "p"}, Sub2, In("IAV", "h", "f", "p"), In("MAV", "p"))
	if got := len(e.ReductionIndices(nil)); got != 0 {
		t.Fatalf("reduction indices = %d, want 0", got)
	}
	if got := e.ComputeLoad(env("h", 2, "f", 3, "p", 5)); got != 30 {
		t.Fatalf("ComputeLoad = %d, want 30", got)
	}
}

func TestReductionConstructor(t *testing.T) {
	e := Reduction("LM", []string{"h", "m1", "p"}, ReduceMax, In("BQK", "h", "m1", "m0", "p"))
	if got := e.ReductionIndices(nil); len(got) != 1 || got[0] != "m0" {
		t.Fatalf("reduction indices = %v, want [m0]", got)
	}
	if e.Class() != ClassVector {
		t.Fatalf("Class = %v, want vector", e.Class())
	}
	if got := e.ComputeLoad(env("h", 2, "m1", 3, "m0", 4, "p", 5)); got != 2*3*4*5 {
		t.Fatalf("ComputeLoad = %d", got)
	}
}

func TestValidate(t *testing.T) {
	good := New("C", []string{"m", "n"}, In("A", "m", "k"), In("B", "k", "n"))
	if err := good.Validate(env("m", 2, "n", 3, "k", 4)); err != nil {
		t.Fatalf("Validate(good) = %v", err)
	}
	// Missing size for k.
	if err := good.Validate(env("m", 2, "n", 3)); err == nil {
		t.Fatal("Validate with missing index size succeeded")
	}
	// Free output index.
	bad := New("C", []string{"m", "z"}, In("A", "m", "k"))
	if err := bad.Validate(env("m", 2, "k", 3, "z", 4)); err == nil {
		t.Fatal("Validate with free output index succeeded")
	}
	// ReduceNone with reduction indices.
	bad2 := Map("Y", []string{"m"}, Identity, In("A", "m", "k"))
	if err := bad2.Validate(env("m", 2, "k", 3)); err == nil {
		t.Fatal("Validate ReduceNone-with-reduction succeeded")
	}
	// Non-positive size.
	if err := good.Validate(env("m", 2, "n", 0, "k", 4)); err == nil {
		t.Fatal("Validate with zero-size index succeeded")
	}
}

func TestCombineValueDefaults(t *testing.T) {
	one := New("Y", []string{"p"}, In("X", "p"))
	if got := one.CombineValue([]float64{3}); got != 3 {
		t.Fatalf("identity combine = %v", got)
	}
	two := New("C", []string{"m"}, In("A", "m", "k"), In("B", "k"))
	if got := two.CombineValue([]float64{3, 4}); got != 12 {
		t.Fatalf("product combine = %v", got)
	}
	three := New("C", []string{"m"}, In("A", "m"), In("B", "m"), In("D", "m"))
	if got := three.CombineValue([]float64{2, 3, 4}); got != 24 {
		t.Fatalf("3-way product combine = %v", got)
	}
}

func TestInputTensorsDeduped(t *testing.T) {
	// QAV = DAV * DAV reads the same tensor twice.
	e := Map("QAV", []string{"p"}, Square, In("DAV", "p"), In("DAV", "p"))
	if got := e.InputTensors(); len(got) != 1 || got[0] != "DAV" {
		t.Fatalf("InputTensors = %v, want [DAV]", got)
	}
}

func TestString(t *testing.T) {
	e := New("BQK", []string{"h", "m1", "m0", "p"}, In("Q", "h", "e", "p"), In("BK", "h", "e", "m1", "m0"))
	s := e.String()
	for _, want := range []string{"BQK[h,m1,m0,p]", "Q[h,e,p]", "BK[h,e,m1,m0]", "sum(e)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	e, err := Parse("BQK = Q[h,e,p] * BK[h,e,m1,m0] -> [h,m1,m0,p]")
	if err != nil {
		t.Fatal(err)
	}
	if e.Name != "BQK" || len(e.Inputs) != 2 {
		t.Fatalf("parsed %+v", e)
	}
	if got := e.ReductionIndices(nil); len(got) != 1 || got[0] != "e" {
		t.Fatalf("reduction = %v", got)
	}
	if e.Class() != ClassContraction {
		t.Fatalf("Class = %v", e.Class())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"no equals sign",
		"C = A[m,k] * B[k,n]", // no arrow
		"= A[m] -> [m]",       // empty name
		"C = Am,k] -> [m]",    // malformed operand
		"C = A[m,,k] -> [m]",  // empty index
		"C = [m,k] -> [m]",    // operand with no tensor name
		"C =  -> [m]",         // no operands
		"C = A[m] -> m",       // unbracketed output
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestParseErrorsAreTyped(t *testing.T) {
	for _, spec := range []string{
		"garbage",
		"C = A[i,i] * B[i] -> [i]", // repeated label within one operand
		"C = A[m] * B[m] -> [m,m]", // duplicate output index
		"C = A[m] * B[m] -> [m,q]", // free output index
		" [x] = A[x] -> [x]",       // empty output name
	} {
		_, err := Parse(spec)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
			continue
		}
		if !errors.Is(err, faults.ErrInvalidSpec) {
			t.Errorf("Parse(%q) error %v does not match faults.ErrInvalidSpec", spec, err)
		}
	}
}

func TestCombineHelpers(t *testing.T) {
	cases := []struct {
		name string
		f    CombineFunc
		in   []float64
		want float64
	}{
		{"Add2", Add2, []float64{2, 3}, 5},
		{"Sub2", Sub2, []float64{2, 3}, -1},
		{"Mul2", Mul2, []float64{2, 3}, 6},
		{"Div2", Div2, []float64{6, 3}, 2},
		{"Max2", Max2, []float64{2, 3}, 3},
		{"ExpSub", ExpSub, []float64{1, 1}, 1},
		{"Square", Square, []float64{3}, 9},
		{"Identity", Identity, []float64{7}, 7},
		{"Scale", Scale(0.5), []float64{8}, 4},
		{"MulAdd3", MulAdd3, []float64{2, 3, 4}, 10},
		{"ReLU neg", ReLU, []float64{-2}, 0},
		{"ReLU pos", ReLU, []float64{2}, 2},
	}
	for _, c := range cases {
		if got := c.f(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s(%v) = %v, want %v", c.name, c.in, got, c.want)
		}
	}
	if got := RSqrt([]float64{4}); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("RSqrt(4) = %v, want 0.5", got)
	}
	// GeLU and SiLU sanity: f(0)=0, monotone-ish around 0, f(x)≈x for large x.
	for _, f := range []CombineFunc{GeLU, SiLU} {
		if got := f([]float64{0}); math.Abs(got) > 1e-12 {
			t.Errorf("activation(0) = %v, want 0", got)
		}
		if got := f([]float64{10}); math.Abs(got-10) > 1e-3 {
			t.Errorf("activation(10) = %v, want ~10", got)
		}
		if got := f([]float64{-10}); math.Abs(got) > 1e-3 {
			t.Errorf("activation(-10) = %v, want ~0", got)
		}
	}
	if ActivationByName("gelu")([]float64{1}) == ActivationByName("relu")([]float64{1}) {
		t.Error("gelu and relu indistinguishable at x=1")
	}
	if got := ActivationByName("unknown")([]float64{-3}); got != 0 {
		t.Errorf("unknown activation fallback = %v, want ReLU semantics (0)", got)
	}
}

// Property (Eq. 40): ComputeLoad is multiplicative in every dimension extent.
func TestQuickComputeLoadMultiplicative(t *testing.T) {
	f := func(m, n, k uint8) bool {
		mm, nn, kk := int(m%16)+1, int(n%16)+1, int(k%16)+1
		e := New("C", []string{"m", "n"}, In("A", "m", "k"), In("B", "k", "n"))
		base := e.ComputeLoad(env("m", mm, "n", nn, "k", kk))
		doubled := e.ComputeLoad(env("m", 2*mm, "n", nn, "k", kk))
		return doubled == 2*base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: reduction indices and output indices partition the inputs' index
// set (every input index is either an output index or a reduction index).
func TestQuickIndexPartition(t *testing.T) {
	e := New("C", []string{"m", "n"}, In("A", "m", "k"), In("B", "k", "n", "j"))
	out := make(map[string]bool)
	for _, i := range e.OutIdx {
		out[i] = true
	}
	red := make(map[string]bool)
	for _, i := range e.ReductionIndices(nil) {
		red[i] = true
	}
	for _, i := range e.AllIndices() {
		if out[i] == red[i] {
			t.Fatalf("index %q: out=%v red=%v — not a partition", i, out[i], red[i])
		}
	}
}
