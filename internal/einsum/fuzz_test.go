package einsum

import (
	"errors"
	"testing"

	"github.com/fusedmindlab/transfusion/internal/faults"
)

// FuzzParse asserts Parse never panics on arbitrary input, classifies every
// rejection as ErrInvalidSpec, and that every accepted spec yields an Einsum
// that validates and can be costed without panicking.
func FuzzParse(f *testing.F) {
	f.Add("C = A[m,k] * B[k,n] -> [m,n]")
	f.Add("OUT = A[h,e,p] * B[h,e,m1,m0] -> [h,m1,m0,p]")
	f.Add("C = A[i,i] -> [i]")
	f.Add("C = A[m] -> [m,m]")
	f.Add("garbage")
	f.Add("= [] -> []")
	f.Add("C = A[] -> []")
	f.Add("C = [m] -> [m]")
	f.Add("C = A[m] * -> [m]")
	f.Add("x=y[,]->[,]")
	f.Fuzz(func(t *testing.T, spec string) {
		e, err := Parse(spec)
		if err != nil {
			if !errors.Is(err, faults.ErrInvalidSpec) {
				t.Fatalf("Parse(%q) rejection %v does not match ErrInvalidSpec", spec, err)
			}
			return
		}
		// An accepted Einsum must be self-consistent: build a size
		// environment covering every index and exercise the paths the
		// pipeline uses (Validate, Class, ComputeLoad, String).
		env := make(map[string]int)
		for _, idx := range e.AllIndices() {
			env[idx] = 2
		}
		if verr := e.Validate(env); verr != nil {
			t.Fatalf("Parse(%q) accepted but Validate failed: %v", spec, verr)
		}
		_ = e.Class()
		_ = e.ComputeLoad(env)
		_ = e.OutputSize(env)
		_ = e.String()
	})
}
