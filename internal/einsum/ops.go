package einsum

import "math"

// Common combine functions used by the Transformer cascades. Each takes one
// scalar per input operand in declaration order.

// Add2 returns vals[0] + vals[1].
func Add2(vals []float64) float64 { return vals[0] + vals[1] }

// Sub2 returns vals[0] - vals[1].
func Sub2(vals []float64) float64 { return vals[0] - vals[1] }

// Mul2 returns vals[0] * vals[1].
func Mul2(vals []float64) float64 { return vals[0] * vals[1] }

// Div2 returns vals[0] / vals[1].
func Div2(vals []float64) float64 { return vals[0] / vals[1] }

// Max2 returns max(vals[0], vals[1]); used for the running-max update.
func Max2(vals []float64) float64 { return math.Max(vals[0], vals[1]) }

// ExpSub returns exp(vals[0] - vals[1]); the shifted-exponential map of the
// numerically stable streaming softmax.
func ExpSub(vals []float64) float64 { return math.Exp(vals[0] - vals[1]) }

// Square returns vals[0]^2; used by the LayerNorm variance computation.
func Square(vals []float64) float64 { return vals[0] * vals[0] }

// Identity returns vals[0].
func Identity(vals []float64) float64 { return vals[0] }

// RSqrt returns 1/sqrt(vals[0]); the LayerNorm normalisation factor. A small
// epsilon guards against zero variance exactly as hardware LayerNorm units do.
func RSqrt(vals []float64) float64 { return 1 / math.Sqrt(vals[0]+layerNormEps) }

const layerNormEps = 1e-12

// Scale returns a combine function multiplying the single input by k; used
// for the 1/(H*F) mean scaling.
func Scale(k float64) CombineFunc {
	return func(vals []float64) float64 { return vals[0] * k }
}

// MulAdd3 returns vals[0]*vals[1] + vals[2]; not used by the cascades (bias
// addition is modelled as a separate Einsum) but exported for extensions.
func MulAdd3(vals []float64) float64 { return vals[0]*vals[1] + vals[2] }

// Activation functions for the FFN cascade (Eq. 38). The paper lists ReLU,
// GeLU, and SiLU as common choices.

// ReLU is max(0, x).
func ReLU(vals []float64) float64 { return math.Max(0, vals[0]) }

// GeLU is the Gaussian Error Linear Unit (tanh approximation, as deployed in
// BERT-class accelerators).
func GeLU(vals []float64) float64 {
	x := vals[0]
	return 0.5 * x * (1 + math.Tanh(math.Sqrt(2/math.Pi)*(x+0.044715*x*x*x)))
}

// SiLU is x * sigmoid(x) (the Llama-family activation).
func SiLU(vals []float64) float64 {
	x := vals[0]
	return x / (1 + math.Exp(-x))
}

// ActivationByName resolves an activation combine function from its model-zoo
// name; unknown names fall back to ReLU.
func ActivationByName(name string) CombineFunc {
	switch name {
	case "gelu":
		return GeLU
	case "silu":
		return SiLU
	default:
		return ReLU
	}
}
