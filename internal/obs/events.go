package obs

import "time"

// Event is a typed progress notification streamed from the search and
// evaluation layers to a caller-supplied hook. Events are small value
// structs; they are only boxed into this interface when a hook is actually
// installed, so the unset path allocates nothing.
type Event interface {
	// Kind returns a stable machine-readable discriminator
	// ("phase_start", "rollout", ...).
	Kind() string
}

// ProgressFunc receives events. Hooks run synchronously on the evaluating
// goroutine and must be fast; a nil ProgressFunc means "nobody listening".
//
// Hot loops must guard emission with an explicit nil check
// (`if hook != nil { hook(ev) }`) rather than calling Emit, so the event is
// never constructed or boxed when unset.
type ProgressFunc func(Event)

// Emit calls the hook if one is set. Convenience for cold paths; hot loops
// should nil-check inline (see type doc).
func (f ProgressFunc) Emit(e Event) {
	if f != nil {
		f(e)
	}
}

// PhaseStart marks entry into a named evaluation phase ("tileseek",
// "schedule", ...).
type PhaseStart struct {
	// Phase names the phase.
	Phase string
}

// Kind implements Event.
func (PhaseStart) Kind() string { return "phase_start" }

// PhaseEnd marks completion of a named phase with its wall-clock duration.
type PhaseEnd struct {
	Phase    string
	Duration time.Duration
}

// Kind implements Event.
func (PhaseEnd) Kind() string { return "phase_end" }

// RolloutDone reports one completed TileSeek MCTS rollout.
type RolloutDone struct {
	// Iteration is the 1-based rollout index; Budget the total budget.
	Iteration int
	Budget    int
	// BestCost is the best objective value found so far (+Inf before the
	// first feasible evaluation); Found reports whether any feasible
	// configuration has been seen.
	BestCost float64
	Found    bool
	// Visits is the root node's visit count (== completed rollouts).
	Visits int
}

// Kind implements Event.
func (RolloutDone) Kind() string { return "rollout" }

// EnumerationProgress reports one completed DPipe bipartition enumeration.
type EnumerationProgress struct {
	// Problem names the scheduled sub-layer.
	Problem string
	// Examined counts candidate subsets scanned; Budget is the enumeration
	// cap (0 = unbounded).
	Examined int
	Budget   int
	// Bipartitions is the number of valid bipartitions kept; Candidates the
	// number of (bipartition, order) schedules that will be evaluated.
	Bipartitions int
	Candidates   int
}

// Kind implements Event.
func (EnumerationProgress) Kind() string { return "enumeration" }

// Degraded reports that an evaluation fell back to the heuristic tile.
type Degraded struct {
	// Reason is the human-readable degradation cause.
	Reason string
}

// Kind implements Event.
func (Degraded) Kind() string { return "degraded" }
