package obs

import (
	"encoding/json"
	"io"
)

// TraceEvent is one entry of the Chrome trace_event format (the JSON-array
// flavour), as consumed by chrome://tracing and Perfetto. Only the fields
// the viewers require are modelled: complete events ("X") with microsecond
// timestamps and durations, and metadata events ("M") naming processes and
// threads.
type TraceEvent struct {
	Name string `json:"name"`
	// Phase is the event type: "X" complete, "M" metadata.
	Phase string `json:"ph"`
	// Ts is the start timestamp and Dur the duration, both in microseconds.
	// The schedule exporters map one modelled cycle to one microsecond.
	Ts  float64 `json:"ts"`
	Dur float64 `json:"dur"`
	Pid int     `json:"pid"`
	Tid int     `json:"tid"`
	// Args carries event-specific key/values shown in the viewer's detail
	// pane (and the process/thread name for metadata events).
	Args map[string]interface{} `json:"args,omitempty"`
}

// Complete builds a complete ("X") event.
func Complete(name string, ts, dur float64, pid, tid int) TraceEvent {
	return TraceEvent{Name: name, Phase: "X", Ts: ts, Dur: dur, Pid: pid, Tid: tid}
}

// ProcessName builds the metadata event labelling a pid in the viewer.
func ProcessName(pid int, name string) TraceEvent {
	return TraceEvent{Name: "process_name", Phase: "M", Pid: pid,
		Args: map[string]interface{}{"name": name}}
}

// ThreadName builds the metadata event labelling a (pid, tid) lane.
func ThreadName(pid, tid int, name string) TraceEvent {
	return TraceEvent{Name: "thread_name", Phase: "M", Pid: pid, Tid: tid,
		Args: map[string]interface{}{"name": name}}
}

// WriteChromeTrace writes the events as a Chrome trace_event JSON array —
// the exact document chrome://tracing's "Load" button and Perfetto's
// legacy-trace importer accept.
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	if events == nil {
		events = []TraceEvent{} // an empty trace is still an array, not null
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(events)
}

// MarshalChromeTrace renders the events as a Chrome trace_event JSON array.
func MarshalChromeTrace(events []TraceEvent) ([]byte, error) {
	if events == nil {
		events = []TraceEvent{}
	}
	return json.MarshalIndent(events, "", " ")
}
