package obs

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"testing"
)

func TestLoggerRoundTrip(t *testing.T) {
	ctx := context.Background()
	if lg := LoggerFrom(ctx); lg == nil {
		t.Fatal("LoggerFrom returned nil on a bare context")
	}
	var buf bytes.Buffer
	lg := NewLogger(&buf, slog.LevelInfo, false)
	ctx = WithLogger(ctx, lg)
	LoggerFrom(ctx).Info("hello", "k", 1)
	if !strings.Contains(buf.String(), "hello") || !strings.Contains(buf.String(), "k=1") {
		t.Fatalf("log line = %q", buf.String())
	}
	// nil restores the disabled default.
	ctx = WithLogger(ctx, nil)
	if LoggerFrom(ctx).Enabled(ctx, slog.LevelError) {
		t.Fatal("nil-restored logger still enabled")
	}
}

func TestNewLoggerJSON(t *testing.T) {
	var buf bytes.Buffer
	NewLogger(&buf, slog.LevelWarn, true).Warn("boom", "n", 2)
	line := buf.String()
	if !strings.HasPrefix(line, "{") || !strings.Contains(line, `"msg":"boom"`) {
		t.Fatalf("JSON log line = %q", line)
	}
}

func TestMetricsRoundTrip(t *testing.T) {
	ctx := context.Background()
	if MetricsFrom(ctx) != nil {
		t.Fatal("MetricsFrom non-nil on bare context")
	}
	r := NewRegistry()
	ctx = WithMetrics(ctx, r)
	MetricsFrom(ctx).Counter("x").Inc()
	if r.Counter("x").Value() != 1 {
		t.Fatal("registry not threaded through the context")
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "INFO": slog.LevelInfo,
		"Warn": slog.LevelWarn, "warning": slog.LevelWarn, "error": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("bogus level accepted")
	}
}

// The unconfigured paths must not allocate: hot loops increment nil
// instruments, consult the disabled logger, and skip nil hooks on every
// rollout and DP cell.
func TestUnconfiguredPathsDoNotAllocate(t *testing.T) {
	ctx := context.Background()

	var nilReg *Registry
	c := nilReg.Counter("x")
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		nilReg.Gauge("g").Set(1)
		nilReg.Histogram("h", nil).Observe(2)
	}); n != 0 {
		t.Fatalf("nil instruments allocate: %v allocs/op", n)
	}

	lg := LoggerFrom(ctx)
	if n := testing.AllocsPerRun(100, func() {
		if lg.Enabled(ctx, slog.LevelDebug) {
			lg.Debug("never", "k", 1)
		}
	}); n != 0 {
		t.Fatalf("disabled logger guard allocates: %v allocs/op", n)
	}

	// The call-site idiom for progress hooks: with a nil hook the event
	// struct must never be constructed or boxed.
	var hook ProgressFunc
	best := 12.5
	if n := testing.AllocsPerRun(100, func() {
		if hook != nil {
			hook(RolloutDone{Iteration: 1, Budget: 2, BestCost: best, Found: true, Visits: 3})
		}
	}); n != 0 {
		t.Fatalf("nil hook guard allocates: %v allocs/op", n)
	}
}

func TestConfiguredCounterDoesNotAllocate(t *testing.T) {
	// Even with a live registry, increments on a hoisted counter are
	// allocation-free — only the name lookup pays.
	c := NewRegistry().Counter("hot")
	if n := testing.AllocsPerRun(100, func() { c.Inc() }); n != 0 {
		t.Fatalf("live counter allocates: %v allocs/op", n)
	}
}

func TestEmitNilSafe(t *testing.T) {
	var hook ProgressFunc
	hook.Emit(PhaseStart{Phase: "x"}) // must not panic
	var got Event
	hook = func(ev Event) { got = ev }
	hook.Emit(PhaseStart{Phase: "y"})
	if got == nil || got.Kind() != "phase_start" {
		t.Fatalf("emitted event = %#v", got)
	}
}

func TestEventKinds(t *testing.T) {
	for _, tc := range []struct {
		ev   Event
		kind string
	}{
		{PhaseStart{}, "phase_start"},
		{PhaseEnd{}, "phase_end"},
		{RolloutDone{}, "rollout"},
		{EnumerationProgress{}, "enumeration"},
		{Degraded{}, "degraded"},
	} {
		if got := tc.ev.Kind(); got != tc.kind {
			t.Fatalf("%T.Kind() = %q, want %q", tc.ev, got, tc.kind)
		}
	}
}
