package obs

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestHTTPMetricsRecordsRequests(t *testing.T) {
	reg := NewRegistry()
	h := HTTPMetrics(reg, "http", []string{"/ok", "/bad"}, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/ok":
			w.Write([]byte("ok")) // implicit 200
		case "/bad":
			http.Error(w, "nope", http.StatusBadRequest)
		case "/boom":
			http.Error(w, "boom", http.StatusInternalServerError)
		default:
			// Returns without writing: net/http sends an implicit 200.
		}
	}))
	for _, path := range []string{"/ok", "/bad", "/boom", "/silent"} {
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, path, nil))
	}
	if got := reg.Counter("http.requests").Value(); got != 4 {
		t.Fatalf("http.requests = %d, want 4", got)
	}
	if got := reg.Counter("http.status_2xx").Value(); got != 2 {
		t.Fatalf("http.status_2xx = %d, want 2", got)
	}
	if got := reg.Counter("http.status_4xx").Value(); got != 1 {
		t.Fatalf("http.status_4xx = %d, want 1", got)
	}
	if got := reg.Counter("http.status_5xx").Value(); got != 1 {
		t.Fatalf("http.status_5xx = %d, want 1", got)
	}
	if got := reg.Gauge("http.inflight").Value(); got != 0 {
		t.Fatalf("http.inflight = %g after completion, want 0", got)
	}
	if got := reg.Histogram("http.request_ms", nil).Count(); got != 4 {
		t.Fatalf("http.request_ms count = %d, want 4", got)
	}
	// Per-route histograms: /ok and /bad are registered routes (one
	// observation each); /boom and /silent fall into the .other bucket.
	if got := reg.Histogram("http.latency.ok", nil).Count(); got != 1 {
		t.Fatalf("http.latency.ok count = %d, want 1", got)
	}
	if got := reg.Histogram("http.latency.bad", nil).Count(); got != 1 {
		t.Fatalf("http.latency.bad count = %d, want 1", got)
	}
	if got := reg.Histogram("http.latency.other", nil).Count(); got != 2 {
		t.Fatalf("http.latency.other count = %d, want 2", got)
	}
}

func TestRouteLabel(t *testing.T) {
	cases := map[string]string{
		"/v1/plan":        "v1_plan",
		"/v1/compare":     "v1_compare",
		"/healthz":        "healthz",
		"/debug/requests": "debug_requests",
		"/":               "root",
		"":                "root",
		"/a//b/":          "a_b",
	}
	for in, want := range cases {
		if got := routeLabel(in); got != want {
			t.Errorf("routeLabel(%q) = %q, want %q", in, got, want)
		}
	}
}

// The middleware must not strip the underlying writer's optional interfaces:
// streaming handlers reach Flush directly (or via http.ResponseController,
// which finds it through Unwrap), and a flushed-but-never-written response
// still records as the implicit 200.
func TestHTTPMetricsForwardsFlush(t *testing.T) {
	reg := NewRegistry()
	h := HTTPMetrics(reg, "http", nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Error("middleware writer lost http.Flusher")
			return
		}
		f.Flush()
	}))
	rw := httptest.NewRecorder() // httptest.ResponseRecorder implements Flusher
	h.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/", nil))
	if !rw.Flushed {
		t.Fatal("Flush was not forwarded to the underlying writer")
	}
	if got := reg.Counter("http.status_2xx").Value(); got != 1 {
		t.Fatalf("http.status_2xx = %d, want 1 (flush commits implicit 200)", got)
	}

	rec := &statusRecorder{ResponseWriter: httptest.NewRecorder()}
	if _, ok := any(rec).(interface{ Unwrap() http.ResponseWriter }); !ok {
		t.Fatal("statusRecorder does not expose Unwrap for http.ResponseController")
	}
}

// A nil registry must pass the handler through without wrapping, so the
// unconfigured path costs nothing.
func TestHTTPMetricsNilRegistryPassthrough(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(204) })
	h := HTTPMetrics(nil, "http", nil, inner)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/", nil))
	if rw.Code != 204 {
		t.Fatalf("status = %d, want 204", rw.Code)
	}
}
