package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/prometheus.golden from the current implementation")

// goldenRegistry builds a registry with every instrument kind and fixed,
// deterministic values.
func goldenRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("serve.requests").Add(42)
	reg.Counter("serve.cache_hits").Add(7)
	reg.Counter("9starts.with-digit").Inc()
	reg.Gauge("serve.active").Set(3)
	reg.Gauge("runtime.heap_bytes").Set(1.5e6)
	h := reg.Histogram("plan.latency_ms", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1.5, 1.5, 4, 100} {
		h.Observe(v)
	}
	return reg
}

// The exposition output is golden-filed: any formatting change — type lines,
// bucket cumulation, float rendering, name sanitisation, ordering — must be
// deliberate. Regenerate with -update.
func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	golden := filepath.Join("testdata", "prometheus.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden file.\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

var promNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// promSample is one parsed exposition line.
type promSample struct {
	name  string
	le    string // the le label for _bucket lines, "" otherwise
	value float64
}

// parsePromText parses exposition output far enough to hold the writer to the
// format: every line is a comment or `name[{le="..."}] value`.
func parsePromText(t *testing.T, text string) []promSample {
	t.Helper()
	var out []promSample
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if k := parts[3]; k != "counter" && k != "gauge" && k != "histogram" {
				t.Fatalf("unknown metric kind in %q", line)
			}
			continue
		}
		name, rest, found := strings.Cut(line, " ")
		if !found {
			t.Fatalf("sample line %q has no value", line)
		}
		s := promSample{name: name}
		if open := strings.IndexByte(name, '{'); open >= 0 {
			labels := name[open:]
			s.name = name[:open]
			if !strings.HasPrefix(labels, `{le="`) || !strings.HasSuffix(labels, `"}`) {
				t.Fatalf("unexpected label set %q in %q", labels, line)
			}
			s.le = labels[len(`{le="`) : len(labels)-len(`"}`)]
		}
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		s.value = v
		out = append(out, s)
	}
	return out
}

// The output must scrape: valid name charset everywhere, and for every
// histogram a full _bucket/_sum/_count triplet with ascending le bounds,
// nondecreasing cumulative counts, a trailing +Inf bucket, and _count equal
// to the +Inf bucket.
func TestWritePrometheusParses(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	samples := parsePromText(t, buf.String())
	if len(samples) == 0 {
		t.Fatal("no samples in exposition output")
	}

	type histState struct {
		les     []float64
		counts  []float64
		infSeen bool
		sum     bool
		count   float64
		hasCnt  bool
	}
	hists := map[string]*histState{}
	get := func(base string) *histState {
		h := hists[base]
		if h == nil {
			h = &histState{}
			hists[base] = h
		}
		return h
	}
	for _, s := range samples {
		if !promNameRE.MatchString(s.name) {
			t.Errorf("metric name %q outside the Prometheus charset", s.name)
		}
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			h := get(strings.TrimSuffix(s.name, "_bucket"))
			if s.le == "+Inf" {
				h.infSeen = true
				h.counts = append(h.counts, s.value)
				break
			}
			if h.infSeen {
				t.Errorf("%s: finite le=%q bucket after +Inf", s.name, s.le)
			}
			le, err := strconv.ParseFloat(s.le, 64)
			if err != nil {
				t.Errorf("%s: unparseable le %q", s.name, s.le)
				break
			}
			h.les = append(h.les, le)
			h.counts = append(h.counts, s.value)
		case strings.HasSuffix(s.name, "_sum"):
			get(strings.TrimSuffix(s.name, "_sum")).sum = true
		case strings.HasSuffix(s.name, "_count"):
			h := get(strings.TrimSuffix(s.name, "_count"))
			h.count, h.hasCnt = s.value, true
		}
	}
	if base := "plan_latency_ms"; hists[base] == nil {
		t.Fatalf("histogram %s missing from exposition", base)
	}
	for base, h := range hists {
		if len(h.les) == 0 {
			continue // _sum/_count suffixes on a non-histogram name
		}
		if !h.infSeen || !h.sum || !h.hasCnt {
			t.Errorf("%s: incomplete triplet (+Inf=%v _sum=%v _count=%v)", base, h.infSeen, h.sum, h.hasCnt)
			continue
		}
		for i := 1; i < len(h.les); i++ {
			if h.les[i] <= h.les[i-1] {
				t.Errorf("%s: le bounds not ascending: %v", base, h.les)
			}
		}
		for i := 1; i < len(h.counts); i++ {
			if h.counts[i] < h.counts[i-1] {
				t.Errorf("%s: cumulative bucket counts decrease: %v", base, h.counts)
			}
		}
		if inf := h.counts[len(h.counts)-1]; h.count != inf {
			t.Errorf("%s: _count %g != +Inf bucket %g", base, h.count, inf)
		}
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"serve.cache_hits": "serve_cache_hits",
		"http.latency.ok":  "http_latency_ok",
		"9starts":          "_9starts",
		"9starts.with":     "_9starts_with",
		"ok":               "ok",
		"":                 "_",
		"a-b/c d":          "a_b_c_d",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
		if !promNameRE.MatchString(promName(in)) {
			t.Errorf("promName(%q) = %q outside charset", in, promName(in))
		}
	}
}

// A nil registry must write nothing — the disabled-observability contract.
func TestWritePrometheusNilRegistry(t *testing.T) {
	var buf bytes.Buffer
	var r *Registry
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry wrote %q, err %v", buf.String(), err)
	}
}
