package obs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestTraceSpanTree(t *testing.T) {
	tr := NewTracer(TracerConfig{Seed: 1})
	trace, root := tr.StartRequest("POST /v1/plan", "")
	if trace == nil || root == nil {
		t.Fatal("StartRequest returned nil trace or root")
	}
	if len(trace.ID()) != 32 || !isLowerHex(trace.ID()) {
		t.Fatalf("trace id %q is not 32 lowercase hex chars", trace.ID())
	}

	ctx := ContextWithSpan(context.Background(), root)
	ctx, resolve := StartSpan(ctx, "plan.resolve")
	_, mem := StartSpan(ctx, "cache.memory")
	mem.SetAttrBool("hit", false)
	mem.End()
	_, disk := StartSpan(ctx, "store.read")
	disk.SetAttr("outcome", "miss")
	disk.EndErr(errors.New("read fault"))
	resolve.Event("watchdog.fired")
	resolve.End()
	root.End()
	tr.Finish(trace)

	exp, ok := tr.Export(trace.ID())
	if !ok {
		t.Fatalf("Export(%q) not found", trace.ID())
	}
	if !exp.Error {
		t.Error("trace with an errored span must be flagged Error")
	}
	if len(exp.Spans) != 1 {
		t.Fatalf("want 1 root span, got %d", len(exp.Spans))
	}
	gotRoot := exp.Spans[0]
	if gotRoot.Name != "POST /v1/plan" || len(gotRoot.Children) != 1 {
		t.Fatalf("unexpected root %q with %d children", gotRoot.Name, len(gotRoot.Children))
	}
	res := gotRoot.Children[0]
	if res.Name != "plan.resolve" || len(res.Children) != 2 {
		t.Fatalf("unexpected resolve span %q with %d children", res.Name, len(res.Children))
	}
	if len(res.Events) != 1 || res.Events[0].Name != "watchdog.fired" {
		t.Errorf("resolve events = %+v, want one watchdog.fired", res.Events)
	}
	var sawDisk bool
	for _, c := range res.Children {
		if c.Name == "store.read" {
			sawDisk = true
			if c.Error != "read fault" {
				t.Errorf("store.read span error = %q, want %q", c.Error, "read fault")
			}
			if len(c.Attrs) != 1 || c.Attrs[0].K != "outcome" || c.Attrs[0].V != "miss" {
				t.Errorf("store.read attrs = %+v", c.Attrs)
			}
		}
	}
	if !sawDisk {
		t.Error("store.read span missing from tree")
	}

	// The errored trace must land in both rings.
	dump := tr.Dump()
	if len(dump.Recent) != 1 || len(dump.Retained) != 1 || len(dump.InFlight) != 0 {
		t.Errorf("dump sizes = inflight %d recent %d retained %d, want 0/1/1",
			len(dump.InFlight), len(dump.Recent), len(dump.Retained))
	}

	// And the whole document must survive JSON marshalling.
	if _, err := json.Marshal(dump); err != nil {
		t.Fatalf("marshal dump: %v", err)
	}
}

func TestTracerTailSampling(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 4, RetainCapacity: 8, SlowThreshold: time.Hour, Seed: 2})

	finish := func(errored bool) string {
		trace, root := tr.StartRequest("req", "")
		if errored {
			root.SetError(errors.New("boom"))
		}
		root.End()
		tr.Finish(trace)
		return trace.ID()
	}

	erroredID := finish(true)
	for i := 0; i < 10; i++ {
		finish(false) // churn the recent ring far past its capacity
	}

	dump := tr.Dump()
	if len(dump.Recent) != 4 {
		t.Fatalf("recent ring holds %d, want capacity 4", len(dump.Recent))
	}
	for _, e := range dump.Recent {
		if e.TraceID == erroredID {
			t.Fatal("errored trace should have churned out of the recent ring")
		}
	}
	if len(dump.Retained) != 1 || dump.Retained[0].TraceID != erroredID {
		t.Fatalf("retained ring = %+v, want exactly the errored trace", dump.Retained)
	}
	// The retained copy must still be individually exportable.
	if _, ok := tr.Export(erroredID); !ok {
		t.Error("errored trace not findable by id after churn")
	}
}

func TestTracerRetainsSlowAndDegraded(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 1, SlowThreshold: time.Nanosecond, Seed: 3})
	trace, root := tr.StartRequest("slow", "")
	time.Sleep(time.Millisecond)
	root.End()
	tr.Finish(trace)

	tr2 := NewTracer(TracerConfig{Capacity: 1, Seed: 4})
	dtrace, droot := tr2.StartRequest("degraded", "")
	droot.MarkDegraded()
	droot.End()
	tr2.Finish(dtrace)

	if d := tr.Dump(); len(d.Retained) != 1 || !d.Retained[0].Slow {
		t.Errorf("slow trace not retained: %+v", d.Retained)
	}
	if d := tr2.Dump(); len(d.Retained) != 1 || !d.Retained[0].Degraded {
		t.Errorf("degraded trace not retained: %+v", d.Retained)
	}
}

func TestTraceSpanCap(t *testing.T) {
	tr := NewTracer(TracerConfig{MaxSpans: 4, Seed: 5})
	trace, root := tr.StartRequest("capped", "")
	ctx := ContextWithSpan(context.Background(), root)
	for i := 0; i < 10; i++ {
		_, sp := StartSpan(ctx, fmt.Sprintf("child-%d", i))
		sp.End() // nil-safe past the cap
	}
	root.End()
	tr.Finish(trace)

	exp, _ := tr.Export(trace.ID())
	if exp.DroppedSpans != 7 { // 10 children - 3 admitted (root took 1 of 4)
		t.Errorf("dropped = %d, want 7", exp.DroppedSpans)
	}
	total := 0
	var walk func(spans []*SpanExport)
	walk = func(spans []*SpanExport) {
		for _, s := range spans {
			total++
			walk(s.Children)
		}
	}
	walk(exp.Spans)
	if total != 4 {
		t.Errorf("exported %d spans, want cap of 4", total)
	}
}

func TestParseTraceparent(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tid, pid, ok := ParseTraceparent(valid)
	if !ok || tid != "4bf92f3577b34da6a3ce929d0e0e4736" || pid != "00f067aa0ba902b7" {
		t.Fatalf("ParseTraceparent(%q) = %q, %q, %v", valid, tid, pid, ok)
	}

	bad := []string{
		"",
		"not-a-traceparent",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",       // 3 parts
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",    // reserved version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",    // zero trace-id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",    // zero parent-id
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",    // uppercase
		"00-4bf92f3577b34da6a3ce929d0e0e47-00f067aa0ba902b7-01",      // short trace-id
		"00-4bf92f3577b34da6a3ce929d0e0e4736zz-00f067aa0ba902b7-01",  // long trace-id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-02", // 5 parts
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902bg-01",    // non-hex
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", h)
		}
	}

	// Round-trip: Format then Parse.
	h := FormatTraceparent(tid, pid)
	tid2, pid2, ok := ParseTraceparent(h)
	if !ok || tid2 != tid || pid2 != pid {
		t.Errorf("round trip %q -> %q, %q, %v", h, tid2, pid2, ok)
	}

	// NewTraceparent output must parse.
	if _, _, ok := ParseTraceparent(NewTraceparent()); !ok {
		t.Error("NewTraceparent produced an unparseable header")
	}
}

func TestStartRequestAdoptsInboundTraceID(t *testing.T) {
	tr := NewTracer(TracerConfig{Seed: 6})
	inbound := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	trace, root := tr.StartRequest("req", inbound)
	if trace.ID() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace id = %q, want the inbound trace-id", trace.ID())
	}
	root.End()
	tr.Finish(trace)
	exp, _ := tr.Export(trace.ID())
	if exp.ParentSpan != "00f067aa0ba902b7" {
		t.Errorf("parent span = %q, want the inbound parent-id", exp.ParentSpan)
	}

	// Malformed inbound headers fall back to a fresh id.
	trace2, root2 := tr.StartRequest("req", "garbage")
	if len(trace2.ID()) != 32 || trace2.ID() == trace.ID() {
		t.Errorf("fallback trace id %q invalid", trace2.ID())
	}
	root2.End()
	tr.Finish(trace2)
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer(TracerConfig{Seed: 7})
	trace, root := tr.StartRequest("POST /v1/plan", "")
	ctx := ContextWithSpan(context.Background(), root)
	_, child := StartSpan(ctx, "tileseek.search")
	child.SetAttr("layer", "mha")
	child.Event("rollout.done")
	child.End()
	root.End()
	tr.Finish(trace)

	events, ok := tr.ChromeTrace(trace.ID())
	if !ok {
		t.Fatal("ChromeTrace not found")
	}
	var complete, meta int
	for _, e := range events {
		switch e.Phase {
		case "X":
			complete++
		case "M":
			meta++
		}
	}
	// 2 spans + 1 span event as X; process name + 2 thread names as M.
	if complete != 3 || meta != 3 {
		t.Errorf("chrome trace has %d X and %d M events, want 3 and 3", complete, meta)
	}
	data, err := MarshalChromeTrace(events)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
}

func TestTracerInFlightVisible(t *testing.T) {
	tr := NewTracer(TracerConfig{Seed: 8})
	trace, root := tr.StartRequest("inflight", "")
	ctx := ContextWithSpan(context.Background(), root)
	_, open := StartSpan(ctx, "still.running")

	dump := tr.Dump()
	if len(dump.InFlight) != 1 {
		t.Fatalf("in-flight count = %d, want 1", len(dump.InFlight))
	}
	exp := dump.InFlight[0]
	if !exp.InFlight {
		t.Error("in-flight trace not flagged")
	}
	found := false
	for _, s := range exp.Spans {
		for _, c := range append([]*SpanExport{s}, s.Children...) {
			if c.Name == "still.running" && c.Unfinished {
				found = true
			}
		}
	}
	if !found {
		t.Error("open span not exported as unfinished")
	}

	open.End()
	root.End()
	tr.Finish(trace)
	if d := tr.Dump(); len(d.InFlight) != 0 || len(d.Recent) != 1 {
		t.Errorf("after finish: inflight %d recent %d", len(d.InFlight), len(d.Recent))
	}
}

func TestNilTracerAndSpanAreNoops(t *testing.T) {
	var tr *Tracer
	trace, root := tr.StartRequest("x", "")
	if trace != nil || root != nil {
		t.Fatal("nil tracer must hand out nil trace and span")
	}
	// Every method must tolerate the nils.
	root.End()
	root.EndErr(errors.New("x"))
	root.SetError(errors.New("x"))
	root.SetAttr("k", "v")
	root.SetAttrInt("k", 1)
	root.SetAttrFloat("k", 1.5)
	root.SetAttrBool("k", true)
	root.Event("e")
	root.MarkDegraded()
	if root.TraceID() != "" || root.SpanID() != "" || trace.ID() != "" {
		t.Error("nil ids must be empty")
	}
	tr.Finish(trace)
	if d := tr.Dump(); len(d.InFlight)+len(d.Recent)+len(d.Retained) != 0 {
		t.Error("nil tracer dump must be empty")
	}
	if _, ok := tr.Export("abc"); ok {
		t.Error("nil tracer must not export")
	}
	if _, ok := tr.ChromeTrace("abc"); ok {
		t.Error("nil tracer must not chrome-export")
	}

	ctx, sp := StartSpan(context.Background(), "untraced")
	if sp != nil || ctx != context.Background() {
		t.Error("StartSpan without a parent must return ctx unchanged and nil span")
	}
}

// TestDisabledTracingZeroAlloc is the tentpole's zero-cost guarantee: on a
// context with no span attached (tracing unconfigured), the full span API
// surface must not allocate.
func TestDisabledTracingZeroAlloc(t *testing.T) {
	ctx := context.Background()
	if avg := testing.AllocsPerRun(200, func() {
		c, sp := StartSpan(ctx, "plan.resolve")
		sp.SetAttr("key", "value")
		sp.SetAttrInt("n", 42)
		sp.SetAttrBool("hit", true)
		sp.Event("watchdog.fired")
		sp.EndErr(nil)
		_, sp2 := StartSpan(c, "nested")
		sp2.End()
		_ = SpanFromContext(c)
	}); avg != 0 {
		t.Errorf("disabled tracing allocates %.1f per op, want 0", avg)
	}
}

// TestDetachedContextZeroAlloc covers the span-flood suppression path: a
// context explicitly detached with ContextWithSpan(ctx, nil) must behave like
// the disabled path (the detach itself allocates once; the loop below must
// not).
func TestDetachedContextZeroAlloc(t *testing.T) {
	tr := NewTracer(TracerConfig{Seed: 9})
	trace, root := tr.StartRequest("req", "")
	ctx := ContextWithSpan(ContextWithSpan(context.Background(), root), nil)
	if avg := testing.AllocsPerRun(200, func() {
		_, sp := StartSpan(ctx, "objective.eval")
		sp.End()
	}); avg != 0 {
		t.Errorf("detached tracing allocates %.1f per op, want 0", avg)
	}
	root.End()
	tr.Finish(trace)
}

func TestHTTPTrace(t *testing.T) {
	tr := NewTracer(TracerConfig{Seed: 10})
	var gotSpan *Span
	h := HTTPTrace(tr, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotSpan = SpanFromContext(r.Context())
		w.WriteHeader(http.StatusOK)
	}))

	inbound := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	req := httptest.NewRequest(http.MethodPost, "/v1/plan", nil)
	req.Header.Set("traceparent", inbound)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)

	if gotSpan == nil {
		t.Fatal("handler saw no span in its context")
	}
	if got := rec.Header().Get("X-Trace-Id"); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("X-Trace-Id = %q, want the inbound trace-id", got)
	}
	exp, ok := tr.Export("4bf92f3577b34da6a3ce929d0e0e4736")
	if !ok {
		t.Fatal("trace not finished into the tracer")
	}
	if exp.Spans[0].Name != "POST /v1/plan" {
		t.Errorf("root span name = %q", exp.Spans[0].Name)
	}
	var status string
	for _, a := range exp.Spans[0].Attrs {
		if a.K == "http.status" {
			status = a.V
		}
	}
	if status != "200" {
		t.Errorf("http.status attr = %q, want 200", status)
	}

	// 5xx responses mark the trace errored (and therefore retained).
	boom := HTTPTrace(tr, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	rec2 := httptest.NewRecorder()
	boom.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/x", nil))
	id := rec2.Header().Get("X-Trace-Id")
	exp2, ok := tr.Export(id)
	if !ok || !exp2.Error {
		t.Errorf("5xx trace not flagged errored: ok=%v exp=%+v", ok, exp2)
	}
	if !strings.Contains(exp2.Spans[0].Error, "500") {
		t.Errorf("root error = %q, want an http 500 note", exp2.Spans[0].Error)
	}

	// Nil tracer passes the handler through untouched.
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	if got := HTTPTrace(nil, inner); fmt.Sprintf("%p", got) != fmt.Sprintf("%p", inner) {
		t.Error("nil tracer must return next unchanged")
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTracer(TracerConfig{MaxSpans: 4096, Seed: 11})
	trace, root := tr.StartRequest("concurrent", "")
	ctx := ContextWithSpan(context.Background(), root)
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 50; j++ {
				c, sp := StartSpan(ctx, fmt.Sprintf("worker-%d", i))
				sp.SetAttrInt("j", int64(j))
				_, inner := StartSpan(c, "inner")
				inner.Event("tick")
				inner.End()
				sp.End()
			}
		}(i)
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	root.End()
	tr.Finish(trace)
	exp, _ := tr.Export(trace.ID())
	if exp.DroppedSpans != 0 {
		t.Errorf("dropped %d spans under a 4096 cap", exp.DroppedSpans)
	}
}
