package obs

import (
	"runtime"
	"sort"
	"sync"
	"time"
)

// RuntimeSampler periodically snapshots Go runtime health into a Registry:
//
//	runtime.goroutines   gauge  current goroutine count
//	runtime.heap_bytes   gauge  live heap (MemStats.HeapAlloc)
//	runtime.gc_pause_p99 gauge  p99 GC stop-the-world pause, milliseconds,
//	                            over the pauses observed so far
//	runtime.num_gc       gauge  completed GC cycles since process start
//
// The gauges ride the ordinary exposition paths (/metrics JSON, text, and
// Prometheus), so a scrape sees process health next to serving metrics
// without a second collector. Stop is idempotent and waits for the sampling
// goroutine to exit, so tests guarded by the chaos leak check can start and
// stop a sampler freely.
type RuntimeSampler struct {
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// StartRuntimeSampler samples reg every interval until Stop. A nil registry
// or non-positive interval returns a sampler whose Stop is a no-op, so
// callers need no conditional wiring. The first sample is taken immediately:
// gauges are live from the moment the sampler exists, not one interval later.
func StartRuntimeSampler(reg *Registry, interval time.Duration) *RuntimeSampler {
	s := &RuntimeSampler{stop: make(chan struct{}), done: make(chan struct{})}
	if reg == nil || interval <= 0 {
		close(s.done)
		return s
	}
	goroutines := reg.Gauge("runtime.goroutines")
	heap := reg.Gauge("runtime.heap_bytes")
	pauseP99 := reg.Gauge("runtime.gc_pause_p99")
	numGC := reg.Gauge("runtime.num_gc")
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(float64(runtime.NumGoroutine()))
		heap.Set(float64(ms.HeapAlloc))
		numGC.Set(float64(ms.NumGC))
		pauseP99.Set(gcPauseP99MS(&ms))
	}
	sample()
	go func() {
		defer close(s.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				sample()
			case <-s.stop:
				return
			}
		}
	}()
	return s
}

// Stop halts sampling and waits for the goroutine to exit. Safe to call more
// than once and on a sampler that never started.
func (s *RuntimeSampler) Stop() {
	s.once.Do(func() { close(s.stop) })
	<-s.done
}

// gcPauseP99MS computes the 99th-percentile stop-the-world pause in
// milliseconds from the runtime's 256-entry circular pause buffer. With no
// completed GC yet it reports 0.
func gcPauseP99MS(ms *runtime.MemStats) float64 {
	n := int(ms.NumGC)
	if n == 0 {
		return 0
	}
	if n > len(ms.PauseNs) {
		n = len(ms.PauseNs)
	}
	pauses := make([]uint64, n)
	copy(pauses, ms.PauseNs[:n])
	sort.Slice(pauses, func(i, j int) bool { return pauses[i] < pauses[j] })
	// Nearest-rank p99: the smallest value with at least 99% of the sample
	// at or below it.
	idx := (99*n + 99) / 100
	if idx > n {
		idx = n
	}
	return float64(pauses[idx-1]) / 1e6
}
