package obs

import (
	"runtime"
	"testing"
	"time"

	"github.com/fusedmindlab/transfusion/internal/chaos"
)

func TestRuntimeSamplerGauges(t *testing.T) {
	runtime.GC() // guarantee at least one completed cycle and pause sample
	reg := NewRegistry()
	s := StartRuntimeSampler(reg, time.Millisecond)
	defer s.Stop()
	// The first sample is synchronous, so the gauges are live immediately.
	if g := reg.Gauge("runtime.goroutines").Value(); g < 1 {
		t.Fatalf("runtime.goroutines = %g, want >= 1", g)
	}
	if h := reg.Gauge("runtime.heap_bytes").Value(); h <= 0 {
		t.Fatalf("runtime.heap_bytes = %g, want > 0", h)
	}
	if n := reg.Gauge("runtime.num_gc").Value(); n < 1 {
		t.Fatalf("runtime.num_gc = %g, want >= 1 after forced GC", n)
	}
	if p := reg.Gauge("runtime.gc_pause_p99").Value(); p < 0 {
		t.Fatalf("runtime.gc_pause_p99 = %g, want >= 0", p)
	}
}

// The sampler goroutine must exit on Stop (held to the same goroutine-leak
// bar as the serving path), Stop must be idempotent, and the disabled
// constructions must be safe no-ops.
func TestRuntimeSamplerStopsCleanly(t *testing.T) {
	reg := NewRegistry()
	s := StartRuntimeSampler(reg, time.Millisecond)
	time.Sleep(5 * time.Millisecond) // let it tick at least once
	s.Stop()
	s.Stop() // idempotent

	StartRuntimeSampler(nil, time.Millisecond).Stop() // nil registry
	StartRuntimeSampler(reg, 0).Stop()                // disabled interval

	if err := chaos.CheckLeaks(2 * time.Second); err != nil {
		t.Fatalf("goroutine leak after sampler stop: %v", err)
	}
}

func TestGCPauseP99(t *testing.T) {
	var ms runtime.MemStats
	if got := gcPauseP99MS(&ms); got != 0 {
		t.Fatalf("p99 with no GC = %g, want 0", got)
	}
	ms.NumGC = 3
	ms.PauseNs[0] = 1e6 // 1ms
	ms.PauseNs[1] = 3e6
	ms.PauseNs[2] = 2e6
	if got := gcPauseP99MS(&ms); got != 3 {
		t.Fatalf("p99 of {1,3,2}ms = %g, want 3", got)
	}
}
