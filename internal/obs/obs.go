// Package obs is the zero-dependency observability core: a context-threaded
// structured logger (log/slog), an atomic metrics registry with text/JSON
// exposition, typed search-progress events, and a Chrome trace_event writer.
//
// Everything in this package is built around one constraint: the two hot
// search loops (TileSeek's MCTS rollouts and DPipe's DP inner loop) must pay
// nothing when observability is not configured. The package therefore leans
// on three idioms:
//
//   - the logger and the metrics registry travel in the context.Context;
//     LoggerFrom returns a disabled logger (never nil) and MetricsFrom
//     returns nil when unset;
//   - every instrument (*Counter, *Gauge, *Histogram) and the *Registry
//     itself are nil-receiver safe, so a hot loop fetches its counters once
//     up front and increments unconditionally — a nil counter increment is a
//     single predicted branch, no allocation;
//   - progress hooks are plain funcs guarded at the call site
//     (`if hook != nil { hook(ev) }`), so the event struct is never boxed
//     into an interface when nobody listens.
package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

type ctxKey int

const (
	loggerKey ctxKey = iota
	metricsKey
)

// nopLogger is the disabled logger returned when none is configured. Its
// handler reports every level disabled, so even Logger.Enabled-unguarded
// call sites skip record construction.
var nopLogger = slog.New(discardHandler{})

// discardHandler drops everything and reports every level disabled.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// WithLogger returns a context carrying the logger; nil restores the
// disabled default.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	if l == nil {
		l = nopLogger
	}
	return context.WithValue(ctx, loggerKey, l)
}

// LoggerFrom returns the context's logger, or a disabled logger when none
// was attached. The result is never nil, so call sites need no guard; hot
// loops should still hoist the lookup out of the loop.
func LoggerFrom(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(loggerKey).(*slog.Logger); ok {
		return l
	}
	return nopLogger
}

// WithMetrics returns a context carrying the metrics registry.
func WithMetrics(ctx context.Context, r *Registry) context.Context {
	return context.WithValue(ctx, metricsKey, r)
}

// MetricsFrom returns the context's registry, or nil when none was attached.
// A nil registry is fully usable: every method on it (and on the nil
// instruments it hands out) is a no-op.
func MetricsFrom(ctx context.Context) *Registry {
	r, _ := ctx.Value(metricsKey).(*Registry)
	return r
}

// NewLogger builds a stderr-style structured logger for the CLIs: text or
// JSON lines on w at the given level.
func NewLogger(w io.Writer, level slog.Level, json bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if json {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// ParseLevel resolves a CLI level name ("debug", "info", "warn", "error")
// case-insensitively.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q (have debug, info, warn, error)", s)
	}
}
