package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Prometheus text exposition (format version 0.0.4) for the registry, served
// by transfusiond's /metrics under content negotiation. The registry's dotted
// metric names ("serve.cache_hits") are sanitised into the Prometheus name
// charset ("serve_cache_hits"); histograms are exported in full — cumulative
// `_bucket{le="..."}` series per bound plus the `+Inf` bucket, `_sum`, and
// `_count` — rather than the quantile summary the JSON snapshot carries,
// because Prometheus computes quantiles server-side from the buckets.

// PrometheusContentType is the Content-Type for the exposition format.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName sanitises a registry metric name into the Prometheus charset
// [a-zA-Z_:][a-zA-Z0-9_:]*: every other byte maps to '_', and a leading
// digit is prefixed with '_'.
func promName(name string) string {
	if name == "" {
		return "_"
	}
	b := []byte(name)
	for i := range b {
		switch c := b[i]; {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			// Digits are valid anywhere but the first byte; a leading digit
			// is kept and prefixed below.
		default:
			b[i] = '_'
		}
	}
	if b[0] >= '0' && b[0] <= '9' {
		return "_" + string(b)
	}
	return string(b)
}

// promFloat renders a float the way Prometheus expects, with infinities
// spelled +Inf/-Inf.
func promFloat(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	switch s {
	case "Inf", "+Inf":
		return "+Inf"
	case "-Inf":
		return "-Inf"
	}
	return s
}

// WritePrometheus renders every instrument in Prometheus text exposition
// format 0.0.4, sorted by metric name for stable output. A nil registry
// writes nothing and returns nil.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	// Copy the instrument sets under the lock, then read their atomic values
	// outside it: exposition must not block Observe.
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.Unlock()

	names := make([]string, 0, len(counters))
	for n := range counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, counters[n].Value()); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(gauges[n].Value())); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		h := hists[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		// Cumulative bucket counts: each le bucket includes every bucket
		// below it. The +Inf bucket and _count are derived from the same
		// per-bucket reads, so concurrent Observes can never make the series
		// decrease or _count disagree with +Inf within one scrape.
		var cum int64
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, promFloat(bound), cum); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.bounds)].Load() // overflow bucket
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", pn, promFloat(h.Sum()), pn, cum); err != nil {
			return err
		}
	}
	return nil
}
