package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	// Run with -race: concurrent increments on one counter from many
	// goroutines must be safe and lose nothing.
	r := NewRegistry()
	c := r.Counter("hits")
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

func TestRegistryConcurrentLookup(t *testing.T) {
	// Concurrent first-touch lookups of the same name must converge on one
	// instrument.
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Counter("shared").Inc()
			r.Gauge("g").Set(1)
			r.Histogram("h", nil).Observe(1)
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8 {
		t.Fatalf("shared counter = %d, want 8", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 8 {
		t.Fatalf("histogram count = %d, want 8", got)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	g := r.Gauge("y")
	g.Set(3)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	h := r.Histogram("z", nil)
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram recorded")
	}
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("nil histogram quantile not NaN")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot non-empty")
	}
}

func TestHistogramQuantileSanity(t *testing.T) {
	h := NewRegistry().Histogram("lat", nil)
	// 1..1000: p50 ~ 500, p90 ~ 900, p99 ~ 990. Bucket resolution is
	// coarse (exponential, factor 4), so only bucket-level checks: the
	// reported quantile is the containing bucket's upper bound, which must
	// bracket the true quantile from above and stay within one bucket.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 500500.0; math.Abs(got-want) > 1e-6 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	p50, p99 := h.Quantile(0.5), h.Quantile(0.99)
	if !(p50 >= 500 && p50 <= 4*1100) {
		t.Fatalf("p50 = %v, outside its bucket's range", p50)
	}
	if p99 < p50 {
		t.Fatalf("p99 %v < p50 %v", p99, p50)
	}
	// A value beyond the last bound lands in the overflow bucket, whose
	// quantile reports the last finite bound rather than a fabricated
	// number.
	h2 := NewRegistry().Histogram("clip", []float64{1, 2})
	h2.Observe(100)
	if got := h2.Quantile(0.5); got != 2 {
		t.Fatalf("overflow quantile = %v, want last bound 2", got)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	if len(b) != len(want) {
		t.Fatalf("buckets = %v", b)
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", b, want)
		}
	}
}

func TestSnapshotJSONAndText(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(3)
	r.Gauge("b.level").Set(2.5)
	h := r.Histogram("c.ms", nil)
	h.Observe(1)
	h.Observe(10)
	s := r.Snapshot()

	data, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Counters   map[string]int64              `json:"counters"`
		Gauges     map[string]float64            `json:"gauges"`
		Histograms map[string]map[string]float64 `json:"histograms"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("snapshot JSON invalid: %v\n%s", err, data)
	}
	if decoded.Counters["a.count"] != 3 {
		t.Fatalf("counters = %v", decoded.Counters)
	}
	if decoded.Gauges["b.level"] != 2.5 {
		t.Fatalf("gauges = %v", decoded.Gauges)
	}
	if decoded.Histograms["c.ms"]["count"] != 2 {
		t.Fatalf("histograms = %v", decoded.Histograms)
	}

	var b strings.Builder
	if err := s.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{"a.count 3", "b.level 2.5", "c.ms"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text exposition missing %q:\n%s", want, text)
		}
	}
	// Deterministic ordering: names sorted.
	if strings.Index(text, "a.count") > strings.Index(text, "b.level") {
		t.Fatalf("text exposition unsorted:\n%s", text)
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	r := NewRegistry()
	r.Counter("n").Inc()
	s := r.Snapshot()
	r.Counter("n").Add(10)
	if s.Counters["n"] != 1 {
		t.Fatalf("snapshot mutated by later increments: %d", s.Counters["n"])
	}
}
