package obs

import (
	"fmt"
	"net/http"
	"time"
)

// statusRecorder captures the status code a handler writes so the middleware
// can classify the response after the fact. An unset code means the handler
// returned without writing, which net/http turns into an implicit 200.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// Unwrap exposes the underlying writer so http.ResponseController can reach
// its optional interfaces (http.Flusher, http.Hijacker, io.ReaderFrom)
// through the wrapper.
func (r *statusRecorder) Unwrap() http.ResponseWriter {
	return r.ResponseWriter
}

// Flush forwards to the underlying writer's Flusher, if any, so streaming
// handlers keep working behind the middleware. Flushing commits the response
// headers, which net/http treats as an implicit 200 when none were written.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		if r.status == 0 {
			r.status = http.StatusOK
		}
		f.Flush()
	}
}

// routeLatencyBuckets spans 0.1ms to ~13s in powers of two — tight enough at
// the bottom to resolve cache hits, wide enough at the top to hold a full
// search.
var routeLatencyBuckets = ExpBuckets(0.1, 2, 18)

// routeLabel sanitises a route path into a metric-name segment: "/v1/plan"
// becomes "v1_plan".
func routeLabel(route string) string {
	var out []byte
	for i := 0; i < len(route); i++ {
		c := route[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			out = append(out, c)
		default:
			if len(out) > 0 && out[len(out)-1] != '_' {
				out = append(out, '_')
			}
		}
	}
	for len(out) > 0 && out[len(out)-1] == '_' {
		out = out[:len(out)-1]
	}
	if len(out) == 0 {
		return "root"
	}
	return string(out)
}

// HTTPMetrics wraps a handler with request accounting into reg under the
// given metric prefix (e.g. "http"):
//
//	<prefix>.requests             counter, one per completed request
//	<prefix>.status_Nxx           counter per status class (2xx/4xx/5xx/...)
//	<prefix>.inflight             gauge, requests currently being handled
//	<prefix>.request_ms           histogram of wall-clock handling time
//	<prefix>.latency.<route>      per-endpoint latency histogram (ms,
//	                              exponential bounds) for each path in routes;
//	                              unlisted paths land in .latency.other
//
// Routes are matched exactly against the request path, so the per-route set
// is fixed at construction — an attacker probing random URLs cannot mint
// unbounded metric names. A nil registry passes the handler through
// untouched, so unconfigured servers pay nothing.
func HTTPMetrics(reg *Registry, prefix string, routes []string, next http.Handler) http.Handler {
	if reg == nil {
		return next
	}
	requests := reg.Counter(prefix + ".requests")
	inflight := reg.Gauge(prefix + ".inflight")
	latency := reg.Histogram(prefix+".request_ms", nil)
	byRoute := make(map[string]*Histogram, len(routes))
	for _, route := range routes {
		byRoute[route] = reg.Histogram(prefix+".latency."+routeLabel(route), routeLatencyBuckets)
	}
	other := reg.Histogram(prefix+".latency.other", routeLatencyBuckets)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		inflight.Add(1)
		rec := &statusRecorder{ResponseWriter: w}
		routeHist, ok := byRoute[r.URL.Path]
		if !ok {
			routeHist = other
		}
		defer func() {
			inflight.Add(-1)
			requests.Inc()
			status := rec.status
			if status == 0 {
				status = http.StatusOK
			}
			reg.Counter(fmt.Sprintf("%s.status_%dxx", prefix, status/100)).Inc()
			ms := float64(time.Since(start).Microseconds()) / 1e3
			latency.Observe(ms)
			routeHist.Observe(ms)
		}()
		next.ServeHTTP(rec, r)
	})
}
