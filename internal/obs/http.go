package obs

import (
	"fmt"
	"net/http"
	"time"
)

// statusRecorder captures the status code a handler writes so the middleware
// can classify the response after the fact. An unset code means the handler
// returned without writing, which net/http turns into an implicit 200.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// Unwrap exposes the underlying writer so http.ResponseController can reach
// its optional interfaces (http.Flusher, http.Hijacker, io.ReaderFrom)
// through the wrapper.
func (r *statusRecorder) Unwrap() http.ResponseWriter {
	return r.ResponseWriter
}

// Flush forwards to the underlying writer's Flusher, if any, so streaming
// handlers keep working behind the middleware. Flushing commits the response
// headers, which net/http treats as an implicit 200 when none were written.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		if r.status == 0 {
			r.status = http.StatusOK
		}
		f.Flush()
	}
}

// HTTPMetrics wraps a handler with request accounting into reg under the
// given metric prefix (e.g. "http"):
//
//	<prefix>.requests        counter, one per completed request
//	<prefix>.status_Nxx      counter per status class (2xx/4xx/5xx/...)
//	<prefix>.inflight        gauge, requests currently being handled
//	<prefix>.request_ms      histogram of wall-clock handling time
//
// A nil registry passes the handler through untouched, so unconfigured
// servers pay nothing.
func HTTPMetrics(reg *Registry, prefix string, next http.Handler) http.Handler {
	if reg == nil {
		return next
	}
	requests := reg.Counter(prefix + ".requests")
	inflight := reg.Gauge(prefix + ".inflight")
	latency := reg.Histogram(prefix+".request_ms", nil)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		inflight.Add(1)
		rec := &statusRecorder{ResponseWriter: w}
		defer func() {
			inflight.Add(-1)
			requests.Inc()
			status := rec.status
			if status == 0 {
				status = http.StatusOK
			}
			reg.Counter(fmt.Sprintf("%s.status_%dxx", prefix, status/100)).Inc()
			latency.Observe(float64(time.Since(start).Microseconds()) / 1e3)
		}()
		next.ServeHTTP(rec, r)
	})
}
