package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. All methods are safe
// on a nil receiver, so code paths without a configured registry pay only a
// branch.
type Counter struct{ n atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.n.Add(1)
	}
}

// Add adds d (d should be non-negative; counters are monotone).
func (c *Counter) Add(d int64) {
	if c != nil {
		c.n.Add(d)
	}
}

// Value returns the current count (zero on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is an atomic last-value-wins float64.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add accumulates d into the gauge (CAS loop; safe for concurrent deltas,
// e.g. in-flight counts that go up and down).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the last stored value (zero on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations into fixed exponential buckets with
// atomic counts; Observe never locks and never allocates.
type Histogram struct {
	// bounds are the buckets' inclusive upper bounds, strictly increasing;
	// counts has one extra slot for the overflow bucket (> last bound).
	bounds []float64
	counts []atomic.Int64
	total  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// ExpBuckets builds n exponential bucket bounds: start, start*factor, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// defaultBuckets covers sub-microsecond to multi-hour spans when observing
// milliseconds, and unit counts up to ~10^9 when observing sizes: powers of
// four from 1e-3 upward.
var defaultBuckets = ExpBuckets(1e-3, 4, 22)

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search would also work, but the bucket count is small and the
	// linear scan is branch-predictable.
	idx := len(h.bounds)
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	h.counts[idx].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (zero on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of observations (zero on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket counts:
// it returns the upper bound of the bucket containing the q-th observation
// (the last bound for the overflow bucket). NaN when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.total.Load() == 0 {
		return math.NaN()
	}
	rank := q * float64(h.total.Load())
	cum := 0.0
	for i := range h.counts {
		cum += float64(h.counts[i].Load())
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			break
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// Registry is a concurrency-safe namespace of named instruments. The zero
// value is not usable; construct with NewRegistry. A nil *Registry is fully
// usable — every lookup returns a nil instrument whose methods are no-ops —
// so callers thread a possibly-nil registry without guards.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use (nil on a nil
// registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use (nil on a nil
// registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use with the
// given bucket bounds (nil bounds selects the default exponential buckets).
// Bounds are fixed at creation; later calls ignore the argument.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if bounds == nil {
			bounds = defaultBuckets
		}
		h = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
		r.hists[name] = h
	}
	return h
}

// HistogramStat is a histogram's summary in a Snapshot.
type HistogramStat struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Snapshot is a point-in-time copy of every instrument, serialisable as JSON
// and renderable as text.
type Snapshot struct {
	Counters   map[string]int64         `json:"counters"`
	Gauges     map[string]float64       `json:"gauges"`
	Histograms map[string]HistogramStat `json:"histograms"`
}

// Snapshot copies the registry's current values (empty snapshot on nil).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramStat{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = HistogramStat{
			Count: h.Count(),
			Sum:   h.Sum(),
			P50:   h.Quantile(0.50),
			P90:   h.Quantile(0.90),
			P99:   h.Quantile(0.99),
		}
	}
	return s
}

// JSON renders the snapshot as indented JSON. NaN quantiles (empty
// histograms) are emitted as nulls to keep the document standard JSON.
func (s Snapshot) JSON() ([]byte, error) {
	type hstat struct {
		Count int64    `json:"count"`
		Sum   float64  `json:"sum"`
		P50   *float64 `json:"p50"`
		P90   *float64 `json:"p90"`
		P99   *float64 `json:"p99"`
	}
	doc := struct {
		Counters   map[string]int64   `json:"counters"`
		Gauges     map[string]float64 `json:"gauges"`
		Histograms map[string]hstat   `json:"histograms"`
	}{s.Counters, s.Gauges, map[string]hstat{}}
	num := func(v float64) *float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil
		}
		return &v
	}
	for name, h := range s.Histograms {
		doc.Histograms[name] = hstat{h.Count, h.Sum, num(h.P50), num(h.P90), num(h.P99)}
	}
	return json.MarshalIndent(doc, "", "  ")
}

// WriteText renders the snapshot as sorted "name value" lines.
func (s Snapshot) WriteText(w io.Writer) error {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", n, s.Counters[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "%s %g\n", n, s.Gauges[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		if _, err := fmt.Fprintf(w, "%s count=%d sum=%g p50=%g p90=%g p99=%g\n",
			n, h.Count, h.Sum, h.P50, h.P90, h.P99); err != nil {
			return err
		}
	}
	return nil
}
