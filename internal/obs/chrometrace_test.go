package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestChromeTraceFormat(t *testing.T) {
	events := []TraceEvent{
		ProcessName(1, "mha"),
		ThreadName(1, 0, "2D PE array"),
		Complete("GEMM", 0, 0, 1, 0),
		Complete("softmax", 10, 5, 1, 1),
	}
	data, err := MarshalChromeTrace(events)
	if err != nil {
		t.Fatal(err)
	}
	// The document must be a plain JSON array — the trace_event "JSON Array
	// Format" Perfetto and chrome://tracing both accept.
	var decoded []map[string]interface{}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("trace is not a JSON array: %v\n%s", err, data)
	}
	if len(decoded) != 4 {
		t.Fatalf("decoded %d events, want 4", len(decoded))
	}
	meta := decoded[0]
	if meta["ph"] != "M" || meta["name"] != "process_name" {
		t.Fatalf("metadata event malformed: %v", meta)
	}
	for _, ev := range decoded[2:] {
		if ev["ph"] != "X" {
			t.Fatalf("complete event ph = %v", ev["ph"])
		}
		for _, key := range []string{"name", "ts", "dur", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("complete event missing %q: %v", key, ev)
			}
		}
	}
	// A zero-duration event must still carry an explicit dur field —
	// Perfetto treats missing dur as an unfinished event.
	if _, ok := decoded[2]["dur"]; !ok {
		t.Fatalf("zero dur omitted: %v", decoded[2])
	}

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var again []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &again); err != nil {
		t.Fatalf("WriteChromeTrace output invalid: %v", err)
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	data, err := MarshalChromeTrace(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || data[0] != '[' {
		t.Fatalf("empty trace is not a JSON array: %s", data)
	}
	var decoded []TraceEvent
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("empty trace invalid: %v (%s)", err, data)
	}
	if len(decoded) != 0 {
		t.Fatalf("empty trace has %d events", len(decoded))
	}
}
