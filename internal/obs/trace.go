package obs

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"
)

// Request-scoped tracing: every serving-path request owns a *Trace — a tree
// of *Span records (name, start, duration, attributes, events, error) built
// as the request flows through admission, the degradation ladder, the
// memory/disk cache tiers, singleflight, and the per-sub-layer searches. The
// *Tracer keeps in-flight traces plus two completed rings (a recent ring and
// a tail-sampling ring that always retains slow, degraded, and errored
// traces) behind /debug/requests, and exports any trace as a span-tree JSON
// document or a per-request Chrome trace.
//
// The package's zero-cost discipline applies: when no span is attached to
// the context — the CLI, the experiment harness, a daemon with tracing
// disabled — StartSpan is a single context lookup returning a nil *Span, and
// every method on a nil *Span or nil *Tracer is a no-op branch. No
// allocation, no boxing, no time lookup (AllocsPerRun-guarded).

// spanKey carries the current *Span in a context; a zero-size type keys
// without allocating.
type spanKey struct{}

// ContextWithSpan returns a context carrying sp as the current span.
// A nil sp detaches tracing from the derived context: StartSpan below it
// returns nil spans, which callers use to suppress span floods (e.g. the
// tile search's objective evaluations, which run hundreds of times per
// request).
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFromContext returns the context's current span, or nil when tracing is
// not active on this path. The nil result is fully usable: every *Span
// method no-ops on a nil receiver.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// StartSpan starts a child of the context's current span and returns a
// derived context carrying it. When the context carries no span (tracing
// disabled, or deliberately detached) it returns ctx unchanged and a nil
// *Span — one predicted branch, no allocation. The caller must End the
// returned span (nil-safe).
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	child := parent.tr.newSpan(name, parent.id)
	if child == nil {
		// Per-trace span cap reached: record against the parent chain
		// happened in newSpan; keep attributing work to the parent.
		return ctx, nil
	}
	return context.WithValue(ctx, spanKey{}, child), child
}

// Attr is one span attribute. Values are stored as strings: attributes are
// for humans and JSON exports, not for computation.
type Attr struct {
	K string `json:"k"`
	V string `json:"v"`
}

// SpanEvent is a point-in-time annotation inside a span (a watchdog firing,
// a client retry).
type SpanEvent struct {
	Name string    `json:"name"`
	At   time.Time `json:"-"`
}

// Span is one timed operation inside a Trace. All methods are safe on a nil
// receiver and safe for concurrent use (mutation locks the owning trace).
type Span struct {
	tr     *Trace
	id     uint64
	parent uint64 // 0 = root
	name   string
	start  time.Time

	// The fields below are guarded by tr.mu.
	dur    time.Duration
	ended  bool
	errMsg string
	attrs  []Attr
	events []SpanEvent
}

// End marks the span complete, recording its duration. Idempotent: the first
// End wins.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.tr.mu.Unlock()
}

// EndErr is End plus SetError when err is non-nil.
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	if err != nil {
		s.SetError(err)
	}
	s.End()
}

// SetError records the error on the span and marks the whole trace errored,
// which guarantees its retention in the tracer's tail-sampling ring.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.tr.mu.Lock()
	s.errMsg = err.Error()
	s.tr.errored = true
	s.tr.mu.Unlock()
}

// SetAttr records a string attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Attr{K: key, V: value})
	s.tr.mu.Unlock()
}

// SetAttrInt records an integer attribute.
func (s *Span) SetAttrInt(key string, v int64) {
	if s == nil {
		return
	}
	s.SetAttr(key, fmt.Sprintf("%d", v))
}

// SetAttrFloat records a float attribute.
func (s *Span) SetAttrFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.SetAttr(key, fmt.Sprintf("%g", v))
}

// SetAttrBool records a boolean attribute.
func (s *Span) SetAttrBool(key string, v bool) {
	if s == nil {
		return
	}
	s.SetAttr(key, fmt.Sprintf("%t", v))
}

// Event records a point-in-time annotation.
func (s *Span) Event(name string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.events = append(s.events, SpanEvent{Name: name, At: time.Now()})
	s.tr.mu.Unlock()
}

// MarkDegraded flags the owning trace as having served below full fidelity,
// guaranteeing retention in the tracer's tail-sampling ring.
func (s *Span) MarkDegraded() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.tr.degraded = true
	s.tr.mu.Unlock()
}

// TraceID returns the owning trace's W3C trace-id (32 lowercase hex chars),
// or "" on nil.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.tr.id
}

// SpanID returns this span's id rendered as a W3C parent-id (16 lowercase
// hex chars), or "" on nil.
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return fmt.Sprintf("%016x", s.id)
}

// Trace is one request's span tree. Spans may be appended concurrently (the
// pipeline schedules sub-layers in parallel; async store fills outlive the
// request) — all mutation is serialised on mu.
type Trace struct {
	id         string // W3C trace-id, 32 hex chars
	name       string
	start      time.Time
	parentSpan string // inbound traceparent parent-id, "" when locally rooted
	maxSpans   int

	mu       sync.Mutex
	spans    []*Span
	nextSpan uint64
	dur      time.Duration
	finished bool
	errored  bool
	degraded bool
	dropped  int
}

// ID returns the trace's W3C trace-id.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// newSpan appends a span under the cap; nil when the trace is out of span
// budget (the drop is counted and exported).
func (t *Trace) newSpan(name string, parent uint64) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.maxSpans {
		t.dropped++
		return nil
	}
	t.nextSpan++
	sp := &Span{tr: t, id: t.nextSpan, parent: parent, name: name, start: time.Now()}
	t.spans = append(t.spans, sp)
	return sp
}

// TracerConfig tunes a Tracer; zero values take the defaults noted per
// field.
type TracerConfig struct {
	// Capacity bounds the recent-completed ring (default 64).
	Capacity int
	// RetainCapacity bounds the tail-sampling ring reserved for slow,
	// degraded, and errored traces (default 64).
	RetainCapacity int
	// SlowThreshold classifies a trace as slow — and therefore always
	// retained — when its total duration reaches it (default 1s).
	SlowThreshold time.Duration
	// MaxSpans caps spans per trace; excess spans are dropped and counted
	// (default 256).
	MaxSpans int
	// Seed seeds trace-id generation for deterministic tests (0 seeds from
	// the clock).
	Seed int64
}

func (c TracerConfig) withDefaults() TracerConfig {
	if c.Capacity <= 0 {
		c.Capacity = 64
	}
	if c.RetainCapacity <= 0 {
		c.RetainCapacity = 64
	}
	if c.SlowThreshold <= 0 {
		c.SlowThreshold = time.Second
	}
	if c.MaxSpans <= 0 {
		c.MaxSpans = 256
	}
	if c.Seed == 0 {
		c.Seed = time.Now().UnixNano() ^ int64(os.Getpid())<<32
	}
	return c
}

// Tracer owns the request traces of one server: the in-flight set, a ring of
// recently completed traces, and a tail-sampling ring that always retains
// the traces worth keeping — slow, degraded, or errored — even after the
// recent ring has churned past them. A nil *Tracer is fully usable and
// records nothing.
type Tracer struct {
	cfg TracerConfig

	mu       sync.Mutex
	rng      *rand.Rand
	seq      uint64
	inflight map[uint64]*Trace
	seqOf    map[*Trace]uint64
	recent   []*Trace // oldest first
	retained []*Trace // oldest first
}

// NewTracer builds a Tracer.
func NewTracer(cfg TracerConfig) *Tracer {
	cfg = cfg.withDefaults()
	return &Tracer{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		inflight: make(map[uint64]*Trace),
		seqOf:    make(map[*Trace]uint64),
	}
}

// StartRequest opens a trace for one inbound request and returns it with its
// root span. traceparent, when it parses as a W3C traceparent header, donates
// the inbound trace-id (so one distributed trace shares an id across client
// and daemon) and records the caller's span as the root's logical parent;
// otherwise a fresh id is generated. Nil-safe: a nil tracer returns
// (nil, nil), and the nil trace/span no-op everywhere.
func (t *Tracer) StartRequest(name, traceparent string) (*Trace, *Span) {
	if t == nil {
		return nil, nil
	}
	id, parentSpan, ok := ParseTraceparent(traceparent)
	t.mu.Lock()
	if !ok {
		id = t.newTraceIDLocked()
	}
	tr := &Trace{
		id:         id,
		name:       name,
		start:      time.Now(),
		parentSpan: parentSpan,
		maxSpans:   t.cfg.MaxSpans,
	}
	t.seq++
	t.inflight[t.seq] = tr
	t.seqOf[tr] = t.seq
	t.mu.Unlock()
	root := tr.newSpan(name, 0)
	return tr, root
}

// newTraceIDLocked generates a 32-hex-char trace-id; caller holds t.mu.
func (t *Tracer) newTraceIDLocked() string {
	for {
		hi, lo := t.rng.Uint64(), t.rng.Uint64()
		if hi|lo != 0 { // the all-zero id is invalid per W3C
			return fmt.Sprintf("%016x%016x", hi, lo)
		}
	}
}

// Finish closes the trace (its root span should already be ended) and files
// it: always into the recent ring, and additionally into the tail-sampling
// retained ring when it is slow, degraded, or errored. Spans still open —
// an async disk fill, a detached cache leader — may keep recording into the
// trace after Finish; exports render them as unfinished.
func (t *Tracer) Finish(tr *Trace) {
	if t == nil || tr == nil {
		return
	}
	tr.mu.Lock()
	if !tr.finished {
		tr.finished = true
		tr.dur = time.Since(tr.start)
	}
	keep := tr.errored || tr.degraded || tr.dur >= t.cfg.SlowThreshold
	tr.mu.Unlock()

	t.mu.Lock()
	if seq, ok := t.seqOf[tr]; ok {
		delete(t.inflight, seq)
		delete(t.seqOf, tr)
	}
	t.recent = append(t.recent, tr)
	if len(t.recent) > t.cfg.Capacity {
		t.recent = t.recent[1:]
	}
	if keep {
		t.retained = append(t.retained, tr)
		if len(t.retained) > t.cfg.RetainCapacity {
			t.retained = t.retained[1:]
		}
	}
	t.mu.Unlock()
}

// SpanExport is one span rendered for the /debug/requests JSON document.
type SpanExport struct {
	SpanID   string        `json:"span_id"`
	Parent   string        `json:"parent_span_id,omitempty"`
	Name     string        `json:"name"`
	StartUS  float64       `json:"start_us"` // offset from the trace start
	DurUS    float64       `json:"dur_us"`
	Error    string        `json:"error,omitempty"`
	Attrs    []Attr        `json:"attrs,omitempty"`
	Events   []EventView   `json:"events,omitempty"`
	Children []*SpanExport `json:"children,omitempty"`
	// Unfinished marks a span still open at export time (an async store
	// fill, a detached leader); DurUS is then the elapsed time so far.
	Unfinished bool `json:"unfinished,omitempty"`
}

// EventView is a span event rendered with its offset from the trace start.
type EventView struct {
	Name string  `json:"name"`
	AtUS float64 `json:"at_us"`
}

// TraceExport is one trace rendered for the /debug/requests JSON document.
type TraceExport struct {
	TraceID      string        `json:"trace_id"`
	Name         string        `json:"name"`
	Start        time.Time     `json:"start"`
	DurMS        float64       `json:"dur_ms"`
	InFlight     bool          `json:"in_flight,omitempty"`
	Error        bool          `json:"error,omitempty"`
	Degraded     bool          `json:"degraded,omitempty"`
	Slow         bool          `json:"slow,omitempty"`
	ParentSpan   string        `json:"parent_span_id,omitempty"`
	DroppedSpans int           `json:"dropped_spans,omitempty"`
	Spans        []*SpanExport `json:"spans"`
}

// export renders the trace under its own lock.
func (t *Tracer) export(tr *Trace, inFlight bool) *TraceExport {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	now := time.Now()
	out := &TraceExport{
		TraceID:      tr.id,
		Name:         tr.name,
		Start:        tr.start,
		InFlight:     inFlight,
		Error:        tr.errored,
		Degraded:     tr.degraded,
		ParentSpan:   tr.parentSpan,
		DroppedSpans: tr.dropped,
	}
	dur := tr.dur
	if !tr.finished {
		dur = now.Sub(tr.start)
	}
	out.DurMS = float64(dur.Microseconds()) / 1e3
	out.Slow = tr.finished && tr.dur >= t.cfg.SlowThreshold
	byID := make(map[uint64]*SpanExport, len(tr.spans))
	for _, sp := range tr.spans {
		se := &SpanExport{
			SpanID:  fmt.Sprintf("%016x", sp.id),
			Name:    sp.name,
			StartUS: float64(sp.start.Sub(tr.start).Microseconds()),
			Error:   sp.errMsg,
			Attrs:   append([]Attr(nil), sp.attrs...),
		}
		if sp.parent != 0 {
			se.Parent = fmt.Sprintf("%016x", sp.parent)
		}
		d := sp.dur
		if !sp.ended {
			d = now.Sub(sp.start)
			se.Unfinished = true
		}
		se.DurUS = float64(d.Microseconds())
		for _, ev := range sp.events {
			se.Events = append(se.Events, EventView{Name: ev.Name, AtUS: float64(ev.At.Sub(tr.start).Microseconds())})
		}
		byID[sp.id] = se
	}
	// Stitch the tree; spans whose parent was dropped at the cap surface as
	// extra roots rather than disappearing.
	for _, sp := range tr.spans {
		se := byID[sp.id]
		if parent, ok := byID[sp.parent]; ok && sp.parent != sp.id {
			parent.Children = append(parent.Children, se)
		} else {
			out.Spans = append(out.Spans, se)
		}
	}
	return out
}

// RequestsDump is the /debug/requests document: in-flight traces plus the
// two completed rings, newest first.
type RequestsDump struct {
	InFlight []*TraceExport `json:"in_flight"`
	Recent   []*TraceExport `json:"recent"`
	Retained []*TraceExport `json:"retained"`
}

// Dump exports every tracked trace, newest first in each list. Nil-safe.
func (t *Tracer) Dump() RequestsDump {
	dump := RequestsDump{
		InFlight: []*TraceExport{},
		Recent:   []*TraceExport{},
		Retained: []*TraceExport{},
	}
	if t == nil {
		return dump
	}
	t.mu.Lock()
	inflight := make([]*Trace, 0, len(t.inflight))
	seqs := make([]uint64, 0, len(t.inflight))
	for seq := range t.inflight {
		seqs = append(seqs, seq)
	}
	// Newest first by sequence.
	for i := 0; i < len(seqs); i++ {
		for j := i + 1; j < len(seqs); j++ {
			if seqs[j] > seqs[i] {
				seqs[i], seqs[j] = seqs[j], seqs[i]
			}
		}
	}
	for _, seq := range seqs {
		inflight = append(inflight, t.inflight[seq])
	}
	recent := append([]*Trace(nil), t.recent...)
	retained := append([]*Trace(nil), t.retained...)
	t.mu.Unlock()

	for _, tr := range inflight {
		dump.InFlight = append(dump.InFlight, t.export(tr, true))
	}
	for i := len(recent) - 1; i >= 0; i-- {
		dump.Recent = append(dump.Recent, t.export(recent[i], false))
	}
	for i := len(retained) - 1; i >= 0; i-- {
		dump.Retained = append(dump.Retained, t.export(retained[i], false))
	}
	return dump
}

// lookup finds a tracked trace by id (in-flight first, then the rings,
// newest first).
func (t *Tracer) lookup(id string) (*Trace, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, tr := range t.inflight {
		if tr.id == id {
			return tr, true
		}
	}
	for i := len(t.retained) - 1; i >= 0; i-- {
		if t.retained[i].id == id {
			return t.retained[i], true
		}
	}
	for i := len(t.recent) - 1; i >= 0; i-- {
		if t.recent[i].id == id {
			return t.recent[i], true
		}
	}
	return nil, false
}

// Export renders one trace by id.
func (t *Tracer) Export(id string) (*TraceExport, bool) {
	tr, ok := t.lookup(id)
	if !ok {
		return nil, false
	}
	t.mu.Lock()
	_, inFlight := t.seqOf[tr]
	t.mu.Unlock()
	return t.export(tr, inFlight), true
}

// ChromeTrace renders one trace by id as Chrome trace_event JSON events:
// one complete ("X") event per span (each span on its own named thread lane
// so concurrent spans never overlap on a lane), and one zero-duration event
// per span event. Feed the result to MarshalChromeTrace / WriteChromeTrace.
func (t *Tracer) ChromeTrace(id string) ([]TraceEvent, bool) {
	tr, ok := t.lookup(id)
	if !ok {
		return nil, false
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	now := time.Now()
	events := []TraceEvent{ProcessName(1, "request "+tr.id)}
	for _, sp := range tr.spans {
		tid := int(sp.id)
		events = append(events, ThreadName(1, tid, sp.name))
		d := sp.dur
		if !sp.ended {
			d = now.Sub(sp.start)
		}
		ev := Complete(sp.name, float64(sp.start.Sub(tr.start).Microseconds()), float64(d.Microseconds()), 1, tid)
		if len(sp.attrs) > 0 || sp.errMsg != "" {
			ev.Args = map[string]interface{}{}
			for _, a := range sp.attrs {
				ev.Args[a.K] = a.V
			}
			if sp.errMsg != "" {
				ev.Args["error"] = sp.errMsg
			}
		}
		events = append(events, ev)
		for _, se := range sp.events {
			events = append(events, Complete(se.Name, float64(se.At.Sub(tr.start).Microseconds()), 0, 1, tid))
		}
	}
	return events, true
}

// ParseTraceparent parses a W3C traceparent header
// ("00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>"), returning the
// trace-id and parent-id. ok is false for anything malformed, for an
// unsupported version, and for all-zero ids.
func ParseTraceparent(h string) (traceID, parentID string, ok bool) {
	h = strings.TrimSpace(h)
	parts := strings.Split(h, "-")
	if len(parts) != 4 {
		return "", "", false
	}
	version, tid, pid, flags := parts[0], parts[1], parts[2], parts[3]
	if len(version) != 2 || len(tid) != 32 || len(pid) != 16 || len(flags) != 2 {
		return "", "", false
	}
	if version == "ff" {
		return "", "", false
	}
	allZero := func(s string) bool { return strings.Trim(s, "0") == "" }
	for _, f := range []string{version, tid, pid, flags} {
		if !isLowerHex(f) {
			return "", "", false
		}
	}
	if allZero(tid) || allZero(pid) {
		return "", "", false
	}
	return tid, pid, true
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return len(s) > 0
}

// FormatTraceparent renders a W3C traceparent header for the given trace-id
// and span-id (sampled flag set).
func FormatTraceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

// tpRng seeds NewTraceparent's ids; clients without an active span still
// need globally unique trace-ids.
var tpRng struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewTraceparent generates a fresh W3C traceparent header with random
// trace-id and parent-id — for clients originating a trace without a local
// span to inherit from.
func NewTraceparent() string {
	tpRng.mu.Lock()
	if tpRng.rng == nil {
		tpRng.rng = rand.New(rand.NewSource(time.Now().UnixNano() ^ int64(os.Getpid())<<32))
	}
	var hi, lo, sp uint64
	for hi|lo == 0 {
		hi, lo = tpRng.rng.Uint64(), tpRng.rng.Uint64()
	}
	for sp == 0 {
		sp = tpRng.rng.Uint64()
	}
	tpRng.mu.Unlock()
	return FormatTraceparent(fmt.Sprintf("%016x%016x", hi, lo), fmt.Sprintf("%016x", sp))
}

// HTTPTrace wraps a handler with per-request tracing: it opens a trace named
// "<METHOD> <path>" (adopting an inbound W3C traceparent's trace-id when one
// is presented), sets the X-Trace-Id response header, threads the root span
// and a trace-id-stamped logger through the request context, and finishes
// the trace with the response status when the handler returns. A status of
// 500+ marks the trace errored (and therefore retained). A nil tracer
// returns next untouched — the disabled path costs nothing per request.
func HTTPTrace(t *Tracer, next http.Handler) http.Handler {
	if t == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr, root := t.StartRequest(r.Method+" "+r.URL.Path, r.Header.Get("traceparent"))
		w.Header().Set("X-Trace-Id", tr.ID())
		ctx := ContextWithSpan(r.Context(), root)
		if lg := LoggerFrom(ctx); lg != nopLogger {
			ctx = WithLogger(ctx, lg.With("trace_id", tr.ID()))
		}
		rec := &statusRecorder{ResponseWriter: w}
		defer func() {
			status := rec.status
			if status == 0 {
				status = http.StatusOK
			}
			root.SetAttrInt("http.status", int64(status))
			if status >= 500 {
				root.SetError(fmt.Errorf("http status %d", status))
			}
			root.End()
			t.Finish(tr)
		}()
		next.ServeHTTP(rec, r.WithContext(ctx))
	})
}
