package store

import (
	"encoding/binary"
	"testing"

	"github.com/fusedmindlab/transfusion"
)

// FuzzStoreDecode holds the on-disk record decoder to its contract: arbitrary
// bytes — truncations, bit flips, wrong magic or version, lying payload
// lengths, hostile JSON — must produce an error, never a panic or a giant
// allocation, and a successful decode must be internally consistent (the key
// hashes to the checked file name and re-encoding round-trips).
func FuzzStoreDecode(f *testing.F) {
	valid, err := encodeRecord(record{
		Key:         "arch=\"edge\"|model=\"bert\"",
		SavedUnixMS: 1700000000000,
		Result:      transfusion.RunResult{Arch: "edge", Model: "bert", SeqLen: 1024, Cycles: 12345, Tile: "M=64"},
	})
	if err != nil {
		f.Fatal(err)
	}

	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(magic))
	// Every truncation boundary of a valid record.
	for _, cut := range []int{1, 4, 8, headerSize, headerSize + 1, len(valid) - checksumSize, len(valid) - 1} {
		f.Add(append([]byte{}, valid[:cut]...))
	}
	// Bit flips in the header, payload, and checksum.
	for _, off := range []int{0, 5, headerSize + 2, len(valid) - 2} {
		mut := append([]byte{}, valid...)
		mut[off] ^= 0x80
		f.Add(mut)
	}
	// Wrong schema version with a recomputed, valid checksum.
	skew := append([]byte{}, valid[:len(valid)-checksumSize]...)
	binary.LittleEndian.PutUint32(skew[4:8], SchemaVersion^0xdeadbeef)
	f.Add(appendChecksum(skew))
	// A header claiming a payload far larger than the file (and than the
	// allocation limit).
	lie := append([]byte{}, valid...)
	binary.LittleEndian.PutUint64(lie[8:headerSize], 1<<40)
	f.Add(lie)
	// Trailing garbage after an otherwise valid record.
	f.Add(append(append([]byte{}, valid...), 0xff, 0x00, 0x7f))

	wantFile := FileName("arch=\"edge\"|model=\"bert\"")
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := decodeRecord(data, wantFile)
		if err != nil {
			return // rejected: the only other acceptable outcome is below
		}
		// Anything the decoder accepts must be self-consistent...
		if rec.Key == "" {
			t.Fatal("decoder accepted a record with an empty key")
		}
		if FileName(rec.Key) != wantFile {
			t.Fatalf("decoder accepted key %q that does not hash to %s", rec.Key, wantFile)
		}
		// ...and survive a re-encode/re-decode round trip.
		again, err := encodeRecord(rec)
		if err != nil {
			t.Fatalf("re-encoding an accepted record: %v", err)
		}
		if _, err := decodeRecord(again, wantFile); err != nil {
			t.Fatalf("round trip of an accepted record failed: %v", err)
		}

		// The name-unchecked mode used before a key is known must agree on
		// validity (it only skips the file-name comparison).
		if _, err := decodeRecord(data, ""); err != nil {
			t.Fatalf("decode succeeded with a name check but failed without: %v", err)
		}
	})
}
