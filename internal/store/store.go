// Package store is transfusiond's durable plan tier: a disk-backed,
// content-addressed store of completed RunResults keyed by
// RunSpec.CanonicalKey(), layered under the serving layer's in-memory LRU so
// searched schedules survive restarts (memory hit -> disk hit -> search).
//
// The store is built around one asymmetry: a lost record costs a re-search,
// a wrong record costs a wrong plan. Every failure mode therefore degrades
// to a cache miss, never to bad data being served:
//
//   - Writes are crash-safe. A record is serialised to a temp file in the
//     store directory, fsynced, and atomically renamed into place (then the
//     directory is fsynced, so the rename itself survives a crash). A crash
//     at any point leaves either the old state or the new state plus an
//     orphaned temp file — never a torn record under a live name.
//   - Records are self-verifying: a fixed magic, a schema version derived
//     from the CanonicalKey format (any change to the key's field set or
//     rendering changes the version and retires old records), the payload
//     length, and a SHA-256 checksum over header+payload. The decoder also
//     confirms the payload's embedded key hashes to the record's file name,
//     so a renamed or cross-copied file cannot serve under the wrong key.
//   - Opening is defensive: the boot scan verifies every record and
//     quarantines — renames into a quarantine/ subdirectory, never deletes —
//     anything torn, corrupted, or version-skewed, reporting
//     store.loaded/recovered/quarantined counters. Orphaned temp files
//     (interrupted writes) are swept aside the same way.
//   - Reads verify the checksum again and quarantine on mismatch, so
//     bit-rot after boot also degrades to a miss.
//
// An LRU-by-access-time eviction policy bounds the directory to a byte
// budget (evicting valid entries deletes them; quarantine is only ever for
// suspect bytes). Disk-fault injection sites (chaos.SiteStoreWrite /
// SiteStoreRead / SiteStoreFsync) thread through every file operation so the
// chaos suites can prove the miss-never-corrupt contract under -race.
package store

import (
	"bytes"
	"context"
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/fusedmindlab/transfusion"
	"github.com/fusedmindlab/transfusion/internal/chaos"
	"github.com/fusedmindlab/transfusion/internal/obs"
)

const (
	// magic opens every record file.
	magic = "TFPL"
	// recordSuffix names committed records; anything else in the directory
	// is either a temp file, the quarantine directory, or not ours.
	recordSuffix = ".plan"
	// tmpPrefix names in-progress writes. A temp file present at boot is an
	// interrupted write: swept into quarantine and counted as recovered.
	tmpPrefix = ".tmp-"
	// QuarantineDir is the subdirectory suspect files are renamed into.
	QuarantineDir = "quarantine"

	headerSize   = 4 + 4 + 8 // magic + version + payload length
	checksumSize = sha256.Size

	// maxPayloadBytes bounds a record's decoded payload; real records are a
	// few KB, so anything claiming more is corrupt (and must not drive a
	// giant allocation in the decoder).
	maxPayloadBytes = 8 << 20
)

// SchemaVersion fingerprints the CanonicalKey format: the canonical key of a
// fixed sentinel spec exercising every key field, folded through FNV-1a.
// Adding, removing, reordering, or re-rendering a key field changes the
// sentinel's key string and therefore the version, so records written under
// an older key scheme are quarantined at boot instead of being consulted
// under keys that no longer mean the same evaluation.
var SchemaVersion = func() uint32 {
	sentinel := transfusion.RunSpec{
		Arch: "schema", ArchFile: "schema", Model: "schema", SeqLen: 1,
		System: "schema", Batch: 1, SearchBudget: 1, Causal: true,
		SearchTimeout: time.Second, HeuristicOnly: true,
		CustomModel: &transfusion.CustomModel{
			Name: "schema", Heads: 1, HeadDim: 1, FFNHidden: 1, Layers: 1, Activation: "schema",
		},
	}
	h := fnv.New32a()
	h.Write([]byte(sentinel.CanonicalKey())) //nolint:errcheck // fnv never fails
	h.Write([]byte(recordLayout))            //nolint:errcheck // fnv never fails
	return h.Sum32()
}()

// recordLayout salts SchemaVersion with the record payload's layout, so
// changes to the stored RunResult shape retire old records the same way key
// format changes do. v2 added the PlanSummary (the warm-start hint): a
// pre-hint record would decode cleanly but silently carry no plan, so the
// version bump routes it through the quarantine path instead.
const recordLayout = "|record=v2-plan-summary"

// record is the on-disk payload (JSON inside the versioned binary envelope).
type record struct {
	// Key is the full canonical key the result was computed for; Get
	// verifies it matches the requested key, and the decoder verifies it
	// hashes to the record's file name.
	Key string `json:"key"`
	// SavedUnixMS records when the entry was persisted (diagnostics only).
	SavedUnixMS int64 `json:"saved_unix_ms"`
	// Result is the completed evaluation.
	Result transfusion.RunResult `json:"result"`
}

// FileName returns the committed record name for a canonical key: the hex
// SHA-256 of the key plus the record suffix. Content addressing keeps names
// filesystem-safe at any key length and makes the key->file mapping
// verifiable in both directions.
func FileName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:]) + recordSuffix
}

// encodeRecord serialises a record into the on-disk envelope:
// magic | version | payload length | JSON payload | SHA-256(header+payload).
func encodeRecord(rec record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("store: encoding record for %s: %w", rec.Key, err)
	}
	buf := make([]byte, 0, headerSize+len(payload)+checksumSize)
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, SchemaVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	sum := sha256.Sum256(buf)
	return append(buf, sum[:]...), nil
}

// decodeRecord parses and verifies one record file's bytes. Every defect —
// truncation, bit flips anywhere in header, payload, or checksum, a version
// from a different CanonicalKey format, payload-length lies, trailing
// garbage, undecodable JSON, or a key that does not hash to wantFile — is an
// error and never a panic (FuzzStoreDecode holds it to that). wantFile ""
// skips the file-name check.
func decodeRecord(data []byte, wantFile string) (record, error) {
	var rec record
	if len(data) < headerSize+checksumSize {
		return rec, fmt.Errorf("store: record truncated: %d bytes < minimum %d", len(data), headerSize+checksumSize)
	}
	if string(data[:4]) != magic {
		return rec, fmt.Errorf("store: bad magic %q", data[:4])
	}
	version := binary.LittleEndian.Uint32(data[4:8])
	if version != SchemaVersion {
		return rec, fmt.Errorf("store: schema version %#x does not match current %#x (CanonicalKey format changed)", version, SchemaVersion)
	}
	plen := binary.LittleEndian.Uint64(data[8:headerSize])
	if plen > maxPayloadBytes {
		return rec, fmt.Errorf("store: payload length %d exceeds limit %d", plen, maxPayloadBytes)
	}
	if uint64(len(data)) != headerSize+plen+checksumSize {
		return rec, fmt.Errorf("store: record is %d bytes, header claims %d", len(data), headerSize+plen+uint64(checksumSize))
	}
	body := data[:headerSize+plen]
	sum := sha256.Sum256(body)
	if !bytes.Equal(sum[:], data[headerSize+plen:]) {
		return rec, errors.New("store: checksum mismatch")
	}
	dec := json.NewDecoder(bytes.NewReader(body[headerSize:]))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rec); err != nil {
		return rec, fmt.Errorf("store: undecodable payload: %w", err)
	}
	if rec.Key == "" {
		return rec, errors.New("store: record has empty key")
	}
	if wantFile != "" && FileName(rec.Key) != wantFile {
		return rec, fmt.Errorf("store: key does not hash to file name %s", wantFile)
	}
	return rec, nil
}

// entry is one committed record in the in-memory index.
type entry struct {
	key  string
	file string // base name within dir
	size int64
}

// Store is the durable plan tier. All methods are safe for concurrent use.
type Store struct {
	dir      string
	maxBytes int64

	mu         sync.Mutex
	lru        *list.List               // front = most recently used
	byKey      map[string]*list.Element // key -> element holding *entry
	totalBytes int64

	hits        *obs.Counter
	misses      *obs.Counter
	puts        *obs.Counter
	putErrors   *obs.Counter
	readErrors  *obs.Counter
	evictions   *obs.Counter
	loaded      *obs.Counter
	recovered   *obs.Counter
	quarantined *obs.Counter
	entriesG    *obs.Gauge
	bytesG      *obs.Gauge
}

// Open mounts (creating if needed) the store at dir, bounded to maxBytes on
// disk (<= 0 disables the cap), and runs the recovery scan: every committed
// record is read and verified, valid entries are indexed LRU-ordered by
// modification time, orphaned temp files are swept into quarantine
// (store.recovered), and torn/corrupted/version-skewed records are
// quarantined (store.quarantined) — renamed aside, never deleted, so a bad
// record is still on disk for a post-mortem. reg (nil-safe) receives the
// store.* metrics.
func Open(dir string, maxBytes int64, reg *obs.Registry) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, QuarantineDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	s := &Store{
		dir:      dir,
		maxBytes: maxBytes,
		lru:      list.New(),
		byKey:    make(map[string]*list.Element),

		hits:        reg.Counter("store.hits"),
		misses:      reg.Counter("store.misses"),
		puts:        reg.Counter("store.puts"),
		putErrors:   reg.Counter("store.put_errors"),
		readErrors:  reg.Counter("store.read_errors"),
		evictions:   reg.Counter("store.evictions"),
		loaded:      reg.Counter("store.loaded"),
		recovered:   reg.Counter("store.recovered"),
		quarantined: reg.Counter("store.quarantined"),
		entriesG:    reg.Gauge("store.entries"),
		bytesG:      reg.Gauge("store.size_bytes"),
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// recover is the boot scan; see Open.
func (s *Store) recover() error {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: scanning %s: %w", s.dir, err)
	}
	type found struct {
		e     entry
		mtime time.Time
	}
	var valid []found
	for _, de := range ents {
		name := de.Name()
		switch {
		case de.IsDir():
			continue // quarantine/ (or someone else's subdirectory)
		case strings.HasPrefix(name, tmpPrefix):
			// An interrupted write: by construction it never reached its
			// final name, so nothing references it — sweep it aside.
			s.quarantine(name)
			s.recovered.Inc()
			continue
		case !strings.HasSuffix(name, recordSuffix):
			continue // not ours; leave it alone
		}
		path := filepath.Join(s.dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			s.quarantine(name)
			s.quarantined.Inc()
			continue
		}
		rec, err := decodeRecord(data, name)
		if err != nil {
			s.quarantine(name)
			s.quarantined.Inc()
			continue
		}
		info, err := de.Info()
		mtime := time.Now()
		if err == nil {
			mtime = info.ModTime()
		}
		valid = append(valid, found{e: entry{key: rec.Key, file: name, size: int64(len(data))}, mtime: mtime})
	}
	// Oldest first, so pushing to the LRU front leaves the most recently
	// touched record at the front (first to warm-start, last to evict).
	// Records sharing an mtime (coarse filesystem clocks make this common
	// for a burst of writes) tie-break on file name, so warm-restart MRU
	// order is deterministic across boots.
	sort.Slice(valid, func(i, j int) bool {
		if valid[i].mtime.Equal(valid[j].mtime) {
			return valid[i].e.file < valid[j].e.file
		}
		return valid[i].mtime.Before(valid[j].mtime)
	})
	s.mu.Lock()
	for i := range valid {
		e := valid[i].e
		s.byKey[e.key] = s.lru.PushFront(&entry{key: e.key, file: e.file, size: e.size})
		s.totalBytes += e.size
	}
	s.loaded.Add(int64(len(valid)))
	s.evictLocked()
	s.publishLocked()
	s.mu.Unlock()
	return nil
}

// quarantine renames a suspect file into the quarantine directory with a
// uniquifying timestamp suffix. Best-effort: the file may already be gone.
func (s *Store) quarantine(name string) {
	dst := filepath.Join(s.dir, QuarantineDir, fmt.Sprintf("%s.%d", name, time.Now().UnixNano()))
	os.Rename(filepath.Join(s.dir, name), dst) //nolint:errcheck
}

// publishLocked refreshes the occupancy gauges. Caller holds mu.
func (s *Store) publishLocked() {
	s.entriesG.Set(float64(s.lru.Len()))
	s.bytesG.Set(float64(s.totalBytes))
}

// evictLocked deletes least-recently-used entries until the byte budget
// holds. Eviction is the one place the store deletes: these are verified,
// valid records being traded for space, not suspect bytes. Caller holds mu.
func (s *Store) evictLocked() {
	if s.maxBytes <= 0 {
		return
	}
	for s.totalBytes > s.maxBytes && s.lru.Len() > 0 {
		tail := s.lru.Back()
		e := tail.Value.(*entry)
		s.lru.Remove(tail)
		delete(s.byKey, e.key)
		s.totalBytes -= e.size
		os.Remove(filepath.Join(s.dir, e.file)) //nolint:errcheck
		s.evictions.Inc()
	}
}

// Put durably persists a completed result under its canonical key:
// serialise, write to a temp file, fsync, atomically rename into place,
// fsync the directory. On any error the store's on-disk state is unchanged
// (an injected short write deliberately leaves a torn temp file — the exact
// residue of a crash mid-write — which the next Open sweeps). ctx carries
// the chaos injector and bounds injected latency.
func (s *Store) Put(ctx context.Context, key string, res transfusion.RunResult) (err error) {
	// A traced caller (the serving layer's async fill) sees the commit as a
	// "store.write" span whose duration covers the whole
	// write→fsync→rename pipeline, injected chaos latency included.
	_, sp := obs.StartSpan(ctx, "store.write")
	defer func() {
		if err != nil {
			s.putErrors.Inc()
		}
		sp.EndErr(err)
	}()
	if key == "" {
		return errors.New("store: empty key")
	}
	data, err := encodeRecord(record{Key: key, SavedUnixMS: time.Now().UnixMilli(), Result: res})
	if err != nil {
		return err
	}
	f, err := os.CreateTemp(s.dir, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("store: creating temp file: %w", err)
	}
	tmp := f.Name()
	if serr := chaos.SiteFrom(ctx, chaos.SiteStoreWrite).Strike(ctx); serr != nil {
		if errors.Is(serr, chaos.ErrShortWrite) {
			// A torn write: half the record reaches the disk, then the
			// "crash". The temp file is left in place on purpose — it is the
			// state a real kill-mid-write leaves, and recovery must sweep it.
			f.Write(data[:len(data)/2]) //nolint:errcheck
			f.Close()                   //nolint:errcheck
			return serr
		}
		f.Close()      //nolint:errcheck
		os.Remove(tmp) //nolint:errcheck
		return serr
	}
	if _, err := f.Write(data); err != nil {
		f.Close()      //nolint:errcheck
		os.Remove(tmp) //nolint:errcheck
		return fmt.Errorf("store: writing %s: %w", tmp, err)
	}
	if serr := chaos.SiteFrom(ctx, chaos.SiteStoreFsync).Strike(ctx); serr != nil {
		f.Close()      //nolint:errcheck
		os.Remove(tmp) //nolint:errcheck
		return serr
	}
	if err := f.Sync(); err != nil {
		f.Close()      //nolint:errcheck
		os.Remove(tmp) //nolint:errcheck
		return fmt.Errorf("store: fsync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp) //nolint:errcheck
		return fmt.Errorf("store: closing %s: %w", tmp, err)
	}
	file := FileName(key)
	if err := os.Rename(tmp, filepath.Join(s.dir, file)); err != nil {
		os.Remove(tmp) //nolint:errcheck
		return fmt.Errorf("store: committing %s: %w", file, err)
	}
	// The rename is already visible; a failed directory fsync only weakens
	// crash durability of the rename itself. The entry is indexed anyway —
	// worst case a crash forgets it, which is a miss.
	syncDir(s.dir) //nolint:errcheck

	s.mu.Lock()
	if el, ok := s.byKey[key]; ok {
		// Overwrite: same file name, new size.
		old := el.Value.(*entry)
		s.totalBytes += int64(len(data)) - old.size
		old.size = int64(len(data))
		s.lru.MoveToFront(el)
	} else {
		s.byKey[key] = s.lru.PushFront(&entry{key: key, file: file, size: int64(len(data))})
		s.totalBytes += int64(len(data))
	}
	s.evictLocked()
	s.publishLocked()
	s.mu.Unlock()
	s.puts.Inc()
	return nil
}

// Get returns the stored result for key. Every failure — unknown key,
// injected or real read error, a record that fails verification (which is
// quarantined on the spot), a key mismatch — reports a miss: the disk tier
// can cost a re-search, never a wrong plan. A hit refreshes the entry's LRU
// position and (best-effort) its file mtime, so access recency survives
// restarts.
//
// A traced caller sees the lookup as a "store.read" span: its duration
// covers the whole read (injected chaos latency included), its "outcome"
// attr distinguishes a clean miss from a fault-induced one, and a fault's
// error lands on the span even though the caller only ever observes a miss.
func (s *Store) Get(ctx context.Context, key string) (transfusion.RunResult, bool) {
	ctx, sp := obs.StartSpan(ctx, "store.read")
	res, outcome, err := s.get(ctx, key)
	if sp != nil {
		sp.SetAttrBool("hit", outcome == "hit")
		sp.SetAttr("outcome", outcome)
		sp.EndErr(err)
	}
	return res, outcome == "hit"
}

// get is Get's body; outcome is "hit", "miss" (key unknown), or the failure
// class behind a forced miss ("read_error", "quarantined"), with err carrying
// the underlying fault for trace attribution.
func (s *Store) get(ctx context.Context, key string) (transfusion.RunResult, string, error) {
	s.mu.Lock()
	el, ok := s.byKey[key]
	if !ok {
		s.mu.Unlock()
		s.misses.Inc()
		return transfusion.RunResult{}, "miss", nil
	}
	file := el.Value.(*entry).file
	s.mu.Unlock()

	if err := chaos.SiteFrom(ctx, chaos.SiteStoreRead).Strike(ctx); err != nil {
		s.readErrors.Inc()
		s.misses.Inc()
		return transfusion.RunResult{}, "read_error", err
	}
	data, err := os.ReadFile(filepath.Join(s.dir, file))
	if err != nil {
		// Concurrently evicted, or genuinely unreadable: a miss either way.
		s.readErrors.Inc()
		s.misses.Inc()
		return transfusion.RunResult{}, "read_error", err
	}
	rec, err := decodeRecord(data, file)
	if err != nil || rec.Key != key {
		// Verified bad after boot (bit-rot, tampering, or a hash collision's
		// impostor): quarantine and forget it.
		s.quarantine(file)
		s.quarantined.Inc()
		s.dropEntry(key)
		s.misses.Inc()
		if err == nil {
			err = fmt.Errorf("store: record %s carries key %q, want %q", file, rec.Key, key)
		}
		return transfusion.RunResult{}, "quarantined", err
	}

	s.mu.Lock()
	if el, ok := s.byKey[key]; ok {
		s.lru.MoveToFront(el)
	}
	s.mu.Unlock()
	now := time.Now()
	os.Chtimes(filepath.Join(s.dir, file), now, now) //nolint:errcheck // best-effort recency persistence
	s.hits.Inc()
	return rec.Result, "hit", nil
}

// dropEntry removes key from the index (after its file was quarantined).
func (s *Store) dropEntry(key string) {
	s.mu.Lock()
	if el, ok := s.byKey[key]; ok {
		s.lru.Remove(el)
		delete(s.byKey, key)
		s.totalBytes -= el.Value.(*entry).size
		s.publishLocked()
	}
	s.mu.Unlock()
}

// WarmEntry is one decoded record returned by WarmEntries.
type WarmEntry struct {
	Key    string
	Result transfusion.RunResult
}

// WarmEntries streams up to max records, most recently used first, to fn,
// stopping early when fn returns false — the warm-restart seed for an
// in-memory cache layered above the store. Records are read and decoded
// lazily, one at a time, so a consumer that stops early (a cache smaller
// than the store) never pays decode cost for payloads it will not keep.
// Records failing re-verification are skipped (and quarantined by the Get
// machinery on their next touch); a short read here costs warmth, not
// correctness.
func (s *Store) WarmEntries(max int, fn func(WarmEntry) bool) {
	s.mu.Lock()
	files := make([]string, 0, max)
	for el := s.lru.Front(); el != nil && len(files) < max; el = el.Next() {
		files = append(files, el.Value.(*entry).file)
	}
	s.mu.Unlock()
	for _, file := range files {
		data, err := os.ReadFile(filepath.Join(s.dir, file))
		if err != nil {
			continue
		}
		rec, err := decodeRecord(data, file)
		if err != nil {
			continue
		}
		if !fn(WarmEntry{Key: rec.Key, Result: rec.Result}) {
			return
		}
	}
}

// Keys returns every committed record's canonical key, sorted — the input
// to offline walks of the stored plan grid (the serving layer's -warm-grid
// precompute).
func (s *Store) Keys() []string {
	s.mu.Lock()
	out := make([]string, 0, len(s.byKey))
	for k := range s.byKey {
		out = append(out, k)
	}
	s.mu.Unlock()
	sort.Strings(out)
	return out
}

// NearestEntry is the warm-start neighbour returned by Nearest.
type NearestEntry struct {
	// Key is the neighbour's canonical key.
	Key string
	// SeqLen is the neighbour's sequence length.
	SeqLen int
	// Result is the neighbour's stored evaluation (Plan non-nil).
	Result transfusion.RunResult
}

// Nearest returns the stored plan nearest to the spec behind key: the same
// canonical key on every field except SeqLen (the warm-start family —
// distance is derived from the parsed CanonicalKey fields), minimising
// |SeqLen - want| with ties broken towards the smaller sequence so the
// choice is deterministic. The exact key itself is never a candidate: exact
// hits belong to the memory and disk tiers, which are consulted before any
// warm-start lookup. Records whose result carries no plan summary or is
// degraded are skipped — degraded results are never persisted in the first
// place, and a hint must never launder one back into a search. The chosen
// record is read through the same verify-or-quarantine machinery as Get
// (and counts in store.hits like any read), so a torn neighbour degrades to
// "no hint", never to a wrong hint.
func (s *Store) Nearest(ctx context.Context, key string) (NearestEntry, bool) {
	want, ok := transfusion.ParseCanonicalKey(key)
	if !ok {
		return NearestEntry{}, false
	}
	wantSeq := want.SeqLen
	want.SeqLen = 0
	family := want.CanonicalKey()

	bestKey, bestSeq := "", 0
	bestDist := int64(-1)
	for _, k := range s.Keys() {
		if k == key {
			continue
		}
		spec, ok := transfusion.ParseCanonicalKey(k)
		if !ok {
			continue
		}
		seq := spec.SeqLen
		spec.SeqLen = 0
		if spec.CanonicalKey() != family {
			continue
		}
		d := int64(seq) - int64(wantSeq)
		if d < 0 {
			d = -d
		}
		if bestDist < 0 || d < bestDist || (d == bestDist && seq < bestSeq) {
			bestDist, bestSeq, bestKey = d, seq, k
		}
	}
	if bestKey == "" {
		return NearestEntry{}, false
	}
	res, outcome, _ := s.get(ctx, bestKey)
	if outcome != "hit" || res.Degraded || res.Plan == nil {
		return NearestEntry{}, false
	}
	return NearestEntry{Key: bestKey, SeqLen: bestSeq, Result: res}, true
}

// Len returns the number of committed records indexed.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// SizeBytes returns the total bytes of committed records indexed.
func (s *Store) SizeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totalBytes
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// syncDir fsyncs a directory so a just-committed rename survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
