package store

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/fusedmindlab/transfusion"
	"github.com/fusedmindlab/transfusion/internal/chaos"
	"github.com/fusedmindlab/transfusion/internal/obs"
)

func testResult(seq int) transfusion.RunResult {
	return transfusion.RunResult{
		Arch: "edge", Model: "bert", System: "transfusion", SeqLen: seq, Batch: 64,
		Cycles: 1e6 + float64(seq), Seconds: 0.001, Tile: "M=64,K=128",
		LayerCycles: map[string]float64{"QKV": 1, "MHA": 2},
		DRAMBytes:   4096, TileSearchEvals: 17,
	}
}

func testKey(seq int) string {
	return transfusion.RunSpec{Arch: "edge", Model: "bert", SeqLen: seq, System: "transfusion", SearchBudget: 8}.CanonicalKey()
}

func mustOpen(t *testing.T, dir string, maxBytes int64) (*Store, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	s, err := Open(dir, maxBytes, reg)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s, reg
}

// quarantined lists the files currently set aside in the quarantine dir.
func quarantined(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(filepath.Join(dir, QuarantineDir))
	if err != nil {
		t.Fatalf("reading quarantine: %v", err)
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

func TestPutGetRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, 0)
	ctx := context.Background()
	key, want := testKey(1024), testResult(1024)
	if err := s.Put(ctx, key, want); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := s.Get(ctx, key)
	if !ok {
		t.Fatal("Get missed a just-put key")
	}
	if got.Cycles != want.Cycles || got.Tile != want.Tile || got.LayerCycles["MHA"] != 2 {
		t.Fatalf("round trip mutated the result:\ngot  %+v\nwant %+v", got, want)
	}
	if s.Len() != 1 || s.SizeBytes() <= 0 {
		t.Fatalf("index after one put: len=%d bytes=%d", s.Len(), s.SizeBytes())
	}

	// A fresh Open over the same directory loads the record — the warm
	// restart path — and serves it bit-identically.
	s2, reg2 := mustOpen(t, dir, 0)
	if got := reg2.Counter("store.loaded").Value(); got != 1 {
		t.Fatalf("store.loaded after reopen = %d, want 1", got)
	}
	got2, ok := s2.Get(ctx, key)
	if !ok || got2.Cycles != want.Cycles || got2.Tile != want.Tile {
		t.Fatalf("reopened store answer (%v, %+v) diverged", ok, got2)
	}
	if warm := s2.WarmEntries(10); len(warm) != 1 || warm[0].Key != key || warm[0].Result.Cycles != want.Cycles {
		t.Fatalf("WarmEntries = %+v", warm)
	}
}

func TestUnknownKeyIsCleanMiss(t *testing.T) {
	s, reg := mustOpen(t, t.TempDir(), 0)
	if _, ok := s.Get(context.Background(), "no-such-key"); ok {
		t.Fatal("hit on an empty store")
	}
	if reg.Counter("store.misses").Value() != 1 {
		t.Fatal("miss not counted")
	}
}

// Corruption anywhere in a committed record — header, payload, or checksum —
// must quarantine the file (never delete it) and degrade to a miss.
func TestCorruptRecordsQuarantinedOnReopen(t *testing.T) {
	for _, tc := range []struct {
		name   string
		offset func(n int) int // byte to flip, given file length
	}{
		{"header-magic", func(n int) int { return 1 }},
		{"payload", func(n int) int { return headerSize + 3 }},
		{"checksum", func(n int) int { return n - 1 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s, _ := mustOpen(t, dir, 0)
			ctx := context.Background()
			key := testKey(1024)
			if err := s.Put(ctx, key, testResult(1024)); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, FileName(key))
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[tc.offset(len(data))] ^= 0x40
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}

			s2, reg2 := mustOpen(t, dir, 0)
			if got := reg2.Counter("store.quarantined").Value(); got != 1 {
				t.Fatalf("store.quarantined = %d, want 1", got)
			}
			if got := reg2.Counter("store.loaded").Value(); got != 0 {
				t.Fatalf("store.loaded = %d, want 0", got)
			}
			if _, ok := s2.Get(ctx, key); ok {
				t.Fatal("corrupted record served")
			}
			q := quarantined(t, dir)
			if len(q) != 1 || !strings.HasPrefix(q[0], FileName(key)) {
				t.Fatalf("quarantine contents %v, want the corrupt record set aside", q)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatal("corrupt record still at its live name")
			}
		})
	}
}

// A bit-rotted record discovered after boot (the boot scan saw it clean) is
// quarantined at read time.
func TestCorruptionAfterBootQuarantinedOnGet(t *testing.T) {
	dir := t.TempDir()
	s, reg := mustOpen(t, dir, 0)
	ctx := context.Background()
	key := testKey(2048)
	if err := s.Put(ctx, key, testResult(2048)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, FileName(key))
	data, _ := os.ReadFile(path)
	data[headerSize+1] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(ctx, key); ok {
		t.Fatal("bit-rotted record served")
	}
	if reg.Counter("store.quarantined").Value() != 1 {
		t.Fatal("read-time corruption not quarantined")
	}
	if s.Len() != 0 {
		t.Fatal("quarantined record still indexed")
	}
	// And a later Put of the same key recovers cleanly.
	if err := s.Put(ctx, key, testResult(2048)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(ctx, key); !ok {
		t.Fatal("re-put after quarantine missed")
	}
}

// Records written under a different CanonicalKey format (schema version) are
// quarantined at boot, not consulted.
func TestVersionSkewQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, 0)
	ctx := context.Background()
	key := testKey(1024)
	if err := s.Put(ctx, key, testResult(1024)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, FileName(key))
	data, _ := os.ReadFile(path)
	binary.LittleEndian.PutUint32(data[4:8], SchemaVersion+1)
	// Re-checksum so only the version differs — version checking must not
	// depend on the checksum tripping first.
	reencoded := append([]byte{}, data[:len(data)-checksumSize]...)
	if err := os.WriteFile(path, appendChecksum(reencoded), 0o644); err != nil {
		t.Fatal(err)
	}
	_, reg2 := mustOpen(t, dir, 0)
	if got := reg2.Counter("store.quarantined").Value(); got != 1 {
		t.Fatalf("store.quarantined = %d, want 1 (version skew)", got)
	}
	if got := reg2.Counter("store.loaded").Value(); got != 0 {
		t.Fatalf("store.loaded = %d, want 0", got)
	}
}

// A leftover temp file — an interrupted write — is swept into quarantine and
// counted as recovered, and never shadows or corrupts committed records.
func TestTornTempFilesRecoveredAtBoot(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, 0)
	ctx := context.Background()
	if err := s.Put(ctx, testKey(1024), testResult(1024)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, tmpPrefix+"123456"), []byte("TFPL torn half-rec"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, reg2 := mustOpen(t, dir, 0)
	if got := reg2.Counter("store.recovered").Value(); got != 1 {
		t.Fatalf("store.recovered = %d, want 1", got)
	}
	if got := reg2.Counter("store.quarantined").Value(); got != 0 {
		t.Fatalf("store.quarantined = %d, want 0 (temp sweep is recovery, not corruption)", got)
	}
	if got := reg2.Counter("store.loaded").Value(); got != 1 {
		t.Fatalf("store.loaded = %d, want 1", got)
	}
	if _, ok := s2.Get(ctx, testKey(1024)); !ok {
		t.Fatal("committed record lost during temp recovery")
	}
	if q := quarantined(t, dir); len(q) != 1 || !strings.HasPrefix(q[0], tmpPrefix) {
		t.Fatalf("quarantine contents %v, want the swept temp file", q)
	}
}

// The byte budget evicts least-recently-used records (deleting, not
// quarantining — they are valid) and holds across reopen.
func TestEvictionBySizeCap(t *testing.T) {
	dir := t.TempDir()
	s, reg := mustOpen(t, dir, 0)
	ctx := context.Background()
	seqs := []int{1024, 2048, 4096, 8192}
	for _, seq := range seqs {
		if err := s.Put(ctx, testKey(seq), testResult(seq)); err != nil {
			t.Fatal(err)
		}
	}
	one := s.SizeBytes() / int64(len(seqs))

	// Touch the oldest record so recency, not insertion order, decides.
	if _, ok := s.Get(ctx, testKey(1024)); !ok {
		t.Fatal("warm-up get missed")
	}

	// Reopen with room for two records: the two least recently used go.
	s2, reg2 := mustOpen(t, dir, 2*one+one/2)
	if got := s2.Len(); got != 2 {
		t.Fatalf("after capped reopen: %d entries, want 2", got)
	}
	if reg2.Counter("store.evictions").Value() != 2 {
		t.Fatalf("store.evictions = %d, want 2", reg2.Counter("store.evictions").Value())
	}
	if _, ok := s2.Get(ctx, testKey(1024)); !ok {
		t.Fatal("most recently used record was evicted")
	}
	if _, ok := s2.Get(ctx, testKey(2048)); ok {
		t.Fatal("least recently used record survived the cap")
	}
	if q := quarantined(t, dir); len(q) != 0 {
		t.Fatalf("eviction quarantined valid records: %v", q)
	}
	_ = reg

	// Puts into the capped store keep it bounded.
	for _, seq := range []int{512, 256, 128} {
		if err := s2.Put(ctx, testKey(seq), testResult(seq)); err != nil {
			t.Fatal(err)
		}
		if s2.SizeBytes() > 2*one+one/2 {
			t.Fatalf("size %d exceeds cap after put", s2.SizeBytes())
		}
	}
}

// Injected disk faults: every kind must degrade to an error (Put) or a clean
// miss (Get), leaving the store consistent.
func TestChaosWriteShortWriteLeavesTornTempOnly(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, 0)
	inj, err := chaos.New(1, chaos.SiteConfig{Site: chaos.SiteStoreWrite, Kind: chaos.KindShortWrite, Every: 1, Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := chaos.With(context.Background(), inj)
	key := testKey(1024)
	if err := s.Put(ctx, key, testResult(1024)); !errors.Is(err, chaos.ErrShortWrite) {
		t.Fatalf("Put under short-write injection = %v, want ErrShortWrite", err)
	}
	if _, ok := s.Get(ctx, key); ok {
		t.Fatal("torn write became visible under the live key")
	}
	// The torn temp file is on disk — exactly a crash's residue.
	ents, _ := os.ReadDir(dir)
	torn := 0
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			torn++
		}
	}
	if torn != 1 {
		t.Fatalf("%d torn temp files on disk, want 1", torn)
	}
	// The fault budget is spent: the retry commits, and a reopen both sweeps
	// the torn temp and serves the committed record.
	if err := s.Put(ctx, key, testResult(1024)); err != nil {
		t.Fatalf("retry Put: %v", err)
	}
	s2, reg2 := mustOpen(t, dir, 0)
	if reg2.Counter("store.recovered").Value() != 1 {
		t.Fatal("torn temp not recovered at reopen")
	}
	if got, ok := s2.Get(context.Background(), key); !ok || got.Cycles != testResult(1024).Cycles {
		t.Fatalf("committed record lost: (%v, %+v)", ok, got)
	}
}

func TestChaosReadAndFsyncFaultsDegradeCleanly(t *testing.T) {
	dir := t.TempDir()
	s, reg := mustOpen(t, dir, 0)
	key := testKey(1024)
	if err := s.Put(context.Background(), key, testResult(1024)); err != nil {
		t.Fatal(err)
	}

	inj, err := chaos.Parse("store.read=error@every=1@limit=1;store.fsync=error@every=1@limit=1", 42)
	if err != nil {
		t.Fatal(err)
	}
	ctx := chaos.With(context.Background(), inj)

	// Injected read error: clean miss, record untouched.
	if _, ok := s.Get(ctx, key); ok {
		t.Fatal("hit through an injected read error")
	}
	if reg.Counter("store.read_errors").Value() != 1 {
		t.Fatal("read error not counted")
	}
	if _, ok := s.Get(ctx, key); !ok {
		t.Fatal("record gone after injected read error — fault budget was limit=1")
	}

	// Injected fsync error: the put fails, no temp file survives, the old
	// record is still served.
	key2 := testKey(2048)
	if err := s.Put(ctx, key2, testResult(2048)); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("Put under fsync injection = %v, want ErrInjected", err)
	}
	if reg.Counter("store.put_errors").Value() != 1 {
		t.Fatal("put error not counted")
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			t.Fatalf("fsync-failed put leaked temp file %s", e.Name())
		}
	}
	if _, ok := s.Get(ctx, key); !ok {
		t.Fatal("prior record lost to a failed put")
	}
}

// Injected latency at store.read respects the caller's context — a slow disk
// cannot wedge a bounded caller.
func TestChaosReadLatencyBoundedByContext(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, 0)
	key := testKey(1024)
	if err := s.Put(context.Background(), key, testResult(1024)); err != nil {
		t.Fatal(err)
	}
	inj, err := chaos.Parse("store.read=latency:30s@every=1", 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(chaos.With(context.Background(), inj), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, ok := s.Get(ctx, key); ok {
		t.Fatal("hit through a timed-out read")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("bounded read took %v", elapsed)
	}
}

// The store is safe under concurrent puts and gets (run with -race).
func TestConcurrentPutGet(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir(), 1<<20)
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				seq := 256 << ((w + i) % 4)
				if err := s.Put(ctx, testKey(seq), testResult(seq)); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if res, ok := s.Get(ctx, testKey(seq)); ok && res.SeqLen != seq {
					t.Errorf("cross-key serve: asked seq %d, got %d", seq, res.SeqLen)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// appendChecksum re-signs a header+payload prefix (test helper for crafting
// records that are checksum-valid but wrong in other ways).
func appendChecksum(body []byte) []byte {
	sum := sha256.Sum256(body)
	return append(body, sum[:]...)
}
