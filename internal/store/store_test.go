package store

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/fusedmindlab/transfusion"
	"github.com/fusedmindlab/transfusion/internal/chaos"
	"github.com/fusedmindlab/transfusion/internal/obs"
)

func testResult(seq int) transfusion.RunResult {
	return transfusion.RunResult{
		Arch: "edge", Model: "bert", System: "transfusion", SeqLen: seq, Batch: 64,
		Cycles: 1e6 + float64(seq), Seconds: 0.001, Tile: "M=64,K=128",
		LayerCycles: map[string]float64{"QKV": 1, "MHA": 2},
		DRAMBytes:   4096, TileSearchEvals: 17,
	}
}

func testKey(seq int) string {
	return transfusion.RunSpec{Arch: "edge", Model: "bert", SeqLen: seq, System: "transfusion", SearchBudget: 8}.CanonicalKey()
}

func mustOpen(t *testing.T, dir string, maxBytes int64) (*Store, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	s, err := Open(dir, maxBytes, reg)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s, reg
}

// quarantined lists the files currently set aside in the quarantine dir.
func quarantined(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(filepath.Join(dir, QuarantineDir))
	if err != nil {
		t.Fatalf("reading quarantine: %v", err)
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

func TestPutGetRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, 0)
	ctx := context.Background()
	key, want := testKey(1024), testResult(1024)
	if err := s.Put(ctx, key, want); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := s.Get(ctx, key)
	if !ok {
		t.Fatal("Get missed a just-put key")
	}
	if got.Cycles != want.Cycles || got.Tile != want.Tile || got.LayerCycles["MHA"] != 2 {
		t.Fatalf("round trip mutated the result:\ngot  %+v\nwant %+v", got, want)
	}
	if s.Len() != 1 || s.SizeBytes() <= 0 {
		t.Fatalf("index after one put: len=%d bytes=%d", s.Len(), s.SizeBytes())
	}

	// A fresh Open over the same directory loads the record — the warm
	// restart path — and serves it bit-identically.
	s2, reg2 := mustOpen(t, dir, 0)
	if got := reg2.Counter("store.loaded").Value(); got != 1 {
		t.Fatalf("store.loaded after reopen = %d, want 1", got)
	}
	got2, ok := s2.Get(ctx, key)
	if !ok || got2.Cycles != want.Cycles || got2.Tile != want.Tile {
		t.Fatalf("reopened store answer (%v, %+v) diverged", ok, got2)
	}
	var warm []WarmEntry
	s2.WarmEntries(10, func(we WarmEntry) bool {
		warm = append(warm, we)
		return true
	})
	if len(warm) != 1 || warm[0].Key != key || warm[0].Result.Cycles != want.Cycles {
		t.Fatalf("WarmEntries = %+v", warm)
	}
}

func TestUnknownKeyIsCleanMiss(t *testing.T) {
	s, reg := mustOpen(t, t.TempDir(), 0)
	if _, ok := s.Get(context.Background(), "no-such-key"); ok {
		t.Fatal("hit on an empty store")
	}
	if reg.Counter("store.misses").Value() != 1 {
		t.Fatal("miss not counted")
	}
}

// Corruption anywhere in a committed record — header, payload, or checksum —
// must quarantine the file (never delete it) and degrade to a miss.
func TestCorruptRecordsQuarantinedOnReopen(t *testing.T) {
	for _, tc := range []struct {
		name   string
		offset func(n int) int // byte to flip, given file length
	}{
		{"header-magic", func(n int) int { return 1 }},
		{"payload", func(n int) int { return headerSize + 3 }},
		{"checksum", func(n int) int { return n - 1 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s, _ := mustOpen(t, dir, 0)
			ctx := context.Background()
			key := testKey(1024)
			if err := s.Put(ctx, key, testResult(1024)); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, FileName(key))
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[tc.offset(len(data))] ^= 0x40
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}

			s2, reg2 := mustOpen(t, dir, 0)
			if got := reg2.Counter("store.quarantined").Value(); got != 1 {
				t.Fatalf("store.quarantined = %d, want 1", got)
			}
			if got := reg2.Counter("store.loaded").Value(); got != 0 {
				t.Fatalf("store.loaded = %d, want 0", got)
			}
			if _, ok := s2.Get(ctx, key); ok {
				t.Fatal("corrupted record served")
			}
			q := quarantined(t, dir)
			if len(q) != 1 || !strings.HasPrefix(q[0], FileName(key)) {
				t.Fatalf("quarantine contents %v, want the corrupt record set aside", q)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatal("corrupt record still at its live name")
			}
		})
	}
}

// A bit-rotted record discovered after boot (the boot scan saw it clean) is
// quarantined at read time.
func TestCorruptionAfterBootQuarantinedOnGet(t *testing.T) {
	dir := t.TempDir()
	s, reg := mustOpen(t, dir, 0)
	ctx := context.Background()
	key := testKey(2048)
	if err := s.Put(ctx, key, testResult(2048)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, FileName(key))
	data, _ := os.ReadFile(path)
	data[headerSize+1] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(ctx, key); ok {
		t.Fatal("bit-rotted record served")
	}
	if reg.Counter("store.quarantined").Value() != 1 {
		t.Fatal("read-time corruption not quarantined")
	}
	if s.Len() != 0 {
		t.Fatal("quarantined record still indexed")
	}
	// And a later Put of the same key recovers cleanly.
	if err := s.Put(ctx, key, testResult(2048)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(ctx, key); !ok {
		t.Fatal("re-put after quarantine missed")
	}
}

// Records written under a different CanonicalKey format (schema version) are
// quarantined at boot, not consulted.
func TestVersionSkewQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, 0)
	ctx := context.Background()
	key := testKey(1024)
	if err := s.Put(ctx, key, testResult(1024)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, FileName(key))
	data, _ := os.ReadFile(path)
	binary.LittleEndian.PutUint32(data[4:8], SchemaVersion+1)
	// Re-checksum so only the version differs — version checking must not
	// depend on the checksum tripping first.
	reencoded := append([]byte{}, data[:len(data)-checksumSize]...)
	if err := os.WriteFile(path, appendChecksum(reencoded), 0o644); err != nil {
		t.Fatal(err)
	}
	_, reg2 := mustOpen(t, dir, 0)
	if got := reg2.Counter("store.quarantined").Value(); got != 1 {
		t.Fatalf("store.quarantined = %d, want 1 (version skew)", got)
	}
	if got := reg2.Counter("store.loaded").Value(); got != 0 {
		t.Fatalf("store.loaded = %d, want 0", got)
	}
}

// A leftover temp file — an interrupted write — is swept into quarantine and
// counted as recovered, and never shadows or corrupts committed records.
func TestTornTempFilesRecoveredAtBoot(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, 0)
	ctx := context.Background()
	if err := s.Put(ctx, testKey(1024), testResult(1024)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, tmpPrefix+"123456"), []byte("TFPL torn half-rec"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, reg2 := mustOpen(t, dir, 0)
	if got := reg2.Counter("store.recovered").Value(); got != 1 {
		t.Fatalf("store.recovered = %d, want 1", got)
	}
	if got := reg2.Counter("store.quarantined").Value(); got != 0 {
		t.Fatalf("store.quarantined = %d, want 0 (temp sweep is recovery, not corruption)", got)
	}
	if got := reg2.Counter("store.loaded").Value(); got != 1 {
		t.Fatalf("store.loaded = %d, want 1", got)
	}
	if _, ok := s2.Get(ctx, testKey(1024)); !ok {
		t.Fatal("committed record lost during temp recovery")
	}
	if q := quarantined(t, dir); len(q) != 1 || !strings.HasPrefix(q[0], tmpPrefix) {
		t.Fatalf("quarantine contents %v, want the swept temp file", q)
	}
}

// The byte budget evicts least-recently-used records (deleting, not
// quarantining — they are valid) and holds across reopen.
func TestEvictionBySizeCap(t *testing.T) {
	dir := t.TempDir()
	s, reg := mustOpen(t, dir, 0)
	ctx := context.Background()
	seqs := []int{1024, 2048, 4096, 8192}
	for _, seq := range seqs {
		if err := s.Put(ctx, testKey(seq), testResult(seq)); err != nil {
			t.Fatal(err)
		}
	}
	one := s.SizeBytes() / int64(len(seqs))

	// Touch the oldest record so recency, not insertion order, decides.
	if _, ok := s.Get(ctx, testKey(1024)); !ok {
		t.Fatal("warm-up get missed")
	}

	// Reopen with room for two records: the two least recently used go.
	s2, reg2 := mustOpen(t, dir, 2*one+one/2)
	if got := s2.Len(); got != 2 {
		t.Fatalf("after capped reopen: %d entries, want 2", got)
	}
	if reg2.Counter("store.evictions").Value() != 2 {
		t.Fatalf("store.evictions = %d, want 2", reg2.Counter("store.evictions").Value())
	}
	if _, ok := s2.Get(ctx, testKey(1024)); !ok {
		t.Fatal("most recently used record was evicted")
	}
	if _, ok := s2.Get(ctx, testKey(2048)); ok {
		t.Fatal("least recently used record survived the cap")
	}
	if q := quarantined(t, dir); len(q) != 0 {
		t.Fatalf("eviction quarantined valid records: %v", q)
	}
	_ = reg

	// Puts into the capped store keep it bounded.
	for _, seq := range []int{512, 256, 128} {
		if err := s2.Put(ctx, testKey(seq), testResult(seq)); err != nil {
			t.Fatal(err)
		}
		if s2.SizeBytes() > 2*one+one/2 {
			t.Fatalf("size %d exceeds cap after put", s2.SizeBytes())
		}
	}
}

// Injected disk faults: every kind must degrade to an error (Put) or a clean
// miss (Get), leaving the store consistent.
func TestChaosWriteShortWriteLeavesTornTempOnly(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, 0)
	inj, err := chaos.New(1, chaos.SiteConfig{Site: chaos.SiteStoreWrite, Kind: chaos.KindShortWrite, Every: 1, Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := chaos.With(context.Background(), inj)
	key := testKey(1024)
	if err := s.Put(ctx, key, testResult(1024)); !errors.Is(err, chaos.ErrShortWrite) {
		t.Fatalf("Put under short-write injection = %v, want ErrShortWrite", err)
	}
	if _, ok := s.Get(ctx, key); ok {
		t.Fatal("torn write became visible under the live key")
	}
	// The torn temp file is on disk — exactly a crash's residue.
	ents, _ := os.ReadDir(dir)
	torn := 0
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			torn++
		}
	}
	if torn != 1 {
		t.Fatalf("%d torn temp files on disk, want 1", torn)
	}
	// The fault budget is spent: the retry commits, and a reopen both sweeps
	// the torn temp and serves the committed record.
	if err := s.Put(ctx, key, testResult(1024)); err != nil {
		t.Fatalf("retry Put: %v", err)
	}
	s2, reg2 := mustOpen(t, dir, 0)
	if reg2.Counter("store.recovered").Value() != 1 {
		t.Fatal("torn temp not recovered at reopen")
	}
	if got, ok := s2.Get(context.Background(), key); !ok || got.Cycles != testResult(1024).Cycles {
		t.Fatalf("committed record lost: (%v, %+v)", ok, got)
	}
}

func TestChaosReadAndFsyncFaultsDegradeCleanly(t *testing.T) {
	dir := t.TempDir()
	s, reg := mustOpen(t, dir, 0)
	key := testKey(1024)
	if err := s.Put(context.Background(), key, testResult(1024)); err != nil {
		t.Fatal(err)
	}

	inj, err := chaos.Parse("store.read=error@every=1@limit=1;store.fsync=error@every=1@limit=1", 42)
	if err != nil {
		t.Fatal(err)
	}
	ctx := chaos.With(context.Background(), inj)

	// Injected read error: clean miss, record untouched.
	if _, ok := s.Get(ctx, key); ok {
		t.Fatal("hit through an injected read error")
	}
	if reg.Counter("store.read_errors").Value() != 1 {
		t.Fatal("read error not counted")
	}
	if _, ok := s.Get(ctx, key); !ok {
		t.Fatal("record gone after injected read error — fault budget was limit=1")
	}

	// Injected fsync error: the put fails, no temp file survives, the old
	// record is still served.
	key2 := testKey(2048)
	if err := s.Put(ctx, key2, testResult(2048)); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("Put under fsync injection = %v, want ErrInjected", err)
	}
	if reg.Counter("store.put_errors").Value() != 1 {
		t.Fatal("put error not counted")
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			t.Fatalf("fsync-failed put leaked temp file %s", e.Name())
		}
	}
	if _, ok := s.Get(ctx, key); !ok {
		t.Fatal("prior record lost to a failed put")
	}
}

// Injected latency at store.read respects the caller's context — a slow disk
// cannot wedge a bounded caller.
func TestChaosReadLatencyBoundedByContext(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, 0)
	key := testKey(1024)
	if err := s.Put(context.Background(), key, testResult(1024)); err != nil {
		t.Fatal(err)
	}
	inj, err := chaos.Parse("store.read=latency:30s@every=1", 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(chaos.With(context.Background(), inj), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, ok := s.Get(ctx, key); ok {
		t.Fatal("hit through a timed-out read")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("bounded read took %v", elapsed)
	}
}

// The store is safe under concurrent puts and gets (run with -race).
func TestConcurrentPutGet(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir(), 1<<20)
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				seq := 256 << ((w + i) % 4)
				if err := s.Put(ctx, testKey(seq), testResult(seq)); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if res, ok := s.Get(ctx, testKey(seq)); ok && res.SeqLen != seq {
					t.Errorf("cross-key serve: asked seq %d, got %d", seq, res.SeqLen)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// appendChecksum re-signs a header+payload prefix (test helper for crafting
// records that are checksum-valid but wrong in other ways).
func appendChecksum(body []byte) []byte {
	sum := sha256.Sum256(body)
	return append(body, sum[:]...)
}

// specKey builds a canonical key for an arbitrary model/seq in the test
// family (testKey is the "bert" shorthand).
func specKey(model string, seq int) string {
	return transfusion.RunSpec{Arch: "edge", Model: model, SeqLen: seq, System: "transfusion", SearchBudget: 8}.CanonicalKey()
}

// testPlanResult is a full-fidelity result carrying the plan summary the
// serving layer persists — the payload a warm-start hint is built from.
func testPlanResult(seq int) transfusion.RunResult {
	r := testResult(seq)
	r.Plan = &transfusion.PlanSummary{
		TileB: 1, TileD: 64, TileP: 64, TileM0: 64, TileM1: 256, TileS: 64,
		Layers: map[string]transfusion.LayerPlan{
			"mha": {Order: []string{"QK", "SM", "AV"}, First: []string{"QK"}, Epochs: 4},
		},
	}
	return r
}

// Warm-restart MRU order must be deterministic across boots even when a
// burst of writes lands every record on one coarse filesystem mtime: ties
// break on file name.
func TestWarmEntriesMRUDeterministicOnEqualMtime(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, 0)
	ctx := context.Background()
	seqs := []int{1024, 2048, 4096}
	files := make([]string, 0, len(seqs))
	for _, seq := range seqs {
		if err := s.Put(ctx, testKey(seq), testResult(seq)); err != nil {
			t.Fatal(err)
		}
		files = append(files, FileName(testKey(seq)))
	}
	stamp := time.Now().Add(-time.Hour)
	for _, f := range files {
		if err := os.Chtimes(filepath.Join(dir, f), stamp, stamp); err != nil {
			t.Fatal(err)
		}
	}
	order := func() []string {
		s2, _ := mustOpen(t, dir, 0)
		var keys []string
		s2.WarmEntries(10, func(we WarmEntry) bool {
			keys = append(keys, we.Key)
			return true
		})
		return keys
	}
	first := order()
	if len(first) != len(seqs) {
		t.Fatalf("warm entries %d, want %d", len(first), len(seqs))
	}
	// Equal mtimes load in file-name order onto the LRU front, so the
	// warm stream is file-name descending — and identical across boots.
	wantFiles := append([]string(nil), files...)
	sort.Sort(sort.Reverse(sort.StringSlice(wantFiles)))
	for i, k := range first {
		if FileName(k) != wantFiles[i] {
			t.Fatalf("warm order[%d] = %s, want file %s", i, FileName(k), wantFiles[i])
		}
	}
	for boot := 0; boot < 3; boot++ {
		got := order()
		if len(got) != len(first) {
			t.Fatalf("warm order length changed across boots: %v vs %v", got, first)
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("warm order changed across boots: %v vs %v", got, first)
			}
		}
	}
	// The stream is lazy: a consumer stopping after the first record is
	// handed exactly one.
	s3, _ := mustOpen(t, dir, 0)
	n := 0
	s3.WarmEntries(10, func(WarmEntry) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early-stopped stream delivered %d records, want 1", n)
	}
}

func TestNearestEdgeCases(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, 0)
	ctx := context.Background()
	for _, seq := range []int{1024, 2048} {
		if err := s.Put(ctx, specKey("bert", seq), testPlanResult(seq)); err != nil {
			t.Fatal(err)
		}
	}

	// A different model is a different warm-start family: no candidate.
	if _, ok := s.Nearest(ctx, specKey("llama3", 1536)); ok {
		t.Fatal("Nearest crossed model families")
	}

	// The exact key is never its own neighbour — exact hits belong to the
	// memory and disk tiers, which are consulted first.
	solo, _ := mustOpen(t, t.TempDir(), 0)
	if err := solo.Put(ctx, specKey("bert", 1024), testPlanResult(1024)); err != nil {
		t.Fatal(err)
	}
	if _, ok := solo.Nearest(ctx, specKey("bert", 1024)); ok {
		t.Fatal("Nearest offered the exact key as its own neighbour")
	}

	// Equidistant neighbours (1024 and 2048 are both 512 away from 1536)
	// tie-break deterministically towards the smaller sequence.
	ne, ok := s.Nearest(ctx, specKey("bert", 1536))
	if !ok || ne.SeqLen != 1024 {
		t.Fatalf("Nearest(1536) = (%+v, %v), want the deterministic smaller neighbour 1024", ne, ok)
	}
	if ne.Result.Plan == nil {
		t.Fatal("nearest hint lost its plan summary")
	}

	// Even when the queried seq itself is stored, the neighbour is the
	// other record — never the exact key.
	ne, ok = s.Nearest(ctx, specKey("bert", 2048))
	if !ok || ne.SeqLen != 1024 || ne.Key != specKey("bert", 1024) {
		t.Fatalf("Nearest(2048) = (%+v, %v), want the 1024 record", ne, ok)
	}

	// A record with no plan summary can never hint.
	noPlan, _ := mustOpen(t, t.TempDir(), 0)
	if err := noPlan.Put(ctx, specKey("bert", 1024), testResult(1024)); err != nil {
		t.Fatal(err)
	}
	if _, ok := noPlan.Nearest(ctx, specKey("bert", 2048)); ok {
		t.Fatal("plan-less record used as a warm hint")
	}

	// A degraded record must never launder into a hint, even if one somehow
	// reaches the store (the serving layer never persists them).
	deg, _ := mustOpen(t, t.TempDir(), 0)
	dres := testPlanResult(1024)
	dres.Degraded = true
	dres.DegradedReason = "injected for test"
	if err := deg.Put(ctx, specKey("bert", 1024), dres); err != nil {
		t.Fatal(err)
	}
	if _, ok := deg.Nearest(ctx, specKey("bert", 2048)); ok {
		t.Fatal("degraded record used as a warm hint")
	}
}
