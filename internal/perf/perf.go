// Package perf is the analytical performance model — the repository's
// substitute for the Timeloop + Accelergy simulators the paper uses. It
// implements the paper's own latency formulation (Eqs. 40–42: compute load =
// product of output dims × reduction dims, cycles = load / assigned PEs)
// plus a roofline composition against DRAM bandwidth, and an energy model
// built from per-component access counts (DRAM / global buffer / register
// file / PE arrays) priced by the arch.EnergyTable.
//
// The model captures the mechanisms every result in the paper's evaluation
// depends on:
//
//   - GEMM-like contractions run at full rate on the 2D array and are
//     hopeless on the 256-lane 1D array;
//   - streaming vector work (softmax, LayerNorm, activations) runs at one
//     element per lane per cycle on the 1D array and with a fixed emulation
//     penalty on the 2D array — so offloading vector work to the 2D array
//     wins on cloud (65536 PEs) and loses on edge (256 PEs), which is
//     exactly the asymmetry DPipe exploits (§6.2, "Utilization");
//   - phases are memory-bound when their DRAM traffic outweighs compute
//     (roofline max), which is what makes fusion matter at short sequences.
package perf

import (
	"fmt"

	"github.com/fusedmindlab/transfusion/internal/arch"
	"github.com/fusedmindlab/transfusion/internal/einsum"
)

// ArrayKind selects the PE array an operation runs on.
type ArrayKind int

const (
	// PE2D is the matrix array.
	PE2D ArrayKind = iota
	// PE1D is the streaming/vector array.
	PE1D
	numArrays = 2
)

// String names the array.
func (k ArrayKind) String() string {
	if k == PE2D {
		return "2D"
	}
	return "1D"
}

// Vector2DPenalty is the cycle multiplier for running a vector-class scalar
// operation on the 2D MAC array: exp/div/max are emulated with short
// polynomial/iterative sequences rather than single MACs.
const Vector2DPenalty = 8.0

// Contraction1DPenalty is the cycle multiplier for running a
// multiply-accumulate contraction on the 1D array. The 1D array's lanes are
// vector MAC units (FuseMax already runs multiply-accumulate softmax stages
// on it), but they lack the systolic operand-reuse network, so a contraction
// pays a modest inefficiency. Keeping this close to 1 is what lets DPipe
// shift matrix work onto the otherwise idle 1D array on edge devices, where
// the two arrays have comparable PE counts (§6.2, "Utilization").
const Contraction1DPenalty = 1.25

// OpSpec is one Einsum bound to concrete dimension extents and a Table 1
// style PE mapping. It is the unit the DPipe scheduler and the baseline
// dataflows cost.
type OpSpec struct {
	// E is the Einsum being executed.
	E *einsum.Einsum
	// Dims gives the extent of every index label of E for one execution.
	Dims map[string]int
	// RowIdx and ColIdx are the index labels mapped onto 2D PE rows and
	// columns (Table 1). Empty mappings fall back to output-size capping.
	RowIdx []string
	ColIdx []string
}

// Load returns the Eq. 40 compute load for one execution.
func (o OpSpec) Load() int64 { return o.E.ComputeLoad(o.Dims) }

// OutputElems returns the number of output elements for one execution.
func (o OpSpec) OutputElems() int64 { return o.E.OutputSize(o.Dims) }

// InputElems returns the total number of input elements read (distinct
// tensors, each counted once at its addressed size).
func (o OpSpec) InputElems() int64 {
	seen := make(map[string]bool, len(o.E.Inputs))
	total := int64(0)
	for _, in := range o.E.Inputs {
		if seen[in.Tensor] {
			continue
		}
		seen[in.Tensor] = true
		n := int64(1)
		for _, idx := range in.Idx {
			n *= int64(o.Dims[idx])
		}
		total += n
	}
	return total
}

func extent(idx []string, dims map[string]int) int64 {
	p := int64(1)
	for _, i := range idx {
		if s, ok := dims[i]; ok {
			p *= int64(s)
		}
	}
	return p
}

// NumPEs implements the Table 1 mapping: on the 2D array the row-mapped and
// column-mapped index extents are capped by the array geometry; on the 1D
// array the row-mapped extent (and, when lanes remain, the column extents —
// §3.3's "further unfolds computation along dimensions originally assigned
// to 2D PE columns") is capped by the lane count. Without an explicit
// mapping the parallelism is capped by the output size.
func (o OpSpec) NumPEs(spec arch.Spec, kind ArrayKind) int64 {
	switch kind {
	case PE2D:
		if len(o.RowIdx) == 0 && len(o.ColIdx) == 0 {
			return minI64(int64(spec.PE2D.NumPEs()), o.OutputElems())
		}
		rows := minI64(int64(spec.PE2D.Rows), extent(o.RowIdx, o.Dims))
		cols := minI64(int64(spec.PE2D.Cols), extent(o.ColIdx, o.Dims))
		return maxI64(1, rows*cols)
	default:
		par := o.OutputElems()
		if len(o.RowIdx) > 0 || len(o.ColIdx) > 0 {
			par = extent(o.RowIdx, o.Dims) * extent(o.ColIdx, o.Dims)
		}
		return maxI64(1, minI64(int64(spec.PE1DLanes), par))
	}
}

// Cycles implements Eqs. 41–42 in clock-cycle units: load divided by the
// assigned PE count, with the vector-emulation penalty applied when a
// vector-class op runs on the 2D array.
func (o OpSpec) Cycles(spec arch.Spec, kind ArrayKind) float64 {
	load := float64(o.Load())
	pes := float64(o.NumPEs(spec, kind))
	cycles := load / pes
	switch {
	case kind == PE2D && o.E.Class() == einsum.ClassVector:
		cycles *= Vector2DPenalty
	case kind == PE1D && o.E.Class() == einsum.ClassContraction:
		cycles *= Contraction1DPenalty
	}
	return cycles
}

// BestArray returns the array with the lower cycle count for this op and
// that count; used by schedulers that are free to choose.
func (o OpSpec) BestArray(spec arch.Spec) (ArrayKind, float64) {
	c2 := o.Cycles(spec, PE2D)
	c1 := o.Cycles(spec, PE1D)
	if c2 <= c1 {
		return PE2D, c2
	}
	return PE1D, c1
}

// Validate checks the op is well-formed under its dimension environment.
func (o OpSpec) Validate() error {
	if o.E == nil {
		return fmt.Errorf("perf: OpSpec with nil einsum")
	}
	return o.E.Validate(o.Dims)
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// SecondsFromCycles converts a cycle count to seconds under the spec clock.
func SecondsFromCycles(cycles float64, spec arch.Spec) float64 {
	return cycles / spec.ClockHz
}

// DRAMCycles converts a DRAM byte volume to the equivalent cycle count at
// the spec's bandwidth and clock (bytes / BW * clock).
func DRAMCycles(bytes int64, spec arch.Spec) float64 {
	return float64(bytes) / spec.DRAMBandwidth * spec.ClockHz
}

// Roofline composes a compute time with a DRAM-streaming time assuming
// double-buffered overlap: the phase takes the maximum of the two.
func Roofline(computeCycles float64, dramBytes int64, spec arch.Spec) float64 {
	d := DRAMCycles(dramBytes, spec)
	if d > computeCycles {
		return d
	}
	return computeCycles
}
