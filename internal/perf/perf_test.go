package perf

import (
	"testing"
	"testing/quick"

	"github.com/fusedmindlab/transfusion/internal/arch"
	"github.com/fusedmindlab/transfusion/internal/einsum"
)

func gemmOp(m, k, n int) OpSpec {
	return OpSpec{
		E:      mustParse("C = A[m,k] * B[k,n] -> [m,n]"),
		Dims:   map[string]int{"m": m, "k": k, "n": n},
		RowIdx: []string{"m"},
		ColIdx: []string{"n"},
	}
}

// vecOp builds a vector-class op over p x q elements mapped rows=p, cols=q,
// mirroring how the cascades map streaming work (e.g. LayerNorm: p -> rows,
// (h,f) -> columns per Table 1).
func vecOp2(p, q int) OpSpec {
	return OpSpec{
		E:      einsum.Map("Y", []string{"p", "q"}, einsum.ExpSub, einsum.In("X", "p", "q"), einsum.In("M", "p")),
		Dims:   map[string]int{"p": p, "q": q},
		RowIdx: []string{"p"},
		ColIdx: []string{"q"},
	}
}

func vecOp(n int) OpSpec { return vecOp2(n, 1) }

func TestLoadMatchesEq40(t *testing.T) {
	o := gemmOp(128, 64, 256)
	if got := o.Load(); got != 128*64*256 {
		t.Fatalf("Load = %d", got)
	}
	if got := o.OutputElems(); got != 128*256 {
		t.Fatalf("OutputElems = %d", got)
	}
	if got := o.InputElems(); got != 128*64+64*256 {
		t.Fatalf("InputElems = %d", got)
	}
}

func TestNumPEsMappingCaps(t *testing.T) {
	cloud := arch.Cloud()
	// Large GEMM saturates the array.
	big := gemmOp(1024, 64, 1024)
	if got := big.NumPEs(cloud, PE2D); got != 256*256 {
		t.Fatalf("big GEMM NumPEs = %d, want 65536", got)
	}
	// Small row extent underutilises rows.
	small := gemmOp(4, 64, 1024)
	if got := small.NumPEs(cloud, PE2D); got != 4*256 {
		t.Fatalf("small GEMM NumPEs = %d, want 1024", got)
	}
	// 1D array capped by lanes.
	v := vecOp(100000)
	if got := v.NumPEs(cloud, PE1D); got != 256 {
		t.Fatalf("1D NumPEs = %d, want 256", got)
	}
	if got := vecOp(10).NumPEs(cloud, PE1D); got != 10 {
		t.Fatalf("small 1D NumPEs = %d, want 10", got)
	}
}

func TestNumPEsFallbackWithoutMapping(t *testing.T) {
	o := gemmOp(1024, 64, 1024)
	o.RowIdx, o.ColIdx = nil, nil
	cloud := arch.Cloud()
	if got := o.NumPEs(cloud, PE2D); got != 256*256 {
		t.Fatalf("fallback NumPEs = %d", got)
	}
	small := gemmOp(4, 64, 4)
	small.RowIdx, small.ColIdx = nil, nil
	if got := small.NumPEs(cloud, PE2D); got != 16 {
		t.Fatalf("fallback small NumPEs = %d, want output size 16", got)
	}
}

func TestCyclesEq41(t *testing.T) {
	cloud := arch.Cloud()
	o := gemmOp(1024, 64, 1024)
	want := float64(1024*64*1024) / float64(256*256)
	if got := o.Cycles(cloud, PE2D); got != want {
		t.Fatalf("Cycles = %v, want %v", got, want)
	}
}

func TestVectorPenaltyOn2D(t *testing.T) {
	cloud := arch.Cloud()
	v := vecOp2(1024, 1024)
	c2 := v.Cycles(cloud, PE2D)
	c1 := v.Cycles(cloud, PE1D)
	// On cloud the 2D array has 256x more lanes; even with the penalty it
	// should beat the 1D array for large row x column vector work.
	if c2 >= c1 {
		t.Fatalf("cloud: vector on 2D (%v) not faster than 1D (%v)", c2, c1)
	}
	edge := arch.Edge()
	e2 := v.Cycles(edge, PE2D)
	e1 := v.Cycles(edge, PE1D)
	// On edge the arrays have equal PE counts, so the penalty must make the
	// 1D array the right home for vector work.
	if e1 >= e2 {
		t.Fatalf("edge: vector on 1D (%v) not faster than 2D (%v)", e1, e2)
	}
}

func TestContractionHopelessOn1D(t *testing.T) {
	cloud := arch.Cloud()
	o := gemmOp(1024, 64, 1024)
	if o.Cycles(cloud, PE1D) <= o.Cycles(cloud, PE2D) {
		t.Fatal("GEMM on the 1D array should be far slower than on the 2D array")
	}
}

func TestBestArray(t *testing.T) {
	cloud := arch.Cloud()
	kind, cycles := gemmOp(1024, 64, 1024).BestArray(cloud)
	if kind != PE2D {
		t.Fatalf("GEMM best array = %v", kind)
	}
	if cycles <= 0 {
		t.Fatalf("cycles = %v", cycles)
	}
	edge := arch.Edge()
	kind, _ = vecOp(1 << 16).BestArray(edge)
	if kind != PE1D {
		t.Fatalf("edge vector best array = %v", kind)
	}
}

func TestRoofline(t *testing.T) {
	cloud := arch.Cloud()
	// Tiny compute, huge traffic: memory bound.
	if got := Roofline(10, 1<<30, cloud); got != DRAMCycles(1<<30, cloud) {
		t.Fatalf("memory-bound roofline = %v", got)
	}
	// Huge compute, tiny traffic: compute bound.
	if got := Roofline(1e12, 16, cloud); got != 1e12 {
		t.Fatalf("compute-bound roofline = %v", got)
	}
}

func TestDRAMCyclesAndSeconds(t *testing.T) {
	cloud := arch.Cloud()
	// 400 GB at 400 GB/s = 1 s = ClockHz cycles.
	cycles := DRAMCycles(400e9, cloud)
	if cycles != cloud.ClockHz {
		t.Fatalf("DRAMCycles = %v, want %v", cycles, cloud.ClockHz)
	}
	if got := SecondsFromCycles(cloud.ClockHz, cloud); got != 1 {
		t.Fatalf("SecondsFromCycles = %v, want 1", got)
	}
}

func TestOpTrafficAccounting(t *testing.T) {
	cloud := arch.Cloud()
	o := gemmOp(8, 4, 16)
	tr := OpTraffic(o, cloud, PE2D, nil)
	load := float64(8 * 4 * 16)
	if tr.MACs != load || tr.VectorOps != 0 {
		t.Fatalf("GEMM on 2D: MACs=%v VectorOps=%v", tr.MACs, tr.VectorOps)
	}
	if tr.RegBytes != 3*load*2 {
		t.Fatalf("RegBytes = %v", tr.RegBytes)
	}
	wantBuf := float64(8*4+4*16+8*16) * 2
	if tr.BufferBytes != wantBuf {
		t.Fatalf("BufferBytes = %v, want %v", tr.BufferBytes, wantBuf)
	}
	if tr.DRAMBytes != 0 {
		t.Fatal("OpTraffic must not charge DRAM traffic")
	}
	// The op-count accounting is array-independent: a contraction's MACs
	// cost MAC energy wherever the schedule places them.
	tr1 := OpTraffic(o, cloud, PE1D, nil)
	if tr1.MACs != load || tr1.VectorOps != 0 {
		t.Fatalf("GEMM on 1D: MACs=%v VectorOps=%v", tr1.MACs, tr1.VectorOps)
	}
}

func TestOpTrafficFusedOperandSkipsBuffer(t *testing.T) {
	cloud := arch.Cloud()
	o := gemmOp(8, 4, 16)
	full := OpTraffic(o, cloud, PE2D, nil)
	fused := OpTraffic(o, cloud, PE2D, map[string]bool{"A": true})
	saved := float64(8*4) * 2
	if full.BufferBytes-fused.BufferBytes != saved {
		t.Fatalf("fused operand saved %v buffer bytes, want %v", full.BufferBytes-fused.BufferBytes, saved)
	}
}

func TestTrafficAddScaleEnergy(t *testing.T) {
	a := Traffic{DRAMBytes: 1, BufferBytes: 2, RegBytes: 3, MACs: 4, VectorOps: 5}
	b := a
	b.Add(a)
	if b.DRAMBytes != 2 || b.VectorOps != 10 {
		t.Fatalf("Add = %+v", b)
	}
	s := a.Scale(10)
	if s.MACs != 40 || s.BufferBytes != 20 {
		t.Fatalf("Scale = %+v", s)
	}
	cloud := arch.Cloud()
	e := a.Energy(cloud)
	et := cloud.Energy
	if e.DRAM != 1*et.DRAMPerByte || e.Buffer != 2*et.BufferPerByte ||
		e.Reg != 3*et.RegPerByte || e.PE != 4*et.MACOp+5*et.VectorOp {
		t.Fatalf("Energy = %+v", e)
	}
	if e.Total() != e.DRAM+e.Buffer+e.Reg+e.PE {
		t.Fatal("Total mismatch")
	}
	var acc Energy
	acc.Add(e)
	acc.Add(e)
	if acc.DRAM != 2*e.DRAM {
		t.Fatalf("Energy.Add = %+v", acc)
	}
}

func TestValidate(t *testing.T) {
	if err := gemmOp(2, 2, 2).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := OpSpec{}
	if err := bad.Validate(); err == nil {
		t.Fatal("nil einsum accepted")
	}
	missing := gemmOp(2, 2, 2)
	delete(missing.Dims, "k")
	if err := missing.Validate(); err == nil {
		t.Fatal("missing dim accepted")
	}
}

// Property (Eq. 41 monotonicity): more PEs never increases cycles.
func TestQuickMorePEsNoSlower(t *testing.T) {
	f := func(mRaw, nRaw, kRaw uint8) bool {
		m, n, k := int(mRaw)+1, int(nRaw)+1, int(kRaw)+1
		o := gemmOp(m, k, n)
		small := arch.Edge()
		big := arch.Cloud()
		return o.Cycles(big, PE2D) <= o.Cycles(small, PE2D)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: roofline is monotone in both compute and traffic.
func TestQuickRooflineMonotone(t *testing.T) {
	cloud := arch.Cloud()
	f := func(cRaw uint16, bRaw uint32) bool {
		c := float64(cRaw)
		b := int64(bRaw)
		base := Roofline(c, b, cloud)
		return Roofline(c+1, b, cloud) >= base && Roofline(c, b+1024, cloud) >= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestArrayKindString(t *testing.T) {
	if PE2D.String() != "2D" || PE1D.String() != "1D" {
		t.Fatal("ArrayKind names wrong")
	}
}

// mustParse stands in for the removed library panic helper; static specs in
// this file are known-good.
func mustParse(spec string) *einsum.Einsum {
	e, err := einsum.Parse(spec)
	if err != nil {
		panic(err)
	}
	return e
}
