package perf

import (
	"github.com/fusedmindlab/transfusion/internal/arch"
	"github.com/fusedmindlab/transfusion/internal/einsum"
)

// Traffic accumulates access counts across the memory hierarchy plus scalar
// operation counts; it is the raw material of the energy model (the
// Accelergy substitute).
// Counts are float64: end-to-end totals (instances x epochs x per-op
// volumes) overflow int64 for the largest modelled workloads, and energy
// accounting does not need exact integers.
type Traffic struct {
	// DRAMBytes is the off-chip volume moved (reads + writes).
	DRAMBytes float64
	// BufferBytes is the global on-chip buffer volume (reads + writes).
	BufferBytes float64
	// RegBytes is the register-file volume (reads + writes).
	RegBytes float64
	// MACs counts multiply-accumulate operations.
	MACs float64
	// VectorOps counts non-MAC scalar operations.
	VectorOps float64
}

// Add accumulates other into t.
func (t *Traffic) Add(other Traffic) {
	t.DRAMBytes += other.DRAMBytes
	t.BufferBytes += other.BufferBytes
	t.RegBytes += other.RegBytes
	t.MACs += other.MACs
	t.VectorOps += other.VectorOps
}

// Scale multiplies every count by k (e.g. the repeat factor of an outer
// tile loop) and returns the result.
func (t Traffic) Scale(k float64) Traffic {
	return Traffic{
		DRAMBytes:   t.DRAMBytes * k,
		BufferBytes: t.BufferBytes * k,
		RegBytes:    t.RegBytes * k,
		MACs:        t.MACs * k,
		VectorOps:   t.VectorOps * k,
	}
}

// Energy is the per-component energy breakdown in picojoules — the Figure 13
// decomposition (DRAM / global buffer / register file / PE arrays).
type Energy struct {
	DRAM   float64
	Buffer float64
	Reg    float64
	PE     float64
}

// Total sums the components.
func (e Energy) Total() float64 { return e.DRAM + e.Buffer + e.Reg + e.PE }

// Add accumulates other into e.
func (e *Energy) Add(other Energy) {
	e.DRAM += other.DRAM
	e.Buffer += other.Buffer
	e.Reg += other.Reg
	e.PE += other.PE
}

// Energy prices the traffic under the spec's energy table.
func (t Traffic) Energy(spec arch.Spec) Energy {
	et := spec.Energy
	return Energy{
		DRAM:   t.DRAMBytes * et.DRAMPerByte,
		Buffer: t.BufferBytes * et.BufferPerByte,
		Reg:    t.RegBytes * et.RegPerByte,
		PE:     t.MACs*et.MACOp + t.VectorOps*et.VectorOp,
	}
}

// OpTraffic returns the on-chip traffic and operation counts of executing
// the op once. The kind parameter identifies the executing array for
// symmetry with Cycles; the access counting itself is array-independent
// (a MAC costs MAC energy wherever it runs). DRAM traffic is deliberately
// zero here:
// which tensors cross the off-chip boundary is a property of the dataflow
// (fusion decisions), not of the operation, and is accounted by the
// dataflow models in internal/baselines and internal/pipeline.
//
// Accounting:
//   - every scalar map operation costs three register-file accesses (two
//     operand reads and a write/accumulate);
//   - every distinct input tensor is read from the buffer once and the
//     output written once per execution; fusedOperands names input tensors
//     that stay in the register file between producer and consumer (the
//     FuseMax-style in-register retention) and are therefore not charged
//     buffer traffic.
func OpTraffic(o OpSpec, spec arch.Spec, kind ArrayKind, fusedOperands map[string]bool) Traffic {
	load := float64(o.Load())
	bytes := float64(spec.BytesPerElement)
	var tr Traffic
	tr.RegBytes = 3 * load * bytes
	if o.E.Class() == einsum.ClassContraction {
		tr.MACs = load
	} else {
		tr.VectorOps = load
	}
	bufElems := float64(o.OutputElems())
	seen := make(map[string]bool, len(o.E.Inputs))
	for _, in := range o.E.Inputs {
		if seen[in.Tensor] || fusedOperands[in.Tensor] {
			continue
		}
		seen[in.Tensor] = true
		n := 1.0
		for _, idx := range in.Idx {
			n *= float64(o.Dims[idx])
		}
		bufElems += n
	}
	tr.BufferBytes = bufElems * bytes
	return tr
}
