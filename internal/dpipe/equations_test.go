package dpipe

// Exact-value tests of the Eq. 43–46 dynamic program on hand-crafted
// scenarios: each test pins the expected start/end times computed by hand
// from the paper's update rules, so any drift in the scheduler's semantics
// fails loudly.

import (
	"math"
	"testing"

	"github.com/fusedmindlab/transfusion/internal/arch"
	"github.com/fusedmindlab/transfusion/internal/einsum"
	"github.com/fusedmindlab/transfusion/internal/graph"
	"github.com/fusedmindlab/transfusion/internal/perf"
)

// fixedOp builds an op with an exact, array-independent-ish cycle count:
// a vector op of `cycles` elements mapped to a single lane, so Cycles(1D)
// = cycles and Cycles(2D) = cycles * Vector2DPenalty.
func fixedOp(name string, cycles int) perf.OpSpec {
	return perf.OpSpec{
		E:      einsum.Map(name, []string{"x"}, einsum.Identity, einsum.In(name+"_in", "x")),
		Dims:   map[string]int{"x": cycles},
		RowIdx: []string{},
		ColIdx: []string{},
	}
}

// gemmFixed builds a contraction whose 2D cycle count is exactly `cycles`
// on the cloud preset (load = cycles * 65536 over the full array) and far
// worse on the 1D array.
func gemmFixed(name string, cycles int) perf.OpSpec {
	return perf.OpSpec{
		E: einsum.New(name, []string{"m", "n"},
			einsum.In(name+"_a", "m", "k"), einsum.In(name+"_b", "k", "n")),
		Dims:   map[string]int{"m": 256, "n": 256, "k": cycles},
		RowIdx: []string{"m"},
		ColIdx: []string{"n"},
	}
}

func TestEquationChainTiming(t *testing.T) {
	spec := arch.Cloud()
	// A -> B, both pinned to the 2D array, one epoch.
	// A: GEMM with 100 cycles; B: GEMM with 50 cycles.
	a := gemmFixed("A", 100)
	b := gemmFixed("B", 50)
	if got := a.Cycles(spec, perf.PE2D); got != 100 {
		t.Fatalf("A cycles = %v, want 100", got)
	}
	deps := graph.New()
	deps.AddEdge("A", "B")
	p := &Problem{
		Name: "chain", Ops: map[string]perf.OpSpec{"A": a, "B": b},
		Deps: deps, Epochs: 1,
	}
	assign := map[string]perf.ArrayKind{"A": perf.PE2D, "B": perf.PE2D}
	res, err := Sequential(p, spec, assign)
	if err != nil {
		t.Fatal(err)
	}
	// Eq. 43: B starts at max(Time[2D]=100, EndT[A]=100) = 100.
	// Eq. 44: B ends at 150.
	if res.TotalCycles != 150 {
		t.Fatalf("chain makespan = %v, want 150", res.TotalCycles)
	}
	tr, err := TraceSchedule(p, spec, nil, nil, 1, assign)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Entries {
		switch e.Op {
		case "A":
			if e.Start != 0 || e.End != 100 {
				t.Fatalf("A scheduled [%v,%v), want [0,100)", e.Start, e.End)
			}
		case "B":
			if e.Start != 100 || e.End != 150 {
				t.Fatalf("B scheduled [%v,%v), want [100,150)", e.Start, e.End)
			}
		}
	}
}

func TestEquationParallelIndependentOps(t *testing.T) {
	spec := arch.Cloud()
	// Two independent ops: a GEMM (2D-best) and a vector op (1D-best).
	// Eq. 45's min-selection must place them on different arrays so both
	// run at time 0.
	g := gemmFixed("G", 80)
	v := fixedOp("V", 60) // 60 on 1D, 480 on 2D
	deps := graph.New()
	deps.AddNode("G")
	deps.AddNode("V")
	p := &Problem{Name: "par", Ops: map[string]perf.OpSpec{"G": g, "V": v}, Deps: deps, Epochs: 1}
	tr, err := TraceSchedule(p, spec, nil, nil, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Entries {
		if e.Start != 0 {
			t.Fatalf("%s delayed to %v; independent ops must start immediately on distinct arrays", e.Op, e.Start)
		}
	}
	if tr.Makespan != 80 {
		t.Fatalf("makespan = %v, want max(80, 60) = 80", tr.Makespan)
	}
}

func TestEquationArrayOccupancyWait(t *testing.T) {
	spec := arch.Cloud()
	// Two independent GEMMs pinned to the 2D array: the second must wait
	// for the first (Eq. 43 first term), not overlap.
	a := gemmFixed("A", 100)
	b := gemmFixed("B", 40)
	deps := graph.New()
	deps.AddNode("A")
	deps.AddNode("B")
	p := &Problem{Name: "occ", Ops: map[string]perf.OpSpec{"A": a, "B": b}, Deps: deps, Epochs: 1}
	assign := map[string]perf.ArrayKind{"A": perf.PE2D, "B": perf.PE2D}
	tr, err := TraceSchedule(p, spec, []string{"A", "B"}, nil, 1, assign)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Makespan != 140 {
		t.Fatalf("occupancy makespan = %v, want 140", tr.Makespan)
	}
}

func TestEquationMinSelectionPrefersIdleArray(t *testing.T) {
	spec := arch.Cloud()
	// One GEMM occupies the 2D array for 100 cycles; then a vector op that
	// would take 16 cycles on 2D (with penalty) or 120 on 1D. Eq. 45:
	// end(2D) = 100 + 16 = 116 < end(1D) = 0 + 120, so it queues on 2D.
	g := gemmFixed("G", 100)
	v := perf.OpSpec{ // 2 elements/lane over full array: load = 131072
		E:      einsum.Map("V", []string{"m", "n"}, einsum.Identity, einsum.In("V_in", "m", "n")),
		Dims:   map[string]int{"m": 256, "n": 512},
		RowIdx: []string{"m"},
		ColIdx: []string{"n"},
	}
	// Check the premise: 2D = 131072/65536*8 = 16; 1D = 131072/256 = 512.
	if c := v.Cycles(spec, perf.PE2D); c != 16 {
		t.Fatalf("V 2D cycles = %v, want 16", c)
	}
	if c := v.Cycles(spec, perf.PE1D); c != 512 {
		t.Fatalf("V 1D cycles = %v, want 512", c)
	}
	deps := graph.New()
	deps.AddNode("G")
	deps.AddNode("V")
	p := &Problem{Name: "minsel", Ops: map[string]perf.OpSpec{"G": g, "V": v}, Deps: deps, Epochs: 1}
	tr, err := TraceSchedule(p, spec, []string{"G", "V"}, nil, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var vEntry TraceEntry
	for _, e := range tr.Entries {
		if e.Op == "V" {
			vEntry = e
		}
	}
	if vEntry.Array != perf.PE2D || vEntry.Start != 100 || vEntry.End != 116 {
		t.Fatalf("V scheduled on %v [%v,%v), want 2D [100,116)", vEntry.Array, vEntry.Start, vEntry.End)
	}
}

func TestEquationCrossEpochStateSerialisation(t *testing.T) {
	spec := arch.Cloud()
	// A self-recurrent op (state edge A@k-1 -> A@k) pinned to 2D: epochs
	// must serialise exactly, no overlap.
	a := gemmFixed("A", 70)
	deps := graph.New()
	deps.AddNode("A")
	p := &Problem{
		Name: "state", Ops: map[string]perf.OpSpec{"A": a}, Deps: deps,
		StateEdges: []StateEdge{{From: "A", To: "A"}},
		Epochs:     3,
	}
	res, err := Sequential(p, spec, map[string]perf.ArrayKind{"A": perf.PE2D})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCycles != 210 {
		t.Fatalf("3 serialised epochs = %v cycles, want 210", res.TotalCycles)
	}
	tr, err := TraceSchedule(p, spec, []string{"A"}, nil, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.Makespan-210) > 1e-9 {
		t.Fatalf("trace makespan = %v, want 210", tr.Makespan)
	}
	for _, e := range tr.Entries {
		if want := float64(e.Epoch) * 70; e.Start != want {
			t.Fatalf("A@%d starts at %v, want %v (recurrence serialisation)", e.Epoch, e.Start, want)
		}
	}
}
