package dpipe

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/fusedmindlab/transfusion/internal/arch"
	"github.com/fusedmindlab/transfusion/internal/perf"
)

// TraceEntry is one scheduled op instance with its placement and timing.
type TraceEntry struct {
	Op    string
	Epoch int
	Array perf.ArrayKind
	Start float64
	End   float64
}

// Trace is a fully materialised schedule over a bounded number of explicit
// epochs, for visualisation and invariant checking. Unlike Result (which
// extrapolates to the full epoch count), a Trace records every instance's
// start and end exactly.
type Trace struct {
	Problem  string
	Epochs   int
	Entries  []TraceEntry
	Makespan float64
}

// TraceSchedule replays the Eq. 43–46 DP for the given candidate order and
// bipartition over `epochs` explicit epochs, recording every placement.
// A nil `first` uses epoch-major sequencing; otherwise the Figure 7(d)
// interleaving. fixedAssign pins arrays as in StaticPipelined.
func TraceSchedule(p *Problem, spec arch.Spec, order []string, first map[string]bool, epochs int, fixedAssign map[string]perf.ArrayKind) (*Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if epochs < 1 {
		epochs = 1
	}
	if order == nil {
		canon, err := p.Deps.TopoSort()
		if err != nil {
			return nil, fmt.Errorf("dpipe: trace: problem %s: %w", p.Name, err)
		}
		order = canon
	}
	seq := buildSequence(order, first, epochs)

	timeline := map[perf.ArrayKind]float64{perf.PE2D: 0, perf.PE1D: 0}
	endT := make(map[instance]float64, len(seq))
	tr := &Trace{Problem: p.Name, Epochs: epochs}

	for _, inst := range seq {
		op := p.Ops[inst.name]
		depEnd := 0.0
		for _, pred := range p.Deps.Pred(inst.name) {
			e, ok := endT[instance{pred, inst.epoch}]
			if !ok {
				return nil, fmt.Errorf("dpipe: trace: dependency %s@%d unscheduled before %s@%d",
					pred, inst.epoch, inst.name, inst.epoch)
			}
			if e > depEnd {
				depEnd = e
			}
		}
		if inst.epoch > 0 {
			for _, se := range p.StateEdges {
				if se.To != inst.name {
					continue
				}
				e, ok := endT[instance{se.From, inst.epoch - 1}]
				if !ok {
					return nil, fmt.Errorf("dpipe: trace: state dependency %s@%d unscheduled before %s@%d",
						se.From, inst.epoch-1, inst.name, inst.epoch)
				}
				if e > depEnd {
					depEnd = e
				}
			}
		}

		arrays := []perf.ArrayKind{perf.PE2D, perf.PE1D}
		if fixedAssign != nil {
			arrays = []perf.ArrayKind{fixedAssign[inst.name]}
		}
		bestEnd := math.Inf(1)
		var bestArr perf.ArrayKind
		var bestStart float64
		for _, arr := range arrays {
			start := math.Max(timeline[arr], depEnd)
			end := start + op.Cycles(spec, arr)
			if end < bestEnd {
				bestEnd, bestArr, bestStart = end, arr, start
			}
		}
		timeline[bestArr] = bestEnd
		endT[instance{inst.name, inst.epoch}] = bestEnd
		tr.Entries = append(tr.Entries, TraceEntry{
			Op: inst.name, Epoch: inst.epoch, Array: bestArr, Start: bestStart, End: bestEnd,
		})
		if bestEnd > tr.Makespan {
			tr.Makespan = bestEnd
		}
	}
	// Deterministic entry order regardless of how the candidate sequence
	// interleaved the instances: sort by start time, breaking ties by op
	// name then epoch, so traces diff cleanly and exports are reproducible.
	sort.Slice(tr.Entries, func(i, j int) bool {
		a, b := tr.Entries[i], tr.Entries[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		return a.Epoch < b.Epoch
	})
	return tr, nil
}

// Validate checks the trace's structural invariants: entries on the same
// array never overlap, and every dependency finishes before its consumer
// starts.
func (t *Trace) Validate(p *Problem) error {
	// Per-array non-overlap.
	byArray := map[perf.ArrayKind][]TraceEntry{}
	for _, e := range t.Entries {
		if e.End < e.Start {
			return fmt.Errorf("dpipe: trace: %s@%d ends (%f) before it starts (%f)", e.Op, e.Epoch, e.End, e.Start)
		}
		byArray[e.Array] = append(byArray[e.Array], e)
	}
	for arr, entries := range byArray {
		sorted := append([]TraceEntry(nil), entries...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
		for i := 1; i < len(sorted); i++ {
			if sorted[i].Start < sorted[i-1].End-1e-9 {
				return fmt.Errorf("dpipe: trace: overlap on %v: %s@%d [%f,%f) vs %s@%d [%f,%f)",
					arr, sorted[i-1].Op, sorted[i-1].Epoch, sorted[i-1].Start, sorted[i-1].End,
					sorted[i].Op, sorted[i].Epoch, sorted[i].Start, sorted[i].End)
			}
		}
	}
	// Dependency ordering.
	end := make(map[instance]float64, len(t.Entries))
	start := make(map[instance]float64, len(t.Entries))
	for _, e := range t.Entries {
		end[instance{e.Op, e.Epoch}] = e.End
		start[instance{e.Op, e.Epoch}] = e.Start
	}
	for _, e := range t.Entries {
		for _, pred := range p.Deps.Pred(e.Op) {
			if pe, ok := end[instance{pred, e.Epoch}]; ok && start[instance{e.Op, e.Epoch}] < pe-1e-9 {
				return fmt.Errorf("dpipe: trace: %s@%d starts before dependency %s@%d finishes", e.Op, e.Epoch, pred, e.Epoch)
			}
		}
		if e.Epoch > 0 {
			for _, se := range p.StateEdges {
				if se.To != e.Op {
					continue
				}
				if pe, ok := end[instance{se.From, e.Epoch - 1}]; ok && start[instance{e.Op, e.Epoch}] < pe-1e-9 {
					return fmt.Errorf("dpipe: trace: %s@%d starts before recurrence %s@%d finishes", e.Op, e.Epoch, se.From, e.Epoch-1)
				}
			}
		}
	}
	return nil
}

// BusyCycles returns the total busy time per array in the trace.
func (t *Trace) BusyCycles() (busy2D, busy1D float64) {
	for _, e := range t.Entries {
		if e.Array == perf.PE2D {
			busy2D += e.End - e.Start
		} else {
			busy1D += e.End - e.Start
		}
	}
	return busy2D, busy1D
}

// Gantt renders the trace as a two-lane ASCII timeline with the given
// character width. Each lane is one PE array; each cell shows the op that
// occupied that array during the corresponding time slice (first letters of
// its name), '.' for idle.
func (t *Trace) Gantt(width int) string {
	if width < 10 {
		width = 10
	}
	if t.Makespan == 0 || len(t.Entries) == 0 {
		return "(empty trace)\n"
	}
	lanes := map[perf.ArrayKind][]byte{
		perf.PE2D: bytesRepeat('.', width),
		perf.PE1D: bytesRepeat('.', width),
	}
	scale := float64(width) / t.Makespan
	for _, e := range t.Entries {
		lo := int(e.Start * scale)
		hi := int(e.End * scale)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		label := e.Op
		lane := lanes[e.Array]
		for i := lo; i < hi && i < width; i++ {
			idx := i - lo
			if idx < len(label) {
				lane[i] = label[idx]
			} else {
				lane[i] = '='
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d epochs, makespan %.0f cycles\n", t.Problem, t.Epochs, t.Makespan)
	fmt.Fprintf(&b, "2D |%s|\n", lanes[perf.PE2D])
	fmt.Fprintf(&b, "1D |%s|\n", lanes[perf.PE1D])
	return b.String()
}

func bytesRepeat(c byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = c
	}
	return out
}
