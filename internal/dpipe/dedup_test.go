package dpipe

import (
	"context"
	"testing"

	"github.com/fusedmindlab/transfusion/internal/arch"
	"github.com/fusedmindlab/transfusion/internal/graph"
	"github.com/fusedmindlab/transfusion/internal/obs"
)

// The dedup in candidateSet is defensive: the current enumeration never
// produces a duplicate (see the type's doc). These tests pin down both
// halves of that claim — the mechanism really fires on a collision, and the
// real enumeration really never drives it.

func TestCandidateSetDedupFiresOnCollision(t *testing.T) {
	reg := obs.NewRegistry()
	cs := newCandidateSet(reg.Counter("dpipe.dedup_skipped"))

	part := graph.Bipartition{
		First:  map[string]bool{"a": true},
		Second: map[string]bool{"b": true},
	}
	cs.add([]string{"a", "b"}, part)
	cs.add([]string{"a", "b"}, part) // identical (order, First): must dedup
	if len(cs.list) != 1 {
		t.Fatalf("candidate list = %d entries, want 1", len(cs.list))
	}
	if cs.skipped() != 1 {
		t.Fatalf("skipped = %d, want 1", cs.skipped())
	}
	if got := reg.Counter("dpipe.dedup_skipped").Value(); got != 1 {
		t.Fatalf("dpipe.dedup_skipped = %d, want 1", got)
	}

	// Same order under a different First set is a distinct candidate: the
	// bipartition changes the instance sequencing even when the per-epoch
	// order text matches.
	other := graph.Bipartition{
		First:  map[string]bool{"a": true, "b": true},
		Second: map[string]bool{"c": true},
	}
	cs.add([]string{"a", "b"}, other)
	if len(cs.list) != 2 {
		t.Fatalf("distinct First set was deduped: list = %d entries", len(cs.list))
	}

	// The canonical order's empty-First key cannot collide with any real
	// bipartition (valid bipartitions have non-empty sides).
	cs.add([]string{"a", "b"}, graph.Bipartition{})
	if len(cs.list) != 3 || cs.skipped() != 1 {
		t.Fatalf("empty-First candidate collided: list=%d skipped=%d", len(cs.list), cs.skipped())
	}
}

func TestCandidateSetNilCounterSafe(t *testing.T) {
	cs := newCandidateSet(nil) // obs counters are nil-receiver safe
	cs.add([]string{"x"}, graph.Bipartition{})
	cs.add([]string{"x"}, graph.Bipartition{})
	if len(cs.list) != 1 || cs.skipped() != 1 {
		t.Fatalf("list=%d skipped=%d, want 1/1", len(cs.list), cs.skipped())
	}
}

// TestPlanEnumerationNeverDedups sweeps real problems — the MHA cascade and
// the two-stage pipeline at several epoch counts — and asserts the
// enumeration emitted zero duplicates: TopoOrders backtracks uniquely and
// every bipartition has a distinct First set, so the counter must stay 0.
func TestPlanEnumerationNeverDedups(t *testing.T) {
	for _, epochs := range []int64{1, 4, 16} {
		for name, p := range map[string]*Problem{
			"mha":      mhaProblem(t, epochs),
			"twostage": twoStageProblem(epochs),
		} {
			reg := obs.NewRegistry()
			ctx := obs.WithMetrics(context.Background(), reg)
			if _, err := PlanContext(ctx, p, arch.Cloud(), DefaultOptions()); err != nil {
				t.Fatalf("%s epochs=%d: %v", name, epochs, err)
			}
			if got := reg.Snapshot().Counters["dpipe.dedup_skipped"]; got != 0 {
				t.Errorf("%s epochs=%d: enumeration emitted %d duplicate candidates", name, epochs, got)
			}
		}
	}
}
