package dpipe

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"github.com/fusedmindlab/transfusion/internal/arch"
	"github.com/fusedmindlab/transfusion/internal/obs"
)

// The winning schedule — makespan, order, assignment, bipartition, candidate
// count — must be identical at every Parallelism setting and GOMAXPROCS
// value: both paths reduce with the same (makespan, canonical key) tie-break.
func TestPlanParallelismBitIdentical(t *testing.T) {
	p := mhaProblem(t, 16)
	run := func(parallelism int) Result {
		opts := DefaultOptions()
		opts.Parallelism = parallelism
		res, err := PlanContext(context.Background(), p, arch.Cloud(), opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	if ref.TotalCycles <= 0 || len(ref.Order) == 0 {
		t.Fatalf("degenerate serial reference %+v", ref)
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 2, 4} {
		runtime.GOMAXPROCS(procs)
		for _, parallelism := range []int{1, 4, 0} { // 0 resolves to GOMAXPROCS
			if res := run(parallelism); !reflect.DeepEqual(res, ref) {
				t.Fatalf("GOMAXPROCS=%d parallelism=%d: plan %+v != serial %+v",
					procs, parallelism, res, ref)
			}
		}
	}
}

// The candidate dedup must be observable: dpipe.dedup_skipped registers in
// every snapshot (its expected value is zero — every (order, firstSet) pair
// the enumerator emits is structurally unique; the counter exists to make a
// future regression visible), and the parallel path reports its pool size.
func TestPlanParallelCounters(t *testing.T) {
	reg := obs.NewRegistry()
	ctx := obs.WithMetrics(context.Background(), reg)
	opts := DefaultOptions()
	opts.Parallelism = 4
	if _, err := PlanContext(ctx, mhaProblem(t, 8), arch.Cloud(), opts); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	skipped, ok := snap.Counters["dpipe.dedup_skipped"]
	if !ok {
		t.Fatal("dpipe.dedup_skipped not registered")
	}
	if skipped != 0 {
		t.Fatalf("dedup skipped %d candidates; enumeration emitted duplicates", skipped)
	}
	if got := snap.Gauges["dpipe.parallel_workers"]; got != 4 {
		t.Fatalf("dpipe.parallel_workers = %v, want 4", got)
	}
}
