package dpipe

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/fusedmindlab/transfusion/internal/arch"
	"github.com/fusedmindlab/transfusion/internal/perf"
)

func TestTraceScheduleBasics(t *testing.T) {
	p := twoStageProblem(4)
	tr, err := TraceSchedule(p, arch.Cloud(), nil, nil, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Entries) != 8 { // 2 ops x 4 epochs
		t.Fatalf("entries = %d, want 8", len(tr.Entries))
	}
	if err := tr.Validate(p); err != nil {
		t.Fatal(err)
	}
	if tr.Makespan <= 0 {
		t.Fatalf("makespan = %v", tr.Makespan)
	}
	b2, b1 := tr.BusyCycles()
	if b2 <= 0 || b1 < 0 {
		t.Fatalf("busy = %v/%v", b2, b1)
	}
	if b2 > tr.Makespan+1e-9 || b1 > tr.Makespan+1e-9 {
		t.Fatalf("busy exceeds makespan: %v/%v vs %v", b2, b1, tr.Makespan)
	}
}

func TestTraceMatchesSequentialAssignments(t *testing.T) {
	p := twoStageProblem(3)
	spec := arch.Cloud()
	assign := ClassAssignment(p)
	tr, err := TraceSchedule(p, spec, nil, nil, 3, assign)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Entries {
		if e.Array != assign[e.Op] {
			t.Fatalf("%s placed on %v, pinned to %v", e.Op, e.Array, assign[e.Op])
		}
	}
}

func TestTraceInterleavedSequenceValid(t *testing.T) {
	p := mhaProblem(t, 8)
	spec := arch.Edge()
	// Use the winning plan's order and bipartition to build the trace.
	plan, err := Plan(p, spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := TraceSchedule(p, spec, plan.Order, plan.Bipartition.First, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(p); err != nil {
		t.Fatal(err)
	}
	if len(tr.Entries) != 11*8 {
		t.Fatalf("entries = %d, want %d", len(tr.Entries), 11*8)
	}
}

func TestTraceDetectsCorruption(t *testing.T) {
	p := twoStageProblem(2)
	tr, err := TraceSchedule(p, arch.Cloud(), nil, nil, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Force an overlap on the 2D array.
	bad := *tr
	bad.Entries = append([]TraceEntry(nil), tr.Entries...)
	for i := range bad.Entries {
		bad.Entries[i].Array = perf.PE2D
		bad.Entries[i].Start = 0
		bad.Entries[i].End = 10
	}
	if err := bad.Validate(p); err == nil {
		t.Fatal("overlapping trace validated")
	}
	// Negative-duration entry.
	bad2 := *tr
	bad2.Entries = append([]TraceEntry(nil), tr.Entries...)
	bad2.Entries[0].Start = bad2.Entries[0].End + 1
	if err := bad2.Validate(p); err == nil {
		t.Fatal("negative-duration trace validated")
	}
}

func TestGanttRendering(t *testing.T) {
	p := twoStageProblem(3)
	tr, err := TraceSchedule(p, arch.Cloud(), nil, nil, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := tr.Gantt(60)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("gantt lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "2D |") || !strings.HasPrefix(lines[2], "1D |") {
		t.Fatalf("gantt lanes malformed:\n%s", out)
	}
	// The GEMM 'G' must appear on some lane.
	if !strings.Contains(out, "G") {
		t.Fatalf("gantt missing op label:\n%s", out)
	}
	// Tiny width clamps instead of panicking.
	if small := tr.Gantt(1); !strings.Contains(small, "2D |") {
		t.Fatalf("small gantt malformed: %q", small)
	}
	empty := &Trace{Problem: "x"}
	if !strings.Contains(empty.Gantt(20), "empty") {
		t.Fatal("empty trace rendering wrong")
	}
}

// Property: for any epoch count, the interleaved trace of the best plan is
// dependency- and overlap-valid.
func TestQuickTraceAlwaysValid(t *testing.T) {
	spec := arch.Edge()
	f := func(eRaw uint8) bool {
		epochs := int(eRaw%6) + 2
		p := twoStageProblem(int64(epochs))
		plan, err := Plan(p, spec, DefaultOptions())
		if err != nil {
			return false
		}
		tr, err := TraceSchedule(p, spec, plan.Order, plan.Bipartition.First, epochs, nil)
		if err != nil {
			return false
		}
		return tr.Validate(p) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// The trace's makespan over explicit epochs must agree with the DP's
// explicit-epoch scheduling (same equations, same sequencing).
func TestTraceMakespanMatchesScheduleForExplicitEpochs(t *testing.T) {
	p := twoStageProblem(4) // <= ExplicitEpochs, so Plan is exact
	spec := arch.Cloud()
	plan, err := Plan(p, spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := TraceSchedule(p, spec, plan.Order, plan.Bipartition.First, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if diff := tr.Makespan - plan.TotalCycles; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("trace makespan %v != plan %v", tr.Makespan, plan.TotalCycles)
	}
}
