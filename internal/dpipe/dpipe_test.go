package dpipe

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/fusedmindlab/transfusion/internal/arch"
	"github.com/fusedmindlab/transfusion/internal/cascade"
	"github.com/fusedmindlab/transfusion/internal/einsum"
	"github.com/fusedmindlab/transfusion/internal/graph"
	"github.com/fusedmindlab/transfusion/internal/perf"
)

// twoStageProblem builds a minimal pipeline: a GEMM feeding a vector op,
// repeated over epochs — the producer should run on 2D, the consumer on 1D,
// and across epochs the two should overlap.
func twoStageProblem(epochs int64) *Problem {
	gemm := perf.OpSpec{
		E:      mustParse("G = A[p,k] * B[k,q] -> [p,q]"),
		Dims:   map[string]int{"p": 256, "k": 256, "q": 256},
		RowIdx: []string{"p"},
		ColIdx: []string{"q"},
	}
	vec := perf.OpSpec{
		E:      einsum.Map("V", []string{"p", "q"}, einsum.ExpSub, einsum.In("G", "p", "q"), einsum.In("M", "p")),
		Dims:   map[string]int{"p": 256, "q": 256},
		RowIdx: []string{"p"},
		ColIdx: []string{"q"},
	}
	deps := graph.New()
	deps.AddEdge("G", "V")
	return &Problem{
		Name:   "twostage",
		Ops:    map[string]perf.OpSpec{"G": gemm, "V": vec},
		Deps:   deps,
		Epochs: epochs,
	}
}

func mhaProblem(t *testing.T, epochs int64) *Problem {
	t.Helper()
	dims := map[string]int{"h": 12, "e": 64, "f": 64, "p": 256, "m0": 64}
	p, err := FromCascade(cascade.Attention(), dims, epochs)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFromCascadeAttentionStructure(t *testing.T) {
	p := mhaProblem(t, 16)
	if len(p.Ops) != 11 {
		t.Fatalf("MHA body ops = %d, want 11", len(p.Ops))
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Producer-consumer edges: BQK -> LM, BQK -> SLN, SLN -> SLNV, ...
	for _, e := range [][2]string{{"BQK", "LM"}, {"BQK", "SLN"}, {"SLN", "SLNV"}, {"LM", "RM_next"}, {"PRM", "SPD"}} {
		found := false
		for _, s := range p.Deps.Succ(e[0]) {
			if s == e[1] {
				found = true
			}
		}
		if !found {
			t.Errorf("missing edge %s -> %s", e[0], e[1])
		}
	}
	// State edges: RM_next feeds RM readers in the next epoch.
	foundRM := false
	for _, se := range p.StateEdges {
		if se.From == "RM_next" && se.To == "PRM" {
			foundRM = true
		}
	}
	if !foundRM {
		t.Errorf("missing cross-epoch edge RM_next -> PRM: %v", p.StateEdges)
	}
	// Table 1 mapping: BQK output [m0, h, p] maps rows=p, cols=m0.
	bqk := p.Ops["BQK"]
	if len(bqk.RowIdx) != 1 || bqk.RowIdx[0] != "p" || len(bqk.ColIdx) != 1 || bqk.ColIdx[0] != "m0" {
		t.Errorf("BQK mapping rows=%v cols=%v", bqk.RowIdx, bqk.ColIdx)
	}
}

func TestFromCascadeUnknownLayer(t *testing.T) {
	c := &cascade.Cascade{Name: "mystery"}
	if _, err := FromCascade(c, nil, 1); err == nil {
		t.Fatal("unknown layer accepted")
	}
}

func TestFromCascadeMissingDim(t *testing.T) {
	dims := map[string]int{"h": 2, "e": 4, "p": 8} // f, m0 missing
	if _, err := FromCascade(cascade.Attention(), dims, 4); err == nil {
		t.Fatal("missing dims accepted")
	}
}

func TestValidateRejectsBadProblems(t *testing.T) {
	p := twoStageProblem(4)
	p.Epochs = 0
	if err := p.Validate(); err == nil {
		t.Fatal("zero epochs accepted")
	}

	p = twoStageProblem(4)
	p.Deps.AddNode("orphan")
	if err := p.Validate(); err == nil {
		t.Fatal("DAG node without OpSpec accepted")
	}

	p = twoStageProblem(4)
	p.StateEdges = []StateEdge{{From: "nope", To: "G"}}
	if err := p.Validate(); err == nil {
		t.Fatal("dangling state edge accepted")
	}

	p = twoStageProblem(4)
	p.Deps.AddEdge("V", "G") // cycle
	if err := p.Validate(); err == nil {
		t.Fatal("cyclic DAG accepted")
	}
}

func TestSequentialMatchesHandComputation(t *testing.T) {
	spec := arch.Cloud()
	p := twoStageProblem(3)
	res, err := Sequential(p, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := p.Ops["G"].Cycles(spec, perf.PE2D)
	v := p.Ops["V"].Cycles(spec, perf.PE1D)
	want := (g + v) * 3
	if math.Abs(res.TotalCycles-want) > 1e-9 {
		t.Fatalf("Sequential = %v, want %v", res.TotalCycles, want)
	}
	if res.Busy2D != g*3 || res.Busy1D != v*3 {
		t.Fatalf("busy = %v/%v", res.Busy2D, res.Busy1D)
	}
}

func TestStaticPipelinedOverlaps(t *testing.T) {
	spec := arch.Cloud()
	p := twoStageProblem(64)
	seq, err := Sequential(p, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	pip, err := StaticPipelined(p, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pip.TotalCycles >= seq.TotalCycles {
		t.Fatalf("pipelined (%v) not faster than sequential (%v)", pip.TotalCycles, seq.TotalCycles)
	}
	// With many epochs the pipeline approaches the bottleneck stage's cost.
	g := p.Ops["G"].Cycles(spec, perf.PE2D)
	v := p.Ops["V"].Cycles(spec, perf.PE1D)
	bottleneck := math.Max(g, v) * 64
	if pip.TotalCycles > bottleneck*1.25 {
		t.Fatalf("pipelined %v far above bottleneck bound %v", pip.TotalCycles, bottleneck)
	}
}

func TestPlanBeatsStaticSchedules(t *testing.T) {
	for _, spec := range []arch.Spec{arch.Cloud(), arch.Edge()} {
		p := mhaProblem(t, 64)
		plan, err := Plan(p, spec, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		static, err := StaticPipelined(p, spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := Sequential(p, spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		if plan.TotalCycles > static.TotalCycles+1e-9 {
			t.Errorf("%s: Plan (%v) worse than static pipeline (%v)", spec.Name, plan.TotalCycles, static.TotalCycles)
		}
		if plan.TotalCycles > seq.TotalCycles+1e-9 {
			t.Errorf("%s: Plan (%v) worse than sequential (%v)", spec.Name, plan.TotalCycles, seq.TotalCycles)
		}
		if plan.Candidates < 2 {
			t.Errorf("%s: only %d candidate schedules explored", spec.Name, plan.Candidates)
		}
	}
}

func TestPlanRespectsEpochScaling(t *testing.T) {
	spec := arch.Cloud()
	short := mhaProblem(t, 8)
	long := mhaProblem(t, 64)
	rShort, err := Plan(short, spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rLong, err := Plan(long, spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ratio := rLong.TotalCycles / rShort.TotalCycles
	// 8x the epochs should cost roughly 8x in steady state (within fill
	// effects).
	if ratio < 6 || ratio > 9 {
		t.Fatalf("epoch scaling ratio = %v, want ~8", ratio)
	}
}

func TestPlanUtilizationBounds(t *testing.T) {
	spec := arch.Cloud()
	p := mhaProblem(t, 64)
	res, err := Plan(p, spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []float64{res.Utilization1D(), res.Utilization2D()} {
		if u < 0 || u > 1+1e-9 {
			t.Fatalf("utilization out of range: 1D=%v 2D=%v", res.Utilization1D(), res.Utilization2D())
		}
	}
	// The two arrays' busy time must not exceed makespan each.
	if res.Busy1D > res.TotalCycles+1e-6 || res.Busy2D > res.TotalCycles+1e-6 {
		t.Fatalf("busy exceeds makespan: %v/%v vs %v", res.Busy1D, res.Busy2D, res.TotalCycles)
	}
}

func TestSerialLoadCyclesUpperBoundsPlan(t *testing.T) {
	spec := arch.Edge()
	p := mhaProblem(t, 32)
	res, err := Plan(p, spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// SerialLoadCycles uses each op's best array; the plan may be forced to
	// split across arrays but must never exceed the all-sequential bound by
	// more than numerical noise... it can actually exceed it when ops run
	// on their second-best array, so compare against the strict sequential
	// result instead.
	seq, err := Sequential(p, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCycles > seq.TotalCycles+1e-9 {
		t.Fatalf("plan %v exceeds sequential %v", res.TotalCycles, seq.TotalCycles)
	}
	if p.SerialLoadCycles(spec) <= 0 {
		t.Fatal("SerialLoadCycles <= 0")
	}
}

func TestClassAssignment(t *testing.T) {
	p := mhaProblem(t, 4)
	assign := ClassAssignment(p)
	if assign["BQK"] != perf.PE2D || assign["SLNV"] != perf.PE2D {
		t.Fatal("contractions not assigned to 2D")
	}
	for _, vecOp := range []string{"LM", "SLN", "SLD", "PRM", "RM_next", "RD_next"} {
		if assign[vecOp] != perf.PE1D {
			t.Errorf("vector op %s not assigned to 1D", vecOp)
		}
	}
}

// The DPipe cloud/edge asymmetry (§6.2 "Utilization"): DPipe beats the
// static FuseMax-style pipeline on both architectures, but through
// different mechanisms — on cloud by offloading the softmax chain onto the
// huge 2D array, on edge by spilling matrix work onto the otherwise idle 1D
// array (which must end up substantially busy).
func TestPlanArrayAsymmetry(t *testing.T) {
	pCloud := mhaProblem(t, 256)
	resCloud, err := Plan(pCloud, arch.Cloud(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	staticCloud, err := StaticPipelined(mhaProblem(t, 256), arch.Cloud(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if resCloud.TotalCycles >= staticCloud.TotalCycles {
		t.Fatalf("cloud: Plan (%v) no faster than static pipeline (%v)", resCloud.TotalCycles, staticCloud.TotalCycles)
	}

	pEdge := mhaProblem(t, 256)
	resEdge, err := Plan(pEdge, arch.Edge(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	staticEdge, err := StaticPipelined(mhaProblem(t, 256), arch.Edge(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if resEdge.TotalCycles >= staticEdge.TotalCycles/1.2 {
		t.Fatalf("edge: Plan (%v) should beat static (%v) by >= 1.2x via 1D spill", resEdge.TotalCycles, staticEdge.TotalCycles)
	}
	if share := resEdge.Busy1D / (resEdge.Busy1D + resEdge.Busy2D); share < 0.2 {
		t.Fatalf("edge: 1D busy share %v too small — matrix spill missing", share)
	}
}

func TestPlanSingleEpoch(t *testing.T) {
	p := twoStageProblem(1)
	res, err := Plan(p, arch.Cloud(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCycles <= 0 {
		t.Fatalf("single-epoch makespan = %v", res.TotalCycles)
	}
}

func TestSortedOpNames(t *testing.T) {
	p := twoStageProblem(1)
	names := sortedOpNames(p)
	if len(names) != 2 || names[0] != "G" || names[1] != "V" {
		t.Fatalf("sortedOpNames = %v", names)
	}
}

// Property: the DP schedule never violates dependencies — for every edge,
// the consumer's end time is at least the producer's end plus the
// consumer's own latency. Verified indirectly: makespan >= critical path of
// one epoch (the chain G->V).
func TestQuickMakespanAtLeastCriticalPath(t *testing.T) {
	spec := arch.Cloud()
	f := func(eRaw uint8) bool {
		epochs := int64(eRaw%16) + 1
		p := twoStageProblem(epochs)
		res, err := Plan(p, spec, DefaultOptions())
		if err != nil {
			return false
		}
		g, _ := p.Ops["G"].BestArray(spec)
		_ = g
		chain := p.Ops["G"].Cycles(spec, perf.PE2D) + math.Min(
			p.Ops["V"].Cycles(spec, perf.PE1D), p.Ops["V"].Cycles(spec, perf.PE2D))
		return res.TotalCycles >= chain-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: doubling epoch count never decreases total cycles and scales at
// most linearly (plus fill).
func TestQuickEpochMonotonicity(t *testing.T) {
	spec := arch.Edge()
	f := func(eRaw uint8) bool {
		e := int64(eRaw%10) + 2
		p1 := twoStageProblem(e)
		p2 := twoStageProblem(2 * e)
		r1, err1 := Plan(p1, spec, DefaultOptions())
		r2, err2 := Plan(p2, spec, DefaultOptions())
		if err1 != nil || err2 != nil {
			return false
		}
		// Doubling epochs must not shrink the makespan, and must stay within
		// 2x plus a 10% allowance for pipeline fill and steady-state
		// extrapolation effects.
		return r2.TotalCycles >= r1.TotalCycles-1e-9 && r2.TotalCycles <= 2.2*r1.TotalCycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// mustParse stands in for the removed library panic helper; static specs in
// this file are known-good.
func mustParse(spec string) *einsum.Einsum {
	e, err := einsum.Parse(spec)
	if err != nil {
		panic(err)
	}
	return e
}
