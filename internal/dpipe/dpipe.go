// Package dpipe implements DPipe, the paper's DAG-based Einsum pipelining
// scheduler (§4). Given the operation-level DAG of a fused layer's Einsum
// Cascade, DPipe:
//
//  1. enumerates valid bipartitions of the DAG under the four constraints of
//     §4.1 (source/sink alignment, weak connectivity, dependency
//     completeness, reachability);
//  2. connects each bipartition's subgraphs with a virtual root node and
//     enumerates topological orderings of the result — each ordering is a
//     candidate interleaving of the two pipeline stages;
//  3. evaluates each candidate with the dynamic-programming list scheduler
//     of Eqs. 43–46, which assigns every Einsum inner tile to the 1D or 2D
//     PE array so as to minimise its completion time subject to dependency
//     and array-occupancy constraints, across epochs of inner tiles;
//  4. returns the schedule with the minimum extrapolated makespan.
//
// Epochs: a layer executes many identical inner tiles (e.g. the M1 loop of
// streaming attention). The scheduler models a small number of epochs
// explicitly — enough to reach the pipeline's steady state — and
// extrapolates the per-epoch steady-state increment to the full epoch
// count, so scheduling cost is independent of sequence length.
package dpipe

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/fusedmindlab/transfusion/internal/arch"
	"github.com/fusedmindlab/transfusion/internal/chaos"
	"github.com/fusedmindlab/transfusion/internal/einsum"
	"github.com/fusedmindlab/transfusion/internal/faults"
	"github.com/fusedmindlab/transfusion/internal/graph"
	"github.com/fusedmindlab/transfusion/internal/obs"
	"github.com/fusedmindlab/transfusion/internal/perf"
)

// StateEdge is a cross-epoch dependency: the op named From in epoch k-1
// must finish before the op named To in epoch k starts (the streaming-
// softmax recurrence).
type StateEdge struct {
	From string
	To   string
}

// Problem is one schedulable fused layer: the per-epoch operations, their
// intra-epoch dependency DAG, cross-epoch recurrence edges, and the number
// of epochs (inner tiles) to execute.
type Problem struct {
	// Name identifies the layer (for traces).
	Name string
	// Ops maps Einsum name to its per-epoch OpSpec.
	Ops map[string]perf.OpSpec
	// Deps is the intra-epoch dependency DAG over Einsum names.
	Deps *graph.DAG
	// StateEdges are the cross-epoch recurrence dependencies.
	StateEdges []StateEdge
	// Epochs is the number of inner-tile epochs (>= 1).
	Epochs int64
}

// Validate checks the problem's internal consistency.
func (p *Problem) Validate() error {
	if p.Epochs < 1 {
		return fmt.Errorf("dpipe: problem %s has %d epochs", p.Name, p.Epochs)
	}
	if len(p.Ops) == 0 {
		return fmt.Errorf("dpipe: problem %s has no ops", p.Name)
	}
	for _, n := range p.Deps.Nodes() {
		if _, ok := p.Ops[n]; !ok {
			return fmt.Errorf("dpipe: problem %s: DAG node %q has no OpSpec", p.Name, n)
		}
	}
	for name, op := range p.Ops {
		if !p.Deps.HasNode(name) {
			return fmt.Errorf("dpipe: problem %s: op %q missing from DAG", p.Name, name)
		}
		if err := op.Validate(); err != nil {
			return fmt.Errorf("dpipe: problem %s: op %q: %w", p.Name, name, err)
		}
	}
	for _, se := range p.StateEdges {
		if !p.Deps.HasNode(se.From) || !p.Deps.HasNode(se.To) {
			return fmt.Errorf("dpipe: problem %s: state edge %s->%s references unknown op", p.Name, se.From, se.To)
		}
	}
	if !p.Deps.IsAcyclic() {
		return fmt.Errorf("dpipe: problem %s: dependency graph has a cycle", p.Name)
	}
	return nil
}

// SerialLoadCycles returns the total cycles if every op ran serially on its
// best array with no overlap — an upper bound used in tests and as a
// degenerate fallback.
func (p *Problem) SerialLoadCycles(spec arch.Spec) float64 {
	total := 0.0
	for _, op := range p.Ops {
		_, c := op.BestArray(spec)
		total += c
	}
	return total * float64(p.Epochs)
}

// Result is a completed schedule.
type Result struct {
	// TotalCycles is the extrapolated makespan over all epochs.
	TotalCycles float64
	// Busy1D and Busy2D are the total busy cycles per array over all epochs.
	Busy1D float64
	Busy2D float64
	// Order is the per-epoch topological order the winning schedule used.
	Order []string
	// Assignment is the steady-state array assignment per op.
	Assignment map[string]perf.ArrayKind
	// Bipartition is the winning DAG split ("" sides when the DAG admitted
	// no valid bipartition and the canonical order was used).
	Bipartition graph.Bipartition
	// Candidates is the number of (bipartition, order) schedules evaluated.
	Candidates int
}

// Utilization1D returns the 1D array's busy fraction of the makespan.
func (r Result) Utilization1D() float64 {
	if r.TotalCycles == 0 {
		return 0
	}
	return r.Busy1D / r.TotalCycles
}

// Utilization2D returns the 2D array's busy fraction of the makespan.
func (r Result) Utilization2D() float64 {
	if r.TotalCycles == 0 {
		return 0
	}
	return r.Busy2D / r.TotalCycles
}

// Options bound the schedule search.
type Options struct {
	// MaxBipartitions caps the number of DAG bipartitions explored.
	MaxBipartitions int
	// MaxOrdersPerPartition caps the topological orderings tried per
	// bipartition.
	MaxOrdersPerPartition int
	// ExplicitEpochs is the number of epochs scheduled exactly before
	// steady-state extrapolation (>= 2 for a meaningful delta).
	ExplicitEpochs int
	// MaxEnumeration caps the candidate subsets *examined* during
	// bipartition enumeration (the scan is exponential in DAG size before
	// validity filtering). Exceeding the cap aborts the plan with an error
	// matching faults.ErrBudgetExhausted instead of scanning unbounded.
	// Zero takes the default; negative means unlimited.
	MaxEnumeration int
	// Parallelism sets how many goroutines evaluate candidate schedules
	// concurrently: 0 selects GOMAXPROCS, 1 the serial loop, n > 1 a bounded
	// worker pool. The winning schedule is identical at every setting: both
	// paths reduce with the same deterministic (makespan, canonical
	// candidate key) tie-break.
	Parallelism int
	// Progress, when non-nil, receives an obs.EnumerationProgress event
	// after the bipartition/ordering enumeration of each plan. Leave nil to
	// pay nothing.
	Progress obs.ProgressFunc
	// WarmHints, when non-empty, are previously winning (order, first-set)
	// candidates — typically from the stored plan for the nearest sequence
	// length — inserted at the head of the deterministic candidate frontier.
	// Valid hints are evaluated first, unbounded; the best hinted total then
	// bounds every remaining candidate's DP sweep, which aborts as soon as a
	// sound lower bound of its extrapolated total exceeds the hinted
	// incumbent. The winning schedule is unchanged: pruned candidates are
	// provably worse than the incumbent, and because the bound is fixed
	// before the fan-out (never tightened mid-flight) the per-candidate DP
	// cell counts are deterministic at every Parallelism. Hints that do not
	// match the problem's DAG are ignored; with no valid hint planning is
	// bit-identical to a cold plan.
	WarmHints []Hint
}

// Hint is one warm-start candidate for Options.WarmHints: a previously
// winning per-epoch order and the first-subgraph of its bipartition (empty
// First = the unpartitioned schedule).
type Hint struct {
	Order []string
	First []string
}

// bipartition validates a hint against the problem and rebuilds its
// Bipartition. A hint is valid when Order is a permutation of the DAG's
// nodes and First is a strict, duplicate-free subset of them; anything else
// (a hint from a structurally different layer) reports false and is
// ignored. Dependency violations need no checking here: an order that
// breaks the DAG earns an infinite makespan from the DP and simply never
// becomes the incumbent.
func (h Hint) bipartition(p *Problem) (graph.Bipartition, bool) {
	if len(h.Order) != len(p.Deps.Nodes()) {
		return graph.Bipartition{}, false
	}
	seen := make(map[string]bool, len(h.Order))
	for _, n := range h.Order {
		if !p.Deps.HasNode(n) || seen[n] {
			return graph.Bipartition{}, false
		}
		seen[n] = true
	}
	if len(h.First) == 0 {
		return graph.Bipartition{}, true
	}
	part := graph.Bipartition{
		First:  make(map[string]bool, len(h.First)),
		Second: make(map[string]bool, len(h.Order)-len(h.First)),
	}
	for _, n := range h.First {
		if !seen[n] || part.First[n] {
			return graph.Bipartition{}, false
		}
		part.First[n] = true
	}
	for _, n := range h.Order {
		if !part.First[n] {
			part.Second[n] = true
		}
	}
	if len(part.Second) == 0 {
		return graph.Bipartition{}, false // both sides of a bipartition are non-empty
	}
	return part, true
}

// DefaultOptions are the bounds used throughout the evaluation.
func DefaultOptions() Options {
	return Options{MaxBipartitions: 64, MaxOrdersPerPartition: 12, ExplicitEpochs: 12, MaxEnumeration: 1 << 20}
}

// Plan searches bipartitions and orderings and returns the best pipelined
// schedule for the problem on the given architecture.
func Plan(p *Problem, spec arch.Spec, opts Options) (Result, error) {
	return PlanContext(context.Background(), p, spec, opts)
}

// PlanContext is Plan under a context: cancellation is honoured between
// enumeration strides and between candidate schedule evaluations, returning
// an error matching faults.ErrCanceled; the enumeration budget
// (Options.MaxEnumeration) returns faults.ErrBudgetExhausted.
//
// Observability: a logger attached to ctx (obs.WithLogger) gets a debug line
// per plan; a registry attached to ctx (obs.WithMetrics) accumulates
// dpipe.plans, dpipe.enumerated, dpipe.bipartitions, dpipe.candidates,
// dpipe.dp_cells, and the dpipe.plan_ms histogram. A request span attached
// to ctx (obs.ContextWithSpan) gains one "dpipe.plan" child annotated with
// the candidate count.
func PlanContext(ctx context.Context, p *Problem, spec arch.Spec, opts Options) (Result, error) {
	ctx, sp := obs.StartSpan(ctx, "dpipe.plan")
	res, err := planContext(ctx, p, spec, opts)
	if sp != nil {
		sp.SetAttrInt("candidates", int64(res.Candidates))
		if len(opts.WarmHints) > 0 {
			sp.SetAttrBool("warm", true)
		}
		sp.EndErr(err)
	}
	return res, err
}

// planContext is PlanContext's body; see there for the contract.
func planContext(ctx context.Context, p *Problem, spec arch.Spec, opts Options) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if opts.MaxBipartitions <= 0 || opts.MaxOrdersPerPartition <= 0 {
		maxEnum, progress, par := opts.MaxEnumeration, opts.Progress, opts.Parallelism
		opts = DefaultOptions()
		opts.MaxEnumeration = maxEnum
		opts.Progress = progress
		opts.Parallelism = par
	}
	if opts.ExplicitEpochs < 2 {
		opts.ExplicitEpochs = 2
	}
	if opts.MaxEnumeration == 0 {
		opts.MaxEnumeration = DefaultOptions().MaxEnumeration
	}

	reg := obs.MetricsFrom(ctx)
	var planStart time.Time
	if reg != nil {
		reg.Counter("dpipe.plans").Inc()
		planStart = time.Now()
	}

	// Candidate orderings: the canonical topological order always
	// participates; each valid bipartition contributes orderings of its
	// virtual-root DAG. Candidates are collected through a candidateSet,
	// which skips (and counts) canonical-key duplicates — see its doc for
	// why the current enumeration never produces any.
	cs := newCandidateSet(reg.Counter("dpipe.dedup_skipped"))

	// Warm start: validated hints occupy the head of the candidate list, so
	// they are evaluated before the enumerated frontier and their best total
	// becomes the pruning bound for everything after them. The dedup set
	// absorbs the enumeration regenerating a hinted candidate (the one case
	// dedup_skipped legitimately fires).
	for _, h := range opts.WarmHints {
		if part, ok := h.bipartition(p); ok {
			cs.add(h.Order, part)
		}
	}
	nHints := len(cs.list)

	canonical, err := p.Deps.TopoSort()
	if err != nil {
		return Result{}, err
	}
	cs.add(canonical, graph.Bipartition{})

	parts, examined, err := p.Deps.BipartitionsBounded(ctx, opts.MaxEnumeration)
	if reg != nil {
		// Account the scan even when it aborted on budget/cancellation.
		reg.Counter("dpipe.enumerated").Add(int64(examined))
		reg.Counter("dpipe.bipartitions").Add(int64(len(parts)))
	}
	if err != nil {
		return Result{}, fmt.Errorf("dpipe: problem %s: %w", p.Name, err)
	}
	// Sort bipartitions by canonical key before truncating, so the explored
	// prefix is a property of the problem, not of enumeration order.
	partKeys := make([]string, len(parts))
	for i, part := range parts {
		partKeys[i] = strings.Join(part.FirstSorted(), "\x1f")
	}
	sort.Sort(&keyedParts{keys: partKeys, parts: parts})
	if len(parts) > opts.MaxBipartitions {
		parts = parts[:opts.MaxBipartitions]
	}
	const rootID = "\x00ROOT"
	for _, part := range parts {
		if ctx.Err() != nil {
			return Result{}, faults.Canceled(ctx)
		}
		// The overlap DAG of Figure 7(d): in the pipelined execution the
		// first subgraph of epoch k runs concurrently with the second
		// subgraph of epoch k-1, so the cross edges S1 -> S2 (which connect
		// different epochs) are dropped; a virtual root ties the two induced
		// subgraphs into a single DAG whose topological orders are the
		// candidate interleavings.
		overlay := graph.New()
		for node := range part.First {
			overlay.AddNode(node)
		}
		for node := range part.Second {
			overlay.AddNode(node)
		}
		for _, from := range p.Deps.Nodes() {
			for _, to := range p.Deps.Succ(from) {
				sameSide := part.First[from] == part.First[to]
				if sameSide {
					overlay.AddEdge(from, to)
				}
			}
		}
		rooted, err := overlay.WithVirtualRoot(rootID)
		if err != nil {
			return Result{}, err
		}
		for _, order := range rooted.TopoOrders(opts.MaxOrdersPerPartition) {
			// Strip the virtual root.
			clean := make([]string, 0, len(order)-1)
			for _, id := range order {
				if id != rootID {
					clean = append(clean, id)
				}
			}
			cs.add(clean, part)
		}
	}

	if opts.Progress != nil {
		opts.Progress(obs.EnumerationProgress{
			Problem:      p.Name,
			Examined:     examined,
			Budget:       opts.MaxEnumeration,
			Bipartitions: len(parts),
			Candidates:   len(cs.list),
		})
	}

	cells := reg.Counter("dpipe.dp_cells") // nil-safe on a nil registry
	// Fault-injection site, struck once per candidate schedule evaluation on
	// both the serial and the pooled path; nil (a single branch) when no
	// injector is attached to ctx.
	chaosSite := chaos.SiteFrom(ctx, chaos.SiteDPipeCandidate)
	results := make([]Result, len(cs.list))

	// Hinted candidates run first, serially and unbounded — their totals
	// must be exact, both because one of them is probably the winner and
	// because the minimum becomes the pruning bound. The bound is fixed here
	// and never tightened during the fan-out: an improving bound would make
	// per-candidate cell counts depend on evaluation order and break the
	// cross-parallelism determinism of dpipe.dp_cells. The relative slack
	// keeps a candidate whose exact total ties the incumbent from being
	// pruned by floating-point noise in the mid-sweep lower bound, so the
	// deterministic tie-break reduction sees exactly the same finite totals
	// a cold plan would compute.
	bound := math.Inf(1)
	for i := 0; i < nHints; i++ {
		if ctx.Err() != nil {
			return Result{}, faults.Canceled(ctx)
		}
		if err := chaosSite.Strike(ctx); err != nil {
			return Result{}, fmt.Errorf("dpipe: problem %s: %w", p.Name, err)
		}
		c := cs.list[i]
		results[i] = evaluate(p, spec, c.order, c.part.First, opts.ExplicitEpochs, nil, cells, math.Inf(1))
		if t := results[i].TotalCycles; t < bound {
			bound = t
		}
	}
	if !math.IsInf(bound, 1) {
		bound *= 1 + 1e-9
	}

	workers := resolveParallelism(opts.Parallelism)
	if workers > len(cs.list)-nHints {
		workers = len(cs.list) - nHints
	}
	if workers > 1 {
		// Fan the candidate evaluations (pure DP sweeps) across a bounded
		// pool. Each result lands in its candidate's slot, so the reduction
		// below sees exactly what the serial loop would.
		reg.Gauge("dpipe.parallel_workers").Set(float64(workers))
		var next atomic.Int64
		var wg sync.WaitGroup
		var panicMu sync.Mutex
		var panicVal any
		var injected error
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						panicMu.Lock()
						if panicVal == nil {
							panicVal = r
						}
						panicMu.Unlock()
					}
				}()
				for {
					i := int(next.Add(1)) - 1 + nHints
					// Cancellation is checked per candidate schedule, as on
					// the serial path.
					if i >= len(cs.list) || ctx.Err() != nil {
						return
					}
					if err := chaosSite.Strike(ctx); err != nil {
						panicMu.Lock()
						if injected == nil {
							injected = err
						}
						panicMu.Unlock()
						return
					}
					c := cs.list[i]
					results[i] = evaluate(p, spec, c.order, c.part.First, opts.ExplicitEpochs, nil, cells, bound)
				}
			}()
		}
		wg.Wait()
		if panicVal != nil {
			panic(panicVal)
		}
		if ctx.Err() != nil {
			return Result{}, faults.Canceled(ctx)
		}
		if injected != nil {
			return Result{}, fmt.Errorf("dpipe: problem %s: %w", p.Name, injected)
		}
	} else {
		for i := nHints; i < len(cs.list); i++ {
			// Cancellation is checked per candidate schedule: a canceled plan
			// returns promptly instead of finishing the DP sweep.
			if ctx.Err() != nil {
				return Result{}, faults.Canceled(ctx)
			}
			if err := chaosSite.Strike(ctx); err != nil {
				return Result{}, fmt.Errorf("dpipe: problem %s: %w", p.Name, err)
			}
			c := cs.list[i]
			results[i] = evaluate(p, spec, c.order, c.part.First, opts.ExplicitEpochs, nil, cells, bound)
		}
	}

	// Deterministic reduction: min makespan, ties broken by the canonical
	// candidate key — the winner is identical at any worker count and any
	// GOMAXPROCS. Unschedulable candidates (infinite makespan) never win,
	// matching the serial strict-less-than of old.
	best := Result{TotalCycles: math.Inf(1)}
	bestKey := ""
	found := false
	for i, c := range cs.list {
		res := results[i]
		// Pruned sweeps report +Inf; a dependency-violating hint evaluated
		// cold can extrapolate Inf-Inf into NaN. Neither is a schedule, and a
		// NaN reaching `best` first would poison every later < comparison.
		if math.IsInf(res.TotalCycles, 1) || math.IsNaN(res.TotalCycles) {
			continue
		}
		if !found || res.TotalCycles < best.TotalCycles ||
			(res.TotalCycles == best.TotalCycles && c.key < bestKey) {
			res.Order = c.order
			res.Bipartition = c.part
			best = res
			bestKey = c.key
			found = true
		}
	}
	best.Candidates = len(cs.list)
	if reg != nil {
		reg.Counter("dpipe.candidates").Add(int64(len(cs.list)))
		reg.Histogram("dpipe.plan_ms", nil).Observe(float64(time.Since(planStart).Microseconds()) / 1e3)
	}
	// Enabled-guarded so the disabled path never builds the attr slice:
	// PlanContext runs once per objective evaluation and sub-layer.
	if lg := obs.LoggerFrom(ctx); lg.Enabled(ctx, slog.LevelDebug) {
		lg.Debug("dpipe: plan complete",
			"problem", p.Name,
			"candidates", len(cs.list),
			"bipartitions", len(parts),
			"enumerated", examined,
			"cycles", best.TotalCycles)
	}
	return best, nil
}

// Sequential evaluates the problem with every op fully serialised on a
// fixed assignment (no 1D/2D overlap at all) — the Unfused/FLAT composition
// model. assign gives each op's array; nil assigns by class (contractions
// to 2D, vector work to 1D).
func Sequential(p *Problem, spec arch.Spec, assign map[string]perf.ArrayKind) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if assign == nil {
		assign = ClassAssignment(p)
	}
	order, err := p.Deps.TopoSort()
	if err != nil {
		return Result{}, fmt.Errorf("dpipe: problem %s: %w", p.Name, err)
	}
	var perEpoch float64
	busy := map[perf.ArrayKind]float64{}
	for name, op := range p.Ops {
		cyc := op.Cycles(spec, assign[name])
		perEpoch += cyc
		busy[assign[name]] += cyc
	}
	e := float64(p.Epochs)
	return Result{
		TotalCycles: perEpoch * e,
		Busy1D:      busy[perf.PE1D] * e,
		Busy2D:      busy[perf.PE2D] * e,
		Order:       order,
		Assignment:  assign,
	}, nil
}

// StaticPipelined evaluates the problem with a fixed array assignment but
// with the Eq. 43–46 overlap model — the FuseMax execution style, where the
// 2D and 1D arrays run a statically partitioned pipeline. assign gives each
// op's array; nil assigns by class.
func StaticPipelined(p *Problem, spec arch.Spec, assign map[string]perf.ArrayKind) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if assign == nil {
		assign = ClassAssignment(p)
	}
	order, err := p.Deps.TopoSort()
	if err != nil {
		return Result{}, fmt.Errorf("dpipe: problem %s: %w", p.Name, err)
	}
	res := evaluate(p, spec, order, nil, 12, assign, nil, math.Inf(1))
	res.Order = order
	return res, nil
}

// ClassAssignment returns the prior-work static assignment: contraction
// Einsums on the 2D array, everything else on the 1D array.
func ClassAssignment(p *Problem) map[string]perf.ArrayKind {
	assign := make(map[string]perf.ArrayKind, len(p.Ops))
	for name, op := range p.Ops {
		if op.E.Class() == einsum.ClassContraction {
			assign[name] = perf.PE2D
		} else {
			assign[name] = perf.PE1D
		}
	}
	return assign
}

// FuseMaxAssignment returns FuseMax's published static mapping: GEMMs on
// the 2D array, and additionally the *elementwise* softmax stages (the
// shifted exponential over the score tile — ops whose output spans both a
// row- and a column-mapped dimension) on the 2D array as well ("pipelines
// partial softmax over 2D PE arrays", §2.3). Reductions and the running
// state updates stay on the 1D array, which is why FuseMax shows high 1D
// and modest 2D utilization in Figure 10.
// The choice is made at design time per architecture: on cloud the 2D
// array's 65536 PEs beat the 256-lane 1D array even at the vector-emulation
// penalty, while the edge variant (the MAS-Attention-style pipeline the
// paper uses for edge) keeps the exponentials on the vector array.
func FuseMaxAssignment(p *Problem, spec arch.Spec) map[string]perf.ArrayKind {
	assign := ClassAssignment(p)
	// The score tile is identified structurally: its indices are reduced by
	// a downstream contraction (the attention-times-V product reduces over
	// the inner key index). Pure elementwise maps whose output carries such
	// an index are the "partial softmax" stages FuseMax maps onto the 2D
	// array.
	contractionRed := map[string]bool{}
	for _, op := range p.Ops {
		if op.E.Class() == einsum.ClassContraction {
			for _, idx := range op.E.ReductionIndices(nil) {
				contractionRed[idx] = true
			}
		}
	}
	for name, op := range p.Ops {
		if op.E.Class() != einsum.ClassVector || op.E.Reduce != einsum.ReduceNone {
			continue
		}
		for _, idx := range op.E.OutIdx {
			if contractionRed[idx] && op.Cycles(spec, perf.PE2D) <= op.Cycles(spec, perf.PE1D) {
				assign[name] = perf.PE2D
				break
			}
		}
	}
	return assign
}

// evaluate runs the Eq. 43–46 DP over explicitEpochs epochs and
// extrapolates to p.Epochs. first, when non-nil, is the bipartition's first
// subgraph: the instance sequence then interleaves the second subgraph of
// epoch k-1 with the first subgraph of epoch k (Figure 7(d)); a nil first
// yields plain epoch-major sequencing. When fixedAssign is non-nil each op
// is pinned to its assigned array; otherwise the DP chooses per Eq. 45.
// cells, when non-nil, counts DP instance placements.
//
// bound, when finite, is a warm-start incumbent total: the sweeps abort
// with +Inf as soon as a sound lower bound of this candidate's final
// extrapolated total exceeds it (see sweepBound). An infinite bound runs
// the exact historical cold path — same sweeps, same order, same upfront
// cell accounting.
func evaluate(p *Problem, spec arch.Spec, order []string, first map[string]bool, explicitEpochs int, fixedAssign map[string]perf.ArrayKind, cells *obs.Counter, bound float64) Result {
	k := explicitEpochs
	if int64(k) > p.Epochs {
		k = int(p.Epochs)
	}
	if k < 1 {
		k = 1
	}
	warm := !math.IsInf(bound, 1)

	if int64(k) >= p.Epochs {
		// All epochs explicit: the makespan is the total, so the incumbent
		// bounds the sweep directly (scale 0 = no extrapolation term).
		var sb *sweepBound
		if warm {
			sb = &sweepBound{limit: bound}
		}
		mkAll, busyAll, assign := schedule(p, spec, buildSequence(order, first, k), fixedAssign, cells, sb)
		return Result{
			TotalCycles: mkAll,
			Busy1D:      busyAll[perf.PE1D],
			Busy2D:      busyAll[perf.PE2D],
			Assignment:  assign,
		}
	}

	// Steady-state extrapolation: average the per-epoch increment over the
	// second half of the explicit window, which smooths periodic placement
	// patterns (e.g. every fifth GEMM spilling to the 1D array).
	base := k / 2
	if base < 1 {
		base = 1
	}
	span := float64(k - base)
	rest := float64(p.Epochs - int64(k))

	if !warm {
		mkAll, busyAll, assign := schedule(p, spec, buildSequence(order, first, k), fixedAssign, cells, nil)
		mkBase, busyBase, _ := schedule(p, spec, buildSequence(order, first, base), fixedAssign, cells, nil)
		deltaMk := (mkAll - mkBase) / span
		delta1 := (busyAll[perf.PE1D] - busyBase[perf.PE1D]) / span
		delta2 := (busyAll[perf.PE2D] - busyBase[perf.PE2D]) / span
		return Result{
			TotalCycles: mkAll + deltaMk*rest,
			Busy1D:      busyAll[perf.PE1D] + delta1*rest,
			Busy2D:      busyAll[perf.PE2D] + delta2*rest,
			Assignment:  assign,
		}
	}

	if len(first) == 0 {
		// Epoch-major sequences nest: the base window is a strict prefix of
		// the full sequence and the DP is a deterministic left-to-right
		// recurrence, so one bounded sweep with a checkpoint at the base
		// boundary recovers bit-identical (mkBase, busyBase) values to the
		// cold path's separate base sweep — at two thirds of its cells, plus
		// whatever the bound aborts.
		sb := &sweepBound{limit: bound, scale: rest / span, checkpoint: base * len(order)}
		mkAll, busyAll, assign := schedule(p, spec, buildSequence(order, nil, k), fixedAssign, cells, sb)
		if math.IsInf(mkAll, 1) {
			return Result{TotalCycles: math.Inf(1), Busy1D: busyAll[perf.PE1D], Busy2D: busyAll[perf.PE2D], Assignment: assign}
		}
		deltaMk := (mkAll - sb.ckMk) / span
		delta1 := (busyAll[perf.PE1D] - sb.ckBusy1) / span
		delta2 := (busyAll[perf.PE2D] - sb.ckBusy2) / span
		return Result{
			TotalCycles: mkAll + deltaMk*rest,
			Busy1D:      busyAll[perf.PE1D] + delta1*rest,
			Busy2D:      busyAll[perf.PE2D] + delta2*rest,
			Assignment:  assign,
		}
	}

	// Bipartition sequences do not nest (the base window interleaves
	// differently), and greedy list-scheduling anomalies mean mkAll >= mkBase
	// is unproven — so the base sweep runs unbounded, exactly as cold, and
	// only the full sweep gets the slope-aware bound seeded with the exact
	// mkBase.
	mkBase, busyBase, _ := schedule(p, spec, buildSequence(order, first, base), fixedAssign, cells, nil)
	if math.IsInf(mkBase, 1) {
		// The order violates a dependency; the full sweep would be +Inf too.
		// Return a clean +Inf rather than extrapolating Inf-Inf into NaN.
		return Result{TotalCycles: math.Inf(1), Busy1D: busyBase[perf.PE1D], Busy2D: busyBase[perf.PE2D]}
	}
	sb := &sweepBound{limit: bound, mkBase: mkBase, scale: rest / span}
	mkAll, busyAll, assign := schedule(p, spec, buildSequence(order, first, k), fixedAssign, cells, sb)
	if math.IsInf(mkAll, 1) {
		return Result{TotalCycles: math.Inf(1), Busy1D: busyAll[perf.PE1D], Busy2D: busyAll[perf.PE2D], Assignment: assign}
	}
	deltaMk := (mkAll - mkBase) / span
	delta1 := (busyAll[perf.PE1D] - busyBase[perf.PE1D]) / span
	delta2 := (busyAll[perf.PE2D] - busyBase[perf.PE2D]) / span
	return Result{
		TotalCycles: mkAll + deltaMk*rest,
		Busy1D:      busyAll[perf.PE1D] + delta1*rest,
		Busy2D:      busyAll[perf.PE2D] + delta2*rest,
		Assignment:  assign,
	}
}

// sweepBound arms one schedule sweep with a warm-start abort: the sweep
// stops, returning +Inf, as soon as lb(m) > limit, where m is the monotone
// prefix makespan and lb is a provable lower bound of the candidate's final
// extrapolated total. Soundness:
//
//   - Before the checkpoint of a nesting (epoch-major) sweep, and whenever
//     no extrapolation applies (scale 0), lb = m: the final makespan is at
//     least any prefix makespan, and the extrapolated total adds a
//     non-negative term.
//   - Past the checkpoint (or with mkBase supplied), lb = f(m) =
//     m + (m-mkBase)*scale. f is increasing in m (scale >= 0) and the final
//     total equals f(final makespan) with final makespan >= m, so
//     f(m) <= total.
//
// Because the limit carries a relative slack, a candidate whose exact total
// ties the incumbent is never aborted by rounding in f — warm pruning only
// removes candidates that are strictly worse than the hinted incumbent.
type sweepBound struct {
	limit  float64 // abort threshold (the hinted incumbent total, plus slack)
	mkBase float64 // base-window makespan for the extrapolated bound (bipartition sweeps)
	scale  float64 // rest/span extrapolation factor; 0 disables the slope term
	// checkpoint, when positive, is the instance index ending the base
	// window of a nesting sweep; the DP state there is recorded below and
	// stands in for the cold path's separate base sweep.
	checkpoint int
	ckMk       float64
	ckBusy1    float64
	ckBusy2    float64
}

// buildSequence constructs the global instance processing sequence for the
// DP. Without a bipartition the sequence is epoch-major. With a bipartition
// (S1 = first, S2 = the rest) the sequence realises Figure 7(d)'s pipeline:
// pass k interleaves epoch k's S1 instances with epoch k-1's S2 instances,
// following the candidate order's relative positions, with a trailing drain
// pass for the final epoch's S2. Dependency safety follows from the
// bipartition's dependency completeness (no S2 -> S1 edges): every
// instance's predecessors appear earlier in the sequence.
func buildSequence(order []string, first map[string]bool, epochs int) []instance {
	if first == nil || len(first) == 0 {
		seq := make([]instance, 0, len(order)*epochs)
		for k := 0; k < epochs; k++ {
			for _, name := range order {
				seq = append(seq, instance{name, k})
			}
		}
		return seq
	}
	seq := make([]instance, 0, len(order)*(epochs+1))
	for k := 0; k <= epochs; k++ {
		for _, name := range order {
			if first[name] && k < epochs {
				seq = append(seq, instance{name, k})
			}
			if !first[name] && k > 0 {
				seq = append(seq, instance{name, k - 1})
			}
		}
	}
	return seq
}

// instance identifies one op execution in one epoch.
type instance struct {
	name  string
	epoch int
}

// schedule is the core DP (Eqs. 43–46): process op instances epoch-major in
// the candidate order; for each, pick the array minimising completion time
// given (a) the array's accumulated occupancy Time[pe_j] (Eq. 43 first
// term) and (b) the latest finishing dependency (Eq. 43 second term).
// Eq. 44 adds the op latency per array, Eq. 45 selects the earliest
// completion, and Eq. 46 commits the chosen array's timeline. Returns the
// makespan, per-array busy cycles, and the last epoch's array assignment.
// cells is credited with one increment per instance placed (nil-safe; on a
// cold sweep a single upfront Add covering the whole sequence, so the inner
// loop stays allocation-free; on a bounded sweep the instances actually
// placed, credited when the sweep ends or aborts).
//
// sb, when non-nil, arms the warm-start abort (see sweepBound): the sweep
// returns +Inf as soon as the candidate provably cannot beat sb.limit. A
// nil sb is the exact historical sweep.
func schedule(p *Problem, spec arch.Spec, seq []instance, fixedAssign map[string]perf.ArrayKind, cells *obs.Counter, sb *sweepBound) (float64, map[perf.ArrayKind]float64, map[string]perf.ArrayKind) {
	if sb == nil {
		cells.Add(int64(len(seq)))
	}
	timeline := map[perf.ArrayKind]float64{perf.PE2D: 0, perf.PE1D: 0}
	busy := map[perf.ArrayKind]float64{perf.PE2D: 0, perf.PE1D: 0}
	endT := make(map[instance]float64, len(seq))
	assign := make(map[string]perf.ArrayKind, len(p.Ops))
	makespan := 0.0

	for i, inst := range seq {
		name, epoch := inst.name, inst.epoch
		op := p.Ops[name]
		// Latest dependency completion: intra-epoch predecessors plus
		// cross-epoch state edges from the previous epoch. A predecessor
		// instance that has not been scheduled yet means the candidate
		// sequence violates a dependency (possible when a state producer
		// lands in the second subgraph while its consumer sits in the
		// first); such sequences are rejected with an infinite makespan.
		depEnd := 0.0
		for _, pred := range p.Deps.Pred(name) {
			e, ok := endT[instance{pred, epoch}]
			if !ok {
				if sb != nil {
					cells.Add(int64(i + 1))
				}
				return math.Inf(1), busy, assign
			}
			if e > depEnd {
				depEnd = e
			}
		}
		if epoch > 0 {
			for _, se := range p.StateEdges {
				if se.To != name {
					continue
				}
				e, ok := endT[instance{se.From, epoch - 1}]
				if !ok {
					if sb != nil {
						cells.Add(int64(i + 1))
					}
					return math.Inf(1), busy, assign
				}
				if e > depEnd {
					depEnd = e
				}
			}
		}

		arrays := []perf.ArrayKind{perf.PE2D, perf.PE1D}
		if fixedAssign != nil {
			arrays = []perf.ArrayKind{fixedAssign[name]}
		}
		bestEnd := math.Inf(1)
		var bestArr perf.ArrayKind
		var bestCycles float64
		for _, arr := range arrays {
			cyc := op.Cycles(spec, arr)
			start := math.Max(timeline[arr], depEnd) // Eq. 43
			end := start + cyc                       // Eq. 44
			if end < bestEnd {                       // Eq. 45
				bestEnd, bestArr, bestCycles = end, arr, cyc
			}
		}
		timeline[bestArr] = bestEnd // Eq. 46
		busy[bestArr] += bestCycles
		endT[inst] = bestEnd
		assign[name] = bestArr
		if bestEnd > makespan {
			makespan = bestEnd
		}

		if sb != nil {
			if i+1 == sb.checkpoint {
				sb.ckMk = makespan
				sb.ckBusy1 = busy[perf.PE1D]
				sb.ckBusy2 = busy[perf.PE2D]
			}
			// Lower-bound the final extrapolated total (see sweepBound's
			// soundness note) and abort once it clears the incumbent.
			lb := makespan
			if sb.scale > 0 && (sb.checkpoint == 0 || i+1 > sb.checkpoint) {
				mb := sb.mkBase
				if sb.checkpoint > 0 {
					mb = sb.ckMk
				}
				lb = makespan + (makespan-mb)*sb.scale
			}
			if lb > sb.limit {
				cells.Add(int64(i + 1))
				return math.Inf(1), busy, assign
			}
		}
	}
	if sb != nil {
		cells.Add(int64(len(seq)))
	}
	return makespan, busy, assign
}

// candidate is one (ordering, bipartition) schedule to evaluate, with the
// canonical key the reduction uses as its deterministic tie-break.
type candidate struct {
	order []string
	part  graph.Bipartition
	key   string
}

// candidateSet accumulates candidate schedules, skipping duplicates under an
// unambiguous canonical key — order and First set joined with separator
// bytes no op name can contain. The skip counter makes collisions
// observable.
//
// With the current enumeration the counter is defensive and stays at zero:
// TopoOrders backtracks without ever emitting the same ordering twice, each
// bipartition is uniquely determined by its First set, and the canonical
// order is added with an empty First set no bipartition can share (both
// sides of a valid bipartition are non-empty). It exists because an earlier
// fmt.Sprint-based key *could* collide, and because future enumeration
// strategies (rotations, sampled orders) may legitimately regenerate a
// candidate — the dedup, not the enumerator, is what guarantees the
// evaluated set is collision-free.
type candidateSet struct {
	list  []candidate
	seen  map[string]bool
	dups  int
	dedup *obs.Counter
}

func newCandidateSet(dedup *obs.Counter) *candidateSet {
	return &candidateSet{seen: map[string]bool{}, dedup: dedup}
}

// add records the candidate unless an identical (order, First) pair was
// already added, in which case the dedup counter fires; duplicates would
// schedule identically, so evaluating them would only waste DP sweeps.
func (cs *candidateSet) add(order []string, part graph.Bipartition) {
	key := strings.Join(order, "\x1f") + "\x1e" + strings.Join(part.FirstSorted(), "\x1f")
	if cs.seen[key] {
		cs.dups++
		cs.dedup.Inc()
		return
	}
	cs.seen[key] = true
	cs.list = append(cs.list, candidate{order: order, part: part, key: key})
}

// skipped returns how many duplicate adds were rejected, independent of any
// metrics registry.
func (cs *candidateSet) skipped() int { return cs.dups }

// keyedParts sorts a bipartition slice and its precomputed canonical keys in
// lockstep.
type keyedParts struct {
	keys  []string
	parts []graph.Bipartition
}

func (k *keyedParts) Len() int           { return len(k.keys) }
func (k *keyedParts) Less(i, j int) bool { return k.keys[i] < k.keys[j] }
func (k *keyedParts) Swap(i, j int) {
	k.keys[i], k.keys[j] = k.keys[j], k.keys[i]
	k.parts[i], k.parts[j] = k.parts[j], k.parts[i]
}

// resolveParallelism maps an Options.Parallelism value to a worker count.
func resolveParallelism(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// sortedOpNames returns the problem's op names sorted; used by tests and
// trace output.
func sortedOpNames(p *Problem) []string {
	names := make([]string, 0, len(p.Ops))
	for n := range p.Ops {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
