package dpipe

import (
	"github.com/fusedmindlab/transfusion/internal/obs"
	"github.com/fusedmindlab/transfusion/internal/perf"
)

// Chrome trace lane ids: one thread per PE array within a trace's process.
const (
	tid2D = 0
	tid1D = 1
)

// ChromeTraceEvents converts the materialised schedule into Chrome
// trace_event entries under the given pid: one process per trace, one
// thread per PE array, one complete event per scheduled op instance. One
// modelled cycle maps to one microsecond of trace time, so Perfetto's
// time axis reads directly in cycles.
func (t *Trace) ChromeTraceEvents(pid int) []obs.TraceEvent {
	events := make([]obs.TraceEvent, 0, len(t.Entries)+3)
	events = append(events,
		obs.ProcessName(pid, t.Problem),
		obs.ThreadName(pid, tid2D, "2D PE array"),
		obs.ThreadName(pid, tid1D, "1D PE array"),
	)
	for _, e := range t.Entries {
		tid := tid2D
		if e.Array == perf.PE1D {
			tid = tid1D
		}
		ev := obs.Complete(e.Op, e.Start, e.End-e.Start, pid, tid)
		ev.Args = map[string]interface{}{"epoch": e.Epoch, "array": e.Array.String()}
		events = append(events, ev)
	}
	return events
}
