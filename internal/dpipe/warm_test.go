package dpipe

import (
	"context"
	"reflect"
	"testing"

	"github.com/fusedmindlab/transfusion/internal/arch"
	"github.com/fusedmindlab/transfusion/internal/obs"
)

// planCells runs PlanContext under a fresh registry and returns the result
// plus the dpipe.dp_cells it spent.
func planCells(t *testing.T, p *Problem, opts Options) (Result, int64) {
	t.Helper()
	reg := obs.NewRegistry()
	ctx := obs.WithMetrics(context.Background(), reg)
	res, err := PlanContext(ctx, p, arch.Cloud(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return res, reg.Counter("dpipe.dp_cells").Value()
}

// A valid hint must leave the winning schedule bit-identical to a cold plan
// while its incumbent bound prunes DP work — and the pruned cell count must
// be identical at every Parallelism (the bound is fixed before the fan-out).
func TestWarmHintPrunesWithoutChangingWinner(t *testing.T) {
	p := mhaProblem(t, 16)
	cold, coldCells := planCells(t, p, DefaultOptions())

	warmOpts := DefaultOptions()
	warmOpts.WarmHints = []Hint{{Order: cold.Order, First: cold.Bipartition.FirstSorted()}}
	warm, warmCells := planCells(t, p, warmOpts)

	if !reflect.DeepEqual(warm, cold) {
		t.Fatalf("warm winner diverged from cold:\nwarm %+v\ncold %+v", warm, cold)
	}
	if warmCells >= coldCells {
		t.Fatalf("warm plan spent %d DP cells, cold %d — the hint bound never pruned", warmCells, coldCells)
	}
	for _, par := range []int{1, 4} {
		opts := warmOpts
		opts.Parallelism = par
		res, cells := planCells(t, p, opts)
		if !reflect.DeepEqual(res, cold) {
			t.Fatalf("parallelism %d: warm winner diverged from cold", par)
		}
		if cells != warmCells {
			t.Fatalf("parallelism %d: dp_cells %d != %d — warm pruning is nondeterministic across worker counts",
				par, cells, warmCells)
		}
	}
}

// An unpartitioned hint (empty First) exercises the checkpointed single-sweep
// regime; the bound it sets is the canonical order's own total, which still
// prunes worse interleavings without touching the winner.
func TestWarmHintUnpartitionedRegime(t *testing.T) {
	p := mhaProblem(t, 16)
	canonical, err := p.Deps.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	cold, coldCells := planCells(t, p, DefaultOptions())
	opts := DefaultOptions()
	opts.WarmHints = []Hint{{Order: canonical}}
	warm, warmCells := planCells(t, p, opts)
	if !reflect.DeepEqual(warm, cold) {
		t.Fatalf("unpartitioned hint changed the winner:\nwarm %+v\ncold %+v", warm, cold)
	}
	if warmCells >= coldCells {
		t.Fatalf("unpartitioned hint never pruned: %d cells warm, %d cold", warmCells, coldCells)
	}
}

// When the epoch count fits inside the explicit DP window there is no
// extrapolation tail; the hint bound applies to the single exact sweep.
func TestWarmHintSingleSweepRegime(t *testing.T) {
	p := mhaProblem(t, 4)
	cold, coldCells := planCells(t, p, DefaultOptions())
	opts := DefaultOptions()
	opts.WarmHints = []Hint{{Order: cold.Order, First: cold.Bipartition.FirstSorted()}}
	warm, warmCells := planCells(t, p, opts)
	if !reflect.DeepEqual(warm, cold) {
		t.Fatalf("warm winner diverged in the single-sweep regime")
	}
	if warmCells >= coldCells {
		t.Fatalf("single-sweep regime never pruned: %d cells warm, %d cold", warmCells, coldCells)
	}
}

// Hints that do not validate against the DAG are ignored entirely: the plan
// and its DP cell spend are bit-identical to a cold one.
func TestInvalidWarmHintIsIgnored(t *testing.T) {
	p := mhaProblem(t, 16)
	cold, coldCells := planCells(t, p, DefaultOptions())
	dup := append([]string{cold.Order[0]}, cold.Order[:len(cold.Order)-1]...)
	for name, h := range map[string]Hint{
		"foreign nodes":    {Order: []string{"A", "B", "C"}},
		"wrong length":     {Order: cold.Order[:len(cold.Order)-1]},
		"duplicate node":   {Order: dup},
		"first not subset": {Order: cold.Order, First: []string{"NOPE"}},
		"first everything": {Order: cold.Order, First: cold.Order},
	} {
		opts := DefaultOptions()
		opts.WarmHints = []Hint{h}
		res, cells := planCells(t, p, opts)
		if !reflect.DeepEqual(res, cold) {
			t.Fatalf("%s: invalid hint changed the plan", name)
		}
		if cells != coldCells {
			t.Fatalf("%s: invalid hint changed DP cell spend (%d vs cold %d)", name, cells, coldCells)
		}
	}
}
