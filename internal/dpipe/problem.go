package dpipe

import (
	"fmt"

	"github.com/fusedmindlab/transfusion/internal/cascade"
	"github.com/fusedmindlab/transfusion/internal/graph"
	"github.com/fusedmindlab/transfusion/internal/perf"
)

// LayerMapping is the Table 1 dimension mapping of a layer onto the 2D PE
// array: which index labels spread across rows and which across columns.
type LayerMapping struct {
	Rows []string
	Cols []string
}

// TableMapping returns the Table 1 mapping for each Transformer layer:
//
//	QKV        rows p/m0        cols h,e (and h,f for BV)
//	MHA        rows p           cols m0
//	LayerNorm  rows p           cols h,f
//	FFN        rows p           cols s
//
// Two extensions beyond the table's wording, both implied by §3.3: in MHA,
// the attention-times-V contraction (SLNV / AV) reduces over m0, so its
// output spreads the value embedding f across columns; in the FFN, the
// second linear layer reduces over s, so its output spreads (h, f) across
// columns. Each op maps whichever of the layer's column labels its output
// actually carries.
func TableMapping(layer string) (LayerMapping, error) {
	switch layer {
	case "QKV":
		return LayerMapping{Rows: []string{"p", "m0"}, Cols: []string{"h", "e", "f"}}, nil
	case "MHA":
		return LayerMapping{Rows: []string{"p"}, Cols: []string{"m0", "f"}}, nil
	case "AddLayerNorm":
		return LayerMapping{Rows: []string{"p"}, Cols: []string{"h", "f"}}, nil
	case "FFN":
		return LayerMapping{Rows: []string{"p"}, Cols: []string{"s", "h", "f"}}, nil
	default:
		return LayerMapping{}, fmt.Errorf("dpipe: no Table 1 mapping for layer %q", layer)
	}
}

func intersect(candidates, present []string) []string {
	set := make(map[string]bool, len(present))
	for _, s := range present {
		set[s] = true
	}
	var out []string
	for _, c := range candidates {
		if set[c] {
			out = append(out, c)
		}
	}
	return out
}

// FromCascade builds a schedulable Problem from a cascade's loop Body: the
// per-epoch OpSpecs carry the Table 1 PE mapping, the DAG encodes
// producer-consumer edges among body Einsums, and the cascade's state
// variables become cross-epoch StateEdges. dims gives the per-epoch extent
// of every index label (e.g. p is the query-tile length, m0 the inner
// key/value tile); epochs is the inner-tile trip count.
func FromCascade(c *cascade.Cascade, dims map[string]int, epochs int64) (*Problem, error) {
	mapping, err := TableMapping(c.Name)
	if err != nil {
		return nil, err
	}
	ops := make(map[string]perf.OpSpec, len(c.Body))
	deps := graph.New()
	produced := make(map[string]bool, len(c.Body))
	for _, e := range c.Body {
		produced[e.Name] = true
	}
	for _, e := range c.Body {
		opDims := make(map[string]int)
		for _, idx := range e.AllIndices() {
			size, ok := dims[idx]
			if !ok {
				return nil, fmt.Errorf("dpipe: cascade %s: einsum %s: no extent for index %q", c.Name, e.Name, idx)
			}
			opDims[idx] = size
		}
		// Rows spread independent output elements; columns may additionally
		// spread a reduction dimension (spatial reduction along the array,
		// as a systolic GEMM reduces along its columns).
		colCandidates := append(append([]string{}, e.OutIdx...), e.ReductionIndices(nil)...)
		ops[e.Name] = perf.OpSpec{
			E:      e,
			Dims:   opDims,
			RowIdx: intersect(mapping.Rows, e.OutIdx),
			ColIdx: intersect(mapping.Cols, colCandidates),
		}
		deps.AddNode(e.Name)
		for _, in := range e.InputTensors() {
			if produced[in] && in != e.Name {
				deps.AddEdge(in, e.Name)
			}
		}
	}

	var stateEdges []StateEdge
	for _, s := range c.State {
		for _, e := range c.Body {
			for _, in := range e.InputTensors() {
				if in == s.Name {
					stateEdges = append(stateEdges, StateEdge{From: s.NextName(), To: e.Name})
				}
			}
		}
	}

	return &Problem{
		Name:       c.Name,
		Ops:        ops,
		Deps:       deps,
		StateEdges: stateEdges,
		Epochs:     epochs,
	}, nil
}
