package dpipe

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/fusedmindlab/transfusion/internal/arch"
	"github.com/fusedmindlab/transfusion/internal/graph"
	"github.com/fusedmindlab/transfusion/internal/perf"
)

// refDP is an independent reference implementation of the Eq. 43–46 list
// scheduler, written directly from the equations: process instances
// epoch-major in the candidate order; each picks the array minimising its
// completion time given the array's occupancy (Eq. 43 first term) and the
// latest dependency — intra-epoch predecessors plus previous-epoch state
// edges (second term); Eq. 44 adds the latency, Eq. 45 takes the earlier
// completion with the 2D array preferred on ties, Eq. 46 commits the
// timeline. It shares no code with schedule()/evaluate() beyond the Problem
// definition and OpSpec.Cycles.
func refDP(p *Problem, spec arch.Spec, order []string, epochs int) (makespan, busy1, busy2 float64) {
	avail := map[perf.ArrayKind]float64{}
	end := map[string]float64{} // "name@epoch" -> completion
	for k := 0; k < epochs; k++ {
		for _, name := range order {
			op := p.Ops[name]
			ready := 0.0
			for _, pred := range p.Deps.Pred(name) {
				if e := end[fmt.Sprintf("%s@%d", pred, k)]; e > ready {
					ready = e
				}
			}
			if k > 0 {
				for _, se := range p.StateEdges {
					if se.To == name {
						if e := end[fmt.Sprintf("%s@%d", se.From, k-1)]; e > ready {
							ready = e
						}
					}
				}
			}
			end2D := math.Max(avail[perf.PE2D], ready) + op.Cycles(spec, perf.PE2D)
			end1D := math.Max(avail[perf.PE1D], ready) + op.Cycles(spec, perf.PE1D)
			if end2D <= end1D { // ties prefer the 2D array
				avail[perf.PE2D] = end2D
				busy2 += op.Cycles(spec, perf.PE2D)
				end[fmt.Sprintf("%s@%d", name, k)] = end2D
			} else {
				avail[perf.PE1D] = end1D
				busy1 += op.Cycles(spec, perf.PE1D)
				end[fmt.Sprintf("%s@%d", name, k)] = end1D
			}
		}
	}
	for _, e := range end {
		if e > makespan {
			makespan = e
		}
	}
	return makespan, busy1, busy2
}

// randomProblem builds a small random DAG scheduling problem: 2–5 ops, each
// a random GEMM or vector map over random small extents, random forward
// edges, and an occasional cross-epoch state edge.
func randomProblem(rng *rand.Rand, caseIdx int) *Problem {
	n := 2 + rng.Intn(4)
	ops := make(map[string]perf.OpSpec, n)
	names := make([]string, n)
	deps := graph.New()
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("op%d", i)
		names[i] = name
		dims := map[string]int{
			"p": 1 << (3 + rng.Intn(5)),
			"k": 1 << (3 + rng.Intn(5)),
			"q": 1 << (3 + rng.Intn(5)),
		}
		var op perf.OpSpec
		if rng.Intn(2) == 0 {
			op = perf.OpSpec{
				E:      mustParse(fmt.Sprintf("T%d = A%d[p,k] * B%d[k,q] -> [p,q]", i, i, i)),
				Dims:   dims,
				RowIdx: []string{"p"},
				ColIdx: []string{"q"},
			}
		} else {
			op = perf.OpSpec{
				E:      mustParse(fmt.Sprintf("T%d = A%d[p,q] -> [p,q]", i, i)),
				Dims:   map[string]int{"p": dims["p"], "q": dims["q"]},
				RowIdx: []string{"p"},
				ColIdx: []string{"q"},
			}
		}
		ops[name] = op
		deps.AddNode(name)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.4 {
				deps.AddEdge(names[i], names[j])
			}
		}
	}
	p := &Problem{
		Name:   fmt.Sprintf("rand%d", caseIdx),
		Ops:    ops,
		Deps:   deps,
		Epochs: int64(1 + rng.Intn(5)),
	}
	if n >= 2 && rng.Intn(3) == 0 {
		// A cross-epoch recurrence from a random later op to an earlier one.
		from := names[rng.Intn(n)]
		to := names[rng.Intn(n)]
		p.StateEdges = []StateEdge{{From: from, To: to}}
	}
	return p
}

// TestScheduleMatchesDPOracle runs ~1k seeded random problems through the
// production DP with explicitEpochs >= Epochs — the exact path, no
// extrapolation — and requires bit-identical makespan and busy counters
// against the independent reference.
func TestScheduleMatchesDPOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, spec := range []arch.Spec{arch.Cloud(), arch.Edge()} {
		for i := 0; i < 500; i++ {
			p := randomProblem(rng, i)
			if err := p.Validate(); err != nil {
				t.Fatalf("case %d: generator produced invalid problem: %v", i, err)
			}
			order, err := p.Deps.TopoSort()
			if err != nil {
				t.Fatal(err)
			}
			epochs := int(p.Epochs)
			res := evaluate(p, spec, order, nil, epochs, nil, nil, math.Inf(1))
			wantMk, want1, want2 := refDP(p, spec, order, epochs)
			if res.TotalCycles != wantMk {
				t.Fatalf("%s case %d (%s): makespan %v, oracle %v", spec.Name, i, p.Name, res.TotalCycles, wantMk)
			}
			if res.Busy1D != want1 || res.Busy2D != want2 {
				t.Fatalf("%s case %d (%s): busy (%v, %v), oracle (%v, %v)",
					spec.Name, i, p.Name, res.Busy1D, res.Busy2D, want1, want2)
			}
		}
	}
}

// TestEvaluateExtrapolationBounds checks the steady-state extrapolated
// makespan on random long-running problems stays within its guaranteed
// envelope: at least the explicit window's exact makespan (epochs only add
// work), at most the fully serialised execution, and within a loose band of
// the exact DP over all epochs. Tight accuracy is asserted separately on a
// clean pipeline below — random DAGs can have periodic placement patterns
// the linear extrapolation smooths over.
func TestEvaluateExtrapolationBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	spec := arch.Edge()
	const explicit = 12
	for i := 0; i < 200; i++ {
		p := randomProblem(rng, i)
		p.Epochs = int64(20 + rng.Intn(80))
		order, err := p.Deps.TopoSort()
		if err != nil {
			t.Fatal(err)
		}
		got := evaluate(p, spec, order, nil, explicit, nil, nil, math.Inf(1))
		windowMk, _, _ := refDP(p, spec, order, explicit)
		exactMk, _, _ := refDP(p, spec, order, int(p.Epochs))
		serial := p.SerialLoadCycles(spec)
		if got.TotalCycles < windowMk-1e-6 {
			t.Errorf("case %d: extrapolated %v below the %d-epoch explicit makespan %v", i, got.TotalCycles, explicit, windowMk)
		}
		if got.TotalCycles > serial*1.0001 {
			t.Errorf("case %d: makespan %v exceeds serial bound %v", i, got.TotalCycles, serial)
		}
		if rel := math.Abs(got.TotalCycles-exactMk) / exactMk; rel > 0.25 {
			t.Errorf("case %d: extrapolated %v vs exact %v (%.1f%% off)", i, got.TotalCycles, exactMk, rel*100)
		}
	}
}

// TestEvaluateExtrapolationExactOnCleanPipeline pins the extrapolation's
// accuracy where its model holds: the two-stage GEMM->vector pipeline
// reaches a linear steady state, so the 12-epoch window extrapolated to 400
// epochs must land within 1% of the exact DP over all 400.
func TestEvaluateExtrapolationExactOnCleanPipeline(t *testing.T) {
	p := twoStageProblem(400)
	spec := arch.Cloud()
	order, err := p.Deps.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	got := evaluate(p, spec, order, nil, 12, nil, nil, math.Inf(1))
	exactMk, _, _ := refDP(p, spec, order, 400)
	if rel := math.Abs(got.TotalCycles-exactMk) / exactMk; rel > 0.01 {
		t.Errorf("extrapolated makespan %v vs exact %v (%.2f%% off)", got.TotalCycles, exactMk, rel*100)
	}
	// The per-array busy split is deliberately not pinned here: on this
	// problem the greedy placement changes behaviour beyond the explicit
	// window (late epochs spill the vector op to the 1D array), which the
	// extrapolation cannot see. The exact-path oracle above covers the busy
	// accounting bit-for-bit.
}

// TestPlanDeterministicAcrossParallelismOnRandomDAGs requires the full
// search (bipartitions x orderings x DP) to pick the identical winner at
// worker counts 1 and 4 on random problems — the serving layer's cache
// keying assumes exactly this.
func TestPlanDeterministicAcrossParallelismOnRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	spec := arch.Cloud()
	opts := Options{MaxBipartitions: 8, MaxOrdersPerPartition: 4, ExplicitEpochs: 6}
	for i := 0; i < 100; i++ {
		p := randomProblem(rng, i)
		serialOpts, parOpts := opts, opts
		serialOpts.Parallelism = 1
		parOpts.Parallelism = 4
		a, errA := Plan(p, spec, serialOpts)
		b, errB := Plan(p, spec, parOpts)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("case %d: error mismatch: %v vs %v", i, errA, errB)
		}
		if errA != nil {
			continue
		}
		if a.TotalCycles != b.TotalCycles || a.Busy1D != b.Busy1D || a.Busy2D != b.Busy2D {
			t.Fatalf("case %d: Parallelism 1 vs 4 diverged: %+v vs %+v", i, a, b)
		}
		if fmt.Sprint(a.Order) != fmt.Sprint(b.Order) {
			t.Fatalf("case %d: winning order diverged: %v vs %v", i, a.Order, b.Order)
		}
	}
}
