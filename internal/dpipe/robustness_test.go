package dpipe

import (
	"context"
	"errors"
	"testing"

	"github.com/fusedmindlab/transfusion/internal/arch"
	"github.com/fusedmindlab/transfusion/internal/faults"
)

func TestPlanContextCanceledUpFront(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := PlanContext(ctx, mhaProblem(t, 8), arch.Cloud(), DefaultOptions())
	if !errors.Is(err, faults.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, does not also match context.Canceled", err)
	}
}

func TestPlanEnumerationBudgetExhausted(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxEnumeration = 1
	_, err := PlanContext(context.Background(), mhaProblem(t, 8), arch.Cloud(), opts)
	if !errors.Is(err, faults.ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
}

func TestPlanUnlimitedEnumeration(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxEnumeration = -1 // explicit "no budget"
	res, err := PlanContext(context.Background(), mhaProblem(t, 8), arch.Cloud(), opts)
	if err != nil {
		t.Fatalf("PlanContext: %v", err)
	}
	if res.TotalCycles <= 0 {
		t.Fatalf("plan has no makespan: %v", res.TotalCycles)
	}
}

func TestPlanMatchesPlanContext(t *testing.T) {
	p := mhaProblem(t, 8)
	a, err := Plan(p, arch.Cloud(), DefaultOptions())
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	b, err := PlanContext(context.Background(), p, arch.Cloud(), DefaultOptions())
	if err != nil {
		t.Fatalf("PlanContext: %v", err)
	}
	if a.TotalCycles != b.TotalCycles || a.Candidates != b.Candidates {
		t.Fatalf("Plan and PlanContext disagree: %v/%d vs %v/%d",
			a.TotalCycles, a.Candidates, b.TotalCycles, b.Candidates)
	}
}
